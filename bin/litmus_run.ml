(* litmus_run — enumerate litmus-test outcome sets under the operational
   semantics of each memory model, and print the dependency graphs of the
   paper's figures.

     litmus_run                  # all standard programs, all models
     litmus_run --figures        # Fig. 2-5 dependency graphs
     litmus_run --drf            # data-race-freedom analysis *)

open Cmdliner
open Pmc_model

let print_programs () =
  List.iter
    (fun p ->
      Fmt.pr "--- %s ---@." p.Lprog.name;
      List.iter
        (fun r -> Fmt.pr "%a@." Litmus.pp_result r)
        (Litmus.compare_models p);
      Fmt.pr "@.")
    Lprog.all_standard

let print_graph title exec =
  Fmt.pr "--- %s ---@." title;
  Execution.iter_ops exec (fun o -> Fmt.pr "  %a@." Op.pp o);
  Fmt.pr "  transitively reduced orderings:@.";
  List.iter
    (fun ({ src; kind; dst } : Execution.edge) ->
      Fmt.pr "    %a  %s  %a@." Op.pp (Execution.op exec src)
        (Execution.edge_kind_to_string kind)
        Op.pp (Execution.op exec dst))
    (Order.transitive_reduction Order.Full exec);
  Fmt.pr "@."

let print_figures () =
  (* Fig. 2 *)
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  print_graph "Fig. 2: program order of two writes" e;
  (* Fig. 3 *)
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.read e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  print_graph "Fig. 3: local order of a read" e;
  (* Fig. 4 *)
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:1 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.read e ~proc:0 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:0 ~loc:0);
  print_graph "Fig. 4: exclusive access with two processes" e;
  (* Fig. 5 *)
  let e = Execution.create ~procs:2 ~locs:2 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:42);
  ignore (Execution.fence e ~proc:0);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:1);
  ignore (Execution.write e ~proc:0 ~loc:1 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:1);
  ignore (Execution.read e ~proc:1 ~loc:1 ~value:1);
  ignore (Execution.fence e ~proc:1);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.read e ~proc:1 ~loc:0 ~value:42);
  ignore (Execution.release e ~proc:1 ~loc:0);
  print_graph "Fig. 5: multi-core communication (v0 = X, v1 = f)" e

let print_drf () =
  List.iter
    (fun p ->
      match Drf.find_race p with
      | None ->
          Fmt.pr "%-32s data-race free; PMC == SC: %b@." p.Lprog.name
            (Drf.sc_equivalent p)
      | Some r -> Fmt.pr "%-32s racy: %a@." p.Lprog.name Drf.pp_race r)
    Lprog.all_standard

let print_dot () =
  let e = Execution.create ~procs:2 ~locs:2 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:42);
  ignore (Execution.fence e ~proc:0);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:1);
  ignore (Execution.write e ~proc:0 ~loc:1 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:1);
  ignore (Execution.read e ~proc:1 ~loc:1 ~value:1);
  ignore (Execution.fence e ~proc:1);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.read e ~proc:1 ~loc:0 ~value:42);
  ignore (Execution.release e ~proc:1 ~loc:0);
  print_string (Dot.of_execution e)

let main figures drf dot =
  if figures then print_figures ()
  else if drf then print_drf ()
  else if dot then print_dot ()
  else print_programs ()

let cmd =
  Cmd.v
    (Cmd.info "litmus_run" ~doc:"Memory-model litmus tests and figures")
    Term.(
      const main
      $ Arg.(value & flag & info [ "figures" ] ~doc:"Print Fig. 2-5 graphs.")
      $ Arg.(value & flag & info [ "drf" ] ~doc:"Data-race analysis.")
      $ Arg.(value & flag & info [ "dot" ] ~doc:"Fig. 5 as Graphviz dot."))

let () = exit (Cmd.eval cmd)
