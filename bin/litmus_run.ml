(* litmus_run — enumerate litmus-test outcome sets under the operational
   semantics of each memory model, and print the dependency graphs of the
   paper's figures.

     litmus_run                   # all standard programs, all models
     litmus_run -p mp_fence       # one program (repeatable)
     litmus_run --figures         # Fig. 2-5 dependency graphs
     litmus_run --drf             # data-race-freedom analysis

   Enumeration goes through the shared Pmc_jobs layer — the same code
   path the pmc_serve daemon runs — so this CLI and a daemon answer are
   byte-identical.  Exit codes follow the documented convention:
   0 success; 2 input, budget or runtime error; 3 property failure;
   4 formal PMC-model inconsistency (the latter two do not arise from
   pure enumeration). *)

open Cmdliner
open Pmc_model

let print_graph title exec =
  Fmt.pr "--- %s ---@." title;
  Execution.iter_ops exec (fun o -> Fmt.pr "  %a@." Op.pp o);
  Fmt.pr "  transitively reduced orderings:@.";
  List.iter
    (fun ({ src; kind; dst } : Execution.edge) ->
      Fmt.pr "    %a  %s  %a@." Op.pp (Execution.op exec src)
        (Execution.edge_kind_to_string kind)
        Op.pp (Execution.op exec dst))
    (Order.transitive_reduction Order.Full exec);
  Fmt.pr "@."

let print_figures () =
  (* Fig. 2 *)
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  print_graph "Fig. 2: program order of two writes" e;
  (* Fig. 3 *)
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.read e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  print_graph "Fig. 3: local order of a read" e;
  (* Fig. 4 *)
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:1 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.read e ~proc:0 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:0 ~loc:0);
  print_graph "Fig. 4: exclusive access with two processes" e;
  (* Fig. 5 *)
  let e = Execution.create ~procs:2 ~locs:2 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:42);
  ignore (Execution.fence e ~proc:0);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:1);
  ignore (Execution.write e ~proc:0 ~loc:1 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:1);
  ignore (Execution.read e ~proc:1 ~loc:1 ~value:1);
  ignore (Execution.fence e ~proc:1);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.read e ~proc:1 ~loc:0 ~value:42);
  ignore (Execution.release e ~proc:1 ~loc:0);
  print_graph "Fig. 5: multi-core communication (v0 = X, v1 = f)" e

let print_drf pool =
  (* race analysis per program is independent work: compute in parallel,
     print in program order *)
  let results =
    Pmc_par.Pool.map_list_ordered pool Lprog.all_standard ~f:(fun p ->
        match Drf.find_race p with
        | None -> `Drf (Drf.sc_equivalent p)
        | Some r -> `Racy r)
  in
  List.iter2
    (fun p result ->
      match result with
      | `Drf sc_eq ->
          Fmt.pr "%-32s data-race free; PMC == SC: %b@." p.Lprog.name sc_eq
      | `Racy r -> Fmt.pr "%-32s racy: %a@." p.Lprog.name Drf.pp_race r)
    Lprog.all_standard results

let print_dot () =
  let e = Execution.create ~procs:2 ~locs:2 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:42);
  ignore (Execution.fence e ~proc:0);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:1);
  ignore (Execution.write e ~proc:0 ~loc:1 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:1);
  ignore (Execution.read e ~proc:1 ~loc:1 ~value:1);
  ignore (Execution.fence e ~proc:1);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.read e ~proc:1 ~loc:0 ~value:42);
  ignore (Execution.release e ~proc:1 ~loc:0);
  print_string (Dot.of_execution e)

(* --stats: per-(program, model) exploration statistics with host
   timing.  This measures the enumeration engine itself, so it calls
   [Litmus.enumerate] directly rather than going through the jobs layer
   (whose output is a wire contract and carries no timing).  Cells run
   sequentially and the pool is handed to [enumerate] instead: --jobs N
   parallelizes {e within} each enumeration (the frontier BFS), which
   is the path a wide fan-out never exercises.  Every non-timing column
   is deterministic at any --jobs width.  States are memoized on
   injective packed keys, so the two counts printed — states explored
   and distinct keys — are the same number by construction; the column
   exists so a key-packing bug would be visible as a count explosion
   rather than silently wrong outcome sets. *)
let print_stats pool programs =
  let cells =
    List.concat_map
      (fun p -> List.map (fun m -> (p, m)) Models.all)
      programs
  in
  let rows =
    List.map
      (fun ((p : Lprog.t), m) ->
        let t0 = Unix.gettimeofday () in
        let r = Litmus.enumerate ~pool m p in
        (p, r, Unix.gettimeofday () -. t0))
      cells
  in
  Fmt.pr "%-28s %-24s %9s %9s %6s %8s %12s@." "program" "model" "states"
    "keys" "stuck" "host s" "states/s";
  let total_states = ref 0 and total_t = ref 0.0 in
  List.iter
    (fun ((p : Lprog.t), (r : Litmus.result), dt) ->
      total_states := !total_states + r.Litmus.states_explored;
      total_t := !total_t +. dt;
      Fmt.pr "%-28s %-24s %9d %9d %6d %8.3f %12.0f@." p.Lprog.name
        r.Litmus.model r.Litmus.states_explored r.Litmus.states_explored
        r.Litmus.stuck_states dt
        (if dt > 0.0 then float_of_int r.Litmus.states_explored /. dt
         else 0.0))
    rows;
  Fmt.pr "total: %d states in %.3f s (%.0f states/s)@." !total_states
    !total_t
    (if !total_t > 0.0 then float_of_int !total_states /. !total_t else 0.0)

(* The default mode: one Pmc_jobs litmus job per program (all models),
   fanned over the pool; sections print in program order, so the output
   is identical at any width — and to the pmc_serve daemon's answers. *)
let print_programs pool programs =
  let jobs =
    List.map
      (fun (p : Lprog.t) ->
        Pmc_jobs.Job.Litmus
          { Pmc_jobs.Job.program = p.Lprog.name; models = []; limit = None })
      programs
  in
  let results = Pmc_jobs.Run.run_all ~pool jobs in
  List.iter (fun r -> Fmt.pr "%a" Pmc_jobs.Result.pp r) results;
  Pmc_jobs.Result.exit_code_all results

let main figures drf dot stats programs jobs =
  if figures then (print_figures (); 0)
  else if dot then (print_dot (); 0)
  else
    let selection =
      match programs with
      | [] -> Ok Lprog.all_standard
      | names ->
          let missing =
            List.filter
              (fun n -> Pmc_jobs.Run.find_program n = None)
              names
          in
          if missing <> [] then Error missing
          else Ok (List.filter_map Pmc_jobs.Run.find_program names)
    in
    match selection with
    | Error missing ->
        List.iter
          (fun n ->
            Fmt.epr "unknown program %S (known: %s)@." n
              (String.concat ", " Pmc_jobs.Run.program_names))
          missing;
        2
    | Ok selected ->
        Pmc_par.Pool.with_pool ~jobs (fun pool ->
            if drf then (print_drf pool; 0)
            else if stats then (print_stats pool selected; 0)
            else print_programs pool selected)

let cmd =
  Cmd.v
    (Cmd.info "litmus_run" ~doc:"Memory-model litmus tests and figures"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"enumeration (or analysis) succeeded.";
           Cmd.Exit.info 2
             ~doc:"input error: unknown program name or exhausted budget.";
           Cmd.Exit.info 3 ~doc:"property failure (reserved; unused here).";
           Cmd.Exit.info 4
             ~doc:"formal PMC-model inconsistency (reserved; unused here).";
         ])
    Term.(
      const main
      $ Arg.(value & flag & info [ "figures" ] ~doc:"Print Fig. 2-5 graphs.")
      $ Arg.(value & flag & info [ "drf" ] ~doc:"Data-race analysis.")
      $ Arg.(value & flag & info [ "dot" ] ~doc:"Fig. 5 as Graphviz dot.")
      $ Arg.(
          value & flag
          & info [ "stats" ]
              ~doc:
                "Print exploration statistics per (program, model) cell: \
                 states explored, distinct packed keys, stuck states, \
                 host time and states per second.  With $(b,--jobs) N \
                 the pool parallelizes the frontier BFS inside each \
                 enumeration; all non-timing columns are identical at \
                 any width.")
      $ Arg.(
          value & opt_all string []
          & info [ "program"; "p" ] ~docv:"NAME"
              ~doc:
                "Enumerate only $(docv) (repeatable).  Slugs like \
                 $(b,mp_fence), $(b,sb), $(b,iriw) or full descriptive \
                 names; default: every standard program.")
      $ Pmc_par.Cli.term ~action:"Enumerate" ())

let () = exit (Cmd.eval' cmd)
