(* litmus_run — enumerate litmus-test outcome sets under the operational
   semantics of each memory model, and print the dependency graphs of the
   paper's figures.

     litmus_run                  # all standard programs, all models
     litmus_run --figures        # Fig. 2-5 dependency graphs
     litmus_run --drf            # data-race-freedom analysis *)

open Cmdliner
open Pmc_model

let print_programs pool =
  (* the (program × model) matrix fans out over the pool; rows come back
     in program order, so the printout is identical at any width *)
  List.iter2
    (fun p row ->
      Fmt.pr "--- %s ---@." p.Lprog.name;
      List.iter (fun r -> Fmt.pr "%a@." Litmus.pp_result r) row;
      Fmt.pr "@.")
    Lprog.all_standard
    (Litmus.enumerate_matrix ~pool Lprog.all_standard)

let print_graph title exec =
  Fmt.pr "--- %s ---@." title;
  Execution.iter_ops exec (fun o -> Fmt.pr "  %a@." Op.pp o);
  Fmt.pr "  transitively reduced orderings:@.";
  List.iter
    (fun ({ src; kind; dst } : Execution.edge) ->
      Fmt.pr "    %a  %s  %a@." Op.pp (Execution.op exec src)
        (Execution.edge_kind_to_string kind)
        Op.pp (Execution.op exec dst))
    (Order.transitive_reduction Order.Full exec);
  Fmt.pr "@."

let print_figures () =
  (* Fig. 2 *)
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  print_graph "Fig. 2: program order of two writes" e;
  (* Fig. 3 *)
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.read e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  print_graph "Fig. 3: local order of a read" e;
  (* Fig. 4 *)
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:1 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.read e ~proc:0 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:0 ~loc:0);
  print_graph "Fig. 4: exclusive access with two processes" e;
  (* Fig. 5 *)
  let e = Execution.create ~procs:2 ~locs:2 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:42);
  ignore (Execution.fence e ~proc:0);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:1);
  ignore (Execution.write e ~proc:0 ~loc:1 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:1);
  ignore (Execution.read e ~proc:1 ~loc:1 ~value:1);
  ignore (Execution.fence e ~proc:1);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.read e ~proc:1 ~loc:0 ~value:42);
  ignore (Execution.release e ~proc:1 ~loc:0);
  print_graph "Fig. 5: multi-core communication (v0 = X, v1 = f)" e

let print_drf pool =
  (* race analysis per program is independent work: compute in parallel,
     print in program order *)
  let results =
    Pmc_par.Pool.map_list_ordered pool Lprog.all_standard ~f:(fun p ->
        match Drf.find_race p with
        | None -> `Drf (Drf.sc_equivalent p)
        | Some r -> `Racy r)
  in
  List.iter2
    (fun p result ->
      match result with
      | `Drf sc_eq ->
          Fmt.pr "%-32s data-race free; PMC == SC: %b@." p.Lprog.name sc_eq
      | `Racy r -> Fmt.pr "%-32s racy: %a@." p.Lprog.name Drf.pp_race r)
    Lprog.all_standard results

let print_dot () =
  let e = Execution.create ~procs:2 ~locs:2 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:42);
  ignore (Execution.fence e ~proc:0);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:0 ~loc:1);
  ignore (Execution.write e ~proc:0 ~loc:1 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:1);
  ignore (Execution.read e ~proc:1 ~loc:1 ~value:1);
  ignore (Execution.fence e ~proc:1);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.read e ~proc:1 ~loc:0 ~value:42);
  ignore (Execution.release e ~proc:1 ~loc:0);
  print_string (Dot.of_execution e)

let main figures drf dot jobs =
  if figures then print_figures ()
  else if dot then print_dot ()
  else
    Pmc_par.Pool.with_pool ~jobs (fun pool ->
        if drf then print_drf pool else print_programs pool)

let cmd =
  Cmd.v
    (Cmd.info "litmus_run" ~doc:"Memory-model litmus tests and figures")
    Term.(
      const main
      $ Arg.(value & flag & info [ "figures" ] ~doc:"Print Fig. 2-5 graphs.")
      $ Arg.(value & flag & info [ "drf" ] ~doc:"Data-race analysis.")
      $ Arg.(value & flag & info [ "dot" ] ~doc:"Fig. 5 as Graphviz dot.")
      $ Arg.(
          value & opt int 1
          & info [ "jobs"; "j" ] ~docv:"N"
              ~doc:
                "Enumerate on N domains (0 = recommended count).  Output \
                 is identical at any width."))

let () = exit (Cmd.eval cmd)
