(* pmc_demo — run any annotated application on any memory-architecture
   back-end of the simulated many-core SoC and report the Fig. 8-style
   statistics.  With the pmc_trace flags the run additionally becomes an
   analyzable artifact: a Perfetto-loadable trace (--trace), a dynamic
   race check (--race-check), and a replay of the observed values through
   the formal PMC model (--model-check).

     pmc_demo --app raytrace --backend swcc --cores 32 --scale 256
     pmc_demo --app raytrace --backend swcc --trace out.json --race-check
     pmc_demo --list *)

open Cmdliner
open Pmc_sim

let run_app app_name backend_name topology_name cores scale breakdown verify
    trace_file race_check model_check capacity =
  match Pmc_apps.Registry.find app_name with
  | None ->
      Fmt.epr "unknown app %S; try --list@." app_name;
      exit 1
  | Some app -> (
      match Pmc.Backends.of_string backend_name with
      | None ->
          Fmt.epr "unknown backend %S (seqcst|nocc|swcc|dsm|spm|farmem)@."
            backend_name;
          exit 1
      | Some backend ->
          let topology =
            match Topology.resolve topology_name ~cores with
            | Ok t -> t
            | Error e ->
                Fmt.epr "%s@." e;
                exit 1
          in
          let cfg = { Config.default with cores; topology } in
          let tracing = trace_file <> None || race_check || model_check in
          let recorder = ref None in
          let on_api =
            if tracing then
              Some
                (fun api ->
                  recorder := Some (Pmc_trace.Recorder.attach ?capacity api))
            else None
          in
          let r = Pmc_apps.Runner.run ~cfg ?on_api app ~backend ~scale in
          Fmt.pr "%a" Pmc_apps.Runner.pp_result r;
          if breakdown then begin
            let s = r.Pmc_apps.Runner.summary in
            Fmt.pr "%a" Stats.pp_summary s;
            Fmt.pr "  dcache: %d hits / %d misses; icache misses: %d@."
              s.Stats.dcache_hits s.Stats.dcache_misses s.Stats.icache_misses;
            Fmt.pr "  locks: %d acquires, %d transfers; noc writes: %d; \
                    flushes: %d@."
              s.Stats.lock_acquires s.Stats.lock_transfers s.Stats.noc_writes
              s.Stats.flushes
          end;
          let rc = ref 0 in
          (match !recorder with
          | None -> ()
          | Some rec_ ->
              let events = Pmc_trace.Recorder.events rec_ in
              let dropped = Pmc_trace.Recorder.dropped_total rec_ in
              Fmt.pr "trace: %d events recorded%s@." (List.length events)
                (if dropped = 0 then ""
                 else Printf.sprintf ", %d dropped (raise --trace-capacity)"
                        dropped);
              (match trace_file with
              | None -> ()
              | Some path ->
                  let stats =
                    Machine.stats (Pmc.Api.machine (Pmc_trace.Recorder.api rec_))
                  in
                  (try
                     Pmc_trace.Export.write_file ~stats ~path events;
                     Fmt.pr "trace: wrote %s (open in ui.perfetto.dev)@." path
                   with Sys_error msg ->
                     Fmt.epr "trace: cannot write %s: %s@." path msg;
                     rc := 2));
              if race_check then begin
                let races = Pmc_trace.Racecheck.check ~cores events in
                match races with
                | [] -> Fmt.pr "race check: no data races detected@."
                | races ->
                    Fmt.pr "race check: %d distinct data race(s):@."
                      (List.length races);
                    List.iter
                      (fun r ->
                        Fmt.pr "  %a@." Pmc_trace.Racecheck.pp_race r)
                      races;
                    rc := 3
              end;
              if model_check then begin
                if dropped > 0 then
                  Fmt.epr
                    "model check: trace incomplete (%d events dropped) — \
                     verdict unreliable@."
                    dropped;
                let report = Pmc_trace.Replay.check ~cores events in
                if Pmc_model.History.ok report then
                  Fmt.pr "model check: run is PMC-consistent \
                          (History.check ok)@."
                else begin
                  Fmt.pr "model check: %d violation(s):@."
                    (List.length report.Pmc_model.History.violations);
                  List.iter
                    (fun v ->
                      Fmt.pr "  %a@." Pmc_model.History.pp_violation v)
                    report.Pmc_model.History.violations;
                  rc := 4
                end
              end);
          if verify && not (Pmc_apps.Runner.ok r) then begin
            Fmt.epr "checksum mismatch!@.";
            exit 2
          end;
          if !rc <> 0 then exit !rc)

let list_apps () =
  Fmt.pr "applications:@.";
  List.iter (fun n -> Fmt.pr "  %s@." n) Pmc_apps.Registry.names;
  Fmt.pr "back-ends:@.";
  List.iter
    (fun k -> Fmt.pr "  %s@." (Pmc.Backends.to_string k))
    Pmc.Backends.all

let app_t =
  Arg.(value & opt string "raytrace" & info [ "app"; "a" ] ~doc:"Application to run.")

let backend_t =
  Arg.(
    value & opt string "swcc"
    & info [ "backend"; "b" ]
        ~doc:"Memory architecture: seqcst, nocc, swcc, dsm, spm or farmem.")

let cores_t =
  Arg.(value & opt int 32 & info [ "cores"; "c" ] ~doc:"Number of tiles.")

let topology_t =
  Arg.(
    value & opt string "star"
    & info [ "topology" ] ~docv:"FABRIC"
        ~doc:
          "Fabric the tiles are wired in: $(b,star) (uniform ring-distance \
           hops), $(b,mesh:XxY), $(b,torus:XxY) or $(b,hier:CxS) (C \
           clusters of S tiles around a hub ring).  Bare $(b,mesh), \
           $(b,torus) and $(b,hier) pick a near-square factorization of \
           the core count.")

let scale_t =
  Arg.(value & opt int 64 & info [ "scale"; "s" ] ~doc:"Workload scale.")

let breakdown_t =
  Arg.(value & flag & info [ "breakdown" ] ~doc:"Print the stall breakdown.")

let verify_t =
  Arg.(
    value & opt bool true
    & info [ "verify" ] ~doc:"Fail if the checksum mismatches.")

let list_t = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List apps.")

let trace_t =
  Arg.(
    value & opt (some string) None
    & info [ "trace"; "t" ] ~docv:"FILE"
        ~doc:
          "Record the run and write a Chrome trace-event JSON to $(docv) \
           (open in ui.perfetto.dev).")

let race_check_t =
  Arg.(
    value & flag
    & info [ "race-check" ]
        ~doc:
          "Record the run and check it for dynamic data races (exit 3 if \
           any are found).")

let model_check_t =
  Arg.(
    value & flag
    & info [ "model-check" ]
        ~doc:
          "Record the run and replay it through the formal PMC model's \
           history checker (exit 4 on violation).")

let capacity_t =
  Arg.(
    value & opt (some int) None
    & info [ "trace-capacity" ] ~docv:"N"
        ~doc:"Per-core trace ring capacity (default 65536 events).")

let main app backend topology cores scale breakdown verify trace race_check
    model_check capacity list =
  if list then list_apps ()
  else
    run_app app backend topology cores scale breakdown verify trace
      race_check model_check capacity

(* The exit-code contract, surfaced in --help so scripts and CI can rely
   on it. *)
let exits =
  Cmd.Exit.info 2
    ~doc:
      "the checksum mismatched the sequential reference, or the \
       $(b,--trace) path was unwritable."
  :: Cmd.Exit.info 3 ~doc:"$(b,--race-check) detected a data race."
  :: Cmd.Exit.info 4
       ~doc:
         "$(b,--model-check) found the run inconsistent with the formal \
          PMC model."
  :: Cmd.Exit.defaults

let cmd =
  Cmd.v
    (Cmd.info "pmc_demo" ~doc:"Run PMC-annotated apps on simulated SoCs"
       ~exits)
    Term.(
      const main $ app_t $ backend_t $ topology_t $ cores_t $ scale_t
      $ breakdown_t $ verify_t $ trace_t $ race_check_t $ model_check_t
      $ capacity_t $ list_t)

let () = exit (Cmd.eval cmd)
