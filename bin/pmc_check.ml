(* pmc_check — the annotation tooling as a command-line front-end: parse
   annotated-program files, run the static discipline checker and the
   Table II lowering pass.  Several files can be checked in one batch,
   and the per-program checks fan out over a domain pool.

     pmc_check                            # check + lower the built-in examples
     pmc_check --file prog.pmc            # check + lower a program file
     pmc_check -f a.pmc -f b.pmc -j 4     # batch, checked on 4 domains
     pmc_check --table                    # the lowering table per object size

   Checking goes through the shared Pmc_jobs layer — the same code path
   the pmc_serve daemon runs.  Exit codes follow the documented
   convention: 0 all programs pass; 2 input error (unreadable file or
   parse failure); 3 property failure (discipline errors); 4 reserved
   for formal PMC-model inconsistency. *)

open Cmdliner

let builtin = [ Pmc_compile.Ir.fig6; Pmc_compile.Ir.fig6_missing_fence ]

(* Check a batch of jobs on the pool and print reports sequentially in
   input order — workers never touch the formatter, so the output is
   byte-identical at any --jobs. *)
let check_jobs pool jobs =
  let results = Pmc_jobs.Run.run_all ~pool jobs in
  List.iter
    (fun r ->
      match r with
      | Pmc_jobs.Result.Error e -> Fmt.epr "%s@." e.Pmc_jobs.Result.detail
      | r -> Fmt.pr "%a" Pmc_jobs.Result.pp r)
    results;
  Pmc_jobs.Result.exit_code_all results

let builtin_jobs () =
  List.map
    (fun (p : Pmc_compile.Ir.program) ->
      Pmc_jobs.Job.Check
        {
          Pmc_jobs.Job.name = p.Pmc_compile.Ir.pname;
          source = Pmc_compile.Parse.print p;
        })
    builtin

let file_jobs paths =
  List.map
    (fun path ->
      match In_channel.with_open_text path In_channel.input_all with
      | source -> Ok (Pmc_jobs.Job.Check { Pmc_jobs.Job.name = path; source })
      | exception Sys_error msg -> Error (path, msg))
    paths

let table sizes =
  List.iter
    (fun bytes ->
      Pmc_compile.Report.pp_lowering_table Fmt.stdout Pmc_sim.Config.default
        ~bytes;
      Fmt.pr "@.")
    sizes

let main show_table files jobs =
  if show_table then begin table [ 1; 4; 64; 1024 ]; 0 end
  else
    Pmc_par.Pool.with_pool ~jobs (fun pool ->
        match files with
        | [] ->
            (* the built-in examples are a demonstration: fig6_missing_fence
               is *meant* to fail its check, so the exit code stays 0 *)
            ignore (check_jobs pool (builtin_jobs ()));
            0
        | paths -> (
            match file_jobs paths with
            | jobs_or_errors ->
                List.iter
                  (function
                    | Error (path, msg) ->
                        Fmt.epr "cannot read %s: %s@." path msg
                    | Ok _ -> ())
                  jobs_or_errors;
                let jobs =
                  List.filter_map Stdlib.Result.to_option jobs_or_errors
                in
                let code = if jobs = [] then 0 else check_jobs pool jobs in
                if List.exists Stdlib.Result.is_error jobs_or_errors then 2
                else code))

let cmd =
  Cmd.v
    (Cmd.info "pmc_check" ~doc:"Static PMC annotation checking & lowering"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"every checked program passed.";
           Cmd.Exit.info 2 ~doc:"input error: unreadable file or parse failure.";
           Cmd.Exit.info 3
             ~doc:"property failure: a program has discipline errors.";
           Cmd.Exit.info 4
             ~doc:"formal PMC-model inconsistency (reserved; unused here).";
         ])
    Term.(
      const main
      $ Arg.(value & flag & info [ "table" ] ~doc:"Print lowering tables.")
      $ Arg.(
          value
          & opt_all string []
          & info [ "file"; "f" ] ~docv:"FILE"
              ~doc:
                "Check an annotated program file.  Repeatable; the batch \
                 is checked in parallel under --jobs and reported in \
                 argument order.")
      $ Pmc_par.Cli.term ~action:"Check the batch" ())

let () = exit (Cmd.eval' cmd)
