(* pmc_check — the annotation tooling as a command-line front-end: parse
   annotated-program files, run the static discipline checker and the
   Table II lowering pass.  Several files can be checked in one batch,
   and the per-program checks fan out over a domain pool.

     pmc_check                            # check + lower the built-in examples
     pmc_check --file prog.pmc            # check + lower a program file
     pmc_check -f a.pmc -f b.pmc -j 4     # batch, checked on 4 domains
     pmc_check --table                    # the lowering table per object size *)

open Cmdliner

let builtin = [ Pmc_compile.Ir.fig6; Pmc_compile.Ir.fig6_missing_fence ]

(* Check every program on the pool, then print reports sequentially in
   input order — workers never touch the formatter, so the output is
   byte-identical at any --jobs. *)
let check_programs pool (programs : Pmc_compile.Ir.program list) : bool =
  let reports =
    Pmc_par.Pool.map_list_ordered pool programs ~f:Pmc_compile.Check.check
  in
  List.iter2
    (fun p r ->
      Pmc_compile.Report.pp_check Fmt.stdout p r;
      Pmc_compile.Report.pp_program_expansion Fmt.stdout
        Pmc_sim.Config.default p;
      Fmt.pr "@.")
    programs reports;
  List.for_all Pmc_compile.Check.ok reports

let check_files pool paths =
  let parsed =
    List.map
      (fun path ->
        match Pmc_compile.Parse.parse_file path with
        | Ok p -> Ok p
        | Error errs ->
            List.iter
              (fun e ->
                Fmt.epr "%s: %a@." path Pmc_compile.Parse.pp_error e)
              errs;
            Error path)
      paths
  in
  let programs = List.filter_map Result.to_option parsed in
  let all_ok = programs = [] || check_programs pool programs in
  if List.exists Result.is_error parsed then 2 else if all_ok then 0 else 1

let table sizes =
  List.iter
    (fun bytes ->
      Pmc_compile.Report.pp_lowering_table Fmt.stdout Pmc_sim.Config.default
        ~bytes;
      Fmt.pr "@.")
    sizes

let main show_table files jobs =
  if show_table then begin table [ 1; 4; 64; 1024 ]; 0 end
  else
    Pmc_par.Pool.with_pool ~jobs (fun pool ->
        match files with
        | [] ->
            ignore (check_programs pool builtin);
            0
        | paths -> check_files pool paths)

let cmd =
  Cmd.v
    (Cmd.info "pmc_check" ~doc:"Static PMC annotation checking & lowering")
    Term.(
      const main
      $ Arg.(value & flag & info [ "table" ] ~doc:"Print lowering tables.")
      $ Arg.(
          value
          & opt_all string []
          & info [ "file"; "f" ] ~docv:"FILE"
              ~doc:
                "Check an annotated program file.  Repeatable; the batch \
                 is checked in parallel under --jobs and reported in \
                 argument order.")
      $ Arg.(
          value & opt int 1
          & info [ "jobs"; "j" ] ~docv:"N"
              ~doc:
                "Check the batch on N domains (0 = recommended count).  \
                 Output is identical at any width."))

let () = exit (Cmd.eval' cmd)
