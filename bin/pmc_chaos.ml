(* pmc_chaos — fault-injection soak harness CLI.

     pmc_chaos soak --seeds 20 --backend dsm
         run every registered app under 20 seeded fault schedules;
         each run must complete correctly or fail with a typed error —
         a silent wrong answer (exit 3) or a PMC-inconsistent trace
         (exit 4) fails the soak;
     pmc_chaos soak --seeds 20 --smoke
         the CI gate: three kernels at a small geometry;
     pmc_chaos run --app stencil --seed 7 --intensity 2.0
         one seeded run with its full fault and verdict report;
     pmc_chaos crash --seeds 0..255 --backend farmem
         power-cut crash-recovery experiments on the far-memory tier:
         each seed's run is cut at a deterministic cycle, recovery
         replays the redo log from the durable image, and the checker
         requires no torn object (exit 3) and a PMC-consistent durable
         prefix (exit 4);
     pmc_chaos zerocost --baseline BENCH_BASELINE.json
         assert the zero-cost-when-off invariant: disarmed chaos
         machines ([Config.no_faults (Config.chaos ...)]) reproduce the
         fault-free runs bit for bit, including the committed benchmark
         baseline's architectural metrics.

   Seeded runs go through the shared Pmc_jobs layer — the same code
   path the pmc_serve daemon runs.  Exit codes follow the documented
   convention: 0 success; 2 input error; 3 property failure (wrong
   result, zerocost difference); 4 formal PMC-model inconsistency. *)

open Cmdliner
open Pmc_sim

let parse_backend s =
  match Pmc.Backends.of_string s with
  | Some b -> b
  | None ->
      Fmt.epr "unknown backend %S (seqcst|nocc|swcc|dsm|spm|farmem)@." s;
      exit 2

let parse_app s =
  match Pmc_apps.Registry.find s with
  | Some a -> a
  | None ->
      Fmt.epr "unknown app %S; one of: %s@." s
        (String.concat ", " Pmc_apps.Registry.names);
      exit 2

let parse_topology ~cores s =
  match Topology.resolve s ~cores with
  | Ok t -> t
  | Error e ->
      Fmt.epr "%s@." e;
      exit 2

(* The smoke matrix: three kernels with distinct traffic shapes at a
   geometry small enough for CI. *)
let smoke_apps = [ "histogram"; "reduce"; "stencil" ]

(* ---------------- soak ---------------- *)

(* A soak failure exits 4 when any run's model replay found the trace
   PMC-inconsistent, else 3 — wrong results are property failures. *)
let soak_exit_code (reports : Pmc_apps.Chaos.report list) =
  if
    List.exists
      (fun (r : Pmc_apps.Chaos.report) ->
        match r.Pmc_apps.Chaos.verdict with
        | Pmc_apps.Chaos.Inconsistent _ -> true
        | _ -> false)
      reports
  then 4
  else 3

let chaos_job ~app ~backend ~topology ~cores ~scale ~seed ~intensity
    ~model_check ~replay_budget =
  Pmc_jobs.Job.Chaos
    {
      Pmc_jobs.Job.c_app = app;
      c_backend = backend;
      c_topology = topology;
      c_cores = cores;
      c_scale = scale;
      seed;
      intensity;
      model_check;
      replay_budget;
    }

let soak_cmd app backend topology cores scale seeds seed_base intensity smoke
    no_model_check replay_budget jobs quiet =
  ignore (parse_backend backend);
  (* smoke geometry: small enough that every trace fits the replay
     budget and the model checker runs on every completed seed *)
  let cores, scale = if smoke then (4, min scale 4) else (cores, scale) in
  ignore (parse_topology ~cores topology);
  let app_names =
    match app with
    | Some a ->
        ignore (parse_app a);
        [ a ]
    | None ->
        let names = if smoke then smoke_apps else Pmc_apps.Registry.names in
        List.iter (fun a -> ignore (parse_app a)) names;
        names
  in
  let seeds = List.init (max 1 seeds) (fun i -> seed_base + i) in
  (* the wall of seeds as one job batch: apps outer, seeds inner — the
     same run order (and therefore the same bytes) as always *)
  let wall =
    List.concat_map
      (fun a ->
        List.map
          (fun seed ->
            chaos_job ~app:a ~backend ~topology ~cores ~scale ~seed
              ~intensity ~model_check:(not no_model_check) ~replay_budget)
          seeds)
      app_names
  in
  let results =
    Pmc_par.Pool.with_pool ~jobs (fun pool ->
        Pmc_jobs.Run.run_all ~pool wall)
  in
  let reports =
    List.filter_map
      (function
        | Pmc_jobs.Result.Chaos_soaked r -> Some r
        | Pmc_jobs.Result.Error e ->
            Fmt.epr "soak: %s@." e.Pmc_jobs.Result.detail;
            exit 2
        | _ -> None)
      results
  in
  if not quiet then
    List.iter (fun r -> Fmt.pr "%a@." Pmc_apps.Chaos.pp_report r) reports;
  let s = Pmc_apps.Chaos.summarize reports in
  Fmt.pr "%a@." Pmc_apps.Chaos.pp_soak s;
  Fmt.pr "%a@." Pmc_apps.Chaos.pp_tag_summary (Pmc_apps.Chaos.soak_counts s);
  if not (Pmc_apps.Chaos.ok s) then begin
    List.iter
      (fun (r : Pmc_apps.Chaos.report) ->
        if not (Pmc_apps.Chaos.acceptable r.Pmc_apps.Chaos.verdict) then
          Fmt.epr "FAILED: %a@." Pmc_apps.Chaos.pp_report r)
      s.Pmc_apps.Chaos.reports;
    exit (soak_exit_code s.Pmc_apps.Chaos.reports)
  end

(* ---------------- run ---------------- *)

let run_cmd app backend topology cores scale seed intensity no_model_check
    replay_budget =
  ignore (parse_app app);
  ignore (parse_backend backend);
  ignore (parse_topology ~cores topology);
  let r =
    Pmc_jobs.Run.run
      (chaos_job ~app ~backend ~topology ~cores ~scale ~seed ~intensity
         ~model_check:(not no_model_check) ~replay_budget)
  in
  Fmt.pr "%a" Pmc_jobs.Result.pp r;
  (match r with
  | Pmc_jobs.Result.Error e -> Fmt.epr "run: %s@." e.Pmc_jobs.Result.detail
  | _ -> ());
  match Pmc_jobs.Result.exit_code r with 0 -> () | c -> exit c

(* ---------------- crash ---------------- *)

(* --seeds accepts either a count N (seeds seed-base .. seed-base+N-1)
   or an inclusive range A..B. *)
let parse_seed_list ~seed_base s =
  let fail () =
    Fmt.epr "bad --seeds %S: expected a count N or a range A..B@." s;
    exit 2
  in
  match String.split_on_char '.' s with
  | [ n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> List.init n (fun i -> seed_base + i)
      | _ -> fail ())
  | [ a; ""; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when b >= a -> List.init (b - a + 1) (fun i -> a + i)
      | _ -> fail ())
  | _ -> fail ()

let crash_job ~app ~backend ~topology ~cores ~scale ~seed ~window ~log
    ~model_check ~replay_budget =
  Pmc_jobs.Job.Crash
    {
      Pmc_jobs.Job.x_app = app;
      x_backend = backend;
      x_topology = topology;
      x_cores = cores;
      x_scale = scale;
      x_seed = seed;
      x_window = window;
      x_log = log;
      x_model_check = model_check;
      x_replay_budget = replay_budget;
    }

(* Torn objects are property failures (3); an inconsistent durable
   prefix is a formal model violation (4); experiment errors are input/
   runtime errors (2). *)
let crash_exit_code (s : Pmc_apps.Crash.sweep) =
  if s.Pmc_apps.Crash.inconsistent > 0 then 4
  else if s.Pmc_apps.Crash.torn > 0 then 3
  else 2

let crash_cmd app backend topology cores scale seeds seed_base window no_log
    smoke no_model_check replay_budget jobs quiet =
  let b = parse_backend backend in
  let cores, scale = if smoke then (4, min scale 4) else (cores, scale) in
  let topo = parse_topology ~cores topology in
  let app_names =
    match app with
    | Some a ->
        ignore (parse_app a);
        [ a ]
    | None ->
        let names = if smoke then smoke_apps else Pmc_apps.Registry.names in
        List.iter (fun a -> ignore (parse_app a)) names;
        names
  in
  let seeds = parse_seed_list ~seed_base seeds in
  let log = not no_log in
  (* the cut window is learned once per app from its fault-free twin
     (mirroring Crash.sweep), then travels inside each job — the cut
     cycle is fixed by the job encoding alone, at any --jobs width *)
  let window_of =
    match window with
    | Some w -> fun _ -> max 1 w
    | None ->
        let cfg =
          { Config.default with cores; topology = topo; farmem_log = log }
        in
        fun name ->
          let a = parse_app name in
          let r = Pmc_apps.Runner.run ~cfg a ~backend:b ~scale in
          max 1 r.Pmc_apps.Runner.wall
  in
  let windows = List.map (fun a -> (a, window_of a)) app_names in
  let wall =
    List.concat_map
      (fun (a, w) ->
        List.map
          (fun seed ->
            crash_job ~app:a ~backend ~topology ~cores ~scale ~seed ~window:w
              ~log ~model_check:(not no_model_check) ~replay_budget)
          seeds)
      windows
  in
  let results =
    Pmc_par.Pool.with_pool ~jobs (fun pool ->
        Pmc_jobs.Run.run_all ~pool wall)
  in
  let reports =
    List.filter_map
      (function
        | Pmc_jobs.Result.Crash_checked r -> Some r
        | Pmc_jobs.Result.Error e ->
            Fmt.epr "crash: %s@." e.Pmc_jobs.Result.detail;
            exit 2
        | _ -> None)
      results
  in
  if not quiet then
    List.iter (fun r -> Fmt.pr "%a@." Pmc_apps.Crash.pp_report r) reports;
  let s = Pmc_apps.Crash.summarize reports in
  Fmt.pr "%a@." Pmc_apps.Crash.pp_sweep s;
  if not (Pmc_apps.Crash.ok s) then begin
    List.iter
      (fun (r : Pmc_apps.Crash.report) ->
        if not (Pmc_apps.Crash.acceptable r.Pmc_apps.Crash.verdict) then
          Fmt.epr "FAILED: %a@." Pmc_apps.Crash.pp_report r)
      s.Pmc_apps.Crash.reports;
    exit (crash_exit_code s)
  end

(* ---------------- zerocost ---------------- *)

(* Identity matrix: each smoke app on the replication-heavy back-ends. *)
let zerocost_identity ~seed ~quiet =
  let failures = ref 0 in
  List.iter
    (fun name ->
      let app = parse_app name in
      List.iter
        (fun backend ->
          let id =
            Pmc_apps.Chaos.zero_cost_identity app ~backend ~cores:8 ~scale:16
              ~seed
          in
          if id.Pmc_apps.Chaos.identical then begin
            if not quiet then
              Fmt.pr "identical  %-10s %s@." name
                (Pmc.Backends.to_string backend)
          end
          else begin
            incr failures;
            Fmt.epr "DIFFERS    %-10s %s: %s@." name
              (Pmc.Backends.to_string backend)
              id.Pmc_apps.Chaos.detail
          end)
        [
          Pmc.Backends.Swcc; Pmc.Backends.Dsm; Pmc.Backends.Spm;
          Pmc.Backends.Farmem;
        ])
    smoke_apps;
  !failures

(* Replay the committed benchmark baseline's cases on a disarmed-chaos
   machine and require every architectural metric to match exactly —
   the strongest form of "no perf cost when off". *)
let zerocost_baseline ~path ~seed ~quiet =
  let report =
    try Pmc_bench.Report.load path
    with Sys_error msg | Failure msg ->
      Fmt.epr "cannot load %s: %s@." path msg;
      exit 2
  in
  let failures = ref 0 in
  (* model-plane (check) cases carry work counts, not simulator metrics;
     there is no machine to disarm, so they are outside this gate *)
  let sim_samples =
    List.filter
      (fun (s : Pmc_bench.Measure.sample) ->
        s.Pmc_bench.Measure.case.Pmc_bench.Spec.work = Pmc_bench.Spec.Sim)
      report.Pmc_bench.Report.samples
  in
  List.iter
    (fun (s : Pmc_bench.Measure.sample) ->
      let case = s.Pmc_bench.Measure.case in
      let app = parse_app case.Pmc_bench.Spec.app in
      let cfg =
        Config.no_faults
          (Config.chaos ~seed
             { Config.default with cores = case.Pmc_bench.Spec.cores;
               topology = case.Pmc_bench.Spec.topology })
      in
      let cfg =
        if report.Pmc_bench.Report.unbatched then Config.unbatched cfg
        else cfg
      in
      let r =
        Pmc_apps.Runner.run ~cfg app ~backend:case.Pmc_bench.Spec.backend
          ~scale:case.Pmc_bench.Spec.scale
      in
      let m = s.Pmc_bench.Measure.metrics in
      let sum = r.Pmc_apps.Runner.summary in
      let mismatches =
        List.filter_map
          (fun (name, base, cur) ->
            if base = cur then None
            else Some (Printf.sprintf "%s %d->%d" name base cur))
          [
            ("cycles", m.Pmc_bench.Measure.cycles, r.Pmc_apps.Runner.wall);
            ("noc_flits", m.Pmc_bench.Measure.noc_flits, sum.Stats.noc_flits);
            ( "noc_writes",
              m.Pmc_bench.Measure.noc_writes,
              sum.Stats.noc_writes );
            ("flushes", m.Pmc_bench.Measure.flushes, sum.Stats.flushes);
            ( "lock_acquires",
              m.Pmc_bench.Measure.lock_acquires,
              sum.Stats.lock_acquires );
            ( "lock_transfers",
              m.Pmc_bench.Measure.lock_transfers,
              sum.Stats.lock_transfers );
            ( "dcache_misses",
              m.Pmc_bench.Measure.dcache_misses,
              sum.Stats.dcache_misses );
            ( "instructions",
              m.Pmc_bench.Measure.instructions,
              sum.Stats.instructions );
          ]
      in
      let id = Pmc_bench.Spec.case_id case in
      if mismatches = [] then begin
        if not quiet then Fmt.pr "identical  %s@." id
      end
      else begin
        incr failures;
        Fmt.epr "DIFFERS    %s: %s@." id (String.concat ", " mismatches)
      end)
    sim_samples;
  !failures

let zerocost_cmd baseline seed quiet =
  let failures = ref 0 in
  failures := zerocost_identity ~seed ~quiet;
  (match baseline with
  | None -> ()
  | Some path -> failures := !failures + zerocost_baseline ~path ~seed ~quiet);
  if !failures > 0 then begin
    Fmt.epr
      "zerocost: %d case(s) differ — the disarmed fault plane is not free@."
      !failures;
    exit 3
  end;
  Fmt.pr "zerocost: disarmed chaos machines are bit-identical to baseline@."

(* ---------------- cmdliner plumbing ---------------- *)

let backend_t =
  Arg.(
    value & opt string "dsm"
    & info [ "backend"; "b" ] ~doc:"seqcst, nocc, swcc, dsm, spm or farmem.")

let crash_backend_t =
  Arg.(
    value & opt string "farmem"
    & info [ "backend"; "b" ]
        ~doc:"Back-end to crash (only farmem has a durable tier).")

let cores_t =
  Arg.(value & opt int 8 & info [ "cores"; "c" ] ~doc:"Number of tiles.")

let topology_t =
  Arg.(
    value & opt string "star"
    & info [ "topology" ] ~docv:"FABRIC"
        ~doc:
          "Fabric the tiles are wired in: star, mesh[:XxY], torus[:XxY] \
           or hier[:CxS].  Bare mesh/torus/hier pick a near-square \
           factorization of the core count; on routed fabrics chaos \
           draws one fault outcome per physical link of each route.")

let scale_t =
  Arg.(value & opt int 16 & info [ "scale"; "s" ] ~doc:"Workload scale.")

let seeds_t =
  Arg.(
    value & opt int 10
    & info [ "seeds" ] ~docv:"N" ~doc:"Fault schedules per app (the wall).")

let seed_base_t =
  Arg.(
    value & opt int 1
    & info [ "seed-base" ] ~docv:"S" ~doc:"First fault seed of the wall.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault schedule seed.")

let intensity_t =
  Arg.(
    value & opt float 1.0
    & info [ "intensity" ] ~docv:"X"
        ~doc:"Fault probability multiplier (1.0 = the standard mix).")

let smoke_t =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"CI geometry: three kernels, 4 cores, capped scale.")

let no_model_check_t =
  Arg.(
    value & flag
    & info [ "no-model-check" ]
        ~doc:"Skip the PMC model replay of completed runs.")

let jobs_t = Pmc_par.Cli.term ~action:"Run the wall of seeds" ()

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the summary.")

let replay_budget_t =
  Arg.(
    value & opt (some int) None
    & info [ "replay-budget" ] ~docv:"N"
        ~doc:
          "Skip the model replay for traces above N captured events \
           (default 10000).")

let crash_seeds_t =
  Arg.(
    value & opt string "8"
    & info [ "seeds" ] ~docv:"N|A..B"
        ~doc:
          "Power-cut seeds per app: a count N (from seed-base) or an \
           inclusive range A..B.")

let window_t =
  Arg.(
    value & opt (some int) None
    & info [ "window" ] ~docv:"CYCLES"
        ~doc:
          "Cut window in cycles.  Default: each app's fault-free wall \
           clock, so the cut lands inside the run.")

let no_log_t =
  Arg.(
    value & flag
    & info [ "no-log" ]
        ~doc:
          "Disarm the redo log: exit_x publishes word by word, which a \
           mid-publication cut can tear — the negative control the \
           checker must catch.")

let app_opt_t =
  Arg.(
    value & opt (some string) None
    & info [ "app"; "a" ] ~doc:"Run a single application.")

let app_t =
  Arg.(value & opt string "stencil" & info [ "app"; "a" ] ~doc:"Application.")

let baseline_t =
  Arg.(
    value & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Also replay this benchmark report's cases on a disarmed-chaos \
           machine and require exact metric equality.")

let soak_c =
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run apps under a wall of seeded fault schedules"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"every run completed or failed typed.";
           Cmd.Exit.info 2 ~doc:"input error: unknown app or backend.";
           Cmd.Exit.info 3 ~doc:"property failure: a silent wrong result.";
           Cmd.Exit.info 4
             ~doc:"a model replay found a trace PMC-inconsistent.";
         ])
    Term.(
      const soak_cmd $ app_opt_t $ backend_t $ topology_t $ cores_t $ scale_t
      $ seeds_t $ seed_base_t $ intensity_t $ smoke_t $ no_model_check_t
      $ replay_budget_t $ jobs_t $ quiet_t)

let run_c =
  Cmd.v
    (Cmd.info "run" ~doc:"One seeded chaos run with a full report"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"the run completed or failed typed.";
           Cmd.Exit.info 2 ~doc:"input error: unknown app or backend.";
           Cmd.Exit.info 3 ~doc:"property failure: a silent wrong result.";
           Cmd.Exit.info 4
             ~doc:"the model replay found the trace PMC-inconsistent.";
         ])
    Term.(
      const run_cmd $ app_t $ backend_t $ topology_t $ cores_t $ scale_t
      $ seed_t $ intensity_t $ no_model_check_t $ replay_budget_t)

let crash_c =
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Power-cut crash-recovery experiments on the far-memory tier"
       ~exits:
         [
           Cmd.Exit.info 0
             ~doc:"every experiment recovered clean (or completed).";
           Cmd.Exit.info 2
             ~doc:"input error, or an experiment itself failed.";
           Cmd.Exit.info 3
             ~doc:"property failure: a recovered object was torn.";
           Cmd.Exit.info 4
             ~doc:"a durable prefix replayed PMC-inconsistent.";
         ])
    Term.(
      const crash_cmd $ app_opt_t $ crash_backend_t $ topology_t $ cores_t
      $ scale_t $ crash_seeds_t $ seed_base_t $ window_t $ no_log_t $ smoke_t
      $ no_model_check_t $ replay_budget_t $ jobs_t $ quiet_t)

let zerocost_c =
  Cmd.v
    (Cmd.info "zerocost"
       ~doc:"Assert the disarmed fault plane costs nothing"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"disarmed runs are bit-identical.";
           Cmd.Exit.info 2 ~doc:"the baseline report could not be read.";
           Cmd.Exit.info 3
             ~doc:"property failure: a disarmed run differed from baseline.";
         ])
    Term.(const zerocost_cmd $ baseline_t $ seed_t $ quiet_t)

let main_c =
  Cmd.group
    (Cmd.info "pmc_chaos" ~version:"%%VERSION%%"
       ~doc:"Fault injection and chaos soak harness for the PMC simulator")
    [ soak_c; run_c; crash_c; zerocost_c ]

let () = exit (Cmd.eval main_c)
