(* pmc_serve — persistent checking/simulation service with a verdict
   cache.

     pmc_serve daemon --socket /tmp/pmc.sock --jobs 4
         serve litmus/check/bench/chaos/crash jobs over a Unix-domain socket,
         multiplexed onto a domain pool, with an LRU verdict cache;
     pmc_serve submit litmus --program mp_fence --socket /tmp/pmc.sock
         one job over the socket, rendered exactly as the one-shot CLI
         would render it;
     pmc_serve submit bench --app stencil --local
         the same job executed in-process (no daemon) — the comparator
         CI diffs daemon answers against;
     pmc_serve stats --socket /tmp/pmc.sock
         queue depth, cache hit rate, pool width;
     pmc_serve shutdown --socket /tmp/pmc.sock
         graceful drain: outstanding jobs finish, parked replies are
         delivered, then the daemon exits.

   Exit codes follow the documented convention: 0 success; 2 input,
   budget or runtime error; 3 property failure (discipline errors,
   checksum mismatch, wrong result); 4 formal PMC-model
   inconsistency. *)

open Cmdliner
module Job = Pmc_jobs.Job
module Jresult = Pmc_jobs.Result
module Run = Pmc_jobs.Run
module Protocol = Pmc_serve.Protocol

let exit_codes_doc =
  [
    Cmd.Exit.info 0 ~doc:"the job succeeded.";
    Cmd.Exit.info 2
      ~doc:"input error, exhausted budget, runtime error or daemon rejection.";
    Cmd.Exit.info 3
      ~doc:
        "property failure: discipline errors, checksum mismatch or wrong \
         result.";
    Cmd.Exit.info 4 ~doc:"formal PMC-model inconsistency.";
  ]

let socket_t =
  Arg.(
    value
    & opt string "/tmp/pmc_serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let max_cycles_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:"Per-request simulated-cycle budget (tightens the watchdog).")

let max_states_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Per-request state budget for litmus enumeration.")

let budget_of max_cycles max_states = { Run.max_cycles; max_states }

(* ---------------- daemon ---------------- *)

let daemon_cmd socket jobs cache_capacity max_queue max_cycles max_states
    quiet =
  let budget = budget_of max_cycles max_states in
  Pmc_par.Pool.with_pool ~jobs (fun pool ->
      let server =
        Pmc_serve.Server.create ~budget ~cache_capacity ~max_queue pool
      in
      if not quiet then
        Fmt.pr "pmc_serve: listening on %s (width %d, cache %d, queue %d)@."
          socket
          (Pmc_serve.Server.width server)
          cache_capacity max_queue;
      (match Pmc_serve.Daemon.serve ~socket_path:socket server with
      | () -> ()
      | exception Unix.Unix_error (e, op, arg) ->
          Fmt.epr "pmc_serve: %s %s: %s@." op arg (Unix.error_message e);
          exit 2);
      if not quiet then
        let s = Pmc_serve.Server.stats server in
        Fmt.pr
          "pmc_serve: drained; %d jobs completed, %d rejected, %d/%d cache \
           hits@."
          s.Protocol.completed s.Protocol.rejected s.Protocol.cache_hits
          (s.Protocol.cache_hits + s.Protocol.cache_misses))

(* ---------------- submit ---------------- *)

let connect socket =
  match Pmc_serve.Client.connect socket with
  | c -> c
  | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "pmc_serve: cannot connect to %s: %s@." socket
        (Unix.error_message e);
      exit 2

(* Run [job] locally or over the socket and render the result exactly
   as the corresponding one-shot CLI would; exit per the 0/2/3/4
   convention. *)
let submit_job ~socket ~local ~no_wait ~budget job =
  if local then begin
    let r = Run.run ~budget job in
    Fmt.pr "%a" Jresult.pp r;
    (match r with
    | Jresult.Error e -> Fmt.epr "pmc_serve: %s@." e.Jresult.detail
    | _ -> ());
    exit (Jresult.exit_code r)
  end
  else
    Pmc_serve.Client.with_connection socket @@ fun c ->
    match
      Pmc_serve.Client.request c
        (Protocol.Submit { job; budget; wait = not no_wait })
    with
    | Protocol.Submitted { id; cached } ->
        Fmt.pr "submitted %d%s@." id (if cached then " (cached)" else "")
    | Protocol.Job_result { result; _ } ->
        Fmt.pr "%a" Jresult.pp result;
        (match result with
        | Jresult.Error e -> Fmt.epr "pmc_serve: %s@." e.Jresult.detail
        | _ -> ());
        exit (Jresult.exit_code result)
    | Protocol.Rejected { reason } ->
        Fmt.epr "pmc_serve: rejected: %s@." reason;
        exit 2
    | Protocol.Protocol_error { reason } ->
        Fmt.epr "pmc_serve: protocol error: %s@." reason;
        exit 2
    | _ ->
        Fmt.epr "pmc_serve: unexpected response@.";
        exit 2

let local_t =
  Arg.(
    value & flag
    & info [ "local" ]
        ~doc:
          "Execute in-process instead of over the socket — the one-shot \
           comparator the daemon's answers are byte-identical to.")

let no_wait_t =
  Arg.(
    value & flag
    & info [ "no-wait" ]
        ~doc:"Print the job ticket instead of waiting for the result.")

let submit_litmus_cmd socket local no_wait max_cycles max_states program
    models limit =
  submit_job ~socket ~local ~no_wait
    ~budget:(budget_of max_cycles max_states)
    (Job.Litmus { Job.program; models; limit })

let submit_check_cmd socket local no_wait max_cycles max_states builtin file =
  let name, source =
    match (builtin, file) with
    | Some b, None ->
        let p =
          match b with
          | "fig6" -> Pmc_compile.Ir.fig6
          | "fig6_missing_fence" -> Pmc_compile.Ir.fig6_missing_fence
          | _ ->
              Fmt.epr "unknown builtin %S (fig6|fig6_missing_fence)@." b;
              exit 2
        in
        (p.Pmc_compile.Ir.pname, Pmc_compile.Parse.print p)
    | None, Some f -> (
        match In_channel.with_open_text f In_channel.input_all with
        | s -> (Filename.basename f, s)
        | exception Sys_error msg ->
            Fmt.epr "cannot read %s: %s@." f msg;
            exit 2)
    | _ ->
        Fmt.epr "exactly one of FILE or --builtin is required@.";
        exit 2
  in
  submit_job ~socket ~local ~no_wait
    ~budget:(budget_of max_cycles max_states)
    (Job.Check { Job.name; source })

let submit_bench_cmd socket local no_wait max_cycles max_states app backend
    topology cores scale unbatched warmup repeat =
  submit_job ~socket ~local ~no_wait
    ~budget:(budget_of max_cycles max_states)
    (Job.Bench
       { Job.app; backend; topology; cores; scale; unbatched; warmup;
         repeat })

let submit_chaos_cmd socket local no_wait max_cycles max_states app backend
    topology cores scale seed intensity no_model_check replay_budget =
  submit_job ~socket ~local ~no_wait
    ~budget:(budget_of max_cycles max_states)
    (Job.Chaos
       {
         Job.c_app = app;
         c_backend = backend;
         c_topology = topology;
         c_cores = cores;
         c_scale = scale;
         seed;
         intensity;
         model_check = not no_model_check;
         replay_budget;
       })

let submit_crash_cmd socket local no_wait max_cycles max_states app backend
    topology cores scale seed window no_log no_model_check replay_budget =
  submit_job ~socket ~local ~no_wait
    ~budget:(budget_of max_cycles max_states)
    (Job.Crash
       {
         Job.x_app = app;
         x_backend = backend;
         x_topology = topology;
         x_cores = cores;
         x_scale = scale;
         x_seed = seed;
         x_window = window;
         x_log = not no_log;
         x_model_check = not no_model_check;
         x_replay_budget = replay_budget;
       })

(* ---------------- stats / shutdown ---------------- *)

let stats_cmd socket json =
  Pmc_serve.Client.with_connection socket @@ fun c ->
  match Pmc_serve.Client.request c Protocol.Stats with
  | Protocol.Stats_reply s ->
      if json then
        Fmt.pr "%s@." (Pmc_bench.Json.to_compact (Protocol.stats_to_json s))
      else begin
        Fmt.pr "width:         %d@." s.Protocol.width;
        Fmt.pr "queue depth:   %d (%d running)@." s.Protocol.queue_depth
          s.Protocol.running;
        Fmt.pr "submitted:     %d@." s.Protocol.submitted;
        Fmt.pr "completed:     %d@." s.Protocol.completed;
        Fmt.pr "rejected:      %d@." s.Protocol.rejected;
        Fmt.pr "cache:         %d hits, %d misses, %d entries@."
          s.Protocol.cache_hits s.Protocol.cache_misses
          s.Protocol.cache_entries;
        if s.Protocol.draining then Fmt.pr "draining@."
      end
  | _ ->
      Fmt.epr "pmc_serve: unexpected response@.";
      exit 2

let shutdown_cmd socket =
  let c = connect socket in
  (match Pmc_serve.Client.request c Protocol.Shutdown with
  | Protocol.Shutdown_started { pending } ->
      Fmt.pr "shutting down; %d job(s) draining@." pending
  | _ ->
      Fmt.epr "pmc_serve: unexpected response@.";
      exit 2);
  Pmc_serve.Client.close c

(* ---------------- bench-client ---------------- *)

(* Load generator: submit a round-robin batch of litmus jobs in wait
   mode over one connection and report how many came from the verdict
   cache.  Repeat a run against a warm daemon and every request should
   be a hit. *)
let bench_client_cmd socket requests model =
  Pmc_serve.Client.with_connection socket @@ fun c ->
  let programs = Array.of_list Run.program_names in
  let fresh = ref 0 and cached = ref 0 and failed = ref 0 in
  let tickets = ref [] in
  for i = 0 to requests - 1 do
    let program = programs.(i mod Array.length programs) in
    let job =
      Job.Litmus { Job.program; models = [ model ]; limit = None }
    in
    match
      Pmc_serve.Client.request c
        (Protocol.Submit { job; budget = Run.no_budget; wait = false })
    with
    | Protocol.Submitted { id; cached = true } ->
        incr cached;
        tickets := id :: !tickets
    | Protocol.Submitted { id; cached = false } ->
        incr fresh;
        tickets := id :: !tickets
    | Protocol.Rejected { reason } ->
        incr failed;
        Fmt.epr "rejected: %s@." reason
    | _ -> incr failed
  done;
  (* collect every ticket so the daemon is warm and idle afterwards *)
  List.iter
    (fun id ->
      match
        Pmc_serve.Client.request c (Protocol.Result_of { id; wait = true })
      with
      | Protocol.Job_result _ -> ()
      | _ -> incr failed)
    (List.rev !tickets);
  Fmt.pr "%d requests: %d fresh, %d cached, %d failed@." requests !fresh
    !cached !failed;
  match Pmc_serve.Client.request c Protocol.Stats with
  | Protocol.Stats_reply s ->
      Fmt.pr "daemon: %d completed, %d/%d cache hits, queue depth %d@."
        s.Protocol.completed s.Protocol.cache_hits
        (s.Protocol.cache_hits + s.Protocol.cache_misses)
        s.Protocol.queue_depth;
      if !failed > 0 then exit 2
  | _ ->
      Fmt.epr "pmc_serve: unexpected response@.";
      exit 2

(* ---------------- cmdliner plumbing ---------------- *)

let daemon_c =
  let cache_t =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"LRU verdict cache capacity (entries).")
  in
  let max_queue_t =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission control: reject submissions beyond $(docv) \
             outstanding jobs.")
  in
  let quiet_t =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup banner.")
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Serve jobs over a Unix-domain socket until shutdown"
       ~exits:
         (Cmd.Exit.info 2 ~doc:"the socket could not be bound."
         :: Cmd.Exit.defaults))
    Term.(
      const daemon_cmd $ socket_t
      $ Pmc_par.Cli.term ~action:"Run accepted jobs" ()
      $ cache_t $ max_queue_t $ max_cycles_t $ max_states_t $ quiet_t)

let submit_litmus_c =
  let program_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "program"; "p" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Litmus program; one of: %s."
               (String.concat ", " Run.program_names)))
  in
  let models_t =
    Arg.(
      value & opt_all string []
      & info [ "model"; "m" ] ~docv:"MODEL"
          ~doc:
            "Model to enumerate (repeatable; default all): sc, pc, cc, ec, \
             slow, pmc.")
  in
  let limit_t =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"State-space enumeration limit.")
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Submit a litmus enumeration job"
       ~exits:exit_codes_doc)
    Term.(
      const submit_litmus_cmd $ socket_t $ local_t $ no_wait_t $ max_cycles_t
      $ max_states_t $ program_t $ models_t $ limit_t)

let submit_check_c =
  let builtin_t =
    Arg.(
      value & opt (some string) None
      & info [ "builtin" ] ~docv:"NAME"
          ~doc:"Check a built-in program: fig6 or fig6_missing_fence.")
  in
  let file_t =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Annotated program file to check.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Submit a discipline-check job"
       ~exits:exit_codes_doc)
    Term.(
      const submit_check_cmd $ socket_t $ local_t $ no_wait_t $ max_cycles_t
      $ max_states_t $ builtin_t $ file_t)

let backend_t =
  Arg.(
    value & opt string "dsm"
    & info [ "backend"; "b" ] ~doc:"seqcst, nocc, swcc, dsm, spm or farmem.")

let cores_t =
  Arg.(value & opt int 8 & info [ "cores"; "c" ] ~doc:"Number of tiles.")

let topology_t =
  Arg.(
    value & opt string "star"
    & info [ "topology" ] ~docv:"FABRIC"
        ~doc:
          "Fabric the tiles are wired in: star, mesh[:XxY], torus[:XxY] \
           or hier[:CxS].")

let scale_t =
  Arg.(value & opt int 16 & info [ "scale"; "s" ] ~doc:"Workload scale.")

let submit_bench_c =
  let app_t =
    Arg.(
      value & opt string "stencil" & info [ "app"; "a" ] ~doc:"Application.")
  in
  let unbatched_t =
    Arg.(
      value & flag
      & info [ "unbatched" ] ~doc:"Disable write batching (worst case).")
  in
  let warmup_t =
    Arg.(
      value & opt int 0
      & info [ "warmup" ] ~docv:"N" ~doc:"Unmeasured warmup repeats.")
  in
  let repeat_t =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N" ~doc:"Measured repeats (determinism check).")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Submit a benchmark case job" ~exits:exit_codes_doc)
    Term.(
      const submit_bench_cmd $ socket_t $ local_t $ no_wait_t $ max_cycles_t
      $ max_states_t $ app_t $ backend_t $ topology_t $ cores_t $ scale_t
      $ unbatched_t $ warmup_t $ repeat_t)

let submit_chaos_c =
  let app_t =
    Arg.(
      value & opt string "stencil" & info [ "app"; "a" ] ~doc:"Application.")
  in
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault schedule seed.")
  in
  let intensity_t =
    Arg.(
      value & opt float 1.0
      & info [ "intensity" ] ~docv:"X"
          ~doc:"Fault probability multiplier (1.0 = the standard mix).")
  in
  let no_model_check_t =
    Arg.(
      value & flag
      & info [ "no-model-check" ]
          ~doc:"Skip the PMC model replay of completed runs.")
  in
  let replay_budget_t =
    Arg.(
      value & opt (some int) None
      & info [ "replay-budget" ] ~docv:"N"
          ~doc:"Skip the model replay for traces above N captured events.")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Submit a seeded chaos-run job"
       ~exits:exit_codes_doc)
    Term.(
      const submit_chaos_cmd $ socket_t $ local_t $ no_wait_t $ max_cycles_t
      $ max_states_t $ app_t $ backend_t $ topology_t $ cores_t $ scale_t
      $ seed_t $ intensity_t $ no_model_check_t $ replay_budget_t)

let submit_crash_c =
  let app_t =
    Arg.(
      value & opt string "stencil" & info [ "app"; "a" ] ~doc:"Application.")
  in
  let crash_backend_t =
    Arg.(
      value & opt string "farmem"
      & info [ "backend"; "b" ]
          ~doc:"Back-end to crash (only farmem has a durable tier).")
  in
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Power-cut seed.")
  in
  let window_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "window" ] ~docv:"CYCLES"
          ~doc:
            "Cut window in cycles.  Required: the cut cycle is a pure \
             function of (seed, window), so the job encoding — the \
             verdict-cache key — must carry it.")
  in
  let no_log_t =
    Arg.(
      value & flag
      & info [ "no-log" ]
          ~doc:"Disarm the redo log (the tearable debug mode).")
  in
  let no_model_check_t =
    Arg.(
      value & flag
      & info [ "no-model-check" ]
          ~doc:"Skip the PMC model replay of the durable prefix.")
  in
  let replay_budget_t =
    Arg.(
      value & opt (some int) None
      & info [ "replay-budget" ] ~docv:"N"
          ~doc:"Skip the model replay for prefixes above N events.")
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"Submit a power-cut crash-recovery job"
       ~exits:exit_codes_doc)
    Term.(
      const submit_crash_cmd $ socket_t $ local_t $ no_wait_t $ max_cycles_t
      $ max_states_t $ app_t $ crash_backend_t $ topology_t $ cores_t
      $ scale_t $ seed_t $ window_t $ no_log_t $ no_model_check_t
      $ replay_budget_t)

let submit_c =
  Cmd.group
    (Cmd.info "submit"
       ~doc:
         "Submit one job (over the socket, or in-process with $(b,--local))"
       ~exits:exit_codes_doc)
    [
      submit_litmus_c; submit_check_c; submit_bench_c; submit_chaos_c;
      submit_crash_c;
    ]

let stats_c =
  let json_t =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the stats object as JSON.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Query queue depth and cache hit rate")
    Term.(const stats_cmd $ socket_t $ json_t)

let shutdown_c =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Gracefully drain and stop the daemon")
    Term.(const shutdown_cmd $ socket_t)

let bench_client_c =
  let requests_t =
    Arg.(
      value & opt int 24
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Number of submissions.")
  in
  let model_t =
    Arg.(
      value & opt string "pmc"
      & info [ "model"; "m" ] ~doc:"Model to enumerate on each request.")
  in
  Cmd.v
    (Cmd.info "bench-client"
       ~doc:"Hammer a daemon with litmus jobs and report the cache hit rate")
    Term.(const bench_client_cmd $ socket_t $ requests_t $ model_t)

let main_c =
  Cmd.group
    (Cmd.info "pmc_serve" ~version:"%%VERSION%%"
       ~doc:
         "Persistent checking/simulation service with a verdict cache"
       ~exits:exit_codes_doc)
    [ daemon_c; submit_c; stats_c; shutdown_c; bench_client_c ]

let () = exit (Cmd.eval main_c)
