(* pmc_bench — benchmark regression harness for the PMC simulator.

   `run` measures a suite of (app × back-end × cores × scale) cases with
   warmup, repeats and outlier trimming, and writes a schema-versioned
   JSON report; `compare` diffs two reports against per-metric
   tolerances and exits non-zero on regression — the CI gate against the
   committed BENCH_BASELINE.json.

     pmc_bench run --suite smoke --label pr -o BENCH_pr.json
     pmc_bench run --suite smoke --unbatched -o BENCH_unbatched.json
     pmc_bench compare BENCH_BASELINE.json BENCH_pr.json
     pmc_bench compare base.json pr.json --tolerance cycles=0.05 *)

open Cmdliner

let load_report path =
  try Ok (Pmc_bench.Report.load path) with
  | Sys_error msg -> Error msg
  | Failure msg -> Error (path ^ ": " ^ msg)
  | Pmc_bench.Json.Parse_error msg -> Error (path ^ ": " ^ msg)

(* ---------------- run ---------------- *)

(* Apply the --app / --cores / --topology overrides to every case of the
   suite; topology names resolve against the (possibly overridden) core
   count. *)
let override_cases ~apps ~topology ~cores (spec : Pmc_bench.Spec.t) =
  let keep (c : Pmc_bench.Spec.case) =
    apps = [] || List.mem c.Pmc_bench.Spec.app apps
  in
  let cases =
    List.map
      (fun (c : Pmc_bench.Spec.case) ->
        let c =
          match cores with None -> c | Some n -> { c with Pmc_bench.Spec.cores = n }
        in
        match topology with
        | None -> c
        | Some name -> (
            match Pmc_sim.Topology.resolve name ~cores:c.Pmc_bench.Spec.cores with
            | Ok t -> { c with Pmc_bench.Spec.topology = t }
            | Error e ->
                Fmt.epr "%s@." e;
                exit 1))
      (List.filter keep spec.Pmc_bench.Spec.cases)
  in
  if cases = [] then begin
    Fmt.epr "--app filter matched no case of the suite@.";
    exit 1
  end;
  { spec with Pmc_bench.Spec.cases }

let run_cmd suite_name label out unbatched warmup repeat apps topology cores
    jobs quiet =
  match
    Pmc_bench.Spec.suite ~label ~unbatched ~warmup ~repeat suite_name
  with
  | None ->
      Fmt.epr "unknown suite %S (known: %s)@." suite_name
        (String.concat ", " Pmc_bench.Spec.suite_names);
      exit 1
  | Some spec ->
      let spec = override_cases ~apps ~topology ~cores spec in
      let report =
        Pmc_par.Pool.with_pool ~jobs (fun pool ->
            Pmc_bench.Report.run ~pool spec)
      in
      if not quiet then Fmt.pr "%a" Pmc_bench.Report.pp report;
      (match out with
      | None -> ()
      | Some path -> (
          try
            Pmc_bench.Report.save path report;
            if not quiet then Fmt.pr "wrote %s@." path
          with Sys_error msg ->
            Fmt.epr "cannot write %s: %s@." path msg;
            exit 2));
      let bad =
        List.exists
          (fun (s : Pmc_bench.Measure.sample) ->
            (not s.Pmc_bench.Measure.ok)
            || not s.Pmc_bench.Measure.deterministic)
          report.Pmc_bench.Report.samples
      in
      if bad then begin
        Fmt.epr "run: checksum or determinism failure (see report)@.";
        exit 3
      end

let suite_t =
  Arg.(
    value & opt string "smoke"
    & info [ "suite" ] ~docv:"NAME"
        ~doc:
          "Benchmark suite: $(b,smoke) (the CI gate), $(b,full), or \
           $(b,scale) (served-traffic apps on 256- and 1024-tile routed \
           fabrics).")

let apps_t =
  Arg.(
    value & opt_all string []
    & info [ "app" ] ~docv:"NAME"
        ~doc:
          "Keep only the suite's cases for application $(docv) \
           (repeatable).  Default: every case.")

let topology_t =
  Arg.(
    value & opt (some string) None
    & info [ "topology" ] ~docv:"FABRIC"
        ~doc:
          "Override every case's fabric: star, mesh[:XxY], torus[:XxY] or \
           hier[:CxS].  Bare names pick a near-square factorization of \
           each case's core count.")

let cores_t =
  Arg.(
    value & opt (some int) None
    & info [ "cores"; "c" ] ~docv:"N"
        ~doc:"Override every case's tile count.")

let label_t =
  Arg.(
    value & opt string "bench"
    & info [ "label" ] ~docv:"LABEL"
        ~doc:"Free-form tag recorded in the report header.")

let out_t =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the JSON report to $(docv).")

let unbatched_t =
  Arg.(
    value & flag
    & info [ "unbatched" ]
        ~doc:
          "Run on the pre-batching cost model (multicast, lazy DSM \
           versioning and burst cache maintenance disabled) instead of \
           the default machine.")

let warmup_t =
  Arg.(
    value & opt int 1
    & info [ "warmup" ] ~docv:"N" ~doc:"Discarded runs before timing.")

let repeat_t =
  Arg.(
    value & opt int 3
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Timed runs per case.  Architectural metrics must be identical \
           across repeats (the simulator is deterministic); host time is \
           outlier-trimmed and averaged.")

let jobs_t = Pmc_par.Cli.term ~action:"Measure cases" ()

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only write the report.")

let run_term =
  Term.(
    const run_cmd $ suite_t $ label_t $ out_t $ unbatched_t $ warmup_t
    $ repeat_t $ apps_t $ topology_t $ cores_t $ jobs_t $ quiet_t)

let run_info =
  Cmd.info "run" ~doc:"Measure a benchmark suite and emit a JSON report"
    ~exits:
      (Cmd.Exit.info 2 ~doc:"the report file could not be written."
      :: Cmd.Exit.info 3
           ~doc:"a checksum mismatched or a case was nondeterministic."
      :: Cmd.Exit.defaults)

(* ---------------- compare ---------------- *)

let compare_cmd base_path cur_path tolerance_spec no_rate_gate subset =
  let tolerances =
    match tolerance_spec with
    | None -> Pmc_bench.Compare.default_tolerances
    | Some spec -> (
        try Pmc_bench.Compare.parse_tolerance_overrides spec
        with Invalid_argument msg ->
          Fmt.epr "bad --tolerance: %s@." msg;
          exit 2)
  in
  match (load_report base_path, load_report cur_path) with
  | Error msg, _ | _, Error msg ->
      Fmt.epr "%s@." msg;
      exit 2
  | Ok base, Ok cur ->
      let outcome =
        Pmc_bench.Compare.run ~tolerances ~gate_rate:(not no_rate_gate)
          ~subset ~base ~cur ()
      in
      Fmt.pr "%a" Pmc_bench.Compare.pp outcome;
      if not (Pmc_bench.Compare.ok outcome) then exit 1

let base_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASELINE" ~doc:"Baseline report (e.g. the committed \
                                     BENCH_BASELINE.json).")

let cur_t =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"Report to gate.")

let tolerance_t =
  Arg.(
    value & opt (some string) None
    & info [ "tolerance" ] ~docv:"SPEC"
        ~doc:
          "Override per-metric tolerances as fractional changes, e.g. \
           $(b,cycles=0.05,noc_flits=0.1).  Unnamed metrics keep their \
           defaults (cycles/noc_flits/flushes 2%, lock_transfers 10%).")

let no_rate_gate_t =
  Arg.(
    value & flag
    & info [ "no-rate-gate" ]
        ~doc:
          "Disable the host-speed rate gate (architectural metrics are \
           still gated).  For comparing two arms of the same run — the \
           $(b,--jobs) equality gates — where both arms shared the host \
           and their relative speed carries no signal.")

let subset_t =
  Arg.(
    value & flag
    & info [ "subset" ]
        ~doc:
          "Accept a current report that ran only a sub-suite of the \
           baseline: baseline cases absent from it are not counted \
           missing.  Lets the combined $(b,ci) baseline gate the \
           $(b,smoke) and $(b,check) suites separately.")

let compare_term =
  Term.(
    const compare_cmd $ base_t $ cur_t $ tolerance_t $ no_rate_gate_t
    $ subset_t)

let compare_info =
  Cmd.info "compare"
    ~doc:"Diff two reports against per-metric tolerances (the CI gate)"
    ~exits:
      (Cmd.Exit.info 1
         ~doc:
           "regression: a gated metric exceeded its tolerance, a case \
            disappeared, or a current sample is broken."
      :: Cmd.Exit.info 2 ~doc:"a report could not be read or parsed."
      :: Cmd.Exit.defaults)

(* ---------------- group ---------------- *)

let cmd =
  Cmd.group
    (Cmd.info "pmc_bench"
       ~doc:"Benchmark regression harness for the PMC simulator"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs registered PMC applications across memory-architecture \
              back-ends on the simulated SoC, records architectural \
              metrics (cycles, NoC flits, cache maintenance, lock \
              handovers) in schema-versioned JSON reports, and diffs \
              reports against per-metric tolerances so CI can reject \
              performance regressions.";
         ])
    [ Cmd.v run_info run_term; Cmd.v compare_info compare_term ]

let () = exit (Cmd.eval cmd)
