(* pmc_trace — the tracing subsystem's own CLI.

     pmc_trace run --app raytrace --backend swcc -o out.json --race-check
         run an app with tracing, export Perfetto JSON, race-check and
         model-replay the observed execution;
     pmc_trace race-demo
         the seeded-race demonstration: the Fig. 6 flag/data program with
         its annotations stripped, caught by the dynamic detector with
         the two conflicting accesses and their cores — then the
         annotated version of the same program, which is clean;
     pmc_trace dump --app stencil --backend dsm
         print the raw merged event timeline (debugging aid). *)

open Cmdliner
open Pmc_sim

let parse_backend s =
  match Pmc.Backends.of_string s with
  | Some b -> b
  | None ->
      Fmt.epr "unknown backend %S (seqcst|nocc|swcc|dsm|spm|farmem)@." s;
      exit 1

let parse_app s =
  match Pmc_apps.Registry.find s with
  | Some a -> a
  | None ->
      Fmt.epr "unknown app %S; one of: %s@." s
        (String.concat ", " Pmc_apps.Registry.names);
      exit 1

let record ~app ~backend ~cores ~scale ~capacity =
  let cfg = { Config.default with cores } in
  let recorder = ref None in
  let r =
    Pmc_apps.Runner.run ~cfg
      ~on_api:(fun api ->
        recorder := Some (Pmc_trace.Recorder.attach ?capacity api))
      app ~backend ~scale
  in
  (r, Option.get !recorder)

(* ---------------- run ---------------- *)

let run_cmd app backend cores scale out race_check model_check capacity =
  let app = parse_app app and backend = parse_backend backend in
  let r, rec_ = record ~app ~backend ~cores ~scale ~capacity in
  Fmt.pr "%a" Pmc_apps.Runner.pp_result r;
  let events = Pmc_trace.Recorder.events rec_ in
  let dropped = Pmc_trace.Recorder.dropped_total rec_ in
  Fmt.pr "recorded %d events across %d cores%s@." (List.length events)
    (Pmc_trace.Recorder.cores rec_)
    (if dropped = 0 then ""
     else Printf.sprintf " (%d dropped — raise --capacity)" dropped);
  (match out with
  | None -> ()
  | Some path ->
      let stats =
        Machine.stats (Pmc.Api.machine (Pmc_trace.Recorder.api rec_))
      in
      (try
         Pmc_trace.Export.write_file ~stats ~path events;
         Fmt.pr "wrote %s (open in ui.perfetto.dev)@." path
       with Sys_error msg -> Fmt.epr "cannot write %s: %s@." path msg; exit 2));
  let rc = ref 0 in
  if race_check then begin
    match Pmc_trace.Racecheck.check ~cores events with
    | [] -> Fmt.pr "race check: no data races detected@."
    | races ->
        Fmt.pr "race check: %d distinct data race(s):@." (List.length races);
        List.iter (fun r -> Fmt.pr "  %a@." Pmc_trace.Racecheck.pp_race r)
          races;
        rc := 3
  end;
  if model_check then begin
    let l = Pmc_trace.Replay.lower events in
    let report =
      Pmc_model.History.check ~init:l.Pmc_trace.Replay.init ~procs:cores
        ~locs:(max 1 l.Pmc_trace.Replay.locs) l.Pmc_trace.Replay.events
    in
    Fmt.pr "model replay: %d history events over %d locations%s@."
      (List.length l.Pmc_trace.Replay.events)
      l.Pmc_trace.Replay.locs
      (if dropped > 0 then " (TRACE INCOMPLETE — verdict unreliable)" else "");
    if Pmc_model.History.ok report then
      Fmt.pr "model replay: run is PMC-consistent (History.check ok)@."
    else begin
      Fmt.pr "model replay: %d violation(s):@."
        (List.length report.Pmc_model.History.violations);
      List.iter
        (fun v -> Fmt.pr "  %a@." Pmc_model.History.pp_violation v)
        report.Pmc_model.History.violations;
      rc := 4
    end
  end;
  exit !rc

(* ---------------- race-demo ---------------- *)

(* The Fig. 6 flag/data pattern with its annotations stripped (the
   [~check:false] runtime permits it, exactly like writing the program
   without PMC): publisher writes payload then flag, consumer polls the
   flag and reads the payload.  No entry/exit means no ≺S edges, so every
   payload and flag access is a data race — and the detector names the
   two conflicting accesses.  The annotated version is race-free. *)
let race_demo () =
  let go ~annotated =
    let m = Machine.create { Config.small with cores = 2 } in
    let api =
      Pmc.Api.create ~check:annotated
        (Pmc.Backends.make_backend Pmc.Backends.Nocc m)
    in
    let rec_ = Pmc_trace.Recorder.attach api in
    let data = Pmc.Api.alloc_words api ~name:"X" ~words:2 in
    let flag = Pmc.Api.alloc_words api ~name:"flag" ~words:1 in
    if annotated then begin
      Machine.spawn m ~core:0 (fun () ->
          Pmc.Msg.send api ~data ~flag [| 42l; 7l |]);
      Machine.spawn m ~core:1 (fun () ->
          ignore (Pmc.Msg.recv api ~data ~flag))
    end
    else begin
      Machine.spawn m ~core:0 (fun () ->
          (* unannotated: raw writes, no entry/exit, no fence *)
          Pmc.Api.set api data 0 42l;
          Pmc.Api.set api data 1 7l;
          Pmc.Api.set api flag 0 1l);
      Machine.spawn m ~core:1 (fun () ->
          while Pmc.Api.get api flag 0 <> 1l do
            Engine.idle (Machine.engine m) 16
          done;
          ignore (Pmc.Api.get api data 0);
          ignore (Pmc.Api.get api data 1))
    end;
    Machine.run m;
    let events = Pmc_trace.Recorder.events rec_ in
    Pmc_trace.Racecheck.check ~cores:2 events
  in
  Fmt.pr "== Fig. 6 message passing, annotations stripped ==@.";
  (match go ~annotated:false with
  | [] ->
      Fmt.pr "no races detected — UNEXPECTED@.";
      exit 1
  | races ->
      Fmt.pr "%d distinct data race(s) detected:@." (List.length races);
      List.iter (fun r -> Fmt.pr "  %a@." Pmc_trace.Racecheck.pp_race r) races);
  Fmt.pr "@.== the same program, properly annotated ==@.";
  (match go ~annotated:true with
  | [] -> Fmt.pr "no data races — the annotations carry every ordering@."
  | races ->
      Fmt.pr "%d race(s) — UNEXPECTED@." (List.length races);
      exit 1)

(* ---------------- dump ---------------- *)

let dump_cmd app backend cores scale capacity limit =
  let app = parse_app app and backend = parse_backend backend in
  let _, rec_ = record ~app ~backend ~cores ~scale ~capacity in
  let events = Pmc_trace.Recorder.events rec_ in
  let n = List.length events in
  List.iteri
    (fun i e -> if i < limit then Fmt.pr "%a@." Pmc_trace.Event.pp e)
    events;
  if n > limit then Fmt.pr "... (%d more events)@." (n - limit)

(* ---------------- cmdliner plumbing ---------------- *)

let app_t =
  Arg.(value & opt string "raytrace" & info [ "app"; "a" ] ~doc:"Application.")

let backend_t =
  Arg.(
    value & opt string "swcc"
    & info [ "backend"; "b" ] ~doc:"seqcst, nocc, swcc, dsm, spm or farmem.")

let cores_t =
  Arg.(value & opt int 8 & info [ "cores"; "c" ] ~doc:"Number of tiles.")

let scale_t =
  Arg.(value & opt int 32 & info [ "scale"; "s" ] ~doc:"Workload scale.")

let capacity_t =
  Arg.(
    value & opt (some int) None
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Per-core trace ring capacity (default 65536).")

let out_t =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write Chrome trace JSON.")

let race_check_t =
  Arg.(value & flag & info [ "race-check" ] ~doc:"Run the race detector.")

let model_check_t =
  Arg.(
    value & flag
    & info [ "model-check" ] ~doc:"Replay through the PMC model checker.")

let limit_t =
  Arg.(value & opt int 200 & info [ "limit"; "n" ] ~doc:"Max events to print.")

let run_c =
  Cmd.v (Cmd.info "run" ~doc:"Trace an app × back-end run")
    Term.(
      const run_cmd $ app_t $ backend_t $ cores_t $ scale_t $ out_t
      $ race_check_t $ model_check_t $ capacity_t)

let race_demo_c =
  Cmd.v
    (Cmd.info "race-demo"
       ~doc:"Seeded data race caught by the dynamic detector")
    Term.(const race_demo $ const ())

let dump_c =
  Cmd.v (Cmd.info "dump" ~doc:"Print the merged event timeline")
    Term.(
      const dump_cmd $ app_t $ backend_t $ cores_t $ scale_t $ capacity_t
      $ limit_t)

let cmd =
  Cmd.group
    (Cmd.info "pmc_trace"
       ~doc:
         "Runtime tracing, dynamic race detection and model-replay \
          validation for PMC runs")
    [ run_c; race_demo_c; dump_c ]

let () = exit (Cmd.eval cmd)
