(* pmc_trace subsystem tests: recorder bookkeeping, race-detector
   soundness (qcheck property: DRF programs are never flagged, the
   unannotated flag program always is), model replay of recorded runs
   (apps × back-ends must be PMC-consistent), and the Chrome trace-event
   export. *)

open Pmc_sim

let cfg = { Config.small with cores = 4 }

(* ---------------- fixture programs ---------------- *)

(* Record a two-core run of [prog : api -> data -> flag -> unit]. *)
let record_pair ?(check = true) ?capacity prog =
  let m = Machine.create { Config.small with cores = 2 } in
  let api = Pmc.Backends.create ~check Pmc.Backends.Nocc m in
  let rec_ = Pmc_trace.Recorder.attach ?capacity api in
  let data = Pmc.Api.alloc_words api ~name:"data" ~words:2 in
  let flag = Pmc.Api.alloc_words api ~name:"flag" ~words:1 in
  prog m api data flag;
  Machine.run m;
  rec_

(* The annotated Fig. 6 publish/consume — DRF by construction. *)
let annotated_prog m api data flag =
  Machine.spawn m ~core:0 (fun () ->
      Pmc.Msg.send api ~data ~flag [| 42l; 7l |]);
  Machine.spawn m ~core:1 (fun () -> ignore (Pmc.Msg.recv api ~data ~flag))

(* The same program with the annotations stripped — racy everywhere. *)
let racy_prog m api data flag =
  Machine.spawn m ~core:0 (fun () ->
      Pmc.Api.set api data 0 42l;
      Pmc.Api.set api data 1 7l;
      Pmc.Api.set api flag 0 1l);
  Machine.spawn m ~core:1 (fun () ->
      while Pmc.Api.get api flag 0 <> 1l do
        Engine.idle (Machine.engine m) 16
      done;
      ignore (Pmc.Api.get api data 0);
      ignore (Pmc.Api.get api data 1))

(* ---------------- recorder ---------------- *)

let test_recorder_basic () =
  let rec_ = record_pair annotated_prog in
  let events = Pmc_trace.Recorder.events rec_ in
  Alcotest.(check bool) "events recorded" true (List.length events > 0);
  Alcotest.(check int) "nothing dropped" 0
    (Pmc_trace.Recorder.dropped_total rec_);
  Alcotest.(check int) "recorded = |events|"
    (List.length events)
    (Pmc_trace.Recorder.recorded rec_);
  (* the merged timeline carries strictly increasing (hence unique) seq *)
  let seqs = List.map (fun (e : Pmc_trace.Event.t) -> e.seq) events in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "seq strictly increasing" true (increasing seqs)

let test_recorder_drops () =
  let rec_ = record_pair ~capacity:8 annotated_prog in
  Alcotest.(check bool) "drops counted" true
    (Pmc_trace.Recorder.dropped_total rec_ > 0);
  (* surviving events per core ≤ capacity *)
  Alcotest.(check bool) "rings bounded" true
    (Pmc_trace.Recorder.recorded rec_ <= 8 * Pmc_trace.Recorder.cores rec_)

let test_recorder_detach () =
  let rec_ = record_pair annotated_prog in
  let n = Pmc_trace.Recorder.recorded rec_ in
  Pmc_trace.Recorder.detach rec_;
  (* a fresh op after detach must not be recorded *)
  let api = Pmc_trace.Recorder.api rec_ in
  let o = Pmc.Api.alloc_words api ~name:"post" ~words:1 in
  Pmc.Api.poke api o 0 1l;
  Alcotest.(check int) "no recording after detach" n
    (Pmc_trace.Recorder.recorded rec_)

(* ---------------- race detector ---------------- *)

let test_race_reported () =
  let rec_ = record_pair ~check:false racy_prog in
  let races =
    Pmc_trace.Racecheck.check ~cores:2 (Pmc_trace.Recorder.events rec_)
  in
  Alcotest.(check bool) "races found" true (races <> []);
  (* the data-word race must be among them, write by core 0 vs read by
     core 1, with both conflicting accesses identified *)
  let on_data =
    List.filter
      (fun (r : Pmc_trace.Racecheck.race) ->
        r.obj.Pmc_trace.Event.name = "data")
      races
  in
  Alcotest.(check bool) "race on data object" true (on_data <> []);
  List.iter
    (fun (r : Pmc_trace.Racecheck.race) ->
      let a = r.Pmc_trace.Racecheck.first
      and b = r.Pmc_trace.Racecheck.second in
      Alcotest.(check bool) "different cores" true
        (a.Pmc_trace.Racecheck.core <> b.Pmc_trace.Racecheck.core);
      Alcotest.(check bool) "at least one write" true
        (a.Pmc_trace.Racecheck.is_write || b.Pmc_trace.Racecheck.is_write))
    races

let test_annotated_clean () =
  let rec_ = record_pair annotated_prog in
  let races =
    Pmc_trace.Racecheck.check ~cores:2 (Pmc_trace.Recorder.events rec_)
  in
  Alcotest.(check int) "annotated program is DRF" 0 (List.length races)

(* qcheck: random annotated producer/consumer configurations are never
   flagged; the same configurations with annotations stripped always
   are.  Generates (words, payload values, extra fence?, reader count). *)
let gen_config =
  QCheck.Gen.(
    let* words = int_range 1 6 in
    let* values = list_size (return words) (map Int32.of_int (int_bound 1000)) in
    let* readers = int_range 1 3 in
    let* extra_fence = bool in
    return (words, Array.of_list values, readers, extra_fence))

let arb_config =
  QCheck.make gen_config ~print:(fun (w, _, r, f) ->
      Printf.sprintf "words=%d readers=%d fence=%b" w r f)

let run_config ~annotated (words, values, readers, extra_fence) =
  let cores = readers + 1 in
  let m = Machine.create { Config.small with cores } in
  let api = Pmc.Backends.create ~check:annotated Pmc.Backends.Nocc m in
  let rec_ = Pmc_trace.Recorder.attach api in
  let data = Pmc.Api.alloc_words api ~name:"data" ~words in
  let flag = Pmc.Api.alloc_words api ~name:"flag" ~words:1 in
  if annotated then begin
    Machine.spawn m ~core:0 (fun () ->
        Pmc.Msg.send api ~data ~flag values;
        if extra_fence then Pmc.Api.fence api);
    for r = 1 to readers do
      Machine.spawn m ~core:r (fun () ->
          ignore (Pmc.Msg.recv api ~data ~flag))
    done
  end
  else begin
    Machine.spawn m ~core:0 (fun () ->
        Array.iteri (fun i v -> Pmc.Api.set api data i v) values;
        Pmc.Api.set api flag 0 1l);
    for r = 1 to readers do
      Machine.spawn m ~core:r (fun () ->
          while Pmc.Api.get api flag 0 <> 1l do
            Engine.idle (Machine.engine m) 16
          done;
          for i = 0 to words - 1 do
            ignore (Pmc.Api.get api data i)
          done)
    done
  end;
  Machine.run m;
  Pmc_trace.Racecheck.check ~cores (Pmc_trace.Recorder.events rec_)

let prop_drf_never_flagged =
  QCheck.Test.make ~count:30 ~name:"annotated configs never flagged"
    arb_config (fun c -> run_config ~annotated:true c = [])

let prop_racy_always_flagged =
  QCheck.Test.make ~count:30 ~name:"unannotated configs always flagged"
    arb_config (fun c -> run_config ~annotated:false c <> [])

(* ---------------- model replay ---------------- *)

let test_replay_apps () =
  List.iter
    (fun (app_name, scale) ->
      let app = Option.get (Pmc_apps.Registry.find app_name) in
      List.iter
        (fun backend ->
          let recorder = ref None in
          let r =
            Pmc_apps.Runner.run ~cfg
              ~on_api:(fun api ->
                recorder := Some (Pmc_trace.Recorder.attach api))
              app ~backend ~scale
          in
          let name =
            Printf.sprintf "%s/%s" app.Pmc_apps.Runner.name
              (Pmc.Backends.to_string backend)
          in
          Alcotest.(check bool) (name ^ " checksum") true
            (Pmc_apps.Runner.ok r);
          let rec_ = Option.get !recorder in
          Alcotest.(check int) (name ^ " complete trace") 0
            (Pmc_trace.Recorder.dropped_total rec_);
          let report =
            Pmc_trace.Replay.check ~cores:cfg.Config.cores
              (Pmc_trace.Recorder.events rec_)
          in
          Alcotest.(check bool) (name ^ " PMC-consistent") true
            (Pmc_model.History.ok report))
        [ Pmc.Backends.Seqcst; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
          Pmc.Backends.Spm ])
    (* stencil at a deliberately small scale: its RO-heavy traces make the
       quadratic History.check expensive *)
    [ ("histogram", 8); ("stencil", 4) ]

let test_replay_lowering () =
  let rec_ = record_pair annotated_prog in
  let l = Pmc_trace.Replay.lower (Pmc_trace.Recorder.events rec_) in
  Alcotest.(check bool) "history events produced" true
    (l.Pmc_trace.Replay.events <> []);
  Alcotest.(check bool) "locations assigned" true
    (l.Pmc_trace.Replay.locs >= 3) (* 2 data words + flag *)

(* ---------------- export ---------------- *)

let test_export_json () =
  let rec_ = record_pair annotated_prog in
  let api = Pmc_trace.Recorder.api rec_ in
  let stats = Machine.stats (Pmc.Api.machine api) in
  let json =
    Pmc_trace.Export.to_string ~stats (Pmc_trace.Recorder.events rec_)
  in
  Alcotest.(check bool) "has traceEvents" true
    (String.length json > 2
    && String.sub json 0 15 = "{\"traceEvents\":");
  (* structurally: balanced braces/brackets outside strings *)
  let depth = ref 0 and ok = ref true and in_str = ref false in
  String.iteri
    (fun i c ->
      if !in_str then begin
        if c = '"' && json.[i - 1] <> '\\' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    json;
  Alcotest.(check bool) "balanced json" true (!ok && !depth = 0);
  (* the annotated run must produce matched scope slices *)
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "scope slices present" true
    (contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "thread names present" true
    (contains json "thread_name");
  Alcotest.(check bool) "stall counters present" true
    (contains json "\"ph\":\"C\"")

let suite =
  ( "trace",
    [
      Alcotest.test_case "recorder basic" `Quick test_recorder_basic;
      Alcotest.test_case "recorder drops" `Quick test_recorder_drops;
      Alcotest.test_case "recorder detach" `Quick test_recorder_detach;
      Alcotest.test_case "race reported" `Quick test_race_reported;
      Alcotest.test_case "annotated clean" `Quick test_annotated_clean;
      QCheck_alcotest.to_alcotest prop_drf_never_flagged;
      QCheck_alcotest.to_alcotest prop_racy_always_flagged;
      Alcotest.test_case "replay apps x backends" `Slow test_replay_apps;
      Alcotest.test_case "replay lowering" `Quick test_replay_lowering;
      Alcotest.test_case "export json" `Quick test_export_json;
    ] )
