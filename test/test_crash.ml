(* Crash-consistency tests for the far-memory tier: the persistence
   domain's durability semantics (visible implies durable), redo-log
   recovery and its idempotence, and the crash checker's contract — a
   logged [exit_x] never tears, and the deliberately tearable no-log
   mode is caught. *)

open Pmc_sim

let find_app name =
  match Pmc_apps.Registry.find name with
  | Some a -> a
  | None -> Alcotest.fail (name ^ " app missing")

(* ---------------- the persistence domain ---------------- *)

let mk_dev () = Farmem.create ~data_bytes:4096 ~word_occupancy:4 ~slots:4

let test_durable_only_after_barrier () =
  let d = mk_dev () in
  let addr = Farmem.alloc d ~name:"x" ~bytes:16 in
  Farmem.poke_u32 d addr 7;
  Farmem.write_u32_int d addr 42;
  (* the write sits in the volatile device cache: a committed read and
     the durable media still see the old value *)
  Alcotest.(check int) "read serves durable data" 7 (Farmem.read_u32_int d addr);
  Alcotest.(check int) "media unchanged" 7 (Farmem.peek_u32 d addr);
  Alcotest.(check bool) "dirty" true (Farmem.dirty_bytes d > 0);
  let flushed = Farmem.barrier d in
  Alcotest.(check bool) "barrier drained bytes" true (flushed > 0);
  Alcotest.(check int) "now durable" 42 (Farmem.peek_u32 d addr);
  Alcotest.(check int) "clean after barrier" 0 (Farmem.dirty_bytes d)

let test_image_drops_device_cache () =
  let d = mk_dev () in
  let addr = Farmem.alloc d ~name:"x" ~bytes:16 in
  Farmem.write_u32_int d addr 1;
  ignore (Farmem.barrier d);
  Farmem.write_u32_int d addr 2 (* never flushed: lost by the cut *);
  let img = Farmem.image d in
  let f = mk_dev () in
  ignore (Farmem.alloc f ~name:"x" ~bytes:16);
  Farmem.restore f img;
  Alcotest.(check int) "only the durable write survives" 1
    (Farmem.peek_u32 f addr)

let test_recover_empty_log () =
  let d = mk_dev () in
  let r = Farmem.recover d in
  Alcotest.(check bool) "no committed slot" false r.Farmem.committed;
  Alcotest.(check int) "no records" 0 r.Farmem.records

let test_recover_idempotent_on_committed_slot () =
  (* hand-craft a committed slot: one record homing 2 words, then check
     recovery applies it and a second recovery changes nothing *)
  let d = mk_dev () in
  let home = Farmem.alloc d ~name:"x" ~bytes:16 in
  let slot = Farmem.slot_addr d 0 in
  Farmem.poke_u32 d (slot + 4) 1 (* record count *);
  Farmem.poke_u32 d (slot + 8) home (* record: home *);
  Farmem.poke_u32 d (slot + 12) 2 (* record: words *);
  Farmem.poke_u32 d (slot + 16) 111;
  Farmem.poke_u32 d (slot + 20) 222;
  Farmem.poke_u32 d slot 1 (* commit flag *);
  let img = Farmem.image d in
  let r1 = Farmem.recover d in
  Alcotest.(check bool) "committed slot found" true r1.Farmem.committed;
  Alcotest.(check int) "two words applied" 2 r1.Farmem.words_applied;
  Alcotest.(check int) "word 0 applied" 111 (Farmem.peek_u32 d home);
  Alcotest.(check int) "word 1 applied" 222 (Farmem.peek_u32 d (home + 4));
  let after_once = Farmem.image d in
  let r2 = Farmem.recover d in
  Alcotest.(check bool) "flag cleared: second recovery a no-op" false
    r2.Farmem.committed;
  Alcotest.(check bytes) "media unchanged by second recovery" after_once
    (Farmem.image d);
  (* and from the original image, recovery lands on the same bytes *)
  let f = mk_dev () in
  ignore (Farmem.alloc f ~name:"x" ~bytes:16);
  Farmem.restore f img;
  ignore (Farmem.recover f);
  Alcotest.(check bytes) "same image, same recovered media" after_once
    (Farmem.image f)

let test_uncommitted_slot_discarded () =
  let d = mk_dev () in
  let home = Farmem.alloc d ~name:"x" ~bytes:16 in
  Farmem.poke_u32 d home 5;
  let slot = Farmem.slot_addr d 0 in
  (* records written, commit flag never set: the cut beat the commit *)
  Farmem.poke_u32 d (slot + 4) 1;
  Farmem.poke_u32 d (slot + 8) home;
  Farmem.poke_u32 d (slot + 12) 1;
  Farmem.poke_u32 d (slot + 16) 999;
  let r = Farmem.recover d in
  Alcotest.(check bool) "nothing committed" false r.Farmem.committed;
  Alcotest.(check int) "home untouched" 5 (Farmem.peek_u32 d home)

(* ---------------- power-cut determinism ---------------- *)

let test_cut_cycle_pure () =
  let c1 = Fault.power_cut_cycle ~fault_seed:9 ~window:50_000 in
  let c2 = Fault.power_cut_cycle ~fault_seed:9 ~window:50_000 in
  Alcotest.(check int) "same (seed, window), same cut" c1 c2;
  Alcotest.(check bool) "cut inside the window" true
    (c1 >= 1 && c1 <= 50_000);
  let c3 = Fault.power_cut_cycle ~fault_seed:10 ~window:50_000 in
  Alcotest.(check bool) "seeds spread the cut" true (c1 <> c3)

(* ---------------- recovery idempotence (qcheck) ---------------- *)

(* Crash a real run, then recover the durable image twice into separate
   fresh devices: byte-identical media both times — and recovering the
   already-recovered image is a no-op. *)
let prop_recovery_idempotent =
  QCheck.Test.make ~count:15 ~name:"recovery is idempotent"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let app = find_app "histogram" in
      let cores = 4 in
      let base = { Config.default with Config.cores } in
      let cfg = Config.crash ~seed ~window:3_000 base in
      let machine = ref None in
      let on_api api = machine := Some (Pmc.Api.machine api) in
      (try ignore (Pmc_apps.Runner.run ~cfg ~on_api app
                     ~backend:Pmc.Backends.Farmem ~scale:8)
       with Engine.Power_cut _ -> ());
      match Option.bind !machine Machine.farmem_opt with
      | None -> false
      | Some dev ->
          let img = Farmem.image dev in
          let fresh () =
            let f =
              Farmem.create ~data_bytes:cfg.Config.farmem_bytes
                ~word_occupancy:cfg.Config.farmem_word_occupancy ~slots:cores
            in
            Farmem.restore f img;
            ignore (Farmem.recover f);
            f
          in
          let f1 = fresh () and f2 = fresh () in
          let once = Farmem.image f1 in
          let r2 = Farmem.recover f1 in
          Bytes.equal once (Farmem.image f2)
          && (not r2.Farmem.committed)
          && Bytes.equal once (Farmem.image f1))

(* and the checker's verdict is a pure function of the experiment key *)
let prop_verdict_reproducible =
  QCheck.Test.make ~count:8 ~name:"crash verdicts reproducible"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let app = find_app "reduce" in
      let one () =
        Pmc_apps.Crash.crash_one ~window:3_000 app
          ~backend:Pmc.Backends.Farmem ~cores:4 ~scale:6 ~seed
      in
      let r1 = one () and r2 = one () in
      r1.Pmc_apps.Crash.verdict = r2.Pmc_apps.Crash.verdict
      && r1.Pmc_apps.Crash.cut = r2.Pmc_apps.Crash.cut
      && r1.Pmc_apps.Crash.wall = r2.Pmc_apps.Crash.wall)

(* ---------------- the checker's contract ---------------- *)

let test_logged_exit_never_tears () =
  (* a seed range over two apps: every experiment must recover clean (or
     complete, if the cut landed past the wall) *)
  List.iter
    (fun name ->
      let app = find_app name in
      for seed = 1 to 10 do
        let r =
          Pmc_apps.Crash.crash_one app ~backend:Pmc.Backends.Farmem ~cores:4
            ~scale:6 ~seed
        in
        Alcotest.(check bool)
          (Fmt.str "%s seed %d: %a" name seed Pmc_apps.Crash.pp_verdict
             r.Pmc_apps.Crash.verdict)
          true
          (Pmc_apps.Crash.acceptable r.Pmc_apps.Crash.verdict)
      done)
    [ "histogram"; "stencil" ]

let test_unlogged_exit_is_caught () =
  (* the negative control: with the redo log disarmed, publication is
     word-by-word and some seed must land a cut mid-publication — if the
     checker never reports Torn here, it is not checking anything *)
  let app = find_app "stencil" in
  let torn = ref 0 in
  for seed = 1 to 12 do
    let r =
      Pmc_apps.Crash.crash_one ~log:false ~model_check:false app
        ~backend:Pmc.Backends.Farmem ~cores:4 ~scale:6 ~seed
    in
    match r.Pmc_apps.Crash.verdict with
    | Pmc_apps.Crash.Torn _ -> incr torn
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "no-log mode torn on %d/12 seeds" !torn)
    true (!torn >= 1)

let test_non_farmem_backend_rejected () =
  let app = find_app "histogram" in
  let r =
    Pmc_apps.Crash.crash_one app ~backend:Pmc.Backends.Dsm ~cores:4 ~scale:4
      ~seed:1
  in
  match r.Pmc_apps.Crash.verdict with
  | Pmc_apps.Crash.Check_error _ -> ()
  | v ->
      Alcotest.failf "expected Check_error, got %a" Pmc_apps.Crash.pp_verdict
        v

(* ---------------- sweep and jobs ---------------- *)

let test_sweep_counts () =
  let apps = [ find_app "histogram"; find_app "reduce" ] in
  let s =
    Pmc_apps.Crash.sweep ~apps ~backend:Pmc.Backends.Farmem ~cores:4 ~scale:6
      ~seeds:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "six experiments" 6 s.Pmc_apps.Crash.total;
  Alcotest.(check bool) "sweep passes" true (Pmc_apps.Crash.ok s);
  Alcotest.(check int) "every verdict accounted" s.Pmc_apps.Crash.total
    (s.Pmc_apps.Crash.recovered + s.Pmc_apps.Crash.completed
    + s.Pmc_apps.Crash.torn + s.Pmc_apps.Crash.inconsistent
    + s.Pmc_apps.Crash.errors)

let test_crash_job_roundtrip () =
  let job =
    Pmc_jobs.Job.Crash
      {
        Pmc_jobs.Job.x_app = "stencil";
        x_backend = "farmem";
        x_topology = "mesh:2x2";
        x_cores = 4;
        x_scale = 6;
        x_seed = 7;
        x_window = 12_345;
        x_log = false;
        x_model_check = true;
        x_replay_budget = Some 9_999;
      }
  in
  let j = Pmc_jobs.Job.to_json job in
  Alcotest.(check bool) "crash job JSON round-trips" true
    (Pmc_jobs.Job.of_json j = job);
  Alcotest.(check string) "stable cache key" (Pmc_jobs.Job.key job)
    (Pmc_jobs.Job.key (Pmc_jobs.Job.of_json j))

let test_crash_result_roundtrip () =
  let app = find_app "reduce" in
  let report =
    Pmc_apps.Crash.crash_one ~window:3_000 app ~backend:Pmc.Backends.Farmem
      ~cores:4 ~scale:6 ~seed:3
  in
  let r = Pmc_jobs.Result.Crash_checked report in
  let j = Pmc_jobs.Result.to_json r in
  Alcotest.(check bool) "crash result JSON round-trips" true
    (Pmc_jobs.Result.of_json j = r)

let suite =
  ( "crash",
    [
      Alcotest.test_case "durable only after barrier" `Quick
        test_durable_only_after_barrier;
      Alcotest.test_case "image drops the device cache" `Quick
        test_image_drops_device_cache;
      Alcotest.test_case "recover with empty log" `Quick
        test_recover_empty_log;
      Alcotest.test_case "recover committed slot, idempotent" `Quick
        test_recover_idempotent_on_committed_slot;
      Alcotest.test_case "uncommitted slot discarded" `Quick
        test_uncommitted_slot_discarded;
      Alcotest.test_case "cut cycle pure in (seed, window)" `Quick
        test_cut_cycle_pure;
      QCheck_alcotest.to_alcotest prop_recovery_idempotent;
      QCheck_alcotest.to_alcotest prop_verdict_reproducible;
      Alcotest.test_case "logged exit_x never tears" `Slow
        test_logged_exit_never_tears;
      Alcotest.test_case "unlogged exit_x is caught" `Slow
        test_unlogged_exit_is_caught;
      Alcotest.test_case "non-farmem backend rejected" `Quick
        test_non_farmem_backend_rejected;
      Alcotest.test_case "sweep counts verdicts" `Slow test_sweep_counts;
      Alcotest.test_case "crash job JSON round-trip" `Quick
        test_crash_job_roundtrip;
      Alcotest.test_case "crash result JSON round-trip" `Quick
        test_crash_result_roundtrip;
    ] )
