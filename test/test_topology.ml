(* Topology and served-traffic tests: the routing geometry (hop counts,
   route enumeration, link ids), the exact percentile statistics, the
   purity of per-request latencies in (seed, topology, backend, cores),
   model replay on routed fabrics, and the schema back-compatibility of
   jobs and bench reports that predate topologies. *)

open Pmc_sim

(* ---------------- resolve / parse ---------------- *)

let test_resolve () =
  let ok name cores expect =
    match Topology.resolve name ~cores with
    | Ok t ->
        Alcotest.(check string)
          (Printf.sprintf "%s @ %d cores" name cores)
          expect (Topology.to_string t)
    | Error e -> Alcotest.failf "%s @ %d cores: %s" name cores e
  in
  ok "star" 7 "star";
  ok "mesh:4x8" 32 "mesh:4x8";
  ok "torus:2x3" 6 "torus:2x3";
  ok "hier:4x8" 32 "hier:4x8";
  (* bare names pick the near-square factorization of the core count *)
  ok "mesh" 32 "mesh:4x8";
  ok "mesh" 36 "mesh:6x6";
  ok "torus" 12 "torus:3x4";
  ok "hier" 1024 "hier:32x32";
  let bad name cores =
    match Topology.resolve name ~cores with
    | Ok t ->
        Alcotest.failf "%s @ %d cores resolved to %s" name cores
          (Topology.to_string t)
    | Error _ -> ()
  in
  bad "mesh:4x4" 32;     (* dims don't cover the tile count *)
  bad "mesh:0x4" 0;
  bad "ring" 8;          (* unknown fabric *)
  bad "mesh:4" 4         (* malformed dims *)

(* ---------------- hop counts ---------------- *)

let test_hops () =
  let check name t ~cores ~src ~dst expect =
    Alcotest.(check int)
      (Printf.sprintf "%s %d->%d" name src dst)
      expect
      (Topology.hops t ~cores ~src ~dst)
  in
  (* star keeps the seed's ring-distance formula *)
  check "star" Topology.Star ~cores:8 ~src:0 ~dst:3 3;
  check "star" Topology.Star ~cores:8 ~src:0 ~dst:7 1;
  (* mesh: Manhattan distance, row-major layout *)
  let mesh = Topology.Mesh { x = 4; y = 4 } in
  check "mesh" mesh ~cores:16 ~src:0 ~dst:15 6;
  check "mesh" mesh ~cores:16 ~src:5 ~dst:6 1;
  check "mesh" mesh ~cores:16 ~src:3 ~dst:12 6;
  (* torus: per-dimension wraparound distance *)
  let torus = Topology.Torus { x = 4; y = 4 } in
  check "torus" torus ~cores:16 ~src:0 ~dst:15 2;
  check "torus" torus ~cores:16 ~src:0 ~dst:3 1;
  check "torus" torus ~cores:16 ~src:0 ~dst:2 2;  (* wrap tie *)
  (* hier: 0 same tile, 2 within a cluster, 3 across clusters *)
  let hier = Topology.Hier { clusters = 4; size = 4 } in
  check "hier" hier ~cores:16 ~src:5 ~dst:5 0;
  check "hier" hier ~cores:16 ~src:4 ~dst:7 2;
  check "hier" hier ~cores:16 ~src:0 ~dst:15 3

let test_wrap_dist () =
  Alcotest.(check int) "no wrap" 1 (Topology.wrap_dist 1 4);
  Alcotest.(check int) "wrap" 1 (Topology.wrap_dist 3 4);
  Alcotest.(check int) "tie" 2 (Topology.wrap_dist 2 4);
  Alcotest.(check int) "negative" 1 (Topology.wrap_dist (-3) 4)

(* ---------------- route enumeration ---------------- *)

let route t ~cores ~src ~dst =
  let links = ref [] in
  Topology.iter_route t ~cores ~src ~dst (fun l -> links := l :: !links);
  List.rev !links

(* On every fabric, the number of links a route enumerates equals the
   hop count, and every link id is within [0, link_count). *)
let test_route_matches_hops () =
  let fabrics =
    [
      ("star", Topology.Star, 8);
      ("mesh", Topology.Mesh { x = 4; y = 4 }, 16);
      ("torus", Topology.Torus { x = 4; y = 4 }, 16);
      ("hier", Topology.Hier { clusters = 4; size = 4 }, 16);
    ]
  in
  List.iter
    (fun (name, t, cores) ->
      let n_links = Topology.link_count t in
      for src = 0 to cores - 1 do
        for dst = 0 to cores - 1 do
          let links = route t ~cores ~src ~dst in
          (* the star fabric routes over one logical link and enumerates
             no physical ones *)
          let expect =
            if t = Topology.Star then 0
            else Topology.hops t ~cores ~src ~dst
          in
          Alcotest.(check int)
            (Printf.sprintf "%s %d->%d route length" name src dst)
            expect (List.length links);
          List.iter
            (fun l ->
              if l < 0 || l >= n_links then
                Alcotest.failf "%s %d->%d: link %d outside [0,%d)" name src
                  dst l n_links)
            links
        done
      done)
    fabrics

(* Opposite unidirectional links are distinct: A->B and B->A share no
   link id on the grids (each direction is its own physical channel). *)
let test_routes_directed () =
  let t = Topology.Mesh { x = 4; y = 4 } in
  let fwd = route t ~cores:16 ~src:1 ~dst:14 in
  let bwd = route t ~cores:16 ~src:14 ~dst:1 in
  List.iter
    (fun l ->
      if List.mem l bwd then
        Alcotest.failf "link %d appears in both directions" l)
    fwd

(* ---------------- exact percentiles ---------------- *)

let test_percentile_exact () =
  let xs = Array.init 100 (fun i -> i + 1) in
  (* nearest-rank on 1..100: p(q) is exactly the q-th sample *)
  Alcotest.(check int) "p50 of 1..100" 50
    (Pmc_apps.Service.percentile xs ~permille:500);
  Alcotest.(check int) "p99 of 1..100" 99
    (Pmc_apps.Service.percentile xs ~permille:990);
  Alcotest.(check int) "p999 of 1..100" 100
    (Pmc_apps.Service.percentile xs ~permille:999);
  (* no interpolation: the result is always a sample, ceiling rank *)
  Alcotest.(check int) "p50 of [1;2]" 1
    (Pmc_apps.Service.percentile [| 2; 1 |] ~permille:500);
  Alcotest.(check int) "p99 of [1;2]" 2
    (Pmc_apps.Service.percentile [| 2; 1 |] ~permille:990);
  Alcotest.(check int) "p50 of [7]" 7
    (Pmc_apps.Service.percentile [| 7 |] ~permille:500);
  Alcotest.(check int) "p50 of [1;2;3]" 2
    (Pmc_apps.Service.percentile [| 3; 1; 2 |] ~permille:500);
  (* unsorted input is sorted internally *)
  Alcotest.(check int) "p999 of shuffled" 100
    (Pmc_apps.Service.percentile
       (Array.init 100 (fun i -> 100 - i))
       ~permille:999);
  Alcotest.check_raises "empty is an error"
    (Invalid_argument "Service.percentile: empty") (fun () ->
      ignore (Pmc_apps.Service.percentile [||] ~permille:500))

let test_zipf_skew () =
  let z = Pmc_apps.Service.Zipf.create ~n:64 ~theta:0.99 in
  Alcotest.(check int) "n" 64 (Pmc_apps.Service.Zipf.n z);
  Alcotest.(check int) "u=0 is the hottest rank" 0
    (Pmc_apps.Service.Zipf.sample z ~u:0.0);
  Alcotest.(check int) "u->1 is the coldest rank" 63
    (Pmc_apps.Service.Zipf.sample z ~u:0.999999);
  (* heavy tail: rank 0 absorbs well over 1/64 of the mass *)
  let hits = ref 0 in
  for i = 0 to 999 do
    let u =
      Int64.to_float
        (Int64.shift_right_logical
           (Pmc_apps.Service.draw ~seed:42 ~core:0 ~i ~tag:0) 11)
      *. (1.0 /. 9007199254740992.0)
    in
    if Pmc_apps.Service.Zipf.sample z ~u = 0 then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rank 0 is hot (%d/1000 hits)" !hits)
    true (!hits > 100)

(* ---------------- latency purity ---------------- *)

let run_kv ~topology ~cores ~backend ~seed =
  let cfg = { Config.default with cores; topology; seed } in
  Pmc_apps.Runner.run ~cfg Pmc_apps.Kv_store.app ~backend ~scale:2

(* Per-request latencies — summarized by the digest, which pins every
   individual sample — are a pure function of (seed, topology, backend,
   cores): two fresh runs agree exactly. *)
let prop_latency_pure =
  QCheck.Test.make ~count:12 ~name:"service: latencies pure in (seed,topo,backend,cores)"
    QCheck.(
      quad
        (oneofl [ "star"; "mesh"; "torus"; "hier" ])
        (oneofl
           [ Pmc.Backends.Seqcst; Pmc.Backends.Nocc; Pmc.Backends.Swcc;
             Pmc.Backends.Dsm; Pmc.Backends.Spm ])
        (oneofl [ 4; 8; 16 ])
        (int_range 1 1000))
    (fun (topo_name, backend, cores, seed) ->
      let topology = Result.get_ok (Topology.resolve topo_name ~cores) in
      let r1 = run_kv ~topology ~cores ~backend ~seed in
      let r2 = run_kv ~topology ~cores ~backend ~seed in
      let s1 = Option.get r1.Pmc_apps.Runner.service in
      let s2 = Option.get r2.Pmc_apps.Runner.service in
      Pmc_apps.Runner.ok r1 && Pmc_apps.Runner.ok r2 && s1 = s2
      && r1.Pmc_apps.Runner.wall = r2.Pmc_apps.Runner.wall)

(* ---------------- model replay on routed fabrics ---------------- *)

(* The PMC consistency argument is topology-independent: traces recorded
   on routed, contended fabrics must still replay clean through the
   formal model, for every back-end. *)
let test_replay_routed () =
  List.iter
    (fun (topo_name, cores) ->
      let topology = Result.get_ok (Topology.resolve topo_name ~cores) in
      let cfg = { Config.default with cores; topology } in
      List.iter
        (fun backend ->
          let recorder = ref None in
          let r =
            Pmc_apps.Runner.run ~cfg
              ~on_api:(fun api ->
                recorder := Some (Pmc_trace.Recorder.attach api))
              Pmc_apps.Kv_store.app ~backend ~scale:2
          in
          let name =
            Printf.sprintf "kv_store/%s/%s" topo_name
              (Pmc.Backends.to_string backend)
          in
          Alcotest.(check bool) (name ^ " checksum") true
            (Pmc_apps.Runner.ok r);
          let rec_ = Option.get !recorder in
          Alcotest.(check int) (name ^ " complete trace") 0
            (Pmc_trace.Recorder.dropped_total rec_);
          let report =
            Pmc_trace.Replay.check ~cores (Pmc_trace.Recorder.events rec_)
          in
          Alcotest.(check bool) (name ^ " PMC-consistent") true
            (Pmc_model.History.ok report))
        [ Pmc.Backends.Seqcst; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
          Pmc.Backends.Spm ])
    [ ("mesh:2x2", 4); ("torus:2x2", 4); ("hier:2x2", 4) ]

(* Mailbox correctness across fabrics and back-ends (kv_store is covered
   by the purity property above). *)
let test_mailbox_routed () =
  List.iter
    (fun topo_name ->
      let cores = 8 in
      let topology = Result.get_ok (Topology.resolve topo_name ~cores) in
      let cfg = { Config.default with cores; topology } in
      List.iter
        (fun backend ->
          let r =
            Pmc_apps.Runner.run ~cfg Pmc_apps.Mailbox.app ~backend ~scale:4
          in
          Alcotest.(check bool)
            (Printf.sprintf "mailbox/%s/%s" topo_name
               (Pmc.Backends.to_string backend))
            true (Pmc_apps.Runner.ok r))
        Pmc.Backends.all)
    [ "star"; "mesh"; "torus"; "hier" ]

(* ---------------- back-compatibility ---------------- *)

(* A bench/chaos job encoded before topologies existed decodes to the
   star fabric — old verdict-cache keys keep their meaning. *)
let test_job_topology_default () =
  let bench_json =
    Pmc_bench.Json.parse
      {|{"kind":"bench","app":"stencil","backend":"dsm","cores":4,
         "scale":8,"unbatched":false,"warmup":0,"repeat":1}|}
  in
  (match Pmc_jobs.Job.of_json bench_json with
  | Pmc_jobs.Job.Bench b ->
      Alcotest.(check string) "bench defaults to star" "star"
        b.Pmc_jobs.Job.topology
  | _ -> Alcotest.fail "expected a bench job");
  let chaos_json =
    Pmc_bench.Json.parse
      {|{"kind":"chaos","app":"stencil","backend":"dsm","cores":4,
         "scale":8,"seed":1,"intensity":1.0,"model_check":true,
         "replay_budget":null}|}
  in
  match Pmc_jobs.Job.of_json chaos_json with
  | Pmc_jobs.Job.Chaos c ->
      Alcotest.(check string) "chaos defaults to star" "star"
        c.Pmc_jobs.Job.c_topology
  | _ -> Alcotest.fail "expected a chaos job"

(* A schema-3 report (no topology, no served-traffic metrics) still
   loads: topology reads back as star and the service metrics as
   absent. *)
let test_report_v3_loads () =
  let v3 =
    {|{"schema":3,"label":"old","suite":"smoke","unbatched":false,"jobs":1,
       "results":[{"app":"stencil","backend":"dsm","cores":8,"scale":4,
         "ok":true,"deterministic":true,"repeats":1,
         "metrics":{"cycles":1000,"noc_flits":10,"noc_writes":2,
           "flushes":1,"lock_acquires":3,"lock_transfers":2,
           "dcache_misses":5,"instructions":900,"utilization":0.5},
         "host_s":0.001,"host_cycles_per_s":1000000.0,
         "minor_words":128.0}]}|}
  in
  let report = Pmc_bench.Report.of_json (Pmc_bench.Json.parse v3) in
  Alcotest.(check int) "schema" 3 report.Pmc_bench.Report.schema;
  match report.Pmc_bench.Report.samples with
  | [ s ] ->
      Alcotest.(check string) "topology defaults to star" "star"
        (Topology.to_string s.Pmc_bench.Measure.case.Pmc_bench.Spec.topology);
      Alcotest.(check int) "no requests recorded" 0
        s.Pmc_bench.Measure.metrics.Pmc_bench.Measure.requests;
      Alcotest.(check string) "case id keeps the historic form"
        "stencil/dsm/c8/s4"
        (Pmc_bench.Spec.case_id s.Pmc_bench.Measure.case)
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

(* Current-schema round trip, topology and service metrics included. *)
let test_sample_roundtrip_v4 () =
  let case =
    {
      Pmc_bench.Spec.app = "kv_store";
      backend = Pmc.Backends.Dsm;
      topology = Topology.Mesh { x = 4; y = 4 };
      cores = 16;
      scale = 4;
      work = Pmc_bench.Spec.Sim;
    }
  in
  let sample =
    Pmc_bench.Measure.run_case ~unbatched:false ~warmup:0 ~repeat:1 case
  in
  Alcotest.(check bool) "checksum ok" true sample.Pmc_bench.Measure.ok;
  Alcotest.(check bool) "records requests" true
    (sample.Pmc_bench.Measure.metrics.Pmc_bench.Measure.requests > 0);
  let back =
    Pmc_bench.Measure.sample_of_json
      (Pmc_bench.Json.parse
         (Pmc_bench.Json.to_compact
            (Pmc_bench.Measure.sample_to_json sample)))
  in
  (* the case and every integer metric — topology and the service
     latencies included — survive exactly; float fields (host_s,
     throughput, ...) are printed with %.6g and only approximate *)
  Alcotest.(check bool) "case round trips" true
    (back.Pmc_bench.Measure.case = sample.Pmc_bench.Measure.case);
  List.iter
    (fun name ->
      Alcotest.(check (float 0.0))
        (name ^ " round trips")
        (Pmc_bench.Measure.metric sample.Pmc_bench.Measure.metrics name)
        (Pmc_bench.Measure.metric back.Pmc_bench.Measure.metrics name))
    Pmc_bench.Measure.metric_names;
  Alcotest.(check string) "routed case ids carry the fabric"
    "kv_store/dsm/mesh:4x4/c16/s4"
    (Pmc_bench.Spec.case_id case)

let suite =
  ( "topology",
    [
      Alcotest.test_case "resolve" `Quick test_resolve;
      Alcotest.test_case "hop counts" `Quick test_hops;
      Alcotest.test_case "wrap distance" `Quick test_wrap_dist;
      Alcotest.test_case "routes match hops" `Quick test_route_matches_hops;
      Alcotest.test_case "routes are directed" `Quick test_routes_directed;
      Alcotest.test_case "exact percentiles" `Quick test_percentile_exact;
      Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
      QCheck_alcotest.to_alcotest prop_latency_pure;
      Alcotest.test_case "model replay on routed fabrics" `Slow
        test_replay_routed;
      Alcotest.test_case "mailbox on routed fabrics" `Slow
        test_mailbox_routed;
      Alcotest.test_case "job topology default" `Quick
        test_job_topology_default;
      Alcotest.test_case "schema-3 report loads" `Quick test_report_v3_loads;
      Alcotest.test_case "schema-4 sample round trip" `Quick
        test_sample_roundtrip_v4;
    ] )
