(* Tests of the write-back D-cache model: hits, misses, eviction,
   write-back, the invalidate/flush maintenance operations, and functional
   equivalence with a flat memory. *)

open Pmc_sim

let make ?(sets = 4) ?(ways = 2) ?(line = 16) ?(size = 4096) () =
  let mem = Mem.create size in
  ( mem,
    Cache.create ~sets ~ways ~line_bytes:line
      ~backing_read:(fun addr dst pos -> Mem.blit mem addr dst pos line)
      ~backing_write:(fun addr src pos -> Mem.blit src pos mem addr line) )

let test_miss_then_hit () =
  let _, c = make () in
  ignore (Cache.load_u32 c 0);
  Alcotest.(check bool) "first access misses" false (Cache.hit (Cache.last c));
  ignore (Cache.load_u32 c 4);
  Alcotest.(check bool) "same line hits" true (Cache.hit (Cache.last c));
  ignore (Cache.load_u32 c 16);
  Alcotest.(check bool) "next line misses" false (Cache.hit (Cache.last c))

let test_write_read_back () =
  let _, c = make () in
  Cache.store_u32 c 8 0xDEADBEEFl;
  let v = Cache.load_u32 c 8 in
  Alcotest.(check int32) "read back written value" 0xDEADBEEFl v

let test_dirty_not_in_backing () =
  let mem, c = make () in
  Cache.store_u32 c 0 7l;
  Alcotest.(check int32) "backing store still zero (write-back)" 0l
    (Mem.get_u32 mem 0);
  Alcotest.(check bool) "line dirty" true (Cache.dirty c 0)

let test_wb_inval_flushes () =
  let mem, c = make () in
  Cache.store_u32 c 0 7l;
  let r = Cache.wb_inval_range c ~addr:0 ~len:4 in
  Alcotest.(check int) "one line written back" 1 r.Cache.lines_written_back;
  Alcotest.(check int32) "backing updated" 7l (Mem.get_u32 mem 0);
  Alcotest.(check bool) "line gone" false (Cache.resident c 0)

let test_inval_discards () =
  let mem, c = make () in
  Cache.store_u32 c 0 7l;
  let r = Cache.inval_range c ~addr:0 ~len:4 in
  Alcotest.(check int) "nothing written back" 0 r.Cache.lines_written_back;
  Alcotest.(check int32) "modification lost (MicroBlaze invalidate)" 0l
    (Mem.get_u32 mem 0);
  Alcotest.(check bool) "line gone" false (Cache.resident c 0)

let test_eviction_writes_back () =
  (* 4 sets x 2 ways x 16B lines: three lines mapping to set 0 force an
     eviction *)
  let mem, c = make () in
  let set0_line n = n * 4 * 16 in
  Cache.store_u32 c (set0_line 0) 1l;
  Cache.store_u32 c (set0_line 1) 2l;
  Cache.store_u32 c (set0_line 2) 3l;
  Alcotest.(check bool) "eviction wrote back a dirty victim" true
    (Cache.wrote_back (Cache.last c));
  Alcotest.(check int32) "LRU victim (line 0) landed in backing" 1l
    (Mem.get_u32 mem (set0_line 0))

let test_lru_order () =
  let _, c = make () in
  let set0_line n = n * 4 * 16 in
  ignore (Cache.load_u32 c (set0_line 0));
  ignore (Cache.load_u32 c (set0_line 1));
  ignore (Cache.load_u32 c (set0_line 0));  (* refresh line 0 *)
  ignore (Cache.load_u32 c (set0_line 2));  (* evicts line 1 *)
  Alcotest.(check bool) "refreshed line survives" true
    (Cache.resident c (set0_line 0));
  Alcotest.(check bool) "LRU line evicted" false
    (Cache.resident c (set0_line 1))

let test_staleness () =
  (* the cache really holds stale data: backing changes are invisible
     until invalidation — the non-coherence the paper manages in software *)
  let mem, c = make () in
  ignore (Cache.load_u32 c 0);
  Mem.set_u32 mem 0 99l;
  let v = Cache.load_u32 c 0 in
  Alcotest.(check int32) "cached read is stale" 0l v;
  ignore (Cache.inval_range c ~addr:0 ~len:4);
  let v' = Cache.load_u32 c 0 in
  Alcotest.(check int32) "after invalidate the new value is seen" 99l v'

let test_flush_all () =
  let mem, c = make () in
  Cache.store_u32 c 0 1l;
  Cache.store_u32 c 64 2l;
  let r = Cache.flush_all c in
  Alcotest.(check int) "two lines written back" 2 r.Cache.lines_written_back;
  Alcotest.(check int32) "first landed" 1l (Mem.get_u32 mem 0);
  Alcotest.(check int32) "second landed" 2l (Mem.get_u32 mem 64)

let test_byte_ops () =
  let _, c = make () in
  Cache.store_u8 c 3 0xAB;
  let v = Cache.load_u8 c 3 in
  Alcotest.(check int) "byte read back" 0xAB v

(* Functional equivalence: random traffic through the cache (including
   wb_inval maintenance), then a full flush, must leave the backing store
   identical to a flat-memory replay, and every read must have returned
   the flat value. *)
let prop_flush_equiv =
  let gen =
    QCheck.(
      list_of_size Gen.(int_range 1 300)
        (triple (int_range 0 2) (int_range 0 255) (int_range 0 10000)))
  in
  QCheck.Test.make ~count:150 ~name:"cache ops + flush leave flat state"
    gen (fun ops ->
      let size = 1024 in
      let mem, c = make ~sets:4 ~ways:2 ~line:16 ~size () in
      let flat = Bytes.make size '\000' in
      let ok = ref true in
      List.iter
        (fun (op, word, v) ->
          let addr = word mod (size / 4) * 4 in
          match op with
          | 0 ->
              Cache.store_u32 c addr (Int32.of_int v);
              Bytes.set_int32_le flat addr (Int32.of_int v)
          | 1 ->
              let got = Cache.load_u32 c addr in
              if got <> Bytes.get_int32_le flat addr then ok := false
          | _ ->
              (* wb_inval keeps the contents equivalent (unlike inval) *)
              ignore (Cache.wb_inval_range c ~addr ~len:16))
        ops;
      ignore (Cache.flush_all c);
      !ok && Bytes.equal (Mem.to_bytes mem ~pos:0 ~len:size) flat)

let suite =
  ( "cache",
    [
      Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
      Alcotest.test_case "write / read back" `Quick test_write_read_back;
      Alcotest.test_case "write-back semantics" `Quick
        test_dirty_not_in_backing;
      Alcotest.test_case "wb_inval flushes" `Quick test_wb_inval_flushes;
      Alcotest.test_case "inval discards dirty data" `Quick
        test_inval_discards;
      Alcotest.test_case "eviction writes back" `Quick
        test_eviction_writes_back;
      Alcotest.test_case "LRU replacement" `Quick test_lru_order;
      Alcotest.test_case "stale reads until invalidate" `Quick
        test_staleness;
      Alcotest.test_case "flush_all" `Quick test_flush_all;
      Alcotest.test_case "byte operations" `Quick test_byte_ops;
      QCheck_alcotest.to_alcotest prop_flush_equiv;
    ] )
