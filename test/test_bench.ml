(* pmc_bench harness tests plus the batching equivalence/performance
   contract:

     - JSON printer/parser roundtrip (unit + qcheck over random trees)
     - report save/load roundtrip
     - compare semantics: tolerance bands, missing cases, broken samples,
       tolerance-override parsing
     - qcheck property: the batched machine (multicast, lazy DSM
       versions, burst maintenance) and the unbatched one produce the
       same checksums and PMC-consistent replays across seeds, apps and
       back-ends — batching changes timing, never observable values
     - the batching performance gate: DSM streaming/stencil at 32 cores
       must be at least 20% faster batched than unbatched *)

open Pmc_sim
module J = Pmc_bench.Json

(* ---------------- json ---------------- *)

let test_json_roundtrip_unit () =
  let v =
    J.Obj
      [
        ("schema", J.int 1);
        ("label", J.Str "base \"line\"\n");
        ("ok", J.Bool true);
        ("none", J.Null);
        ("xs", J.List [ J.int 0; J.int (-42); J.Str "x" ]);
        ("nested", J.Obj [ ("k", J.List []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (J.parse (J.to_string v) = v);
  Alcotest.check_raises "trailing garbage"
    (J.Parse_error "trailing garbage at byte 5") (fun () ->
      ignore (J.parse "null x"))

(* Random trees restricted to integral numbers: non-integral floats are
   printed with limited precision, so exact roundtrip holds only for the
   integers the harness actually emits. *)
let gen_json =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map J.int (int_range (-1_000_000) 1_000_000);
        map (fun s -> J.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  sized @@ fix (fun self n ->
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (1, map (fun l -> J.List l)
                  (list_size (int_range 0 4) (self (n / 2))));
            (1, map (fun kvs -> J.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair key (self (n / 2)))));
          ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json: parse (to_string v) = v"
    (QCheck.make gen_json)
    (fun v -> J.parse (J.to_string v) = v)

(* ---------------- synthetic reports for compare ---------------- *)

let mk_sample ?(ok = true) ?(deterministic = true) ?(flits = 1000)
    ?(flushes = 50) ?(handovers = 100) ?(rate = 0.0) ~cycles app =
  {
    Pmc_bench.Measure.case =
      { Pmc_bench.Spec.app; backend = Pmc.Backends.Swcc;
        topology = Pmc_sim.Topology.Star; cores = 4; scale = 8;
        work = Pmc_bench.Spec.Sim };
    ok;
    deterministic;
    repeats = 1;
    metrics =
      {
        Pmc_bench.Measure.cycles;
        noc_flits = flits;
        noc_writes = 0;
        flushes;
        lock_acquires = 2 * handovers;
        lock_transfers = handovers;
        dcache_misses = 7;
        instructions = 1234;
        utilization = 0.5;
        requests = 0;
        p50 = 0;
        p99 = 0;
        p999 = 0;
        lat_digest = 0;
        throughput = 0.0;
      };
    host_s = 0.001;
    host_cycles_per_s = rate;
    minor_words = 0.0;
  }

let mk_report samples =
  {
    Pmc_bench.Report.schema = Pmc_bench.Measure.schema_version;
    label = "t";
    suite = "synthetic";
    unbatched = false;
    jobs = 1;
    samples;
  }

let verdict_of outcome ~metric =
  let row =
    List.find
      (fun (r : Pmc_bench.Compare.row) -> r.Pmc_bench.Compare.metric = metric)
      outcome.Pmc_bench.Compare.rows
  in
  row.Pmc_bench.Compare.verdict

let test_compare_tolerance () =
  let base = mk_report [ mk_sample ~cycles:1000 "a" ] in
  let gate cur = Pmc_bench.Compare.run ~base ~cur () in
  (* +1.5% is inside the 2% cycles band *)
  let o = gate (mk_report [ mk_sample ~cycles:1015 "a" ]) in
  Alcotest.(check bool) "within band passes" true (Pmc_bench.Compare.ok o);
  (* +2.5% regresses *)
  let o = gate (mk_report [ mk_sample ~cycles:1025 "a" ]) in
  Alcotest.(check bool) "regression fails" false (Pmc_bench.Compare.ok o);
  Alcotest.(check bool) "cycles flagged" true
    (verdict_of o ~metric:"cycles" = Pmc_bench.Compare.Regressed);
  (* -20% improves, still passes *)
  let o = gate (mk_report [ mk_sample ~cycles:800 "a" ]) in
  Alcotest.(check bool) "improvement passes" true (Pmc_bench.Compare.ok o);
  Alcotest.(check bool) "cycles improved" true
    (verdict_of o ~metric:"cycles" = Pmc_bench.Compare.Improved);
  (* lock handovers have the wider 10% band *)
  let o = gate (mk_report [ mk_sample ~cycles:1000 ~handovers:108 "a" ]) in
  Alcotest.(check bool) "8% more handovers tolerated" true
    (Pmc_bench.Compare.ok o);
  (* a zero baseline only accepts a zero current value *)
  let base0 = mk_report [ mk_sample ~cycles:1000 ~flits:0 "a" ] in
  let o =
    Pmc_bench.Compare.run ~base:base0
      ~cur:(mk_report [ mk_sample ~cycles:1000 ~flits:3 "a" ])
      ()
  in
  Alcotest.(check bool) "0 -> 3 flits regresses" false
    (Pmc_bench.Compare.ok o)

let test_compare_shape () =
  let base = mk_report [ mk_sample ~cycles:1000 "a"; mk_sample ~cycles:1 "b" ]
  in
  (* a case disappearing fails the gate; a new one does not *)
  let o =
    Pmc_bench.Compare.run ~base
      ~cur:(mk_report [ mk_sample ~cycles:1000 "a"; mk_sample ~cycles:9 "c" ])
      ()
  in
  Alcotest.(check bool) "missing case fails" false (Pmc_bench.Compare.ok o);
  Alcotest.(check int) "one missing" 1
    (List.length o.Pmc_bench.Compare.missing);
  Alcotest.(check int) "one added" 1 (List.length o.Pmc_bench.Compare.added);
  (* checksum or determinism failure in the current report fails *)
  let o =
    Pmc_bench.Compare.run ~base:(mk_report [ mk_sample ~cycles:10 "a" ])
      ~cur:(mk_report [ mk_sample ~ok:false ~cycles:10 "a" ])
      ()
  in
  Alcotest.(check bool) "broken sample fails" false (Pmc_bench.Compare.ok o)

let test_tolerance_overrides () =
  let t = Pmc_bench.Compare.parse_tolerance_overrides "cycles=0.5" in
  Alcotest.(check (float 1e-9)) "cycles overridden" 0.5
    (List.assoc "cycles" t);
  Alcotest.(check (float 1e-9)) "others kept" 0.02
    (List.assoc "noc_flits" t);
  Alcotest.(check bool) "unknown metric rejected" true
    (try
       ignore (Pmc_bench.Compare.parse_tolerance_overrides "nope=1");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad value rejected" true
    (try
       ignore (Pmc_bench.Compare.parse_tolerance_overrides "cycles=-1");
       false
     with Invalid_argument _ -> true)

let test_report_roundtrip () =
  let path = Filename.temp_file "pmc_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r =
        mk_report [ mk_sample ~cycles:123 "a"; mk_sample ~cycles:456 "b" ]
      in
      Pmc_bench.Report.save path r;
      let r' = Pmc_bench.Report.load path in
      Alcotest.(check int) "samples survive" 2
        (List.length r'.Pmc_bench.Report.samples);
      List.iter2
        (fun (a : Pmc_bench.Measure.sample) (b : Pmc_bench.Measure.sample) ->
          Alcotest.(check string) "case id"
            (Pmc_bench.Spec.case_id a.Pmc_bench.Measure.case)
            (Pmc_bench.Spec.case_id b.Pmc_bench.Measure.case);
          Alcotest.(check int) "cycles"
            a.Pmc_bench.Measure.metrics.Pmc_bench.Measure.cycles
            b.Pmc_bench.Measure.metrics.Pmc_bench.Measure.cycles)
        r.Pmc_bench.Report.samples r'.Pmc_bench.Report.samples;
      (* a future schema version must be rejected, not misread *)
      let bumped =
        match Pmc_bench.Report.to_json r with
        | J.Obj kvs ->
            J.Obj
              (List.map
                 (fun (k, v) ->
                   if k = "schema" then (k, J.int 999) else (k, v))
                 kvs)
        | _ -> assert false
      in
      Alcotest.(check bool) "future schema rejected" true
        (try
           ignore (Pmc_bench.Report.of_json bumped);
           false
         with Failure _ -> true))

let test_host_rate_gate () =
  let base = mk_report [ mk_sample ~cycles:1000 ~rate:1e6 "a" ] in
  let gate cur = Pmc_bench.Compare.run ~base ~cur () in
  (* 0.7x of the baseline rate is above the 0.6 floor *)
  let o = gate (mk_report [ mk_sample ~cycles:1000 ~rate:7e5 "a" ]) in
  Alcotest.(check bool) "0.7x rate passes" true (Pmc_bench.Compare.ok o);
  (* 0.5x collapses through the floor *)
  let o = gate (mk_report [ mk_sample ~cycles:1000 ~rate:5e5 "a" ]) in
  Alcotest.(check bool) "0.5x rate fails" false (Pmc_bench.Compare.ok o);
  Alcotest.(check int) "one rate failure" 1
    (List.length (Pmc_bench.Compare.rate_failures o));
  (* a rate-less report (pre-v3 baseline, zero host time) never gates *)
  let o =
    Pmc_bench.Compare.run
      ~base:(mk_report [ mk_sample ~cycles:1000 ~rate:0.0 "a" ])
      ~cur:(mk_report [ mk_sample ~cycles:1000 ~rate:5e5 "a" ])
      ()
  in
  Alcotest.(check bool) "no baseline rate, no gate" true
    (Pmc_bench.Compare.ok o);
  (* a faster current run obviously passes *)
  let o = gate (mk_report [ mk_sample ~cycles:1000 ~rate:5e6 "a" ]) in
  Alcotest.(check bool) "faster passes" true (Pmc_bench.Compare.ok o)

(* a v2 report (no host_cycles_per_s / minor_words) still loads, with
   the rate reconstructed from cycles / host_s *)
let test_schema_v2_compat () =
  let v3 = mk_report [ mk_sample ~cycles:5000 "a" ] in
  let strip = function
    | J.Obj kvs ->
        J.Obj
          (List.filter_map
             (fun (k, v) ->
               match (k, v) with
               | "schema", _ -> Some (k, J.int 2)
               | "results", J.List l ->
                   Some
                     ( k,
                       J.List
                         (List.map
                            (function
                              | J.Obj fields ->
                                  J.Obj
                                    (List.filter
                                       (fun (f, _) ->
                                         f <> "host_cycles_per_s"
                                         && f <> "minor_words")
                                       fields)
                              | v -> v)
                            l) )
               | _ -> Some (k, v))
             kvs)
    | j -> j
  in
  let r = Pmc_bench.Report.of_json (strip (Pmc_bench.Report.to_json v3)) in
  let s = List.hd r.Pmc_bench.Report.samples in
  Alcotest.(check (float 1.0)) "rate reconstructed"
    (5000.0 /. 0.001) s.Pmc_bench.Measure.host_cycles_per_s;
  Alcotest.(check (float 1e-9)) "minor words marked absent" (-1.0)
    s.Pmc_bench.Measure.minor_words

let test_trimmed_mean () =
  Alcotest.(check (float 1e-9)) "outliers dropped" 2.0
    (Pmc_bench.Measure.trimmed_mean [ 100.0; 2.0; 2.0; 2.0; 0.0 ]);
  Alcotest.(check (float 1e-9)) "pair averaged" 1.5
    (Pmc_bench.Measure.trimmed_mean [ 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Pmc_bench.Measure.trimmed_mean [])

(* ---------------- batched/unbatched equivalence ---------------- *)

(* Batching (multicast flush, lazy DSM versioning, burst cache
   maintenance, tight local polling) may change who transfers what and
   when — never the values any core observes.  For random seeds, apps
   and back-ends: both machines produce the reference checksum and a
   complete trace that replays PMC-consistently through the model. *)
let equiv_cases = [ ("histogram", 8); ("stencil", 4) ]
let equiv_backends =
  [ Pmc.Backends.Swcc; Pmc.Backends.Dsm; Pmc.Backends.Spm ]

let arb_equiv =
  let print (seed, (app, scale), backend) =
    Printf.sprintf "seed=%d %s/%d on %s" seed app scale
      (Pmc.Backends.to_string backend)
  in
  QCheck.make ~print
    QCheck.Gen.(
      triple (int_range 0 10_000) (oneofl equiv_cases)
        (oneofl equiv_backends))

let run_traced cfg app ~backend ~scale =
  let recorder = ref None in
  let r =
    Pmc_apps.Runner.run ~cfg
      ~on_api:(fun api -> recorder := Some (Pmc_trace.Recorder.attach api))
      app ~backend ~scale
  in
  let rec_ = Option.get !recorder in
  let complete = Pmc_trace.Recorder.dropped_total rec_ = 0 in
  let report =
    Pmc_trace.Replay.check ~cores:cfg.Config.cores
      (Pmc_trace.Recorder.events rec_)
  in
  (r, complete, Pmc_model.History.ok report)

let prop_batching_equivalence =
  QCheck.Test.make ~count:12
    ~name:"batched = unbatched: checksums and model replay"
    arb_equiv
    (fun (seed, (app_name, scale), backend) ->
      let app = Option.get (Pmc_apps.Registry.find app_name) in
      let base = { Config.small with cores = 4; seed } in
      let rb, cb, okb = run_traced base app ~backend ~scale in
      let ru, cu, oku =
        run_traced (Config.unbatched base) app ~backend ~scale
      in
      Pmc_apps.Runner.ok rb && Pmc_apps.Runner.ok ru
      && rb.Pmc_apps.Runner.checksum = ru.Pmc_apps.Runner.checksum
      && cb && cu && okb && oku)

(* ---------------- the batching performance gate ---------------- *)

let test_batching_gate () =
  List.iter
    (fun (name, scale) ->
      let app = Option.get (Pmc_apps.Registry.find name) in
      let wall cfg =
        let r = Pmc_apps.Runner.run ~cfg app ~backend:Pmc.Backends.Dsm ~scale in
        Alcotest.(check bool) (name ^ " checksum") true
          (Pmc_apps.Runner.ok r);
        r.Pmc_apps.Runner.wall
      in
      let base = { Config.default with cores = 32 } in
      let b = wall base in
      let u = wall (Config.unbatched base) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: batched (%d) ≤ 0.8 × unbatched (%d)" name b u)
        true
        (float_of_int b <= 0.8 *. float_of_int u))
    [ ("streaming", 64); ("stencil", 16) ]

(* ---------------- the check suite ---------------- *)

(* The tentpole regression guard: a kv_store-scale trace (8 processes,
   locked accesses throughout) of ~100k events must replay to a verdict
   in interactive time.  Under the pre-incremental checker this replay
   recomputed readable-writes closures per read and took hours — the
   very reason the old chaos replay budget was capped at 10k events. *)
let test_replay_100k_events () =
  let events = 100_000 in
  let t0 = Unix.gettimeofday () in
  let o = Pmc_bench.Checkload.replay ~procs:8 ~events in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "all events replayed" events o.Pmc_bench.Checkload.work;
  Alcotest.(check bool) "consistent trace verdict" true
    o.Pmc_bench.Checkload.ok;
  Alcotest.(check bool)
    (Printf.sprintf "verdict within interactive time (%.2fs)" dt)
    true (dt < 60.0)

(* A check case measured through the ordinary [Measure.run_case] path:
   deterministic work count in [cycles], digest pinned, rate recorded. *)
let test_check_case_measured () =
  let case =
    { Pmc_bench.Spec.app = "replay"; backend = Pmc.Backends.Nocc;
      topology = Pmc_sim.Topology.Star; cores = 4; scale = 20_000;
      work = Pmc_bench.Spec.Check_replay }
  in
  let s =
    Pmc_bench.Measure.run_case ~unbatched:false ~warmup:0 ~repeat:2 case
  in
  Alcotest.(check bool) "ok" true s.Pmc_bench.Measure.ok;
  Alcotest.(check bool) "deterministic" true
    s.Pmc_bench.Measure.deterministic;
  Alcotest.(check int) "cycles = events" 20_000
    s.Pmc_bench.Measure.metrics.Pmc_bench.Measure.cycles;
  Alcotest.(check bool) "rate recorded" true
    (s.Pmc_bench.Measure.host_cycles_per_s > 0.0);
  (* the sample round-trips through schema-5 JSON with its work kind *)
  let s' =
    Pmc_bench.Measure.sample_of_json (Pmc_bench.Measure.sample_to_json s)
  in
  Alcotest.(check bool) "work kind survives JSON" true
    (s'.Pmc_bench.Measure.case.Pmc_bench.Spec.work
    = Pmc_bench.Spec.Check_replay);
  Alcotest.(check string) "case id" "check/replay/c4/s20000"
    (Pmc_bench.Spec.case_id case)

let test_check_suite_shape () =
  match Pmc_bench.Spec.suite "check" with
  | None -> Alcotest.fail "check suite missing"
  | Some spec ->
      Alcotest.(check int) "two cases" 2
        (List.length spec.Pmc_bench.Spec.cases);
      (match Pmc_bench.Spec.suite "ci" with
      | None -> Alcotest.fail "ci suite missing"
      | Some ci ->
          Alcotest.(check int) "ci = smoke + check"
            (List.length Pmc_bench.Spec.smoke_cases + 2)
            (List.length ci.Pmc_bench.Spec.cases))

let suite =
  ( "bench",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip_unit;
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
      Alcotest.test_case "compare tolerance" `Quick test_compare_tolerance;
      Alcotest.test_case "compare shape" `Quick test_compare_shape;
      Alcotest.test_case "tolerance overrides" `Quick
        test_tolerance_overrides;
      Alcotest.test_case "report roundtrip" `Quick test_report_roundtrip;
      Alcotest.test_case "host rate gate" `Quick test_host_rate_gate;
      Alcotest.test_case "schema v2 compat" `Quick test_schema_v2_compat;
      Alcotest.test_case "trimmed mean" `Quick test_trimmed_mean;
      QCheck_alcotest.to_alcotest prop_batching_equivalence;
      Alcotest.test_case "batching perf gate" `Slow test_batching_gate;
      Alcotest.test_case "100k-event replay to verdict" `Quick
        test_replay_100k_events;
      Alcotest.test_case "check case measured" `Quick
        test_check_case_measured;
      Alcotest.test_case "check suite shape" `Quick test_check_suite_shape;
    ] )
