(* Tests of the lock substrate: mutual exclusion, fairness, the asymmetric
   fast path of the distributed lock, shared (read-only) admission, and
   the centralized spinlock baseline. *)

open Pmc_sim
open Pmc_lock

let cfg = { Config.small with cores = 8 }

let test_mutual_exclusion () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let inside = ref 0 and max_inside = ref 0 and entries = ref 0 in
  for c = 0 to 7 do
    Machine.spawn m ~core:c (fun () ->
        for _ = 1 to 5 do
          Dlock.acquire l;
          incr inside;
          incr entries;
          max_inside := max !max_inside !inside;
          Engine.consume (Machine.engine m) Stats.Busy 20;
          decr inside;
          Dlock.release l
        done)
  done;
  Machine.run m;
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "all critical sections ran" 40 !entries

let test_fast_reacquire_is_cheap () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let first = ref 0 and second = ref 0 in
  Machine.spawn m ~core:0 (fun () ->
      let t0 = Machine.now m in
      Dlock.acquire l;
      Dlock.release l;
      let t1 = Machine.now m in
      Dlock.acquire l;
      Dlock.release l;
      let t2 = Machine.now m in
      first := t1 - t0;
      second := t2 - t1);
  Machine.run m;
  Alcotest.(check bool) "re-acquire on the same tile is not slower" true
    (!second <= !first)

let test_transfer_costs_more () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let t_far = ref 0 in
  Machine.spawn m ~core:0 (fun () ->
      Dlock.acquire l;
      Dlock.release l);
  Machine.spawn m ~core:4 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 500;
      let t0 = Machine.now m in
      Dlock.acquire l;
      Dlock.release l;
      t_far := Machine.now m - t0);
  Machine.run m;
  Alcotest.(check bool) "cross-tile handover pays the transfer" true
    (!t_far >= (Machine.config m).Config.lock_transfer_cycles);
  let s = Stats.summarize (Machine.stats m) in
  Alcotest.(check int) "one transfer counted" 1 s.Stats.lock_transfers

let test_fifo_handover () =
  (* waiters are served in arrival order *)
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let order = ref [] in
  Machine.spawn m ~core:0 (fun () ->
      Dlock.acquire l;
      Engine.consume (Machine.engine m) Stats.Busy 500;
      Dlock.release l);
  for c = 1 to 4 do
    Machine.spawn m ~core:c (fun () ->
        Engine.consume (Machine.engine m) Stats.Busy (c * 10);
        Dlock.acquire l;
        order := c :: !order;
        Engine.consume (Machine.engine m) Stats.Busy 10;
        Dlock.release l)
  done;
  Machine.run m;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4 ] (List.rev !order)

let test_readers_share () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let concurrent = ref 0 and max_concurrent = ref 0 in
  for c = 0 to 5 do
    Machine.spawn m ~core:c (fun () ->
        Dlock.acquire_ro l;
        incr concurrent;
        max_concurrent := max !max_concurrent !concurrent;
        Engine.consume (Machine.engine m) Stats.Busy 100;
        decr concurrent;
        Dlock.release_ro l)
  done;
  Machine.run m;
  Alcotest.(check bool) "several readers inside simultaneously" true
    (!max_concurrent > 1)

let test_writer_excludes_readers () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let violation = ref false in
  let writer_in = ref false in
  Machine.spawn m ~core:0 (fun () ->
      Dlock.acquire l;
      writer_in := true;
      Engine.consume (Machine.engine m) Stats.Busy 200;
      writer_in := false;
      Dlock.release l);
  Machine.spawn m ~core:1 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 50;
      Dlock.acquire_ro l;
      if !writer_in then violation := true;
      Dlock.release_ro l);
  Machine.run m;
  Alcotest.(check bool) "reader admitted only after writer left" false
    !violation

let test_writer_waits_for_readers () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let readers_in = ref 0 and violation = ref false in
  Machine.spawn m ~core:0 (fun () ->
      Dlock.acquire_ro l;
      incr readers_in;
      Engine.consume (Machine.engine m) Stats.Busy 200;
      decr readers_in;
      Dlock.release_ro l);
  Machine.spawn m ~core:1 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 20;
      Dlock.acquire l;
      if !readers_in > 0 then violation := true;
      Dlock.release l);
  Machine.run m;
  Alcotest.(check bool) "writer admitted only after readers left" false
    !violation

let test_double_acquire_rejected () =
  let m = Machine.create cfg in
  let l = Dlock.create m in
  let failed = ref false in
  Machine.spawn m ~core:0 (fun () ->
      Dlock.acquire l;
      (try Dlock.acquire l with Pmc_error.Error _ -> failed := true);
      Dlock.release l);
  Machine.run m;
  Alcotest.(check bool) "re-entrant acquire fails" true !failed

let test_spinlock_exclusion () =
  let m = Machine.create cfg in
  let l = Spinlock.create m in
  let inside = ref 0 and max_inside = ref 0 in
  for c = 0 to 7 do
    Machine.spawn m ~core:c (fun () ->
        for _ = 1 to 3 do
          Spinlock.acquire l;
          incr inside;
          max_inside := max !max_inside !inside;
          Engine.consume (Machine.engine m) Stats.Busy 15;
          decr inside;
          Spinlock.release l
        done)
  done;
  Machine.run m;
  Alcotest.(check int) "spinlock mutual exclusion" 1 !max_inside

let test_dlock_cheaper_polling_than_spinlock () =
  (* the asymmetric lock's waiters poll locally; the spinlock's waiters
     hammer the shared SDRAM — under contention the distributed lock
     finishes the same work faster (the claim of [15]) *)
  let work lock_acquire lock_release =
    let m = Machine.create cfg in
    let acquire, release = lock_acquire m, lock_release m in
    for c = 0 to 7 do
      Machine.spawn m ~core:c (fun () ->
          for _ = 1 to 10 do
            acquire ();
            Engine.consume (Machine.engine m) Stats.Busy 30;
            release ()
          done)
    done;
    Machine.run m;
    Engine.wall_time (Machine.engine m)
  in
  let dlock_holder = ref None in
  let t_dlock =
    work
      (fun m ->
        let l = Dlock.create m in
        dlock_holder := Some l;
        fun () -> Dlock.acquire l)
      (fun _ ->
        fun () ->
         match !dlock_holder with
         | Some l -> Dlock.release l
         | None -> assert false)
  in
  let spin_holder = ref None in
  let t_spin =
    work
      (fun m ->
        let l = Spinlock.create m in
        spin_holder := Some l;
        fun () -> Spinlock.acquire l)
      (fun _ ->
        fun () ->
         match !spin_holder with
         | Some l -> Spinlock.release l
         | None -> assert false)
  in
  Alcotest.(check bool)
    (Printf.sprintf "distributed lock (%d) beats spinlock (%d)" t_dlock
       t_spin)
    true (t_dlock < t_spin)

let suite =
  ( "lock",
    [
      Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
      Alcotest.test_case "asymmetric fast re-acquire" `Quick
        test_fast_reacquire_is_cheap;
      Alcotest.test_case "handover transfer cost" `Quick
        test_transfer_costs_more;
      Alcotest.test_case "FIFO handover" `Quick test_fifo_handover;
      Alcotest.test_case "readers share" `Quick test_readers_share;
      Alcotest.test_case "writer excludes readers" `Quick
        test_writer_excludes_readers;
      Alcotest.test_case "writer waits for readers" `Quick
        test_writer_waits_for_readers;
      Alcotest.test_case "double acquire rejected" `Quick
        test_double_acquire_rejected;
      Alcotest.test_case "spinlock exclusion" `Quick test_spinlock_exclusion;
      Alcotest.test_case "dlock vs spinlock under contention" `Quick
        test_dlock_cheaper_polling_than_spinlock;
    ] )
