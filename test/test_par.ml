(* Pool tests: the ordering / exception / width-1 contracts of
   [Pmc_par.Pool], and the invariant the whole PR rests on — a parallel
   fan-out produces byte-identical results to the sequential run for
   soak verdicts, litmus enumeration and benchmark metrics (modulo
   [host_s], the one intentionally wall-clock-dependent field). *)

open Pmc_par

(* ---------------- pool unit tests ---------------- *)

let test_map_ordered_matches_sequential () =
  let input = Array.init 257 (fun i -> i) in
  let f i = (i * i) + 7 in
  let expected = Array.map f input in
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int))
        "jobs=4 map equals sequential map" expected
        (Pool.map_ordered pool input ~f))

let test_jobs1_is_sequential () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "width 1" 1 (Pool.jobs pool);
      (* at width 1 items run inline on the calling domain, in order *)
      let order = ref [] in
      let out =
        Pool.map_ordered pool [| 0; 1; 2; 3 |] ~f:(fun i ->
            order := i :: !order;
            i)
      in
      Alcotest.(check (list int)) "inline, in input order" [ 3; 2; 1; 0 ]
        !order;
      Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3 |] out)

let test_jobs0_uses_recommended () =
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check bool) "at least one domain" true (Pool.jobs pool >= 1))

exception Boom of int

let test_exception_propagates_smallest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map_ordered pool
          (Array.init 64 (fun i -> i))
          ~f:(fun i -> if i >= 5 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          (* many items fail; the one a sequential left-to-right map
             would have hit first wins, deterministically *)
          Alcotest.(check int) "smallest failing index" 5 i);
  (* the same contract at width 1 *)
  Pool.with_pool ~jobs:1 (fun pool ->
      match
        Pool.map_ordered pool [| 1; 2; 3 |] ~f:(fun i ->
            if i > 1 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "width 1" 2 i)

let test_pool_survives_exceptions_and_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (try ignore (Pool.map_ordered pool [| 0 |] ~f:(fun _ -> raise Exit))
       with Exit -> ());
      (* the pool must still work for later batches *)
      for round = 1 to 5 do
        let n = 10 * round in
        let out =
          Pool.map_ordered pool (Array.init n (fun i -> i)) ~f:(fun i -> 2 * i)
        in
        Alcotest.(check int) "batch size" n (Array.length out);
        Alcotest.(check int) "last element" (2 * (n - 1)) out.(n - 1)
      done)

let test_nested_map_runs_inline () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map_ordered pool [| 10; 20 |] ~f:(fun base ->
            (* an f that maps on its own pool must not deadlock *)
            Array.fold_left ( + ) 0
              (Pool.map_ordered pool [| 1; 2; 3 |] ~f:(fun i -> base + i)))
      in
      Alcotest.(check (array int)) "nested totals" [| 36; 66 |] out)

let test_shutdown_rejects_further_maps () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map_ordered: pool is shut down") (fun () ->
      ignore (Pool.map_ordered pool [| 1; 2 |] ~f:Fun.id))

(* ---------------- domain-local simulator state ---------------- *)

let test_ids_are_domain_local_and_resettable () =
  (* handle/lock ids restart at 0 after a reset in whichever domain the
     run executes on — the property that makes a run's trace a pure
     function of the run *)
  let first_id () =
    Pmc.Shared.reset_ids ();
    Pmc_lock.Dlock.reset_ids ();
    let m = Pmc_sim.Machine.create Pmc_sim.Config.small in
    let lock = Pmc_lock.Dlock.create m in
    (Pmc.Shared.make ~name:"x" ~size:8 ~lock).Pmc.Shared.id
  in
  Pool.with_pool ~jobs:3 (fun pool ->
      let ids = Pool.map_ordered pool (Array.make 9 ()) ~f:first_id in
      Alcotest.(check (array int))
        "every run allocates from 0, on every domain"
        (Array.make 9 0) ids)

(* ---------------- parallel == sequential: chaos soak ---------------- *)

let soak_with pool ~seeds =
  let apps = List.filter_map Pmc_apps.Registry.find [ "histogram" ] in
  Pmc_apps.Chaos.soak ~model_check:false ?pool ~apps
    ~backend:Pmc.Backends.Dsm ~cores:4 ~scale:6 ~seeds ()

let soak_equal (a : Pmc_apps.Chaos.soak) (b : Pmc_apps.Chaos.soak) =
  a.Pmc_apps.Chaos.reports = b.Pmc_apps.Chaos.reports
  && a.Pmc_apps.Chaos.total = b.Pmc_apps.Chaos.total
  && a.Pmc_apps.Chaos.completed = b.Pmc_apps.Chaos.completed
  && a.Pmc_apps.Chaos.typed_errors = b.Pmc_apps.Chaos.typed_errors
  && a.Pmc_apps.Chaos.failed = b.Pmc_apps.Chaos.failed
  && a.Pmc_apps.Chaos.injected = b.Pmc_apps.Chaos.injected

let prop_parallel_soak_equals_sequential =
  QCheck.Test.make ~count:8
    ~name:"parallel soak verdicts equal sequential, seed-for-seed"
    QCheck.(int_range 1 10_000)
    (fun seed_base ->
      let seeds = [ seed_base; seed_base + 1; seed_base + 2 ] in
      let seq = soak_with None ~seeds in
      Pool.with_pool ~jobs:3 (fun pool ->
          soak_equal seq (soak_with (Some pool) ~seeds)))

let test_parallel_soak_with_replay_identical () =
  (* with the model replay on, too: the recorder/replay path is the part
     with the most per-run state *)
  let apps =
    List.filter_map Pmc_apps.Registry.find [ "histogram"; "reduce" ]
  in
  let soak pool =
    Pmc_apps.Chaos.soak ?pool ~apps ~backend:Pmc.Backends.Dsm ~cores:4
      ~scale:4 ~seeds:[ 1; 2; 3 ] ()
  in
  let seq = soak None in
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check bool)
        "replay-on soak identical at jobs=2" true
        (soak_equal seq (soak (Some pool))))

(* ---------------- parallel == sequential: litmus ---------------- *)

let result_key (r : Pmc_model.Litmus.result) =
  ( r.Pmc_model.Litmus.model,
    Pmc_model.Litmus.outcomes_list r,
    r.Pmc_model.Litmus.states_explored,
    r.Pmc_model.Litmus.stuck_states )

let test_parallel_litmus_equals_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun p ->
          let seq = List.map result_key (Pmc_model.Litmus.compare_models p) in
          let par =
            List.map result_key (Pmc_model.Litmus.compare_models ~pool p)
          in
          Alcotest.(check bool)
            (p.Pmc_model.Lprog.name ^ ": same outcome sets and state counts")
            true (seq = par))
        Pmc_model.Lprog.all_standard;
      Alcotest.(check bool) "strength chain holds on the pool" true
        (Pmc_model.Litmus.strength_chain_holds ~pool
           Pmc_model.Lprog.all_standard))

(* ---------------- parallel == sequential: bench ---------------- *)

let tiny_spec : Pmc_bench.Spec.t =
  {
    Pmc_bench.Spec.label = "par-test";
    suite = "custom";
    unbatched = false;
    warmup = 0;
    repeat = 2;
    cases =
      [
        { Pmc_bench.Spec.app = "histogram"; backend = Pmc.Backends.Dsm;
          topology = Pmc_sim.Topology.Star; cores = 4; scale = 8;
        work = Pmc_bench.Spec.Sim };
        { Pmc_bench.Spec.app = "reduce"; backend = Pmc.Backends.Swcc;
          topology = Pmc_sim.Topology.Star; cores = 4; scale = 64;
          work = Pmc_bench.Spec.Sim };
        { Pmc_bench.Spec.app = "stencil"; backend = Pmc.Backends.Spm;
          topology = Pmc_sim.Topology.Star; cores = 4; scale = 4;
          work = Pmc_bench.Spec.Sim };
      ];
  }

(* host_s, the rate derived from it, and minor words (GC state is
   shared across concurrently measured cases) are the wall-clock- and
   domain-dependent fields *)
let scrub_host (s : Pmc_bench.Measure.sample) =
  { s with Pmc_bench.Measure.host_s = 0.0; host_cycles_per_s = 0.0;
    minor_words = 0.0 }

let test_parallel_bench_equals_sequential_modulo_host () =
  let seq = Pmc_bench.Report.run tiny_spec in
  Pool.with_pool ~jobs:2 (fun pool ->
      let par = Pmc_bench.Report.run ~pool tiny_spec in
      Alcotest.(check int) "jobs recorded" 2 par.Pmc_bench.Report.jobs;
      Alcotest.(check int) "sequential jobs recorded" 1
        seq.Pmc_bench.Report.jobs;
      Alcotest.(check bool)
        "samples identical modulo host_s" true
        (List.map scrub_host seq.Pmc_bench.Report.samples
        = List.map scrub_host par.Pmc_bench.Report.samples))

(* ---------------- report schema compatibility ---------------- *)

let test_report_schema_v1_still_loads () =
  let v1 =
    Pmc_bench.Json.Obj
      [
        ("schema", Pmc_bench.Json.int 1);
        ("label", Pmc_bench.Json.Str "old");
        ("suite", Pmc_bench.Json.Str "smoke");
        ("unbatched", Pmc_bench.Json.Bool false);
        ("results", Pmc_bench.Json.List []);
      ]
  in
  let r = Pmc_bench.Report.of_json v1 in
  Alcotest.(check int) "v1 schema kept" 1 r.Pmc_bench.Report.schema;
  Alcotest.(check int) "v1 implies jobs=1" 1 r.Pmc_bench.Report.jobs

let test_report_schema_future_rejected () =
  let v99 =
    Pmc_bench.Json.Obj
      [
        ("schema", Pmc_bench.Json.int 99);
        ("results", Pmc_bench.Json.List []);
      ]
  in
  match Pmc_bench.Report.of_json v99 with
  | _ -> Alcotest.fail "expected a schema rejection"
  | exception Failure msg ->
      Alcotest.(check bool) "mentions the supported range" true
        (String.length msg > 0)

let test_report_roundtrip_keeps_jobs () =
  let r = Pmc_bench.Report.make ~jobs:4 ~spec:tiny_spec [] in
  let r' = Pmc_bench.Report.of_json (Pmc_bench.Report.to_json r) in
  Alcotest.(check int) "jobs survive the round trip" 4
    r'.Pmc_bench.Report.jobs;
  Alcotest.(check int) "current schema" Pmc_bench.Measure.schema_version
    r'.Pmc_bench.Report.schema

let suite =
  ( "par",
    [
      Alcotest.test_case "map_ordered equals sequential map" `Quick
        test_map_ordered_matches_sequential;
      Alcotest.test_case "jobs=1 runs inline, in order" `Quick
        test_jobs1_is_sequential;
      Alcotest.test_case "jobs=0 uses the recommended width" `Quick
        test_jobs0_uses_recommended;
      Alcotest.test_case "smallest-index exception propagates" `Quick
        test_exception_propagates_smallest_index;
      Alcotest.test_case "pool survives exceptions and reuse" `Quick
        test_pool_survives_exceptions_and_reuse;
      Alcotest.test_case "nested maps run inline" `Quick
        test_nested_map_runs_inline;
      Alcotest.test_case "shutdown is final and idempotent" `Quick
        test_shutdown_rejects_further_maps;
      Alcotest.test_case "ids are domain-local and resettable" `Quick
        test_ids_are_domain_local_and_resettable;
      QCheck_alcotest.to_alcotest prop_parallel_soak_equals_sequential;
      Alcotest.test_case "replay-on soak identical in parallel" `Slow
        test_parallel_soak_with_replay_identical;
      Alcotest.test_case "litmus enumeration identical in parallel" `Slow
        test_parallel_litmus_equals_sequential;
      Alcotest.test_case "bench samples identical modulo host_s" `Slow
        test_parallel_bench_equals_sequential_modulo_host;
      Alcotest.test_case "report schema v1 still loads" `Quick
        test_report_schema_v1_still_loads;
      Alcotest.test_case "future schema rejected" `Quick
        test_report_schema_future_rejected;
      Alcotest.test_case "jobs survive a JSON round trip" `Quick
        test_report_roundtrip_keeps_jobs;
    ] )
