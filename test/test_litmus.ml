(* Litmus-test assertions: the complete outcome sets of the standard
   programs under every model's operational semantics — the mechanical
   version of Section IV-E's model-comparison claims, including the Fig. 1
   breakage and the Fig. 6 repair. *)

open Pmc_model

let outcomes m p =
  Lprog.Outcome_set.elements (Litmus.enumerate m p).Litmus.outcomes

let check_outcomes name m p expected =
  Alcotest.(check (slist string String.compare)) name expected (outcomes m p)

(* Fig. 1: SC and PC deliver only 42; CC, Slow and raw PMC also allow the
   stale 0 — the exact bug of the paper's introduction. *)
let test_mp_plain () =
  check_outcomes "SC: only 42" (module Models.Sc) Lprog.mp_plain [ "0 | 42" ];
  check_outcomes "PC: only 42" (module Models.Pc) Lprog.mp_plain [ "0 | 42" ];
  check_outcomes "CC allows stale read (Sec. IV-E: CC is not enough)"
    (module Models.Cc)
    Lprog.mp_plain [ "0 | 0"; "0 | 42" ];
  check_outcomes "Slow allows stale read" (module Models.Slow) Lprog.mp_plain
    [ "0 | 0"; "0 | 42" ];
  check_outcomes "unannotated PMC allows stale read" (module Models.Pmc)
    Lprog.mp_plain [ "0 | 0"; "0 | 42" ]

(* Fences alone (GPO) repair message passing under PMC but not under the
   uniform models, which have no fences. *)
let test_mp_fence () =
  check_outcomes "PMC + fences: only 42" (module Models.Pmc) Lprog.mp_fence
    [ "0 | 42" ];
  check_outcomes "Slow ignores fences" (module Models.Slow) Lprog.mp_fence
    [ "0 | 0"; "0 | 42" ];
  check_outcomes "CC ignores fences" (module Models.Cc) Lprog.mp_fence
    [ "0 | 0"; "0 | 42" ]

(* The fully annotated Fig. 6 program: correct under PMC (and everything
   stronger); still broken under Slow, whose locks transfer no data. *)
let test_mp_annotated () =
  check_outcomes "PMC: annotated MP is exact" (module Models.Pmc)
    Lprog.mp_annotated [ "0 | 42" ];
  check_outcomes "SC agrees" (module Models.Sc) Lprog.mp_annotated
    [ "0 | 42" ];
  check_outcomes "PC agrees" (module Models.Pc) Lprog.mp_annotated
    [ "0 | 42" ];
  check_outcomes "CC agrees (lock sync per location)" (module Models.Cc)
    Lprog.mp_annotated [ "0 | 42" ];
  check_outcomes "Slow still broken (no GDO transfer)" (module Models.Slow)
    Lprog.mp_annotated [ "0 | 0"; "0 | 42" ]

(* Store buffering: (0,0) separates SC from every weaker model. *)
let test_sb () =
  check_outcomes "SC forbids (0,0)" (module Models.Sc) Lprog.sb
    [ "0 | 1"; "1 | 0"; "1 | 1" ];
  List.iter
    (fun m ->
      let r = Litmus.enumerate m Lprog.sb in
      Alcotest.(check bool) "weaker model allows (0,0)" true
        (Litmus.allows r "0 | 0"))
    [ (module Models.Pc : Models.SEM); (module Models.Cc);
      (module Models.Slow); (module Models.Pmc) ]

(* Coherence with one writer: values of one location never go backwards
   (≺P is globally visible) — under every model. *)
let test_coherence_1w () =
  List.iter
    (fun m ->
      let r = Litmus.enumerate m Lprog.coherence_1w in
      Alcotest.(check bool) "no backwards reads: (1,0)" false
        (Litmus.allows r "0,0 | 1,0");
      Alcotest.(check bool) "no backwards reads: (2,1)" false
        (Litmus.allows r "0,0 | 2,1");
      Alcotest.(check bool) "forward reads allowed" true
        (Litmus.allows r "0,0 | 1,2"))
    Models.all

(* Write serialization: CC forces observers to agree on the order of two
   writes; Slow lets them disagree.  The outcome where observer 1 sees
   1-then-2 and observer 2 sees 2-then-1: *)
let test_write_serialization () =
  let disagree = "0,0 | 0,0 | 1,2 | 2,1" in
  let r_cc = Litmus.enumerate (module Models.Cc) Lprog.coherence_2w in
  let r_slow = Litmus.enumerate (module Models.Slow) Lprog.coherence_2w in
  let r_sc = Litmus.enumerate (module Models.Sc) Lprog.coherence_2w in
  Alcotest.(check bool) "SC forbids disagreement" false
    (Litmus.allows r_sc disagree);
  Alcotest.(check bool) "CC forbids disagreement" false
    (Litmus.allows r_cc disagree);
  Alcotest.(check bool) "Slow allows disagreement" true
    (Litmus.allows r_slow disagree)

(* Fig. 4: the reader sees the initial value or the final value, never the
   intermediate one — except under Slow, which leaks it. *)
let test_exclusive_fig4 () =
  check_outcomes "PMC: 0 or 2" (module Models.Pmc) Lprog.exclusive_fig4
    [ "0 | 0"; "2 | 0" ];
  check_outcomes "SC: 0 or 2" (module Models.Sc) Lprog.exclusive_fig4
    [ "0 | 0"; "2 | 0" ];
  let r = Litmus.enumerate (module Models.Slow) Lprog.exclusive_fig4 in
  Alcotest.(check bool) "Slow leaks the intermediate 1" true
    (Litmus.allows r "1 | 0")

(* The strength hierarchy of Section II/IV-E on uniform programs:
   outcomes(SC) ⊆ outcomes(PC) ⊆ outcomes(CC) ⊆ outcomes(Slow). *)
let test_strength_chain () =
  Alcotest.(check bool) "SC ⊆ PC ⊆ CC ⊆ Slow" true
    (Litmus.strength_chain_holds
       [ Lprog.mp_plain; Lprog.sb; Lprog.coherence_1w; Lprog.coherence_2w ])

(* PMC with full annotations simulates SC for DRF programs (Sec. IV-E). *)
let test_drf_sc () =
  Alcotest.(check bool) "locked_exchange is DRF" true
    (Drf.is_drf Lprog.locked_exchange);
  Alcotest.(check bool) "exclusive_fig4 is DRF" true
    (Drf.is_drf Lprog.exclusive_fig4);
  Alcotest.(check bool) "mp_plain is racy" false (Drf.is_drf Lprog.mp_plain);
  Alcotest.(check bool) "mp_annotated is racy only on the flag poll" true
    (match Drf.find_race Lprog.mp_annotated with
    | Some r -> r.Drf.loc = 1  (* the polled flag *)
    | None -> false);
  Alcotest.(check bool) "DRF ⇒ PMC behaves like SC (locked_exchange)" true
    (Drf.sc_equivalent Lprog.locked_exchange);
  Alcotest.(check bool) "DRF ⇒ PMC behaves like SC (exclusive_fig4)" true
    (Drf.sc_equivalent Lprog.exclusive_fig4)

(* PMC is weaker than EC (Sec. IV-E): without the receiver's fence the
   acquire of X may be hoisted above the polling loop.  Under EC
   (synchronization in program order) the program still works; under PMC
   the hoisted acquire starves the publisher — a stuck state the
   enumerator finds.  With the fence, PMC has no stuck state and the
   exact outcome: the paper's "the fence of line 11 prevents the
   compiler from moving the acquire at line 13 to before the while
   loop", mechanically. *)
let test_pmc_weaker_than_ec () =
  let ec = Litmus.enumerate (module Models.Ec) Lprog.mp_annotated_nofence in
  let pmc = Litmus.enumerate (module Models.Pmc) Lprog.mp_annotated_nofence in
  Alcotest.(check (list string)) "EC: exact without the fence" [ "0 | 42" ]
    (Litmus.outcomes_list ec);
  Alcotest.(check int) "EC: no stuck states" 0 ec.Litmus.stuck_states;
  Alcotest.(check bool) "PMC: hoisted acquire deadlocks" true
    (pmc.Litmus.stuck_states > 0);
  let fenced = Litmus.enumerate (module Models.Pmc) Lprog.mp_annotated in
  Alcotest.(check int) "the line-11 fence removes the hazard" 0
    fenced.Litmus.stuck_states;
  Alcotest.(check (list string)) "and keeps the exact outcome" [ "0 | 42" ]
    (Litmus.outcomes_list fenced)

(* No model deadlocks the standard well-fenced programs. *)
let test_no_spurious_stuck () =
  List.iter
    (fun p ->
      List.iter
        (fun m ->
          let r = Litmus.enumerate m p in
          Alcotest.(check int)
            (p.Lprog.name ^ " under " ^ r.Litmus.model ^ ": no stuck")
            0 r.Litmus.stuck_states)
        Models.all)
    [ Lprog.mp_annotated; Lprog.sb; Lprog.locked_exchange;
      Lprog.exclusive_fig4 ]

(* PMC is weaker than PC: it allows everything PC allows (on the standard
   programs) and strictly more on unannotated ones. *)
let test_pmc_weaker_than_pc () =
  List.iter
    (fun p ->
      let pc = Litmus.enumerate (module Models.Pc) p in
      let pmc = Litmus.enumerate (module Models.Pmc) p in
      Alcotest.(check bool)
        ("PC outcomes within PMC on " ^ p.Lprog.name)
        true
        (Lprog.Outcome_set.subset pc.Litmus.outcomes pmc.Litmus.outcomes))
    [ Lprog.mp_plain; Lprog.sb; Lprog.coherence_1w ];
  let pc = Litmus.enumerate (module Models.Pc) Lprog.mp_plain in
  let pmc = Litmus.enumerate (module Models.Pmc) Lprog.mp_plain in
  Alcotest.(check bool) "and strictly more on MP" false
    (Lprog.Outcome_set.equal pc.Litmus.outcomes pmc.Litmus.outcomes)

(* qcheck: random uniform programs keep the strength chain. *)
let gen_uniform_prog =
  let open QCheck.Gen in
  let instr =
    frequency
      [
        (2, map2 (fun l r -> Lprog.Ld { loc = l; reg = r }) (int_range 0 1) (int_range 0 1));
        (2, map2 (fun l v -> Lprog.St { loc = l; v = Lprog.Const v }) (int_range 0 1) (int_range 1 2));
      ]
  in
  let thread = list_size (int_range 1 3) instr in
  map
    (fun threads ->
      Lprog.make ~name:"rand" ~locs:2 ~regs:2 threads)
    (list_size (int_range 2 2) thread)

(* Programs whose weak-model state space explodes are skipped rather than
   failed: the property is about outcome sets we can fully enumerate. *)
let or_skip f =
  try f () with Litmus.State_space_too_large _ -> true

let prop_chain =
  QCheck.Test.make ~count:40 ~name:"random uniform programs: SC⊆PC⊆CC⊆Slow"
    (QCheck.make gen_uniform_prog) (fun p ->
      or_skip (fun () -> Litmus.strength_chain_holds ~limit:300_000 [ p ]))

let prop_pmc_contains_sc =
  QCheck.Test.make ~count:40 ~name:"random uniform programs: SC ⊆ PMC"
    (QCheck.make gen_uniform_prog) (fun p ->
      or_skip (fun () ->
          let sc = Litmus.enumerate ~limit:300_000 (module Models.Sc) p in
          let pmc = Litmus.enumerate ~limit:300_000 (module Models.Pmc) p in
          Lprog.Outcome_set.subset sc.Litmus.outcomes pmc.Litmus.outcomes))

(* ---------------- enumeration-engine equivalences ----------------

   The BFS memoizes on hand-packed keys and can fan a level out over a
   domain pool; both are pure optimizations, so every observable result
   field must match (a) the same semantics memoized on [marshal_key] —
   the previous key implementation, retained as the reference — and
   (b) the sequential exploration, at any pool width. *)

let with_marshal_key (module M : Models.SEM) : (module Models.SEM) =
  (module struct
    include M

    let key st = Models.marshal_key st
  end)

let result_sig (r : Litmus.result) =
  ( Lprog.Outcome_set.elements r.Litmus.outcomes,
    (r.Litmus.states_explored, r.Litmus.stuck_states) )

let result_sig_t = Alcotest.(pair (list string) (pair int int))

let each_cell f =
  List.iter
    (fun (p : Lprog.t) ->
      List.iter
        (fun ((module M : Models.SEM) as m) -> f p m M.name)
        Models.all)
    Lprog.all_standard

let test_packed_key_matches_marshal () =
  each_cell (fun p m name ->
      Alcotest.check result_sig_t
        (p.Lprog.name ^ " / " ^ name)
        (result_sig (Litmus.enumerate (with_marshal_key m) p))
        (result_sig (Litmus.enumerate m p)))

let test_parallel_bfs_matches_sequential () =
  Pmc_par.Pool.with_pool ~jobs:2 (fun pool ->
      each_cell (fun p m name ->
          Alcotest.check result_sig_t
            (p.Lprog.name ^ " / " ^ name)
            (result_sig (Litmus.enumerate m p))
            (result_sig (Litmus.enumerate ~pool m p))))

let suite =
  ( "litmus",
    [
      Alcotest.test_case "MP plain (Fig. 1)" `Quick test_mp_plain;
      Alcotest.test_case "MP + fences" `Quick test_mp_fence;
      Alcotest.test_case "MP annotated (Fig. 6)" `Quick test_mp_annotated;
      Alcotest.test_case "store buffering" `Quick test_sb;
      Alcotest.test_case "coherence, one writer" `Quick test_coherence_1w;
      Alcotest.test_case "write serialization (CC vs Slow)" `Quick
        test_write_serialization;
      Alcotest.test_case "exclusive access (Fig. 4)" `Quick
        test_exclusive_fig4;
      Alcotest.test_case "strength chain" `Slow test_strength_chain;
      Alcotest.test_case "DRF ⇒ SC" `Slow test_drf_sc;
      Alcotest.test_case "PMC weaker than PC" `Quick test_pmc_weaker_than_pc;
      Alcotest.test_case "PMC weaker than EC (hoisting)" `Quick
        test_pmc_weaker_than_ec;
      Alcotest.test_case "no spurious stuck states" `Quick
        test_no_spurious_stuck;
      Alcotest.test_case "packed keys == marshal keys (corpus)" `Slow
        test_packed_key_matches_marshal;
      Alcotest.test_case "parallel BFS == sequential (corpus)" `Slow
        test_parallel_bfs_matches_sequential;
      QCheck_alcotest.to_alcotest prop_chain;
      QCheck_alcotest.to_alcotest prop_pmc_contains_sc;
    ] )
