(* Model-conformance integration tests: run annotated programs on the
   *simulated* back-ends with tracing enabled, then replay the observed
   trace through the formal PMC model's history checker
   (Pmc_model.History).  Whatever the timing of caches, NoC and locks
   does, the values the program observed must be explainable by the
   model — this closes the loop between the paper's Section IV
   (formalism) and Section V (implementations).

   Mapping: each single-word shared object is one model location;
   exclusive entries/exits become acquire/release; read-only scopes add no
   synchronization edges (a sound weakening — the checker only gets more
   permissive); accesses map word-wise. *)

open Pmc_sim
open Pmc_model

let cfg = { Config.small with cores = 4 }

(* Collect a trace of API events as History events. *)
let make_tracer () =
  let events = ref [] in
  let locs = Hashtbl.create 16 in
  let next_loc = ref 0 in
  let loc_of (o : Pmc.Shared.t) word =
    let key = (o.Pmc.Shared.id, word) in
    match Hashtbl.find_opt locs key with
    | Some l -> l
    | None ->
        let l = !next_loc in
        incr next_loc;
        Hashtbl.add locs key l;
        l
  in
  let hook ~core ev =
    let push e = events := e :: !events in
    match ev with
    | Pmc.Api.Ev_entry (Pmc.Api.X, o) ->
        for w = 0 to Pmc.Shared.words o - 1 do
          push (History.E_acquire { proc = core; loc = loc_of o w })
        done
    | Pmc.Api.Ev_exit (Pmc.Api.X, o) ->
        for w = 0 to Pmc.Shared.words o - 1 do
          push (History.E_release { proc = core; loc = loc_of o w })
        done
    | Pmc.Api.Ev_entry (Pmc.Api.Ro, _) | Pmc.Api.Ev_exit (Pmc.Api.Ro, _) ->
        ()
    | Pmc.Api.Ev_fence -> push (History.E_fence { proc = core })
    | Pmc.Api.Ev_flush _ -> ()
    | Pmc.Api.Ev_read (o, w, v) ->
        push
          (History.E_read
             { proc = core; loc = loc_of o w; value = Int32.to_int v })
    | Pmc.Api.Ev_write (o, w, v) ->
        push
          (History.E_write
             { proc = core; loc = loc_of o w; value = Int32.to_int v })
    | Pmc.Api.Ev_read8 _ | Pmc.Api.Ev_write8 _ ->
        (* the History mapping is word-granular *)
        ()
    | Pmc.Api.Ev_init _ ->
        (* these programs read nothing before writing it *)
        ()
  in
  (hook, fun () -> (List.rev !events, !next_loc))

let validate name events locs =
  let r = History.check ~procs:cfg.Config.cores ~locs:(max 1 locs) events in
  if not (History.ok r) then
    List.iter
      (fun v -> Fmt.epr "%s: %a@." name History.pp_violation v)
      r.History.violations;
  Alcotest.(check bool) (name ^ ": trace is PMC-consistent") true
    (History.ok r)

let test_msg_conformance () =
  List.iter
    (fun kind ->
      let m = Machine.create cfg in
      let api = Pmc.Backends.create kind m in
      let hook, finish = make_tracer () in
      Pmc.Api.set_trace api (Some hook);
      let data = Pmc.Api.alloc_words api ~name:"X" ~words:2 in
      let flag = Pmc.Api.alloc_words api ~name:"flag" ~words:1 in
      Machine.spawn m ~core:0 (fun () ->
          Pmc.Msg.send api ~data ~flag [| 42l; 7l |]);
      Machine.spawn m ~core:1 (fun () ->
          ignore (Pmc.Msg.recv api ~data ~flag));
      Machine.run m;
      let events, locs = finish () in
      validate ("msg/" ^ Pmc.Backends.to_string kind) events locs)
    Pmc.Backends.all

let test_counter_conformance () =
  List.iter
    (fun kind ->
      let m = Machine.create cfg in
      let api = Pmc.Backends.create kind m in
      let hook, finish = make_tracer () in
      Pmc.Api.set_trace api (Some hook);
      let counter = Pmc.Api.alloc_words api ~name:"ctr" ~words:1 in
      for c = 0 to 3 do
        Machine.spawn m ~core:c (fun () ->
            for _ = 1 to 5 do
              Pmc.Api.with_x api counter (fun () ->
                  let v = Pmc.Api.get_int api counter 0 in
                  Pmc.Api.set_int api counter 0 (v + 1))
            done)
      done;
      Machine.run m;
      Alcotest.(check int)
        (Pmc.Backends.to_string kind ^ ": counter value")
        20
        (Pmc.Api.peek_int api counter 0);
      let events, locs = finish () in
      validate ("counter/" ^ Pmc.Backends.to_string kind) events locs)
    Pmc.Backends.all

let test_fifo_conformance () =
  List.iter
    (fun kind ->
      let m = Machine.create cfg in
      let api = Pmc.Backends.create kind m in
      let hook, finish = make_tracer () in
      Pmc.Api.set_trace api (Some hook);
      let fifo =
        Pmc.Fifo.create api ~name:"f" ~depth:2 ~elem_words:1 ~readers:1
      in
      Machine.spawn m ~core:0 (fun () ->
          for i = 1 to 8 do
            Pmc.Fifo.push fifo [| Int32.of_int i |]
          done);
      Machine.spawn m ~core:1 (fun () ->
          for _ = 1 to 8 do
            ignore (Pmc.Fifo.pop fifo ~reader:0)
          done);
      Machine.run m;
      let events, locs = finish () in
      validate ("fifo/" ^ Pmc.Backends.to_string kind) events locs)
    [ Pmc.Backends.Seqcst; Pmc.Backends.Swcc; Pmc.Backends.Dsm ]

(* The discipline corollary of Def. 11: with every write lock-wrapped (the
   API enforces it), traced executions are write-write race free. *)
let test_no_write_races () =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create Pmc.Backends.Swcc m in
  let hook, finish = make_tracer () in
  Pmc.Api.set_trace api (Some hook);
  let a = Pmc.Api.alloc_words api ~name:"a" ~words:1 in
  let b = Pmc.Api.alloc_words api ~name:"b" ~words:1 in
  for c = 0 to 3 do
    Machine.spawn m ~core:c (fun () ->
        for i = 1 to 4 do
          let o = if (c + i) mod 2 = 0 then a else b in
          Pmc.Api.with_x api o (fun () ->
              Pmc.Api.set_int api o 0 ((c * 100) + i))
        done)
  done;
  Machine.run m;
  let events, locs = finish () in
  let r = History.check_reference ~procs:4 ~locs events in
  Alcotest.(check bool) "trace validates" true (History.full_ok r);
  Alcotest.(check bool) "no write-write races" true
    (Observe.race_free r.History.exec)

let suite =
  ( "integration",
    [
      Alcotest.test_case "msg trace conforms to the model (all back-ends)"
        `Quick test_msg_conformance;
      Alcotest.test_case "locked counter conforms + is exact" `Quick
        test_counter_conformance;
      Alcotest.test_case "fifo trace conforms" `Slow test_fifo_conformance;
      Alcotest.test_case "locked writes leave race-free executions" `Quick
        test_no_write_races;
    ] )
