(* Properties of the flat hot core (Bigarray memories, arena scheduler,
   no-sink probe fast path).

   The byte-level flat-vs-seed contract lives in the runtest goldens
   (flat_golden.expected, pmc_demo_flat.expected); these tests pin the
   properties that keep that contract stable under change:

     - the engine fast path (a consume that stays ahead of every other
       pending entry) allocates nothing at all;
     - the suspension path allocates only the runtime's continuation —
       a small bounded number of minor words per event;
     - runs are bit-repeatable for random (app, back-end, cores, chaos)
       points, not just the golden matrix;
     - attaching a trace sink never changes timing or values: the
       traced and untraced executions of the same case agree on every
       architectural counter (the probe/trace gating is observation,
       not behaviour). *)

open Pmc_sim

(* ---------------- allocation ---------------- *)

(* One task, no competitors: every consume takes the engine's in-place
   fast path.  The loop must allocate zero words — the assertion allows
   a small constant for the spawn fiber and run bookkeeping only. *)
let test_fast_path_zero_alloc () =
  let e = Engine.create { Config.small with cores = 1 } in
  let iters = 100_000 in
  Engine.spawn e ~core:0 (fun () ->
      for i = 1 to iters do
        Engine.consume e Stats.Busy ((i land 7) + 1)
      done);
  let w0 = Gc.minor_words () in
  Engine.run e;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "fast path allocates nothing (%d consumes cost %.0f \
                     words)" iters dw)
    true (dw < 5_000.0)

(* Two tasks in lock-step: every consume overtakes the other pending
   entry, so every event goes through suspend/resume.  The arena keeps
   the engine's own cost at zero; what remains is the effect handler's
   continuation, a bounded constant per suspension. *)
let test_suspension_alloc_bounded () =
  let e = Engine.create { Config.small with cores = 2 } in
  let iters = 20_000 in
  for c = 0 to 1 do
    Engine.spawn e ~core:c (fun () ->
        for _ = 1 to iters do
          Engine.consume e Stats.Busy 3
        done)
  done;
  let w0 = Gc.minor_words () in
  Engine.run e;
  let dw = Gc.minor_words () -. w0 in
  let per_event = dw /. float_of_int (2 * iters) in
  Alcotest.(check bool)
    (Printf.sprintf "suspension path bounded (%.1f words/event)" per_event)
    true (per_event < 48.0)

(* ---------------- randomized equivalence ---------------- *)

let cases =
  [ ("streaming", 6); ("stencil", 2); ("histogram", 12); ("reduce", 48) ]

let backends =
  [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm; Pmc.Backends.Spm ]

(* Everything deterministic a run produces, as one comparable value. *)
let digest ?on_api ~chaos (app_name, scale) backend cores =
  let app =
    match Pmc_apps.Registry.find app_name with
    | Some a -> a
    | None -> failwith ("unknown app " ^ app_name)
  in
  let cfg = { Config.small with cores } in
  let cfg =
    match chaos with None -> cfg | Some seed -> Config.chaos ~seed cfg
  in
  let r = Pmc_apps.Runner.run ~cfg ?on_api app ~backend ~scale in
  let s = r.Pmc_apps.Runner.summary in
  ( ( r.Pmc_apps.Runner.wall,
      r.Pmc_apps.Runner.checksum,
      s.Stats.instructions,
      s.Stats.noc_flits,
      s.Stats.noc_writes,
      s.Stats.flushes ),
    ( s.Stats.lock_acquires,
      s.Stats.lock_transfers,
      s.Stats.dcache_misses,
      s.Stats.dcache_hits,
      s.Stats.icache_misses,
      List.map (Stats.category_cycles s) Stats.categories ) )

let arb_point =
  let print (case, backend, cores, chaos) =
    Printf.sprintf "%s/%d on %s c%d chaos=%s" (fst case) (snd case)
      (Pmc.Backends.to_string backend)
      cores
      (match chaos with None -> "-" | Some s -> string_of_int s)
  in
  (* cores >= 4: below that, streaming folds two pipeline roles onto one
     core and the per-core scope discipline (one task per core) breaks —
     a pre-existing app limitation, not a property of the hot core *)
  QCheck.make ~print
    QCheck.Gen.(
      quad (oneofl cases) (oneofl backends) (oneofl [ 4; 8 ])
        (oneofl [ None; None; Some 3; Some 11 ]))

let prop_repeatable =
  QCheck.Test.make ~count:20
    ~name:"flat core: two runs of the same point are identical"
    arb_point
    (fun (case, backend, cores, chaos) ->
      digest ~chaos case backend cores = digest ~chaos case backend cores)

let prop_trace_transparent =
  QCheck.Test.make ~count:20
    ~name:"flat core: attaching a trace sink changes no counter"
    arb_point
    (fun (case, backend, cores, chaos) ->
      let untraced = digest ~chaos case backend cores in
      let recorder = ref None in
      let traced =
        digest
          ~on_api:(fun api ->
            recorder := Some (Pmc_trace.Recorder.attach api))
          ~chaos case backend cores
      in
      ignore !recorder;
      untraced = traced)

let suite =
  ( "flat",
    [
      Alcotest.test_case "fast path zero alloc" `Quick
        test_fast_path_zero_alloc;
      Alcotest.test_case "suspension alloc bounded" `Quick
        test_suspension_alloc_bounded;
      QCheck_alcotest.to_alcotest prop_repeatable;
      QCheck_alcotest.to_alcotest prop_trace_transparent;
    ] )
