(* Tests of the formal PMC model: operations and patterns (Defs. 1-3),
   the Table I transition rules cell by cell, and the dependency graphs of
   Figs. 2-5 of the paper, asserted edge by edge. *)

open Pmc_model

let kinds_between exec (a : Op.t) (b : Op.t) : Execution.edge_kind list =
  List.filter_map
    (fun (k, dst) -> if dst = b.Op.id then Some k else None)
    exec.Execution.succs.(a.Op.id)

let has_edge exec a b k = List.mem k (kinds_between exec a b)
let no_edge exec a b = kinds_between exec a b = []

let check_bool msg expected actual = Alcotest.(check bool) msg expected actual

(* ------------------------------------------------------------------ *)
(* patterns *)

let test_pattern_matching () =
  let w : Op.t = { id = 1; kind = Op.Write; proc = 2; loc = 3; value = 7 } in
  check_bool "write matches (w,*,*,*)" true
    (Op.matches (Op.pattern ~kind:Op.Write ()) w);
  check_bool "write matches (w,2,3,*)" true
    (Op.matches (Op.pattern ~kind:Op.Write ~proc:2 ~loc:3 ()) w);
  check_bool "write rejects wrong proc" false
    (Op.matches (Op.pattern ~kind:Op.Write ~proc:1 ()) w);
  check_bool "write rejects wrong loc" false
    (Op.matches (Op.pattern ~loc:0 ()) w);
  check_bool "write rejects read pattern" false
    (Op.matches (Op.pattern ~kind:Op.Read ()) w);
  check_bool "value pattern matches" true
    (Op.matches (Op.pattern ~value:7 ()) w);
  check_bool "value pattern rejects" false
    (Op.matches (Op.pattern ~value:8 ()) w)

let test_init_acts_as_write_and_release () =
  let i : Op.t =
    { id = 0; kind = Op.Init; proc = Op.env_proc; loc = 0; value = 0 }
  in
  check_bool "init is a write" true (Op.is_write i);
  check_bool "init is a release" true (Op.is_release i);
  check_bool "init is not a read" false (Op.is_read i);
  check_bool "init matches (w,p,v,*) for any p" true
    (Op.matches (Op.pattern ~kind:Op.Write ~proc:5 ~loc:0 ()) i);
  check_bool "init matches (R,*,v,*)" true
    (Op.matches (Op.pattern ~kind:Op.Release ~loc:0 ()) i)

let test_initialization () =
  (* Def. 3: every location starts with exactly one init op; ≺ is empty *)
  let e = Execution.create ~procs:2 ~locs:3 () in
  Alcotest.(check int) "one op per location" 3 (Execution.n_ops e);
  Execution.iter_ops e (fun o ->
      check_bool "initial op is Init" true (o.Op.kind = Op.Init));
  Alcotest.(check int) "no edges initially" 0
    (List.length (Execution.edges e))

(* ------------------------------------------------------------------ *)
(* Table I, cell by cell.  For each pair (existing row, new column) build
   a two-op execution and assert the direct edge (or its absence). *)

let fresh () = Execution.create ~procs:2 ~locs:2 ()

let test_table1_read_row () =
  (* read ≺ℓ before new w / R / A / F; no read → read edge *)
  let e = fresh () in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  check_bool "r <l w" true (has_edge e r w (Execution.Local 0));
  let e = fresh () in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  let r2 = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  check_bool "r -> r unordered" true (no_edge e r r2);
  let e = fresh () in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  check_bool "r <l A" true (has_edge e r a (Execution.Local 0));
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  let rel = Execution.release e ~proc:0 ~loc:0 in
  check_bool "r <l R" true (has_edge e r rel (Execution.Local 0));
  ignore a;
  let e = fresh () in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  let f = Execution.fence e ~proc:0 in
  check_bool "r <l F" true (has_edge e r f (Execution.Local 0))

let test_table1_write_row () =
  let e = fresh () in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:1 in
  check_bool "w <l r" true (has_edge e w r (Execution.Local 0));
  let e = fresh () in
  let w1 = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let w2 = Execution.write e ~proc:0 ~loc:0 ~value:2 in
  check_bool "w <P w" true (has_edge e w1 w2 Execution.Program);
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let rel = Execution.release e ~proc:0 ~loc:0 in
  check_bool "w <P R" true (has_edge e w rel Execution.Program);
  ignore a;
  let e = fresh () in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let f = Execution.fence e ~proc:0 in
  check_bool "w <l F (write before fence is local)" true
    (has_edge e w f (Execution.Local 0));
  (* writes of different processes are unordered *)
  let e = fresh () in
  let w1 = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let w2 = Execution.write e ~proc:1 ~loc:0 ~value:2 in
  check_bool "w(p0) -> w(p1) unordered" true (no_edge e w1 w2);
  (* writes to different locations by one process are unordered *)
  let e = fresh () in
  let w1 = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let w2 = Execution.write e ~proc:0 ~loc:1 ~value:2 in
  check_bool "w(v0) -> w(v1) unordered (Def. 5)" true (no_edge e w1 w2)

let test_table1_acquire_row () =
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  check_bool "A <l r" true (has_edge e a r (Execution.Local 0));
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  check_bool "A <P w" true (has_edge e a w Execution.Program);
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let rel = Execution.release e ~proc:0 ~loc:0 in
  check_bool "A <P R" true (has_edge e a rel Execution.Program);
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let f = Execution.fence e ~proc:0 in
  check_bool "A <F F" true (has_edge e a f Execution.Fence)

let test_table1_release_row () =
  (* dagger note: an acquire is ≺S-after releases of the location by any
     process *)
  let e = fresh () in
  let a0 = Execution.acquire e ~proc:0 ~loc:0 in
  let rel0 = Execution.release e ~proc:0 ~loc:0 in
  let a1 = Execution.acquire e ~proc:1 ~loc:0 in
  check_bool "R(p0) <S A(p1)" true (has_edge e rel0 a1 Execution.Sync);
  ignore a0;
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let rel = Execution.release e ~proc:0 ~loc:0 in
  let f = Execution.fence e ~proc:0 in
  check_bool "R <F F" true (has_edge e rel f Execution.Fence);
  ignore a;
  (* releases of other locations do not synchronize *)
  let e = fresh () in
  let a0 = Execution.acquire e ~proc:0 ~loc:0 in
  let rel0 = Execution.release e ~proc:0 ~loc:0 in
  let a1 = Execution.acquire e ~proc:1 ~loc:1 in
  check_bool "R(v0) -> A(v1) unordered" true (no_edge e rel0 a1);
  ignore a0

let test_table1_fence_row () =
  let e = fresh () in
  let f = Execution.fence e ~proc:0 in
  let w = Execution.write e ~proc:0 ~loc:1 ~value:1 in
  check_bool "F <F w (any location)" true (has_edge e f w Execution.Fence);
  let e = fresh () in
  let f = Execution.fence e ~proc:0 in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  check_bool "F <F A" true (has_edge e f a Execution.Fence);
  let e = fresh () in
  let a = Execution.acquire e ~proc:0 ~loc:0 in
  let f = Execution.fence e ~proc:0 in
  let rel = Execution.release e ~proc:0 ~loc:0 in
  check_bool "F <F R" true (has_edge e f rel Execution.Fence);
  ignore a;
  (* fences do not order another process's operations *)
  let e = fresh () in
  let f = Execution.fence e ~proc:0 in
  let w = Execution.write e ~proc:1 ~loc:0 ~value:1 in
  check_bool "F(p0) -> w(p1) unordered" true (no_edge e f w)

(* ------------------------------------------------------------------ *)
(* The figures *)

(* Fig. 2: two writes to X by one process — program order chain. *)
let test_fig2 () =
  let e = Execution.create ~procs:1 ~locs:1 () in
  let init = Execution.op e 0 in
  let w1 = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let w2 = Execution.write e ~proc:0 ~loc:0 ~value:2 in
  check_bool "init <P X=1" true (has_edge e init w1 Execution.Program);
  check_bool "X=1 <P X=2" true (has_edge e w1 w2 Execution.Program);
  check_bool "init <P X=2 (transitive, present in full graph)" true
    (has_edge e init w2 Execution.Program);
  (* the paper's figures are transitively reduced *)
  let reduced = Order.transitive_reduction Order.Full e in
  Alcotest.(check int) "reduced graph has 2 edges" 2 (List.length reduced)

(* Fig. 3: write, read, write — the read is locally ordered. *)
let test_fig3 () =
  let e = Execution.create ~procs:1 ~locs:1 () in
  let w1 = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:1 in
  let w2 = Execution.write e ~proc:0 ~loc:0 ~value:2 in
  check_bool "X=1 <l X?" true (has_edge e w1 r (Execution.Local 0));
  check_bool "X? <l X=2" true (has_edge e r w2 (Execution.Local 0));
  check_bool "X=1 <P X=2" true (has_edge e w1 w2 Execution.Program);
  (* the read can only return 1 (Def. 12) *)
  Alcotest.(check (list int)) "read must return 1" [ 1 ]
    (Observe.readable_values e r)

(* Fig. 4: exclusive access by two processes; the depicted interleaving is
   p2 first, then p1 reads 2. *)
let test_fig4 () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  let init = Execution.op e 0 in
  (* process 2 (p1 here) acquires first and writes 1 then 2 *)
  let a2 = Execution.acquire e ~proc:1 ~loc:0 in
  let w1 = Execution.write e ~proc:1 ~loc:0 ~value:1 in
  let w2 = Execution.write e ~proc:1 ~loc:0 ~value:2 in
  let r2 = Execution.release e ~proc:1 ~loc:0 in
  (* then process 1 (p0) acquires and reads *)
  let a1 = Execution.acquire e ~proc:0 ~loc:0 in
  let rd = Execution.read e ~proc:0 ~loc:0 ~value:2 in
  let r1 = Execution.release e ~proc:0 ~loc:0 in
  check_bool "init <S acq(p2)" true (has_edge e init a2 Execution.Sync);
  check_bool "acq <P X=1" true (has_edge e a2 w1 Execution.Program);
  check_bool "X=1 <P X=2" true (has_edge e w1 w2 Execution.Program);
  check_bool "X=2 <P rel" true (has_edge e w2 r2 Execution.Program);
  check_bool "rel(p2) <S acq(p1)" true (has_edge e r2 a1 Execution.Sync);
  check_bool "acq(p1) <l X?" true (has_edge e a1 rd (Execution.Local 0));
  check_bool "X? <l rel(p1)" true (has_edge e rd r1 (Execution.Local 0));
  (* the read sees the last write 2, deterministically *)
  Alcotest.(check (list int)) "read returns 2" [ 2 ]
    (Observe.readable_values e rd);
  check_bool "no data race" true (Observe.race_free e)

(* Fig. 5: the communication pattern with fences. *)
let test_fig5 () =
  let e = Execution.create ~procs:2 ~locs:2 () in
  let x = 0 and f = 1 in
  (* process 1 *)
  let acq_x = Execution.acquire e ~proc:0 ~loc:x in
  let w42 = Execution.write e ~proc:0 ~loc:x ~value:42 in
  let fen1 = Execution.fence e ~proc:0 in
  let rel_x = Execution.release e ~proc:0 ~loc:x in
  let acq_f = Execution.acquire e ~proc:0 ~loc:f in
  let wf = Execution.write e ~proc:0 ~loc:f ~value:1 in
  let rel_f = Execution.release e ~proc:0 ~loc:f in
  (* process 2 *)
  let rf = Execution.read e ~proc:1 ~loc:f ~value:1 in
  let fen2 = Execution.fence e ~proc:1 in
  let acq_x2 = Execution.acquire e ~proc:1 ~loc:x in
  let rx = Execution.read e ~proc:1 ~loc:x ~value:42 in
  let rel_x2 = Execution.release e ~proc:1 ~loc:x in
  check_bool "acq X <P X=42" true (has_edge e acq_x w42 Execution.Program);
  check_bool "X=42 <l fence" true (has_edge e w42 fen1 (Execution.Local 0));
  check_bool "fence <F rel X" true (has_edge e fen1 rel_x Execution.Fence);
  check_bool "fence <F acq f" true (has_edge e fen1 acq_f Execution.Fence);
  check_bool "fence <F f=1" true (has_edge e fen1 wf Execution.Fence);
  check_bool "acq f <P f=1" true (has_edge e acq_f wf Execution.Program);
  check_bool "f=1 <P rel f" true (has_edge e wf rel_f Execution.Program);
  check_bool "f? <l fence2" true (has_edge e rf fen2 (Execution.Local 1));
  check_bool "fence2 <F acq X" true (has_edge e fen2 acq_x2 Execution.Fence);
  check_bool "acq X2 <l X?" true (has_edge e acq_x2 rx (Execution.Local 1));
  check_bool "rel X <S acq X2" true (has_edge e rel_x acq_x2 Execution.Sync);
  check_bool "X? <l rel X2" true (has_edge e rx rel_x2 (Execution.Local 1));
  (* the guarantee: process 2's read of X can only return 42 *)
  Alcotest.(check (list int)) "p2 reads 42" [ 42 ]
    (Observe.readable_values e rx);
  (* and the two acquires of X are fence-ordered globally *)
  check_bool "acq X globally before acq X2" true
    (Order.reaches Order.Global e acq_x.Op.id acq_x2.Op.id)

(* ------------------------------------------------------------------ *)
(* order queries *)

let test_views () =
  (* local edges are visible only to their process *)
  let e = fresh () in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:1 in
  check_bool "p0 sees w before r" true
    (Order.reaches (Order.View 0) e w.Op.id r.Op.id);
  check_bool "p1 does not see the local edge" false
    (Order.reaches (Order.View 1) e w.Op.id r.Op.id);
  check_bool "global order does not include it" false
    (Order.reaches Order.Global e w.Op.id r.Op.id);
  check_bool "full order includes it" true
    (Order.reaches Order.Full e w.Op.id r.Op.id)

let test_acyclic_and_topological () =
  let e = fresh () in
  for i = 1 to 10 do
    ignore (Execution.write e ~proc:(i mod 2) ~loc:(i mod 2) ~value:i)
  done;
  check_bool "execution is acyclic" true (Order.is_acyclic e);
  Alcotest.(check (list int)) "ids are topological" (List.init 12 Fun.id)
    (Order.topological e)

let test_gdo_gpo () =
  (* lock-wrapped writes by two processes: GDO holds *)
  let e = fresh () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:1 ~loc:0);
  check_bool "GDO: writes to v totally ordered" true (Order.gdo_total e 0);
  (* unlocked writes by two processes: GDO broken *)
  let e' = fresh () in
  ignore (Execution.write e' ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e' ~proc:1 ~loc:0 ~value:2);
  check_bool "no GDO without locks" false (Order.gdo_total e' 0);
  (* GPO: a fence orders the synchronization operations of one process
     across locations (the EC relaxation the paper recovers: "acquire/
     releases of different locations by the same process are not ordered,
     unless a fence is applied") *)
  let e'' = fresh () in
  ignore (Execution.acquire e'' ~proc:0 ~loc:0);
  let rel0 = Execution.release e'' ~proc:0 ~loc:0 in
  ignore (Execution.fence e'' ~proc:0);
  let acq1 = Execution.acquire e'' ~proc:0 ~loc:1 in
  check_bool "GPO: rel(v0) globally before acq(v1) across the fence" true
    (List.mem (rel0.Op.id, acq1.Op.id) (Order.gpo_pairs e'' 0));
  let e3 = fresh () in
  ignore (Execution.acquire e3 ~proc:0 ~loc:0);
  ignore (Execution.release e3 ~proc:0 ~loc:0);
  ignore (Execution.acquire e3 ~proc:0 ~loc:1);
  check_bool "no GPO pair without fence" true (Order.gpo_pairs e3 0 = [])

(* A plain write enters a fence only locally (Table I, write row, column
   F is ≺ℓ): the cross-location write-before-write guarantee is visible in
   the writer's own view, and implementations realize it globally when
   executing the fence (e.g. Fig. 1's read-back).  This test documents the
   subtlety. *)
let test_fence_local_in_edge () =
  let e = fresh () in
  let w = Execution.write e ~proc:0 ~loc:0 ~value:1 in
  ignore (Execution.fence e ~proc:0);
  let w' = Execution.write e ~proc:0 ~loc:1 ~value:2 in
  check_bool "w before w' in p0's view" true
    (Order.reaches (Order.View 0) e w.Op.id w'.Op.id);
  check_bool "w before w' is not globally derivable from the table alone"
    false
    (Order.reaches Order.Global e w.Op.id w'.Op.id)

let tests =
  [
    Alcotest.test_case "pattern matching" `Quick test_pattern_matching;
    Alcotest.test_case "init acts as write+release" `Quick
      test_init_acts_as_write_and_release;
    Alcotest.test_case "initialization (Def. 3)" `Quick test_initialization;
    Alcotest.test_case "Table I: read row" `Quick test_table1_read_row;
    Alcotest.test_case "Table I: write row" `Quick test_table1_write_row;
    Alcotest.test_case "Table I: acquire row" `Quick test_table1_acquire_row;
    Alcotest.test_case "Table I: release row" `Quick test_table1_release_row;
    Alcotest.test_case "Table I: fence row" `Quick test_table1_fence_row;
    Alcotest.test_case "Fig. 2 graph" `Quick test_fig2;
    Alcotest.test_case "Fig. 3 graph" `Quick test_fig3;
    Alcotest.test_case "Fig. 4 graph" `Quick test_fig4;
    Alcotest.test_case "Fig. 5 graph" `Quick test_fig5;
    Alcotest.test_case "per-process views" `Quick test_views;
    Alcotest.test_case "acyclicity + topological ids" `Quick
      test_acyclic_and_topological;
    Alcotest.test_case "GDO / GPO (Sec. IV-E)" `Quick test_gdo_gpo;
    Alcotest.test_case "fence in-edge subtlety" `Quick
      test_fence_local_in_edge;
  ]

(* ------------------------------------------------------------------ *)
(* property tests *)

let gen_ops =
  QCheck.(
    list_of_size Gen.(int_range 1 60)
      (quad (int_range 0 2) (int_range 0 2) (int_range 0 2) (int_range 0 9)))

(* Replay arbitrary (kind, proc, loc, value) streams; lock operations are
   made well-formed on the fly. *)
let replay ops =
  let e = Execution.create ~procs:3 ~locs:3 () in
  let held = Array.make 3 None in
  List.iter
    (fun (k, p, v, value) ->
      match k with
      | 0 -> ignore (Execution.read e ~proc:p ~loc:v ~value)
      | 1 -> ignore (Execution.write e ~proc:p ~loc:v ~value)
      | _ -> (
          match held.(p) with
          | None ->
              ignore (Execution.acquire e ~proc:p ~loc:v);
              held.(p) <- Some v
          | Some l ->
              ignore (Execution.release e ~proc:p ~loc:l);
              held.(p) <- None))
    ops;
  e

let prop_acyclic =
  QCheck.Test.make ~name:"random executions stay acyclic" ~count:200 gen_ops
    (fun ops -> Order.is_acyclic (replay ops))

let prop_edges_point_forward =
  QCheck.Test.make ~name:"edges always point to newer ops" ~count:200 gen_ops
    (fun ops ->
      let e = replay ops in
      List.for_all
        (fun (ed : Execution.edge) -> ed.Execution.src < ed.Execution.dst)
        (Execution.edges e))

let prop_last_writes_nonempty =
  QCheck.Test.make ~name:"last-write set is never empty (Def. 11)"
    ~count:200 gen_ops (fun ops ->
      let e = replay ops in
      List.for_all
        (fun (o : Op.t) ->
          (not (Op.is_read o)) || Observe.last_writes e o <> [])
        (Execution.ops_list e))

let prop_reduction_preserves_reachability =
  QCheck.Test.make ~name:"transitive reduction preserves reachability"
    ~count:60 gen_ops (fun ops ->
      let e = replay ops in
      let reduced = Order.transitive_reduction Order.Full e in
      let reach_in_reduced a b =
        (* BFS over the reduced edge list *)
        let n = Execution.n_ops e in
        let adj = Array.make n [] in
        List.iter
          (fun (ed : Execution.edge) ->
            adj.(ed.Execution.src) <- ed.Execution.dst :: adj.(ed.Execution.src))
          reduced;
        let seen = Array.make n false in
        let rec go u = u = b || (not seen.(u)) && (seen.(u) <- true;
                                                   List.exists go adj.(u))
        in
        seen.(a) <- true;
        List.exists go adj.(a)
      in
      List.for_all
        (fun (ed : Execution.edge) ->
          reach_in_reduced ed.Execution.src ed.Execution.dst)
        (Execution.edges e))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_acyclic;
      prop_edges_point_forward;
      prop_last_writes_nonempty;
      prop_reduction_preserves_reachability;
    ]

let suite = ("model", tests @ props)
