(* Chaos subsystem tests: the zero-cost-when-off identity, retry-aware
   NoC draining, bounded lock acquisition, typed errors with attribution,
   and the qcheck wall of seeds — under any seeded fault schedule a run
   either completes with the right answer or fails with a typed error,
   never a silent wrong result. *)

open Pmc_sim

let cfg_armed ~seed = Config.chaos ~seed { Config.small with cores = 4 }

(* ---------------- zero-cost-when-off ---------------- *)

let test_disarmed_is_identical () =
  (* arming the chaos knobs and then disarming them must reproduce the
     never-armed machine bit for bit *)
  List.iter
    (fun backend ->
      let app =
        match Pmc_apps.Registry.find "histogram" with
        | Some a -> a
        | None -> Alcotest.fail "histogram app missing"
      in
      let id =
        Pmc_apps.Chaos.zero_cost_identity app ~backend ~cores:4 ~scale:8
          ~seed:11
      in
      Alcotest.(check bool)
        (Printf.sprintf "disarmed %s identical: %s"
           (Pmc.Backends.to_string backend)
           id.Pmc_apps.Chaos.detail)
        true id.Pmc_apps.Chaos.identical)
    [ Pmc.Backends.Swcc; Pmc.Backends.Dsm; Pmc.Backends.Farmem ]

let test_no_faults_clears_knobs () =
  let c = Config.no_faults (Config.chaos ~seed:3 Config.default) in
  Alcotest.(check bool) "disarmed" false (Config.faults_enabled c);
  Alcotest.(check bool) "armed" true
    (Config.faults_enabled (Config.chaos ~seed:3 Config.default))

(* ---------------- fault plane determinism ---------------- *)

let test_fault_draws_deterministic () =
  let f1 = Fault.create (cfg_armed ~seed:42) in
  let f2 = Fault.create (cfg_armed ~seed:42) in
  for seq = 0 to 199 do
    let o1 = Fault.noc_outcome f1 ~src:0 ~dst:1 ~seq ~attempt:1 in
    let o2 = Fault.noc_outcome f2 ~src:0 ~dst:1 ~seq ~attempt:1 in
    Alcotest.(check bool) "same outcome for same site" true (o1 = o2)
  done;
  let f3 = Fault.create (cfg_armed ~seed:43) in
  let differs = ref false in
  for seq = 0 to 199 do
    let o1 = Fault.noc_outcome f1 ~src:0 ~dst:1 ~seq ~attempt:1 in
    let o3 = Fault.noc_outcome f3 ~src:0 ~dst:1 ~seq ~attempt:1 in
    if o1 <> o3 then differs := true
  done;
  Alcotest.(check bool) "different seed draws differently" true !differs

(* ---------------- NoC: drain covers retransmissions ---------------- *)

(* A lossy-link config with only NoC drops armed, so the assertions
   below isolate the retransmission path. *)
let drops_only ~seed ~prob =
  { (cfg_armed ~seed) with
    Config.noc_drop_prob = prob;
    noc_corrupt_prob = 0.0;
    noc_delay_prob = 0.0;
    sdram_error_prob = 0.0;
    tile_stall_prob = 0.0;
  }

let test_drain_includes_retries () =
  (* under a lossy link, writes take several attempts; [noc_drain] must
     still block until the payload actually landed *)
  let cfg = drops_only ~seed:7 ~prob:0.4 in
  let m = Machine.create cfg in
  let dst_addr = Machine.local_addr m ~tile:1 ~off:64 in
  Machine.spawn m ~core:0 (fun () ->
      for i = 0 to 31 do
        Machine.store_u32 m ~shared:true
          (Machine.local_addr m ~tile:1 ~off:(64 + (4 * i)))
          (Int32.of_int (1000 + i))
      done;
      Machine.noc_drain m;
      (* after the drain returned, every write must be visible at the
         destination despite the drops along the way *)
      for i = 0 to 31 do
        Alcotest.(check int32)
          (Printf.sprintf "word %d landed despite drops" i)
          (Int32.of_int (1000 + i))
          (Machine.peek_u32 m (dst_addr + (4 * i)))
      done);
  Machine.run m;
  let f = Fault.counts (Machine.fault m) in
  Alcotest.(check bool) "faults were injected" true (f.Fault.noc_drops > 0);
  Alcotest.(check bool) "retries happened" true (f.Fault.noc_retries > 0)

let test_outstanding_includes_retries () =
  (* the raw transport: [outstanding] must stay non-zero while a dropped
     packet is being retransmitted, and [drain_wait] must be able to ride
     out the retries *)
  let cfg = drops_only ~seed:5 ~prob:0.5 in
  let engine = Engine.create cfg in
  let fault = Fault.create cfg in
  let locals =
    Array.init cfg.Config.cores (fun _ ->
        Mem.create cfg.Config.local_mem_bytes)
  in
  let noc = Noc.create cfg fault engine locals in
  let payload = Mem.create 8 in
  for i = 0 to 7 do
    Mem.set_char payload i 'q'
  done;
  let polls = ref 0 in
  Engine.spawn engine ~core:0 (fun () ->
      for i = 0 to 15 do
        ignore
          (Noc.post_write noc ~src:0 ~dst:1 ~off:(8 * i) payload ~pos:0
             ~len:8)
      done;
      Alcotest.(check bool) "posted writes are outstanding" true
        (Noc.outstanding noc ~src:0 > 0);
      while Noc.outstanding noc ~src:0 > 0 && !polls < 10_000 do
        incr polls;
        Engine.consume engine Stats.Write_stall
          (max 1 (Noc.drain_wait noc ~src:0))
      done);
  Engine.run engine;
  let f = Fault.counts fault in
  Alcotest.(check bool) "drops happened" true (f.Fault.noc_drops > 0);
  Alcotest.(check bool) "retries happened" true (f.Fault.noc_retries > 0);
  Alcotest.(check int) "drain completed" 0 (Noc.outstanding noc ~src:0);
  (* every payload byte landed exactly as sent *)
  for i = 0 to 15 do
    Alcotest.(check string)
      (Printf.sprintf "packet %d intact" i)
      "qqqqqqqq"
      (Bytes.to_string (Mem.to_bytes locals.(1) ~pos:(8 * i) ~len:8))
  done

let test_corruption_never_lands_silently () =
  (* a corrupted packet is dropped by its checksum and retried: the data
     that finally lands is always the data that was sent *)
  let cfg =
    { (cfg_armed ~seed:13) with
      Config.noc_drop_prob = 0.0;
      noc_corrupt_prob = 0.4;
      noc_delay_prob = 0.0;
      sdram_error_prob = 0.0;
      tile_stall_prob = 0.0;
    }
  in
  let m = Machine.create cfg in
  let dst_addr = Machine.local_addr m ~tile:1 ~off:128 in
  Machine.spawn m ~core:0 (fun () ->
      for i = 0 to 31 do
        Machine.store_u32 m ~shared:true
          (dst_addr + (4 * i))
          (Int32.of_int (7 * i))
      done;
      Machine.noc_drain m;
      for i = 0 to 31 do
        Alcotest.(check int32)
          (Printf.sprintf "word %d intact" i)
          (Int32.of_int (7 * i))
          (Machine.peek_u32 m (dst_addr + (4 * i)))
      done);
  Machine.run m;
  let f = Fault.counts (Machine.fault m) in
  Alcotest.(check bool) "corruptions were injected" true
    (f.Fault.noc_corrupts > 0)

let test_dead_link_relays () =
  (* with a certainly-lossy link, the retry budget exhausts, the link is
     declared dead, and delivery degrades to the SDRAM relay — the write
     still lands *)
  let cfg = drops_only ~seed:1 ~prob:1.0 in
  let m = Machine.create cfg in
  let dst_addr = Machine.local_addr m ~tile:2 ~off:32 in
  Machine.spawn m ~core:0 (fun () ->
      Machine.store_u32 m ~shared:true dst_addr 77l;
      Machine.noc_drain m;
      Alcotest.(check int32) "payload landed via relay" 77l
        (Machine.peek_u32 m dst_addr));
  Machine.run m;
  let f = Fault.counts (Machine.fault m) in
  Alcotest.(check bool) "link declared dead" true (f.Fault.links_dead > 0);
  Alcotest.(check bool) "relay delivered" true (f.Fault.relay_deliveries > 0);
  Alcotest.(check bool) "dead link visible" true
    (Machine.link_dead m ~src:0 ~dst:2)

(* ---------------- bounded lock acquisition ---------------- *)

let test_acquire_timeout_returns () =
  let m = Machine.create { Config.small with cores = 4 } in
  let l = Pmc_lock.Dlock.create m in
  let outcome = ref Pmc_lock.Dlock.Acquired in
  Machine.spawn m ~core:0 (fun () ->
      Pmc_lock.Dlock.acquire l;
      Engine.consume (Machine.engine m) Stats.Busy 5_000;
      Pmc_lock.Dlock.release l);
  Machine.spawn m ~core:1 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 10;
      outcome := Pmc_lock.Dlock.acquire_timeout l ~timeout:500);
  Machine.run m;
  (match !outcome with
  | Pmc_lock.Dlock.Timeout { waited } ->
      Alcotest.(check bool)
        (Printf.sprintf "waited (%d) within bound" waited)
        true
        (waited >= 400 && waited <= 1_000)
  | Pmc_lock.Dlock.Acquired -> Alcotest.fail "expected a timeout");
  Alcotest.(check bool) "holder released in the end" true
    (Pmc_lock.Dlock.holder l = None)

let test_timeout_leaves_lock_usable () =
  (* after core 1 gives up, core 2 (queued behind it) must still get the
     lock: the withdrawal may not wedge the grant chain *)
  let m = Machine.create { Config.small with cores = 4 } in
  let l = Pmc_lock.Dlock.create m in
  let got2 = ref false in
  Machine.spawn m ~core:0 (fun () ->
      Pmc_lock.Dlock.acquire l;
      Engine.consume (Machine.engine m) Stats.Busy 4_000;
      Pmc_lock.Dlock.release l);
  Machine.spawn m ~core:1 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 10;
      ignore (Pmc_lock.Dlock.acquire_timeout l ~timeout:300));
  Machine.spawn m ~core:2 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 20;
      Pmc_lock.Dlock.acquire l;
      got2 := true;
      Pmc_lock.Dlock.release l);
  Machine.run m;
  Alcotest.(check bool) "queued waiter still served" true !got2;
  Alcotest.(check bool) "lock free at the end" true
    (Pmc_lock.Dlock.holder l = None)

let test_acquire_timeout_uncontended () =
  let m = Machine.create { Config.small with cores = 2 } in
  let l = Pmc_lock.Dlock.create m in
  let outcome = ref (Pmc_lock.Dlock.Timeout { waited = -1 }) in
  Machine.spawn m ~core:0 (fun () ->
      outcome := Pmc_lock.Dlock.acquire_timeout l ~timeout:100;
      match !outcome with
      | Pmc_lock.Dlock.Acquired -> Pmc_lock.Dlock.release l
      | Pmc_lock.Dlock.Timeout _ -> ());
  Machine.run m;
  Alcotest.(check bool) "uncontended bounded acquire succeeds" true
    (!outcome = Pmc_lock.Dlock.Acquired)

let test_acquire_timeout_invalid () =
  let m = Machine.create { Config.small with cores = 2 } in
  let l = Pmc_lock.Dlock.create m in
  Alcotest.check_raises "timeout must be positive"
    (Invalid_argument "Dlock.acquire_timeout: timeout <= 0") (fun () ->
      ignore (Pmc_lock.Dlock.acquire_timeout l ~timeout:0))

(* ---------------- typed errors ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let test_arena_exhaustion_reports_sizes () =
  let m = Machine.create { Config.small with cores = 2 } in
  let huge = 2 * (Machine.config m).Config.sdram_bytes in
  (match Machine.alloc_cached m ~bytes:huge with
  | _ -> Alcotest.fail "expected arena exhaustion"
  | exception Pmc_error.Error c ->
      Alcotest.(check string) "operation attributed" "Machine.alloc_cached"
        c.Pmc_error.op;
      Alcotest.(check bool) "requested bytes in message" true
        (contains c.Pmc_error.detail "requested");
      Alcotest.(check bool) "available bytes in message" true
        (contains c.Pmc_error.detail "available"));
  (* the failed allocation must not have moved the brk: a small one
     still succeeds *)
  match Machine.alloc_cached m ~bytes:64 with
  | _ -> ()
  | exception _ -> Alcotest.fail "arena corrupted by failed allocation"

let test_lock_errors_typed () =
  let m = Machine.create { Config.small with cores = 2 } in
  let l = Pmc_lock.Dlock.create m in
  let releases_typed = ref false in
  Machine.spawn m ~core:0 (fun () ->
      (try Pmc_lock.Dlock.release l
       with Pmc_error.Error c -> releases_typed := c.Pmc_error.core = 0));
  Machine.run m;
  Alcotest.(check bool) "release-not-held carries the core" true
    !releases_typed

(* ---------------- the wall of seeds ---------------- *)

let run_seed ~backend ~seed =
  let app =
    match Pmc_apps.Registry.find "histogram" with
    | Some a -> a
    | None -> Alcotest.fail "histogram app missing"
  in
  Pmc_apps.Chaos.run_one ~model_check:false app ~backend ~cores:4 ~scale:6
    ~seed

let prop_seeded_runs_acceptable =
  QCheck.Test.make ~count:25 ~name:"chaos runs complete or fail typed"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r = run_seed ~backend:Pmc.Backends.Dsm ~seed in
      Pmc_apps.Chaos.acceptable r.Pmc_apps.Chaos.verdict)

let prop_seeded_runs_acceptable_farmem =
  QCheck.Test.make ~count:25
    ~name:"chaos runs complete or fail typed (farmem)"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r = run_seed ~backend:Pmc.Backends.Farmem ~seed in
      Pmc_apps.Chaos.acceptable r.Pmc_apps.Chaos.verdict)

(* the disarmed power-cut plane: [Config.no_faults] on a crash config
   must reproduce the fault-free run bit for bit — the [farmem] twin of
   the zero-cost-when-off identity *)
let prop_disarmed_power_cut_identical =
  QCheck.Test.make ~count:10 ~name:"disarmed power-cut plane is free"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let app =
        match Pmc_apps.Registry.find "histogram" with
        | Some a -> a
        | None -> Alcotest.fail "histogram app missing"
      in
      let base = { Config.small with Config.cores = 4 } in
      let backend = Pmc.Backends.Farmem in
      let plain = Pmc_apps.Runner.run ~cfg:base app ~backend ~scale:6 in
      let disarmed =
        Pmc_apps.Runner.run
          ~cfg:(Config.no_faults (Config.crash ~seed ~window:10_000 base))
          app ~backend ~scale:6
      in
      plain.Pmc_apps.Runner.wall = disarmed.Pmc_apps.Runner.wall
      && plain.Pmc_apps.Runner.checksum = disarmed.Pmc_apps.Runner.checksum
      && plain.Pmc_apps.Runner.summary = disarmed.Pmc_apps.Runner.summary)

let prop_seeded_runs_deterministic =
  QCheck.Test.make ~count:10 ~name:"chaos verdicts reproducible"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r1 = run_seed ~backend:Pmc.Backends.Dsm ~seed in
      let r2 = run_seed ~backend:Pmc.Backends.Dsm ~seed in
      r1.Pmc_apps.Chaos.verdict = r2.Pmc_apps.Chaos.verdict
      && r1.Pmc_apps.Chaos.wall = r2.Pmc_apps.Chaos.wall
      && r1.Pmc_apps.Chaos.faults = r2.Pmc_apps.Chaos.faults)

(* a complete soak, with the model replay on, at a geometry small enough
   for the checker *)
let test_soak_with_replay () =
  let apps =
    List.filter_map Pmc_apps.Registry.find [ "histogram"; "reduce" ]
  in
  let s =
    Pmc_apps.Chaos.soak ~apps ~backend:Pmc.Backends.Dsm ~cores:4 ~scale:4
      ~seeds:[ 1; 2; 3; 4; 5 ] ()
  in
  Alcotest.(check int) "ten runs" 10 s.Pmc_apps.Chaos.total;
  Alcotest.(check int) "no silent failures" 0 s.Pmc_apps.Chaos.failed;
  Alcotest.(check bool) "soak passes" true (Pmc_apps.Chaos.ok s)

let suite =
  ( "chaos",
    [
      Alcotest.test_case "disarmed chaos is bit-identical" `Slow
        test_disarmed_is_identical;
      Alcotest.test_case "no_faults clears the knobs" `Quick
        test_no_faults_clears_knobs;
      Alcotest.test_case "fault draws deterministic" `Quick
        test_fault_draws_deterministic;
      Alcotest.test_case "drain covers retransmissions" `Quick
        test_drain_includes_retries;
      Alcotest.test_case "corruption never lands silently" `Quick
        test_corruption_never_lands_silently;
      Alcotest.test_case "dead link degrades to relay" `Quick
        test_dead_link_relays;
      Alcotest.test_case "acquire_timeout times out" `Quick
        test_acquire_timeout_returns;
      Alcotest.test_case "timeout leaves lock usable" `Quick
        test_timeout_leaves_lock_usable;
      Alcotest.test_case "acquire_timeout uncontended" `Quick
        test_acquire_timeout_uncontended;
      Alcotest.test_case "acquire_timeout validates input" `Quick
        test_acquire_timeout_invalid;
      Alcotest.test_case "arena exhaustion reports sizes" `Quick
        test_arena_exhaustion_reports_sizes;
      Alcotest.test_case "lock errors carry the core" `Quick
        test_lock_errors_typed;
      QCheck_alcotest.to_alcotest prop_seeded_runs_acceptable;
      QCheck_alcotest.to_alcotest prop_seeded_runs_acceptable_farmem;
      QCheck_alcotest.to_alcotest prop_disarmed_power_cut_identical;
      QCheck_alcotest.to_alcotest prop_seeded_runs_deterministic;
      Alcotest.test_case "soak with model replay" `Slow test_soak_with_replay;
    ] )
