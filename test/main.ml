(* Test entry point: all suites of the PMC reproduction. *)

let () =
  Alcotest.run "pmc"
    [
      Test_prng.suite;
      Test_model.suite;
      Test_observe.suite;
      Test_litmus.suite;
      Test_engine.suite;
      Test_flat.suite;
      Test_cache.suite;
      Test_sim.suite;
      Test_topology.suite;
      Test_lock.suite;
      Test_runtime.suite;
      Test_fifo.suite;
      Test_compile.suite;
      Test_integration.suite;
      Test_ext.suite;
      Test_differential.suite;
      Test_apps.suite;
      Test_trace.suite;
      Test_bench.suite;
      Test_chaos.suite;
      Test_crash.suite;
      Test_par.suite;
      Test_serve.suite;
    ]
