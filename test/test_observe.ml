(* Tests of the observation semantics: last writes (Def. 11), readable
   values / slow reads (Def. 12), data races, and the history checker. *)

open Pmc_model

let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let test_last_write_simple () =
  let e = Execution.create ~procs:1 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  let w2 = Execution.write e ~proc:0 ~loc:0 ~value:2 in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:2 in
  let lw = Observe.last_writes ~view:0 e r in
  Alcotest.(check int) "single last write" 1 (List.length lw);
  Alcotest.(check int) "it is w2" w2.Op.id (List.hd lw).Op.id

let test_last_write_initial () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  let r = Execution.read e ~proc:0 ~loc:0 ~value:0 in
  let lw = Observe.last_writes ~view:0 e r in
  Alcotest.(check int) "initial write is the last write" 1 (List.length lw);
  check_bool "it is the init op" true ((List.hd lw).Op.kind = Op.Init)

(* Slow reads: another process may still see an older value, but never one
   older than its own last-write bound; and values can be newer. *)
let test_slow_read_cross_process () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:0 ~loc:0);
  (* p1 reads without synchronizing: it may see 0, 1 or 2 — writes
     propagate slowly *)
  let r = Execution.read e ~proc:1 ~loc:0 ~value:0 in
  check_ints "unsynchronized read: any of 0,1,2" [ 0; 1; 2 ]
    (Observe.readable_values e r)

let test_synchronized_read_is_exact () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  let r = Execution.read e ~proc:1 ~loc:0 ~value:2 in
  check_ints "read after acquire sees exactly 2" [ 2 ]
    (Observe.readable_values e r);
  check_bool "deterministic" true (Observe.deterministic_read e r)

let test_own_writes_are_exact () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:5);
  let r = Execution.read e ~proc:0 ~loc:0 ~value:5 in
  check_ints "own write is the only readable value" [ 5 ]
    (Observe.readable_values e r)

let test_write_write_race () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  check_bool "two unsynchronized writes race" false (Observe.race_free e);
  Alcotest.(check int) "exactly one racing pair" 1
    (List.length (Observe.write_write_races e))

let test_locked_writes_no_race () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  ignore (Execution.release e ~proc:1 ~loc:0);
  check_bool "lock-wrapped writes do not race" true (Observe.race_free e)

let test_race_makes_read_nondeterministic () =
  let e = Execution.create ~procs:3 ~locs:1 () in
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e ~proc:1 ~loc:0 ~value:2);
  let r = Execution.read e ~proc:2 ~loc:0 ~value:1 in
  check_bool "racy location reads nondeterministically" false
    (Observe.deterministic_read e r);
  check_ints "all three values readable" [ 0; 1; 2 ]
    (Observe.readable_values e r);
  (* a reader synchronized with both racy writers sees both in its
     last-write set *)
  let e2 = Execution.create ~procs:3 ~locs:2 () in
  ignore (Execution.write e2 ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.write e2 ~proc:1 ~loc:0 ~value:2);
  (* both writers release a lock the reader acquires *)
  ignore (Execution.acquire e2 ~proc:0 ~loc:1);
  ignore (Execution.release e2 ~proc:0 ~loc:1);
  ignore (Execution.acquire e2 ~proc:1 ~loc:1);
  ignore (Execution.release e2 ~proc:1 ~loc:1);
  ignore (Execution.acquire e2 ~proc:2 ~loc:1);
  (* but the writes themselves stay concurrent: use fences to order each
     writer's write before its release *)
  check_bool "the racy writes are concurrent" false (Observe.race_free e2)

(* ------------------------------------------------------------------ *)
(* history checker *)

open History

let ev_r proc loc value = E_read { proc; loc; value }
let ev_w proc loc value = E_write { proc; loc; value }
let ev_a proc loc = E_acquire { proc; loc }
let ev_rel proc loc = E_release { proc; loc }

let test_history_good_trace () =
  let r =
    check ~procs:2 ~locs:2
      [
        ev_a 0 0; ev_w 0 0 42; ev_rel 0 0;
        ev_a 0 1; ev_w 0 1 1; ev_rel 0 1;
        ev_r 1 1 1;
        ev_a 1 0; ev_r 1 0 42; ev_rel 1 0;
      ]
  in
  Alcotest.(check bool) "clean trace validates" true (ok r)

let test_history_unreadable_value () =
  let r = check ~procs:2 ~locs:1 [ ev_w 0 0 1; ev_r 0 0 7 ] in
  Alcotest.(check bool) "impossible value flagged" false (ok r);
  match r.violations with
  | [ Unreadable_value _ ] -> ()
  | _ -> Alcotest.fail "expected Unreadable_value"

let test_history_stale_own_write () =
  (* a process reading older than its own last write is invalid *)
  let r = check ~procs:1 ~locs:1 [ ev_w 0 0 1; ev_w 0 0 2; ev_r 0 0 1 ] in
  Alcotest.(check bool) "own stale read flagged" false (ok r)

let test_history_slow_cross_read_ok () =
  (* another process seeing the older value is fine (slow memory) *)
  let r = check ~procs:2 ~locs:1 [ ev_w 0 0 1; ev_w 0 0 2; ev_r 1 0 1 ] in
  Alcotest.(check bool) "cross-process stale read allowed" true (ok r)

let test_history_double_acquire () =
  let r = check ~procs:2 ~locs:1 [ ev_a 0 0; ev_a 1 0 ] in
  Alcotest.(check bool) "double acquire flagged" false (ok r);
  match r.violations with
  | Double_acquire _ :: _ -> ()
  | _ -> Alcotest.fail "expected Double_acquire"

let test_history_release_not_held () =
  let r = check ~procs:2 ~locs:1 [ ev_rel 1 0 ] in
  Alcotest.(check bool) "foreign release flagged" false (ok r)

let test_history_monotonic_reads () =
  (* p1 sees 2 and then 1 — time went backwards *)
  let r =
    check ~procs:2 ~locs:1
      [ ev_w 0 0 1; ev_w 0 0 2; ev_r 1 0 2; ev_r 1 0 1 ]
  in
  Alcotest.(check bool) "non-monotonic reads flagged" false (ok r);
  Alcotest.(check bool) "specific violation" true
    (List.exists
       (function Non_monotonic_reads _ -> true | _ -> false)
       r.violations)

let test_history_locked_write_discipline () =
  let r =
    check ~require_locked_writes:true ~procs:1 ~locs:1 [ ev_w 0 0 1 ]
  in
  Alcotest.(check bool) "unlocked write flagged when required" false (ok r)

(* ---------------- property tests ---------------- *)

(* Generate a well-formed SC run: writes happen under the location's lock,
   reads return the current memory value.  SC runs must always validate
   (SC behaviour is within PMC). *)
let gen_sc_trace ops : History.event list =
  let mem = Array.make 2 0 in
  let held = Array.make 3 None in
  let events = ref [] in
  List.iter
    (fun (kind, proc, loc, value) ->
      let loc = loc mod 2 and proc = proc mod 3 in
      match kind mod 3 with
      | 0 -> events := History.E_read { proc; loc; value = mem.(loc) } :: !events
      | 1 -> (
          (* write under this process's lock if it can take it *)
          match held.(proc) with
          | Some l when l = loc ->
              mem.(loc) <- value;
              events := History.E_write { proc; loc; value } :: !events
          | Some _ -> ()
          | None ->
              if Array.for_all (fun h -> h <> Some loc) held then begin
                held.(proc) <- Some loc;
                events := History.E_acquire { proc; loc } :: !events;
                mem.(loc) <- value;
                events := History.E_write { proc; loc; value } :: !events
              end)
      | _ -> (
          match held.(proc) with
          | Some l ->
              held.(proc) <- None;
              events := History.E_release { proc; loc = l } :: !events
          | None -> ()))
    ops;
  (* close open locks *)
  Array.iteri
    (fun proc h ->
      match h with
      | Some loc -> events := History.E_release { proc; loc } :: !events
      | None -> ())
    held;
  List.rev !events

let gen_ops =
  QCheck.(
    list_of_size Gen.(int_range 5 60)
      (quad (int_range 0 2) (int_range 0 2) (int_range 0 1) (int_range 1 9)))

let prop_sc_traces_validate =
  QCheck.Test.make ~count:200 ~name:"well-formed SC traces always validate"
    gen_ops (fun ops ->
      History.ok (History.check ~procs:3 ~locs:2 (gen_sc_trace ops)))

let prop_corrupted_value_caught =
  QCheck.Test.make ~count:200
    ~name:"a read of a never-written value is always caught" gen_ops
    (fun ops ->
      let events =
        gen_sc_trace ops @ [ History.E_read { proc = 0; loc = 0; value = 99 } ]
      in
      not (History.ok (History.check ~procs:3 ~locs:2 events)))

(* ---- equivalence of the incremental checker and the reference ---- *)

(* Completely arbitrary histories — ill-formed locking, reads of values
   never written, read-only scopes, fences — over a small geometry, so the
   generator reaches every violation constructor. *)
let event_to_string =
  let open History in
  function
  | E_read { proc; loc; value } -> Printf.sprintf "r p%d v%d=%d" proc loc value
  | E_write { proc; loc; value } ->
      Printf.sprintf "w p%d v%d:=%d" proc loc value
  | E_acquire { proc; loc } -> Printf.sprintf "A p%d v%d" proc loc
  | E_release { proc; loc } -> Printf.sprintf "R p%d v%d" proc loc
  | E_acquire_ro { proc; loc } -> Printf.sprintf "Aro p%d v%d" proc loc
  | E_release_ro { proc; loc } -> Printf.sprintf "Rro p%d v%d" proc loc
  | E_fence { proc } -> Printf.sprintf "F p%d" proc

let gen_wild_events =
  let open QCheck.Gen in
  let event =
    int_range 0 2 >>= fun proc ->
    int_range 0 1 >>= fun loc ->
    int_range 0 2 >>= fun value ->
    frequency
      [
        (4, return (History.E_read { proc; loc; value }));
        (4, return (History.E_write { proc; loc; value }));
        (2, return (History.E_acquire { proc; loc }));
        (2, return (History.E_release { proc; loc }));
        (1, return (History.E_acquire_ro { proc; loc }));
        (1, return (History.E_release_ro { proc; loc }));
        (1, return (History.E_fence { proc }));
      ]
  in
  list_size (int_range 0 40) event

let arb_wild_events =
  QCheck.make
    ~print:(fun evs -> String.concat "; " (List.map event_to_string evs))
    gen_wild_events

(* The incremental checker must report exactly the violations, in exactly
   the order, that the reference (DAG-building) checker does — on any
   history, well-formed or not, under every option combination. *)
let same_verdict ?require_locked_writes ?init events =
  let r = History.check ?require_locked_writes ?init ~procs:3 ~locs:2 events in
  let f =
    History.check_reference ?require_locked_writes ?init ~procs:3 ~locs:2
      events
  in
  r.History.violations = f.History.full_violations

let prop_incremental_matches_reference =
  QCheck.Test.make ~count:500
    ~name:"incremental check ≡ reference on arbitrary histories"
    arb_wild_events (same_verdict ?require_locked_writes:None ?init:None)

let prop_incremental_matches_reference_locked =
  QCheck.Test.make ~count:300
    ~name:"incremental check ≡ reference (require_locked_writes)"
    arb_wild_events
    (same_verdict ~require_locked_writes:true ?init:None)

let prop_incremental_matches_reference_init =
  QCheck.Test.make ~count:300
    ~name:"incremental check ≡ reference (nonzero init)" arb_wild_events
    (same_verdict ?require_locked_writes:None ~init:(fun l -> l + 1))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sc_traces_validate;
      prop_corrupted_value_caught;
      prop_incremental_matches_reference;
      prop_incremental_matches_reference_locked;
      prop_incremental_matches_reference_init;
    ]

let suite =
  ( "observe+history",
    [
      Alcotest.test_case "last write: simple chain" `Quick
        test_last_write_simple;
      Alcotest.test_case "last write: initial op" `Quick
        test_last_write_initial;
      Alcotest.test_case "slow cross-process read (Def. 12)" `Quick
        test_slow_read_cross_process;
      Alcotest.test_case "synchronized read is exact" `Quick
        test_synchronized_read_is_exact;
      Alcotest.test_case "own writes are exact" `Quick
        test_own_writes_are_exact;
      Alcotest.test_case "write-write race detection" `Quick
        test_write_write_race;
      Alcotest.test_case "locked writes race-free" `Quick
        test_locked_writes_no_race;
      Alcotest.test_case "races make reads nondeterministic" `Quick
        test_race_makes_read_nondeterministic;
      Alcotest.test_case "history: good trace" `Quick test_history_good_trace;
      Alcotest.test_case "history: unreadable value" `Quick
        test_history_unreadable_value;
      Alcotest.test_case "history: stale own write" `Quick
        test_history_stale_own_write;
      Alcotest.test_case "history: slow cross read allowed" `Quick
        test_history_slow_cross_read_ok;
      Alcotest.test_case "history: double acquire" `Quick
        test_history_double_acquire;
      Alcotest.test_case "history: foreign release" `Quick
        test_history_release_not_held;
      Alcotest.test_case "history: monotonic reads" `Quick
        test_history_monotonic_reads;
      Alcotest.test_case "history: locked-write discipline" `Quick
        test_history_locked_write_discipline;
    ]
    @ props )
