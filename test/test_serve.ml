(* pmc_serve tests: wire-protocol round trips (qcheck), verdict-cache
   byte-identity with a fresh run, concurrent-client determinism at
   --jobs 2, budget-exceeded and admission rejections, and graceful
   shutdown draining parked replies over a real socket. *)

open Pmc_serve
module Job = Pmc_jobs.Job
module Jresult = Pmc_jobs.Result
module Run = Pmc_jobs.Run
module Json = Pmc_bench.Json

(* ---------------- generators ---------------- *)

(* Floats are restricted to k/8 so every generated value renders
   losslessly through the %.6g JSON printer. *)
let gen_job =
  let open QCheck.Gen in
  let name = oneofl [ "mp_plain"; "mp_fence"; "sb"; "iriw"; "nosuch" ] in
  let model = oneofl [ "sc"; "pc"; "cc"; "ec"; "slow"; "pmc" ] in
  let backend = oneofl [ "seqcst"; "nocc"; "swcc"; "dsm"; "spm" ] in
  let app = oneofl [ "histogram"; "reduce"; "stencil" ] in
  let litmus =
    let* program = name in
    let* models = list_size (int_bound 3) model in
    let* limit = opt (int_range 1 10_000) in
    return (Job.Litmus { Job.program; models; limit })
  in
  let check =
    let* source =
      oneofl
        [
          "program t\nobj x 4\nthread\n  entry_x x\n  write x\n  exit_x x\n";
          "not a program";
          "";
        ]
    in
    return (Job.Check { Job.name = "gen"; source })
  in
  let topology = QCheck.Gen.oneofl [ "star"; "mesh"; "torus"; "hier" ] in
  let bench =
    let* app = app in
    let* backend = backend in
    let* topology = topology in
    let* cores = int_range 1 16 in
    let* scale = int_range 1 32 in
    let* unbatched = bool in
    let* warmup = int_bound 2 in
    let* repeat = int_range 1 3 in
    return
      (Job.Bench
         { Job.app; backend; topology; cores; scale; unbatched; warmup;
           repeat })
  in
  let chaos =
    let* c_app = app in
    let* c_backend = backend in
    let* c_topology = topology in
    let* c_cores = int_range 1 16 in
    let* c_scale = int_range 1 32 in
    let* seed = int_bound 10_000 in
    let* k = int_bound 24 in
    let* model_check = bool in
    let* replay_budget = opt (int_range 1 (2 * Pmc_apps.Chaos.default_replay_budget)) in
    return
      (Job.Chaos
         {
           Job.c_app;
           c_backend;
           c_topology;
           c_cores;
           c_scale;
           seed;
           intensity = float_of_int k /. 8.0;
           model_check;
           replay_budget;
         })
  in
  oneof [ litmus; check; bench; chaos ]

let gen_budget =
  let open QCheck.Gen in
  let* max_cycles = opt (int_range 1 1_000_000) in
  let* max_states = opt (int_range 1 1_000_000) in
  return { Run.max_cycles; max_states }

let gen_request =
  let open QCheck.Gen in
  oneof
    [
      (let* job = gen_job in
       let* budget = gen_budget in
       let* wait = bool in
       return (Protocol.Submit { job; budget; wait }));
      (let* id = int_bound 1_000 in
       return (Protocol.Status { id }));
      (let* id = int_bound 1_000 in
       let* wait = bool in
       return (Protocol.Result_of { id; wait }));
      return Protocol.Stats;
      return Protocol.Shutdown;
    ]

let gen_response =
  let open QCheck.Gen in
  let str = oneofl [ "reason"; "queue full"; "x#y\"z" ] in
  oneof
    [
      (let* id = int_bound 1_000 in
       let* cached = bool in
       return (Protocol.Submitted { id; cached }));
      (let* reason = str in
       return (Protocol.Rejected { reason }));
      (let* id = int_bound 1_000 in
       let* state = oneofl [ "queued"; "running"; "done" ] in
       return (Protocol.Job_status { id; state }));
      (let* id = int_bound 1_000 in
       return (Protocol.Pending { id }));
      (let* pending = int_bound 64 in
       return (Protocol.Shutdown_started { pending }));
      (let* reason = str in
       return (Protocol.Protocol_error { reason }));
      (let* width = int_range 1 8 in
       let* queue_depth = int_bound 64 in
       let* running = int_bound 8 in
       let* submitted = int_bound 1_000 in
       let* completed = int_bound 1_000 in
       let* rejected = int_bound 1_000 in
       let* cache_hits = int_bound 1_000 in
       let* cache_misses = int_bound 1_000 in
       let* cache_entries = int_bound 256 in
       let* draining = bool in
       return
         (Protocol.Stats_reply
            {
              Protocol.width;
              queue_depth;
              running;
              submitted;
              completed;
              rejected;
              cache_hits;
              cache_misses;
              cache_entries;
              draining;
            }));
    ]

(* round trips are checked on the wire bytes: decode then re-encode
   must reproduce the line exactly (the encoding is canonical) *)
let prop_request_round_trip =
  QCheck.Test.make ~count:300 ~name:"protocol: request line round trip"
    (QCheck.make gen_request) (fun r ->
      let line = Protocol.request_to_line r in
      match Protocol.request_of_line line with
      | Ok r' -> Protocol.request_to_line r' = line
      | Error _ -> false)

let prop_response_round_trip =
  QCheck.Test.make ~count:300 ~name:"protocol: response line round trip"
    (QCheck.make gen_response) (fun r ->
      let line = Protocol.response_to_line r in
      match Protocol.response_of_line line with
      | Ok r' -> Protocol.response_to_line r' = line
      | Error _ -> false)

(* executed results (including verdicts and typed errors) survive the
   wire: encode, decode, re-encode is the identity on the bytes *)
let prop_result_round_trip =
  QCheck.Test.make ~count:20 ~name:"protocol: executed results round trip"
    (QCheck.make gen_job) (fun job ->
      let result =
        Run.run ~budget:{ Run.max_cycles = Some 200_000; max_states = None }
          job
      in
      let line = Json.to_compact (Jresult.to_json result) in
      Json.to_compact (Jresult.to_json (Jresult.of_json (Json.parse line)))
      = line)

(* ---------------- helpers ---------------- *)

let result_line r = Json.to_compact (Jresult.to_json r)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let submit_ok server job =
  match
    Server.handle server
      (Protocol.Submit { job; budget = Run.no_budget; wait = false })
  with
  | Server.Reply (Protocol.Submitted { id; cached }) -> (id, cached)
  | Server.Reply r ->
      Alcotest.failf "unexpected response: %s" (Protocol.response_to_line r)
  | Server.Park _ -> Alcotest.fail "unexpected park"

let fetch server id =
  match Server.result_response server id with
  | Protocol.Job_result { result; _ } -> result
  | r -> Alcotest.failf "no result: %s" (Protocol.response_to_line r)

let some_jobs =
  [
    Job.Litmus { Job.program = "mp_fence"; models = []; limit = None };
    Job.Litmus { Job.program = "sb"; models = [ "pmc"; "sc" ]; limit = None };
    Job.Check
      {
        Job.name = "ok";
        source =
          "program t\nobj x 4\nthread\n  entry_x x\n  write x\n  exit_x x\n";
      };
    Job.Bench
      {
        Job.app = "reduce";
        backend = "dsm";
        topology = "star";
        cores = 4;
        scale = 8;
        unbatched = false;
        warmup = 0;
        repeat = 1;
      };
    Job.Chaos
      {
        Job.c_app = "histogram";
        c_backend = "swcc";
        c_topology = "star";
        c_cores = 4;
        c_scale = 4;
        seed = 3;
        intensity = 1.0;
        model_check = true;
        replay_budget = None;
      };
  ]

(* ---------------- cache ---------------- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  Alcotest.(check (option string)) "a present" (Some "1") (Cache.find c "a");
  (* 'b' is now least recently used; inserting 'c' evicts it *)
  Cache.add c "c" "3";
  Alcotest.(check (option string)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option string)) "a kept" (Some "1") (Cache.find c "a");
  Alcotest.(check (option string)) "c kept" (Some "3") (Cache.find c "c");
  Alcotest.(check int) "size bounded" 2 (Cache.size c)

let test_cache_hit_is_byte_identical () =
  Pmc_par.Pool.with_pool ~jobs:1 (fun pool ->
      let server = Server.create pool in
      List.iter
        (fun job ->
          let id1, cached1 = submit_ok server job in
          Alcotest.(check bool) "first submission is fresh" false cached1;
          Server.drain server;
          let id2, cached2 = submit_ok server job in
          Alcotest.(check bool) "resubmission hits the cache" true cached2;
          let fresh = result_line (fetch server id1) in
          let hit = result_line (fetch server id2) in
          Alcotest.(check string) "cache hit == fresh run" fresh hit;
          (* and equal to a run outside the server entirely *)
          Alcotest.(check string) "fresh run == one-shot run" fresh
            (result_line (Run.run job)))
        some_jobs;
      let s = Server.stats server in
      Alcotest.(check int) "one hit per job" (List.length some_jobs)
        s.Protocol.cache_hits)

(* ---------------- concurrency ---------------- *)

let test_concurrent_determinism_jobs2 () =
  (* the same batch through a width-2 server and through bare one-shot
     runs must produce byte-identical result lines *)
  let expected = List.map (fun j -> result_line (Run.run j)) some_jobs in
  Pmc_par.Pool.with_pool ~jobs:2 (fun pool ->
      let server = Server.create pool in
      let ids = List.map (fun j -> fst (submit_ok server j)) some_jobs in
      Server.drain server;
      let got = List.map (fun id -> result_line (fetch server id)) ids in
      Alcotest.(check (list string)) "width 2 == one-shot" expected got)

(* ---------------- budgets and admission ---------------- *)

let test_budget_exceeded_rejection () =
  (* per-request budget *)
  let job = Job.Litmus { Job.program = "iriw"; models = []; limit = None } in
  (match Run.run ~budget:{ Run.max_cycles = None; max_states = Some 5 } job with
  | Jresult.Error { kind = Jresult.Budget_exceeded; _ } as r ->
      Alcotest.(check int) "budget error exits 2" 2 (Jresult.exit_code r)
  | r -> Alcotest.failf "expected budget error, got %s" (result_line r));
  (* server-wide ceiling applies to jobs that carry no budget *)
  Pmc_par.Pool.with_pool ~jobs:1 (fun pool ->
      let server =
        Server.create
          ~budget:{ Run.max_cycles = None; max_states = Some 5 }
          pool
      in
      let id, _ = submit_ok server job in
      Server.drain server;
      match fetch server id with
      | Jresult.Error { kind = Jresult.Budget_exceeded; _ } -> ()
      | r -> Alcotest.failf "expected budget error, got %s" (result_line r))

let test_admission_control () =
  Pmc_par.Pool.with_pool ~jobs:1 (fun pool ->
      (* width 1 and no steps: submitted jobs stay queued, so the
         second distinct submission must bounce *)
      let server = Server.create ~max_queue:1 pool in
      let j1 = List.nth some_jobs 0 and j2 = List.nth some_jobs 1 in
      ignore (submit_ok server j1);
      (match
         Server.handle server
           (Protocol.Submit { job = j2; budget = Run.no_budget; wait = false })
       with
      | Server.Reply (Protocol.Rejected { reason }) ->
          Alcotest.(check bool) "typed pmc_serve context" true
            (contains reason "pmc_serve");
          Alcotest.(check bool) "names the queue" true
            (contains reason "queue full")
      | _ -> Alcotest.fail "expected an admission rejection");
      let s = Server.stats server in
      Alcotest.(check int) "rejection counted" 1 s.Protocol.rejected;
      Server.drain server;
      (* a draining server rejects new work with a typed reason too *)
      (match Server.handle server Protocol.Shutdown with
      | Server.Reply (Protocol.Shutdown_started _) -> ()
      | _ -> Alcotest.fail "expected shutdown ack");
      match
        Server.handle server
          (Protocol.Submit { job = j2; budget = Run.no_budget; wait = false })
      with
      | Server.Reply (Protocol.Rejected { reason }) ->
          Alcotest.(check bool) "draining reason" true
            (contains reason "draining")
      | _ -> Alcotest.fail "expected a draining rejection")

(* ---------------- socket end to end ---------------- *)

let with_daemon ~jobs f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmc_serve_test_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Pmc_par.Pool.with_pool ~jobs (fun pool ->
      let server = Server.create pool in
      let t = Thread.create (fun () -> Daemon.serve ~socket_path:path server) () in
      (* wait for the daemon to bind *)
      let rec connect tries =
        match Client.connect path with
        | c -> c
        | exception Unix.Unix_error _ when tries > 0 ->
            Thread.delay 0.02;
            connect (tries - 1)
      in
      let c = connect 250 in
      Fun.protect
        ~finally:(fun () ->
          Client.close c;
          Thread.join t)
        (fun () -> f path c))

let submit_wait c job =
  match
    Client.request c (Protocol.Submit { job; budget = Run.no_budget; wait = true })
  with
  | Protocol.Job_result { result; _ } -> result
  | r -> Alcotest.failf "unexpected response: %s" (Protocol.response_to_line r)

let test_socket_round_trip_and_cache () =
  with_daemon ~jobs:1 (fun _path c ->
      let job = List.nth some_jobs 1 in
      let fresh = result_line (submit_wait c job) in
      Alcotest.(check string) "daemon == one-shot" (result_line (Run.run job))
        fresh;
      let again = result_line (submit_wait c job) in
      Alcotest.(check string) "warm daemon == fresh" fresh again;
      (match Client.request c Protocol.Stats with
      | Protocol.Stats_reply s ->
          Alcotest.(check bool) "resubmission hit the cache" true
            (s.Protocol.cache_hits >= 1)
      | r -> Alcotest.failf "unexpected: %s" (Protocol.response_to_line r));
      (* shut the daemon down so with_daemon's join returns *)
      match Client.request c Protocol.Shutdown with
      | Protocol.Shutdown_started _ -> ()
      | r -> Alcotest.failf "unexpected: %s" (Protocol.response_to_line r))

let test_shutdown_drains_parked_replies () =
  with_daemon ~jobs:1 (fun path c ->
      (* pipeline: a wait-mode submission, then shutdown, on one
         connection.  The daemon must answer the shutdown immediately
         but keep running until the parked result has been delivered. *)
      let job = List.nth some_jobs 0 in
      Client.send c
        (Protocol.Submit { job; budget = Run.no_budget; wait = true });
      Client.send c Protocol.Shutdown;
      (* Both replies must arrive before the daemon closes the
         connection; their order depends on whether the worker finishes
         before the daemon reads the pipelined shutdown, so accept
         either interleaving. *)
      let r1 = Client.recv c and r2 = Client.recv c in
      let ack = ref false and drained = ref None in
      List.iter
        (function
          | Protocol.Shutdown_started _ -> ack := true
          | Protocol.Job_result { result; _ } -> drained := Some result
          | r ->
              Alcotest.failf "unexpected reply: %s"
                (Protocol.response_to_line r))
        [ r1; r2 ];
      Alcotest.(check bool) "shutdown acked" true !ack;
      (match !drained with
      | Some result ->
          Alcotest.(check string) "drained result == one-shot"
            (result_line (Run.run job))
            (result_line result)
      | None -> Alcotest.fail "parked result never delivered");
      ignore path)

let test_concurrent_clients_over_socket () =
  with_daemon ~jobs:2 (fun path c ->
      let batch_a = [ List.nth some_jobs 0; List.nth some_jobs 3 ] in
      let batch_b = [ List.nth some_jobs 1; List.nth some_jobs 4 ] in
      let results_b = ref [] in
      let t =
        Thread.create
          (fun () ->
            Client.with_connection path (fun c2 ->
                results_b :=
                  List.map (fun j -> result_line (submit_wait c2 j)) batch_b))
          ()
      in
      let results_a = List.map (fun j -> result_line (submit_wait c j)) batch_a in
      Thread.join t;
      Alcotest.(check (list string)) "client A == one-shot"
        (List.map (fun j -> result_line (Run.run j)) batch_a)
        results_a;
      Alcotest.(check (list string)) "client B == one-shot"
        (List.map (fun j -> result_line (Run.run j)) batch_b)
        !results_b;
      match Client.request c Protocol.Shutdown with
      | Protocol.Shutdown_started _ -> ()
      | r -> Alcotest.failf "unexpected: %s" (Protocol.response_to_line r))

let suite =
  ( "serve",
    [
      QCheck_alcotest.to_alcotest prop_request_round_trip;
      QCheck_alcotest.to_alcotest prop_response_round_trip;
      QCheck_alcotest.to_alcotest prop_result_round_trip;
      Alcotest.test_case "cache LRU eviction order" `Quick test_cache_lru;
      Alcotest.test_case "cache hit byte-identical to fresh run" `Slow
        test_cache_hit_is_byte_identical;
      Alcotest.test_case "width-2 server deterministic" `Quick
        test_concurrent_determinism_jobs2;
      Alcotest.test_case "budget exceeded is a typed error" `Quick
        test_budget_exceeded_rejection;
      Alcotest.test_case "admission control rejects over max-queue" `Quick
        test_admission_control;
      Alcotest.test_case "socket round trip + verdict cache" `Quick
        test_socket_round_trip_and_cache;
      Alcotest.test_case "shutdown drains parked replies" `Quick
        test_shutdown_drains_parked_replies;
      Alcotest.test_case "concurrent clients deterministic" `Quick
        test_concurrent_clients_over_socket;
    ] )
