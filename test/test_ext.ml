(* Tests of the extensions beyond the paper's core: location-scoped fences
   (the Sec. IV-D optimization), byte-granularity accesses, the barrier,
   the Graphviz exporter, the additional litmus programs, and failure
   injection (a deliberately broken SWCC back-end must be caught by the
   checksums — the coherence protocol is load-bearing). *)

open Pmc_sim
open Pmc_model

let cfg = { Config.small with cores = 4 }

(* ---------------- scoped fences (model) ---------------- *)

let test_scoped_fence_orders_in_scope () =
  let e = Execution.create ~procs:1 ~locs:3 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  let r0 = Execution.release e ~proc:0 ~loc:0 in
  let f = Execution.fence_scoped e ~proc:0 ~locs:[ 0; 1 ] in
  let a1 = Execution.acquire e ~proc:0 ~loc:1 in
  Alcotest.(check bool) "rel(v0) <F fence (in scope)" true
    (Order.reaches Order.Global e r0.Op.id f.Op.id);
  Alcotest.(check bool) "fence <F acq(v1) (in scope)" true
    (Order.reaches Order.Global e f.Op.id a1.Op.id);
  Alcotest.(check (option (list int))) "scope recorded" (Some [ 0; 1 ])
    (Execution.fence_scope e f)

let test_scoped_fence_ignores_out_of_scope () =
  let e = Execution.create ~procs:1 ~locs:3 () in
  ignore (Execution.acquire e ~proc:0 ~loc:2);
  let r2 = Execution.release e ~proc:0 ~loc:2 in
  let f = Execution.fence_scoped e ~proc:0 ~locs:[ 0; 1 ] in
  let a2 = Execution.acquire e ~proc:0 ~loc:2 in
  Alcotest.(check bool) "rel(v2) not ordered into the fence" false
    (Order.reaches Order.Full e r2.Op.id f.Op.id);
  Alcotest.(check bool) "fence not ordered into acq(v2)" false
    (Order.reaches Order.Full e f.Op.id a2.Op.id)

let test_scoped_fence_full_scope_equals_plain () =
  let build use_scoped =
    let e = Execution.create ~procs:1 ~locs:2 () in
    ignore (Execution.acquire e ~proc:0 ~loc:0);
    ignore (Execution.release e ~proc:0 ~loc:0);
    if use_scoped then ignore (Execution.fence_scoped e ~proc:0 ~locs:[ 0; 1 ])
    else ignore (Execution.fence e ~proc:0);
    ignore (Execution.acquire e ~proc:0 ~loc:1);
    List.map
      (fun (ed : Execution.edge) -> (ed.Execution.src, ed.Execution.dst))
      (Execution.edges e)
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    "full-scope fence = plain fence" (build false) (build true)

(* ---------------- byte accesses ---------------- *)

let test_byte_roundtrip_all_backends () =
  List.iter
    (fun kind ->
      let m = Machine.create cfg in
      let api = Pmc.Backends.create kind m in
      let o = Pmc.Api.alloc api ~name:"o" ~bytes:16 in
      let ok = ref false in
      Machine.spawn m ~core:0 (fun () ->
          Pmc.Api.with_x api o (fun () ->
              for i = 0 to 15 do
                Pmc.Api.set8 api o i ((i * 17) land 0xff)
              done;
              ok :=
                List.for_all
                  (fun i -> Pmc.Api.get8 api o i = (i * 17) land 0xff)
                  (List.init 16 Fun.id)));
      Machine.run m;
      Alcotest.(check bool)
        (Pmc.Backends.to_string kind ^ ": byte round-trip")
        true !ok)
    Pmc.Backends.all

let test_bytes_and_words_alias () =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create Pmc.Backends.Swcc m in
  let o = Pmc.Api.alloc api ~name:"o" ~bytes:8 in
  let word = ref 0l in
  Machine.spawn m ~core:0 (fun () ->
      Pmc.Api.with_x api o (fun () ->
          Pmc.Api.set8 api o 0 0x44;
          Pmc.Api.set8 api o 1 0x33;
          Pmc.Api.set8 api o 2 0x22;
          Pmc.Api.set8 api o 3 0x11;
          word := Pmc.Api.get api o 0));
  Machine.run m;
  Alcotest.(check int32) "bytes compose little-endian words" 0x11223344l
    !word

let test_byte_bounds () =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create Pmc.Backends.Seqcst m in
  let o = Pmc.Api.alloc api ~name:"o" ~bytes:5 in
  let raised = ref false in
  Machine.spawn m ~core:0 (fun () ->
      Pmc.Api.with_x api o (fun () ->
          try Pmc.Api.set8 api o 5 1
          with Pmc.Api.Discipline_error _ -> raised := true));
  Machine.run m;
  Alcotest.(check bool) "byte bounds checked" true !raised

(* single-byte objects are atomic for entry_ro on every back-end *)
let test_byte_object_entry_ro_free () =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create Pmc.Backends.Swcc m in
  let o = Pmc.Api.alloc api ~name:"b" ~bytes:1 in
  Alcotest.(check bool) "1-byte object is atomic-sized" true
    (Pmc.Shared.is_atomic_sized o);
  ignore api

(* ---------------- barrier ---------------- *)

let test_barrier_all_backends () =
  List.iter
    (fun kind ->
      let m = Machine.create { Config.default with cores = 8 } in
      let api = Pmc.Backends.create kind m in
      let barrier = Pmc.Barrier.create api ~name:"bar" ~parties:8 in
      let phase = Array.make 8 0 in
      let violations = ref 0 in
      for c = 0 to 7 do
        Machine.spawn m ~core:c (fun () ->
            for p = 1 to 3 do
              (* unequal work before the barrier *)
              Machine.busy m ((c * 37) + (p * 11));
              phase.(c) <- p;
              Pmc.Barrier.wait barrier;
              (* after the barrier everyone must have reached phase p *)
              Array.iter (fun q -> if q < p then incr violations) phase
            done)
      done;
      Machine.run m;
      Alcotest.(check int)
        (Pmc.Backends.to_string kind ^ ": no one passes early")
        0 !violations)
    Pmc.Backends.all

(* ---------------- dot exporter ---------------- *)

let test_dot_export () =
  let e = Execution.create ~procs:2 ~locs:1 () in
  ignore (Execution.acquire e ~proc:0 ~loc:0);
  ignore (Execution.write e ~proc:0 ~loc:0 ~value:1);
  ignore (Execution.release e ~proc:0 ~loc:0);
  ignore (Execution.acquire e ~proc:1 ~loc:0);
  let dot = Dot.of_execution e in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sync edge present" true (contains "<S");
  Alcotest.(check bool) "process clusters" true (contains "cluster_p0");
  Alcotest.(check bool) "node for the write" true (contains "v0:=1")

(* ---------------- additional litmus programs ---------------- *)

let test_iriw () =
  (* the mixed outcome: observers disagree on the write order *)
  let mixed = "0,0 | 0,0 | 1,0 | 1,0" in
  let r_sc = Litmus.enumerate (module Models.Sc) Lprog.iriw in
  let r_pc = Litmus.enumerate (module Models.Pc) Lprog.iriw in
  let r_cc = Litmus.enumerate (module Models.Cc) Lprog.iriw in
  Alcotest.(check bool) "SC forbids IRIW" false (Litmus.allows r_sc mixed);
  Alcotest.(check bool) "TSO-PC forbids IRIW" false
    (Litmus.allows r_pc mixed);
  Alcotest.(check bool) "CC allows IRIW (per-location order only)" true
    (Litmus.allows r_cc mixed)

let test_wrc () =
  (* causality: under SC the final read must see 1; weak models may not *)
  let r_sc = Litmus.enumerate (module Models.Sc) Lprog.wrc in
  Alcotest.(check (slist string String.compare)) "SC: causal"
    [ "0,0 | 0,0 | 1,0" ]
    (Litmus.outcomes_list r_sc);
  let r_slow = Litmus.enumerate (module Models.Slow) Lprog.wrc in
  Alcotest.(check bool) "Slow breaks causality" true
    (Litmus.allows r_slow "0,0 | 0,0 | 0,0")

let test_lb () =
  (* no model here speculates: (1,1) is never produced *)
  List.iter
    (fun m ->
      let r = Litmus.enumerate m Lprog.lb in
      Alcotest.(check bool) "LB (1,1) forbidden" false
        (Litmus.allows r "1 | 1"))
    Models.all

(* ---------------- failure injection ---------------- *)

(* SWCC with the exit_x write-back removed: modifications die in the
   cache.  The multi-core exchange must produce a wrong result — proving
   the protocol (and the checksum tests) are load-bearing. *)
module Broken_swcc = struct
  type t = Pmc.Swcc.t

  let name = "swcc-no-writeback"
  let create = Pmc.Swcc.create
  let machine = Pmc.Swcc.machine
  let alloc = Pmc.Swcc.alloc
  let entry_x = Pmc.Swcc.entry_x

  (* BUG: skip the write-back; just drop the lines and unlock *)
  let exit_x t (o : Pmc.Shared.t) =
    Machine.inval_range (Pmc.Swcc.machine t) ~addr:o.Pmc.Shared.sdram_addr
      ~len:o.Pmc.Shared.size;
    Pmc_lock.Dlock.release o.Pmc.Shared.lock

  let entry_ro = Pmc.Swcc.entry_ro
  let exit_ro = Pmc.Swcc.exit_ro
  let fence = Pmc.Swcc.fence
  let flush = Pmc.Swcc.flush
  let read_u32_int = Pmc.Swcc.read_u32_int
  let write_u32_int = Pmc.Swcc.write_u32_int
  let read_u8 = Pmc.Swcc.read_u8
  let write_u8 = Pmc.Swcc.write_u8
  let peek_u32 = Pmc.Swcc.peek_u32
  let poke_u32 = Pmc.Swcc.poke_u32
end

let test_broken_swcc_detected () =
  let m = Machine.create cfg in
  let api =
    Pmc.Api.of_backend (module Broken_swcc) (Broken_swcc.create m)
  in
  let counter = Pmc.Api.alloc_words api ~name:"ctr" ~words:1 in
  for c = 0 to 3 do
    Machine.spawn m ~core:c (fun () ->
        for _ = 1 to 8 do
          Pmc.Api.with_x api counter (fun () ->
              let v = Pmc.Api.get_int api counter 0 in
              Pmc.Api.set_int api counter 0 (v + 1))
        done)
  done;
  Machine.run m;
  Alcotest.(check bool)
    "without write-back the counter misses updates" true
    (Pmc.Api.peek_int api counter 0 < 32)

(* And the same program on the real SWCC is exact — side-by-side. *)
let test_real_swcc_exact () =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create Pmc.Backends.Swcc m in
  let counter = Pmc.Api.alloc_words api ~name:"ctr" ~words:1 in
  for c = 0 to 3 do
    Machine.spawn m ~core:c (fun () ->
        for _ = 1 to 8 do
          Pmc.Api.with_x api counter (fun () ->
              let v = Pmc.Api.get_int api counter 0 in
              Pmc.Api.set_int api counter 0 (v + 1))
        done)
  done;
  Machine.run m;
  Alcotest.(check int) "with the protocol the counter is exact" 32
    (Pmc.Api.peek_int api counter 0)

(* DSM without the version pull on acquire: the new owner reads its stale
   replica. *)
module Broken_dsm = struct
  type t = Pmc.Dsm.t

  let name = "dsm-no-pull"
  let create = Pmc.Dsm.create
  let machine = Pmc.Dsm.machine
  let alloc = Pmc.Dsm.alloc

  (* BUG: acquire without pulling the newest version *)
  let entry_x _t (o : Pmc.Shared.t) = Pmc_lock.Dlock.acquire o.Pmc.Shared.lock

  let exit_x = Pmc.Dsm.exit_x
  let entry_ro = Pmc.Dsm.entry_ro
  let exit_ro = Pmc.Dsm.exit_ro
  let fence = Pmc.Dsm.fence
  let flush = Pmc.Dsm.flush
  let read_u32_int = Pmc.Dsm.read_u32_int
  let write_u32_int = Pmc.Dsm.write_u32_int
  let read_u8 = Pmc.Dsm.read_u8
  let write_u8 = Pmc.Dsm.write_u8
  let peek_u32 = Pmc.Dsm.peek_u32
  let poke_u32 = Pmc.Dsm.poke_u32
end

let test_broken_dsm_detected () =
  let m = Machine.create cfg in
  let api = Pmc.Api.of_backend (module Broken_dsm) (Broken_dsm.create m) in
  let counter = Pmc.Api.alloc_words api ~name:"ctr" ~words:1 in
  for c = 0 to 3 do
    Machine.spawn m ~core:c (fun () ->
        for _ = 1 to 8 do
          Pmc.Api.with_x api counter (fun () ->
              let v = Pmc.Api.get_int api counter 0 in
              Pmc.Api.set_int api counter 0 (v + 1))
        done)
  done;
  Machine.run m;
  (* each core only ever increments its own stale replica *)
  Alcotest.(check bool) "without the pull, updates are lost" true
    (Pmc.Api.peek_int api counter 0 < 32)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "scoped fence orders in-scope ops" `Quick
        test_scoped_fence_orders_in_scope;
      Alcotest.test_case "scoped fence ignores out-of-scope ops" `Quick
        test_scoped_fence_ignores_out_of_scope;
      Alcotest.test_case "full-scope fence = plain fence" `Quick
        test_scoped_fence_full_scope_equals_plain;
      Alcotest.test_case "byte round-trip (all back-ends)" `Quick
        test_byte_roundtrip_all_backends;
      Alcotest.test_case "bytes alias words" `Quick
        test_bytes_and_words_alias;
      Alcotest.test_case "byte bounds" `Quick test_byte_bounds;
      Alcotest.test_case "1-byte objects are atomic" `Quick
        test_byte_object_entry_ro_free;
      Alcotest.test_case "barrier (all back-ends)" `Slow
        test_barrier_all_backends;
      Alcotest.test_case "dot export" `Quick test_dot_export;
      Alcotest.test_case "IRIW separates TSO from CC" `Quick test_iriw;
      Alcotest.test_case "WRC causality" `Quick test_wrc;
      Alcotest.test_case "LB never speculates" `Quick test_lb;
      Alcotest.test_case "fault: SWCC without write-back fails" `Quick
        test_broken_swcc_detected;
      Alcotest.test_case "real SWCC is exact" `Quick test_real_swcc_exact;
      Alcotest.test_case "fault: DSM without version pull fails" `Quick
        test_broken_dsm_detected;
    ] )
