(* Asymmetric distributed lock, modelled after the one the paper's platform
   uses [15]: a waiting core spins only on a flag in its *own* local memory
   (cheap, no interconnect traffic); the handover from the previous holder
   travels over the NoC and costs a transfer latency that depends on the
   hop distance.  Re-acquiring a lock the core released last is almost
   free ("asymmetric": the common uncontended case stays local).

   The lock supports a shared (read-only) mode besides the exclusive one:
   PMC explicitly allows "exclusive access ... alongside read-only access"
   (Section IV-E), and the entry_ro annotation of multi-word objects maps
   to the shared mode.  Readers are admitted when no exclusive holder or
   waiter is present (writers do not starve).

   The lock's bookkeeping lives in host structures; its *timing* — local
   polls, handover latency — is modelled explicitly.  Mutual exclusion is
   exact in simulated time because state changes happen between consume
   points. *)

open Pmc_sim

type t = {
  id : int;
  m : Machine.t;
  mutable owner : int option;           (* exclusive holder *)
  mutable readers : int;                (* shared holders *)
  mutable last_holder : int;
  (* an exclusive grant in flight: (core it is for, arrival time) *)
  mutable pending : (int * int) option;
  queue : int Queue.t;                  (* exclusive waiters *)
  (* tile the lock travelled from on the most recent exclusive acquire,
     -1 if that acquire was local (no handover) *)
  mutable last_transfer_from : int;
}

(* Domain-local so two concurrent runs in a parallel fan-out allocate
   independent, per-domain-deterministic lock ids (they appear in traces
   and replay keys). *)
let next_id = Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get next_id := 0

let create (m : Machine.t) : t =
  let next_id = Domain.DLS.get next_id in
  let id = !next_id in
  incr next_id;
  {
    id;
    m;
    owner = None;
    readers = 0;
    last_holder = -1;
    pending = None;
    queue = Queue.create ();
    last_transfer_from = -1;
  }

let transfer_cycles t ~from ~to_ =
  let cfg = Machine.config t.m in
  if from = -1 || from = to_ then 0
  else
    cfg.Config.lock_transfer_cycles
    + (cfg.Config.noc_hop_cycles * Config.hops cfg ~src:from ~dst:to_)

let count_acquire t ~transferred =
  let s = Stats.core (Machine.stats t.m) (Machine.core_id t.m) in
  s.Stats.lock_acquires <- s.Stats.lock_acquires + 1;
  if transferred then s.Stats.lock_transfers <- s.Stats.lock_transfers + 1

let emit t (op : Probe.lock_op) ~transferred =
  let p = Machine.probe t.m in
  if Probe.active p then
    Probe.emit p
      ~time:(Engine.now (Machine.engine t.m))
      (Probe.Lock
         { core = Machine.core_id t.m; lock = t.id; op; transferred })

(* Hand the lock to the next exclusive waiter, if the lock is idle. *)
let try_grant t =
  if
    t.owner = None && t.readers = 0 && t.pending = None
    && not (Queue.is_empty t.queue)
  then begin
    let next = Queue.pop t.queue in
    let now = Engine.now (Machine.engine t.m) in
    let arrival = now + transfer_cycles t ~from:t.last_holder ~to_:next in
    t.pending <- Some (next, max arrival (now + 1))
  end

type outcome = Acquired | Timeout of { waited : int }

(* Withdraw a timed-out waiter: drop it from the FIFO, bounce back any
   grant already in flight to it (the lock returns to idle and travels on
   to the next waiter), and re-run the grant logic so nobody wedges. *)
let withdraw t core =
  let keep = Queue.create () in
  Queue.iter (fun c -> if c <> core then Queue.push c keep) t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  (match t.pending with
  | Some (c, _) when c = core -> t.pending <- None
  | _ -> ());
  try_grant t

(* Take the granted lock (the waiter slow path's epilogue). *)
let take_grant t ~core =
  t.pending <- None;
  t.owner <- Some core;
  let transferred = t.last_holder <> core in
  t.last_transfer_from <- (if transferred then t.last_holder else -1);
  t.last_holder <- core;
  count_acquire t ~transferred;
  emit t Probe.Acquire ~transferred

(* [deadline = None] is the unbounded acquire and must stay cycle-exact
   with the historical behavior (constant-interval local polling — the
   regression benches pin it); a deadline switches the waiter to capped
   exponential backoff and a typed Timeout outcome. *)
let acquire_aux t ~deadline : outcome =
  let core = Machine.core_id t.m in
  let e = Machine.engine t.m in
  let cfg = Machine.config t.m in
  let poll = cfg.Config.lock_local_poll_cycles in
  Engine.consume e Stats.Lock_stall poll;
  (match t.owner with
  | Some c when c = core ->
      Pmc_error.raise_error ~core ~obj:(Printf.sprintf "lock#%d" t.id)
        ~op:"Dlock.acquire" "already held by this core"
  | _ -> ());
  if
    t.owner = None && t.readers = 0 && Queue.is_empty t.queue
    && t.pending = None
  then begin
    (* free and uncontended: claim immediately (state changes are atomic
       between consume points), then pay the handover if the lock last
       lived on another tile *)
    t.owner <- Some core;
    let transferred = t.last_holder <> -1 && t.last_holder <> core in
    let cost = transfer_cycles t ~from:t.last_holder ~to_:core in
    t.last_transfer_from <- (if transferred then t.last_holder else -1);
    t.last_holder <- core;
    count_acquire t ~transferred;
    if cost > 0 then Engine.consume e Stats.Lock_stall cost;
    emit t Probe.Acquire ~transferred;
    Acquired
  end
  else begin
    Queue.push core t.queue;
    let granted () =
      match t.pending with
      | Some (c, arrival) when c = core && Engine.now e >= arrival -> true
      | _ -> false
    in
    match deadline with
    | None ->
        (* the grant check reads only lock bookkeeping and the clock, so
           the scheduler can run the polling loop without waking us *)
        Engine.poll_wait e ~cat:Stats.Lock_stall ~quantum:poll
          ~pred:granted;
        take_grant t ~core;
        Acquired
    | Some limit ->
        let start = Engine.now e in
        let backoff = ref poll in
        while (not (granted ())) && Engine.now e < limit do
          let wait = min !backoff (limit - Engine.now e) in
          Engine.consume e Stats.Lock_stall wait;
          backoff := min (!backoff * 2) (poll * 64)
        done;
        if granted () then begin
          take_grant t ~core;
          Acquired
        end
        else begin
          withdraw t core;
          let waited = Engine.now e - start in
          let counts = Fault.counts (Machine.fault t.m) in
          counts.Fault.lock_timeouts <- counts.Fault.lock_timeouts + 1;
          Probe.emit (Machine.probe t.m) ~time:(Engine.now e)
            (Probe.Fault
               (Probe.F_lock_timeout { core; lock = t.id; waited }));
          Timeout { waited }
        end
  end

let acquire t =
  match acquire_aux t ~deadline:None with
  | Acquired -> ()
  | Timeout _ -> assert false

let acquire_timeout t ~timeout =
  if timeout <= 0 then invalid_arg "Dlock.acquire_timeout: timeout <= 0";
  let deadline = Engine.now (Machine.engine t.m) + timeout in
  acquire_aux t ~deadline:(Some deadline)

let release t =
  let core = Machine.core_id t.m in
  let e = Machine.engine t.m in
  let cfg = Machine.config t.m in
  (match t.owner with
  | Some c when c = core -> ()
  | _ ->
      Pmc_error.raise_error ~core ~obj:(Printf.sprintf "lock#%d" t.id)
        ~op:"Dlock.release" "not the holder (owner: %s)"
        (match t.owner with
        | Some c -> "core " ^ string_of_int c
        | None -> "none"));
  Engine.consume e Stats.Lock_stall cfg.Config.lock_local_poll_cycles;
  t.owner <- None;
  emit t Probe.Release ~transferred:false;
  try_grant t

(* Shared (read-only) admission: wait until no exclusive holder, in-flight
   grant or exclusive waiter remains, then join the reader group. *)
let acquire_ro t =
  let e = Machine.engine t.m in
  let cfg = Machine.config t.m in
  let poll = cfg.Config.lock_local_poll_cycles in
  Engine.consume e Stats.Lock_stall poll;
  Engine.poll_wait e ~cat:Stats.Lock_stall ~quantum:poll ~pred:(fun () ->
      t.owner = None && t.pending = None && Queue.is_empty t.queue);
  t.readers <- t.readers + 1;
  emit t Probe.Acquire_ro ~transferred:false

let release_ro t =
  let e = Machine.engine t.m in
  let cfg = Machine.config t.m in
  if t.readers <= 0 then
    Pmc_error.raise_error ~core:(Machine.core_id t.m)
      ~obj:(Printf.sprintf "lock#%d" t.id) ~op:"Dlock.release_ro"
      "no readers hold the lock";
  Engine.consume e Stats.Lock_stall cfg.Config.lock_local_poll_cycles;
  t.readers <- t.readers - 1;
  emit t Probe.Release_ro ~transferred:false;
  try_grant t

let holder t = t.owner
let last_transfer_from t = t.last_transfer_from
let reader_count t = t.readers

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let with_lock_ro t f =
  acquire_ro t;
  Fun.protect ~finally:(fun () -> release_ro t) f
