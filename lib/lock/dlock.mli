(** Asymmetric distributed lock, modelled after the paper's platform lock
    [Rutgers et al., IC-SAMOS 2012]: waiting cores spin only on their own
    local memory; the handover between tiles costs an explicit NoC
    transfer; re-acquiring a lock the core released last is nearly free.

    Besides the exclusive mode (implementing ≺S for entry_x/exit_x), the
    lock has a shared read-only mode: PMC explicitly allows "exclusive
    access ... alongside read-only access" (Section IV-E), and entry_ro
    of multi-word objects maps onto it.  Readers are admitted only while
    no exclusive holder or waiter is present, so writers do not starve. *)

type t
(** A distributed lock; per-core grant mailboxes live in the tiles'
    local memories. *)

val create : Pmc_sim.Machine.t -> t
(** Allocate a lock (one grant mailbox per core of the machine). *)

val reset_ids : unit -> unit
(** Restart lock-id allocation at 0 in the calling domain.  Ids are
    domain-local (they appear in traces and replay keys); resetting at
    the start of every independent run makes a run's trace a pure
    function of the run.  {!Pmc_apps.Runner.run} does this. *)

val acquire : t -> unit
(** Take the lock exclusively; FIFO among exclusive waiters.
    @raise Pmc_sim.Pmc_error.Error on re-entrant acquisition. *)

type outcome = Acquired | Timeout of { waited : int }
(** Result of a bounded acquisition; [waited] is the cycles spent
    polling before giving up. *)

val acquire_timeout : t -> timeout:int -> outcome
(** Bounded {!acquire}: poll with capped exponential backoff for at most
    [timeout] cycles, then withdraw from the waiter queue (bouncing back
    any grant already in flight, so the lock travels on to the next
    waiter) and return {!Timeout}.  A timeout is recorded in the fault
    plane's counters and trace ({!Pmc_sim.Probe.F_lock_timeout}).
    Unlike {!acquire}, the bounded wait polls with backoff — its timing
    under contention differs from the unbounded constant-interval poll.
    @raise Invalid_argument when [timeout <= 0].
    @raise Pmc_sim.Pmc_error.Error on re-entrant acquisition. *)

val release : t -> unit
(** @raise Pmc_sim.Pmc_error.Error when the caller does not hold the
    lock. *)

val acquire_ro : t -> unit
(** Join the reader group (shared mode). *)

val release_ro : t -> unit
(** Leave the reader group.
    @raise Pmc_sim.Pmc_error.Error when the caller is not a reader. *)

val holder : t -> int option
(** The core holding the lock exclusively, if any (host-side view, for
    tests and assertions — not a simulated read). *)

val last_transfer_from : t -> int
(** Tile the lock travelled from on the calling core's most recent
    exclusive {!acquire}, or -1 if that acquire involved no handover
    (local re-acquisition or first acquisition).  The DSM back-end uses
    this to piggyback the protected object's newest version on the grant
    burst (see {!Pmc_sim.Config.t.dsm_lazy_versions}). *)

val reader_count : t -> int
(** Number of cores currently in the reader group (host-side view). *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] brackets [f] with {!acquire}/{!release}; released on
    exception too. *)

val with_lock_ro : t -> (unit -> 'a) -> 'a
(** [with_lock_ro t f] brackets [f] with {!acquire_ro}/{!release_ro}. *)
