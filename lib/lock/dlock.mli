(** Asymmetric distributed lock, modelled after the paper's platform lock
    [Rutgers et al., IC-SAMOS 2012]: waiting cores spin only on their own
    local memory; the handover between tiles costs an explicit NoC
    transfer; re-acquiring a lock the core released last is nearly free.

    Besides the exclusive mode (implementing ≺S for entry_x/exit_x), the
    lock has a shared read-only mode: PMC explicitly allows "exclusive
    access ... alongside read-only access" (Section IV-E), and entry_ro
    of multi-word objects maps onto it.  Readers are admitted only while
    no exclusive holder or waiter is present, so writers do not starve. *)

type t

val create : Pmc_sim.Machine.t -> t

val acquire : t -> unit
(** Take the lock exclusively; FIFO among exclusive waiters.
    @raise Failure on re-entrant acquisition. *)

val release : t -> unit
(** @raise Failure when the caller does not hold the lock. *)

val acquire_ro : t -> unit
(** Join the reader group (shared mode). *)

val release_ro : t -> unit

val holder : t -> int option

val last_transfer_from : t -> int
(** Tile the lock travelled from on the calling core's most recent
    exclusive {!acquire}, or -1 if that acquire involved no handover
    (local re-acquisition or first acquisition).  The DSM back-end uses
    this to piggyback the protected object's newest version on the grant
    burst (see {!Pmc_sim.Config.t.dsm_lazy_versions}). *)

val reader_count : t -> int

val with_lock : t -> (unit -> 'a) -> 'a
val with_lock_ro : t -> (unit -> 'a) -> 'a
