(** Centralized test-and-set spinlock on an uncached SDRAM word — every
    poll crosses the interconnect and occupies the memory port.  The
    ablation baseline against {!Dlock}. *)

type t
(** A spinlock; the lock word lives in uncached SDRAM. *)

val create : ?backoff:int -> Pmc_sim.Machine.t -> t
(** Allocate a lock.  [backoff] (default 0) adds a fixed busy-wait
    between failed test-and-set attempts, trading latency for SDRAM
    port pressure. *)

val acquire : t -> unit
(** Spin (in simulated time) until the test-and-set succeeds. *)

val release : t -> unit
(** Clear the lock word.  Only the holder may call this. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] brackets [f] with {!acquire}/{!release}; the lock is
    released on exception too. *)
