(** Lowering of captured traces into the formal model's history language.

    [check] replays an observed run through {!Pmc_model.History.check}
    (the Table-I transition plus the Def. 11/12 read-value semantics), so
    every back-end execution can be mechanically validated
    PMC-consistent — whatever its caches, NoC and locks did, the values
    the program observed must be explainable by the model. *)

type lowering = {
  events : Pmc_model.History.event list;
  locs : int;         (** distinct model locations, one per (object, word) *)
  init : int -> int;  (** initial value of each location, from pokes *)
  skipped : int;      (** trace events below the model's vocabulary *)
}

val lower : Event.t list -> lowering
(** Word-granular mapping: entry_x/exit_x → acquire/release per word,
    word accesses → reads/writes with observed values, fences → fences,
    initialization pokes → the checker's [~init] values.  Byte accesses
    and back-end mechanics (lock, NoC, cache, task events) are skipped
    and counted. *)

val check :
  ?require_locked_writes:bool -> cores:int -> Event.t list ->
  Pmc_model.History.report
