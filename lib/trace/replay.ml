(* Lowering of a captured trace into the formal model's history language,
   so that *actual* back-end runs — not just hand-built unit-test traces —
   are mechanically validated PMC-consistent by [Pmc_model.History.check].

   The mapping follows the model's word-granular view (the same one the
   integration tests use):

     - each (object, word) pair is one model location;
     - entry_x / exit_x become acquire / release of every word of the
       object (the object's lock implements ≺S for all of them);
     - entry_ro / exit_ro become the model's read-only acquire / release:
       the same ≺S edges, without the mutual-exclusion bookkeeping.  The
       edges matter — a reader synchronizing only through an RO scope
       (e.g. neighbour strips after a barrier) would otherwise have no
       ordered-before writes and every observed value would look
       unreadable;
     - word accesses map one to one, carrying the observed value;
     - fences map to the model's fence;
     - initialization pokes establish each location's initial value,
       passed to the checker as [~init] (the model treats it as a write
       ordered before every operation);
     - byte accesses, lock, NoC, cache and task events are back-end
       mechanics below the model's vocabulary and are skipped.

   [check] replays the lowered history through the Table-I transition and
   reports every violation: a value some read returned that was not in
   its readable set (Def. 12), non-monotonic reads, broken mutual
   exclusion, cyclic ≺. *)

open Pmc_model

type lowering = {
  events : History.event list;
  locs : int;            (* distinct model locations *)
  init : int -> int;     (* initial value of each location (pokes) *)
  skipped : int;         (* trace events with no model counterpart *)
}

let lower (trace : Event.t list) : lowering =
  let locs = Hashtbl.create 64 in
  let next_loc = ref 0 in
  let loc_of (o : Event.obj) word =
    let key = (o.Event.id, word) in
    match Hashtbl.find_opt locs key with
    | Some l -> l
    | None ->
        let l = !next_loc in
        incr next_loc;
        Hashtbl.add locs key l;
        l
  in
  let skipped = ref 0 in
  let inits = Hashtbl.create 64 in
  let out = ref [] in
  let push e = out := e :: !out in
  List.iter
    (fun (e : Event.t) ->
      let proc = e.Event.core in
      match e.Event.kind with
      | Event.Annot { ann = Event.Entry_x; obj = Some o } ->
          for w = 0 to o.Event.words - 1 do
            push (History.E_acquire { proc; loc = loc_of o w })
          done
      | Event.Annot { ann = Event.Exit_x; obj = Some o } ->
          for w = 0 to o.Event.words - 1 do
            push (History.E_release { proc; loc = loc_of o w })
          done
      | Event.Annot { ann = Event.Entry_ro; obj = Some o } ->
          for w = 0 to o.Event.words - 1 do
            push (History.E_acquire_ro { proc; loc = loc_of o w })
          done
      | Event.Annot { ann = Event.Exit_ro; obj = Some o } ->
          for w = 0 to o.Event.words - 1 do
            push (History.E_release_ro { proc; loc = loc_of o w })
          done
      | Event.Annot { ann = Event.Fence; _ } ->
          push (History.E_fence { proc })
      | Event.Read { obj; word; value } ->
          push
            (History.E_read
               { proc; loc = loc_of obj word; value = Int32.to_int value })
      | Event.Write { obj; word; value } ->
          push
            (History.E_write
               { proc; loc = loc_of obj word; value = Int32.to_int value })
      | Event.Init { obj; word; value } ->
          Hashtbl.replace inits (loc_of obj word) (Int32.to_int value)
      | Event.Annot _ -> ()
      | Event.Read8 _ | Event.Write8 _ | Event.Lock _ | Event.Noc_post _
      | Event.Cache_maint _ | Event.Task _ | Event.Fault _ ->
          incr skipped)
    trace;
  let init loc = Option.value ~default:0 (Hashtbl.find_opt inits loc) in
  { events = List.rev !out; locs = !next_loc; init; skipped = !skipped }

let check ?require_locked_writes ~cores (trace : Event.t list) :
    History.report =
  let l = lower trace in
  History.check ?require_locked_writes ~init:l.init ~procs:cores
    ~locs:(max 1 l.locs) l.events
