(* Online dynamic data-race detection over recorded traces, FastTrack
   style (vector clocks with last-write epochs).

   Happens-before is derived from the sync the trace makes explicit —
   exactly the PMC position that annotations carry every required
   ordering:

     - entry_x / entry_ro of object o joins o's release clock into the
       entering core's clock (the ≺S edge from the previous exit_x);
     - exit_x of o publishes the core's clock as o's release clock and
       advances the core's epoch.

   A pair of conflicting accesses (same object and word, at least one a
   write, different cores) that are unordered by this happens-before
   relation is a candidate race.  It is *reported* only when at least one
   of the two accesses happened outside any entry/exit scope of its
   object: scoped conflicts are either serialized by the object's lock
   (write/write) or sanctioned by the model (an entry_ro poll racing an
   exclusive writer is the Fig. 6/Fig. 9 pattern, handled by the readable
   set of Def. 12, not an error).  What remains is precisely the class of
   bugs the static [Pmc_compile.Check] pass cannot see — accesses whose
   annotations are missing at run time — and which the litmus-level
   [Pmc_model.Drf] cannot see either, because it only enumerates small
   litmus programs, not real back-end runs.

   Detection is relative to the observed interleaving, as for every
   dynamic race detector: a race is reported with the two concrete
   conflicting accesses and their cores.  Byte accesses are checked at
   the granularity of their containing word (conservative: two distinct
   bytes of one word may be flagged; the model's indivisible unit is the
   byte, but no workload in this repository writes sibling bytes from
   different cores unannotated). *)

type access = {
  core : int;
  time : int;
  seq : int;
  is_write : bool;
  scoped : bool;  (* inside an entry/exit pair of the object *)
  value : int32;
}

type race = {
  obj : Event.obj;
  word : int;
  first : access;   (* earlier access in issue order *)
  second : access;
}

let pp_access ppf (a : access) =
  Fmt.pf ppf "%s by core %d at t=%d%s (value %ld)"
    (if a.is_write then "write" else "read")
    a.core a.time
    (if a.scoped then "" else ", UNANNOTATED")
    a.value

let pp_race ppf (r : race) =
  Fmt.pf ppf "@[<v2>data race on %s#%d word %d:@,%a@,%a@]" r.obj.Event.name
    r.obj.Event.id r.word pp_access r.first pp_access r.second

(* ---------------- vector clocks ---------------- *)

let vc_create n = Array.make n 0

let vc_join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

type cell = {
  c_obj : Event.obj;
  mutable last_write : (int * access) option;  (* epoch clock, access *)
  reads : (int, int * access) Hashtbl.t;       (* core -> epoch clock, access *)
}

type t = {
  cores : int;
  clocks : int array array;                 (* C.(c) *)
  locks : (int, int array) Hashtbl.t;       (* object id -> release clock *)
  scopes : (int, int) Hashtbl.t array;      (* per core: obj id -> depth *)
  cells : (int * int, cell) Hashtbl.t;      (* (obj id, word) -> state *)
  seen : (int * int * int * int * bool * bool, unit) Hashtbl.t;
  mutable races : race list;                (* newest first *)
  mutable race_count : int;
  max_reports : int;
}

let create ?(max_reports = 1000) ~cores () =
  let clocks = Array.init cores (fun _ -> vc_create cores) in
  (* start every core at epoch 1 so clock 0 means "never synchronized" *)
  Array.iteri (fun c v -> v.(c) <- 1) clocks;
  {
    cores;
    clocks;
    locks = Hashtbl.create 64;
    scopes = Array.init cores (fun _ -> Hashtbl.create 8);
    cells = Hashtbl.create 1024;
    seen = Hashtbl.create 64;
    races = [];
    race_count = 0;
    max_reports;
  }

let lock_clock t oid =
  match Hashtbl.find_opt t.locks oid with
  | Some v -> v
  | None ->
      let v = vc_create t.cores in
      Hashtbl.add t.locks oid v;
      v

let scope_depth t ~core oid =
  Option.value ~default:0 (Hashtbl.find_opt t.scopes.(core) oid)

let enter_scope t ~core oid =
  Hashtbl.replace t.scopes.(core) oid (scope_depth t ~core oid + 1)

let leave_scope t ~core oid =
  let d = scope_depth t ~core oid - 1 in
  if d <= 0 then Hashtbl.remove t.scopes.(core) oid
  else Hashtbl.replace t.scopes.(core) oid d

let cell t (obj : Event.obj) word =
  let key = (obj.Event.id, word) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { c_obj = obj; last_write = None; reads = Hashtbl.create 4 } in
      Hashtbl.add t.cells key c;
      c

let report t (c : cell) word (first : access) (second : access) =
  (* one report per (cell, core pair, kind pair) keeps poll loops from
     flooding the output with copies of the same race *)
  let key =
    ( c.c_obj.Event.id, word,
      min first.core second.core, max first.core second.core,
      first.is_write, second.is_write )
  in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.race_count <- t.race_count + 1;
    if List.length t.races < t.max_reports then
      t.races <- { obj = c.c_obj; word; first; second } :: t.races
  end

(* Did [prev]'s epoch (clock [pt] on core [pc]) happen before the current
   clock of [core]? *)
let ordered t ~pc ~pt ~core = pt <= t.clocks.(core).(pc)

let racy (a : access) (b : access) = not (a.scoped && b.scoped)

let on_access t (obj : Event.obj) word (acc : access) =
  let c = cell t obj word in
  let core = acc.core in
  (match c.last_write with
  | Some (wt, wacc)
    when wacc.core <> core
         && (not (ordered t ~pc:wacc.core ~pt:wt ~core))
         && racy wacc acc ->
      report t c word wacc acc
  | _ -> ());
  if acc.is_write then begin
    Hashtbl.iter
      (fun rc (rt, racc) ->
        if
          rc <> core
          && (not (ordered t ~pc:rc ~pt:rt ~core))
          && racy racc acc
        then report t c word racc acc)
      c.reads;
    c.last_write <- Some (t.clocks.(core).(core), acc);
    Hashtbl.reset c.reads
  end
  else Hashtbl.replace c.reads core (t.clocks.(core).(core), acc)

let feed t (e : Event.t) =
  let core = e.Event.core in
  if core >= 0 && core < t.cores then
    match e.Event.kind with
    | Event.Annot { ann = Event.Entry_x | Event.Entry_ro; obj = Some o } ->
        vc_join t.clocks.(core) (lock_clock t o.Event.id);
        enter_scope t ~core o.Event.id
    | Event.Annot { ann = Event.Exit_x; obj = Some o } ->
        let l = lock_clock t o.Event.id in
        Array.blit t.clocks.(core) 0 l 0 t.cores;
        t.clocks.(core).(core) <- t.clocks.(core).(core) + 1;
        leave_scope t ~core o.Event.id
    | Event.Annot { ann = Event.Exit_ro; obj = Some o } ->
        leave_scope t ~core o.Event.id
    | Event.Annot _ -> ()
    | Event.Read { obj; word; value } ->
        on_access t obj word
          { core; time = e.Event.time; seq = e.Event.seq; is_write = false;
            scoped = scope_depth t ~core obj.Event.id > 0; value }
    | Event.Write { obj; word; value } ->
        on_access t obj word
          { core; time = e.Event.time; seq = e.Event.seq; is_write = true;
            scoped = scope_depth t ~core obj.Event.id > 0; value }
    | Event.Read8 { obj; byte; value } ->
        on_access t obj (byte / 4)
          { core; time = e.Event.time; seq = e.Event.seq; is_write = false;
            scoped = scope_depth t ~core obj.Event.id > 0;
            value = Int32.of_int value }
    | Event.Write8 { obj; byte; value } ->
        on_access t obj (byte / 4)
          { core; time = e.Event.time; seq = e.Event.seq; is_write = true;
            scoped = scope_depth t ~core obj.Event.id > 0;
            value = Int32.of_int value }
    | Event.Init _ ->
        (* untimed pre-run initialization, ordered before every task *)
        ()
    | Event.Lock _ | Event.Noc_post _ | Event.Cache_maint _ | Event.Task _
    | Event.Fault _ ->
        (* back-end-level events; synchronization is derived from the
           architecture-independent annotation events above.  Faults in
           particular are transport-level noise the resilient protocol
           hides from the memory model. *)
        ()

let races t = List.rev t.races
let race_count t = t.race_count

let check ?max_reports ~cores (events : Event.t list) : race list =
  let t = create ?max_reports ~cores () in
  List.iter (feed t) events;
  races t
