(* Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

   Layout: one process (pid 0), one track (tid) per core.  Entry/exit
   pairs become complete duration slices ("ph":"X") so the time a core
   spends inside exclusive and read-only scopes is visible at a glance;
   accesses, fences, flushes, lock handovers, NoC posts and cache
   maintenance become instant events with their payload in [args]; the
   Fig. 8 stall-category totals are appended as one counter sample per
   core.  Scope pairs are matched here rather than emitted as B/E so a
   ring-buffer drop can never produce an unbalanced trace.

   Timestamps are simulator cycles passed through as microseconds — only
   relative durations matter when inspecting a simulated run. *)

open Pmc_sim

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

type emitter = { b : Buffer.t; mutable first : bool }

let record e fields =
  if e.first then e.first <- false else Buffer.add_string e.b ",\n";
  Buffer.add_char e.b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char e.b ',';
      Buffer.add_char e.b '"';
      Buffer.add_string e.b k;
      Buffer.add_string e.b "\":";
      Buffer.add_string e.b v)
    fields;
  Buffer.add_char e.b '}'

let str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  buf_add_escaped b s;
  Buffer.add_char b '"';
  Buffer.contents b

let args kvs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k v) kvs)
  ^ "}"

let instant e ~name ~cat ~ts ~tid ?(extra = []) () =
  record e
    [
      ("name", str name); ("cat", str cat); ("ph", str "i");
      ("s", str "t"); ("ts", string_of_int ts); ("pid", "0");
      ("tid", string_of_int tid);
      ("args", args extra);
    ]

let slice e ~name ~cat ~ts ~dur ~tid ?(extra = []) () =
  record e
    [
      ("name", str name); ("cat", str cat); ("ph", str "X");
      ("ts", string_of_int ts); ("dur", string_of_int (max 1 dur));
      ("pid", "0"); ("tid", string_of_int tid);
      ("args", args extra);
    ]

let obj_label (o : Event.obj) = Printf.sprintf "%s#%d" o.Event.name o.Event.id

let to_buffer ?stats (b : Buffer.t) (events : Event.t list) : unit =
  let e = { b; first = true } in
  Buffer.add_string b "{\"traceEvents\":[\n";
  (* thread names: one track per core seen in the trace (or in stats) *)
  let cores =
    List.fold_left (fun acc (ev : Event.t) -> max acc (ev.Event.core + 1))
      (match stats with Some s -> Array.length s.Stats.cores | None -> 0)
      events
  in
  record e
    [
      ("name", str "process_name"); ("ph", str "M"); ("pid", "0");
      ("args", args [ ("name", str "pmc_sim") ]);
    ];
  for c = 0 to cores - 1 do
    record e
      [
        ("name", str "thread_name"); ("ph", str "M"); ("pid", "0");
        ("tid", string_of_int c);
        ("args", args [ ("name", str (Printf.sprintf "core %d" c)) ]);
      ]
  done;
  (* scope matching: (core, obj id, mode) -> entry-time stack *)
  let open_scopes : (int * int * bool, int list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let scope_push ~core ~oid ~x ts =
    let key = (core, oid, x) in
    match Hashtbl.find_opt open_scopes key with
    | Some stack -> stack := ts :: !stack
    | None -> Hashtbl.add open_scopes key (ref [ ts ])
  in
  let scope_pop ~core ~oid ~x =
    match Hashtbl.find_opt open_scopes (core, oid, x) with
    | Some ({ contents = ts :: rest } as stack) ->
        stack := rest;
        Some ts
    | _ -> None
  in
  List.iter
    (fun (ev : Event.t) ->
      let ts = ev.Event.time and tid = ev.Event.core in
      match ev.Event.kind with
      | Event.Annot { ann = Event.Entry_x; obj = Some o } ->
          scope_push ~core:tid ~oid:o.Event.id ~x:true ts
      | Event.Annot { ann = Event.Entry_ro; obj = Some o } ->
          scope_push ~core:tid ~oid:o.Event.id ~x:false ts
      | Event.Annot { ann = Event.Exit_x; obj = Some o } -> (
          match scope_pop ~core:tid ~oid:o.Event.id ~x:true with
          | Some t0 ->
              slice e ~name:("X " ^ obj_label o) ~cat:"scope" ~ts:t0
                ~dur:(ts - t0) ~tid ()
          | None ->
              instant e ~name:("exit_x " ^ obj_label o) ~cat:"scope" ~ts ~tid
                ())
      | Event.Annot { ann = Event.Exit_ro; obj = Some o } -> (
          match scope_pop ~core:tid ~oid:o.Event.id ~x:false with
          | Some t0 ->
              slice e ~name:("RO " ^ obj_label o) ~cat:"scope" ~ts:t0
                ~dur:(ts - t0) ~tid ()
          | None ->
              instant e ~name:("exit_ro " ^ obj_label o) ~cat:"scope" ~ts
                ~tid ())
      | Event.Annot { ann = Event.Fence; _ } ->
          instant e ~name:"fence" ~cat:"annot" ~ts ~tid ()
      | Event.Annot { ann = Event.Flush; obj } ->
          let extra =
            match obj with
            | Some o -> [ ("obj", str (obj_label o)) ]
            | None -> []
          in
          instant e ~name:"flush" ~cat:"annot" ~ts ~tid ~extra ()
      | Event.Annot { ann = Event.Entry_x | Event.Entry_ro; obj = None } -> ()
      | Event.Annot { ann = Event.Exit_x | Event.Exit_ro; obj = None } -> ()
      | Event.Read { obj; word; value } ->
          instant e ~name:("rd " ^ obj_label obj) ~cat:"mem" ~ts ~tid
            ~extra:
              [ ("word", string_of_int word); ("value", Int32.to_string value) ]
            ()
      | Event.Write { obj; word; value } ->
          instant e ~name:("wr " ^ obj_label obj) ~cat:"mem" ~ts ~tid
            ~extra:
              [ ("word", string_of_int word); ("value", Int32.to_string value) ]
            ()
      | Event.Read8 { obj; byte; value } ->
          instant e ~name:("rd8 " ^ obj_label obj) ~cat:"mem" ~ts ~tid
            ~extra:
              [ ("byte", string_of_int byte); ("value", string_of_int value) ]
            ()
      | Event.Write8 { obj; byte; value } ->
          instant e ~name:("wr8 " ^ obj_label obj) ~cat:"mem" ~ts ~tid
            ~extra:
              [ ("byte", string_of_int byte); ("value", string_of_int value) ]
            ()
      | Event.Init _ ->
          (* untimed pre-run initialization: no place on the timeline *)
          ()
      | Event.Lock { lock; op; transferred } ->
          instant e
            ~name:(Printf.sprintf "lock#%d %s" lock (Event.lock_op_name op))
            ~cat:"lock" ~ts ~tid
            ~extra:[ ("transferred", if transferred then "true" else "false") ]
            ()
      | Event.Noc_post { src; dst; off; bytes; arrival } ->
          instant e
            ~name:(Printf.sprintf "noc %d>%d" src dst)
            ~cat:"noc" ~ts ~tid
            ~extra:
              [
                ("dst", string_of_int dst); ("off", string_of_int off);
                ("bytes", string_of_int bytes);
                ("arrival", string_of_int arrival);
              ]
            ()
      | Event.Cache_maint { op; addr; len; lines_touched; lines_written_back }
        ->
          instant e ~name:(Event.maint_op_name op) ~cat:"cache" ~ts ~tid
            ~extra:
              [
                ("addr", string_of_int addr); ("len", string_of_int len);
                ("lines", string_of_int lines_touched);
                ("written_back", string_of_int lines_written_back);
              ]
            ()
      | Event.Task { op } ->
          instant e ~name:("task " ^ Event.task_op_name op) ~cat:"task" ~ts
            ~tid ()
      | Event.Fault { kind; detail } ->
          instant e
            ~name:("fault " ^ Event.fault_kind_name kind)
            ~cat:"fault" ~ts ~tid
            ~extra:[ ("detail", str detail) ]
            ())
    events;
  (* leftover open scopes (exit lost to a ring drop, or trace cut short) *)
  Hashtbl.iter
    (fun (core, oid, x) stack ->
      List.iter
        (fun t0 ->
          instant e
            ~name:(Printf.sprintf "%s obj#%d (no exit)"
                     (if x then "entry_x" else "entry_ro") oid)
            ~cat:"scope" ~ts:t0 ~tid:core ())
        !stack)
    open_scopes;
  (* stall-category counters: one sample per core with the run's totals *)
  (match stats with
  | None -> ()
  | Some s ->
      Array.iteri
        (fun c (core_stats : Stats.core) ->
          record e
            [
              ("name", str (Printf.sprintf "core %d stalls" c));
              ("ph", str "C"); ("ts", "0"); ("pid", "0");
              ( "args",
                args
                  (List.map
                     (fun cat ->
                       ( Stats.category_name cat,
                         string_of_int (Stats.get core_stats cat) ))
                     Stats.categories) );
            ])
        s.Stats.cores);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_string ?stats events =
  let b = Buffer.create 65536 in
  to_buffer ?stats b events;
  Buffer.contents b

let write_file ?stats ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?stats events))
