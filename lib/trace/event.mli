(** The unified trace event of the [pmc_trace] subsystem.

    One virtually-timestamped record per runtime action, merging the
    annotation-level events of {!Pmc.Api} with the micro-architectural
    events of {!Pmc_sim.Probe} into a single per-run timeline.  Events
    are plain data (no live handles), so captured traces are
    self-contained artifacts: exportable ({!Export}), replayable through
    the formal model ({!Replay}) and checkable for races ({!Racecheck}). *)

type obj = { id : int; name : string; words : int; bytes : int }
(** Descriptor of a shared object, detached from its live handle. *)

type annot = Entry_x | Exit_x | Entry_ro | Exit_ro | Fence | Flush

type lock_op = Acquire | Release | Acquire_ro | Release_ro
type maint_op = Wb_inval | Inval
type task_op = Spawn | Finish

(** Fault classes of the chaos plane ({!Pmc_sim.Fault}). *)
type fault_kind =
  | Noc_drop
  | Noc_corrupt
  | Noc_delay
  | Noc_retry
  | Link_dead
  | Noc_degraded
  | Sdram_retry
  | Tile_stall
  | Lock_timeout
  | Power_cut

type kind =
  | Annot of { ann : annot; obj : obj option }
      (** An annotation; [obj = None] for fences. *)
  | Read of { obj : obj; word : int; value : int32 }
  | Write of { obj : obj; word : int; value : int32 }
  | Read8 of { obj : obj; byte : int; value : int }
  | Write8 of { obj : obj; byte : int; value : int }
  | Init of { obj : obj; word : int; value : int32 }
      (** Untimed initialization write ({!Pmc.Api.poke}), before the run. *)
  | Lock of { lock : int; op : lock_op; transferred : bool }
  | Noc_post of { src : int; dst : int; off : int; bytes : int; arrival : int }
  | Cache_maint of {
      op : maint_op;
      addr : int;
      len : int;
      lines_touched : int;
      lines_written_back : int;
    }
  | Task of { op : task_op }
  | Fault of { kind : fault_kind; detail : string }
      (** An injected fault or the resilient protocol's reaction to one
          (chaos runs only; never present with the fault plane off). *)

type t = {
  seq : int;   (** global emission index — issue order, survives ring drops *)
  time : int;  (** virtual time (cycles) at emission *)
  core : int;
  kind : kind;
}

val obj_of_shared : Pmc.Shared.t -> obj

val annot_name : annot -> string
val lock_op_name : lock_op -> string
val maint_op_name : maint_op -> string
val task_op_name : task_op -> string
val fault_kind_name : fault_kind -> string

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
