(** Online dynamic data-race detection over recorded traces (FastTrack
    style: vector clocks with last-write epochs).

    Happens-before is derived from the synchronization the annotations
    make explicit — entry joins the object's release clock (≺S), exit_x
    publishes it — and a race is reported for two conflicting accesses
    (same object and word, at least one a write, different cores) that
    are unordered by it, provided at least one access happened outside
    any entry/exit scope of its object.  Scoped conflicts are either
    serialized by the object's lock or sanctioned by the model's readable
    set (the Fig. 6 poll pattern), so what is reported is exactly the
    missing-annotation class of bugs the static {!Pmc_compile.Check} pass
    and the litmus-level {!Pmc_model.Drf} checker cannot see.

    Byte accesses are checked at the granularity of their containing
    word (conservative).  Detection is relative to the observed
    interleaving, as with every dynamic detector. *)

type access = {
  core : int;
  time : int;
  seq : int;
  is_write : bool;
  scoped : bool;  (** inside an entry/exit pair of the object *)
  value : int32;
}

type race = {
  obj : Event.obj;
  word : int;
  first : access;   (** earlier access in issue order *)
  second : access;
}

val pp_access : Format.formatter -> access -> unit
val pp_race : Format.formatter -> race -> unit

type t

val create : ?max_reports:int -> cores:int -> unit -> t

val feed : t -> Event.t -> unit
(** Feed one event, in issue order.  Non-access, non-annotation events
    are ignored. *)

val races : t -> race list
(** Distinct races detected so far, oldest first.  One report per
    (object, word, core pair, access-kind pair); capped at
    [max_reports]. *)

val race_count : t -> int
(** Total distinct races, including any beyond the report cap. *)

val check : ?max_reports:int -> cores:int -> Event.t list -> race list
(** [check ~cores events] — feed a complete trace and return the races. *)
