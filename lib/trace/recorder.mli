(** Bounded trace recording.

    One fixed-capacity ring buffer per core: tracing never grows without
    bound, a hot core cannot evict another core's history, and overflow is
    reported ({!dropped}) instead of silently losing data.  [attach]
    claims both the {!Pmc.Api} trace hook and the simulator's
    {!Pmc_sim.Probe} sink; at most one recorder should be attached to a
    machine at a time. *)

type t

val default_capacity : int
(** Per-core ring capacity when not specified (65536 events). *)

val attach : ?capacity:int -> Pmc.Api.t -> t
(** Start recording every annotation, access, lock, NoC and cache event of
    the given runtime instance. *)

val detach : t -> unit
(** Stop recording and release both hooks. *)

val api : t -> Pmc.Api.t
(** The runtime instance this recorder is attached to. *)

val cores : t -> int

val recorded : t -> int
(** Events currently held across all rings. *)

val dropped : t -> core:int -> int
(** Events overwritten on [core]'s ring since [attach]. *)

val dropped_total : t -> int

val events : t -> Event.t list
(** The merged timeline in emission order (= issue order on the
    deterministic engine).  Oldest surviving event first. *)
