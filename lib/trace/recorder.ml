(* Bounded trace recording.

   One ring buffer per core, so a hot core cannot evict another core's
   history, and a fixed [capacity] per ring, so tracing is safe on
   arbitrarily long benches: when a ring fills, the oldest events are
   overwritten and counted in [dropped].  Consumers that need a complete
   trace (model replay, race checking) should check [dropped_total] and
   raise capacity — the CLI does.

   [attach] claims both hooks (the [Pmc.Api] trace callback and the
   simulator's [Pmc_sim.Probe] sink); [detach] restores them.  The global
   [seq] counter stamps emission order, which on the deterministic
   single-threaded engine *is* issue order — [events] returns the merged
   timeline sorted by it. *)

open Pmc_sim

type ring = {
  buf : Event.t array;
  mutable len : int;    (* number of valid entries *)
  mutable head : int;   (* next write position *)
  mutable dropped : int;
}

let dummy_event : Event.t =
  { Event.seq = -1; time = 0; core = 0; kind = Event.Task { op = Event.Spawn } }

let ring_create capacity =
  { buf = Array.make capacity dummy_event; len = 0; head = 0; dropped = 0 }

let ring_push r (e : Event.t) =
  let cap = Array.length r.buf in
  r.buf.(r.head) <- e;
  r.head <- (r.head + 1) mod cap;
  if r.len < cap then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

(* Oldest-first contents of the ring. *)
let ring_list r =
  let cap = Array.length r.buf in
  let start = (r.head - r.len + cap) mod cap in
  List.init r.len (fun i -> r.buf.((start + i) mod cap))

type t = {
  api : Pmc.Api.t;
  machine : Machine.t;
  rings : ring array;
  mutable seq : int;
  mutable attached : bool;
}

let default_capacity = 1 lsl 16

let push t ~core ~time kind =
  let core = if core < 0 || core >= Array.length t.rings then 0 else core in
  ring_push t.rings.(core) { Event.seq = t.seq; time; core; kind };
  t.seq <- t.seq + 1

let api_hook t ~core (ev : Pmc.Api.event) =
  (* host-context events (core -1, e.g. initialization pokes) happen
     outside any task, where the engine has no current time *)
  let time = if core < 0 then 0 else Machine.now t.machine in
  let obj o = Event.obj_of_shared o in
  let kind =
    match ev with
    | Pmc.Api.Ev_entry (Pmc.Api.X, o) ->
        Event.Annot { ann = Event.Entry_x; obj = Some (obj o) }
    | Pmc.Api.Ev_entry (Pmc.Api.Ro, o) ->
        Event.Annot { ann = Event.Entry_ro; obj = Some (obj o) }
    | Pmc.Api.Ev_exit (Pmc.Api.X, o) ->
        Event.Annot { ann = Event.Exit_x; obj = Some (obj o) }
    | Pmc.Api.Ev_exit (Pmc.Api.Ro, o) ->
        Event.Annot { ann = Event.Exit_ro; obj = Some (obj o) }
    | Pmc.Api.Ev_fence -> Event.Annot { ann = Event.Fence; obj = None }
    | Pmc.Api.Ev_flush o ->
        Event.Annot { ann = Event.Flush; obj = Some (obj o) }
    | Pmc.Api.Ev_read (o, word, value) ->
        Event.Read { obj = obj o; word; value }
    | Pmc.Api.Ev_write (o, word, value) ->
        Event.Write { obj = obj o; word; value }
    | Pmc.Api.Ev_read8 (o, byte, value) ->
        Event.Read8 { obj = obj o; byte; value }
    | Pmc.Api.Ev_write8 (o, byte, value) ->
        Event.Write8 { obj = obj o; byte; value }
    | Pmc.Api.Ev_init (o, word, value) ->
        Event.Init { obj = obj o; word; value }
  in
  push t ~core ~time kind

let probe_sink t ~time (ev : Probe.event) =
  match ev with
  | Probe.Noc_post { src; dst; off; bytes; arrival } ->
      push t ~core:src ~time (Event.Noc_post { src; dst; off; bytes; arrival })
  | Probe.Cache_maint { core; op; addr; len; lines_touched;
                        lines_written_back } ->
      let op =
        match op with
        | Probe.Wb_inval -> Event.Wb_inval
        | Probe.Inval -> Event.Inval
      in
      push t ~core ~time
        (Event.Cache_maint { op; addr; len; lines_touched; lines_written_back })
  | Probe.Lock { core; lock; op; transferred } ->
      let op =
        match op with
        | Probe.Acquire -> Event.Acquire
        | Probe.Release -> Event.Release
        | Probe.Acquire_ro -> Event.Acquire_ro
        | Probe.Release_ro -> Event.Release_ro
      in
      push t ~core ~time (Event.Lock { lock; op; transferred })
  | Probe.Task { core; op } ->
      let op =
        match op with Probe.Spawn -> Event.Spawn | Probe.Finish -> Event.Finish
      in
      push t ~core ~time (Event.Task { op })
  | Probe.Fault f ->
      (* NoC faults are attributed to the sending core (the side that
         owns the retransmission protocol), the rest to the faulting
         core itself. *)
      let core, kind, detail =
        match f with
        | Probe.F_noc_drop { src; dst; seq; attempt } ->
            ( src, Event.Noc_drop,
              Printf.sprintf "%d>%d seq=%d attempt=%d" src dst seq attempt )
        | Probe.F_noc_corrupt { src; dst; seq; attempt } ->
            ( src, Event.Noc_corrupt,
              Printf.sprintf "%d>%d seq=%d attempt=%d" src dst seq attempt )
        | Probe.F_noc_delay { src; dst; seq; cycles } ->
            ( src, Event.Noc_delay,
              Printf.sprintf "%d>%d seq=%d +%d" src dst seq cycles )
        | Probe.F_noc_retry { src; dst; seq; attempt; at } ->
            ( src, Event.Noc_retry,
              Printf.sprintf "%d>%d seq=%d attempt=%d at=%d" src dst seq
                attempt at )
        | Probe.F_link_dead { src; dst } ->
            (src, Event.Link_dead, Printf.sprintf "%d>%d" src dst)
        | Probe.F_noc_degraded { src; dst; seq } ->
            ( src, Event.Noc_degraded,
              Printf.sprintf "%d>%d seq=%d" src dst seq )
        | Probe.F_sdram_retry { core; attempt } ->
            (core, Event.Sdram_retry, Printf.sprintf "attempt=%d" attempt)
        | Probe.F_tile_stall { core; cycles } ->
            (core, Event.Tile_stall, Printf.sprintf "+%d" cycles)
        | Probe.F_lock_timeout { core; lock; waited } ->
            ( core, Event.Lock_timeout,
              Printf.sprintf "lock#%d waited=%d" lock waited )
        | Probe.F_power_cut { cycle } ->
            (* the cut kills every tile at once; attribute it to core 0 *)
            (0, Event.Power_cut, Printf.sprintf "at=%d" cycle)
      in
      push t ~core ~time (Event.Fault { kind; detail })

let attach ?(capacity = default_capacity) (api : Pmc.Api.t) : t =
  if capacity <= 0 then invalid_arg "Recorder.attach: capacity must be > 0";
  let machine = Pmc.Api.machine api in
  let cores = (Machine.config machine).Config.cores in
  let t =
    {
      api;
      machine;
      rings = Array.init cores (fun _ -> ring_create capacity);
      seq = 0;
      attached = true;
    }
  in
  Pmc.Api.set_trace api (Some (api_hook t));
  Probe.set (Machine.probe machine) (Some (probe_sink t));
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    Pmc.Api.set_trace t.api None;
    Probe.set (Machine.probe t.machine) None
  end

let api t = t.api
let cores t = Array.length t.rings
let recorded t = Array.fold_left (fun acc r -> acc + r.len) 0 t.rings
let dropped t ~core = t.rings.(core).dropped
let dropped_total t = Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

let events t : Event.t list =
  let all =
    Array.fold_left (fun acc r -> List.rev_append (ring_list r) acc) [] t.rings
  in
  List.sort (fun (a : Event.t) b -> compare a.Event.seq b.Event.seq) all
