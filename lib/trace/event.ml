(* The unified trace event: one virtually-timestamped record per thing the
   runtime did, merging two sources into one timeline —

     - the annotation-level events of [Pmc.Api] (entry/exit/fence/flush
       and the word/byte accesses between them), and
     - the micro-architectural events of [Pmc_sim.Probe] (posted NoC
       writes, cache flush/invalidate ranges, distributed-lock handovers,
       task lifetimes).

   Events carry a plain-data object descriptor (id, name, size) instead of
   the live [Pmc.Shared.t] handle so a captured trace is self-contained:
   it can be exported, replayed through the formal model or fed to the
   race detector long after the machine is gone. *)

type obj = { id : int; name : string; words : int; bytes : int }

type annot = Entry_x | Exit_x | Entry_ro | Exit_ro | Fence | Flush

type lock_op = Acquire | Release | Acquire_ro | Release_ro
type maint_op = Wb_inval | Inval
type task_op = Spawn | Finish

(* Fault classes of the chaos plane ([Pmc_sim.Fault]); the variant keys
   tooling (export categories, soak summaries), the detail string keeps
   the record plain data without replicating every payload shape. *)
type fault_kind =
  | Noc_drop
  | Noc_corrupt
  | Noc_delay
  | Noc_retry
  | Link_dead
  | Noc_degraded
  | Sdram_retry
  | Tile_stall
  | Lock_timeout
  | Power_cut

type kind =
  | Annot of { ann : annot; obj : obj option }
      (* [obj = None] for fences, which span all locations *)
  | Read of { obj : obj; word : int; value : int32 }
  | Write of { obj : obj; word : int; value : int32 }
  | Read8 of { obj : obj; byte : int; value : int }
  | Write8 of { obj : obj; byte : int; value : int }
  | Init of { obj : obj; word : int; value : int32 }
      (* untimed initialization write (poke), before the run proper *)
  | Lock of { lock : int; op : lock_op; transferred : bool }
  | Noc_post of { src : int; dst : int; off : int; bytes : int; arrival : int }
  | Cache_maint of {
      op : maint_op;
      addr : int;
      len : int;
      lines_touched : int;
      lines_written_back : int;
    }
  | Task of { op : task_op }
  | Fault of { kind : fault_kind; detail : string }

type t = {
  seq : int;   (* global emission index: issue order, survives ring drops *)
  time : int;  (* virtual time (cycles) at emission *)
  core : int;
  kind : kind;
}

let obj_of_shared (o : Pmc.Shared.t) : obj =
  { id = o.Pmc.Shared.id; name = o.Pmc.Shared.name;
    words = Pmc.Shared.words o; bytes = o.Pmc.Shared.size }

let annot_name = function
  | Entry_x -> "entry_x"
  | Exit_x -> "exit_x"
  | Entry_ro -> "entry_ro"
  | Exit_ro -> "exit_ro"
  | Fence -> "fence"
  | Flush -> "flush"

let lock_op_name = function
  | Acquire -> "acquire"
  | Release -> "release"
  | Acquire_ro -> "acquire_ro"
  | Release_ro -> "release_ro"

let maint_op_name = function Wb_inval -> "wb_inval" | Inval -> "inval"
let task_op_name = function Spawn -> "spawn" | Finish -> "finish"

let fault_kind_name = function
  | Noc_drop -> "noc_drop"
  | Noc_corrupt -> "noc_corrupt"
  | Noc_delay -> "noc_delay"
  | Noc_retry -> "noc_retry"
  | Link_dead -> "link_dead"
  | Noc_degraded -> "noc_degraded"
  | Sdram_retry -> "sdram_retry"
  | Tile_stall -> "tile_stall"
  | Lock_timeout -> "lock_timeout"
  | Power_cut -> "power_cut"

let pp_kind ppf = function
  | Annot { ann; obj = None } -> Fmt.pf ppf "%s" (annot_name ann)
  | Annot { ann; obj = Some o } ->
      Fmt.pf ppf "%s(%s#%d)" (annot_name ann) o.name o.id
  | Read { obj; word; value } ->
      Fmt.pf ppf "read %s#%d[%d] = %ld" obj.name obj.id word value
  | Write { obj; word; value } ->
      Fmt.pf ppf "write %s#%d[%d] := %ld" obj.name obj.id word value
  | Read8 { obj; byte; value } ->
      Fmt.pf ppf "read8 %s#%d.%d = %d" obj.name obj.id byte value
  | Write8 { obj; byte; value } ->
      Fmt.pf ppf "write8 %s#%d.%d := %d" obj.name obj.id byte value
  | Init { obj; word; value } ->
      Fmt.pf ppf "init %s#%d[%d] := %ld" obj.name obj.id word value
  | Lock { lock; op; transferred } ->
      Fmt.pf ppf "lock#%d %s%s" lock (lock_op_name op)
        (if transferred then " (transfer)" else "")
  | Noc_post { src; dst; bytes; arrival; _ } ->
      Fmt.pf ppf "noc %d->%d %dB arr=%d" src dst bytes arrival
  | Cache_maint { op; addr; len; lines_written_back; _ } ->
      Fmt.pf ppf "%s [%#x,+%d) wb=%d" (maint_op_name op) addr len
        lines_written_back
  | Task { op } -> Fmt.pf ppf "task %s" (task_op_name op)
  | Fault { kind; detail } ->
      Fmt.pf ppf "fault %s %s" (fault_kind_name kind) detail

let pp ppf (e : t) =
  Fmt.pf ppf "@[t=%-8d c%-3d %a@]" e.time e.core pp_kind e.kind
