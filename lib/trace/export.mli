(** Chrome trace-event JSON export, loadable in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or chrome://tracing.

    One track per core: entry/exit pairs as duration slices, accesses /
    fences / lock handovers / NoC posts / cache maintenance as instant
    events with their payload in [args], and (when a {!Pmc_sim.Stats.t} is
    supplied) the Fig. 8 stall-category totals as one counter sample per
    core.  Timestamps are simulator cycles. *)

val to_buffer : ?stats:Pmc_sim.Stats.t -> Buffer.t -> Event.t list -> unit
val to_string : ?stats:Pmc_sim.Stats.t -> Event.t list -> string
val write_file : ?stats:Pmc_sim.Stats.t -> path:string -> Event.t list -> unit
