(* The check-suite workloads: the model plane's two hot paths, packaged
   so [Measure] can time them like simulator cases.

   Both workloads are deterministic by construction — the replay trace
   comes from a fixed-seed LCG and enumeration explores fixed programs —
   so the work count and digest must be identical across repeats and
   across hosts; only the measured rate varies. *)

open Pmc_model

(* FNV-1a over strings/ints: a portable digest (unlike [Hashtbl.hash],
   which is not specified across compiler versions) pinning the verdict
   content, stored in the sample's [lat_digest] slot. *)
let fnv_prime = 0x100000001b3

let digest_int h n = (h lxor (n land 0xFFFF_FFFF)) * fnv_prime

let digest_string h s =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  !h

(* the FNV-1a offset basis, truncated to OCaml's 63-bit int *)
let digest_seed = 0x4bf29ce484222325

(* A synthetic PMC-consistent trace: every access is a locked
   acquire/write/read/release quad, so the checker takes its full
   locked-discipline path on every event.  The LCG is fixed-seed —
   the trace for a given (procs, locs, events) is a pure function. *)
let synth_events ~procs ~locs ~events =
  let evs = ref [] in
  let seed = ref 12345 in
  let rnd m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  for _ = 1 to events / 4 do
    let p = rnd procs and l = rnd locs in
    let v = rnd 100 in
    evs :=
      History.E_release { proc = p; loc = l }
      :: History.E_read { proc = p; loc = l; value = v }
      :: History.E_write { proc = p; loc = l; value = v }
      :: History.E_acquire { proc = p; loc = l }
      :: !evs
  done;
  List.rev !evs

type outcome = {
  work : int;    (* events replayed / states enumerated *)
  ok : bool;
  digest : int;  (* FNV-1a over the verdict content *)
}

let locs_per_proc = 2

let replay ~procs ~events =
  let locs = max 1 (procs * locs_per_proc) in
  let evs = synth_events ~procs ~locs ~events in
  let work = List.length evs in
  let r = History.check ~procs ~locs evs in
  let digest =
    List.fold_left
      (fun h v -> digest_string h (Fmt.str "%a" History.pp_violation v))
      (digest_int digest_seed work)
      r.History.violations
  in
  { work; ok = History.ok r; digest }

(* The whole standard corpus under every semantics — the workload
   [litmus_run] users actually pay for.  States are memoized per cell,
   so the count is exactly the number of distinct states. *)
let enum () =
  let cells =
    List.concat_map
      (fun p -> List.map (fun m -> (p, m)) Models.all)
      Lprog.all_standard
  in
  let work = ref 0 in
  let digest = ref digest_seed in
  List.iter
    (fun ((p : Lprog.t), m) ->
      let r = Litmus.enumerate m p in
      work := !work + r.Litmus.states_explored;
      digest := digest_string !digest p.Lprog.name;
      digest := digest_int !digest r.Litmus.states_explored;
      digest := digest_int !digest r.Litmus.stuck_states;
      Lprog.Outcome_set.iter
        (fun o -> digest := digest_string !digest o)
        r.Litmus.outcomes)
    cells;
  { work = !work; ok = !work > 0; digest = !digest }
