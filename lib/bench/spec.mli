(** Benchmark suite descriptions: which (app, back-end, topology, cores,
    scale) combinations to run and with what measurement discipline. *)

type case = {
  app : string;       (** registry name, see {!Pmc_apps.Registry} *)
  backend : Pmc.Backends.kind;
  topology : Pmc_sim.Topology.t;  (** fabric the case runs on *)
  cores : int;
  scale : int;
}

type t = {
  label : string;     (** free-form tag recorded in the report *)
  suite : string;     (** suite name the cases came from *)
  unbatched : bool;
      (** run on {!Pmc_sim.Config.unbatched} — the pre-batching cost
          model — instead of the default machine *)
  warmup : int;       (** discarded runs before timing *)
  repeat : int;       (** timed runs; host time is outlier-trimmed *)
  cases : case list;
}

val case_id : case -> string
(** Stable identifier used to join baseline and current reports in
    {!Compare}: ["app/backend/cN/sM"] on {!Pmc_sim.Topology.Star} (the
    historic form, so pre-topology baselines still join) and
    ["app/backend/topology/cN/sM"] on routed fabrics. *)

val smoke_cases : case list
(** The CI gate: three kernels with distinct traffic shapes on every
    software coherency back-end at the 32-core geometry. *)

val full_cases : case list
(** Every registered application at the 32-core geometry. *)

val scale_cases : case list
(** Served-traffic apps on the big routed fabrics: kv_store and mailbox
    on a 256-tile mesh, kv_store on a 1024-tile hierarchy, all five
    back-ends. *)

val suite :
  ?label:string ->
  ?unbatched:bool ->
  ?warmup:int ->
  ?repeat:int ->
  string ->
  t option
(** [suite name] builds a suite by name; [None] for unknown names. *)

val suite_names : string list
