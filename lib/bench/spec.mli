(** Benchmark suite descriptions: which (app, back-end, topology, cores,
    scale) combinations to run and with what measurement discipline. *)

(** What a case exercises: a simulator run, or one of the model plane's
    two hot paths.  Check cases record their deterministic work count in
    [metrics.cycles] (events replayed / states enumerated) and their
    throughput in [host_cycles_per_s], so the existing rate gate applies
    unchanged. *)
type work =
  | Sim
  | Check_replay
      (** {!Pmc_model.History.check} over a synthetic [scale]-event
          trace with [cores] processes *)
  | Check_enum
      (** {!Pmc_model.Litmus.enumerate} over the standard corpus under
          every semantics *)

type case = {
  app : string;       (** registry name, see {!Pmc_apps.Registry} *)
  backend : Pmc.Backends.kind;
  topology : Pmc_sim.Topology.t;  (** fabric the case runs on *)
  cores : int;
  scale : int;
  work : work;
}

type t = {
  label : string;     (** free-form tag recorded in the report *)
  suite : string;     (** suite name the cases came from *)
  unbatched : bool;
      (** run on {!Pmc_sim.Config.unbatched} — the pre-batching cost
          model — instead of the default machine *)
  warmup : int;       (** discarded runs before timing *)
  repeat : int;       (** timed runs; host time is outlier-trimmed *)
  cases : case list;
}

val case_id : case -> string
(** Stable identifier used to join baseline and current reports in
    {!Compare}: ["app/backend/cN/sM"] on {!Pmc_sim.Topology.Star} (the
    historic form, so pre-topology baselines still join),
    ["app/backend/topology/cN/sM"] on routed fabrics, and
    ["check/replay/cN/sM"] / ["check/enum/app/sM"] for check cases. *)

val smoke_cases : case list
(** The CI gate: three kernels with distinct traffic shapes on every
    software coherency back-end at the 32-core geometry. *)

val full_cases : case list
(** Every registered application at the 32-core geometry. *)

val scale_cases : case list
(** Served-traffic apps on the big routed fabrics: kv_store and mailbox
    on a 256-tile mesh, kv_store on a 1024-tile hierarchy, all five
    back-ends. *)

val check_cases : case list
(** The model-plane throughput gate: incremental history replay
    (200k synthetic events, 4 processes) and litmus-corpus enumeration
    (every standard program under every semantics). *)

val suite :
  ?label:string ->
  ?unbatched:bool ->
  ?warmup:int ->
  ?repeat:int ->
  string ->
  t option
(** [suite name] builds a suite by name ([smoke], [full], [scale],
    [check], or [ci] — smoke plus check, the committed-baseline set);
    [None] for unknown names. *)

val suite_names : string list
