(** The check-suite workloads: the model plane's two hot paths —
    incremental history replay and litmus-corpus enumeration — packaged
    so {!Measure} can time them like simulator cases.

    Both are deterministic by construction: the replay trace comes from
    a fixed-seed generator and enumeration explores fixed programs, so
    [work] and [digest] are pure functions of the case; only the
    measured rate is host-dependent. *)

type outcome = {
  work : int;    (** events replayed / distinct states enumerated *)
  ok : bool;     (** the verdict sanity check passed *)
  digest : int;  (** portable FNV-1a digest pinning the verdict content *)
}

val synth_events :
  procs:int -> locs:int -> events:int -> Pmc_model.History.event list
(** A PMC-consistent trace of locked acquire/write/read/release quads
    from a fixed-seed generator — a pure function of its arguments. *)

val replay : procs:int -> events:int -> outcome
(** Replay a synthetic trace through {!Pmc_model.History.check};
    [ok] iff the (consistent) trace produced no violations. *)

val enum : unit -> outcome
(** Enumerate every standard litmus program under every semantics;
    [work] totals the distinct states, [digest] pins every cell's
    state count, stuck count and outcome set. *)
