(* Run one benchmark case and distil the simulator's counters into the
   report metrics.

   The simulator is deterministic, so the architectural metrics (cycles,
   flits, flushes, lock handovers) are exact and identical across
   repeats — the harness asserts that instead of averaging it away.
   Host time is the only noisy quantity: it is measured per repeat,
   outlier-trimmed (drop min and max when there are at least three
   repeats) and averaged. *)

open Pmc_sim

type metrics = {
  cycles : int;          (* engine wall time of the whole run *)
  noc_flits : int;
  noc_writes : int;
  flushes : int;         (* cache flush/invalidate range operations *)
  lock_acquires : int;
  lock_transfers : int;  (* inter-tile lock handovers *)
  dcache_misses : int;
  instructions : int;
  utilization : float;
  (* served-traffic metrics; requests = 0 marks "app records none" *)
  requests : int;
  p50 : int;             (* exact request-latency percentiles, cycles *)
  p99 : int;
  p999 : int;
  lat_digest : int;      (* order-sensitive digest of the latency stream *)
  throughput : float;    (* requests per 1000 simulated cycles *)
}

type sample = {
  case : Spec.case;
  ok : bool;             (* checksum matched the sequential reference *)
  deterministic : bool;  (* metrics identical across all repeats *)
  repeats : int;
  metrics : metrics;
  host_s : float;        (* trimmed-mean host seconds per run *)
  host_cycles_per_s : float;  (* simulated cycles per host second *)
  minor_words : float;   (* trimmed-mean minor-heap words allocated per run *)
}

let metrics_of_result (r : Pmc_apps.Runner.result) : metrics =
  let s = r.Pmc_apps.Runner.summary in
  let sv = r.Pmc_apps.Runner.service in
  let svc f d = match sv with Some v -> f v | None -> d in
  {
    cycles = r.Pmc_apps.Runner.wall;
    noc_flits = s.Stats.noc_flits;
    noc_writes = s.Stats.noc_writes;
    flushes = s.Stats.flushes;
    lock_acquires = s.Stats.lock_acquires;
    lock_transfers = s.Stats.lock_transfers;
    dcache_misses = s.Stats.dcache_misses;
    instructions = s.Stats.instructions;
    utilization = Stats.utilization s;
    requests = svc (fun v -> v.Pmc_apps.Service.requests) 0;
    p50 = svc (fun v -> v.Pmc_apps.Service.p50) 0;
    p99 = svc (fun v -> v.Pmc_apps.Service.p99) 0;
    p999 = svc (fun v -> v.Pmc_apps.Service.p999) 0;
    lat_digest = svc (fun v -> v.Pmc_apps.Service.lat_digest) 0;
    throughput = svc (fun v -> v.Pmc_apps.Service.throughput) 0.0;
  }

let trimmed_mean xs =
  match xs with
  | [] -> 0.0
  | [ x ] -> x
  | _ :: _ :: _ ->
      let sorted = List.sort compare xs in
      let trimmed =
        if List.length sorted >= 3 then
          (* drop the fastest and slowest run *)
          List.filteri
            (fun i _ -> i > 0 && i < List.length sorted - 1)
            sorted
        else sorted
      in
      List.fold_left ( +. ) 0.0 trimmed /. float_of_int (List.length trimmed)

exception Unknown_app of string

let zero_metrics =
  {
    cycles = 0; noc_flits = 0; noc_writes = 0; flushes = 0;
    lock_acquires = 0; lock_transfers = 0; dcache_misses = 0;
    instructions = 0; utilization = 0.0; requests = 0; p50 = 0; p99 = 0;
    p999 = 0; lat_digest = 0; throughput = 0.0;
  }

(* A check case: time one of the model-plane workloads with the same
   discipline as a simulator case.  The work count lands in [cycles]
   (so the 2% cycle tolerance pins it exactly — it is deterministic)
   and the verdict digest in [lat_digest]; the gated rate is work per
   host second. *)
let run_check_case ~warmup ~repeat (c : Spec.case)
    (f : unit -> Checkload.outcome) : sample =
  let once () =
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let o = f () in
    let t1 = Unix.gettimeofday () in
    let w1 = Gc.minor_words () in
    (o, t1 -. t0, w1 -. w0)
  in
  for _ = 1 to warmup do
    ignore (once ())
  done;
  let repeat = max 1 repeat in
  let runs = List.init repeat (fun _ -> once ()) in
  let outs = List.map (fun (o, _, _) -> o) runs in
  let times = List.map (fun (_, t, _) -> t) runs in
  let words = List.map (fun (_, _, w) -> w) runs in
  let o0 = List.hd outs in
  let host_s = trimmed_mean times in
  {
    case = c;
    ok = List.for_all (fun (o : Checkload.outcome) -> o.Checkload.ok) outs;
    deterministic = List.for_all (fun o -> o = o0) outs;
    repeats = repeat;
    metrics =
      { zero_metrics with
        cycles = o0.Checkload.work;
        lat_digest = o0.Checkload.digest };
    host_s;
    host_cycles_per_s =
      (if host_s > 0.0 then float_of_int o0.Checkload.work /. host_s
       else 0.0);
    minor_words = trimmed_mean words;
  }

let run_sim_case ?max_cycles ~unbatched ~warmup ~repeat (c : Spec.case) :
    sample =
  let app =
    match Pmc_apps.Registry.find c.Spec.app with
    | Some a -> a
    | None -> raise (Unknown_app c.Spec.app)
  in
  let cfg =
    let base =
      { Config.default with cores = c.Spec.cores;
        topology = c.Spec.topology }
    in
    if unbatched then Config.unbatched base else base
  in
  let cfg =
    (* a per-request budget only ever tightens the livelock watchdog *)
    match max_cycles with
    | None -> cfg
    | Some m -> { cfg with Config.max_cycles = min m cfg.Config.max_cycles }
  in
  (* Monotonic-enough wall clock.  [Sys.time] is process-wide CPU time:
     it over-counts whenever anything else runs in the process, and under
     a parallel fan-out it would charge every case with the CPU burn of
     all concurrently running cases.  Per-case wall time is the quantity
     that stays meaningful at any [--jobs]. *)
  let once () =
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let r = Pmc_apps.Runner.run ~cfg app ~backend:c.Spec.backend
        ~scale:c.Spec.scale in
    let t1 = Unix.gettimeofday () in
    let w1 = Gc.minor_words () in
    (r, t1 -. t0, w1 -. w0)
  in
  for _ = 1 to warmup do
    ignore (once ())
  done;
  let repeat = max 1 repeat in
  let runs = List.init repeat (fun _ -> once ()) in
  let results = List.map (fun (r, _, _) -> r) runs in
  let times = List.map (fun (_, t, _) -> t) runs in
  let words = List.map (fun (_, _, w) -> w) runs in
  let first = List.hd results in
  let m0 = metrics_of_result first in
  let deterministic =
    List.for_all (fun r -> metrics_of_result r = m0) results
  in
  let host_s = trimmed_mean times in
  {
    case = c;
    ok = List.for_all Pmc_apps.Runner.ok results;
    deterministic;
    repeats = repeat;
    metrics = m0;
    host_s;
    host_cycles_per_s =
      (if host_s > 0.0 then float_of_int m0.cycles /. host_s else 0.0);
    minor_words = trimmed_mean words;
  }

let run_case ?max_cycles ~unbatched ~warmup ~repeat (c : Spec.case) :
    sample =
  match c.Spec.work with
  | Spec.Sim -> run_sim_case ?max_cycles ~unbatched ~warmup ~repeat c
  | Spec.Check_replay ->
      run_check_case ~warmup ~repeat c (fun () ->
          Checkload.replay ~procs:c.Spec.cores ~events:c.Spec.scale)
  | Spec.Check_enum ->
      run_check_case ~warmup ~repeat c (fun () -> Checkload.enum ())

(* ---------------- JSON (schema v5) ----------------

   v5 (this build): v4 plus the per-case [work] discriminator ("sim",
   "check_replay", "check_enum"; absent means sim, so every older
   report loads unchanged).  Check cases store their deterministic work
   count in [cycles] and their verdict digest in [lat_digest].
   v4: v3 plus the per-case [topology] (absent means star,
   so pre-topology reports load unchanged) and the served-traffic
   metrics [requests]/[p50]/[p99]/[p999]/[lat_digest]/[throughput]
   (absent or requests = 0 means the app records none).
   v3: v2 plus per-sample [host_cycles_per_s] (the gated host-speed
   metric) and [minor_words] (mean minor-heap allocation per run).  v1
   and v2 reports still load: the rate is reconstructed from
   cycles / host_s and minor_words defaults to absent (negative). *)

let schema_version = 5

let work_to_string = function
  | Spec.Sim -> "sim"
  | Spec.Check_replay -> "check_replay"
  | Spec.Check_enum -> "check_enum"

let work_of_string = function
  | "sim" -> Some Spec.Sim
  | "check_replay" -> Some Spec.Check_replay
  | "check_enum" -> Some Spec.Check_enum
  | _ -> None

let metrics_to_json (m : metrics) : Json.t =
  Json.Obj
    [
      ("cycles", Json.int m.cycles);
      ("noc_flits", Json.int m.noc_flits);
      ("noc_writes", Json.int m.noc_writes);
      ("flushes", Json.int m.flushes);
      ("lock_acquires", Json.int m.lock_acquires);
      ("lock_transfers", Json.int m.lock_transfers);
      ("dcache_misses", Json.int m.dcache_misses);
      ("instructions", Json.int m.instructions);
      ("utilization", Json.float m.utilization);
      ("requests", Json.int m.requests);
      ("p50", Json.int m.p50);
      ("p99", Json.int m.p99);
      ("p999", Json.int m.p999);
      ("lat_digest", Json.int m.lat_digest);
      ("throughput", Json.float m.throughput);
    ]

let sample_to_json (s : sample) : Json.t =
  Json.Obj
    [
      ("app", Json.Str s.case.Spec.app);
      ("work", Json.Str (work_to_string s.case.Spec.work));
      ("backend", Json.Str (Pmc.Backends.to_string s.case.Spec.backend));
      ("topology", Json.Str (Topology.to_string s.case.Spec.topology));
      ("cores", Json.int s.case.Spec.cores);
      ("scale", Json.int s.case.Spec.scale);
      ("ok", Json.Bool s.ok);
      ("deterministic", Json.Bool s.deterministic);
      ("repeats", Json.int s.repeats);
      ("metrics", metrics_to_json s.metrics);
      ("host_s", Json.float s.host_s);
      ("host_cycles_per_s", Json.float s.host_cycles_per_s);
      ("minor_words", Json.float s.minor_words);
    ]

let fail msg = failwith ("Pmc_bench.Measure: malformed report: " ^ msg)
let req what = function Some v -> v | None -> fail ("missing " ^ what)

let metrics_of_json (j : Json.t) : metrics =
  {
    cycles = req "cycles" (Json.get_int "cycles" j);
    noc_flits = req "noc_flits" (Json.get_int "noc_flits" j);
    noc_writes = req "noc_writes" (Json.get_int "noc_writes" j);
    flushes = req "flushes" (Json.get_int "flushes" j);
    lock_acquires = req "lock_acquires" (Json.get_int "lock_acquires" j);
    lock_transfers = req "lock_transfers" (Json.get_int "lock_transfers" j);
    dcache_misses = req "dcache_misses" (Json.get_int "dcache_misses" j);
    instructions = req "instructions" (Json.get_int "instructions" j);
    utilization = req "utilization" (Json.get_num "utilization" j);
    (* pre-v4 reports carry no served-traffic metrics *)
    requests = Option.value ~default:0 (Json.get_int "requests" j);
    p50 = Option.value ~default:0 (Json.get_int "p50" j);
    p99 = Option.value ~default:0 (Json.get_int "p99" j);
    p999 = Option.value ~default:0 (Json.get_int "p999" j);
    lat_digest = Option.value ~default:0 (Json.get_int "lat_digest" j);
    throughput = Option.value ~default:0.0 (Json.get_num "throughput" j);
  }

let sample_of_json (j : Json.t) : sample =
  let backend_s = req "backend" (Json.get_str "backend" j) in
  let backend =
    match Pmc.Backends.of_string backend_s with
    | Some b -> b
    | None -> fail ("unknown backend " ^ backend_s)
  in
  let metrics = metrics_of_json (req "metrics" (Json.member "metrics" j)) in
  let host_s = req "host_s" (Json.get_num "host_s" j) in
  let cores = req "cores" (Json.get_int "cores" j) in
  let topology =
    (* pre-v4 reports carry no topology — they are all star *)
    match Json.get_str "topology" j with
    | None -> Topology.Star
    | Some s -> (
        match Topology.resolve s ~cores with
        | Ok t -> t
        | Error e -> fail e)
  in
  let work =
    (* pre-v5 reports carry no work discriminator — all simulator runs *)
    match Json.get_str "work" j with
    | None -> Spec.Sim
    | Some s -> (
        match work_of_string s with
        | Some w -> w
        | None -> fail ("unknown work kind " ^ s))
  in
  {
    case =
      {
        Spec.app = req "app" (Json.get_str "app" j);
        backend;
        topology;
        cores;
        scale = req "scale" (Json.get_int "scale" j);
        work;
      };
    ok = req "ok" (Json.get_bool "ok" j);
    deterministic = req "deterministic" (Json.get_bool "deterministic" j);
    repeats = req "repeats" (Json.get_int "repeats" j);
    metrics;
    host_s;
    host_cycles_per_s =
      (* pre-v3 reports carry no rate — reconstruct it from the stored
         cycle count and host time so old baselines can still gate *)
      (match Json.get_num "host_cycles_per_s" j with
      | Some r -> r
      | None ->
          if host_s > 0.0 then float_of_int metrics.cycles /. host_s
          else 0.0);
    minor_words =
      (* -1 marks "not recorded" in pre-v3 reports *)
      Option.value ~default:(-1.0) (Json.get_num "minor_words" j);
  }

(* The numeric metrics a {!Compare} run can gate on, with accessors. *)
let metric_names =
  [ "cycles"; "noc_flits"; "noc_writes"; "flushes"; "lock_acquires";
    "lock_transfers"; "dcache_misses"; "instructions"; "requests";
    "p50"; "p99"; "p999"; "lat_digest" ]

let metric (m : metrics) = function
  | "cycles" -> float_of_int m.cycles
  | "noc_flits" -> float_of_int m.noc_flits
  | "noc_writes" -> float_of_int m.noc_writes
  | "flushes" -> float_of_int m.flushes
  | "lock_acquires" -> float_of_int m.lock_acquires
  | "lock_transfers" -> float_of_int m.lock_transfers
  | "dcache_misses" -> float_of_int m.dcache_misses
  | "instructions" -> float_of_int m.instructions
  | "requests" -> float_of_int m.requests
  | "p50" -> float_of_int m.p50
  | "p99" -> float_of_int m.p99
  | "p999" -> float_of_int m.p999
  | "lat_digest" -> float_of_int m.lat_digest
  | other -> invalid_arg ("Measure.metric: unknown metric " ^ other)
