(* What to benchmark: a suite is a list of (app, backend, topology,
   cores, scale) cases plus the measurement discipline (warmup runs,
   timed repeats, batched or unbatched machine).  The committed smoke
   suite is small enough for a CI gate; the full suite covers the whole
   registry; the scale suite runs the served-traffic apps on the big
   routed fabrics (256-tile mesh, 1024-tile hierarchy). *)

(* What a case exercises: a simulator run, or one of the two model-plane
   hot paths (the "check" suite).  Check cases reuse the same sample
   shape — [metrics.cycles] holds the deterministic work count (events
   replayed, states enumerated) and [host_cycles_per_s] the gated
   throughput rate. *)
type work =
  | Sim
  | Check_replay  (* History.check over a synthetic [scale]-event trace *)
  | Check_enum    (* Litmus.enumerate over the standard corpus *)

type case = {
  app : string;
  backend : Pmc.Backends.kind;
  topology : Pmc_sim.Topology.t;
  cores : int;
  scale : int;
  work : work;
}

type t = {
  label : string;
  suite : string;
  unbatched : bool;  (* run on Config.unbatched (the pre-batching model) *)
  warmup : int;      (* discarded runs before timing *)
  repeat : int;      (* timed runs; host time is outlier-trimmed *)
  cases : case list;
}

(* Star cases keep the historic id so baselines recorded before
   topologies existed still join in [Compare]. *)
let case_id (c : case) =
  match c.work with
  | Check_replay -> Printf.sprintf "check/replay/c%d/s%d" c.cores c.scale
  | Check_enum -> Printf.sprintf "check/enum/%s/s%d" c.app c.scale
  | Sim -> (
      match c.topology with
      | Pmc_sim.Topology.Star ->
          Printf.sprintf "%s/%s/c%d/s%d" c.app
            (Pmc.Backends.to_string c.backend)
            c.cores c.scale
      | t ->
          Printf.sprintf "%s/%s/%s/c%d/s%d" c.app
            (Pmc.Backends.to_string c.backend)
            (Pmc_sim.Topology.to_string t)
            c.cores c.scale)

let mk ?(topology = Pmc_sim.Topology.Star) ~cores backends apps =
  List.concat_map
    (fun (app, scale) ->
      List.map
        (fun backend ->
          { app; backend; topology; cores; scale; work = Sim })
        backends)
    apps

(* The CI gate: three kernels with distinct traffic shapes (lock-handover
   bound, halo-exchange bound, reduction bound) on every software
   coherency back-end, at the paper's 32-core geometry. *)
let smoke_cases =
  mk ~cores:32
    [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
      Pmc.Backends.Spm ]
    [ ("streaming", 32); ("stencil", 8); ("histogram", 64) ]

(* Everything in the registry, still at one geometry. *)
let full_cases =
  mk ~cores:32
    [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
      Pmc.Backends.Spm ]
    [
      ("radiosity", 512);
      ("raytrace", 128);
      ("volrend", 128);
      ("motion_est", 4);
      ("streaming", 32);
      ("stencil", 8);
      ("histogram", 64);
      ("reduce", 2048);
    ]

(* Served traffic on the big routed fabrics.  All five back-ends —
   including seqcst, the only suite that covers it — so the scale report
   answers "which Table II implementation keeps its latency tail at a
   thousand tiles".  The hierarchical tier runs the KV store only: the
   mailbox's celebrity actors make 1024-core runs needlessly slow for a
   CI-adjacent suite. *)
let all_backends =
  [ Pmc.Backends.Seqcst; Pmc.Backends.Nocc; Pmc.Backends.Swcc;
    Pmc.Backends.Dsm; Pmc.Backends.Spm ]

let scale_cases =
  mk ~topology:(Pmc_sim.Topology.Mesh { x = 16; y = 16 }) ~cores:256
    all_backends
    [ ("kv_store", 8); ("mailbox", 8) ]
  @ mk ~topology:(Pmc_sim.Topology.Hier { clusters = 32; size = 32 })
      ~cores:1024 all_backends
      [ ("kv_store", 4) ]

(* The model-plane throughput gate: replay a synthetic 200k-event trace
   through the incremental [History.check] (4 processes, the checker's
   cost is per-event × procs), and enumerate the standard litmus corpus
   under every semantics.  Both work counts are deterministic, so only
   the rate is host-dependent — it is gated by [Compare.host_rate_floor]
   like every simulator case. *)
let check_case ~app ~cores ~scale work =
  { app; backend = Pmc.Backends.Nocc; topology = Pmc_sim.Topology.Star;
    cores; scale; work }

let check_cases =
  [
    check_case ~app:"replay" ~cores:4 ~scale:200_000 Check_replay;
    check_case ~app:"corpus" ~cores:1 ~scale:1 Check_enum;
  ]

let suite ?(label = "bench") ?(unbatched = false) ?(warmup = 1) ?(repeat = 3)
    name =
  match name with
  | "smoke" -> Some { label; suite = name; unbatched; warmup; repeat;
                      cases = smoke_cases }
  | "full" -> Some { label; suite = name; unbatched; warmup; repeat;
                     cases = full_cases }
  | "scale" -> Some { label; suite = name; unbatched; warmup; repeat;
                      cases = scale_cases }
  | "check" -> Some { label; suite = name; unbatched; warmup; repeat;
                      cases = check_cases }
  (* the committed-baseline set: everything BENCH_BASELINE.json records,
     so one run regenerates the whole file *)
  | "ci" -> Some { label; suite = name; unbatched; warmup; repeat;
                   cases = smoke_cases @ check_cases }
  | _ -> None

let suite_names = [ "smoke"; "full"; "scale"; "check"; "ci" ]
