(* What to benchmark: a suite is a list of (app, backend, cores, scale)
   cases plus the measurement discipline (warmup runs, timed repeats,
   batched or unbatched machine).  The committed smoke suite is small
   enough for a CI gate; the full suite covers the whole registry. *)

type case = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
}

type t = {
  label : string;
  suite : string;
  unbatched : bool;  (* run on Config.unbatched (the pre-batching model) *)
  warmup : int;      (* discarded runs before timing *)
  repeat : int;      (* timed runs; host time is outlier-trimmed *)
  cases : case list;
}

let case_id (c : case) =
  Printf.sprintf "%s/%s/c%d/s%d" c.app
    (Pmc.Backends.to_string c.backend)
    c.cores c.scale

let mk ~cores backends apps =
  List.concat_map
    (fun (app, scale) ->
      List.map (fun backend -> { app; backend; cores; scale }) backends)
    apps

(* The CI gate: three kernels with distinct traffic shapes (lock-handover
   bound, halo-exchange bound, reduction bound) on every software
   coherency back-end, at the paper's 32-core geometry. *)
let smoke_cases =
  mk ~cores:32
    [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
      Pmc.Backends.Spm ]
    [ ("streaming", 32); ("stencil", 8); ("histogram", 64) ]

(* Everything in the registry, still at one geometry. *)
let full_cases =
  mk ~cores:32
    [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
      Pmc.Backends.Spm ]
    [
      ("radiosity", 512);
      ("raytrace", 128);
      ("volrend", 128);
      ("motion_est", 4);
      ("streaming", 32);
      ("stencil", 8);
      ("histogram", 64);
      ("reduce", 2048);
    ]

let suite ?(label = "bench") ?(unbatched = false) ?(warmup = 1) ?(repeat = 3)
    name =
  match name with
  | "smoke" -> Some { label; suite = name; unbatched; warmup; repeat;
                      cases = smoke_cases }
  | "full" -> Some { label; suite = name; unbatched; warmup; repeat;
                     cases = full_cases }
  | _ -> None

let suite_names = [ "smoke"; "full" ]
