(* What to benchmark: a suite is a list of (app, backend, topology,
   cores, scale) cases plus the measurement discipline (warmup runs,
   timed repeats, batched or unbatched machine).  The committed smoke
   suite is small enough for a CI gate; the full suite covers the whole
   registry; the scale suite runs the served-traffic apps on the big
   routed fabrics (256-tile mesh, 1024-tile hierarchy). *)

type case = {
  app : string;
  backend : Pmc.Backends.kind;
  topology : Pmc_sim.Topology.t;
  cores : int;
  scale : int;
}

type t = {
  label : string;
  suite : string;
  unbatched : bool;  (* run on Config.unbatched (the pre-batching model) *)
  warmup : int;      (* discarded runs before timing *)
  repeat : int;      (* timed runs; host time is outlier-trimmed *)
  cases : case list;
}

(* Star cases keep the historic id so baselines recorded before
   topologies existed still join in [Compare]. *)
let case_id (c : case) =
  match c.topology with
  | Pmc_sim.Topology.Star ->
      Printf.sprintf "%s/%s/c%d/s%d" c.app
        (Pmc.Backends.to_string c.backend)
        c.cores c.scale
  | t ->
      Printf.sprintf "%s/%s/%s/c%d/s%d" c.app
        (Pmc.Backends.to_string c.backend)
        (Pmc_sim.Topology.to_string t)
        c.cores c.scale

let mk ?(topology = Pmc_sim.Topology.Star) ~cores backends apps =
  List.concat_map
    (fun (app, scale) ->
      List.map
        (fun backend -> { app; backend; topology; cores; scale })
        backends)
    apps

(* The CI gate: three kernels with distinct traffic shapes (lock-handover
   bound, halo-exchange bound, reduction bound) on every software
   coherency back-end, at the paper's 32-core geometry. *)
let smoke_cases =
  mk ~cores:32
    [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
      Pmc.Backends.Spm ]
    [ ("streaming", 32); ("stencil", 8); ("histogram", 64) ]

(* Everything in the registry, still at one geometry. *)
let full_cases =
  mk ~cores:32
    [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Dsm;
      Pmc.Backends.Spm ]
    [
      ("radiosity", 512);
      ("raytrace", 128);
      ("volrend", 128);
      ("motion_est", 4);
      ("streaming", 32);
      ("stencil", 8);
      ("histogram", 64);
      ("reduce", 2048);
    ]

(* Served traffic on the big routed fabrics.  All five back-ends —
   including seqcst, the only suite that covers it — so the scale report
   answers "which Table II implementation keeps its latency tail at a
   thousand tiles".  The hierarchical tier runs the KV store only: the
   mailbox's celebrity actors make 1024-core runs needlessly slow for a
   CI-adjacent suite. *)
let all_backends =
  [ Pmc.Backends.Seqcst; Pmc.Backends.Nocc; Pmc.Backends.Swcc;
    Pmc.Backends.Dsm; Pmc.Backends.Spm ]

let scale_cases =
  mk ~topology:(Pmc_sim.Topology.Mesh { x = 16; y = 16 }) ~cores:256
    all_backends
    [ ("kv_store", 8); ("mailbox", 8) ]
  @ mk ~topology:(Pmc_sim.Topology.Hier { clusters = 32; size = 32 })
      ~cores:1024 all_backends
      [ ("kv_store", 4) ]

let suite ?(label = "bench") ?(unbatched = false) ?(warmup = 1) ?(repeat = 3)
    name =
  match name with
  | "smoke" -> Some { label; suite = name; unbatched; warmup; repeat;
                      cases = smoke_cases }
  | "full" -> Some { label; suite = name; unbatched; warmup; repeat;
                     cases = full_cases }
  | "scale" -> Some { label; suite = name; unbatched; warmup; repeat;
                      cases = scale_cases }
  | _ -> None

let suite_names = [ "smoke"; "full"; "scale" ]
