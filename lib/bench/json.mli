(** Minimal JSON tree, printer and parser for the benchmark reports.

    The repository carries no third-party JSON dependency; benchmark
    reports are small, written and read only by {!Pmc_bench}, so this
    deliberately supports just the subset the harness emits (objects,
    arrays, strings, numbers, booleans, null — ASCII [\u] escapes). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
val float : float -> t

val to_string : t -> string
(** Two-space indented, trailing newline — committed baselines diff
    readably. *)

val to_compact : t -> string
(** One line, no trailing newline and no spaces between tokens — the
    framing unit of {!Pmc_serve}'s newline-delimited wire protocol and
    the canonical form behind its verdict-cache keys. *)

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} — all return [None] on shape mismatch. *)

val member : string -> t -> t option
val to_num : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val get_str : string -> t -> string option
val get_int : string -> t -> int option
val get_num : string -> t -> float option
val get_bool : string -> t -> bool option
val get_list : string -> t -> t list option
