(** Diff two benchmark reports against per-metric tolerances — the
    regression gate behind [pmc_bench compare].

    Cases are joined on {!Spec.case_id}.  A metric whose fractional
    change exceeds its tolerance is a regression; checksum failures,
    nondeterministic samples and cases missing from the current report
    also fail the gate.  New cases are reported but pass (nothing to
    regress against). *)

type verdict = Within | Improved | Regressed

type row = {
  case_id : string;
  metric : string;
  base : float;
  cur : float;
  delta : float;  (** fractional change; [infinity] when base is 0 *)
  tol : float;
  verdict : verdict;
}

type host_row = {
  host_case_id : string;
  host_base : float;  (** host seconds per run in the baseline report *)
  host_cur : float;
  speedup : float;    (** [host_base /. host_cur]; > 1 = current faster *)
  rate_base : float;  (** simulated cycles per host second, baseline *)
  rate_cur : float;
  rate_ok : bool;
      (** [rate_cur >= host_rate_floor *. rate_base], or true when
          either rate is unusable (pre-v3 baseline, zero host time) *)
}

type outcome = {
  rows : row list;
  hosts : host_row list;
      (** Host speed of cases present in both reports.  Wall time and
          speedup are informational; the cycles-per-host-second rate is
          gated against {!host_rate_floor}. *)
  missing : string list;
  added : string list;
  broken : string list;
}

val host_band : float
(** Fractional band around 1.0 inside which a speedup prints as noise. *)

val host_rate_floor : float
(** A case fails the gate when its host-speed rate drops below this
    fraction of the baseline rate (0.6) — loose enough to absorb
    machine noise, tight enough to catch a hot path regressing by an
    allocation or a fiber switch per event. *)

val default_tolerances : (string * float) list
(** [cycles]/[noc_flits]/[flushes] at 2%, [lock_transfers] at 10% —
    drift absorption for benign scheduling shifts, not measurement
    noise (the simulator is deterministic). *)

val run :
  ?tolerances:(string * float) list ->
  ?gate_rate:bool ->
  ?subset:bool ->
  base:Report.t ->
  cur:Report.t ->
  unit ->
  outcome
(** [gate_rate] (default [true]) arms the host-speed rate gate.  Pass
    [false] when the two reports are arms of the same run sharing the
    host — the [--jobs] equality gates — where relative host speed
    carries no signal (host time is never part of the metric gate
    either way).

    [subset] (default [false]) accepts a current report that ran only a
    sub-suite of the baseline: baseline cases absent from it are not
    counted missing.  This lets one committed baseline (the [ci] suite)
    gate the [smoke] and [check] suites separately. *)

val regressions : outcome -> row list

val rate_failures : outcome -> host_row list
(** Cases whose host-speed rate fell through the floor. *)

val ok : outcome -> bool

val pp : Format.formatter -> outcome -> unit

val parse_tolerance_overrides : string -> (string * float) list
(** Parse ["cycles=0.05,noc_flits=0.1"] into {!default_tolerances} with
    the named entries replaced.
    @raise Invalid_argument on unknown metrics or bad values. *)
