(** Run one benchmark case and distil the simulator's counters into
    report metrics.

    The simulator is deterministic, so the architectural metrics are
    exact; the harness runs each case [repeat] times and {e asserts}
    repeatability ({!sample.deterministic}) rather than averaging it
    away.  Only host time is noisy — it is outlier-trimmed (drop min and
    max when at least three repeats ran) and averaged. *)

type metrics = {
  cycles : int;          (** engine wall time of the whole run *)
  noc_flits : int;       (** header + payload flits injected into the NoC *)
  noc_writes : int;      (** posted remote writes *)
  flushes : int;         (** cache flush/invalidate range operations *)
  lock_acquires : int;
  lock_transfers : int;  (** inter-tile lock handovers *)
  dcache_misses : int;
  instructions : int;
  utilization : float;   (** busy fraction of summed core time (Fig. 8) *)
  requests : int;
      (** served requests; [0] marks an app that records none (all
          pre-scale apps, and any report older than schema 4) *)
  p50 : int;             (** exact request-latency percentiles, in cycles *)
  p99 : int;
  p999 : int;
  lat_digest : int;
      (** splitmix64 digest of the per-request latency stream — pins
          every individual latency, gated exactly by [scale-smoke] *)
  throughput : float;    (** requests per 1000 simulated cycles *)
}

type sample = {
  case : Spec.case;
  ok : bool;             (** checksum matched the sequential reference *)
  deterministic : bool;  (** metrics identical across all repeats *)
  repeats : int;
  metrics : metrics;
  host_s : float;        (** trimmed-mean host seconds per run *)
  host_cycles_per_s : float;
      (** simulated cycles per host second — the gated host-speed
          metric; reconstructed from [cycles / host_s] when a pre-v3
          report is loaded *)
  minor_words : float;
      (** trimmed-mean minor-heap words allocated per run; -1 in
          reports older than schema 3 (not recorded) *)
}

exception Unknown_app of string

val run_case :
  ?max_cycles:int ->
  unbatched:bool -> warmup:int -> repeat:int -> Spec.case -> sample
(** Simulator cases run the registered application; check cases
    ({!Spec.work}) time the corresponding {!Checkload} workload with
    the same warmup/repeat/trim discipline, recording the work count in
    [metrics.cycles] and work-per-host-second in [host_cycles_per_s].
    [max_cycles] tightens the simulator's livelock watchdog to a
    per-request cycle budget (it can only lower the config's horizon) —
    the run raises {!Pmc_sim.Engine.Watchdog} past it.
    @raise Unknown_app when a simulator case names no registered
    application. *)

val trimmed_mean : float list -> float

val schema_version : int

val sample_to_json : sample -> Json.t
val sample_of_json : Json.t -> sample
(** @raise Failure on malformed input. *)

val metric_names : string list
(** The numeric metrics a {!Compare} run can gate on. *)

val metric : metrics -> string -> float
(** @raise Invalid_argument on names outside {!metric_names}. *)
