(** A benchmark report: the samples of one suite run plus a header
    (schema version, label, suite, machine variant) — the
    [BENCH_<label>.json] files the CI regression gate diffs. *)

type t = {
  schema : int;
  label : string;
  suite : string;
  unbatched : bool;
  samples : Measure.sample list;
}

val make : spec:Spec.t -> Measure.sample list -> t

val run : Spec.t -> t
(** Measure every case of the suite, in order. *)

val to_json : t -> Json.t

val of_json : Json.t -> t
(** @raise Failure on malformed input or an unsupported schema
    version. *)

val save : string -> t -> unit
val load : string -> t

val pp : Format.formatter -> t -> unit
