(** A benchmark report: the samples of one suite run plus a header
    (schema version, label, suite, machine variant) — the
    [BENCH_<label>.json] files the CI regression gate diffs. *)

type t = {
  schema : int;
  label : string;
  suite : string;
  unbatched : bool;
  jobs : int;
      (** Pool width the suite was measured with.  Architectural metrics
          are identical at any width; only [host_s] is affected.  1 for
          schema-v1 reports. *)
  samples : Measure.sample list;
}

val make : ?jobs:int -> spec:Spec.t -> Measure.sample list -> t

val run : ?pool:Pmc_par.Pool.t -> Spec.t -> t
(** Measure every case of the suite.  With a pool, cases fan out over
    its domains; the sample order (and every metric except [host_s]) is
    identical to the sequential run. *)

val to_json : t -> Json.t

val of_json : Json.t -> t
(** Reads schema 2 (current) and schema 1 (loads with [jobs = 1]).
    @raise Failure on malformed input or an unsupported schema
    version. *)

val save : string -> t -> unit
val load : string -> t

val pp : Format.formatter -> t -> unit
