(* Diff two benchmark reports against per-metric tolerances — the
   regression gate.

   Cases are joined on their stable id (app/backend/cores/scale).  For
   every gated metric the fractional change (cur - base) / base is
   computed; a change above the metric's tolerance is a regression, a
   change below the negative tolerance an improvement, anything in the
   band is noise.  Checksum failures and cases that disappeared from the
   current report always fail the gate; new cases are reported but do
   not fail (they have no baseline to regress against). *)

type verdict = Within | Improved | Regressed

type row = {
  case_id : string;
  metric : string;
  base : float;
  cur : float;
  delta : float;  (* fractional change; +inf when base = 0 and cur > 0 *)
  tol : float;
  verdict : verdict;
}

(* Host speed per case.  Wall time itself stays informational (noisy,
   machine-dependent), but the simulated-cycles-per-host-second *rate*
   is gated with a wide tolerance band: a case whose rate collapses
   below [host_rate_floor] of the baseline rate fails the gate.  The
   band is deliberately loose — it catches an order-of-magnitude
   slowdown (a hot path growing an allocation or a fiber switch), not
   scheduler jitter. *)
type host_row = {
  host_case_id : string;
  host_base : float;   (* seconds per run, baseline report *)
  host_cur : float;
  speedup : float;     (* base / cur; > 1 means the current run is faster *)
  rate_base : float;   (* simulated cycles per host second, baseline *)
  rate_cur : float;
  rate_ok : bool;      (* cur >= host_rate_floor * base (or not gateable) *)
}

type outcome = {
  rows : row list;
  hosts : host_row list;  (* cases present in both reports *)
  missing : string list;  (* cases in base absent from current *)
  added : string list;    (* cases in current absent from base *)
  broken : string list;   (* checksum or determinism failures in current *)
}

(* Speedups within ±[host_band] of 1.0 are reported as noise ("~"), not
   as a win or a loss. *)
let host_band = 0.10

(* The gated floor on the host-speed rate: a case fails when its
   simulated-cycles-per-host-second drop below this fraction of the
   baseline rate.  Cases where either report carries no usable rate
   (zero host time or a pre-v3 baseline without cycles) are not
   gated. *)
let host_rate_floor = 0.6

(* The architectural metrics worth gating, and how much drift to accept.
   The simulator is deterministic, so these tolerances absorb benign
   code-change effects (a scheduling shift moving a few lock handovers),
   not measurement noise. *)
let default_tolerances =
  [
    ("cycles", 0.02);
    ("noc_flits", 0.02);
    ("flushes", 0.02);
    ("lock_transfers", 0.10);
  ]

let judge ~tol ~base ~cur =
  let delta =
    if base = 0.0 then (if cur = 0.0 then 0.0 else infinity)
    else (cur -. base) /. base
  in
  let verdict =
    if delta > tol then Regressed
    else if delta < -.tol then Improved
    else Within
  in
  (delta, verdict)

let run ?(tolerances = default_tolerances) ?(gate_rate = true)
    ?(subset = false) ~(base : Report.t) ~(cur : Report.t) () : outcome =
  let index (r : Report.t) =
    List.map (fun (s : Measure.sample) -> (Spec.case_id s.Measure.case, s))
      r.Report.samples
  in
  let bi = index base and ci = index cur in
  let missing =
    (* [subset]: the current report deliberately ran a sub-suite of the
       (combined) baseline — baseline-only cases are not failures *)
    if subset then []
    else
      List.filter_map
        (fun (id, _) -> if List.mem_assoc id ci then None else Some id)
        bi
  in
  let added =
    List.filter_map
      (fun (id, _) -> if List.mem_assoc id bi then None else Some id)
      ci
  in
  let broken =
    List.filter_map
      (fun (id, (s : Measure.sample)) ->
        if not s.Measure.ok then Some (id ^ ": checksum mismatch")
        else if not s.Measure.deterministic then
          Some (id ^ ": nondeterministic metrics")
        else None)
      ci
  in
  let rows =
    List.concat_map
      (fun (id, (b : Measure.sample)) ->
        match List.assoc_opt id ci with
        | None -> []
        | Some c ->
            List.map
              (fun (metric, tol) ->
                let bv = Measure.metric b.Measure.metrics metric in
                let cv = Measure.metric c.Measure.metrics metric in
                let delta, verdict = judge ~tol ~base:bv ~cur:cv in
                { case_id = id; metric; base = bv; cur = cv; delta; tol;
                  verdict })
              tolerances)
      bi
  in
  let hosts =
    List.filter_map
      (fun (id, (b : Measure.sample)) ->
        match List.assoc_opt id ci with
        | None -> None
        | Some c ->
            let hb = b.Measure.host_s and hc = c.Measure.host_s in
            let speedup =
              if hc > 0.0 then hb /. hc
              else if hb = 0.0 then 1.0
              else infinity
            in
            let rb = b.Measure.host_cycles_per_s
            and rc = c.Measure.host_cycles_per_s in
            let rate_ok =
              (* only gate when asked to and both reports carry a real
                 rate — comparing two arms of the same run (the --jobs
                 equality gates) shares the host between arms, so their
                 relative host speed is meaningless *)
              (not gate_rate) || rb <= 0.0 || rc <= 0.0
              || rc >= host_rate_floor *. rb
            in
            Some
              { host_case_id = id; host_base = hb; host_cur = hc; speedup;
                rate_base = rb; rate_cur = rc; rate_ok })
      bi
  in
  { rows; hosts; missing; added; broken }

let regressions (o : outcome) =
  List.filter (fun r -> r.verdict = Regressed) o.rows

let rate_failures (o : outcome) =
  List.filter (fun h -> not h.rate_ok) o.hosts

let ok (o : outcome) =
  regressions o = [] && rate_failures o = [] && o.missing = []
  && o.broken = []

let pp_verdict ppf = function
  | Within -> Fmt.string ppf "ok"
  | Improved -> Fmt.string ppf "improved"
  | Regressed -> Fmt.string ppf "REGRESSED"

let pp ppf (o : outcome) =
  Fmt.pf ppf "%-26s %-14s %12s %12s %8s %6s  %s@." "case" "metric" "base"
    "current" "delta" "tol" "verdict";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-26s %-14s %12.0f %12.0f %+7.1f%% %5.1f%%  %a@." r.case_id
        r.metric r.base r.cur (100.0 *. r.delta) (100.0 *. r.tol) pp_verdict
        r.verdict)
    o.rows;
  if o.hosts <> [] then begin
    Fmt.pf ppf "@.%-26s %12s %12s %9s %11s %11s  (host speed; rate gated \
                at %.0f%% of baseline)@."
      "case" "base s" "current s" "speedup" "base c/s" "cur c/s"
      (100.0 *. host_rate_floor);
    List.iter
      (fun h ->
        Fmt.pf ppf "%-26s %12.4f %12.4f %8.2fx %11.3e %11.3e  %s@."
          h.host_case_id h.host_base h.host_cur h.speedup h.rate_base
          h.rate_cur
          (if not h.rate_ok then "RATE COLLAPSED"
           else if h.speedup >= 1.0 +. host_band then "faster"
           else if h.speedup <= 1.0 -. host_band then "slower"
           else "~"))
      o.hosts
  end;
  List.iter (fun id -> Fmt.pf ppf "MISSING from current report: %s@." id)
    o.missing;
  List.iter (fun id -> Fmt.pf ppf "new case (no baseline): %s@." id) o.added;
  List.iter (fun msg -> Fmt.pf ppf "BROKEN: %s@." msg) o.broken;
  let n_reg = List.length (regressions o) in
  if ok o then Fmt.pf ppf "@.compare: OK (no regressions)@."
  else
    Fmt.pf ppf
      "@.compare: FAILED (%d regression%s, %d rate collapse%s, %d missing, \
       %d broken)@."
      n_reg
      (if n_reg = 1 then "" else "s")
      (List.length (rate_failures o))
      (if List.length (rate_failures o) = 1 then "" else "s")
      (List.length o.missing) (List.length o.broken)

let parse_tolerance_overrides spec =
  (* "cycles=0.05,noc_flits=0.1" — unknown metric names are an error *)
  let parts = String.split_on_char ',' spec in
  List.fold_left
    (fun acc part ->
      let part = String.trim part in
      if part = "" then acc
      else
        match String.index_opt part '=' with
        | None -> invalid_arg ("tolerance override without '=': " ^ part)
        | Some i ->
            let name = String.sub part 0 i in
            let value = String.sub part (i + 1) (String.length part - i - 1) in
            if not (List.mem name Measure.metric_names) then
              invalid_arg ("unknown metric in tolerance override: " ^ name);
            let f =
              match float_of_string_opt value with
              | Some f when f >= 0.0 -> f
              | _ -> invalid_arg ("bad tolerance value: " ^ part)
            in
            (name, f) :: List.remove_assoc name acc)
    default_tolerances parts
