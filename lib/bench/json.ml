(* Minimal JSON tree, printer and recursive-descent parser — just enough
   for the benchmark reports.  The repository deliberately has no
   third-party JSON dependency; reports are small and written/read only
   by this harness, so a ~100-line implementation beats a vendored one. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)
let float f = Num f

(* ---------------- printing ---------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* Two-space indented output, so committed baselines diff readably. *)
let to_string (v : t) : string =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            go (indent + 2) x)
          xs;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\": ";
            go (indent + 2) x)
          kvs;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* One line, no trailing newline — the framing unit of {!Pmc_serve}'s
   newline-delimited wire protocol, and the canonical form hashed into
   verdict-cache keys (key stability depends on this printer never
   changing its spacing). *)
let to_compact (v : t) : string =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            go x)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* ASCII round-trips; anything else degrades to '?', which
                 is fine for the identifiers this harness writes. *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> Num f
    | None -> fail ("bad number " ^ str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let items = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !items)
        end
    | Some c -> if num_char_start c then parse_number () else fail "bad value"
  and num_char_start = function '0' .. '9' | '-' -> true | _ -> false in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- accessors ---------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_int v = Option.map int_of_float (to_num v)
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let get_str k v = Option.bind (member k v) to_str
let get_int k v = Option.bind (member k v) to_int
let get_num k v = Option.bind (member k v) to_num
let get_bool k v = Option.bind (member k v) to_bool
let get_list k v = Option.bind (member k v) to_list
