(* A benchmark report: the samples of one suite run plus enough header
   to interpret them later (schema version, label, suite, machine
   variant).  Serialized as the BENCH_<label>.json files the CI gate
   diffs. *)

type t = {
  schema : int;
  label : string;
  suite : string;
  unbatched : bool;
  samples : Measure.sample list;
}

let make ~(spec : Spec.t) samples =
  {
    schema = Measure.schema_version;
    label = spec.Spec.label;
    suite = spec.Spec.suite;
    unbatched = spec.Spec.unbatched;
    samples;
  }

let run (spec : Spec.t) : t =
  make ~spec
    (List.map
       (Measure.run_case ~unbatched:spec.Spec.unbatched
          ~warmup:spec.Spec.warmup ~repeat:spec.Spec.repeat)
       spec.Spec.cases)

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.int t.schema);
      ("label", Json.Str t.label);
      ("suite", Json.Str t.suite);
      ("unbatched", Json.Bool t.unbatched);
      ("results", Json.List (List.map Measure.sample_to_json t.samples));
    ]

let fail msg = failwith ("Pmc_bench.Report: " ^ msg)

let of_json (j : Json.t) : t =
  let schema =
    match Json.get_int "schema" j with
    | Some v -> v
    | None -> fail "missing schema field"
  in
  if schema <> Measure.schema_version then
    fail
      (Printf.sprintf "schema %d not supported (this build reads %d)" schema
         Measure.schema_version);
  {
    schema;
    label = Option.value ~default:"" (Json.get_str "label" j);
    suite = Option.value ~default:"" (Json.get_str "suite" j);
    unbatched = Option.value ~default:false (Json.get_bool "unbatched" j);
    samples =
      (match Json.get_list "results" j with
      | Some l -> List.map Measure.sample_of_json l
      | None -> fail "missing results field");
  }

let save path (t : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json t)))

let load path : t =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.parse content)

let pp ppf (t : t) =
  Fmt.pf ppf "label=%s suite=%s%s (%d samples)@." t.label t.suite
    (if t.unbatched then " [unbatched]" else "")
    (List.length t.samples);
  List.iter
    (fun (s : Measure.sample) ->
      let m = s.Measure.metrics in
      Fmt.pf ppf
        "  %-26s cycles=%-9d flits=%-8d flushes=%-6d handovers=%-5d %s@."
        (Spec.case_id s.Measure.case)
        m.Measure.cycles m.Measure.noc_flits m.Measure.flushes
        m.Measure.lock_transfers
        (if not s.Measure.ok then "CHECKSUM MISMATCH"
         else if not s.Measure.deterministic then "NONDETERMINISTIC"
         else "ok"))
    t.samples
