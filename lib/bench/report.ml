(* A benchmark report: the samples of one suite run plus enough header
   to interpret them later (schema version, label, suite, machine
   variant).  Serialized as the BENCH_<label>.json files the CI gate
   diffs. *)

type t = {
  schema : int;
  label : string;
  suite : string;
  unbatched : bool;
  jobs : int;  (* pool width the suite was measured with (schema >= 2) *)
  samples : Measure.sample list;
}

let make ?(jobs = 1) ~(spec : Spec.t) samples =
  {
    schema = Measure.schema_version;
    label = spec.Spec.label;
    suite = spec.Spec.suite;
    unbatched = spec.Spec.unbatched;
    jobs;
    samples;
  }

(* Cases are measured independently (one fresh machine per run), so the
   suite fans out over the pool; [Pool.map_ordered] keeps the report's
   sample order equal to the spec's case order at any width.  Only
   [host_s] may differ from a sequential run — every architectural
   metric is deterministic per case. *)
let run ?pool (spec : Spec.t) : t =
  let measure =
    Measure.run_case ~unbatched:spec.Spec.unbatched ~warmup:spec.Spec.warmup
      ~repeat:spec.Spec.repeat
  in
  match pool with
  | None -> make ~spec (List.map measure spec.Spec.cases)
  | Some pool ->
      make ~jobs:(Pmc_par.Pool.jobs pool) ~spec
        (Pmc_par.Pool.map_list_ordered pool spec.Spec.cases ~f:measure)

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.int t.schema);
      ("label", Json.Str t.label);
      ("suite", Json.Str t.suite);
      ("unbatched", Json.Bool t.unbatched);
      ("jobs", Json.int t.jobs);
      ("results", Json.List (List.map Measure.sample_to_json t.samples));
    ]

let fail msg = failwith ("Pmc_bench.Report: " ^ msg)

(* Reads the current schema and, for backward compatibility, v1 (no
   [jobs] field — those reports were sequential by construction). *)
let of_json (j : Json.t) : t =
  let schema =
    match Json.get_int "schema" j with
    | Some v -> v
    | None -> fail "missing schema field"
  in
  if schema < 1 || schema > Measure.schema_version then
    fail
      (Printf.sprintf "schema %d not supported (this build reads 1..%d)"
         schema Measure.schema_version);
  {
    schema;
    label = Option.value ~default:"" (Json.get_str "label" j);
    suite = Option.value ~default:"" (Json.get_str "suite" j);
    unbatched = Option.value ~default:false (Json.get_bool "unbatched" j);
    jobs = Option.value ~default:1 (Json.get_int "jobs" j);
    samples =
      (match Json.get_list "results" j with
      | Some l -> List.map Measure.sample_of_json l
      | None -> fail "missing results field");
  }

let save path (t : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json t)))

let load path : t =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.parse content)

let pp ppf (t : t) =
  Fmt.pf ppf "label=%s suite=%s%s (%d samples)@." t.label t.suite
    (if t.unbatched then " [unbatched]" else "")
    (List.length t.samples);
  List.iter
    (fun (s : Measure.sample) ->
      let m = s.Measure.metrics in
      Fmt.pf ppf
        "  %-26s cycles=%-9d flits=%-8d flushes=%-6d handovers=%-5d \
         rate=%-9s alloc=%-9s %s@."
        (Spec.case_id s.Measure.case)
        m.Measure.cycles m.Measure.noc_flits m.Measure.flushes
        m.Measure.lock_transfers
        (if s.Measure.host_cycles_per_s > 0.0 then
           Printf.sprintf "%.2gc/s" s.Measure.host_cycles_per_s
         else "-")
        (* minor-heap words per run: the zero-allocation work shows up
           directly in this column *)
        (if s.Measure.minor_words >= 0.0 then
           Printf.sprintf "%.2gw" s.Measure.minor_words
         else "-")
        (if not s.Measure.ok then "CHECKSUM MISMATCH"
         else if not s.Measure.deterministic then "NONDETERMINISTIC"
         else "ok");
      (* served-traffic cases report their request-latency tail too *)
      if m.Measure.requests > 0 then
        Fmt.pf ppf
          "  %-26s   %d req, %.3f req/kcycle, lat p50=%d p99=%d p999=%d@."
          "" m.Measure.requests m.Measure.throughput m.Measure.p50
          m.Measure.p99 m.Measure.p999)
    t.samples
