(** RADIOSITY-like kernel (Fig. 8): chaotic read-write sharing over an
    irregular task graph — the workload that profits least from software
    cache coherency.  Updates are commutative, so the checksum is
    schedule-independent. *)

val patches : int
(** Shared patches the task graph scatters its reads and writes over. *)

val patch_words : int
(** Words per patch object. *)

val app : Runner.app
(** The registered application (name ["radiosity"]). *)
