(* Chaos soak harness: run registered applications under seeded fault
   schedules and hold them to a hard contract — a run may complete with
   the right answer, or it may fail with a *typed* error, but it must
   never finish with a silently wrong answer or a trace the PMC model
   cannot explain.

   Each run arms the fault plane with [Config.chaos ~seed], records the
   full trace, and on completion (a) checks the app checksum against its
   sequential reference and (b) replays the trace through the formal
   model ([Pmc_model.History] via [Pmc_trace.Replay]).  The fault plane
   is deterministic, so every verdict is reproducible from
   (app, backend, cores, scale, seed, intensity) alone. *)

open Pmc_sim

type verdict =
  | Completed
      (* checksum matched and (when the trace was complete) the model
         replay found the run PMC-consistent *)
  | Typed_error of string
      (* the run died with a typed, attributable error — acceptable
         under injected faults *)
  | Wrong_result of { checksum : int64; reference : int64 }
  | Inconsistent of int  (* model replay violations: never acceptable *)

type report = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
  seed : int;
  intensity : float;
  verdict : verdict;
  wall : int;
  faults : Fault.counts;  (* snapshot of the run's fault counters *)
  events : int;           (* trace events captured *)
  dropped : int;          (* trace events lost to ring overflow *)
  replayed : bool;        (* model replay ran (complete trace only) *)
}

(* A soak accepts completed-correct and typed-error runs; silent wrong
   answers and model-inconsistent runs fail it. *)
let acceptable = function
  | Completed | Typed_error _ -> true
  | Wrong_result _ | Inconsistent _ -> false

let copy_counts (c : Fault.counts) : Fault.counts =
  {
    Fault.noc_drops = c.Fault.noc_drops;
    noc_corrupts = c.Fault.noc_corrupts;
    noc_delays = c.Fault.noc_delays;
    noc_retries = c.Fault.noc_retries;
    links_dead = c.Fault.links_dead;
    relay_deliveries = c.Fault.relay_deliveries;
    sdram_retries = c.Fault.sdram_retries;
    tile_stalls = c.Fault.tile_stalls;
    stall_cycles = c.Fault.stall_cycles;
    lock_timeouts = c.Fault.lock_timeouts;
    noc_draws = c.Fault.noc_draws;
    sdram_draws = c.Fault.sdram_draws;
    stall_draws = c.Fault.stall_draws;
    power_cut_draws = c.Fault.power_cut_draws;
    power_cuts = c.Fault.power_cuts;
  }

let zero_counts () : Fault.counts =
  {
    Fault.noc_drops = 0; noc_corrupts = 0; noc_delays = 0; noc_retries = 0;
    links_dead = 0; relay_deliveries = 0; sdram_retries = 0; tile_stalls = 0;
    stall_cycles = 0; lock_timeouts = 0; noc_draws = 0; sdram_draws = 0;
    stall_draws = 0; power_cut_draws = 0; power_cuts = 0;
  }

let total_injected (c : Fault.counts) =
  c.Fault.noc_drops + c.Fault.noc_corrupts + c.Fault.noc_delays
  + c.Fault.sdram_retries + c.Fault.tile_stalls + c.Fault.power_cuts

(* Accumulate one run's counters into a per-tag aggregate (the soak
   summary's denominator/numerator pairs). *)
let add_counts (acc : Fault.counts) (c : Fault.counts) =
  acc.Fault.noc_drops <- acc.Fault.noc_drops + c.Fault.noc_drops;
  acc.Fault.noc_corrupts <- acc.Fault.noc_corrupts + c.Fault.noc_corrupts;
  acc.Fault.noc_delays <- acc.Fault.noc_delays + c.Fault.noc_delays;
  acc.Fault.noc_retries <- acc.Fault.noc_retries + c.Fault.noc_retries;
  acc.Fault.links_dead <- acc.Fault.links_dead + c.Fault.links_dead;
  acc.Fault.relay_deliveries <-
    acc.Fault.relay_deliveries + c.Fault.relay_deliveries;
  acc.Fault.sdram_retries <- acc.Fault.sdram_retries + c.Fault.sdram_retries;
  acc.Fault.tile_stalls <- acc.Fault.tile_stalls + c.Fault.tile_stalls;
  acc.Fault.stall_cycles <- acc.Fault.stall_cycles + c.Fault.stall_cycles;
  acc.Fault.lock_timeouts <- acc.Fault.lock_timeouts + c.Fault.lock_timeouts;
  acc.Fault.noc_draws <- acc.Fault.noc_draws + c.Fault.noc_draws;
  acc.Fault.sdram_draws <- acc.Fault.sdram_draws + c.Fault.sdram_draws;
  acc.Fault.stall_draws <- acc.Fault.stall_draws + c.Fault.stall_draws;
  acc.Fault.power_cut_draws <-
    acc.Fault.power_cut_draws + c.Fault.power_cut_draws;
  acc.Fault.power_cuts <- acc.Fault.power_cuts + c.Fault.power_cuts

let total_counts (counts : Fault.counts list) : Fault.counts =
  let acc = zero_counts () in
  List.iter (add_counts acc) counts;
  acc

(* Above this many captured events a replay is skipped (reported as
   [replayed = false]) and the run is judged on its checksum alone.
   The incremental checker replays events in near-constant time each,
   so the budget is an order of magnitude wider than it was under the
   per-event-recomputation checker — at ~1M events/s it bounds a replay
   to well under a second. *)
let default_replay_budget = 100_000

let run_one ?(intensity = 1.0) ?(model_check = true)
    ?(replay_budget = default_replay_budget) ?capacity ?max_cycles
    ?(topology = Topology.Star) (a : Runner.app) ~backend ~cores ~scale
    ~seed : report =
  let cfg =
    Config.chaos ~intensity ~seed { Config.default with cores; topology }
  in
  let cfg =
    (* a per-request budget only ever tightens the livelock watchdog *)
    match max_cycles with
    | None -> cfg
    | Some m -> { cfg with Config.max_cycles = min m cfg.Config.max_cycles }
  in
  let recorder = ref None in
  let machine = ref None in
  let on_api api =
    machine := Some (Pmc.Api.machine api);
    recorder := Some (Pmc_trace.Recorder.attach ?capacity api)
  in
  let finish verdict ~replayed =
    let wall =
      match !machine with
      | Some m -> Engine.wall_time (Machine.engine m)
      | None -> 0
    in
    let faults =
      match !machine with
      | Some m -> copy_counts (Fault.counts (Machine.fault m))
      | None -> zero_counts ()
    in
    let events, dropped =
      match !recorder with
      | Some r ->
          (Pmc_trace.Recorder.recorded r, Pmc_trace.Recorder.dropped_total r)
      | None -> (0, 0)
    in
    {
      app = a.Runner.name; backend; cores; scale; seed; intensity; verdict;
      wall; faults; events; dropped; replayed;
    }
  in
  match Runner.run ~cfg ~on_api a ~backend ~scale with
  | r ->
      if not (Runner.ok r) then
        finish
          (Wrong_result
             {
               checksum = r.Runner.checksum;
               reference = r.Runner.reference;
             })
          ~replayed:false
      else begin
        let rec_ = Option.get !recorder in
        let dropped = Pmc_trace.Recorder.dropped_total rec_ in
        (* replay only complete traces: a ring overflow loses acquire or
           init events and would produce spurious verdicts *)
        if
          model_check && dropped = 0
          && Pmc_trace.Recorder.recorded rec_ <= replay_budget
        then begin
          let events = Pmc_trace.Recorder.events rec_ in
          let rep = Pmc_trace.Replay.check ~cores events in
          if Pmc_model.History.ok rep then finish Completed ~replayed:true
          else
            finish
              (Inconsistent (List.length rep.Pmc_model.History.violations))
              ~replayed:true
        end
        else finish Completed ~replayed:false
      end
  | exception Pmc_error.Error c ->
      finish (Typed_error (Pmc_error.to_string c)) ~replayed:false
  | exception Engine.Watchdog n ->
      finish (Typed_error (Printf.sprintf "watchdog: no progress by cycle %d" n))
        ~replayed:false
  | exception Engine.Deadlock msg ->
      finish (Typed_error ("deadlock: " ^ msg)) ~replayed:false
  | exception Engine.Power_cut cycle ->
      (* a soak config that also arms the power-cut tag loses the run at
         the cut; the crash checker ([Crash]) is the harness that judges
         what the cut left behind *)
      finish
        (Typed_error (Printf.sprintf "power cut at cycle %d" cycle))
        ~replayed:false

(* ---------------- the soak loop ---------------- *)

type soak = {
  reports : report list;  (* in run order *)
  total : int;
  completed : int;
  typed_errors : int;
  failed : int;           (* wrong results + inconsistent replays *)
  injected : int;         (* faults injected across all runs *)
}

(* The verdict totals of a report list — shared by [soak] and by
   [Pmc_jobs]' job-level soak reconstruction, so both summarize runs
   identically. *)
let summarize (reports : report list) : soak =
  let count p = List.length (List.filter p reports) in
  {
    reports;
    total = List.length reports;
    completed = count (fun r -> r.verdict = Completed);
    typed_errors =
      count (fun r -> match r.verdict with Typed_error _ -> true | _ -> false);
    failed = count (fun r -> not (acceptable r.verdict));
    injected =
      List.fold_left (fun acc r -> acc + total_injected r.faults) 0 reports;
  }

let soak ?(intensity = 1.0) ?(model_check = true) ?replay_budget ?capacity
    ?progress ?pool ?topology ~apps ~backend ~cores ~scale ~seeds () : soak =
  let one (a : Runner.app) seed =
    run_one ?capacity ?replay_budget ?topology ~intensity ~model_check a
      ~backend ~cores ~scale ~seed
  in
  let reports =
    match pool with
    | Some pool when Pmc_par.Pool.jobs pool > 1 ->
        (* Each (app, seed) run is a fresh machine with a deterministic
           fault schedule, so the wall fans out over the pool.  Verdict
           order — and therefore the printed soak — is the sequential
           order; progress fires once the whole wall has drained, since
           the workers must not interleave writes to the caller's
           formatter. *)
        let wall =
          List.concat_map
            (fun (a : Runner.app) -> List.map (fun seed -> (a, seed)) seeds)
            apps
        in
        let reports =
          Pmc_par.Pool.map_list_ordered pool wall ~f:(fun (a, seed) ->
              one a seed)
        in
        List.iter (fun r -> Option.iter (fun f -> f r) progress) reports;
        reports
    | _ ->
        List.concat_map
          (fun (a : Runner.app) ->
            List.map
              (fun seed ->
                let r = one a seed in
                Option.iter (fun f -> f r) progress;
                r)
              seeds)
          apps
  in
  summarize reports

let ok s = s.failed = 0

(* ---------------- zero-cost-when-off identity ---------------- *)

type identity = { identical : bool; detail : string }

(* The bit-identical baseline invariant: a machine whose chaos schedule
   is armed and then disarmed ([Config.no_faults (Config.chaos ...)])
   must produce exactly the run of the never-armed machine — same wall
   clock, same checksum, same per-category cycle accounts. *)
let zero_cost_identity (a : Runner.app) ~backend ~cores ~scale ~seed :
    identity =
  let base_cfg = { Config.default with cores } in
  let disarmed = Config.no_faults (Config.chaos ~seed base_cfg) in
  let base = Runner.run ~cfg:base_cfg a ~backend ~scale in
  let dis = Runner.run ~cfg:disarmed a ~backend ~scale in
  if
    base.Runner.wall = dis.Runner.wall
    && base.Runner.checksum = dis.Runner.checksum
    && base.Runner.summary = dis.Runner.summary
  then { identical = true; detail = "" }
  else
    {
      identical = false;
      detail =
        Printf.sprintf
          "wall %d vs %d, checksum %Ld vs %Ld, summaries %s"
          base.Runner.wall dis.Runner.wall base.Runner.checksum
          dis.Runner.checksum
          (if base.Runner.summary = dis.Runner.summary then "equal"
           else "differ");
    }

(* ---------------- printing ---------------- *)

let verdict_name = function
  | Completed -> "completed"
  | Typed_error _ -> "typed-error"
  | Wrong_result _ -> "WRONG-RESULT"
  | Inconsistent _ -> "INCONSISTENT"

let pp_verdict ppf = function
  | Completed -> Fmt.pf ppf "completed"
  | Typed_error msg -> Fmt.pf ppf "typed error: %s" msg
  | Wrong_result { checksum; reference } ->
      Fmt.pf ppf "WRONG RESULT: checksum %Ld, expected %Ld" checksum reference
  | Inconsistent n -> Fmt.pf ppf "INCONSISTENT: %d model violation(s)" n

let pp_counts ppf (c : Fault.counts) =
  Fmt.pf ppf
    "drops=%d corrupts=%d delays=%d retries=%d dead=%d relayed=%d \
     sdram=%d stalls=%d lock_to=%d"
    c.Fault.noc_drops c.Fault.noc_corrupts c.Fault.noc_delays
    c.Fault.noc_retries c.Fault.links_dead c.Fault.relay_deliveries
    c.Fault.sdram_retries c.Fault.tile_stalls c.Fault.lock_timeouts

let pp_report ppf (r : report) =
  Fmt.pf ppf "%-12s %-5s seed=%-5d wall=%-10d %a [%a]%s" r.app
    (Pmc.Backends.to_string r.backend)
    r.seed r.wall pp_verdict r.verdict pp_counts r.faults
    (if r.replayed then " replay=ok" else "")

let pp_soak ppf (s : soak) =
  Fmt.pf ppf
    "%d runs: %d completed, %d typed errors, %d failures; %d faults injected"
    s.total s.completed s.typed_errors s.failed s.injected

(* Per-tag injection summary: how often each fault tag consulted the
   hash stream (draws) and how often it fired (hits) — the at-a-glance
   answer to "did this soak actually exercise tag X?". *)
let pp_tag_summary ppf (c : Fault.counts) =
  let noc_hits =
    c.Fault.noc_drops + c.Fault.noc_corrupts + c.Fault.noc_delays
  in
  Fmt.pf ppf
    "fault tags (hits/draws): noc %d/%d, sdram %d/%d, stall %d/%d, \
     power-cut %d/%d"
    noc_hits c.Fault.noc_draws c.Fault.sdram_retries c.Fault.sdram_draws
    c.Fault.tile_stalls c.Fault.stall_draws c.Fault.power_cuts
    c.Fault.power_cut_draws

let soak_counts (s : soak) : Fault.counts =
  total_counts (List.map (fun r -> r.faults) s.reports)
