(** Chaos soak harness.

    Runs registered applications under seeded fault schedules
    ({!Pmc_sim.Config.chaos}) and holds them to a hard contract: a run
    may complete with the right answer, or fail with a typed error —
    but it must never finish with a silently wrong answer or a trace
    the PMC model cannot explain.  The fault plane is deterministic, so
    every verdict is reproducible from
    (app, backend, cores, scale, seed, intensity). *)

type verdict =
  | Completed
      (** Checksum matched the sequential reference; when the trace was
          complete, the model replay also found the run PMC-consistent. *)
  | Typed_error of string
      (** The run died with a typed, attributable error
          ({!Pmc_sim.Pmc_error.Error}, watchdog, deadlock) — acceptable
          under injected faults. *)
  | Wrong_result of { checksum : int64; reference : int64 }
      (** Silent wrong answer — always a harness failure. *)
  | Inconsistent of int
      (** The model replay found this many violations — always a
          harness failure. *)

type report = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
  seed : int;
  intensity : float;
  verdict : verdict;
  wall : int;
  faults : Pmc_sim.Fault.counts;  (** snapshot of the run's counters *)
  events : int;                   (** trace events captured *)
  dropped : int;                  (** trace events lost to ring overflow *)
  replayed : bool;                (** model replay ran (complete trace) *)
}

val acceptable : verdict -> bool
(** [Completed] and [Typed_error] are acceptable; [Wrong_result] and
    [Inconsistent] are not. *)

val total_injected : Pmc_sim.Fault.counts -> int
(** Faults actually injected (drops, corruptions, delays, SDRAM errors,
    stalls, power cuts) — protocol reactions (retries, relays) not
    included. *)

val add_counts : Pmc_sim.Fault.counts -> Pmc_sim.Fault.counts -> unit
(** [add_counts acc c] accumulates [c] into [acc] field by field. *)

val total_counts : Pmc_sim.Fault.counts list -> Pmc_sim.Fault.counts
(** Fresh aggregate of a list of per-run counter snapshots. *)

val default_replay_budget : int
(** Captured-event count above which the model replay is skipped
    (currently 100000).  The incremental {!Pmc_model.History.check}
    replays events in near-constant time each, so at the default budget
    a replay stays well under a second. *)

val run_one :
  ?intensity:float -> ?model_check:bool -> ?replay_budget:int ->
  ?capacity:int -> ?max_cycles:int -> ?topology:Pmc_sim.Topology.t ->
  Runner.app -> backend:Pmc.Backends.kind -> cores:int -> scale:int ->
  seed:int -> report
(** One traced run under [Config.chaos ~intensity ~seed].  The model
    replay runs only when [model_check] (default [true]), the trace ring
    never overflowed, and the trace holds at most [replay_budget] events
    (default {!default_replay_budget}); [capacity] sizes the per-core
    trace rings; [max_cycles] tightens the livelock watchdog to a
    per-request cycle budget (a budget overrun surfaces as a
    [Typed_error] watchdog verdict); [topology] (default
    {!Pmc_sim.Topology.Star}) selects the fabric — on routed fabrics the
    plane draws one outcome per physical link of each route (by-hop
    fault addressing, {!Pmc_sim.Fault.route_outcome}). *)

type soak = {
  reports : report list;  (** in run order *)
  total : int;
  completed : int;
  typed_errors : int;
  failed : int;           (** wrong results + inconsistent replays *)
  injected : int;         (** faults injected across all runs *)
}

val soak :
  ?intensity:float -> ?model_check:bool -> ?replay_budget:int ->
  ?capacity:int -> ?progress:(report -> unit) -> ?pool:Pmc_par.Pool.t ->
  ?topology:Pmc_sim.Topology.t ->
  apps:Runner.app list -> backend:Pmc.Backends.kind -> cores:int ->
  scale:int -> seeds:int list -> unit -> soak
(** The wall of seeds: every app × every seed.  With a [pool] wider than
    one domain the wall fans out in parallel; every verdict, the report
    order and the counters are identical to the sequential soak (each
    run is an independent deterministic universe), and [progress] is
    then called in report order after the wall drains instead of live.
    Without a pool (or at width 1) [progress] fires after each run, as
    before. *)

val ok : soak -> bool
(** No unacceptable verdicts. *)

val summarize : report list -> soak
(** The verdict totals of a report list — what {!soak} computes after
    its wall drains.  Exposed so job-oriented callers ({!Pmc_jobs}) that
    run reports one at a time summarize identically. *)

type identity = { identical : bool; detail : string }

val zero_cost_identity :
  Runner.app -> backend:Pmc.Backends.kind -> cores:int -> scale:int ->
  seed:int -> identity
(** The bit-identical-when-off invariant:
    [Config.no_faults (Config.chaos ~seed cfg)] must reproduce the
    never-armed run exactly — same wall clock, same checksum, same
    per-category cycle accounts. *)

val soak_counts : soak -> Pmc_sim.Fault.counts
(** Aggregate fault counters across every report of the soak. *)

val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit
val pp_counts : Format.formatter -> Pmc_sim.Fault.counts -> unit

val pp_tag_summary : Format.formatter -> Pmc_sim.Fault.counts -> unit
(** One line of per-tag hits/draws pairs (noc, sdram, stall, power-cut)
    — the soak's "did tag X actually fire?" summary. *)

val pp_report : Format.formatter -> report -> unit
val pp_soak : Format.formatter -> soak -> unit
