(* Sharded actor-mailbox service: the second served-traffic workload.

   Every core owns one mailbox — a two-word shared object holding
   (message count, running sum).  Each core issues [scale] sends: it
   picks a destination actor from a Zipfian popularity distribution over
   the cores (theta 1.2 — hotter than the KV store, so a handful of
   celebrity actors serialize most of the traffic on their owner's
   lock), then appends a message by bumping the destination's count and
   folding the message value into its sum under an exclusive scope.

   Like kv_store, the send stream is a pure hash of (Config.seed, core,
   send index) and the sum update is a commutative modular addition, so
   the final mailbox contents are interleaving-independent and the
   checksum matches the host reference on every back-end and fabric.
   Per-send latency (entry to exit of the destination scope) feeds the
   service summary. *)

open Pmc_sim

let theta = 1.2
let mask = 0x3FFFFFFF (* sums are additions mod 2^30 (commutative) *)

let dest_of zipf ~seed ~core ~i =
  Service.Zipf.sample zipf ~u:(Service.uniform_draw ~seed ~core ~i ~tag:1)

let payload ~seed ~core ~i =
  1 + Service.int_draw ~seed ~core ~i ~tag:2 ~bound:1021

let checksum_of boxes =
  let sum = ref 0L in
  Array.iteri
    (fun owner (count, total) ->
      sum :=
        Int64.add !sum
          (Runner.mix64
             (Int64.of_int ((owner * 1_000_003) + (count * 31) + total))))
    boxes;
  !sum

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let cores = cfg.Config.cores in
  let seed = cfg.Config.seed in
  let zipf = Service.Zipf.create ~n:cores ~theta in
  let box =
    Array.init cores (fun owner ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "mbox%d" owner) ~words:2)
  in
  for core = 0 to cores - 1 do
    Machine.spawn m ~core (fun () ->
        for i = 0 to scale - 1 do
          (* message marshalling work *)
          Machine.instr m 6;
          let dst = dest_of zipf ~seed ~core ~i in
          let v = payload ~seed ~core ~i in
          let t0 = Engine.now (Machine.engine m) in
          Pmc.Api.with_x api box.(dst) (fun () ->
              Pmc.Api.set_int api box.(dst) 0
                (Pmc.Api.get_int api box.(dst) 0 + 1);
              Pmc.Api.set_int api box.(dst) 1
                ((Pmc.Api.get_int api box.(dst) 1 + v) land mask));
          Service.record (Engine.now (Machine.engine m) - t0)
        done)
  done;
  fun () ->
    checksum_of
      (Array.map
         (fun o -> (Pmc.Api.peek_int api o 0, Pmc.Api.peek_int api o 1))
         box)

let reference ~seed ~cores ~scale =
  let zipf = Service.Zipf.create ~n:cores ~theta in
  let boxes = Array.make cores (0, 0) in
  for core = 0 to cores - 1 do
    for i = 0 to scale - 1 do
      let dst = dest_of zipf ~seed ~core ~i in
      let count, total = boxes.(dst) in
      boxes.(dst) <- (count + 1, (total + payload ~seed ~core ~i) land mask)
    done
  done;
  checksum_of boxes

let app : Runner.app =
  {
    name = "mailbox";
    code_footprint = 4 * 1024;
    jump_prob = 0.03;
    setup;
    reference;
  }
