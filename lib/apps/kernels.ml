(* Small shared-memory kernels used by tests and the ablation benches:
   a lock-partitioned histogram and a flag-chained parallel reduction.
   Both are classic annotation-discipline exercises: every shared write
   sits in an exclusive scope, inter-core hand-offs use the fence + flush
   publish pattern. *)

open Pmc_sim

module Histogram = struct
  let groups = 16
  let bins_per_group = 8

  (* deterministic sample stream per core *)
  let sample ~core ~i = ((core * 7919) + (i * 104729)) mod (groups * bins_per_group)

  let setup (api : Pmc.Api.t) ~scale =
    let m = Pmc.Api.machine api in
    let cfg = Machine.config m in
    let cores = cfg.Config.cores in
    let group =
      Array.init groups (fun g ->
          Pmc.Api.alloc_words api ~name:(Printf.sprintf "bins%d" g)
            ~words:bins_per_group)
    in
    for core = 0 to cores - 1 do
      Machine.spawn m ~core (fun () ->
          for i = 0 to scale - 1 do
            let s = sample ~core ~i in
            let g = s / bins_per_group and b = s mod bins_per_group in
            Machine.instr m 10;
            Pmc.Api.with_x api group.(g) (fun () ->
                let v = Pmc.Api.get_int api group.(g) b in
                Pmc.Api.set_int api group.(g) b (v + 1))
          done)
    done;
    fun () ->
      let sum = ref 0L in
      Array.iteri
        (fun g o ->
          for b = 0 to bins_per_group - 1 do
            sum :=
              Int64.add !sum
                (Runner.mix64
                   (Int64.of_int
                      (((g * bins_per_group) + b) * 100000
                      + Pmc.Api.peek_int api o b)))
          done)
        group;
      !sum

  let reference ~seed:_ ~cores ~scale =
    let bins = Array.make (groups * bins_per_group) 0 in
    for core = 0 to cores - 1 do
      for i = 0 to scale - 1 do
        let s = sample ~core ~i in
        bins.(s) <- bins.(s) + 1
      done
    done;
    let sum = ref 0L in
    Array.iteri
      (fun i v ->
        sum := Int64.add !sum (Runner.mix64 (Int64.of_int ((i * 100000) + v))))
      bins;
    !sum

  let app : Runner.app =
    {
      name = "histogram";
      code_footprint = 4 * 1024;
      jump_prob = 0.03;
      setup;
      reference;
    }
end

module Reduce = struct
  (* Linear hand-off reduction: core i adds its partial sum and flags core
     i+1 — a chain of Fig. 6 publishes. *)
  let value ~core ~i = ((core + 1) * 31) + (i * 7)

  let setup (api : Pmc.Api.t) ~scale =
    let m = Pmc.Api.machine api in
    let cfg = Machine.config m in
    let cores = cfg.Config.cores in
    let acc = Pmc.Api.alloc_words api ~name:"acc" ~words:1 in
    let turn = Pmc.Api.alloc_words api ~name:"turn" ~words:1 in
    for core = 0 to cores - 1 do
      Machine.spawn m ~core (fun () ->
          (* local computation *)
          let local = ref 0 in
          for i = 0 to scale - 1 do
            local := !local + value ~core ~i;
            Machine.instr m 5
          done;
          (* wait for my turn, then fold in and pass on *)
          ignore
            (Pmc.Api.poll_until_int api turn 0 (fun v -> v = core));
          Pmc.Api.fence api;
          Pmc.Api.with_x api acc (fun () ->
              let v = Pmc.Api.get_int api acc 0 in
              Pmc.Api.set_int api acc 0 (v + !local);
              Pmc.Api.fence api);
          Pmc.Api.with_x api turn (fun () ->
              Pmc.Api.set_int api turn 0 (core + 1);
              Pmc.Api.flush api turn))
    done;
    fun () -> Int64.of_int (Pmc.Api.peek_int api acc 0)

  let reference ~seed:_ ~cores ~scale =
    let total = ref 0 in
    for core = 0 to cores - 1 do
      for i = 0 to scale - 1 do
        total := !total + value ~core ~i
      done
    done;
    Int64.of_int !total

  let app : Runner.app =
    {
      name = "reduce";
      code_footprint = 4 * 1024;
      jump_prob = 0.02;
      setup;
      reference;
    }
end
