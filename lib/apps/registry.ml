(* All applications by name, for the CLI and the benches. *)

let all : Runner.app list =
  [
    Radiosity_like.app;
    Raytrace_like.app;
    Volrend_like.app;
    Motion_est.app;
    Streaming.app;
    Stencil.app;
    Kernels.Histogram.app;
    Kernels.Reduce.app;
    Kv_store.app;
    Mailbox.app;
  ]

let find name =
  List.find_opt (fun (a : Runner.app) -> a.Runner.name = name) all

let names = List.map (fun (a : Runner.app) -> a.Runner.name) all
