(** Full-search motion estimation — the SPM case study of Fig. 10 /
    Section VI-C.  The search window is read once per candidate vector,
    so staging it in the scratch-pad (entry_ro on the SPM back-end) beats
    refetching through a narrow-line cache. *)

val block_dim : int
(** Side length of a macroblock, in pixels. *)

val range : int
(** Search range in each direction around the co-located block. *)

val window_dim : int
(** Side length of the search window ([block_dim + 2*range]). *)

val window_words : int
(** Words per shared search-window object. *)

val block_words : int
(** Words per current-block object. *)

val candidates : int
(** Candidate vectors evaluated per block (full search). *)

val true_vector : block:int -> int * int
(** The planted motion vector of a block — full search must find it. *)

val app : Runner.app
(** The registered application (name ["motion"]). *)
