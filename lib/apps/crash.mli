(** Crash-consistency checker for the far-memory tier.

    One experiment runs an application on the [farmem] back-end with a
    seed-derived power cut armed ({!Pmc_sim.Config.crash}), snapshots
    the durable image the cut left behind, replays recovery
    ({!Pmc_sim.Farmem.recover}), and then requires

    - {b no torn object}: every shared object's recovered payload equals
      the state after its k-th publication (k = the object's durable
      publication count) — an [exit_x]/[flush] is fully visible or fully
      absent, never a byte mix; and
    - {b a PMC-consistent durable prefix}: the committed prefix of the
      recorded trace replays clean through {!Pmc_model.History}.

    The fault plane is deterministic: every verdict is reproducible from
    (app, backend, cores, scale, seed, window, log) alone, which is what
    lets the chaos-crash job kind cache verdicts. *)

type obj_check = {
  obj_name : string;
  words : int;
  committed : int;   (** durable publication count k (recovered media) *)
  published : int;   (** publication events recorded in the trace *)
  in_flight : bool;  (** k = published + 1: commit durable, event unsent *)
  torn_words : int;  (** payload words differing from publication k *)
}

type verdict =
  | Completed
      (** The cut landed past the wall; the full-run checks were clean. *)
  | Recovered
      (** The cut fired; no torn object and the durable prefix is
          PMC-consistent. *)
  | Torn of { objects : int; words : int }
      (** Some object's recovered payload mixes two publications. *)
  | Prefix_inconsistent of int
      (** Model violations found in the durable prefix. *)
  | Check_error of string
      (** The experiment itself failed (typed error before the cut,
          trace overflow, wrong backend, ...). *)

type report = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
  seed : int;
  window : int;      (** cut window the schedule was drawn from *)
  cut : int option;  (** cycle the cut fired at, [None] if it never did *)
  log : bool;        (** redo log armed ({!Pmc_sim.Config.t.farmem_log}) *)
  verdict : verdict;
  wall : int;
  objects : obj_check list;
  recovery : Pmc_sim.Farmem.recovery option;
  events : int;
  dropped : int;
  replayed : bool;   (** the durable-prefix model replay ran *)
}

val acceptable : verdict -> bool
(** [Completed] and [Recovered] pass; everything else fails. *)

val default_replay_budget : int
(** Prefix length above which the model replay is skipped (500000) —
    wide enough that a durable-prefix replay is effectively never
    skipped at crash-experiment geometry. *)

val crash_one :
  ?log:bool -> ?window:int -> ?capacity:int -> ?replay_budget:int ->
  ?model_check:bool -> ?topology:Pmc_sim.Topology.t -> Runner.app ->
  backend:Pmc.Backends.kind -> cores:int -> scale:int -> seed:int -> report
(** One crash experiment.  [log] (default [true]) arms the redo log —
    [false] selects the deliberately tearable word-by-word publication
    the checker must catch.  [window] bounds the cut cycle; when absent
    it is learned from a fault-free twin run's wall clock (the crash
    config leaves the access-plane fault path disarmed, so the pre-cut
    timeline is exactly the fault-free timeline). *)

type sweep = {
  reports : report list;  (** in run order *)
  total : int;
  cuts : int;             (** experiments whose cut actually fired *)
  recovered : int;
  completed : int;
  torn : int;
  inconsistent : int;
  errors : int;
}

val summarize : report list -> sweep
(** Verdict totals of a report list — what {!sweep} computes after its
    wall drains; exposed so job-oriented callers ({!Pmc_jobs}) summarize
    identically. *)

val ok : sweep -> bool
(** No torn objects, no inconsistent prefixes, no experiment errors. *)

val sweep :
  ?log:bool -> ?capacity:int -> ?replay_budget:int -> ?model_check:bool ->
  ?topology:Pmc_sim.Topology.t -> ?progress:(report -> unit) ->
  ?pool:Pmc_par.Pool.t -> apps:Runner.app list ->
  backend:Pmc.Backends.kind -> cores:int -> scale:int -> seeds:int list ->
  unit -> sweep
(** Every app × every seed.  The cut window is learned once per app from
    its fault-free twin, so all seeds of an app share one deterministic
    window.  With a [pool] wider than one domain the wall fans out in
    parallel with verdicts in sequential order ([progress] then fires
    after the wall drains), exactly like {!Chaos.soak}. *)

val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
val pp_sweep : Format.formatter -> sweep -> unit
