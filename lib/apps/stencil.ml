(* Jacobi stencil with halo exchange — the classic distributed-memory
   workload, written with PMC annotations: each core owns a strip of the
   grid (double-buffered in two shared objects), reads its neighbours'
   strips through read-only scopes, writes its own next strip under an
   exclusive scope, and all cores synchronize with the barrier (itself
   built from the annotations).

   On the DSM back-end this becomes the textbook halo pattern: the
   read-only entry pulls the neighbour's newest version over the NoC once
   per iteration, all inner reads stay in local memory.  One writer per
   strip and a barrier between iterations make the result bit-identical
   to the sequential reference on every back-end and core count. *)

open Pmc_sim

let width = 16
let rows_per_core = 4

let init_cell ~row ~col = Int32.of_int (((row * 31) + (col * 17)) land 0xFF)

let step_cell ~up ~down ~left ~right ~center =
  let ( + ) = Int32.add in
  Int32.div (up + down + left + right + center) 5l

(* Exact [int] image of [step_cell], used by the simulated kernel so the
   inner loop rides the unboxed accessors: the chained [Int32.add]s equal
   one sum truncated to 32 bits, and truncated division by 5 agrees with
   [Int32.div] on every representable operand. *)
let step_cell_int ~up ~down ~left ~right ~center =
  let s = up + down + left + right + center in
  ((s lsl 31) asr 31) / 5

(* Sequential reference on the full grid. *)
let reference ~seed:_ ~cores ~scale =
  let rows = cores * rows_per_core in
  let g =
    Array.init rows (fun r -> Array.init width (fun c -> init_cell ~row:r ~col:c))
  in
  let nxt = Array.make_matrix rows width 0l in
  for _ = 1 to scale do
    for r = 0 to rows - 1 do
      for c = 0 to width - 1 do
        let at r' c' =
          if r' < 0 || r' >= rows || c' < 0 || c' >= width then 0l
          else g.(r').(c')
        in
        nxt.(r).(c) <-
          step_cell ~up:(at (r - 1) c) ~down:(at (r + 1) c)
            ~left:(at r (c - 1)) ~right:(at r (c + 1)) ~center:g.(r).(c)
      done
    done;
    for r = 0 to rows - 1 do
      Array.blit nxt.(r) 0 g.(r) 0 width
    done
  done;
  let sum = ref 0L in
  Array.iter
    (Array.iter (fun v -> sum := Int64.add !sum (Int64.of_int32 v)))
    g;
  !sum

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let cores = cfg.Config.cores in
  let strip_words = rows_per_core * width in
  (* double-buffered strips: buf.(phase).(core) *)
  let buf =
    Array.init 2 (fun ph ->
        Array.init cores (fun c ->
            Pmc.Api.alloc_words api
              ~name:(Printf.sprintf "strip%d.%d" ph c)
              ~words:strip_words))
  in
  let barrier = Pmc.Barrier.create api ~name:"stencil" ~parties:cores in
  (* initial grid into phase-0 strips *)
  for c = 0 to cores - 1 do
    for r = 0 to rows_per_core - 1 do
      for col = 0 to width - 1 do
        Pmc.Api.poke api
          buf.(0).(c)
          ((r * width) + col)
          (init_cell ~row:((c * rows_per_core) + r) ~col)
      done
    done
  done;
  for core = 0 to cores - 1 do
    Machine.spawn m ~core (fun () ->
        for iter = 0 to scale - 1 do
          let cur = buf.(iter mod 2) and nxt = buf.((iter + 1) mod 2) in
          (* open the halo scopes: own strip plus existing neighbours *)
          Pmc.Api.entry_ro api cur.(core);
          if core > 0 then Pmc.Api.entry_ro api cur.(core - 1);
          if core < cores - 1 then Pmc.Api.entry_ro api cur.(core + 1);
          Pmc.Api.with_x api nxt.(core) (fun () ->
              for r = 0 to rows_per_core - 1 do
                for col = 0 to width - 1 do
                  let cell dr dc =
                    let gr = r + dr and gc = col + dc in
                    if gc < 0 || gc >= width then 0
                    else if gr >= 0 && gr < rows_per_core then
                      Pmc.Api.get_int api cur.(core) ((gr * width) + gc)
                    else if gr < 0 then
                      if core = 0 then 0
                      else
                        Pmc.Api.get_int api
                          cur.(core - 1)
                          (((rows_per_core - 1) * width) + gc)
                    else if core = cores - 1 then 0
                    else Pmc.Api.get_int api cur.(core + 1) gc
                  in
                  Pmc.Api.set_int api nxt.(core)
                    ((r * width) + col)
                    (step_cell_int ~up:(cell (-1) 0) ~down:(cell 1 0)
                       ~left:(cell 0 (-1)) ~right:(cell 0 1)
                       ~center:(cell 0 0));
                  Machine.instr m 8
                done
              done);
          (* close halo scopes in LIFO order *)
          if core < cores - 1 then Pmc.Api.exit_ro api cur.(core + 1);
          if core > 0 then Pmc.Api.exit_ro api cur.(core - 1);
          Pmc.Api.exit_ro api cur.(core);
          Pmc.Barrier.wait barrier
        done)
  done;
  fun () ->
    let final = buf.(scale mod 2) in
    let sum = ref 0L in
    Array.iter
      (fun strip ->
        for w = 0 to strip_words - 1 do
          sum := Int64.add !sum (Int64.of_int32 (Pmc.Api.peek api strip w))
        done)
      final;
    !sum

let app : Runner.app =
  {
    name = "stencil";
    code_footprint = 6 * 1024;
    jump_prob = 0.02;
    setup;
    reference;
  }
