(* VOLREND-like kernel.

   SPLASH-2 VOLREND casts rays through a shared, read-only voxel volume
   with an octree acceleration structure.  Memory signature: read-only
   sharing like RAYTRACE, but with more computation per shared read
   (transfer-function and compositing math) and a working set slightly
   larger than the L1 D-cache, so software cache coherency removes most —
   not quite all — shared read stalls.

   Structure: one core voxelizes the volume under exclusive scopes and
   publishes a ready flag; then every core renders its own rays, walking
   an octree path (repeated reads of the small octree objects — high
   reuse) and sampling voxel bricks along the ray (moderate reuse). *)

open Pmc_sim

let octree_nodes = 8
let node_words = 16   (* 64 B each: hot, high reuse *)
let bricks = 44
let brick_words = 64  (* 256 B each: 11 KiB volume — just fits the L1 *)
let samples_per_ray = 6
let compute_per_sample = 70

let voxel ~brick ~word = Int32.of_int (((brick * 257) + (word * 31)) land 0xFFFF)
let node_value ~node ~word = Int32.of_int (((node * 61) + word) land 0xFF)

(* The bricks a ray samples: a coherent front-to-back walk. *)
let ray_plan ~ray =
  let g = Prng.create (0xB0DE + ray) in
  let start = Prng.int g bricks in
  Array.init samples_per_ray (fun i -> (start + (i * 3)) mod bricks)

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let cores = cfg.Config.cores in
  let rays_per_core = scale in
  let octree =
    Array.init octree_nodes (fun i ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "node%d" i)
          ~words:node_words)
  in
  let volume =
    Array.init bricks (fun i ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "brick%d" i)
          ~words:brick_words)
  in
  let ready = Pmc.Api.alloc_words api ~name:"volume_ready" ~words:1 in
  let result = Pmc.Api.alloc_words api ~name:"image_sums" ~words:cores in
  let render core =
    ignore (Pmc.Api.poll_until_int api ready 0 (fun v -> v = 1));
    Pmc.Api.fence api;
    let acc = ref 0l in
    (* hold the octree read-only for the whole rendering phase (it is hot
       and tiny); bricks are entered per batch of rays *)
    Array.iter (fun n -> Pmc.Api.entry_ro api n) octree;
    (* the volume is read-only for the whole rendering phase; holding the
       scopes across all rays lets SWCC keep it cached (it barely fits) *)
    Array.iter (fun b -> Pmc.Api.entry_ro api b) volume;
    let batch = 16 in
    let r = ref 0 in
    while !r < rays_per_core do
      let n = min batch (rays_per_core - !r) in
      for i = 0 to n - 1 do
        let ray = (core * rays_per_core) + !r + i in
        (* octree descent: repeated hot reads *)
        for level = 0 to octree_nodes - 1 do
          ignore (Pmc.Api.get api octree.(level) (ray mod node_words))
        done;
        Array.iter
          (fun b ->
            for s = 0 to 3 do
              acc :=
                Int32.add !acc
                  (Pmc.Api.get api volume.(b) ((ray + (s * 7)) mod brick_words))
            done;
            Machine.instr m compute_per_sample)
          (ray_plan ~ray)
      done;
      r := !r + n
    done;
    List.iter
      (fun b -> Pmc.Api.exit_ro api b)
      (List.rev (Array.to_list volume));
    List.iter
      (fun n -> Pmc.Api.exit_ro api n)
      (List.rev (Array.to_list octree));
    Pmc.Api.with_x api result (fun () -> Pmc.Api.set api result core !acc)
  in
  Machine.spawn m ~core:0 (fun () ->
      Array.iteri
        (fun i node ->
          Pmc.Api.with_x api node (fun () ->
              for w = 0 to node_words - 1 do
                Pmc.Api.set api node w (node_value ~node:i ~word:w)
              done))
        octree;
      Array.iteri
        (fun i brick ->
          Pmc.Api.with_x api brick (fun () ->
              for w = 0 to brick_words - 1 do
                Pmc.Api.set api brick w (voxel ~brick:i ~word:w)
              done))
        volume;
      Pmc.Api.fence api;
      Pmc.Api.with_x api ready (fun () ->
          Pmc.Api.set api ready 0 1l;
          Pmc.Api.flush api ready);
      render 0);
  for core = 1 to cores - 1 do
    Machine.spawn m ~core (fun () -> render core)
  done;
  fun () ->
    let sum = ref 0L in
    for core = 0 to cores - 1 do
      sum := Int64.add !sum (Int64.of_int32 (Pmc.Api.peek api result core))
    done;
    !sum

let reference ~seed:_ ~cores ~scale =
  let sum = ref 0L in
  for core = 0 to cores - 1 do
    let acc = ref 0l in
    for r = 0 to scale - 1 do
      let ray = (core * scale) + r in
      Array.iter
        (fun b ->
          for s = 0 to 3 do
            acc :=
              Int32.add !acc (voxel ~brick:b ~word:((ray + (s * 7)) mod brick_words))
          done)
        (ray_plan ~ray)
    done;
    sum := Int64.add !sum (Int64.of_int32 !acc)
  done;
  !sum

let app : Runner.app =
  {
    name = "volrend";
    code_footprint = 12 * 1024;
    jump_prob = 0.03;
    setup;
    reference;
  }
