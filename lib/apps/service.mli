(** Served-traffic instrumentation for the scale workloads.

    The {!Kv_store} and {!Mailbox} apps model a machine serving a
    stream of requests.  This module provides their three shared
    pieces:

    - deterministic synthetic request streams — every draw is a pure
      splitmix64 hash of (seed, core, request index, tag), so each
      request's simulated latency is a pure function of
      (seed, topology, backend, cores);
    - a Zipfian popularity sampler for heavy-tailed key/actor choice;
    - a per-run request-latency recorder whose summary (throughput and
      exact p50/p99/p999 percentiles) lands in
      {!Runner.result.service} and, via the bench harness, in schema-4
      reports.

    The recorder is domain-local state reset by {!Runner.run} — the
    same discipline as the handle/lock id counters (DESIGN.md §11) —
    so concurrent runs on a {!Pmc_par.Pool} never share a stream. *)

val draw : seed:int -> core:int -> i:int -> tag:int -> int64
(** One independent uniform 64-bit draw per (seed, core, request index,
    tag) — the request-stream primitive. *)

val uniform_draw : seed:int -> core:int -> i:int -> tag:int -> float
(** {!draw} mapped to a uniform float in [0, 1). *)

val int_draw : seed:int -> core:int -> i:int -> tag:int -> bound:int -> int
(** {!draw} mapped to a uniform int in [0, bound); [0] when
    [bound <= 0]. *)

(** Zipfian popularity over ranks [0 .. n-1]: rank k is drawn with
    probability proportional to [1/(k+1)^theta].  The CDF is
    precomputed once; sampling is a binary search. *)
module Zipf : sig
  type t

  val create : n:int -> theta:float -> t
  val n : t -> int

  val sample : t -> u:float -> int
  (** Smallest rank whose CDF covers [u]; [u] must be in [0, 1). *)
end

val percentile : int array -> permille:int -> int
(** Exact nearest-rank percentile, no interpolation: the sample at
    1-based rank [ceil(permille·n/1000)] of the sorted array (rank
    clamped to [1, n]).  [permille] 500 = p50, 990 = p99, 999 = p999.
    Raises [Invalid_argument] on an empty array. *)

type summary = {
  requests : int;
  p50 : int;           (** exact request-latency percentiles, in cycles *)
  p99 : int;
  p999 : int;
  max_latency : int;
  throughput : float;  (** requests per 1000 simulated cycles *)
  lat_digest : int;
      (** splitmix64 fold of the latency stream in recorded order — one
          integer pinning every per-request latency, compared exactly by
          the purity property and the scale-smoke CI gate; masked to 49
          bits so it survives the float-backed bench JSON exactly *)
}

val reset : unit -> unit
(** Clear the calling domain's recorder.  {!Runner.run} calls this at
    the start of every run. *)

val record : int -> unit
(** Append one request latency (in simulated cycles) to the calling
    domain's recorder.  Apps call this once per completed request. *)

val take : wall:int -> unit -> summary option
(** Summarize and clear the recorder; [None] when the run recorded no
    requests (all pre-scale apps).  [wall] is the run's wall-clock cycle
    count, used for the throughput rate. *)

val pp_summary : Format.formatter -> summary -> unit
