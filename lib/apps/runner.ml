(* Application harness: run an annotated application on a chosen back-end
   and collect the Fig. 8-style statistics plus a determinism checksum.

   Every app is written once against [Pmc.Api]; the harness swaps the
   back-end underneath — the PMC portability claim, exercised end to end.
   The checksum must match the app's sequential reference on every
   back-end and core count; the integration tests enforce this. *)

open Pmc_sim

type app = {
  name : string;
  (* synthetic instruction-stream profile (Fig. 8 I-cache bars) *)
  code_footprint : int;
  jump_prob : float;
  (* Allocate shared state and spawn one task per core; returns a closure
     that collects the checksum after the run. *)
  setup : Pmc.Api.t -> scale:int -> (unit -> int64);
  (* Sequential reference checksum.  [seed] is the workload PRNG seed
     ([Config.seed]) — only the served-traffic apps consume it. *)
  reference : seed:int -> cores:int -> scale:int -> int64;
}

type result = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
  wall : int;                (* wall-clock cycles of the whole run *)
  summary : Stats.summary;
  service : Service.summary option;  (* served-traffic apps only *)
  checksum : int64;
  reference : int64;
}

let ok r = r.checksum = r.reference

let run ?(cfg = Config.default) ?on_api (a : app) ~backend ~scale : result =
  (* Each run is an independent universe: restart the domain-local
     handle/lock id counters so ids — which appear in traces and replay
     keys — are a pure function of (app, backend, cfg, scale), identical
     whether the run executes alone, after other runs, or concurrently
     with them on another domain of a [Pmc_par.Pool]. *)
  Pmc.Shared.reset_ids ();
  Pmc_lock.Dlock.reset_ids ();
  Service.reset ();
  let m = Machine.create cfg in
  for core = 0 to cfg.Config.cores - 1 do
    Machine.set_code m ~core ~footprint:a.code_footprint
      ~jump_prob:a.jump_prob
  done;
  let api = Pmc.Backends.create backend m in
  (* let observers (e.g. a trace recorder) hook the api before any task runs *)
  Option.iter (fun f -> f api) on_api;
  let collect = a.setup api ~scale in
  Machine.run m;
  (* explicit bindings: the checksum collection must run before the
     service summary is taken (both touch post-run state), and record
     field evaluation order is unspecified *)
  let wall = Engine.wall_time (Machine.engine m) in
  let checksum = collect () in
  let service = Service.take ~wall () in
  {
    app = a.name;
    backend;
    cores = cfg.Config.cores;
    scale;
    wall;
    summary = Stats.summarize (Machine.stats m);
    service;
    checksum;
    reference =
      a.reference ~seed:cfg.Config.seed ~cores:cfg.Config.cores ~scale;
  }

let pp_result ppf (r : result) =
  Fmt.pf ppf "%-12s %-7s cores=%-3d scale=%-5d wall=%-10d util=%5.1f%% %s@."
    r.app
    (Pmc.Backends.to_string r.backend)
    r.cores r.scale r.wall
    (100.0 *. Stats.utilization r.summary)
    (if ok r then "OK" else
       Printf.sprintf "CHECKSUM MISMATCH (%Ld vs %Ld)" r.checksum r.reference);
  Option.iter
    (fun s -> Fmt.pf ppf "  %a@." Service.pp_summary s)
    r.service

(* Mix for checksums (order-independent accumulation uses addition). *)
let mix64 (x : int64) =
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xFF51AFD7ED558CCDL in
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xC4CEB9FE1A85EC53L in
  Int64.logxor x (Int64.shift_right_logical x 33)
