(** Small shared-memory kernels for tests and ablations. *)

(** Lock-partitioned histogram: per-group bins updated under exclusive
    scopes. *)
module Histogram : sig
  val groups : int
  (** Lock groups the bins are partitioned into. *)

  val bins_per_group : int
  (** Bins guarded by each group's lock. *)

  val app : Runner.app
  (** The registered application (name ["histogram"]). *)
end

(** Linear hand-off reduction: a chain of Fig. 6 publishes. *)
module Reduce : sig
  val app : Runner.app
  (** The registered application (name ["reduce"]). *)
end
