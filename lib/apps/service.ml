(* Served-traffic instrumentation for the scale workloads.

   The kv_store and mailbox apps model a machine serving a stream of
   requests; besides the simulator's stall accounting they report
   service metrics: throughput and exact order-statistic request-latency
   percentiles (p50/p99/p999).  Three pieces live here:

     - deterministic synthetic request streams: every draw is a pure
       splitmix64 hash of (seed, core, request index, tag), so the
       stream — and therefore each request's simulated latency — is a
       pure function of (seed, topology, backend, cores), independent of
       host scheduling or [--jobs] width (the qcheck purity property);
     - a Zipfian popularity sampler for heavy-tailed key/actor choice;
     - a per-run latency recorder.  Like the handle/lock id counters
       (DESIGN.md §11) it is domain-local state reset by [Runner.run],
       so concurrent runs on a [Pmc_par.Pool] never share a stream.

   Percentiles are exact nearest-rank order statistics over the recorded
   stream — no interpolation: p(q) of n sorted samples is the sample at
   1-based rank ceil(q·n).  The unit tests pin this on known streams. *)

(* splitmix64 finalizer — same mixer as the fault plane's, kept separate
   so Service does not depend on Runner (which depends on Service). *)
let mix64 (x : int64) =
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xFF51AFD7ED558CCDL in
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xC4CEB9FE1A85EC53L in
  Int64.logxor x (Int64.shift_right_logical x 33)

let fold h v = mix64 (Int64.add h (Int64.of_int v))

(* One independent uniform 64-bit draw per (seed, core, request, tag). *)
let draw ~seed ~core ~i ~tag =
  fold (fold (fold (fold (mix64 (Int64.of_int (seed lxor 0x517C_C1B7)))
                      core) i) tag) 0

let uniform_draw ~seed ~core ~i ~tag =
  Int64.to_float (Int64.shift_right_logical (draw ~seed ~core ~i ~tag) 11)
  *. (1.0 /. 9007199254740992.0)

let int_draw ~seed ~core ~i ~tag ~bound =
  if bound <= 0 then 0
  else
    Int64.to_int
      (Int64.rem
         (Int64.shift_right_logical (draw ~seed ~core ~i ~tag) 1)
         (Int64.of_int bound))

(* ---------------- Zipfian popularity ---------------- *)

module Zipf = struct
  (* Precomputed CDF over ranks 1..n with weight 1/rank^theta; sampling
     is a binary search, so a request costs O(log n) host work. *)
  type t = { cdf : float array }

  let create ~n ~theta =
    if n < 1 then invalid_arg "Zipf.create: n < 1";
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for k = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) theta);
      cdf.(k) <- !total
    done;
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. !total
    done;
    { cdf }

  let n t = Array.length t.cdf

  (* Smallest rank whose CDF covers [u]; u in [0, 1). *)
  let sample t ~u =
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo
end

(* ---------------- exact percentiles ---------------- *)

(* Nearest-rank on a sorted copy: the sample at 1-based rank
   ceil(permille·n/1000), computed in integers so there is no float
   rounding to get wrong.  permille 500 = p50, 990 = p99, 999 = p999. *)
let percentile xs ~permille =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Service.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = min n (max 1 (((permille * n) + 999) / 1000)) in
  sorted.(rank - 1)

(* ---------------- the per-run recorder ---------------- *)

type summary = {
  requests : int;
  p50 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  throughput : float;  (* requests per 1000 simulated cycles *)
  lat_digest : int;
      (* splitmix64 fold of the latency stream in recorded order — one
         integer that pins every per-request latency, compared exactly
         by the purity property and the scale-smoke CI gate *)
}

type recorder = { mutable buf : int array; mutable n : int }

let key = Domain.DLS.new_key (fun () -> { buf = [||]; n = 0 })

let reset () =
  let r = Domain.DLS.get key in
  r.n <- 0

let record lat =
  let r = Domain.DLS.get key in
  if r.n >= Array.length r.buf then begin
    let cap = max 1024 (2 * Array.length r.buf) in
    let buf = Array.make cap 0 in
    Array.blit r.buf 0 buf 0 r.n;
    r.buf <- buf
  end;
  r.buf.(r.n) <- lat;
  r.n <- r.n + 1

let take ~wall () =
  let r = Domain.DLS.get key in
  if r.n = 0 then None
  else begin
    let xs = Array.sub r.buf 0 r.n in
    let digest = ref (Int64.of_int r.n) in
    Array.iter (fun lat -> digest := fold !digest lat) xs;
    let s =
      {
        requests = r.n;
        p50 = percentile xs ~permille:500;
        p99 = percentile xs ~permille:990;
        p999 = percentile xs ~permille:999;
        max_latency = Array.fold_left max 0 xs;
        throughput =
          (if wall > 0 then 1000.0 *. float_of_int r.n /. float_of_int wall
           else 0.0);
        (* masked to 49 bits: the bench JSON layer stores numbers as
           floats and prints integers exactly only below 1e15 *)
        lat_digest = Int64.to_int (Int64.logand !digest 0x1FFFFFFFFFFFFL);
      }
    in
    r.n <- 0;
    Some s
  end

let pp_summary ppf s =
  Fmt.pf ppf "%d req, %.3f req/kcycle, lat p50=%d p99=%d p999=%d max=%d"
    s.requests s.throughput s.p50 s.p99 s.p999 s.max_latency
