(* Zipfian keyed key-value store: the served-traffic workload of the
   scale suite.

   The store is [shards] multi-word shared objects of [slots] values
   each.  Every core issues [scale] requests against it: a request picks
   a key from a Zipfian popularity distribution (heavy-tailed — a few
   keys absorb most of the traffic, so the hot shards' locks and
   replicas are genuinely contended), then either reads the key under a
   read-only scope (90%) or bumps it under an exclusive scope (10%).

   Determinism on every back-end and fabric: the request stream is a
   pure hash of (Config.seed, core, request index), and updates are
   commutative modular additions, so the final store contents — and
   therefore the checksum — depend only on the multiset of puts, not on
   the interleaving.  Reads feed latency accounting, never the checksum.
   Each request's latency (entry to exit of its scope, in simulated
   cycles) is recorded with [Service.record]; the harness reports
   throughput and exact p50/p99/p999 over the stream. *)

open Pmc_sim

let shards = 64
let slots = 8          (* values per shard *)
let keys = shards * slots
let theta = 0.99       (* YCSB-style skew *)
let put_permille = 100 (* 10% of requests are puts *)
let mask = 0x3FFFFFFF  (* updates are additions mod 2^30 (commutative) *)

let key_of zipf ~seed ~core ~i =
  Service.Zipf.sample zipf ~u:(Service.uniform_draw ~seed ~core ~i ~tag:1)

let is_put ~seed ~core ~i =
  Service.int_draw ~seed ~core ~i ~tag:2 ~bound:1000 < put_permille

let delta ~seed ~core ~i =
  1 + Service.int_draw ~seed ~core ~i ~tag:3 ~bound:255

let checksum_of values =
  let sum = ref 0L in
  Array.iteri
    (fun k v ->
      sum :=
        Int64.add !sum
          (Runner.mix64 (Int64.of_int ((k * 1_000_003) + v))))
    values;
  !sum

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let cores = cfg.Config.cores in
  let seed = cfg.Config.seed in
  let zipf = Service.Zipf.create ~n:keys ~theta in
  let shard =
    Array.init shards (fun s ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "kv%d" s) ~words:slots)
  in
  for core = 0 to cores - 1 do
    Machine.spawn m ~core (fun () ->
        for i = 0 to scale - 1 do
          (* request parsing / dispatch work *)
          Machine.instr m 8;
          let key = key_of zipf ~seed ~core ~i in
          let s = key / slots and b = key mod slots in
          let t0 = Engine.now (Machine.engine m) in
          if is_put ~seed ~core ~i then
            Pmc.Api.with_x api shard.(s) (fun () ->
                let v = Pmc.Api.get_int api shard.(s) b in
                Pmc.Api.set_int api shard.(s) b
                  ((v + delta ~seed ~core ~i) land mask))
          else
            Pmc.Api.with_ro api shard.(s) (fun () ->
                ignore (Pmc.Api.get_int api shard.(s) b));
          Service.record (Engine.now (Machine.engine m) - t0)
        done)
  done;
  fun () ->
    let values = Array.make keys 0 in
    Array.iteri
      (fun s o ->
        for b = 0 to slots - 1 do
          values.((s * slots) + b) <- Pmc.Api.peek_int api o b
        done)
      shard;
    checksum_of values

let reference ~seed ~cores ~scale =
  let zipf = Service.Zipf.create ~n:keys ~theta in
  let values = Array.make keys 0 in
  for core = 0 to cores - 1 do
    for i = 0 to scale - 1 do
      if is_put ~seed ~core ~i then begin
        let key = key_of zipf ~seed ~core ~i in
        values.(key) <- (values.(key) + delta ~seed ~core ~i) land mask
      end
    done
  done;
  checksum_of values

let app : Runner.app =
  {
    name = "kv_store";
    code_footprint = 6 * 1024;
    jump_prob = 0.04;
    setup;
    reference;
  }
