(** Three-stage streaming pipeline over the Fig. 9 broadcast FIFO — the
    distributed-memory use case of Section VI-B.  On the DSM back-end all
    pointer polling stays in local memories. *)

val elem_words : int
(** Words per stream element. *)

val fifo_depth : int
(** Slots in each inter-stage FIFO. *)

val app : Runner.app
(** The registered application (name ["streaming"]); needs at least
    three cores (source, filter, sink). *)
