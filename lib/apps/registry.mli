(** All applications by name, for the CLI and the benches. *)

val all : Runner.app list
(** Every registered application, in registration order — the paper's
    eight workloads plus the served-traffic apps ({!Kv_store},
    {!Mailbox}). *)

val find : string -> Runner.app option
(** Look an application up by its {!Runner.app.name}. *)

val names : string list
(** The names of {!all}, for CLI help and error messages. *)
