(* Streaming pipeline over the multi-reader/multi-writer FIFO of Fig. 9 —
   the distributed-memory use case of Section VI-B ("such FIFO in
   combination with distributed memory is useful in streaming
   applications").

   A three-stage pipeline: a source produces samples, every filter core
   consumes the *same* stream (the FIFO is a broadcast FIFO: the writer
   waits until all readers got each slot), transforms its samples and
   pushes its partial results into a collection FIFO drained by a sink.

   On the DSM back-end all pointer polling happens in local memories, so
   stages never disturb each other — the property the paper highlights. *)

open Pmc_sim

let elem_words = 4
let fifo_depth = 8

let transform ~filter (v : int32) =
  Int32.add (Int32.mul v (Int32.of_int (filter + 3))) (Int32.of_int filter)

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let cores = cfg.Config.cores in
  let filters = max 1 (cores - 2) in
  let samples = scale in
  let feed =
    Pmc.Fifo.create api ~name:"feed" ~depth:fifo_depth ~elem_words
      ~readers:filters
  in
  let out =
    Pmc.Fifo.create api ~name:"out" ~depth:fifo_depth ~elem_words ~readers:1
  in
  (* source on core 0 *)
  Machine.spawn m ~core:0 (fun () ->
      for s = 0 to samples - 1 do
        let v = Int32.of_int ((s * 13) + 1) in
        Pmc.Fifo.push feed
          (Array.init elem_words (fun w ->
               Int32.add v (Int32.of_int w)));
        Machine.instr m 20
      done);
  (* filters on cores 1..filters *)
  for f = 0 to filters - 1 do
    Machine.spawn m ~core:(1 + f) (fun () ->
        for _ = 0 to samples - 1 do
          let d = Pmc.Fifo.pop feed ~reader:f in
          Machine.instr m 40;
          Pmc.Fifo.push out (Array.map (transform ~filter:f) d)
        done)
  done;
  (* sink on the last core *)
  let sink_total = ref 0L in
  Machine.spawn m ~core:(cores - 1) (fun () ->
      for _ = 0 to (samples * filters) - 1 do
        let d = Pmc.Fifo.pop out ~reader:0 in
        Array.iter
          (fun v -> sink_total := Int64.add !sink_total (Int64.of_int32 v))
          d
      done);
  fun () -> !sink_total

let reference ~seed:_ ~cores ~scale =
  let filters = max 1 (cores - 2) in
  let total = ref 0L in
  for s = 0 to scale - 1 do
    let v = Int32.of_int ((s * 13) + 1) in
    for f = 0 to filters - 1 do
      for w = 0 to elem_words - 1 do
        let x = transform ~filter:f (Int32.add v (Int32.of_int w)) in
        total := Int64.add !total (Int64.of_int32 x)
      done
    done
  done;
  !total

let app : Runner.app =
  {
    name = "streaming";
    code_footprint = 8 * 1024;
    jump_prob = 0.04;
    setup;
    reference;
  }
