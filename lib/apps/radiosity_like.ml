(* RADIOSITY-like kernel.

   SPLASH-2 RADIOSITY iteratively redistributes energy between patches of
   a scene; its distinguishing memory behaviour — the reason it profits
   least from software cache coherency in Fig. 8 — is that it "addresses
   and updates the memory in a chaotic way": tasks read a few random
   patches and then *write* a few random patches, so shared data is
   exclusive-locked often, flushed often, and exhibits little reuse.

   This kernel reproduces that signature: a dynamically balanced task
   queue; each task reads [reads_per_task] random patches (read-only
   scopes), computes, and accumulates energy into [writes_per_task] random
   patches (exclusive scopes).  All updates are commutative wrap-around
   additions whose deltas depend only on the task id, so the final state
   is deterministic under any interleaving — the checksum catches any
   coherence bug on any back-end. *)

open Pmc_sim

let patches = 48
let patch_words = 16  (* 64 bytes: 2 cache lines *)
let reads_per_task = 2
let writes_per_task = 1
let compute_per_task = 1200
let task_batch = 4

(* Deterministic per-task behaviour, independent of which core runs it. *)
let task_plan ~task =
  let g = Prng.create (0x5EED + task) in
  let reads = Array.init reads_per_task (fun _ -> Prng.int g patches) in
  let writes = Array.init writes_per_task (fun _ -> Prng.int g patches) in
  let delta =
    Array.init writes_per_task (fun i ->
        Int32.of_int (Prng.int g 1000 + i + 1))
  in
  (reads, writes, delta)

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let total_tasks = scale in
  let patch =
    Array.init patches (fun i ->
        Pmc.Api.alloc_words api
          ~name:(Printf.sprintf "patch%d" i)
          ~words:patch_words)
  in
  let next_task = Pmc.Api.alloc_words api ~name:"next_task" ~words:1 in
  let worker () =
    let continue_ = ref true in
    while !continue_ do
      (* dynamic load balancing: grab a batch of task ids *)
      let first =
        Pmc.Api.with_x api next_task (fun () ->
            let t = Pmc.Api.get_int api next_task 0 in
            if t < total_tasks then
              Pmc.Api.set_int api next_task 0 (min total_tasks (t + task_batch));
            t)
      in
      if first >= total_tasks then continue_ := false
      else
        for task = first to min (total_tasks - 1) (first + task_batch - 1) do
        let reads, writes, delta = task_plan ~task in
        (* gather energy from random patches *)
        Array.iter
          (fun p ->
            Pmc.Api.with_ro api patch.(p) (fun () ->
                for w = 0 to patch_words - 1 do
                  ignore (Pmc.Api.get api patch.(p) w)
                done))
          reads;
        Machine.instr m compute_per_task;
        (* scatter: chaotic exclusive updates, one patch at a time *)
        Array.iteri
          (fun i p ->
            Pmc.Api.with_x api patch.(p) (fun () ->
                for w = 0 to patch_words - 1 do
                  let v = Pmc.Api.get api patch.(p) w in
                  Pmc.Api.set api patch.(p) w (Int32.add v delta.(i))
                done))
          writes
        done
    done
  in
  for core = 0 to cfg.Config.cores - 1 do
    Machine.spawn m ~core worker
  done;
  fun () ->
    let sum = ref 0L in
    Array.iter
      (fun p ->
        for w = 0 to patch_words - 1 do
          sum :=
            Int64.add !sum
              (Int64.of_int32 (Pmc.Api.peek api p w))
        done)
      patch;
    !sum

let reference ~seed:_ ~cores:_ ~scale =
  let state = Array.make (patches * patch_words) 0l in
  for task = 0 to scale - 1 do
    let _, writes, delta = task_plan ~task in
    Array.iteri
      (fun i p ->
        for w = 0 to patch_words - 1 do
          let idx = (p * patch_words) + w in
          state.(idx) <- Int32.add state.(idx) delta.(i)
        done)
      writes
  done;
  Array.fold_left
    (fun acc v -> Int64.add acc (Int64.of_int32 v))
    0L state

let app : Runner.app =
  {
    name = "radiosity";
    (* large irregular code: noticeable I-cache misses, like Fig. 8 *)
    code_footprint = 18 * 1024;
    jump_prob = 0.12;
    setup;
    reference;
  }
