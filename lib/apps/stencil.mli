(** Jacobi stencil with halo exchange: per-core grid strips
    (double-buffered shared objects), neighbours read through read-only
    scopes, iterations separated by the annotation-built barrier.
    Bit-identical to the sequential reference on every back-end. *)

val width : int
(** Columns of the grid (each core owns full-width row strips). *)

val rows_per_core : int
(** Rows in one core's strip; the top and bottom rows are the halos
    neighbours read. *)

val app : Runner.app
(** The registered application (name ["stencil"]). *)
