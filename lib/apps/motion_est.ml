(* Motion estimation — the SPM case study of Section VI-C and Fig. 10.

   Full-search block matching: every block of the current frame is matched
   against a search window of the reference frame; both are read many
   times (once per candidate vector), which is exactly the reuse pattern
   that makes a scratch-pad pay off: the window is staged once per block
   and then read at local-memory speed, while under software cache
   coherency the window (sized beyond the L1 D-cache) thrashes on every
   candidate scan.

   The OCaml scoped API plays the role of the C++ ScopeRO/ScopeX classes
   of Fig. 10: [Api.with_ro] on the window and block stages them in
   (entry_ro), accesses inside the scope transparently hit the staged
   copy, and the destructor-equivalent discards it (exit_ro). *)

open Pmc_sim

let block_dim = 4
let range = 14                       (* search range in pixels *)
let window_dim = block_dim + (2 * range)  (* 32 x 32 words = 4 KiB *)
let window_words = window_dim * window_dim
let block_words = block_dim * block_dim
let candidates = (2 * range) + 1

let ref_pixel ~block ~x ~y =
  Int32.of_int (((block * 37) + (x * 5) + (y * 11)) land 0xFF)

(* The current block equals the reference at a block-dependent offset, so
   full search has a known-best answer (plus noise to exercise SAD). *)
let true_vector ~block = (block mod candidates, block * 7 mod candidates)

let cur_pixel ~block ~x ~y =
  let dx, dy = true_vector ~block in
  ref_pixel ~block ~x:(x + dx) ~y:(y + dy)

let sad_search read_win read_blk =
  let best = ref max_int and best_v = ref (0, 0) in
  for dy = 0 to candidates - 1 do
    for dx = 0 to candidates - 1 do
      let sad = ref 0 in
      for y = 0 to block_dim - 1 do
        for x = 0 to block_dim - 1 do
          let w = read_win ((dy + y) * window_dim + (dx + x)) in
          let b = read_blk ((y * block_dim) + x) in
          sad := !sad + abs (Int32.to_int w - Int32.to_int b)
        done
      done;
      if !sad < !best then begin
        best := !sad;
        best_v := (dx, dy)
      end
    done
  done;
  !best_v

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let blocks = scale in
  let window =
    Array.init blocks (fun b ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "window%d" b)
          ~words:window_words)
  in
  let block =
    Array.init blocks (fun b ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "block%d" b)
          ~words:block_words)
  in
  let vectors = Pmc.Api.alloc_words api ~name:"vectors" ~words:blocks in
  let next = Pmc.Api.alloc_words api ~name:"work_queue" ~words:1 in
  (* frames are produced by untimed initialization: video capture is not
     part of the measured kernel *)
  Array.iteri
    (fun b w ->
      for y = 0 to window_dim - 1 do
        for x = 0 to window_dim - 1 do
          Pmc.Api.poke api w ((y * window_dim) + x) (ref_pixel ~block:b ~x ~y)
        done
      done)
    window;
  Array.iteri
    (fun b blk ->
      for y = 0 to block_dim - 1 do
        for x = 0 to block_dim - 1 do
          Pmc.Api.poke api blk ((y * block_dim) + x) (cur_pixel ~block:b ~x ~y)
        done
      done)
    block;
  let worker () =
    let continue_ = ref true in
    while !continue_ do
      let b =
        Pmc.Api.with_x api next (fun () ->
            let t = Pmc.Api.get_int api next 0 in
            if t < blocks then Pmc.Api.set_int api next 0 (t + 1);
            t)
      in
      if b >= blocks then continue_ := false
      else begin
        (* ScopeRO(window), ScopeRO(mblock), ScopeX(vector) of Fig. 10 *)
        let dx, dy =
          Pmc.Api.with_ro api window.(b) (fun () ->
              Pmc.Api.with_ro api block.(b) (fun () ->
                  sad_search
                    (fun i -> Pmc.Api.get api window.(b) i)
                    (fun i -> Pmc.Api.get api block.(b) i)))
        in
        Machine.instr m 200;
        Pmc.Api.with_x api vectors (fun () ->
            Pmc.Api.set_int api vectors b ((dx * 256) + dy))
      end
    done
  in
  for core = 0 to cfg.Config.cores - 1 do
    Machine.spawn m ~core worker
  done;
  fun () ->
    let sum = ref 0L in
    for b = 0 to blocks - 1 do
      sum :=
        Int64.add !sum
          (Runner.mix64 (Int64.of_int ((b * 65536) + Pmc.Api.peek_int api vectors b)))
    done;
    !sum

let reference ~seed:_ ~cores:_ ~scale =
  let sum = ref 0L in
  for b = 0 to scale - 1 do
    let dx, dy =
      sad_search
        (fun i ->
          ref_pixel ~block:b ~x:(i mod window_dim) ~y:(i / window_dim))
        (fun i -> cur_pixel ~block:b ~x:(i mod block_dim) ~y:(i / block_dim))
    in
    sum :=
      Int64.add !sum
        (Runner.mix64 (Int64.of_int ((b * 65536) + (dx * 256) + dy)))
  done;
  !sum

let app : Runner.app =
  {
    name = "motion_est";
    code_footprint = 6 * 1024;   (* tight kernel loop *)
    jump_prob = 0.02;
    setup;
    reference;
  }
