(** RAYTRACE-like kernel (Fig. 8): read-dominated sharing of a scene
    built by core 0 and published with the Fig. 6 flag pattern; private
    framebuffer writes.  Under SWCC the scene stays cached across ray
    batches, collapsing the shared-read stall. *)

val scene_chunks : int
(** Shared scene objects, each published once by core 0. *)

val chunk_words : int
(** Words per scene chunk. *)

val app : Runner.app
(** The registered application (name ["raytrace"]). *)
