(* Crash-consistency checker for the far-memory tier.

   One crash experiment runs a registered application on the [farmem]
   back-end with a seed-derived power cut armed ([Config.crash]), lets
   the cut kill every tile mid-run, and then judges what the durable
   image left behind:

     1. run the workload under a trace recorder until [Engine.Power_cut]
        (or completion, if the cut cycle lands past the wall);
     2. snapshot the durable image ([Farmem.image]) of the crashed
        machine — exactly the media bytes, the device cache is lost;
     3. restore the image into a fresh device and replay recovery
        ([Farmem.recover]): committed redo-log slots are re-applied,
        uncommitted ones discarded;
     4. torn-object check: every shared object's recovered payload must
        equal the state after its k-th publication, where k is the
        object's recovered publication count — any [exit_x]/[flush] is
        fully visible or fully absent, never a byte mix;
     5. durable-prefix check: the committed prefix of the recorded trace
        (kept scopes truncated at their last committed publication,
        uncommitted scopes dropped, incomplete read-only scopes dropped)
        must replay PMC-consistent through [Pmc_model.History].

   Soundness of the expected-bytes reconstruction: the device serves
   reads from durable media only, commits hold the object lock through
   their last barrier, and a run contains at most one cut — so the
   durable payload at any instant is exactly the last committed
   publication, and the k-th publication's bytes are the initialization
   pokes plus every recorded write up to the k-th publication event.

   The publication count is read from the recovered media, NOT counted
   from [Exit_x] trace events: the cut can land after a commit's final
   barrier but before the annotation event is emitted, in which case the
   commit is durable yet invisible in the trace (the "in-flight"
   publication).  Such a scope is kept whole in the prefix and closed
   with a synthesized [Exit_x].

   With [Config.farmem_log] off the back-end publishes word by word with
   a barrier after each word — deliberately tearable; the checker must
   (and the tests verify it does) catch the resulting mixes. *)

open Pmc_sim
module Event = Pmc_trace.Event

type obj_check = {
  obj_name : string;
  words : int;
  committed : int;   (* durable publication count k (recovered media) *)
  published : int;   (* publication events recorded in the trace *)
  in_flight : bool;  (* k = published + 1: commit durable, event unsent *)
  torn_words : int;  (* payload words differing from publication k *)
}

type verdict =
  | Completed       (* the cut landed past the wall; full-run checks clean *)
  | Recovered       (* cut fired; no torn object, durable prefix consistent *)
  | Torn of { objects : int; words : int }
  | Prefix_inconsistent of int  (* model violations in the durable prefix *)
  | Check_error of string       (* the experiment itself failed *)

type report = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
  seed : int;
  window : int;        (* cut window the schedule was drawn from *)
  cut : int option;    (* cycle the cut fired at, [None] if it never did *)
  log : bool;          (* redo log armed ([Config.farmem_log]) *)
  verdict : verdict;
  wall : int;
  objects : obj_check list;
  recovery : Farmem.recovery option;
  events : int;
  dropped : int;
  replayed : bool;     (* the durable-prefix model replay ran *)
}

let acceptable = function
  | Completed | Recovered -> true
  | Torn _ | Prefix_inconsistent _ | Check_error _ -> false

(* Crash experiments run at small geometry and the incremental checker
   replays events in near-constant time each, so the budget effectively
   never skips a durable-prefix replay. *)
let default_replay_budget = 500_000

(* ---------------- durable-image object checks ---------------- *)

(* Pair trace object descriptors with the device's allocation directory:
   the back-end allocates far memory inside [Shared.make]'s id order and
   ids restart at 0 every run, so directory entry [i] is object id [i]. *)
let header_bytes = Pmc.Farmem.header_bytes

type obj_state = {
  o_name : string;
  o_words : int;
  o_addr : int;              (* header address; payload at [+8] *)
  expected : Bytes.t;        (* reconstructed publication-k payload *)
  mutable pubs_total : int;  (* publication events in the whole trace *)
  mutable k : int;           (* durable publication count *)
  mutable o_in_flight : bool;
  mutable pubs_seen : int;   (* walk state: publications passed so far *)
  mutable frozen : bool;     (* walk state: past publication k *)
}

let set_word_le b word v =
  Bytes.set b (4 * word) (Char.chr (v land 0xff));
  Bytes.set b ((4 * word) + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b ((4 * word) + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b ((4 * word) + 3) (Char.chr ((v lsr 24) land 0xff))

(* Reconstruct, per object, the payload bytes of its k-th publication:
   initialization pokes, then every recorded write in trace order until
   the k-th publication event freezes the object ([in_flight] objects
   never freeze — their last commit includes every recorded write). *)
let reconstruct_expected (states : obj_state array)
    (trace : Event.t list) =
  let st (o : Event.obj) =
    if o.Event.id < Array.length states then Some states.(o.Event.id)
    else None
  in
  let refreeze s =
    if (not s.o_in_flight) && s.pubs_seen >= s.k then s.frozen <- true
  in
  Array.iter (fun s -> refreeze s) states;
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Init { obj; word; value } ->
          (* pokes are durable by definition and precede every run *)
          Option.iter
            (fun s -> set_word_le s.expected word (Int32.to_int value land 0xffffffff))
            (st obj)
      | Event.Write { obj; word; value } ->
          Option.iter
            (fun s ->
              if not s.frozen then
                set_word_le s.expected word (Int32.to_int value land 0xffffffff))
            (st obj)
      | Event.Write8 { obj; byte; value } ->
          Option.iter
            (fun s ->
              if not s.frozen then
                Bytes.set s.expected byte (Char.chr (value land 0xff)))
            (st obj)
      | Event.Annot { ann = Event.Exit_x | Event.Flush; obj = Some o } ->
          Option.iter
            (fun s ->
              s.pubs_seen <- s.pubs_seen + 1;
              refreeze s)
            (st o)
      | _ -> ())
    trace

let torn_words_of (dev : Farmem.t) (s : obj_state) =
  let torn = ref 0 in
  for w = 0 to s.o_words - 1 do
    let media = Farmem.peek_u32 dev (s.o_addr + header_bytes + (4 * w)) in
    let expect =
      Char.code (Bytes.get s.expected (4 * w))
      lor (Char.code (Bytes.get s.expected ((4 * w) + 1)) lsl 8)
      lor (Char.code (Bytes.get s.expected ((4 * w) + 2)) lsl 16)
      lor (Char.code (Bytes.get s.expected ((4 * w) + 3)) lsl 24)
    in
    if media <> expect then incr torn
  done;
  !torn

(* ---------------- durable-prefix construction ---------------- *)

(* The committed prefix of a crashed trace:
     - initialization events are kept (pokes are durable);
     - exclusive-scope events of an object are kept up to and including
       its k-th publication event; a scope cut there by a [flush] (or an
       in-flight scope, which has no terminal event at all) is closed
       with a synthesized [Exit_x] so the model sees a balanced scope;
     - scopes that committed nothing — including their reads — are
       dropped: nothing they did was promised to anyone;
     - read-only scopes are kept only when complete (entry and exit both
       recorded); their reads saw durable media, which the kept writes
       explain;
     - everything below the model's vocabulary (locks, NoC, cache
       maintenance, tasks, faults) passes through untouched — the
       lowering skips it anyway. *)
let durable_prefix (states : obj_state array) (trace : Event.t list) :
    Event.t list =
  let n = Array.length states in
  let arr = Array.of_list trace in
  (* pass 1: which read-only scopes complete?  [ro_keep.(i)] is set for
     every event index belonging to a complete RO scope *)
  let ro_keep = Array.make (Array.length arr) false in
  let ro_open = Hashtbl.create 16 in
  (* (obj, core) -> reverse list of member indices *)
  Array.iteri
    (fun i (e : Event.t) ->
      let key (o : Event.obj) = (o.Event.id, e.Event.core) in
      match e.Event.kind with
      | Event.Annot { ann = Event.Entry_ro; obj = Some o } ->
          Hashtbl.replace ro_open (key o) [ i ]
      | Event.Annot { ann = Event.Exit_ro; obj = Some o } -> (
          match Hashtbl.find_opt ro_open (key o) with
          | Some members ->
              List.iter (fun j -> ro_keep.(j) <- true) (i :: members);
              Hashtbl.remove ro_open (key o)
          | None -> ())
      | Event.Read { obj; _ } | Event.Read8 { obj; _ } -> (
          match Hashtbl.find_opt ro_open (key obj) with
          | Some members -> Hashtbl.replace ro_open (key obj) (i :: members)
          | None -> ())
      | _ -> ())
    arr;
  (* pass 2: stream the prefix.  [pubs_seen]/[frozen] restart here *)
  Array.iter
    (fun s ->
      s.pubs_seen <- 0;
      s.frozen <- (not s.o_in_flight) && s.k <= 0)
    states;
  let active_x = Array.make n None in   (* object id -> Some holder core *)
  let last_kept = Array.make n None in  (* object id -> Some (core, time, seq) *)
  let in_ro = Hashtbl.create 16 in      (* (obj id, core) active RO scope *)
  let out = ref [] in
  let push e = out := e :: !out in
  let synth_exit id ~core ~time ~seq =
    let s = states.(id) in
    push
      {
        Event.seq;
        time;
        core;
        kind =
          Event.Annot
            {
              ann = Event.Exit_x;
              obj =
                Some
                  {
                    Event.id;
                    name = s.o_name;
                    words = s.o_words;
                    bytes = 4 * s.o_words;
                  };
            };
      }
  in
  Array.iteri
    (fun i (e : Event.t) ->
      let core = e.Event.core in
      let known (o : Event.obj) = o.Event.id < n in
      let keep_mark (o : Event.obj) =
        push e;
        last_kept.(o.Event.id) <- Some (core, e.Event.time, e.Event.seq)
      in
      match e.Event.kind with
      | Event.Init _ -> push e
      | Event.Annot { ann = Event.Entry_x; obj = Some o } when known o ->
          let s = states.(o.Event.id) in
          active_x.(o.Event.id) <- Some core;
          if not s.frozen then keep_mark o
      | Event.Annot { ann = Event.Exit_x; obj = Some o } when known o ->
          let s = states.(o.Event.id) in
          active_x.(o.Event.id) <- None;
          if not s.frozen then begin
            push e;
            last_kept.(o.Event.id) <- None
          end;
          s.pubs_seen <- s.pubs_seen + 1;
          if (not s.o_in_flight) && s.pubs_seen >= s.k then s.frozen <- true
      | Event.Annot { ann = Event.Flush; obj = Some o } when known o ->
          let s = states.(o.Event.id) in
          let was_frozen = s.frozen in
          if not was_frozen then keep_mark o;
          s.pubs_seen <- s.pubs_seen + 1;
          if (not s.o_in_flight) && s.pubs_seen >= s.k then begin
            s.frozen <- true;
            (* the scope's last committed publication is this flush:
               close the acquire for the model and drop the rest *)
            if not was_frozen then begin
              synth_exit o.Event.id ~core ~time:e.Event.time ~seq:e.Event.seq;
              last_kept.(o.Event.id) <- None
            end
          end
      | Event.Annot { ann = Event.Entry_ro; obj = Some o } ->
          if ro_keep.(i) then push e;
          if known o then Hashtbl.replace in_ro (o.Event.id, core) ()
      | Event.Annot { ann = Event.Exit_ro; obj = Some o } ->
          if ro_keep.(i) then push e;
          Hashtbl.remove in_ro (o.Event.id, core)
      | Event.Read { obj; _ } | Event.Read8 { obj; _ } ->
          if Hashtbl.mem in_ro (obj.Event.id, core) then begin
            if ro_keep.(i) then push e
          end
          else if
            known obj
            && (not states.(obj.Event.id).frozen)
            && active_x.(obj.Event.id) = Some core
          then keep_mark obj
      | Event.Write { obj; _ } | Event.Write8 { obj; _ } ->
          if
            known obj
            && (not states.(obj.Event.id).frozen)
            && active_x.(obj.Event.id) = Some core
          then keep_mark obj
      | Event.Annot _ -> push e
      | Event.Lock _ | Event.Noc_post _ | Event.Cache_maint _
      | Event.Task _ | Event.Fault _ ->
          push e)
    arr;
  (* close in-flight scopes: the commit is durable, its terminal event
     never made it into the trace *)
  Array.iteri
    (fun id s ->
      if not s.frozen then
        match last_kept.(id) with
        | Some (core, time, seq) when active_x.(id) <> None || s.o_in_flight
          ->
            synth_exit id ~core ~time ~seq
        | _ -> ())
    states;
  List.rev !out

(* ---------------- one experiment ---------------- *)

let crash_one ?(log = true) ?window ?capacity
    ?(replay_budget = default_replay_budget) ?(model_check = true)
    ?(topology = Topology.Star) (a : Runner.app) ~backend ~cores ~scale
    ~seed : report =
  let base_cfg =
    { Config.default with cores; topology; farmem_log = log }
  in
  (* the cut window defaults to the run's own wall clock, learned from a
     fault-free twin — the crash config leaves the access-plane fault
     path disarmed, so the pre-cut timeline is the fault-free timeline *)
  let window =
    match window with
    | Some w -> max 1 w
    | None ->
        let r = Runner.run ~cfg:base_cfg a ~backend ~scale in
        max 1 r.Runner.wall
  in
  let cfg = Config.crash ~seed ~window base_cfg in
  let recorder = ref None in
  let machine = ref None in
  let on_api api =
    machine := Some (Pmc.Api.machine api);
    recorder := Some (Pmc_trace.Recorder.attach ?capacity api)
  in
  let mk_report ~cut ~verdict ~objects ~recovery ~replayed =
    let wall =
      match !machine with
      | Some m -> Engine.wall_time (Machine.engine m)
      | None -> 0
    in
    let events, dropped =
      match !recorder with
      | Some r ->
          (Pmc_trace.Recorder.recorded r, Pmc_trace.Recorder.dropped_total r)
      | None -> (0, 0)
    in
    {
      app = a.Runner.name; backend; cores; scale; seed; window; cut; log;
      verdict; wall; objects; recovery; events; dropped; replayed;
    }
  in
  let fail msg =
    mk_report ~cut:None ~verdict:(Check_error msg) ~objects:[] ~recovery:None
      ~replayed:false
  in
  let run_outcome =
    match Runner.run ~cfg ~on_api a ~backend ~scale with
    | r -> Ok (`Completed r)
    | exception Engine.Power_cut cycle -> Ok (`Cut cycle)
    | exception Pmc_error.Error c ->
        Error (Printf.sprintf "typed error: %s" (Pmc_error.to_string c))
    | exception Engine.Watchdog n ->
        Error (Printf.sprintf "watchdog: no progress by cycle %d" n)
    | exception Engine.Deadlock msg -> Error ("deadlock: " ^ msg)
  in
  match run_outcome with
  | Error msg -> fail msg
  | Ok outcome -> (
      let cut = match outcome with `Cut c -> Some c | `Completed _ -> None in
      match Option.bind !machine Machine.farmem_opt with
      | None ->
          fail
            (Printf.sprintf "backend %s has no far-memory tier"
               (Pmc.Backends.to_string backend))
      | Some crashed_dev ->
          let rec_ = Option.get !recorder in
          if Pmc_trace.Recorder.dropped_total rec_ > 0 then
            fail "trace ring overflow: prefix reconstruction unsound"
          else begin
            (* 2–3: snapshot the durable image, restore, replay recovery *)
            let img = Farmem.image crashed_dev in
            let fresh =
              Farmem.create ~data_bytes:cfg.Config.farmem_bytes
                ~word_occupancy:cfg.Config.farmem_word_occupancy ~slots:cores
            in
            Farmem.restore fresh img;
            let recovery = Farmem.recover fresh in
            let trace = Pmc_trace.Recorder.events rec_ in
            (* device directory entry i is object id i (ids restart at 0
               each run and the back-end allocates inside Shared.make) *)
            let allocs = Array.of_list (Farmem.allocs crashed_dev) in
            let states =
              Array.map
                (fun (name, addr, bytes) ->
                  let words = (bytes - header_bytes) / 4 in
                  {
                    o_name = name;
                    o_words = words;
                    o_addr = addr;
                    expected = Bytes.make (4 * words) '\000';
                    pubs_total = 0;
                    k = Farmem.peek_u32 fresh addr;
                    o_in_flight = false;
                    pubs_seen = 0;
                    frozen = false;
                  })
                allocs
            in
            (* publication totals, then classify in-flight commits *)
            List.iter
              (fun (e : Event.t) ->
                match e.Event.kind with
                | Event.Annot
                    { ann = Event.Exit_x | Event.Flush; obj = Some o }
                  when o.Event.id < Array.length states ->
                    let s = states.(o.Event.id) in
                    s.pubs_total <- s.pubs_total + 1
                | _ -> ())
              trace;
            let anomaly = ref None in
            Array.iter
              (fun s ->
                if s.k = s.pubs_total + 1 then s.o_in_flight <- true
                else if s.k > s.pubs_total + 1 then
                  anomaly :=
                    Some
                      (Printf.sprintf
                         "object %s: durable count %d exceeds %d recorded \
                          publications + 1"
                         s.o_name s.k s.pubs_total))
              states;
            match !anomaly with
            | Some msg -> fail msg
            | None ->
                (* 4: torn-object check against publication k *)
                reconstruct_expected states trace;
                let objects =
                  Array.to_list
                    (Array.map
                       (fun s ->
                         {
                           obj_name = s.o_name;
                           words = s.o_words;
                           committed = s.k;
                           published = s.pubs_total;
                           in_flight = s.o_in_flight;
                           torn_words = torn_words_of fresh s;
                         })
                       states)
                in
                let torn_objs =
                  List.filter (fun o -> o.torn_words > 0) objects
                in
                if torn_objs <> [] then
                  mk_report ~cut
                    ~verdict:
                      (Torn
                         {
                           objects = List.length torn_objs;
                           words =
                             List.fold_left
                               (fun acc o -> acc + o.torn_words)
                               0 torn_objs;
                         })
                    ~objects ~recovery:(Some recovery) ~replayed:false
                else begin
                  (* 5: the durable prefix must be PMC-consistent *)
                  let prefix = durable_prefix states trace in
                  if
                    model_check
                    && List.length prefix <= replay_budget
                  then begin
                    let rep = Pmc_trace.Replay.check ~cores prefix in
                    if Pmc_model.History.ok rep then
                      mk_report ~cut
                        ~verdict:
                          (match cut with
                          | None -> Completed
                          | Some _ -> Recovered)
                        ~objects ~recovery:(Some recovery) ~replayed:true
                    else
                      mk_report ~cut
                        ~verdict:
                          (Prefix_inconsistent
                             (List.length rep.Pmc_model.History.violations))
                        ~objects ~recovery:(Some recovery) ~replayed:true
                  end
                  else
                    mk_report ~cut
                      ~verdict:
                        (match cut with
                        | None -> Completed
                        | Some _ -> Recovered)
                      ~objects ~recovery:(Some recovery) ~replayed:false
                end
          end)

(* ---------------- the seed sweep ---------------- *)

type sweep = {
  reports : report list;  (* in run order *)
  total : int;
  cuts : int;             (* experiments whose cut actually fired *)
  recovered : int;
  completed : int;
  torn : int;
  inconsistent : int;
  errors : int;
}

let summarize (reports : report list) : sweep =
  let count p = List.length (List.filter p reports) in
  {
    reports;
    total = List.length reports;
    cuts = count (fun r -> r.cut <> None);
    recovered = count (fun r -> r.verdict = Recovered);
    completed = count (fun r -> r.verdict = Completed);
    torn = count (fun r -> match r.verdict with Torn _ -> true | _ -> false);
    inconsistent =
      count (fun r ->
          match r.verdict with Prefix_inconsistent _ -> true | _ -> false);
    errors =
      count (fun r ->
          match r.verdict with Check_error _ -> true | _ -> false);
  }

let ok s = s.torn = 0 && s.inconsistent = 0 && s.errors = 0

let sweep ?log ?capacity ?replay_budget ?model_check ?topology ?progress
    ?pool ~apps ~backend ~cores ~scale ~seeds () : sweep =
  (* the cut window is learned once per app from its fault-free twin, so
     every seed of an app shares one deterministic window — which also
     keeps the window inside job keys stable *)
  let windows =
    List.map
      (fun (a : Runner.app) ->
        let base_cfg =
          {
            Config.default with
            cores;
            topology = Option.value ~default:Topology.Star topology;
            farmem_log = Option.value ~default:true log;
          }
        in
        let r = Runner.run ~cfg:base_cfg a ~backend ~scale in
        (a, max 1 r.Runner.wall))
      apps
  in
  let one (a : Runner.app) ~window seed =
    crash_one ?log ~window ?capacity ?replay_budget ?model_check ?topology a
      ~backend ~cores ~scale ~seed
  in
  let reports =
    match pool with
    | Some pool when Pmc_par.Pool.jobs pool > 1 ->
        let wall =
          List.concat_map
            (fun (a, window) -> List.map (fun seed -> (a, window, seed)) seeds)
            windows
        in
        let reports =
          Pmc_par.Pool.map_list_ordered pool wall
            ~f:(fun (a, window, seed) -> one a ~window seed)
        in
        List.iter (fun r -> Option.iter (fun f -> f r) progress) reports;
        reports
    | _ ->
        List.concat_map
          (fun (a, window) ->
            List.map
              (fun seed ->
                let r = one a ~window seed in
                Option.iter (fun f -> f r) progress;
                r)
              seeds)
          windows
  in
  summarize reports

(* ---------------- printing ---------------- *)

let verdict_name = function
  | Completed -> "completed"
  | Recovered -> "recovered"
  | Torn _ -> "TORN"
  | Prefix_inconsistent _ -> "INCONSISTENT"
  | Check_error _ -> "ERROR"

let pp_verdict ppf = function
  | Completed -> Fmt.pf ppf "completed (cut past wall)"
  | Recovered -> Fmt.pf ppf "recovered"
  | Torn { objects; words } ->
      Fmt.pf ppf "TORN: %d object(s), %d word(s)" objects words
  | Prefix_inconsistent n ->
      Fmt.pf ppf "INCONSISTENT: %d violation(s) in the durable prefix" n
  | Check_error msg -> Fmt.pf ppf "ERROR: %s" msg

let pp_report ppf (r : report) =
  Fmt.pf ppf "%-12s %-6s seed=%-5d %s wall=%-9d objs=%d %a%s" r.app
    (Pmc.Backends.to_string r.backend)
    r.seed
    (match r.cut with
    | Some c -> Printf.sprintf "cut=%-9d" c
    | None -> Printf.sprintf "cut=%-9s" "-")
    r.wall (List.length r.objects) pp_verdict r.verdict
    (if r.replayed then " replay=ok" else "")

let pp_sweep ppf (s : sweep) =
  Fmt.pf ppf
    "%d experiments: %d cuts injected, %d recovered, %d completed, %d torn, \
     %d inconsistent, %d errors"
    s.total s.cuts s.recovered s.completed s.torn s.inconsistent s.errors
