(* RAYTRACE-like kernel.

   SPLASH-2 RAYTRACE shoots rays through a shared, read-only scene
   structure (BSP tree + primitives) and writes to a private framebuffer.
   Its signature is read-dominated sharing with good reuse: once the scene
   chunks a core needs are cached, almost all shared-read stall disappears
   under software cache coherency — exactly the RAYTRACE bars of Fig. 8.

   One core builds the scene under exclusive scopes, publishes a ready
   flag (the Fig. 6 pattern), and every core then traces its own pixels:
   per pixel a handful of scene chunks are walked inside read-only scopes
   and the shading result is accumulated privately; per-core results go to
   a shared result array at the end. *)

open Pmc_sim

let scene_chunks = 24
let chunk_words = 32  (* 128 bytes *)
let chunks_per_ray = 3
let compute_per_ray = 450

let scene_value ~chunk ~word =
  Int32.of_int (((chunk * 131) + (word * 17) + 7) land 0xFFFF)

(* Which chunks a pixel's ray traverses, and its shading weight. *)
let ray_plan ~pixel =
  let g = Prng.create (0xACE + pixel) in
  (* rays exhibit spatial locality: neighbouring pixels hit overlapping
     chunks *)
  let base = pixel / 8 mod scene_chunks in
  Array.init chunks_per_ray (fun i ->
      if Prng.bool g 0.7 then (base + i) mod scene_chunks
      else Prng.int g scene_chunks)

let setup (api : Pmc.Api.t) ~scale =
  let m = Pmc.Api.machine api in
  let cfg = Machine.config m in
  let cores = cfg.Config.cores in
  let pixels_per_core = scale in
  let scene =
    Array.init scene_chunks (fun i ->
        Pmc.Api.alloc_words api
          ~name:(Printf.sprintf "scene%d" i)
          ~words:chunk_words)
  in
  let ready = Pmc.Api.alloc_words api ~name:"scene_ready" ~words:1 in
  let result = Pmc.Api.alloc_words api ~name:"framebuf_sums" ~words:cores in
  (* The scene is read-only while tracing, so read-only scopes are held
     over a whole batch of rays: under SWCC the scene then stays cached
     across the batch (the reuse that gives RAYTRACE its near-zero shared
     read stall in Fig. 8), while 'no CC' pays the SDRAM round-trip on
     every single read. *)
  let batch = 64 in
  let trace_pixels core =
    (* wait for the scene (Fig. 6 flag pattern) *)
    ignore (Pmc.Api.poll_until_int api ready 0 (fun v -> v = 1));
    Pmc.Api.fence api;
    let acc = ref 0l in
    let p = ref 0 in
    while !p < pixels_per_core do
      let n = min batch (pixels_per_core - !p) in
      Array.iter (fun c -> Pmc.Api.entry_ro api c) scene;
      for i = 0 to n - 1 do
        let pixel = (core * pixels_per_core) + !p + i in
        let chunks = ray_plan ~pixel in
        Array.iter
          (fun c ->
            (* walk a few nodes of the chunk *)
            for w = 0 to 5 do
              acc :=
                Int32.add !acc
                  (Pmc.Api.get api scene.(c) ((w * 3) mod chunk_words))
            done)
          chunks;
        Machine.instr m compute_per_ray;
        (* private framebuffer write *)
        Machine.private_store m (pixel mod 192) !acc
      done;
      List.iter
        (fun c -> Pmc.Api.exit_ro api c)
        (List.rev (Array.to_list scene));
      p := !p + n
    done;
    Pmc.Api.with_x api result (fun () -> Pmc.Api.set api result core !acc)
  in
  (* core 0 initializes the scene, then traces its own pixels *)
  Machine.spawn m ~core:0 (fun () ->
      Array.iteri
        (fun i chunk ->
          Pmc.Api.with_x api chunk (fun () ->
              for w = 0 to chunk_words - 1 do
                Pmc.Api.set api chunk w (scene_value ~chunk:i ~word:w)
              done))
        scene;
      Pmc.Api.fence api;
      Pmc.Api.with_x api ready (fun () ->
          Pmc.Api.set api ready 0 1l;
          Pmc.Api.flush api ready);
      trace_pixels 0);
  for core = 1 to cores - 1 do
    Machine.spawn m ~core (fun () -> trace_pixels core)
  done;
  fun () ->
    let sum = ref 0L in
    for core = 0 to cores - 1 do
      sum := Int64.add !sum (Int64.of_int32 (Pmc.Api.peek api result core))
    done;
    !sum

let reference ~seed:_ ~cores ~scale =
  let sum = ref 0L in
  for core = 0 to cores - 1 do
    let acc = ref 0l in
    for p = 0 to scale - 1 do
      let pixel = (core * scale) + p in
      let chunks = ray_plan ~pixel in
      Array.iter
        (fun c ->
          for w = 0 to 5 do
            acc :=
              Int32.add !acc (scene_value ~chunk:c ~word:((w * 3) mod chunk_words))
          done)
        chunks
    done;
    sum := Int64.add !sum (Int64.of_int32 !acc)
  done;
  !sum

let app : Runner.app =
  {
    name = "raytrace";
    code_footprint = 12 * 1024;
    jump_prob = 0.05;
    setup;
    reference;
  }
