(** VOLREND-like kernel (Fig. 8): read-only voxel volume plus a hot
    octree, more compute per shared read than RAYTRACE, working set near
    the L1 capacity. *)

val octree_nodes : int
(** Nodes of the shared octree every ray walks. *)

val bricks : int
(** Voxel bricks of the read-only volume. *)

val brick_words : int
(** Words per voxel brick. *)

val app : Runner.app
(** The registered application (name ["volrend"]). *)
