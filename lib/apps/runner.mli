(** Application harness: run an annotated workload on a chosen back-end,
    collect Fig. 8-style statistics and a determinism checksum that must
    match the app's sequential reference on every back-end. *)

type app = {
  name : string;
  code_footprint : int;   (** synthetic I-stream: code size in bytes *)
  jump_prob : float;      (** per-line taken-jump probability *)
  setup : Pmc.Api.t -> scale:int -> (unit -> int64);
      (** allocate shared state and spawn one task per core; the returned
          closure collects the checksum after the run *)
  reference : seed:int -> cores:int -> scale:int -> int64;
      (** sequential reference checksum; [seed] is the workload PRNG seed
          ({!Pmc_sim.Config.t.seed}) — only the served-traffic apps
          ({!Kv_store}, {!Mailbox}) consume it *)
}

type result = {
  app : string;
  backend : Pmc.Backends.kind;
  cores : int;
  scale : int;
  wall : int;
  summary : Pmc_sim.Stats.summary;
  service : Service.summary option;
      (** request throughput and latency percentiles; [Some] only for the
          served-traffic apps ({!Kv_store}, {!Mailbox}) *)
  checksum : int64;
  reference : int64;
}

val ok : result -> bool
(** Checksum matches the sequential reference. *)

val run :
  ?cfg:Pmc_sim.Config.t -> ?on_api:(Pmc.Api.t -> unit) -> app ->
  backend:Pmc.Backends.kind -> scale:int -> result
(** [on_api] is called with the freshly created runtime instance before
    any task is spawned — the hook point for attaching observers such as
    a {!Pmc_trace.Recorder}. *)

val pp_result : Format.formatter -> result -> unit

val mix64 : int64 -> int64
(** Checksum mixer (splitmix64 finalizer). *)
