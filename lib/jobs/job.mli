(** Jobs: the self-contained work units shared by the one-shot CLIs and
    the {!Pmc_serve} daemon.

    A job captures by value everything its execution depends on, so
    {!Run.run} is a pure function of (job, budget) and the canonical
    JSON encoding of a job is a sound verdict-cache key (see DESIGN.md
    §12): equal encodings denote byte-identical results. *)

type litmus = {
  program : string;      (** a standard litmus program, by name *)
  models : string list;  (** model names/aliases; [[]] = every model *)
  limit : int option;    (** state-space budget override *)
}

type check = {
  name : string;    (** reporting name (the CLI passes the file path) *)
  source : string;  (** annotated-program text ({!Pmc_compile.Parse}) *)
}

type bench = {
  app : string;
  backend : string;
  topology : string;
      (** fabric name accepted by {!Pmc_sim.Topology.resolve}; jobs
          decoded from pre-topology encodings default to ["star"], which
          is what they ran on — so old cache keys stay sound *)
  cores : int;
  scale : int;
  unbatched : bool;
  warmup : int;
  repeat : int;
}

type chaos = {
  c_app : string;
  c_backend : string;
  c_topology : string;  (** fabric name; decode default ["star"] *)
  c_cores : int;
  c_scale : int;
  seed : int;
  intensity : float;
  model_check : bool;
  replay_budget : int option;
}

type crash = {
  x_app : string;
  x_backend : string;
  x_topology : string;  (** fabric name; decode default ["star"] *)
  x_cores : int;
  x_scale : int;
  x_seed : int;
  x_window : int;
      (** power-cut window in cycles.  Carried by value because the cut
          cycle is a pure function of (seed, window)
          ({!Pmc_sim.Fault.power_cut_cycle}) — the encoding alone
          determines the cut, which keeps the verdict cache sound *)
  x_log : bool;  (** redo log armed; [false] = tearable debug mode *)
  x_model_check : bool;
  x_replay_budget : int option;
}

type t =
  | Litmus of litmus  (** enumerate outcome sets under each model *)
  | Check of check    (** parse + static discipline check + lowering *)
  | Bench of bench    (** one measured benchmark case (no host timing) *)
  | Chaos of chaos    (** one seeded fault-injection run with verdict *)
  | Crash of crash    (** one power-cut crash-recovery experiment *)

val kind_name : t -> string

val to_json : t -> Pmc_bench.Json.t
(** Canonical: field order is fixed, so equal jobs encode equally. *)

val of_json : Pmc_bench.Json.t -> t
(** @raise Failure on malformed input. *)

val key : t -> string
(** [Json.to_compact (to_json t)] — the verdict-cache key material. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary (not the canonical encoding). *)
