(* Job execution: the pure function from (job, budget) to result.

   This is the command logic that used to be inlined in litmus_run,
   pmc_check, pmc_bench and pmc_chaos, factored to where both the
   one-shot CLIs and the pmc_serve daemon can call it.  [run] never
   raises — every failure mode becomes a typed [Result.Error] — and
   never touches the filesystem, the clock or global mutable state
   beyond what the simulator resets per run (the §11 re-entrancy rule),
   so results are reproducible bit for bit on any domain of a pool. *)

type budget = { max_cycles : int option; max_states : int option }

let no_budget = { max_cycles = None; max_states = None }

let opt_min a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let tighter a b =
  {
    max_cycles = opt_min a.max_cycles b.max_cycles;
    max_states = opt_min a.max_states b.max_states;
  }

let budget_to_json (b : budget) : Pmc_bench.Json.t =
  let opt = function None -> Pmc_bench.Json.Null | Some n -> Pmc_bench.Json.int n in
  Pmc_bench.Json.Obj
    [ ("max_cycles", opt b.max_cycles); ("max_states", opt b.max_states) ]

let budget_of_json (j : Pmc_bench.Json.t) : budget =
  let opt key =
    match Pmc_bench.Json.member key j with
    | None | Some Pmc_bench.Json.Null -> None
    | Some v -> Pmc_bench.Json.to_int v
  in
  { max_cycles = opt "max_cycles"; max_states = opt "max_states" }

(* ---------------- name resolution ---------------- *)

(* The standard litmus programs under both their CLI-friendly slugs and
   their descriptive names. *)
let standard_programs : (string * Pmc_model.Lprog.t) list =
  [
    ("mp_plain", Pmc_model.Lprog.mp_plain);
    ("mp_fence", Pmc_model.Lprog.mp_fence);
    ("mp_annotated", Pmc_model.Lprog.mp_annotated);
    ("mp_annotated_nofence", Pmc_model.Lprog.mp_annotated_nofence);
    ("sb", Pmc_model.Lprog.sb);
    ("coherence_1w", Pmc_model.Lprog.coherence_1w);
    ("coherence_2w", Pmc_model.Lprog.coherence_2w);
    ("exclusive_fig4", Pmc_model.Lprog.exclusive_fig4);
    ("locked_exchange", Pmc_model.Lprog.locked_exchange);
    ("iriw", Pmc_model.Lprog.iriw);
    ("wrc", Pmc_model.Lprog.wrc);
    ("lb", Pmc_model.Lprog.lb);
  ]

let program_names = List.map fst standard_programs

let find_program name =
  match List.assoc_opt name standard_programs with
  | Some p -> Some p
  | None ->
      List.find_opt
        (fun (p : Pmc_model.Lprog.t) -> p.Pmc_model.Lprog.name = name)
        Pmc_model.Lprog.all_standard

(* Models resolve by short alias (sc, pc, cc, ec, slow, pmc) or by
   their full descriptive name, case-insensitively. *)
let model_alias (module M : Pmc_model.Models.SEM) =
  let full = M.name in
  let cut = match String.index_opt full ' ' with
    | Some i -> String.sub full 0 i
    | None -> full
  in
  String.lowercase_ascii cut

let model_names = List.map model_alias Pmc_model.Models.all

let find_model name =
  let lname = String.lowercase_ascii name in
  List.find_opt
    (fun m ->
      let (module M : Pmc_model.Models.SEM) = m in
      model_alias m = lname || String.lowercase_ascii M.name = lname)
    Pmc_model.Models.all

let bad fmt = Printf.ksprintf (fun detail ->
    Result.Error { Result.kind = Result.Bad_request; detail }) fmt

let find_backend name k =
  match Pmc.Backends.of_string name with
  | Some b -> k b
  | None -> bad "unknown backend %S (seqcst|nocc|swcc|dsm|spm|farmem)" name

let find_topology name ~cores k =
  match Pmc_sim.Topology.resolve name ~cores with
  | Ok t -> k t
  | Error e -> bad "%s" e

let check_geometry ~cores ~scale k =
  if cores < 1 || cores > 1024 then
    bad "cores must be in [1, 1024] (got %d)" cores
  else if scale < 1 then bad "scale must be >= 1 (got %d)" scale
  else k ()

(* ---------------- per-kind execution ---------------- *)

let run_litmus ~budget (l : Job.litmus) : Result.t =
  match find_program l.Job.program with
  | None ->
      bad "unknown litmus program %S (known: %s)" l.Job.program
        (String.concat ", " program_names)
  | Some program -> (
      let models =
        match l.Job.models with
        | [] -> List.map Option.some Pmc_model.Models.all
        | names -> List.map find_model names
      in
      match List.exists Option.is_none models with
      | true ->
          bad "unknown model (known: %s)" (String.concat ", " model_names)
      | false -> (
          let models = List.filter_map Fun.id models in
          let limit = opt_min l.Job.limit budget.max_states in
          try
            Result.Litmus_outcomes
              (List.map
                 (fun m ->
                   let r = Pmc_model.Litmus.enumerate ?limit m program in
                   {
                     Result.program = program.Pmc_model.Lprog.name;
                     model = r.Pmc_model.Litmus.model;
                     outcomes = Pmc_model.Litmus.outcomes_list r;
                     states = r.Pmc_model.Litmus.states_explored;
                     stuck = r.Pmc_model.Litmus.stuck_states;
                   })
                 models)
          with Pmc_model.Litmus.State_space_too_large n ->
            Result.Error
              {
                Result.kind = Result.Budget_exceeded;
                detail =
                  Printf.sprintf "state space exceeded the %d-state budget" n;
              }))

let run_check (c : Job.check) : Result.t =
  match Pmc_compile.Parse.parse c.Job.source with
  | Error errs ->
      Result.Error
        {
          Result.kind = Result.Bad_request;
          detail =
            String.concat "\n"
              (List.map
                 (fun e -> Fmt.str "%s: %a" c.Job.name Pmc_compile.Parse.pp_error e)
                 errs);
        }
  | Ok program ->
      let report = Pmc_compile.Check.check program in
      (* the exact bytes pmc_check prints: check report, Table-II
         expansion, blank line *)
      let text =
        Fmt.str "%a%a@."
          (fun ppf (p, r) -> Pmc_compile.Report.pp_check ppf p r)
          (program, report)
          (fun ppf p ->
            Pmc_compile.Report.pp_program_expansion ppf Pmc_sim.Config.default
              p)
          program
      in
      Result.Check_checked
        {
          Result.name = c.Job.name;
          ok = Pmc_compile.Check.ok report;
          errors =
            List.map Pmc_compile.Check.error_to_string
              report.Pmc_compile.Check.errors;
          warnings =
            List.map Pmc_compile.Check.warning_to_string
              report.Pmc_compile.Check.warnings;
          text;
        }

let run_bench ~budget (b : Job.bench) : Result.t =
  find_backend b.Job.backend @@ fun backend ->
  find_topology b.Job.topology ~cores:b.Job.cores @@ fun topology ->
  check_geometry ~cores:b.Job.cores ~scale:b.Job.scale @@ fun () ->
  if b.Job.repeat < 1 then bad "repeat must be >= 1 (got %d)" b.Job.repeat
  else if b.Job.warmup < 0 then bad "warmup must be >= 0 (got %d)" b.Job.warmup
  else
    let case =
      {
        Pmc_bench.Spec.app = b.Job.app;
        backend;
        topology;
        cores = b.Job.cores;
        scale = b.Job.scale;
        work = Pmc_bench.Spec.Sim;
      }
    in
    match
      Pmc_bench.Measure.run_case ?max_cycles:budget.max_cycles
        ~unbatched:b.Job.unbatched ~warmup:b.Job.warmup ~repeat:b.Job.repeat
        case
    with
    | sample ->
        Result.Bench_measured
          {
            Result.id = Pmc_bench.Spec.case_id case;
            b_ok = sample.Pmc_bench.Measure.ok;
            deterministic = sample.Pmc_bench.Measure.deterministic;
            repeats = sample.Pmc_bench.Measure.repeats;
            metrics = sample.Pmc_bench.Measure.metrics;
          }
    | exception Pmc_bench.Measure.Unknown_app app ->
        bad "unknown app %S (known: %s)" app
          (String.concat ", " Pmc_apps.Registry.names)
    | exception Pmc_sim.Engine.Watchdog n ->
        Result.Error
          {
            Result.kind = Result.Budget_exceeded;
            detail = Printf.sprintf "cycle budget exhausted at cycle %d" n;
          }

let run_chaos ~budget (c : Job.chaos) : Result.t =
  find_backend c.Job.c_backend @@ fun backend ->
  find_topology c.Job.c_topology ~cores:c.Job.c_cores @@ fun topology ->
  check_geometry ~cores:c.Job.c_cores ~scale:c.Job.c_scale @@ fun () ->
  match Pmc_apps.Registry.find c.Job.c_app with
  | None ->
      bad "unknown app %S (known: %s)" c.Job.c_app
        (String.concat ", " Pmc_apps.Registry.names)
  | Some app ->
      (* a budget overrun under injected faults is an acceptable typed
         verdict, not a rejection — run_one folds the watchdog in *)
      Result.Chaos_soaked
        (Pmc_apps.Chaos.run_one ~intensity:c.Job.intensity
           ~model_check:c.Job.model_check ?replay_budget:c.Job.replay_budget
           ?max_cycles:budget.max_cycles ~topology app ~backend
           ~cores:c.Job.c_cores ~scale:c.Job.c_scale ~seed:c.Job.seed)

let run_crash (c : Job.crash) : Result.t =
  find_backend c.Job.x_backend @@ fun backend ->
  find_topology c.Job.x_topology ~cores:c.Job.x_cores @@ fun topology ->
  check_geometry ~cores:c.Job.x_cores ~scale:c.Job.x_scale @@ fun () ->
  if backend <> Pmc.Backends.Farmem then
    bad "chaos-crash requires the farmem backend (got %S)" c.Job.x_backend
  else if c.Job.x_window < 1 then
    bad "window must be >= 1 (got %d)" c.Job.x_window
  else
    match Pmc_apps.Registry.find c.Job.x_app with
    | None ->
        bad "unknown app %S (known: %s)" c.Job.x_app
          (String.concat ", " Pmc_apps.Registry.names)
    | Some app ->
        (* the window travels in the job, so the cut cycle is fixed by
           the encoding — no twin run at execution time *)
        Result.Crash_checked
          (Pmc_apps.Crash.crash_one ~log:c.Job.x_log ~window:c.Job.x_window
             ~model_check:c.Job.x_model_check
             ?replay_budget:c.Job.x_replay_budget ~topology app ~backend
             ~cores:c.Job.x_cores ~scale:c.Job.x_scale ~seed:c.Job.x_seed)

(* ---------------- the entry points ---------------- *)

let run ?(budget = no_budget) (job : Job.t) : Result.t =
  try
    match job with
    | Job.Litmus l -> run_litmus ~budget l
    | Job.Check c -> run_check c
    | Job.Bench b -> run_bench ~budget b
    | Job.Chaos c -> run_chaos ~budget c
    | Job.Crash c -> run_crash c
  with
  | Pmc_sim.Pmc_error.Error ctx ->
      Result.Error
        {
          Result.kind = Result.Runtime_error;
          detail = Pmc_sim.Pmc_error.to_string ctx;
        }
  | e ->
      Result.Error
        { Result.kind = Result.Runtime_error; detail = Printexc.to_string e }

let run_all ?budget ?pool (jobs : Job.t list) : Result.t list =
  match pool with
  | Some pool -> Pmc_par.Pool.map_list_ordered pool jobs ~f:(run ?budget)
  | None -> List.map (run ?budget) jobs
