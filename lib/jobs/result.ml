(* Job results: typed verdicts with a stable JSON encoding and a
   rendering that reproduces the one-shot CLIs byte for byte.

   Two invariants matter here:

   - every field is deterministic (no host time, no pids): a result is
     a pure function of its job, which is what makes the daemon's
     verdict cache sound — a cache hit replays stored bytes and nobody
     can tell it from a fresh run;
   - [pp] is the single rendering used by litmus_run's program
     sections, pmc_chaos run's report and pmc_serve submit, so the
     serve-smoke CI gate can diff daemon answers against the one-shot
     CLIs. *)

module Json = Pmc_bench.Json
module Measure = Pmc_bench.Measure

type litmus_row = {
  program : string;
  model : string;
  outcomes : string list;
  states : int;
  stuck : int;
}

type check_report = {
  name : string;
  ok : bool;
  errors : string list;
  warnings : string list;
  text : string;  (* the exact bytes pmc_check prints for this program *)
}

type bench_sample = {
  id : string;  (* Spec.case_id *)
  b_ok : bool;
  deterministic : bool;
  repeats : int;
  metrics : Measure.metrics;
}

type error_kind = Bad_request | Budget_exceeded | Runtime_error

type error = { kind : error_kind; detail : string }

type t =
  | Litmus_outcomes of litmus_row list
  | Check_checked of check_report
  | Bench_measured of bench_sample
  | Chaos_soaked of Pmc_apps.Chaos.report
  | Crash_checked of Pmc_apps.Crash.report
  | Error of error

(* ---------------- exit codes ----------------

   The documented CLI contract (the pmc_demo 0/2/3/4 convention):
   0 success, 2 input/budget/runtime errors, 3 property failures
   (discipline errors, checksum mismatches, wrong results), 4 formal
   PMC-model inconsistency. *)

let exit_code = function
  | Litmus_outcomes _ -> 0
  | Check_checked r -> if r.ok then 0 else 3
  | Bench_measured s -> if s.b_ok && s.deterministic then 0 else 3
  | Chaos_soaked r -> (
      match r.Pmc_apps.Chaos.verdict with
      | Pmc_apps.Chaos.Completed | Pmc_apps.Chaos.Typed_error _ -> 0
      | Pmc_apps.Chaos.Wrong_result _ -> 3
      | Pmc_apps.Chaos.Inconsistent _ -> 4)
  | Crash_checked r -> (
      match r.Pmc_apps.Crash.verdict with
      | Pmc_apps.Crash.Completed | Pmc_apps.Crash.Recovered -> 0
      | Pmc_apps.Crash.Check_error _ -> 2
      | Pmc_apps.Crash.Torn _ -> 3
      | Pmc_apps.Crash.Prefix_inconsistent _ -> 4)
  | Error _ -> 2

(* Input errors dominate (a 2 means "the batch did not even run as
   asked"), then model inconsistency, then property failures. *)
let exit_code_all results =
  let codes = List.map exit_code results in
  if List.mem 2 codes then 2
  else if List.mem 4 codes then 4
  else if List.mem 3 codes then 3
  else 0

let ok t = exit_code t = 0

(* ---------------- JSON ---------------- *)

let error_kind_name = function
  | Bad_request -> "bad-request"
  | Budget_exceeded -> "budget-exceeded"
  | Runtime_error -> "runtime-error"

let error_kind_of_name = function
  | "bad-request" -> Some Bad_request
  | "budget-exceeded" -> Some Budget_exceeded
  | "runtime-error" -> Some Runtime_error
  | _ -> None

let fail msg = failwith ("Pmc_jobs.Result: malformed result: " ^ msg)
let req what = function Some v -> v | None -> fail ("missing " ^ what)

let str_list key j =
  List.map
    (fun v -> req (key ^ " element") (Json.to_str v))
    (req key (Json.get_list key j))

let row_to_json (r : litmus_row) =
  Json.Obj
    [
      ("program", Json.Str r.program);
      ("model", Json.Str r.model);
      ("outcomes", Json.List (List.map (fun o -> Json.Str o) r.outcomes));
      ("states", Json.int r.states);
      ("stuck", Json.int r.stuck);
    ]

let row_of_json j =
  {
    program = req "program" (Json.get_str "program" j);
    model = req "model" (Json.get_str "model" j);
    outcomes = str_list "outcomes" j;
    states = req "states" (Json.get_int "states" j);
    stuck = req "stuck" (Json.get_int "stuck" j);
  }

(* Checksums are full-range int64s; a JSON number (double) would lose
   the low bits, so they travel as decimal strings. *)
let int64_str v = Json.Str (Int64.to_string v)

let int64_of key j =
  match Int64.of_string_opt (req key (Json.get_str key j)) with
  | Some v -> v
  | None -> fail (key ^ " must be a decimal int64 string")

let verdict_to_json (v : Pmc_apps.Chaos.verdict) =
  match v with
  | Pmc_apps.Chaos.Completed -> Json.Obj [ ("v", Json.Str "completed") ]
  | Pmc_apps.Chaos.Typed_error detail ->
      Json.Obj [ ("v", Json.Str "typed-error"); ("detail", Json.Str detail) ]
  | Pmc_apps.Chaos.Wrong_result { checksum; reference } ->
      Json.Obj
        [
          ("v", Json.Str "wrong-result");
          ("checksum", int64_str checksum);
          ("reference", int64_str reference);
        ]
  | Pmc_apps.Chaos.Inconsistent n ->
      Json.Obj [ ("v", Json.Str "inconsistent"); ("violations", Json.int n) ]

let verdict_of_json j : Pmc_apps.Chaos.verdict =
  match req "v" (Json.get_str "v" j) with
  | "completed" -> Pmc_apps.Chaos.Completed
  | "typed-error" ->
      Pmc_apps.Chaos.Typed_error (req "detail" (Json.get_str "detail" j))
  | "wrong-result" ->
      Pmc_apps.Chaos.Wrong_result
        { checksum = int64_of "checksum" j; reference = int64_of "reference" j }
  | "inconsistent" ->
      Pmc_apps.Chaos.Inconsistent
        (req "violations" (Json.get_int "violations" j))
  | v -> fail ("unknown verdict " ^ v)

let crash_verdict_to_json (v : Pmc_apps.Crash.verdict) =
  match v with
  | Pmc_apps.Crash.Completed -> Json.Obj [ ("v", Json.Str "completed") ]
  | Pmc_apps.Crash.Recovered -> Json.Obj [ ("v", Json.Str "recovered") ]
  | Pmc_apps.Crash.Torn { objects; words } ->
      Json.Obj
        [
          ("v", Json.Str "torn");
          ("objects", Json.int objects);
          ("words", Json.int words);
        ]
  | Pmc_apps.Crash.Prefix_inconsistent n ->
      Json.Obj [ ("v", Json.Str "inconsistent"); ("violations", Json.int n) ]
  | Pmc_apps.Crash.Check_error detail ->
      Json.Obj [ ("v", Json.Str "error"); ("detail", Json.Str detail) ]

let crash_verdict_of_json j : Pmc_apps.Crash.verdict =
  match req "v" (Json.get_str "v" j) with
  | "completed" -> Pmc_apps.Crash.Completed
  | "recovered" -> Pmc_apps.Crash.Recovered
  | "torn" ->
      Pmc_apps.Crash.Torn
        {
          objects = req "objects" (Json.get_int "objects" j);
          words = req "words" (Json.get_int "words" j);
        }
  | "inconsistent" ->
      Pmc_apps.Crash.Prefix_inconsistent
        (req "violations" (Json.get_int "violations" j))
  | "error" ->
      Pmc_apps.Crash.Check_error (req "detail" (Json.get_str "detail" j))
  | v -> fail ("unknown crash verdict " ^ v)

let obj_check_to_json (o : Pmc_apps.Crash.obj_check) =
  Json.Obj
    [
      ("name", Json.Str o.Pmc_apps.Crash.obj_name);
      ("words", Json.int o.Pmc_apps.Crash.words);
      ("committed", Json.int o.Pmc_apps.Crash.committed);
      ("published", Json.int o.Pmc_apps.Crash.published);
      ("in_flight", Json.Bool o.Pmc_apps.Crash.in_flight);
      ("torn_words", Json.int o.Pmc_apps.Crash.torn_words);
    ]

let obj_check_of_json j : Pmc_apps.Crash.obj_check =
  {
    Pmc_apps.Crash.obj_name = req "name" (Json.get_str "name" j);
    words = req "words" (Json.get_int "words" j);
    committed = req "committed" (Json.get_int "committed" j);
    published = req "published" (Json.get_int "published" j);
    in_flight = req "in_flight" (Json.get_bool "in_flight" j);
    torn_words = req "torn_words" (Json.get_int "torn_words" j);
  }

let recovery_to_json = function
  | None -> Json.Null
  | Some (r : Pmc_sim.Farmem.recovery) ->
      Json.Obj
        [
          ("committed", Json.Bool r.Pmc_sim.Farmem.committed);
          ("records", Json.int r.Pmc_sim.Farmem.records);
          ("words_applied", Json.int r.Pmc_sim.Farmem.words_applied);
        ]

let recovery_of_json j : Pmc_sim.Farmem.recovery option =
  match j with
  | None | Some Json.Null -> None
  | Some r ->
      Some
        {
          Pmc_sim.Farmem.committed = req "committed" (Json.get_bool "committed" r);
          records = req "records" (Json.get_int "records" r);
          words_applied = req "words_applied" (Json.get_int "words_applied" r);
        }

let counts_to_json (c : Pmc_sim.Fault.counts) =
  Json.Obj
    [
      ("noc_drops", Json.int c.Pmc_sim.Fault.noc_drops);
      ("noc_corrupts", Json.int c.Pmc_sim.Fault.noc_corrupts);
      ("noc_delays", Json.int c.Pmc_sim.Fault.noc_delays);
      ("noc_retries", Json.int c.Pmc_sim.Fault.noc_retries);
      ("links_dead", Json.int c.Pmc_sim.Fault.links_dead);
      ("relay_deliveries", Json.int c.Pmc_sim.Fault.relay_deliveries);
      ("sdram_retries", Json.int c.Pmc_sim.Fault.sdram_retries);
      ("tile_stalls", Json.int c.Pmc_sim.Fault.tile_stalls);
      ("stall_cycles", Json.int c.Pmc_sim.Fault.stall_cycles);
      ("lock_timeouts", Json.int c.Pmc_sim.Fault.lock_timeouts);
      ("noc_draws", Json.int c.Pmc_sim.Fault.noc_draws);
      ("sdram_draws", Json.int c.Pmc_sim.Fault.sdram_draws);
      ("stall_draws", Json.int c.Pmc_sim.Fault.stall_draws);
      ("power_cut_draws", Json.int c.Pmc_sim.Fault.power_cut_draws);
      ("power_cuts", Json.int c.Pmc_sim.Fault.power_cuts);
    ]

let counts_of_json j : Pmc_sim.Fault.counts =
  let i key = req key (Json.get_int key j) in
  (* the draw/power-cut counters default for results cached before they
     existed *)
  let opt key = Option.value ~default:0 (Json.get_int key j) in
  {
    Pmc_sim.Fault.noc_drops = i "noc_drops";
    noc_corrupts = i "noc_corrupts";
    noc_delays = i "noc_delays";
    noc_retries = i "noc_retries";
    links_dead = i "links_dead";
    relay_deliveries = i "relay_deliveries";
    sdram_retries = i "sdram_retries";
    tile_stalls = i "tile_stalls";
    stall_cycles = i "stall_cycles";
    lock_timeouts = i "lock_timeouts";
    noc_draws = opt "noc_draws";
    sdram_draws = opt "sdram_draws";
    stall_draws = opt "stall_draws";
    power_cut_draws = opt "power_cut_draws";
    power_cuts = opt "power_cuts";
  }

let metrics_to_json (m : Measure.metrics) =
  Json.Obj
    [
      ("cycles", Json.int m.Measure.cycles);
      ("noc_flits", Json.int m.Measure.noc_flits);
      ("noc_writes", Json.int m.Measure.noc_writes);
      ("flushes", Json.int m.Measure.flushes);
      ("lock_acquires", Json.int m.Measure.lock_acquires);
      ("lock_transfers", Json.int m.Measure.lock_transfers);
      ("dcache_misses", Json.int m.Measure.dcache_misses);
      ("instructions", Json.int m.Measure.instructions);
      ("utilization", Json.float m.Measure.utilization);
      ("requests", Json.int m.Measure.requests);
      ("p50", Json.int m.Measure.p50);
      ("p99", Json.int m.Measure.p99);
      ("p999", Json.int m.Measure.p999);
      ("lat_digest", Json.int m.Measure.lat_digest);
      ("throughput", Json.float m.Measure.throughput);
    ]

let metrics_of_json j : Measure.metrics =
  let i key = req key (Json.get_int key j) in
  (* the served-traffic metrics default for results cached before they
     existed: no requests recorded *)
  let opt key = Option.value ~default:0 (Json.get_int key j) in
  {
    Measure.cycles = i "cycles";
    noc_flits = i "noc_flits";
    noc_writes = i "noc_writes";
    flushes = i "flushes";
    lock_acquires = i "lock_acquires";
    lock_transfers = i "lock_transfers";
    dcache_misses = i "dcache_misses";
    instructions = i "instructions";
    utilization = req "utilization" (Json.get_num "utilization" j);
    requests = opt "requests";
    p50 = opt "p50";
    p99 = opt "p99";
    p999 = opt "p999";
    lat_digest = opt "lat_digest";
    throughput = Option.value ~default:0.0 (Json.get_num "throughput" j);
  }

let to_json (t : t) : Json.t =
  match t with
  | Litmus_outcomes rows ->
      Json.Obj
        [
          ("kind", Json.Str "litmus");
          ("rows", Json.List (List.map row_to_json rows));
        ]
  | Check_checked r ->
      Json.Obj
        [
          ("kind", Json.Str "check");
          ("name", Json.Str r.name);
          ("ok", Json.Bool r.ok);
          ("errors", Json.List (List.map (fun e -> Json.Str e) r.errors));
          ("warnings", Json.List (List.map (fun w -> Json.Str w) r.warnings));
          ("text", Json.Str r.text);
        ]
  | Bench_measured s ->
      Json.Obj
        [
          ("kind", Json.Str "bench");
          ("id", Json.Str s.id);
          ("ok", Json.Bool s.b_ok);
          ("deterministic", Json.Bool s.deterministic);
          ("repeats", Json.int s.repeats);
          ("metrics", metrics_to_json s.metrics);
        ]
  | Chaos_soaked r ->
      Json.Obj
        [
          ("kind", Json.Str "chaos");
          ("app", Json.Str r.Pmc_apps.Chaos.app);
          ( "backend",
            Json.Str (Pmc.Backends.to_string r.Pmc_apps.Chaos.backend) );
          ("cores", Json.int r.Pmc_apps.Chaos.cores);
          ("scale", Json.int r.Pmc_apps.Chaos.scale);
          ("seed", Json.int r.Pmc_apps.Chaos.seed);
          ("intensity", Json.float r.Pmc_apps.Chaos.intensity);
          ("verdict", verdict_to_json r.Pmc_apps.Chaos.verdict);
          ("wall", Json.int r.Pmc_apps.Chaos.wall);
          ("faults", counts_to_json r.Pmc_apps.Chaos.faults);
          ("events", Json.int r.Pmc_apps.Chaos.events);
          ("dropped", Json.int r.Pmc_apps.Chaos.dropped);
          ("replayed", Json.Bool r.Pmc_apps.Chaos.replayed);
        ]
  | Crash_checked r ->
      Json.Obj
        [
          ("kind", Json.Str "chaos-crash");
          ("app", Json.Str r.Pmc_apps.Crash.app);
          ( "backend",
            Json.Str (Pmc.Backends.to_string r.Pmc_apps.Crash.backend) );
          ("cores", Json.int r.Pmc_apps.Crash.cores);
          ("scale", Json.int r.Pmc_apps.Crash.scale);
          ("seed", Json.int r.Pmc_apps.Crash.seed);
          ("window", Json.int r.Pmc_apps.Crash.window);
          ( "cut",
            match r.Pmc_apps.Crash.cut with
            | None -> Json.Null
            | Some c -> Json.int c );
          ("log", Json.Bool r.Pmc_apps.Crash.log);
          ("verdict", crash_verdict_to_json r.Pmc_apps.Crash.verdict);
          ("wall", Json.int r.Pmc_apps.Crash.wall);
          ( "objects",
            Json.List (List.map obj_check_to_json r.Pmc_apps.Crash.objects) );
          ("recovery", recovery_to_json r.Pmc_apps.Crash.recovery);
          ("events", Json.int r.Pmc_apps.Crash.events);
          ("dropped", Json.int r.Pmc_apps.Crash.dropped);
          ("replayed", Json.Bool r.Pmc_apps.Crash.replayed);
        ]
  | Error e ->
      Json.Obj
        [
          ("kind", Json.Str "error");
          ("error", Json.Str (error_kind_name e.kind));
          ("detail", Json.Str e.detail);
        ]

let of_json (j : Json.t) : t =
  match req "kind" (Json.get_str "kind" j) with
  | "litmus" ->
      Litmus_outcomes
        (List.map row_of_json (req "rows" (Json.get_list "rows" j)))
  | "check" ->
      Check_checked
        {
          name = req "name" (Json.get_str "name" j);
          ok = req "ok" (Json.get_bool "ok" j);
          errors = str_list "errors" j;
          warnings = str_list "warnings" j;
          text = req "text" (Json.get_str "text" j);
        }
  | "bench" ->
      Bench_measured
        {
          id = req "id" (Json.get_str "id" j);
          b_ok = req "ok" (Json.get_bool "ok" j);
          deterministic = req "deterministic" (Json.get_bool "deterministic" j);
          repeats = req "repeats" (Json.get_int "repeats" j);
          metrics = metrics_of_json (req "metrics" (Json.member "metrics" j));
        }
  | "chaos" ->
      let backend_s = req "backend" (Json.get_str "backend" j) in
      let backend =
        match Pmc.Backends.of_string backend_s with
        | Some b -> b
        | None -> fail ("unknown backend " ^ backend_s)
      in
      Chaos_soaked
        {
          Pmc_apps.Chaos.app = req "app" (Json.get_str "app" j);
          backend;
          cores = req "cores" (Json.get_int "cores" j);
          scale = req "scale" (Json.get_int "scale" j);
          seed = req "seed" (Json.get_int "seed" j);
          intensity = req "intensity" (Json.get_num "intensity" j);
          verdict = verdict_of_json (req "verdict" (Json.member "verdict" j));
          wall = req "wall" (Json.get_int "wall" j);
          faults = counts_of_json (req "faults" (Json.member "faults" j));
          events = req "events" (Json.get_int "events" j);
          dropped = req "dropped" (Json.get_int "dropped" j);
          replayed = req "replayed" (Json.get_bool "replayed" j);
        }
  | "chaos-crash" ->
      let backend_s = req "backend" (Json.get_str "backend" j) in
      let backend =
        match Pmc.Backends.of_string backend_s with
        | Some b -> b
        | None -> fail ("unknown backend " ^ backend_s)
      in
      Crash_checked
        {
          Pmc_apps.Crash.app = req "app" (Json.get_str "app" j);
          backend;
          cores = req "cores" (Json.get_int "cores" j);
          scale = req "scale" (Json.get_int "scale" j);
          seed = req "seed" (Json.get_int "seed" j);
          window = req "window" (Json.get_int "window" j);
          cut =
            (match Json.member "cut" j with
            | None | Some Json.Null -> None
            | Some v -> (
                match Json.to_int v with
                | Some c -> Some c
                | None -> fail "cut must be an integer or null"));
          log = req "log" (Json.get_bool "log" j);
          verdict =
            crash_verdict_of_json (req "verdict" (Json.member "verdict" j));
          wall = req "wall" (Json.get_int "wall" j);
          objects =
            List.map obj_check_of_json
              (req "objects" (Json.get_list "objects" j));
          recovery = recovery_of_json (Json.member "recovery" j);
          events = req "events" (Json.get_int "events" j);
          dropped = req "dropped" (Json.get_int "dropped" j);
          replayed = req "replayed" (Json.get_bool "replayed" j);
        }
  | "error" ->
      let kind_s = req "error" (Json.get_str "error" j) in
      let kind =
        match error_kind_of_name kind_s with
        | Some k -> k
        | None -> fail ("unknown error kind " ^ kind_s)
      in
      Error { kind; detail = req "detail" (Json.get_str "detail" j) }
  | k -> fail ("unknown kind " ^ k)

(* ---------------- rendering ----------------

   These are the bytes the one-shot CLIs print, reproduced from the
   structured result so the daemon's answers diff clean against them. *)

let pp_row ppf (r : litmus_row) =
  (* identical to {!Pmc_model.Litmus.pp_result} *)
  Fmt.pf ppf "%-28s %-24s {%a} (%d states%s)" r.program r.model
    Fmt.(list ~sep:(any "; ") string)
    r.outcomes r.states
    (if r.stuck > 0 then Printf.sprintf ", %d STUCK" r.stuck else "")

let pp ppf (t : t) =
  match t with
  | Litmus_outcomes rows ->
      (* the per-program section of litmus_run's default output *)
      (match rows with
      | [] -> ()
      | r0 :: _ -> Fmt.pf ppf "--- %s ---@." r0.program);
      List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rows;
      Fmt.pf ppf "@."
  | Check_checked r -> Fmt.pf ppf "%s" r.text
  | Bench_measured s ->
      Fmt.pf ppf "%-28s %s%s  (repeats %d)@." s.id
        (if s.b_ok then "ok" else "CHECKSUM-MISMATCH")
        (if s.deterministic then "" else " NONDETERMINISTIC")
        s.repeats;
      let m = s.metrics in
      Fmt.pf ppf
        "  cycles %d  noc_flits %d  noc_writes %d  flushes %d@.  \
         lock_acquires %d  lock_transfers %d  dcache_misses %d  \
         instructions %d  utilization %s@."
        m.Measure.cycles m.Measure.noc_flits m.Measure.noc_writes
        m.Measure.flushes m.Measure.lock_acquires m.Measure.lock_transfers
        m.Measure.dcache_misses m.Measure.instructions
        (Json.to_compact (Json.float m.Measure.utilization))
  | Chaos_soaked r ->
      (* identical to pmc_chaos run's report *)
      Fmt.pf ppf "%a@.%a@.trace: %d events captured, %d dropped@."
        Pmc_apps.Chaos.pp_report r Pmc_apps.Chaos.pp_tag_summary
        r.Pmc_apps.Chaos.faults r.Pmc_apps.Chaos.events
        r.Pmc_apps.Chaos.dropped
  | Crash_checked r ->
      (* identical to pmc_chaos crash's per-experiment report *)
      Fmt.pf ppf "%a@.trace: %d events captured, %d dropped@."
        Pmc_apps.Crash.pp_report r r.Pmc_apps.Crash.events
        r.Pmc_apps.Crash.dropped
  | Error e ->
      Fmt.pf ppf "error (%s): %s@." (error_kind_name e.kind) e.detail
