(* A job: one self-contained unit of checking/simulation work, the
   common currency of the one-shot CLIs and the pmc_serve daemon.

   Each variant captures *by value* everything its run depends on — the
   litmus program name, the annotated source text, the full case
   geometry, the chaos seed — so [Run.run] is a pure function of the
   job (plus the budget) and a job's canonical JSON encoding is a sound
   cache key: two equal encodings denote the same verdict, bit for bit.
   Nothing here reads the filesystem or the clock. *)

module Json = Pmc_bench.Json

type litmus = {
  program : string;        (* a standard litmus program, by name *)
  models : string list;    (* [] = every model *)
  limit : int option;      (* state-space budget override *)
}

type check = {
  name : string;           (* reporting name (the CLI passes the path) *)
  source : string;         (* annotated-program text ({!Pmc_compile.Parse}) *)
}

type bench = {
  app : string;
  backend : string;
  topology : string;       (* fabric name ("star", "mesh:4x4", ...) *)
  cores : int;
  scale : int;
  unbatched : bool;
  warmup : int;
  repeat : int;
}

type chaos = {
  c_app : string;
  c_backend : string;
  c_topology : string;
  c_cores : int;
  c_scale : int;
  seed : int;
  intensity : float;
  model_check : bool;
  replay_budget : int option;
}

(* The power-cut cycle is a pure function of (seed, window)
   ([Pmc_sim.Fault.power_cut_cycle]), so carrying the window by value —
   instead of re-learning it from a twin run at execution time — keeps
   the cut deterministic from the encoding alone: cache-key
   soundness. *)
type crash = {
  x_app : string;
  x_backend : string;
  x_topology : string;
  x_cores : int;
  x_scale : int;
  x_seed : int;
  x_window : int;         (* cut window in cycles (> 0) *)
  x_log : bool;           (* redo log armed; false = tearable debug mode *)
  x_model_check : bool;
  x_replay_budget : int option;
}

type t =
  | Litmus of litmus
  | Check of check
  | Bench of bench
  | Chaos of chaos
  | Crash of crash

let kind_name = function
  | Litmus _ -> "litmus"
  | Check _ -> "check"
  | Bench _ -> "bench"
  | Chaos _ -> "chaos"
  | Crash _ -> "chaos-crash"

(* ---------------- JSON ----------------

   Field order is fixed by construction, so [to_json] is canonical: the
   compact rendering of equal jobs is equal, which is what the verdict
   cache keys on. *)

let opt_int = function None -> Json.Null | Some n -> Json.int n

let to_json (t : t) : Json.t =
  match t with
  | Litmus l ->
      Json.Obj
        [
          ("kind", Json.Str "litmus");
          ("program", Json.Str l.program);
          ("models", Json.List (List.map (fun m -> Json.Str m) l.models));
          ("limit", opt_int l.limit);
        ]
  | Check c ->
      Json.Obj
        [
          ("kind", Json.Str "check");
          ("name", Json.Str c.name);
          ("source", Json.Str c.source);
        ]
  | Bench b ->
      Json.Obj
        [
          ("kind", Json.Str "bench");
          ("app", Json.Str b.app);
          ("backend", Json.Str b.backend);
          ("topology", Json.Str b.topology);
          ("cores", Json.int b.cores);
          ("scale", Json.int b.scale);
          ("unbatched", Json.Bool b.unbatched);
          ("warmup", Json.int b.warmup);
          ("repeat", Json.int b.repeat);
        ]
  | Chaos c ->
      Json.Obj
        [
          ("kind", Json.Str "chaos");
          ("app", Json.Str c.c_app);
          ("backend", Json.Str c.c_backend);
          ("topology", Json.Str c.c_topology);
          ("cores", Json.int c.c_cores);
          ("scale", Json.int c.c_scale);
          ("seed", Json.int c.seed);
          ("intensity", Json.float c.intensity);
          ("model_check", Json.Bool c.model_check);
          ("replay_budget", opt_int c.replay_budget);
        ]
  | Crash c ->
      Json.Obj
        [
          ("kind", Json.Str "chaos-crash");
          ("app", Json.Str c.x_app);
          ("backend", Json.Str c.x_backend);
          ("topology", Json.Str c.x_topology);
          ("cores", Json.int c.x_cores);
          ("scale", Json.int c.x_scale);
          ("seed", Json.int c.x_seed);
          ("window", Json.int c.x_window);
          ("log", Json.Bool c.x_log);
          ("model_check", Json.Bool c.x_model_check);
          ("replay_budget", opt_int c.x_replay_budget);
        ]

let fail msg = failwith ("Pmc_jobs.Job: malformed job: " ^ msg)
let req what = function Some v -> v | None -> fail ("missing " ^ what)

(* Jobs encoded before fabrics existed carry no topology field; they all
   ran on the star fabric, so defaulting keeps old encodings meaning
   exactly what they meant (verdict-cache soundness). *)
let get_topology j =
  Option.value ~default:"star" (Json.get_str "topology" j)

let get_opt_int key j =
  match Json.member key j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_int v with
      | Some n -> Some n
      | None -> fail (key ^ " must be an integer or null"))

let of_json (j : Json.t) : t =
  match req "kind" (Json.get_str "kind" j) with
  | "litmus" ->
      let models =
        match Json.get_list "models" j with
        | None -> []
        | Some l ->
            List.map (fun m -> req "model name" (Json.to_str m)) l
      in
      Litmus
        {
          program = req "program" (Json.get_str "program" j);
          models;
          limit = get_opt_int "limit" j;
        }
  | "check" ->
      Check
        {
          name = req "name" (Json.get_str "name" j);
          source = req "source" (Json.get_str "source" j);
        }
  | "bench" ->
      Bench
        {
          app = req "app" (Json.get_str "app" j);
          backend = req "backend" (Json.get_str "backend" j);
          topology = get_topology j;
          cores = req "cores" (Json.get_int "cores" j);
          scale = req "scale" (Json.get_int "scale" j);
          unbatched = req "unbatched" (Json.get_bool "unbatched" j);
          warmup = req "warmup" (Json.get_int "warmup" j);
          repeat = req "repeat" (Json.get_int "repeat" j);
        }
  | "chaos" ->
      Chaos
        {
          c_app = req "app" (Json.get_str "app" j);
          c_backend = req "backend" (Json.get_str "backend" j);
          c_topology = get_topology j;
          c_cores = req "cores" (Json.get_int "cores" j);
          c_scale = req "scale" (Json.get_int "scale" j);
          seed = req "seed" (Json.get_int "seed" j);
          intensity = req "intensity" (Json.get_num "intensity" j);
          model_check = req "model_check" (Json.get_bool "model_check" j);
          replay_budget = get_opt_int "replay_budget" j;
        }
  | "chaos-crash" ->
      Crash
        {
          x_app = req "app" (Json.get_str "app" j);
          x_backend = req "backend" (Json.get_str "backend" j);
          x_topology = get_topology j;
          x_cores = req "cores" (Json.get_int "cores" j);
          x_scale = req "scale" (Json.get_int "scale" j);
          x_seed = req "seed" (Json.get_int "seed" j);
          x_window = req "window" (Json.get_int "window" j);
          x_log = req "log" (Json.get_bool "log" j);
          x_model_check = req "model_check" (Json.get_bool "model_check" j);
          x_replay_budget = get_opt_int "replay_budget" j;
        }
  | k -> fail ("unknown kind " ^ k)

let key t = Json.to_compact (to_json t)

let pp ppf t =
  match t with
  | Litmus l -> Fmt.pf ppf "litmus %s" l.program
  | Check c -> Fmt.pf ppf "check %s" c.name
  | Bench b ->
      let topo = if b.topology = "star" then "" else "/" ^ b.topology in
      Fmt.pf ppf "bench %s/%s%s/c%d/s%d" b.app b.backend topo b.cores b.scale
  | Chaos c ->
      let topo = if c.c_topology = "star" then "" else "/" ^ c.c_topology in
      Fmt.pf ppf "chaos %s/%s%s/c%d/s%d seed=%d" c.c_app c.c_backend topo
        c.c_cores c.c_scale c.seed
  | Crash c ->
      let topo = if c.x_topology = "star" then "" else "/" ^ c.x_topology in
      Fmt.pf ppf "crash %s/%s%s/c%d/s%d seed=%d%s" c.x_app c.x_backend topo
        c.x_cores c.x_scale c.x_seed
        (if c.x_log then "" else " no-log")
