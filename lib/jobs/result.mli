(** Typed job results with stable JSON encodings, CLI-identical
    rendering and the documented 0/2/3/4 exit-code contract.

    Every field is deterministic — no host time, no process state — so
    a result is a pure function of its {!Job.t} and serialized results
    can be cached and replayed byte-identically. *)

type litmus_row = {
  program : string;
  model : string;
  outcomes : string list;  (** sorted canonical outcome strings *)
  states : int;
  stuck : int;
}

type check_report = {
  name : string;
  ok : bool;
  errors : string list;
  warnings : string list;
  text : string;
      (** the exact bytes [pmc_check] prints for this program (check
          report + Table-II expansion) *)
}

type bench_sample = {
  id : string;  (** {!Pmc_bench.Spec.case_id} *)
  b_ok : bool;
  deterministic : bool;
  repeats : int;
  metrics : Pmc_bench.Measure.metrics;
      (** architectural metrics only — host seconds are deliberately
          absent: they are the one nondeterministic quantity and would
          break cache-hit byte-identity *)
}

type error_kind =
  | Bad_request     (** unknown app/backend/program/model, parse error *)
  | Budget_exceeded (** a cycle or state budget was exhausted *)
  | Runtime_error   (** a typed {!Pmc_sim.Pmc_error} or unexpected exn *)

type error = { kind : error_kind; detail : string }

type t =
  | Litmus_outcomes of litmus_row list  (** one row per model *)
  | Check_checked of check_report
  | Bench_measured of bench_sample
  | Chaos_soaked of Pmc_apps.Chaos.report
  | Crash_checked of Pmc_apps.Crash.report
      (** one power-cut crash-recovery experiment ({!Pmc_apps.Crash}) *)
  | Error of error

val exit_code : t -> int
(** The pmc_demo convention: 0 success; 2 input/budget/runtime error;
    3 property failure (discipline errors, checksum mismatch, wrong
    result); 4 formal PMC-model inconsistency. *)

val exit_code_all : t list -> int
(** Combine a batch: input errors (2) dominate, then inconsistency (4),
    then property failures (3), else 0. *)

val ok : t -> bool
(** [exit_code t = 0]. *)

val error_kind_name : error_kind -> string

val to_json : t -> Pmc_bench.Json.t
(** Canonical (fixed field order); int64 checksums travel as decimal
    strings so no bits are lost to JSON doubles. *)

val of_json : Pmc_bench.Json.t -> t
(** @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Renders exactly the bytes the corresponding one-shot CLI prints:
    litmus_run's per-program section, pmc_check's report text,
    pmc_chaos run's report — which is what lets CI diff daemon answers
    against the CLIs. *)

val pp_row : Format.formatter -> litmus_row -> unit
(** One litmus row, identical to {!Pmc_model.Litmus.pp_result}. *)
