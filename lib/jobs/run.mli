(** Job execution: the pure function from (job, budget) to result.

    [run] never raises and touches no global state beyond what the
    simulator resets per run (DESIGN.md §11), so it may execute on any
    domain of a {!Pmc_par.Pool} and its results are reproducible bit
    for bit — the property the {!Pmc_serve} verdict cache relies on. *)

type budget = {
  max_cycles : int option;
      (** per-request simulated-cycle budget: tightens the livelock
          watchdog of bench and chaos runs *)
  max_states : int option;
      (** per-request state-space budget for litmus enumeration *)
}

val no_budget : budget

val tighter : budget -> budget -> budget
(** Pointwise minimum — how a server-wide budget combines with a
    per-request one. *)

val budget_to_json : budget -> Pmc_bench.Json.t
val budget_of_json : Pmc_bench.Json.t -> budget

val run : ?budget:budget -> Job.t -> Result.t
(** Execute one job.  Total: unknown names, parse failures, budget
    overruns and runtime errors all come back as {!Result.Error}. *)

val run_all :
  ?budget:budget -> ?pool:Pmc_par.Pool.t -> Job.t list -> Result.t list
(** Map {!run} over a batch, fanning out over [pool] when given;
    results come back in input order at any pool width. *)

(** {1 Name resolution} — shared by the CLIs and the daemon *)

val standard_programs : (string * Pmc_model.Lprog.t) list
(** The standard litmus programs keyed by CLI-friendly slug
    (["mp_plain"], ["sb"], ...). *)

val program_names : string list

val find_program : string -> Pmc_model.Lprog.t option
(** By slug or by full descriptive name. *)

val model_names : string list
(** Short model aliases: ["sc"; "pc"; "cc"; "ec"; "slow"; "pmc"]. *)

val find_model : string -> (module Pmc_model.Models.SEM) option
(** By short alias or full name, case-insensitively. *)
