(** Unix-domain-socket transport: a single-threaded [select] event loop
    speaking newline-delimited JSON (see {!Protocol}).

    Jobs run on the server's pool domains; a self-pipe wakes the loop
    when one completes.  At pool width 1 the loop runs jobs inline, one
    per iteration — a sequential deterministic event loop. *)

val serve : ?max_clients:int -> socket_path:string -> Server.t -> unit
(** Bind [socket_path] (replacing any stale socket file) and serve
    until a [shutdown] request has been received {e and} every accepted
    job has completed and every parked reply has been delivered — the
    graceful drain.  Removes the socket file on exit.  Does not shut
    the pool down (callers own it). *)
