(** Minimal blocking client for the pmc_serve socket.

    One {!request} is one protocol round trip.  A [wait] submission
    blocks in {!request} until the daemon delivers the result line. *)

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket path.
    @raise Unix.Unix_error if the daemon is not listening. *)

val close : t -> unit

val request : t -> Protocol.request -> Protocol.response
(** @raise Failure on a malformed response line.
    @raise End_of_file if the daemon closed the connection. *)

val send : t -> Protocol.request -> unit
(** Send without reading the reply — requests pipeline; the daemon
    answers in processing order (a [wait] result is delivered when the
    job completes, after any replies sent in between). *)

val recv : t -> Protocol.response
(** Read the next response line.  Same exceptions as {!request}. *)

val with_connection : string -> (t -> 'a) -> 'a
