(* Unix-domain-socket transport for {!Server}: a single-threaded
   [select] event loop speaking the newline-delimited JSON protocol.

   Concurrency model: the loop owns every socket; job execution happens
   on the pool's worker domains.  A worker signals completion by
   writing one byte to a self-pipe (via [Server.set_notify]), which
   wakes a blocked [select] so parked [wait] replies go out promptly.
   On a width-1 pool there are no workers — the loop runs one queued
   job inline per iteration, staying a sequential deterministic event
   loop. *)

type client = { fd : Unix.file_descr; buf : Buffer.t }

let ignore_sigpipe () =
  (* a client that disconnects mid-reply must not kill the daemon *)
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let serve ?(max_clients = 64) ~socket_path (t : Server.t) =
  ignore_sigpipe ();
  (* a stale socket file from a crashed daemon would make bind fail *)
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd max_clients;
  Unix.set_nonblock listen_fd;
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  Server.set_notify t (fun () ->
      try ignore (Unix.write pipe_w (Bytes.of_string "!") 0 1)
      with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
      -> ());
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  (* parked [wait] requests: job id x the client owed the result *)
  let waiters : (int * client) list ref = ref [] in
  let stopping = ref false in
  let close_client c =
    Hashtbl.remove clients c.fd;
    waiters := List.filter (fun (_, w) -> w.fd <> c.fd) !waiters;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let send c (resp : Protocol.response) =
    match write_all c.fd (Protocol.response_to_line resp ^ "\n") with
    | () -> ()
    | exception Unix.Unix_error _ -> close_client c
  in
  let handle_line c line =
    match Protocol.request_of_line line with
    | Error reason -> send c (Protocol.Protocol_error { reason })
    | Ok request -> (
        (match request with Protocol.Shutdown -> stopping := true | _ -> ());
        match Server.handle t request with
        | Server.Reply resp -> send c resp
        | Server.Park id ->
            if Server.is_done t id then send c (Server.result_response t id)
            else waiters := (id, c) :: !waiters)
  in
  let read_buf = Bytes.create 65536 in
  let feed c =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_client c
    | n ->
        Buffer.add_subbytes c.buf read_buf 0 n;
        (* split off every complete line; keep the partial tail *)
        let data = Buffer.contents c.buf in
        Buffer.clear c.buf;
        let rec lines start =
          match String.index_from_opt data start '\n' with
          | Some nl ->
              let line = String.sub data start (nl - start) in
              if String.length line > 0 then handle_line c line;
              lines (nl + 1)
          | None ->
              Buffer.add_substring c.buf data start
                (String.length data - start)
        in
        lines 0
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_client c
  in
  let accept_pending () =
    match Unix.accept listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace clients fd { fd; buf = Buffer.create 256 }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let drain_pipe () =
    let junk = Bytes.create 512 in
    let rec go () =
      match Unix.read pipe_r junk 0 (Bytes.length junk) with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
    in
    go ()
  in
  let sweep_waiters () =
    let ready, still = List.partition (fun (id, _) -> Server.is_done t id) !waiters in
    waiters := still;
    (* oldest first, so replies leave in submission order *)
    List.iter (fun (id, c) -> send c (Server.result_response t id)) (List.rev ready)
  in
  let finished () = !stopping && Server.idle t && !waiters = [] in
  while not (finished ()) do
    let fds =
      listen_fd :: pipe_r :: Hashtbl.fold (fun fd _ l -> fd :: l) clients []
    in
    (* poll when the loop itself has inline work to run (width 1) *)
    let timeout =
      if Server.width t = 1 && Server.queue_depth t > 0 then 0.0 else 0.25
    in
    let readable =
      match Unix.select fds [] [] timeout with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = listen_fd then accept_pending ()
        else if fd = pipe_r then drain_pipe ()
        else
          match Hashtbl.find_opt clients fd with
          | Some c -> feed c
          | None -> ())
      readable;
    if Server.width t = 1 then ignore (Server.step t);
    sweep_waiters ()
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    clients;
  Unix.close listen_fd;
  Unix.close pipe_r;
  Unix.close pipe_w;
  try Unix.unlink socket_path with Unix.Unix_error _ -> ()
