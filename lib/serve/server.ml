(* The daemon's brain, socket-free: request in, response (or a parked
   job id) out.  Transport lives in {!Daemon}; tests drive this module
   directly.

   Threading: [handle] and the read-side accessors run on the owner
   (event-loop) domain; job execution runs on pool worker domains.  The
   single mutex [m] guards every mutable field and the cache.  Workers
   call [notify] after completing a job so a blocked event loop can wake
   up (the daemon points it at a self-pipe). *)

module Json = Pmc_bench.Json
module Job = Pmc_jobs.Job
module Result_ = Pmc_jobs.Result
module Run = Pmc_jobs.Run
module Pool = Pmc_par.Pool

type job_state = Queued | Running | Done

type entry = {
  id : int;
  job : Job.t;
  mutable state : job_state;
  mutable result : Result_.t option;
  cached : bool;
}

type t = {
  pool : Pool.t;
  budget : Run.budget;  (* server-wide ceiling; per-request budgets tighten *)
  max_queue : int;
  cache : Cache.t;
  m : Mutex.t;
  entries : (int, entry) Hashtbl.t;
  mutable next_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable draining : bool;
  mutable notify : unit -> unit;
}

type outcome = Reply of Protocol.response | Park of int

let create ?(budget = Run.no_budget) ?(cache_capacity = 256) ?(max_queue = 64)
    pool =
  if max_queue < 1 then invalid_arg "Server.create: max_queue must be >= 1";
  {
    pool;
    budget;
    max_queue;
    cache = Cache.create ~capacity:cache_capacity;
    m = Mutex.create ();
    entries = Hashtbl.create 64;
    next_id = 1;
    submitted = 0;
    completed = 0;
    rejected = 0;
    draining = false;
    notify = ignore;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let set_notify t f = locked t (fun () -> t.notify <- f)
let width t = Pool.jobs t.pool

(* outstanding = accepted but not yet finished; what admission bounds *)
let outstanding_locked t = t.submitted - t.completed
let queue_depth t = locked t (fun () -> outstanding_locked t)
let idle t = locked t (fun () -> outstanding_locked t = 0)
let draining t = locked t (fun () -> t.draining)

let running_locked t =
  Hashtbl.fold
    (fun _ e n -> if e.state = Running then n + 1 else n)
    t.entries 0

let stats t : Protocol.stats =
  locked t (fun () ->
      {
        Protocol.width = width t;
        queue_depth = outstanding_locked t;
        running = running_locked t;
        submitted = t.submitted;
        completed = t.completed;
        rejected = t.rejected;
        cache_hits = Cache.hits t.cache;
        cache_misses = Cache.misses t.cache;
        cache_entries = Cache.size t.cache;
        draining = t.draining;
      })

(* Rejections are rendered typed {!Pmc_sim.Pmc_error} contexts, the
   same error vocabulary the simulated platform itself speaks. *)
let reject_reason ~detail =
  Pmc_sim.Pmc_error.to_string
    { Pmc_sim.Pmc_error.core = -1; obj = "pmc_serve"; op = "submit"; detail }

(* The verdict-cache key: canonical compact job JSON plus the effective
   budget.  Complete by the §11 re-entrancy rule — results depend on
   nothing else. *)
let cache_key job budget =
  Job.key job ^ "#" ^ Json.to_compact (Run.budget_to_json budget)

let exec t (entry : entry) ~key ~budget =
  locked t (fun () -> entry.state <- Running);
  let result = Run.run ~budget entry.job in
  let line = Json.to_compact (Result_.to_json result) in
  let notify =
    locked t (fun () ->
        entry.result <- Some result;
        entry.state <- Done;
        t.completed <- t.completed + 1;
        Cache.add t.cache key line;
        t.notify)
  in
  notify ()

let submit t ~job ~budget : int * [ `Fresh | `Cached ] option =
  let budget = Run.tighter t.budget budget in
  let key = cache_key job budget in
  locked t (fun () ->
      if t.draining then (
        t.rejected <- t.rejected + 1;
        (0, None))
      else
        match Cache.find t.cache key with
        | Some line ->
            (* replay the cached verdict: decode of the exact bytes a
               fresh run would have produced *)
            let result = Result_.of_json (Json.parse line) in
            let id = t.next_id in
            t.next_id <- id + 1;
            t.submitted <- t.submitted + 1;
            t.completed <- t.completed + 1;
            Hashtbl.replace t.entries id
              { id; job; state = Done; result = Some result; cached = true };
            (id, Some `Cached)
        | None ->
            if outstanding_locked t >= t.max_queue then (
              t.rejected <- t.rejected + 1;
              (-1, None))
            else begin
              let id = t.next_id in
              t.next_id <- id + 1;
              t.submitted <- t.submitted + 1;
              let entry =
                { id; job; state = Queued; result = None; cached = false }
              in
              Hashtbl.replace t.entries id entry;
              Pool.submit t.pool (fun () -> exec t entry ~key ~budget);
              (id, Some `Fresh)
            end)

let find t id = locked t (fun () -> Hashtbl.find_opt t.entries id)

let is_done t id =
  match find t id with Some { state = Done; _ } -> true | _ -> false

let result_response t id : Protocol.response =
  match find t id with
  | None ->
      Protocol.Protocol_error
        { reason = Printf.sprintf "unknown job id %d" id }
  | Some { state = Done; result = Some result; _ } ->
      Protocol.Job_result { id; result }
  | Some _ -> Protocol.Pending { id }

let handle t (request : Protocol.request) : outcome =
  match request with
  | Protocol.Submit { job; budget; wait } -> (
      match submit t ~job ~budget with
      | 0, None ->
          Reply
            (Protocol.Rejected
               { reason = reject_reason ~detail:"daemon is draining" })
      | _, None ->
          Reply
            (Protocol.Rejected
               {
                 reason =
                   reject_reason
                     ~detail:
                       (Printf.sprintf "queue full (max %d jobs outstanding)"
                          t.max_queue);
               })
      | id, Some `Cached when wait -> Reply (result_response t id)
      | id, Some cached ->
          if wait then Park id
          else Reply (Protocol.Submitted { id; cached = cached = `Cached }))
  | Protocol.Status { id } -> (
      match find t id with
      | None ->
          Reply
            (Protocol.Protocol_error
               { reason = Printf.sprintf "unknown job id %d" id })
      | Some e ->
          let state =
            match e.state with
            | Queued -> "queued"
            | Running -> "running"
            | Done -> "done"
          in
          Reply (Protocol.Job_status { id; state }))
  | Protocol.Result_of { id; wait } -> (
      match find t id with
      | None ->
          Reply
            (Protocol.Protocol_error
               { reason = Printf.sprintf "unknown job id %d" id })
      | Some { state = Done; _ } -> Reply (result_response t id)
      | Some _ -> if wait then Park id else Reply (Protocol.Pending { id }))
  | Protocol.Stats -> Reply (Protocol.Stats_reply (stats t))
  | Protocol.Shutdown ->
      let pending =
        locked t (fun () ->
            t.draining <- true;
            outstanding_locked t)
      in
      Reply (Protocol.Shutdown_started { pending })

(* width-1 execution path: the owner runs queued jobs inline *)
let step t = Pool.run_pending_one t.pool

(* drain every outstanding job (helping on the calling domain) *)
let drain t = Pool.drain_tasks t.pool
