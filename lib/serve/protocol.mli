(** The pmc_serve wire protocol: newline-delimited JSON, one request or
    response object per line over a Unix-domain socket.

    Encodings are canonical (fixed field order, compact printing via
    {!Pmc_bench.Json.to_compact}), and responses embed
    {!Pmc_jobs.Result} in the same canonical form the verdict cache
    stores — a cache hit is byte-identical to a fresh run all the way
    down the wire. *)

type request =
  | Submit of { job : Pmc_jobs.Job.t; budget : Pmc_jobs.Run.budget; wait : bool }
      (** [wait]: hold the reply until the job completes and answer
          with the result itself instead of a ticket *)
  | Status of { id : int }
  | Result_of of { id : int; wait : bool }
  | Stats
  | Shutdown

type stats = {
  width : int;        (** pool width the daemon multiplexes onto *)
  queue_depth : int;  (** accepted jobs not yet finished *)
  running : int;
  submitted : int;
  completed : int;
  rejected : int;     (** admission-control rejections *)
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  draining : bool;
}

type response =
  | Submitted of { id : int; cached : bool }
  | Rejected of { reason : string }
      (** admission control or a draining daemon; [reason] renders a
          typed {!Pmc_sim.Pmc_error} context *)
  | Job_status of { id : int; state : string }
      (** [state] is ["queued"], ["running"] or ["done"] *)
  | Job_result of { id : int; result : Pmc_jobs.Result.t }
  | Pending of { id : int }
  | Stats_reply of stats
  | Shutdown_started of { pending : int }
  | Protocol_error of { reason : string }

(** {1 JSON} *)

val request_to_json : request -> Pmc_bench.Json.t
val request_of_json : Pmc_bench.Json.t -> request
(** @raise Malformed *)

val response_to_json : response -> Pmc_bench.Json.t
val response_of_json : Pmc_bench.Json.t -> response
(** @raise Malformed *)

val stats_to_json : stats -> Pmc_bench.Json.t
val stats_of_json : Pmc_bench.Json.t -> stats

exception Malformed of string

(** {1 Line framing} — the exact bytes on the wire, minus the ['\n'] *)

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
