(* Minimal blocking client for the pmc_serve socket: one request line
   out, one response line back.  Used by the pmc_serve CLI subcommands
   and the test suite. *)

type t = { fd : Unix.file_descr; ic : in_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write t.fd b off (n - off))
  in
  go 0

let recv_line t = input_line t.ic

let send t (req : Protocol.request) = send_line t (Protocol.request_to_line req)

let recv t : Protocol.response =
  match Protocol.response_of_line (recv_line t) with
  | Ok resp -> resp
  | Error m -> failwith ("pmc_serve client: malformed response: " ^ m)

let request t (req : Protocol.request) : Protocol.response =
  send t req;
  recv t

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
