(** The daemon's brain, socket-free: parsed request in, response out.

    {!Daemon} adds the Unix-domain-socket transport; tests drive this
    module directly.  [handle] runs on the owner domain; jobs execute on
    the pool's worker domains (or inline via {!step} at width 1). *)

type t

type outcome =
  | Reply of Protocol.response  (** answer now *)
  | Park of int
      (** a [wait] request on job [id]: answer with {!result_response}
          once the job completes (watch {!set_notify} / {!is_done}) *)

val create :
  ?budget:Pmc_jobs.Run.budget ->
  ?cache_capacity:int ->
  ?max_queue:int ->
  Pmc_par.Pool.t ->
  t
(** [budget] is the server-wide ceiling; per-request budgets only
    tighten it.  [max_queue] bounds accepted-but-unfinished jobs
    (admission control).  The pool is borrowed, not owned. *)

val handle : t -> Protocol.request -> outcome
(** Total: rejections and unknown ids come back as typed responses.
    Submissions are answered [Submitted] (or the result itself under
    [wait]); a draining or full server answers [Rejected] with a
    rendered {!Pmc_sim.Pmc_error} context as the reason. *)

val result_response : t -> int -> Protocol.response
(** [Job_result] once done, [Pending] before, [Protocol_error] for an
    unknown id. *)

val is_done : t -> int -> bool
val stats : t -> Protocol.stats
val queue_depth : t -> int
val idle : t -> bool  (** no accepted job is still outstanding *)

val draining : t -> bool
(** Set by a [Shutdown] request: no new work is admitted, outstanding
    jobs still complete and their results remain queryable. *)

val set_notify : t -> (unit -> unit) -> unit
(** [f] is invoked (on a worker domain) after each job completes; the
    daemon points this at a self-pipe to wake its [select] loop. *)

val width : t -> int

val step : t -> bool
(** Run one queued job inline on the calling domain; [false] if none
    was queued.  The width-1 execution path. *)

val drain : t -> unit
(** Help run queued jobs, then block until all outstanding jobs are
    done. *)
