(** Bounded LRU verdict cache: canonical job key -> serialized result.

    Soundness rests on DESIGN.md §11: a job's result is a pure function
    of (program, model, seed, config), so the canonical compact JSON of
    the job plus its effective budget is a complete cache key and a hit
    can be replayed byte-identically to a fresh run.

    Not thread-safe — callers serialize access (the server does so
    under its own lock). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : t -> string -> string option
(** Lookup; refreshes the entry's recency and counts a hit or miss. *)

val add : t -> string -> string -> unit
(** Insert, evicting the least-recently-used entry when full.
    Re-inserting an existing key only refreshes its recency. *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
