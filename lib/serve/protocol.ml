(* The wire protocol: newline-delimited JSON, one request or response
   object per line, over a Unix domain socket.

   The encoding reuses the repo's hand-rolled {!Pmc_bench.Json} with
   its compact printer, so the daemon carries no new dependency and a
   client is scriptable with a couple of lines of anything that speaks
   JSON.  Responses embed {!Pmc_jobs.Result} verbatim — the same
   canonical encoding the verdict cache stores, which is why a cache
   hit is byte-identical to a fresh run all the way to the client. *)

module Json = Pmc_bench.Json
module Job = Pmc_jobs.Job
module Result_ = Pmc_jobs.Result
module Run = Pmc_jobs.Run

type request =
  | Submit of { job : Job.t; budget : Run.budget; wait : bool }
      (* [wait]: hold the reply until the job completes and answer with
         the result itself *)
  | Status of { id : int }
  | Result_of of { id : int; wait : bool }
  | Stats
  | Shutdown

type stats = {
  width : int;          (* pool width the daemon multiplexes onto *)
  queue_depth : int;    (* submitted jobs not yet finished *)
  running : int;
  submitted : int;
  completed : int;
  rejected : int;       (* admission-control rejections *)
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  draining : bool;
}

type response =
  | Submitted of { id : int; cached : bool }
  | Rejected of { reason : string }
      (* admission control or a draining daemon; [reason] is a rendered
         typed {!Pmc_sim.Pmc_error} context *)
  | Job_status of { id : int; state : string }
  | Job_result of { id : int; result : Result_.t }
  | Pending of { id : int }
  | Stats_reply of stats
  | Shutdown_started of { pending : int }
  | Protocol_error of { reason : string }

(* ---------------- encoding ---------------- *)

let request_to_json (r : request) : Json.t =
  match r with
  | Submit { job; budget; wait } ->
      Json.Obj
        [
          ("op", Json.Str "submit");
          ("job", Job.to_json job);
          ("budget", Run.budget_to_json budget);
          ("wait", Json.Bool wait);
        ]
  | Status { id } ->
      Json.Obj [ ("op", Json.Str "status"); ("id", Json.int id) ]
  | Result_of { id; wait } ->
      Json.Obj
        [
          ("op", Json.Str "result");
          ("id", Json.int id);
          ("wait", Json.Bool wait);
        ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt
let req what = function Some v -> v | None -> fail "missing %s" what

let request_of_json (j : Json.t) : request =
  match req "op" (Json.get_str "op" j) with
  | "submit" ->
      let job =
        match Json.member "job" j with
        | None -> fail "missing job"
        | Some jj -> (
            try Job.of_json jj with Failure m -> fail "%s" m)
      in
      let budget =
        match Json.member "budget" j with
        | None | Some Json.Null -> Run.no_budget
        | Some b -> Run.budget_of_json b
      in
      let wait = Option.value ~default:false (Json.get_bool "wait" j) in
      Submit { job; budget; wait }
  | "status" -> Status { id = req "id" (Json.get_int "id" j) }
  | "result" ->
      Result_of
        {
          id = req "id" (Json.get_int "id" j);
          wait = Option.value ~default:false (Json.get_bool "wait" j);
        }
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | op -> fail "unknown op %S" op

let stats_to_json (s : stats) : Json.t =
  Json.Obj
    [
      ("width", Json.int s.width);
      ("queue_depth", Json.int s.queue_depth);
      ("running", Json.int s.running);
      ("submitted", Json.int s.submitted);
      ("completed", Json.int s.completed);
      ("rejected", Json.int s.rejected);
      ("cache_hits", Json.int s.cache_hits);
      ("cache_misses", Json.int s.cache_misses);
      ("cache_entries", Json.int s.cache_entries);
      ("draining", Json.Bool s.draining);
    ]

let stats_of_json j : stats =
  let i key = req key (Json.get_int key j) in
  {
    width = i "width";
    queue_depth = i "queue_depth";
    running = i "running";
    submitted = i "submitted";
    completed = i "completed";
    rejected = i "rejected";
    cache_hits = i "cache_hits";
    cache_misses = i "cache_misses";
    cache_entries = i "cache_entries";
    draining = req "draining" (Json.get_bool "draining" j);
  }

let response_to_json (r : response) : Json.t =
  match r with
  | Submitted { id; cached } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("resp", Json.Str "submitted");
          ("id", Json.int id);
          ("cached", Json.Bool cached);
        ]
  | Rejected { reason } ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("resp", Json.Str "rejected");
          ("reason", Json.Str reason);
        ]
  | Job_status { id; state } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("resp", Json.Str "status");
          ("id", Json.int id);
          ("state", Json.Str state);
        ]
  | Job_result { id; result } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("resp", Json.Str "result");
          ("id", Json.int id);
          ("result", Result_.to_json result);
        ]
  | Pending { id } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("resp", Json.Str "pending");
          ("id", Json.int id);
        ]
  | Stats_reply s ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("resp", Json.Str "stats");
          ("stats", stats_to_json s);
        ]
  | Shutdown_started { pending } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("resp", Json.Str "shutdown");
          ("pending", Json.int pending);
        ]
  | Protocol_error { reason } ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("resp", Json.Str "error");
          ("reason", Json.Str reason);
        ]

let response_of_json (j : Json.t) : response =
  match req "resp" (Json.get_str "resp" j) with
  | "submitted" ->
      Submitted
        {
          id = req "id" (Json.get_int "id" j);
          cached = req "cached" (Json.get_bool "cached" j);
        }
  | "rejected" -> Rejected { reason = req "reason" (Json.get_str "reason" j) }
  | "status" ->
      Job_status
        {
          id = req "id" (Json.get_int "id" j);
          state = req "state" (Json.get_str "state" j);
        }
  | "result" ->
      let result =
        match Json.member "result" j with
        | None -> fail "missing result"
        | Some rj -> (
            try Result_.of_json rj with Failure m -> fail "%s" m)
      in
      Job_result { id = req "id" (Json.get_int "id" j); result }
  | "pending" -> Pending { id = req "id" (Json.get_int "id" j) }
  | "stats" ->
      Stats_reply
        (match Json.member "stats" j with
        | None -> fail "missing stats"
        | Some sj -> stats_of_json sj)
  | "shutdown" ->
      Shutdown_started { pending = req "pending" (Json.get_int "pending" j) }
  | "error" ->
      Protocol_error { reason = req "reason" (Json.get_str "reason" j) }
  | r -> fail "unknown resp %S" r

(* ---------------- framing ---------------- *)

let request_to_line r = Json.to_compact (request_to_json r)

let request_of_line line =
  match Json.parse line with
  | j -> ( try Ok (request_of_json j) with Malformed m -> Error m)
  | exception Json.Parse_error m -> Error m

let response_to_line r = Json.to_compact (response_to_json r)

let response_of_line line =
  match Json.parse line with
  | j -> ( try Ok (response_of_json j) with Malformed m -> Error m)
  | exception Json.Parse_error m -> Error m
