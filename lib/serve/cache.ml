(* Bounded LRU map from canonical job keys to serialized results.

   Recency is a monotonic tick per entry; eviction scans for the
   minimum.  The scan is O(n) but n is the cache capacity (hundreds),
   evictions happen at most once per insert, and the payoff is zero
   auxiliary structure to keep consistent — the whole cache is one
   hashtable.  Not thread-safe: the server serializes access under its
   own lock. *)

type entry = { value : string; mutable tick : int }

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity; tbl = Hashtbl.create (2 * capacity); clock = 0; hits = 0; misses = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.tick <- tick t;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.tick -> acc
        | _ -> Some (key, e.tick))
      t.tbl None
  in
  match victim with Some (key, _) -> Hashtbl.remove t.tbl key | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.tick <- tick t (* refresh; identical job => identical value *)
  | None ->
      if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
      Hashtbl.replace t.tbl key { value; tick = tick t })

let size t = Hashtbl.length t.tbl
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
