(* Queries over the ordering relations of an execution (Definitions 5-10).

   [global] is ≺G = ≺P ∪ ≺S ∪ ≺F — what every process agrees on.
   [view p] is p≺ = ≺G ∪ p≺ℓ — the execution order as seen by process p.
   [full] is ≺ = ≺G ∪ all local orders (Def. 10). *)

type relation = Global | View of int | Full

let edge_visible (rel : relation) (k : Execution.edge_kind) =
  match rel, k with
  | _, (Execution.Program | Execution.Sync | Execution.Fence) -> true
  | Global, Execution.Local _ -> false
  | View p, Execution.Local q -> p = q
  | Full, Execution.Local _ -> true

(* Bytes-backed bitsets, unioned a 64-bit word at a time.  The closure
   below and the bulk passes in [Observe] spend almost all of their time
   in [union_into]; on a [bool array] the same union costs one branch per
   element instead of one OR per 64. *)
module Bits = struct
  type t = { words : Bytes.t; bits : int }

  let create bits =
    { words = Bytes.make (((bits + 63) / 64) * 8) '\000'; bits }

  let length t = t.bits
  let get t i = Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0

  let set t i =
    Bytes.set_uint8 t.words (i lsr 3)
      (Bytes.get_uint8 t.words (i lsr 3) lor (1 lsl (i land 7)))

  (* [into] may be shorter than [src] (rows of a growing closure): only
     the prefix covering [into] is unioned, which is exactly right when
     [src]'s extra bits are known to be clear. *)
  let union_into ~(into : t) (src : t) =
    let n = min (Bytes.length into.words) (Bytes.length src.words) in
    let i = ref 0 in
    while !i < n do
      let w =
        Int64.logor
          (Bytes.get_int64_ne into.words !i)
          (Bytes.get_int64_ne src.words !i)
      in
      Bytes.set_int64_ne into.words !i w;
      i := !i + 8
    done

  let iter f t =
    for i = 0 to t.bits - 1 do
      if get t i then f i
    done
end

(* Reachability closure under [rel]: one bitset row per operation holding
   its ancestor set.  Ids are issue-ordered and every edge points from a
   lower id to a higher one, so row [i] is the union of the rows of its
   visible predecessors plus the predecessors themselves — each row is
   built once, in id order, by word-at-a-time unions. *)
type closure = { c_rel : relation; rows : Bits.t array }

let closure (rel : relation) (exec : Execution.t) : closure =
  let n = Execution.n_ops exec in
  let rows = Array.make n (Bits.create 1) in
  for i = 0 to n - 1 do
    (* every predecessor has a lower id, so its row is already final *)
    let row = Bits.create (max 1 i) in
    List.iter
      (fun (k, p) ->
        if edge_visible rel k then begin
          Bits.union_into ~into:row rows.(p);
          Bits.set row p
        end)
      exec.Execution.preds.(i);
    rows.(i) <- row
  done;
  { c_rel = rel; rows }

let closure_relation c = c.c_rel

(* [precedes c a b] — a ≺ b under the closure's relation.  O(1). *)
let precedes (c : closure) (a : int) (b : int) : bool =
  a <> b && a < Bits.length c.rows.(b) && Bits.get c.rows.(b) a

let ancestors_row (c : closure) (b : int) : Bits.t = c.rows.(b)

(* [reaches rel exec a b] — is there a path a ≺ ... ≺ b using only edges
   visible under [rel]?  DFS; executions in this library are small (tests,
   litmus programs, history checking), so no closure is cached. *)
let reaches (rel : relation) (exec : Execution.t) (a : int) (b : int) : bool =
  if a = b then false
  else begin
    let n = Execution.n_ops exec in
    let seen = Array.make n false in
    let rec go u =
      u = b
      || (not seen.(u))
         && begin
              seen.(u) <- true;
              List.exists
                (fun (k, v) -> edge_visible rel k && go v)
                exec.Execution.succs.(u)
            end
    in
    (* mark a as seen up-front so cycles through a terminate *)
    seen.(a) <- true;
    List.exists
      (fun (k, v) -> edge_visible rel k && go v)
      exec.Execution.succs.(a)
  end

(* Bulk reachability for the history checker's hot path.  Every edge into
   an operation is created when that operation is issued (edges always
   point from a lower id to a higher one), so the set of ancestors of an
   operation is frozen the moment it exists: one backward traversal
   answers every "does x precede b?" question about a fixed b that
   [reaches] would, without a DFS per source. *)
let ancestors (rel : relation) (exec : Execution.t) (b : int) : bool array =
  let n = Execution.n_ops exec in
  let anc = Array.make n false in
  let rec go u =
    List.iter
      (fun (k, p) ->
        if edge_visible rel k && not anc.(p) then begin
          anc.(p) <- true;
          go p
        end)
      exec.Execution.preds.(u)
  in
  go b;
  anc

(* Forward counterpart: everything a fixed [a] precedes. *)
let descendants (rel : relation) (exec : Execution.t) (a : int) : bool array =
  let n = Execution.n_ops exec in
  let desc = Array.make n false in
  let rec go u =
    List.iter
      (fun (k, v) ->
        if edge_visible rel k && not desc.(v) then begin
          desc.(v) <- true;
          go v
        end)
      exec.Execution.succs.(u)
  in
  go a;
  desc

let before rel exec a b = reaches rel exec a b
let concurrent rel exec a b =
  a <> b && (not (reaches rel exec a b)) && not (reaches rel exec b a)

(* ≺ must remain a partial order: the DAG may not contain a cycle.  A cycle
   would mean the program's ordering requirements are contradictory. *)
let is_acyclic (exec : Execution.t) : bool =
  let n = Execution.n_ops exec in
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let rec go u =
    match state.(u) with
    | 1 -> false
    | 2 -> true
    | _ ->
        state.(u) <- 1;
        let ok =
          List.for_all (fun (_, v) -> go v) exec.Execution.succs.(u)
        in
        state.(u) <- 2;
        ok
  in
  let rec all u = u >= n || (go u && all (u + 1)) in
  all 0

(* Topological order of the full relation (ids are already issue-ordered and
   edges only ever point from earlier to later ids, so this is the
   identity — asserted here rather than assumed by callers). *)
let topological (exec : Execution.t) : int list =
  Execution.iter_ops exec (fun o ->
      List.iter
        (fun (_, dst) -> assert (dst > o.Op.id))
        exec.Execution.succs.(o.Op.id));
  List.init (Execution.n_ops exec) Fun.id

(* Transitive reduction under [rel]: keep edge (a, b) only if there is no
   other path from a to b.  Used to render the paper's figures (which are
   "transitively reduced; all redundant orderings are left out"). *)
let transitive_reduction (rel : relation) (exec : Execution.t) :
    Execution.edge list =
  (* An edge (src, dst) is redundant if a path of length >= 2 from src to
     dst exists under [rel].  Parallel edges of different kinds between the
     same pair are collapsed to one, matching the figures. *)
  let keep ({ src; dst; kind } : Execution.edge) =
    edge_visible rel kind
    &&
    let n = Execution.n_ops exec in
    let seen = Array.make n false in
    let rec go u =
      u = dst
      || (not seen.(u))
         && begin
              seen.(u) <- true;
              List.exists
                (fun (k, v) -> edge_visible rel k && go v)
                exec.Execution.succs.(u)
            end
    in
    seen.(src) <- true;
    let long_path =
      List.exists
        (fun (k, v) -> edge_visible rel k && v <> dst && go v)
        exec.Execution.succs.(src)
    in
    not long_path
  in
  let seen_pair = Hashtbl.create 64 in
  List.filter
    (fun (e : Execution.edge) ->
      keep e
      &&
      let key = (e.src, e.dst) in
      if Hashtbl.mem seen_pair key then false
      else begin
        Hashtbl.add seen_pair key ();
        true
      end)
    (Execution.edges exec)

(* The two properties of Section IV-E:

   GDO (Global Data Order): per location, all globally visible orderings of
   operations on that location form a total order across processes once the
   program is data-race free.  [gdo_total exec v] checks the writes of v.

   GPO (Global Process Order): per process, fences give a cross-location
   order.  [gpo_pairs exec p] lists the fence-ordered pairs of p. *)
let writes_of exec v =
  List.filter (fun (o : Op.t) -> Op.is_write o && o.loc = v)
    (Execution.ops_list exec)

let gdo_total (exec : Execution.t) (v : int) : bool =
  let ws = writes_of exec v in
  List.for_all
    (fun (a : Op.t) ->
      List.for_all
        (fun (b : Op.t) ->
          a.id = b.id
          || reaches Global exec a.id b.id
          || reaches Global exec b.id a.id)
        ws)
    ws

let gpo_pairs (exec : Execution.t) (p : int) : (int * int) list =
  let ops =
    List.filter
      (fun (o : Op.t) -> o.proc = p && not (Op.is_fence o))
      (Execution.ops_list exec)
  in
  List.concat_map
    (fun (a : Op.t) ->
      List.filter_map
        (fun (b : Op.t) ->
          if a.id <> b.id && a.loc <> b.loc
             && reaches Global exec a.id b.id
          then Some (a.id, b.id)
          else None)
        ops)
    ops
