(** Executions E = (P, V, O, ≺) and the Table I state-transition rules
    (Definitions 1, 3 and 4).

    An execution is a growing DAG over issued operations.  Every new
    operation adds ordering edges from all previously issued operations
    that match the corresponding Table I row; edges are never removed. *)

(** The four ordering relations of the model, attached to each edge:
    local order p≺ℓ (Def. 6, visible only to one process), program order
    ≺P (Def. 5), synchronization order ≺S (Def. 7) and fence order ≺F
    (Def. 8). *)
type edge_kind = Local of int | Program | Sync | Fence

val edge_kind_to_string : edge_kind -> string

(** One ordering edge: [src] precedes [dst] under [kind]. *)
type edge = { src : int; kind : edge_kind; dst : int }

type t = {
  procs : int;
  locs : int;
  mutable ops : Op.t array;
  mutable n_ops : int;
  mutable succs : (edge_kind * int) list array;
      (** outgoing edges, indexed by operation id *)
  mutable preds : (edge_kind * int) list array;
  fence_scopes : (int, int list) Hashtbl.t;
      (** fence op id → ordered locations; absent = all (plain fence) *)
  by_kpl : (Op.kind * int * int, int list) Hashtbl.t;
      (** candidate indexes for {!execute} — (kind, proc, loc),
          (kind, loc) and (kind, proc) buckets of non-[Init] operation
          ids, newest first; maintained internally *)
  by_kl : (Op.kind * int, int list) Hashtbl.t;
  by_kp : (Op.kind * int, int list) Hashtbl.t;
}

val create : ?init:(int -> int) -> procs:int -> locs:int -> unit -> t
(** Initialization (Def. 3): every location receives one [Init] operation
    writing its initial value ([init], default 0); the order ≺ starts
    empty. *)

val op : t -> int -> Op.t
(** [op exec id] — the operation with issue index [id]. *)

val n_ops : t -> int
(** Number of issued operations, including the initial ones. *)

val iter_ops : t -> (Op.t -> unit) -> unit
(** Visit operations in issue order. *)

val ops_list : t -> Op.t list
(** All operations, in issue order. *)

val edges : t -> edge list
(** Every edge of ≺ (not transitively reduced). *)

val execute :
  t -> Op.kind -> proc:int -> ?loc:int -> ?value:int -> unit -> Op.t
(** State transition (Def. 4): issue an operation and add the Table-I
    edges from every matching earlier operation.  Raises [Invalid_argument]
    on bad process/location ids or an attempt to issue [Init]. *)

(** Convenience wrappers around {!execute}, one per operation kind. *)

val read : t -> proc:int -> loc:int -> value:int -> Op.t
val write : t -> proc:int -> loc:int -> value:int -> Op.t
val acquire : t -> proc:int -> loc:int -> Op.t
val release : t -> proc:int -> loc:int -> Op.t
val fence : t -> proc:int -> Op.t

val fence_scoped : t -> proc:int -> locs:int list -> Op.t
(** Location-scoped fence — the optimization Section IV-D leaves open:
    orders only this process's operations on the given locations.  A
    scope covering all locations is exactly the plain fence. *)

val fence_scope : t -> Op.t -> int list option
(** The scope of a fence operation; [None] means unscoped. *)

val pp : Format.formatter -> t -> unit
(** Operations then edges, one per line. *)
