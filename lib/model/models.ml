(* Operational semantics of the memory models compared in Section IV-E,
   used to enumerate complete outcome sets of litmus programs (Lprog).

   - [Sc]   Sequential Consistency [Lamport 79]: one memory, atomic steps.
   - [Pc]   Processor Consistency, implemented as its best-known
            operational instance: TSO-style per-processor FIFO store
            buffers draining into a single memory.  This realizes both GDO
            (single memory serializes each location) and GPO (the FIFO
            preserves each processor's write order).
   - [Cc]   Cache Consistency: per-location write logs; every observer
            applies each location's log in order, at its own pace.
   - [Slow] Slow Consistency [Hutto & Ahamad 90]: per-process copies;
            updates propagate per (writer, location) in order, with no
            cross-location or cross-writer guarantees.
   - [Pmc]  The paper's model: Slow reads/writes + acquire/release
            transferring the protected value (GDO) + fences inserting
            cross-location markers into the update streams (GPO) + the
            best-effort flush.  Writes issued while holding the location's
            lock stay local until release ("lazy release", Section V-A).

   Each model is a small labelled transition system; [Litmus.enumerate]
   explores it exhaustively. *)

module type SEM = sig
  val name : string

  type state

  val init : Lprog.t -> state
  val successors : Lprog.t -> state -> state list
  val is_final : Lprog.t -> state -> bool
  val outcome : Lprog.t -> state -> Lprog.outcome
  val key : state -> string
end

let clone2 (a : int array array) = Array.map Array.copy a

let marshal_key (st : 'a) = Marshal.to_string st []

(* Hand-packed state keys.  [Marshal] spends most of its time on block
   headers and sharing bookkeeping; litmus states are a handful of small
   int arrays whose shapes are fixed by the program, so each semantics
   packs its state into a byte buffer directly — typically one byte per
   component, written with unsafe stores (capacity is checked once per
   int, against the 9-byte worst case).  Components of variable shape
   (store buffers, logs, streams, hoist sets) are length-prefixed, which
   keeps concatenation injective: equal keys mean structurally equal
   states.  Keys are computed once per BFS {e edge}, which makes this
   the hottest loop of enumeration — hence bytes, not [Buffer]. *)
module Key = struct
  type t = { mutable buf : Bytes.t; mutable pos : int }

  let create hint = { buf = Bytes.create (max 64 hint); pos = 0 }

  let grow t need =
    let nb = Bytes.create (max need (2 * Bytes.length t.buf)) in
    Bytes.blit t.buf 0 nb 0 t.pos;
    t.buf <- nb

  let ensure t extra =
    if t.pos + extra > Bytes.length t.buf then grow t (t.pos + extra)

  (* [put buf pos n] writes one int at [pos] — 9 bytes must already be
     ensured — and returns the next position.  Hot loops duplicate the
     one-byte fast path inline and call this only on the escape. *)
  let put buf pos n =
    if n >= -1 && n <= 253 then begin
      Bytes.unsafe_set buf pos (Char.unsafe_chr (n + 1));
      pos + 1
    end
    else begin
      Bytes.unsafe_set buf pos '\255';
      Bytes.set_int64_ne buf (pos + 1) (Int64.of_int n);
      pos + 9
    end

  (* One int: a single byte for the common range [-1, 253] (shifted by
     one so lock-free slots pack small), escape byte 255 plus a fixed
     8-byte native-endian word otherwise.  The encoding loop is
     duplicated in [add_row] — the compiler does not inline across the
     escape branch, and one call per int is the difference between the
     packer beating [Marshal] and losing to it. *)
  let add_int t n =
    ensure t 9;
    if n >= -1 && n <= 253 then begin
      Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (n + 1));
      t.pos <- t.pos + 1
    end
    else begin
      Bytes.unsafe_set t.buf t.pos '\255';
      Bytes.set_int64_ne t.buf (t.pos + 1) (Int64.of_int n);
      t.pos <- t.pos + 9
    end

  (* Whole row with one capacity check and no per-int calls. *)
  let add_row t (a : int array) =
    let n = Array.length a in
    ensure t (9 * n);
    let buf = t.buf in
    let pos = ref t.pos in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get a i in
      if v >= -1 && v <= 253 then begin
        Bytes.unsafe_set buf !pos (Char.unsafe_chr (v + 1));
        incr pos
      end
      else begin
        Bytes.unsafe_set buf !pos '\255';
        Bytes.set_int64_ne buf (!pos + 1) (Int64.of_int v);
        pos := !pos + 9
      end
    done;
    t.pos <- !pos

  (* Length-prefixed row, for variable-shape components. *)
  let add_sized_row t (a : int array) =
    add_int t (Array.length a);
    add_row t a

  let add_mat t (a : int array array) =
    for i = 0 to Array.length a - 1 do
      add_row t (Array.unsafe_get a i)
    done

  let contents t = Bytes.sub_string t.buf 0 t.pos
end

(* Small sorted-int-array helpers for the hoist sets (kept sorted so a
   set has exactly one representation, which the packed keys rely on). *)
let arr_mem (x : int) (a : int array) =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

let arr_remove (x : int) (a : int array) =
  let out = Array.make (Array.length a - 1) 0 in
  let j = ref 0 in
  Array.iter
    (fun y ->
      if y <> x then begin
        out.(!j) <- y;
        incr j
      end)
    a;
  out

let arr_insert_sorted (x : int) (a : int array) =
  let n = Array.length a in
  let out = Array.make (n + 1) x in
  let i = ref 0 in
  while !i < n && a.(!i) < x do
    out.(!i) <- a.(!i);
    incr i
  done;
  Array.blit a !i out (!i + 1) (n - !i);
  out

let instr_at (p : Lprog.t) st_pc t =
  let th = p.Lprog.threads.(t) in
  if st_pc.(t) < Array.length th then Some th.(st_pc.(t)) else None

let all_done (p : Lprog.t) pc =
  let ok = ref true in
  Array.iteri
    (fun t th -> if pc.(t) < Array.length th then ok := false)
    p.Lprog.threads;
  !ok

(* Apply [step] to every thread index, consing successes onto [acc]
   (descending, so the result lists threads in ascending order) — the
   allocation-free form of [List.filter_map step (List.init n Fun.id)]. *)
let filter_steps n (step : int -> 'a option) (acc : 'a list) : 'a list =
  let acc = ref acc in
  for t = n - 1 downto 0 do
    match step t with Some s -> acc := s :: !acc | None -> ()
  done;
  !acc

(* ------------------------------------------------------------------ *)

module Sc : SEM = struct
  let name = "SC"

  type state = {
    pc : int array;
    regs : int array array;
    mem : int array;
    locks : int array;  (* -1 = free, otherwise holder *)
  }

  let init (p : Lprog.t) =
    {
      pc = Array.make (Lprog.n_threads p) 0;
      regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
      mem = Array.make p.locs 0;
      locks = Array.make p.locs (-1);
    }

  let step p st t : state option =
    match instr_at p st.pc t with
    | None -> None
    | Some i ->
        let adv st' = Some { st' with pc = (let a = Array.copy st'.pc in a.(t) <- a.(t) + 1; a) } in
        (match i with
        | Lprog.Ld { loc; reg } ->
            let regs = clone2 st.regs in
            regs.(t).(reg) <- st.mem.(loc);
            adv { st with regs }
        | Lprog.St { loc; v } ->
            let mem = Array.copy st.mem in
            mem.(loc) <- Lprog.eval st.regs.(t) v;
            adv { st with mem }
        | Lprog.Wait_eq { loc; v } ->
            if st.mem.(loc) = v then adv st else None
        | Lprog.Acq l ->
            if st.locks.(l) = -1 then begin
              let locks = Array.copy st.locks in
              locks.(l) <- t;
              adv { st with locks }
            end
            else None
        | Lprog.Rel l ->
            if st.locks.(l) = t then begin
              let locks = Array.copy st.locks in
              locks.(l) <- -1;
              adv { st with locks }
            end
            else failwith "SC: release without acquire"
        | Lprog.Fence | Lprog.Flush _ -> adv st)

  let successors p st = filter_steps (Lprog.n_threads p) (step p st) []

  let is_final p st = all_done p st.pc
  let outcome _p st = clone2 st.regs

  let key st =
    let b = Key.create 64 in
    Key.add_row b st.pc;
    Key.add_mat b st.regs;
    Key.add_row b st.mem;
    Key.add_row b st.locks;
    Key.contents b
end

(* ------------------------------------------------------------------ *)

module Pc : SEM = struct
  let name = "PC (TSO store buffers)"

  type state = {
    pc : int array;
    regs : int array array;
    mem : int array;
    locks : int array;
    buf : (int * int) list array;  (* per thread, oldest first *)
  }

  let init (p : Lprog.t) =
    {
      pc = Array.make (Lprog.n_threads p) 0;
      regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
      mem = Array.make p.locs 0;
      locks = Array.make p.locs (-1);
      buf = Array.make (Lprog.n_threads p) [];
    }

  (* Value of [loc] as seen by thread [t]: newest buffered store wins. *)
  let visible st t loc =
    let rec newest acc = function
      | [] -> acc
      | (l, v) :: rest -> newest (if l = loc then Some v else acc) rest
    in
    match newest None st.buf.(t) with
    | Some v -> v
    | None -> st.mem.(loc)

  let drain st t : state option =
    match st.buf.(t) with
    | [] -> None
    | (loc, v) :: rest ->
        let mem = Array.copy st.mem in
        mem.(loc) <- v;
        let buf = Array.copy st.buf in
        buf.(t) <- rest;
        Some { st with mem; buf }

  let step p st t : state option =
    match instr_at p st.pc t with
    | None -> None
    | Some i ->
        let adv st' = Some { st' with pc = (let a = Array.copy st'.pc in a.(t) <- a.(t) + 1; a) } in
        (match i with
        | Lprog.Ld { loc; reg } ->
            let regs = clone2 st.regs in
            regs.(t).(reg) <- visible st t loc;
            adv { st with regs }
        | Lprog.St { loc; v } ->
            let buf = Array.copy st.buf in
            buf.(t) <- st.buf.(t) @ [ (loc, Lprog.eval st.regs.(t) v) ];
            adv { st with buf }
        | Lprog.Wait_eq { loc; v } ->
            if visible st t loc = v then adv st else None
        | Lprog.Acq l ->
            (* an atomic RMW drains the store buffer first *)
            if st.buf.(t) = [] && st.locks.(l) = -1 then begin
              let locks = Array.copy st.locks in
              locks.(l) <- t;
              adv { st with locks }
            end
            else None
        | Lprog.Rel l ->
            if st.buf.(t) = [] then
              if st.locks.(l) = t then begin
                let locks = Array.copy st.locks in
                locks.(l) <- -1;
                adv { st with locks }
              end
              else failwith "PC: release without acquire"
            else None
        | Lprog.Fence -> if st.buf.(t) = [] then adv st else None
        | Lprog.Flush _ -> adv st)

  let successors p st =
    let n = Lprog.n_threads p in
    filter_steps n (step p st) (filter_steps n (drain st) [])

  let is_final p st =
    all_done p st.pc && Array.for_all (fun b -> b = []) st.buf

  let outcome _p st = clone2 st.regs

  let key st =
    let b = Key.create 64 in
    Key.add_row b st.pc;
    Key.add_mat b st.regs;
    Key.add_row b st.mem;
    Key.add_row b st.locks;
    Array.iter
      (fun buf ->
        Key.add_int b (List.length buf);
        List.iter
          (fun (l, v) ->
            Key.add_int b l;
            Key.add_int b v)
          buf)
      st.buf;
    Key.contents b
end

(* ------------------------------------------------------------------ *)

module Cc : SEM = struct
  let name = "CC (per-location logs)"

  type state = {
    pc : int array;
    regs : int array array;
    locks : int array;
    logs : int array array;  (* per location, oldest first, starts [|0|];
                                rows are never mutated, only replaced *)
    idx : int array array;  (* thread x location: applied prefix - 1 *)
  }

  let init (p : Lprog.t) =
    {
      pc = Array.make (Lprog.n_threads p) 0;
      regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
      locks = Array.make p.locs (-1);
      logs = Array.make p.locs [| 0 |];
      idx = Array.make_matrix (Lprog.n_threads p) p.locs 0;
    }

  let current st t loc = st.logs.(loc).(st.idx.(t).(loc))

  let apply st t loc : state option =
    if st.idx.(t).(loc) < Array.length st.logs.(loc) - 1 then begin
      let idx = clone2 st.idx in
      idx.(t).(loc) <- idx.(t).(loc) + 1;
      Some { st with idx }
    end
    else None

  let step p st t : state option =
    match instr_at p st.pc t with
    | None -> None
    | Some i ->
        let adv st' = Some { st' with pc = (let a = Array.copy st'.pc in a.(t) <- a.(t) + 1; a) } in
        (match i with
        | Lprog.Ld { loc; reg } ->
            let regs = clone2 st.regs in
            regs.(t).(reg) <- current st t loc;
            adv { st with regs }
        | Lprog.St { loc; v } ->
            let logs = Array.copy st.logs in
            logs.(loc) <-
              Array.append st.logs.(loc) [| Lprog.eval st.regs.(t) v |];
            let idx = clone2 st.idx in
            idx.(t).(loc) <- Array.length logs.(loc) - 1;
            adv { st with logs; idx }
        | Lprog.Wait_eq { loc; v } ->
            if current st t loc = v then adv st else None
        | Lprog.Acq l ->
            if st.locks.(l) = -1 then begin
              let locks = Array.copy st.locks in
              locks.(l) <- t;
              (* synchronizing on l brings the acquirer up to date on l *)
              let idx = clone2 st.idx in
              idx.(t).(l) <- Array.length st.logs.(l) - 1;
              adv { st with locks; idx }
            end
            else None
        | Lprog.Rel l ->
            if st.locks.(l) = t then begin
              let locks = Array.copy st.locks in
              locks.(l) <- -1;
              adv { st with locks }
            end
            else failwith "CC: release without acquire"
        | Lprog.Fence | Lprog.Flush _ -> adv st)

  let successors p st =
    let n = Lprog.n_threads p in
    let applies = ref [] in
    for t = n - 1 downto 0 do
      for loc = p.Lprog.locs - 1 downto 0 do
        match apply st t loc with
        | Some s -> applies := s :: !applies
        | None -> ()
      done
    done;
    filter_steps n (step p st) !applies

  let is_final p st = all_done p st.pc
  let outcome _p st = clone2 st.regs

  let key st =
    let b = Key.create 64 in
    Key.add_row b st.pc;
    Key.add_mat b st.regs;
    Key.add_row b st.locks;
    for loc = 0 to Array.length st.logs - 1 do
      Key.add_sized_row b (Array.unsafe_get st.logs loc)
    done;
    Key.add_mat b st.idx;
    Key.contents b
end

(* ------------------------------------------------------------------ *)

(* Update streams shared by Slow and PMC: one FIFO per (writer, observer)
   pair holding value updates and (for PMC) fence markers.  An update may
   be taken out of the middle of the stream as long as no earlier update to
   the same location and no earlier marker is still pending; a marker can
   only be consumed from the head.  This realizes exactly ≺P (per-location
   order preserved) and ≺F (markers). *)
module Streams = struct
  type item = Upd of int * int | Mark

  (* writer x observer, oldest first; the per-pair item arrays are never
     mutated in place, only replaced, so clones can share them *)
  type t = item array array array

  let create n = Array.init n (fun _ -> Array.make n [||])

  let clone (s : t) = Array.map Array.copy s

  (* The readiness rule (what [slow_applies] scans for, inlined there):
     a mark blocks everything behind it and is itself ready only at the
     head; an update is ready if no earlier same-location update is
     pending. *)

  let remove_nth (s : t) ~w ~q n =
    let s = clone s in
    let old = s.(w).(q) in
    let len = Array.length old in
    let fresh = Array.make (len - 1) Mark in
    Array.blit old 0 fresh 0 n;
    Array.blit old (n + 1) fresh n (len - 1 - n);
    s.(w).(q) <- fresh;
    s

  let push_all (s : t) ~w item =
    let s = clone s in
    Array.iteri
      (fun q items ->
        if q <> w then s.(w).(q) <- Array.append items [| item |])
      s.(w);
    s

  (* Packed as length-prefixed item lists (Mark = 0; Upd = 1, loc, v).
     One capacity check for the whole matrix and no per-item calls:
     with n² pairs, mostly empty, the length prefixes alone would
     otherwise dominate the key cost. *)
  let add_key (b : Key.t) (s : t) =
    let n = Array.length s in
    let bound = ref (9 * n * n) in
    for w = 0 to n - 1 do
      let row = Array.unsafe_get s w in
      for q = 0 to n - 1 do
        bound := !bound + (27 * Array.length (Array.unsafe_get row q))
      done
    done;
    Key.ensure b !bound;
    let buf = b.Key.buf in
    let pos = ref b.Key.pos in
    for w = 0 to n - 1 do
      let row = Array.unsafe_get s w in
      for q = 0 to n - 1 do
        let items = Array.unsafe_get row q in
        let len = Array.length items in
        if len <= 253 then begin
          Bytes.unsafe_set buf !pos (Char.unsafe_chr (len + 1));
          incr pos
        end
        else pos := Key.put buf !pos len;
        for i = 0 to len - 1 do
          match Array.unsafe_get items i with
          | Mark ->
              Bytes.unsafe_set buf !pos '\001';
              incr pos
          | Upd (l, v) ->
              Bytes.unsafe_set buf !pos '\002';
              incr pos;
              if l >= 0 && l <= 253 then begin
                Bytes.unsafe_set buf !pos (Char.unsafe_chr (l + 1));
                incr pos
              end
              else pos := Key.put buf !pos l;
              if v >= -1 && v <= 253 then begin
                Bytes.unsafe_set buf !pos (Char.unsafe_chr (v + 1));
                incr pos
              end
              else pos := Key.put buf !pos v
        done
      done
    done;
    b.Key.pos <- !pos
end

type slow_state = {
  s_pc : int array;
  s_regs : int array array;
  s_locks : int array;
  s_copies : int array array;  (* thread x location *)
  s_master : int array;        (* lock-protected value (PMC/EC) *)
  s_streams : Streams.t;
  s_hoisted : int array array;
      (* per thread: acquires executed early, sorted ascending; rows are
         never mutated in place, only replaced *)
}

let slow_init (p : Lprog.t) =
  {
    s_pc = Array.make (Lprog.n_threads p) 0;
    s_regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
    s_locks = Array.make p.locs (-1);
    s_copies = Array.make_matrix (Lprog.n_threads p) p.locs 0;
    s_master = Array.make p.locs 0;
    s_streams = Streams.create (Lprog.n_threads p);
    s_hoisted = Array.make (Lprog.n_threads p) [||];
  }

let slow_key (st : slow_state) =
  let b = Key.create 96 in
  Key.add_row b st.s_pc;
  Key.add_mat b st.s_regs;
  Key.add_row b st.s_locks;
  Key.add_mat b st.s_copies;
  Key.add_row b st.s_master;
  Streams.add_key b st.s_streams;
  for t = 0 to Array.length st.s_hoisted - 1 do
    Key.add_sized_row b (Array.unsafe_get st.s_hoisted t)
  done;
  Key.contents b

(* One successor per ready stream item, the [Streams.ready] scan inlined
   so the per-(w, q) candidate list is never materialized — this runs
   once per explored state for every stream pair. *)
let slow_applies ?(acc = []) (p : Lprog.t) (st : slow_state) :
    slow_state list =
  let n = Lprog.n_threads p in
  let acc = ref acc in
  for w = 0 to n - 1 do
    let row = st.s_streams.(w) in
    for q = 0 to n - 1 do
      if w <> q then begin
        let items = row.(q) in
        let len = Array.length items in
        if len > 0 then
          match items.(0) with
          | Streams.Mark ->
              let streams = Streams.remove_nth st.s_streams ~w ~q 0 in
              acc := { st with s_streams = streams } :: !acc
          | Streams.Upd _ -> (
              (* an update is ready if no earlier same-location update is
                 pending; a mark blocks everything behind it *)
              let blocked = ref [] in
              try
                for i = 0 to len - 1 do
                  match items.(i) with
                  | Streams.Mark -> raise Exit
                  | Streams.Upd (l, v) ->
                      if not (List.mem l !blocked) then begin
                        let streams = Streams.remove_nth st.s_streams ~w ~q i in
                        let copies = clone2 st.s_copies in
                        copies.(q).(l) <- v;
                        acc :=
                          { st with s_streams = streams; s_copies = copies }
                          :: !acc
                      end;
                      blocked := l :: !blocked
                done
              with Exit -> ())
      end
    done
  done;
  !acc

(* [lazy_release]: when true (PMC), writes made while holding the
   location's lock stay local until release; fences emit markers and
   acquire/release transfer the master value. *)
let slow_like_step ~fences ~sync_locks (p : Lprog.t) (st : slow_state) t :
    slow_state option =
  match instr_at p st.s_pc t with
  | None -> None
  | Some _ when arr_mem st.s_pc.(t) st.s_hoisted.(t) ->
      (* this instruction was already executed early: consume it *)
      let pc = Array.copy st.s_pc in
      let hoisted = Array.copy st.s_hoisted in
      hoisted.(t) <- arr_remove st.s_pc.(t) hoisted.(t);
      pc.(t) <- pc.(t) + 1;
      Some { st with s_pc = pc; s_hoisted = hoisted }
  | Some i ->
      let adv st' =
        let pc = Array.copy st'.s_pc in
        pc.(t) <- pc.(t) + 1;
        Some { st' with s_pc = pc }
      in
      (match i with
      | Lprog.Ld { loc; reg } ->
          let regs = clone2 st.s_regs in
          regs.(t).(reg) <- st.s_copies.(t).(loc);
          adv { st with s_regs = regs }
      | Lprog.St { loc; v } ->
          let value = Lprog.eval st.s_regs.(t) v in
          let copies = clone2 st.s_copies in
          copies.(t).(loc) <- value;
          let holds_lock = sync_locks && st.s_locks.(loc) = t in
          let streams =
            if holds_lock then st.s_streams  (* lazy release: stays local *)
            else Streams.push_all st.s_streams ~w:t (Streams.Upd (loc, value))
          in
          adv { st with s_copies = copies; s_streams = streams }
      | Lprog.Wait_eq { loc; v } ->
          if st.s_copies.(t).(loc) = v then adv st else None
      | Lprog.Acq l ->
          if st.s_locks.(l) = -1 then begin
            let locks = Array.copy st.s_locks in
            locks.(l) <- t;
            let copies = clone2 st.s_copies in
            if sync_locks then copies.(t).(l) <- st.s_master.(l);
            adv { st with s_locks = locks; s_copies = copies }
          end
          else None
      | Lprog.Rel l ->
          if st.s_locks.(l) = t then begin
            let locks = Array.copy st.s_locks in
            locks.(l) <- -1;
            let master = Array.copy st.s_master in
            if sync_locks then master.(l) <- st.s_copies.(t).(l);
            adv { st with s_locks = locks; s_master = master }
          end
          else failwith "Slow/PMC: release without acquire"
      | Lprog.Fence ->
          if fences then
            adv { st with s_streams = Streams.push_all st.s_streams ~w:t Streams.Mark }
          else adv st
      | Lprog.Flush l ->
          adv
            {
              st with
              s_streams =
                Streams.push_all st.s_streams ~w:t
                  (Streams.Upd (l, st.s_copies.(t).(l)));
            })

module Slow : SEM = struct
  let name = "Slow"

  type state = slow_state

  let init = slow_init

  let successors p st =
    let n = Lprog.n_threads p in
    filter_steps n
      (slow_like_step ~fences:false ~sync_locks:false p st)
      (slow_applies p st)

  let is_final p st = all_done p st.s_pc
  let outcome _p st = clone2 st.s_regs
  let key = slow_key
end

(* Entry-Consistency-like semantics: PMC's value-transferring locks and
   fences, but synchronization operations of one process stay in program
   order — the strengthening the paper relaxes ("our model is weaker
   [than EC] because acquire/releases of different locations by the same
   process are not ordered, unless a fence is applied"). *)
module Ec : SEM = struct
  let name = "EC"

  type state = slow_state

  let init = slow_init

  let successors p st =
    let n = Lprog.n_threads p in
    filter_steps n
      (slow_like_step ~fences:true ~sync_locks:true p st)
      (slow_applies p st)

  let is_final p st = all_done p st.s_pc
  let outcome _p st = clone2 st.s_regs
  let key = slow_key
end

(* Full PMC: EC's transitions plus acquire hoisting.  Because
   acquire/releases of different locations are unordered unless fenced,
   an implementation (compiler or out-of-order core) may perform a later
   acquire early.  A pending [Acq l] may execute ahead of program order
   when every instruction between the program counter and it is a plain
   read, write or wait on a *different* location — a fence, another
   synchronization operation, a flush or any operation on [l] blocks the
   hoist.  This is exactly the transformation Fig. 6's fence at line 11
   exists to forbid ("prevents the compiler from moving the acquire at
   line 13 to before the while loop"). *)
module Pmc : SEM = struct
  let name = "PMC"

  type state = slow_state

  let init = slow_init

  (* At most one candidate per thread: the scan forward from the program
     counter stops at the first un-hoisted synchronization operation
     either way. *)
  let hoist_candidate (p : Lprog.t) (st : slow_state) t :
      slow_state option =
    let th = p.Lprog.threads.(t) in
    (* the same-location restriction: an op on l between pc and the
       acquire blocks the hoist *)
    let blocked l upto =
      let hit = ref false in
      for k = st.s_pc.(t) to upto - 1 do
        if (not !hit) && not (arr_mem k st.s_hoisted.(t)) then
          match th.(k) with
          | Lprog.Ld { loc; _ } | Lprog.St { loc; _ }
          | Lprog.Wait_eq { loc; _ } ->
              if loc = l then hit := true
          | _ -> ()
      done;
      !hit
    in
    let rec scan j =
      if j >= Array.length th then None
      else if arr_mem j st.s_hoisted.(t) then scan (j + 1)
      else
        match th.(j) with
        | Lprog.Acq l when j > st.s_pc.(t) ->
            (* hoist if the lock is free and no in-between op touches l;
               scanning stops here either way (moving past another sync
               operation is not allowed) *)
            if st.s_locks.(l) = -1 && not (blocked l j) then begin
              let locks = Array.copy st.s_locks in
              locks.(l) <- t;
              let copies = clone2 st.s_copies in
              copies.(t).(l) <- st.s_master.(l);
              let hoisted = Array.copy st.s_hoisted in
              hoisted.(t) <- arr_insert_sorted j hoisted.(t);
              Some
                { st with s_locks = locks; s_copies = copies;
                          s_hoisted = hoisted }
            end
            else None
        | Lprog.Acq _ | Lprog.Rel _ | Lprog.Fence | Lprog.Flush _ -> None
        | Lprog.Ld _ | Lprog.St _ | Lprog.Wait_eq _ -> scan (j + 1)
    in
    scan st.s_pc.(t)

  let successors p st =
    let n = Lprog.n_threads p in
    filter_steps n
      (slow_like_step ~fences:true ~sync_locks:true p st)
      (slow_applies p st ~acc:(filter_steps n (hoist_candidate p st) []))

  let is_final p st = all_done p st.s_pc
  let outcome _p st = clone2 st.s_regs
  let key = slow_key
end

let all : (module SEM) list =
  [ (module Sc); (module Pc); (module Cc); (module Ec); (module Slow);
    (module Pmc) ]
