(** Litmus programs: tiny multi-threaded programs whose complete outcome
    sets are enumerated under each model's operational semantics
    ({!Models}, {!Litmus}) to check the comparisons of Section IV-E. *)

type expr = Const of int | Reg of int

type instr =
  | Ld of { loc : int; reg : int }      (** reg := [loc] *)
  | St of { loc : int; v : expr }       (** [loc] := v *)
  | Wait_eq of { loc : int; v : int }   (** spin until [loc] = v *)
  | Acq of int
  | Rel of int
  | Fence
  | Flush of int                        (** the PMC flush annotation *)

type thread = instr array

type t = {
  name : string;
  locs : int;
  regs : int;  (** registers per thread *)
  threads : thread array;
}

val make : name:string -> locs:int -> regs:int -> instr list list -> t
(** One inner list per thread. *)

val n_threads : t -> int

(** An outcome: every thread's registers at termination. *)
type outcome = int array array

val outcome_to_string : outcome -> string
(** Canonical form, e.g. [r0=1 r1=0 | r0=2] — the set element used by
    {!Outcome_set}. *)

module Outcome_set : Set.S with type elt = string

val eval : int array -> expr -> int
(** Evaluate an expression against one thread's register file. *)

(** {1 Standard programs} *)

val mp_plain : t
(** Message passing, unannotated — the Fig. 1 program. *)

val mp_fence : t
(** Message passing with fences between the publishes (GPO only). *)

val mp_annotated : t
(** The fully annotated Fig. 6 program. *)

val mp_annotated_nofence : t
(** Fig. 6 without the receiver's fence: fine under EC, hazardous under
    PMC's acquire hoisting — why the paper's line-11 fence exists. *)

val sb : t
(** Store buffering: SC forbids (0,0), every weaker model allows it. *)

val coherence_1w : t
(** Per-location order with one writer: reads never go backwards. *)

val coherence_2w : t
(** Two writers, two observers: CC forces agreement on the write order,
    Slow lets the observers disagree. *)

val exclusive_fig4 : t
(** The Fig. 4 exclusive-access program. *)

val locked_exchange : t
(** A data-race-free lock-protected exchange, used by {!Drf}. *)

val iriw : t
(** Independent reads of independent writes: separates SC/TSO (forbid the
    mixed outcome) from CC and weaker (allow it). *)

val wrc : t
(** Write-to-read causality. *)

val lb : t
(** Load buffering — (1,1) needs speculation, which no operational model
    here performs. *)

val all_standard : t list
