(** Exhaustive outcome enumeration of litmus programs under a model's
    operational semantics, and the model-comparison predicates of
    Section IV-E. *)

type result = {
  program : Lprog.t;
  model : string;
  outcomes : Lprog.Outcome_set.t;
  states_explored : int;
  stuck_states : int;
      (** non-final states with no successor — deadlocks/livelocks, e.g.
          a hoisted acquire starving the lock holder's waiter *)
}

exception State_space_too_large of int

val enumerate :
  ?limit:int -> ?pool:Pmc_par.Pool.t -> (module Models.SEM) -> Lprog.t ->
  result
(** Breadth-first exploration with memoization on packed state keys
    (the [key] function of {!module-type:Models.SEM}); raises
    {!State_space_too_large} past [limit]
    distinct states (default 2M).  With a [pool] of width > 1 the
    exploration runs level-synchronously: each level's frontier is
    sharded by key hash, the shards expand concurrently, and the
    coordinator merges successors in shard order — every result field is
    a function of the reachable-state set alone, so the result is
    byte-identical to the sequential run at any width. *)

val outcomes_list : result -> string list
(** The outcome set as sorted strings ({!Lprog.outcome_to_string}). *)

val allows : result -> string -> bool
(** Is this outcome string in the enumerated set? *)

val subset_of : result -> result -> bool
(** [subset_of r1 r2] — model 1 is at least as strong as model 2 on this
    program: every outcome of r1 is an outcome of r2. *)

val pp_result : Format.formatter -> result -> unit

val enumerate_matrix :
  ?limit:int -> ?pool:Pmc_par.Pool.t -> ?models:(module Models.SEM) list ->
  Lprog.t list -> result list list
(** Enumerate every given program under every model (default
    {!Models.all}), one row per program in [models] order.  Each
    enumeration is independent, so with a [pool] the matrix fans out
    over its domains; the results — outcome sets, state counts — are
    identical to the sequential run at any width. *)

val compare_models : ?limit:int -> ?pool:Pmc_par.Pool.t -> Lprog.t -> result list
(** One result per model in {!Models.all}. *)

val strength_chain_holds :
  ?limit:int -> ?pool:Pmc_par.Pool.t -> Lprog.t list -> bool
(** outcomes(SC) ⊆ outcomes(PC) ⊆ outcomes(CC) ⊆ outcomes(Slow) on every
    given program. *)
