(* Observation semantics: last writes, readable values and data races
   (Section IV-D, Definitions 11 and 12).

   Reads return values "slowly": a read is guaranteed to see at least the
   last write ordered before it, but may also return any write that is not
   itself ordered before that last write (a newer value that has already
   propagated).  Two ordered reads must observe writes in a consistent
   direction (monotonicity). *)

(* Last writes before op [o] as seen by process [p] (Def. 11): the writes a
   to o's location with a p≺ o and no other write between.  Under a race
   the set has more than one element.  The default view is the issuing
   process's own (its local edges from the initial write guarantee the set
   is never empty, as Def. 11 requires). *)
(* Both passes below run on a bitset reachability closure (one ancestor
   row per operation, built by word-at-a-time unions): every "a ≺ b"
   question is then an O(1) bit test instead of a DFS. *)
let last_writes_in (c : Order.closure) (exec : Execution.t) (o : Op.t) :
    Op.t list =
  let v = o.Op.loc in
  let row = Order.ancestors_row c o.Op.id in
  let ws = ref [] in
  for i = min (Execution.n_ops exec) (Order.Bits.length row) - 1 downto 0 do
    let a = Execution.op exec i in
    if Op.is_write a && a.Op.loc = v && Order.Bits.get row i then
      ws := a :: !ws
  done;
  let ws = !ws in
  (* Maximality: drop a if some b in ws has a ≺ b — each test is one bit
     probe of b's closure row. *)
  List.filter
    (fun (a : Op.t) ->
      not
        (List.exists
           (fun (b : Op.t) -> b.id <> a.id && Order.precedes c a.id b.id)
           ws))
    ws

let last_writes ?(view : int option) (exec : Execution.t) (o : Op.t) :
    Op.t list =
  let rel =
    match view with
    | Some p -> Order.View p
    | None -> if o.Op.proc >= 0 then Order.View o.Op.proc else Order.Global
  in
  last_writes_in (Order.closure rel exec) exec o

(* Readable values for a read [o] by its process (Def. 12): the values of
   writes b such that some last write a satisfies a p⪯ b — i.e. b is not
   older than a last write.  Writes ordered strictly after o are excluded:
   they have not been issued from o's point of view. *)
let readable_writes (exec : Execution.t) (o : Op.t) : Op.t list =
  let p = o.Op.proc in
  let c = Order.closure (Order.View p) exec in
  let lw = last_writes_in c exec o in
  let v = o.Op.loc in
  let n = Execution.n_ops exec in
  let out = ref [] in
  for i = n - 1 downto 0 do
    let b = Execution.op exec i in
    if
      Op.is_write b && b.Op.loc = v
      && (not (Order.precedes c o.Op.id b.id))
      && List.exists
           (fun (a : Op.t) -> a.id = b.id || Order.precedes c a.id b.id)
           lw
    then out := b :: !out
  done;
  !out

let readable_values exec o =
  List.sort_uniq compare
    (List.map (fun (w : Op.t) -> w.Op.value) (readable_writes exec o))

(* A data race on location v: two writes to v not ordered by ≺ (Def. 11's
   discussion: "If W contains multiple writes, reading the location is
   nondeterministic; a data-race occurred").  We flag write-write pairs; a
   read racing with a write manifests as |last_writes| > 1 or as a readable
   set with several values. *)
type race = { loc : int; a : Op.t; b : Op.t }

let pp_race ppf { loc; a; b } =
  Fmt.pf ppf "race on v%d between %a and %a" loc Op.pp a Op.pp b

let write_write_races (exec : Execution.t) : race list =
  let c = Order.closure Order.Full exec in
  let races = ref [] in
  for v = 0 to exec.Execution.locs - 1 do
    let ws = Order.writes_of exec v in
    let rec pairs = function
      | [] -> ()
      | (a : Op.t) :: rest ->
          List.iter
            (fun (b : Op.t) ->
              if
                (not (Order.precedes c a.id b.id))
                && not (Order.precedes c b.id a.id)
              then races := { loc = v; a; b } :: !races)
            rest;
          pairs rest
    in
    pairs ws
  done;
  List.rev !races

let race_free exec = write_write_races exec = []

(* Deterministic read: exactly one readable value. *)
let deterministic_read exec o =
  match readable_values exec o with [ _ ] -> true | _ -> false
