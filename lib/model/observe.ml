(* Observation semantics: last writes, readable values and data races
   (Section IV-D, Definitions 11 and 12).

   Reads return values "slowly": a read is guaranteed to see at least the
   last write ordered before it, but may also return any write that is not
   itself ordered before that last write (a newer value that has already
   propagated).  Two ordered reads must observe writes in a consistent
   direction (monotonicity). *)

(* Last writes before op [o] as seen by process [p] (Def. 11): the writes a
   to o's location with a p≺ o and no other write between.  Under a race
   the set has more than one element.  The default view is the issuing
   process's own (its local edges from the initial write guarantee the set
   is never empty, as Def. 11 requires). *)
let last_writes ?(view : int option) (exec : Execution.t) (o : Op.t) :
    Op.t list =
  let rel =
    match view with
    | Some p -> Order.View p
    | None -> if o.Op.proc >= 0 then Order.View o.Op.proc else Order.Global
  in
  let v = o.Op.loc in
  (* One backward pass answers "a ≺ o" for every candidate at once. *)
  let anc = Order.ancestors rel exec o.Op.id in
  let ws = ref [] in
  for i = Execution.n_ops exec - 1 downto 0 do
    let a = Execution.op exec i in
    if Op.is_write a && a.Op.loc = v && anc.(a.id) then ws := a :: !ws
  done;
  let ws = !ws in
  (* Maximality: drop a if some b in ws has a ≺ b.  Edges point from
     lower to higher ids, so any dominator of a has a higher id: sweep ws
     from newest to oldest, accumulating the ancestors of the survivors.
     A dominated b contributes nothing — its ancestors are a subset of
     its dominator's (transitivity) — so the union over survivors equals
     the union over all of ws. *)
  let covered = Array.make (Execution.n_ops exec) false in
  let keep = Hashtbl.create 8 in
  List.iter
    (fun (a : Op.t) ->
      if not covered.(a.id) then begin
        Hashtbl.replace keep a.id ();
        let anc_a = Order.ancestors rel exec a.id in
        Array.iteri (fun i c -> if c then covered.(i) <- true) anc_a
      end)
    (List.rev ws);
  List.filter (fun (a : Op.t) -> Hashtbl.mem keep a.id) ws

(* Readable values for a read [o] by its process (Def. 12): the values of
   writes b such that some last write a satisfies a p⪯ b — i.e. b is not
   older than a last write.  Writes ordered strictly after o are excluded:
   they have not been issued from o's point of view. *)
let readable_writes (exec : Execution.t) (o : Op.t) : Op.t list =
  let p = o.Op.proc in
  let rel = Order.View p in
  let lw = last_writes ~view:p exec o in
  let v = o.Op.loc in
  (* Again bulk passes instead of a DFS per candidate: one forward pass
     from o (writes strictly after o are not readable) and one from each
     last write (the a ⪯ b test). *)
  let after_o = Order.descendants rel exec o.Op.id in
  let n = Execution.n_ops exec in
  let from_lw = Array.make n false in
  List.iter
    (fun (a : Op.t) ->
      from_lw.(a.id) <- true;
      let d = Order.descendants rel exec a.id in
      Array.iteri (fun i c -> if c then from_lw.(i) <- true) d)
    lw;
  let out = ref [] in
  for i = n - 1 downto 0 do
    let b = Execution.op exec i in
    if Op.is_write b && b.Op.loc = v && (not after_o.(b.id)) && from_lw.(b.id)
    then out := b :: !out
  done;
  !out

let readable_values exec o =
  List.sort_uniq compare
    (List.map (fun (w : Op.t) -> w.Op.value) (readable_writes exec o))

(* A data race on location v: two writes to v not ordered by ≺ (Def. 11's
   discussion: "If W contains multiple writes, reading the location is
   nondeterministic; a data-race occurred").  We flag write-write pairs; a
   read racing with a write manifests as |last_writes| > 1 or as a readable
   set with several values. *)
type race = { loc : int; a : Op.t; b : Op.t }

let pp_race ppf { loc; a; b } =
  Fmt.pf ppf "race on v%d between %a and %a" loc Op.pp a Op.pp b

let write_write_races (exec : Execution.t) : race list =
  let races = ref [] in
  for v = 0 to exec.Execution.locs - 1 do
    let ws = Order.writes_of exec v in
    let rec pairs = function
      | [] -> ()
      | (a : Op.t) :: rest ->
          List.iter
            (fun (b : Op.t) ->
              if Order.concurrent Order.Full exec a.id b.id then
                races := { loc = v; a; b } :: !races)
            rest;
          pairs rest
    in
    pairs ws
  done;
  List.rev !races

let race_free exec = write_write_races exec = []

(* Deterministic read: exactly one readable value. *)
let deterministic_read exec o =
  match readable_values exec o with [ _ ] -> true | _ -> false
