(* Exhaustive outcome enumeration of litmus programs under a model's
   operational semantics, plus the model-comparison machinery used to check
   the claims of Section IV-E mechanically. *)

type result = {
  program : Lprog.t;
  model : string;
  outcomes : Lprog.Outcome_set.t;
  states_explored : int;
  stuck_states : int;
      (* non-final states with no successor: deadlocks or livelocks, e.g.
         a hoisted acquire starving the lock holder's waiter *)
}

exception State_space_too_large of int

(* The memo table: an open-addressing set of key strings.  [Hashtbl]
   costs two hash+probe passes per membership-then-add and allocates a
   bucket cell per insert; this set does one hash, one probe run, and
   stores the key string directly.  Keys are never empty (every state
   packs at least one program counter byte), so [""] marks a free
   slot. *)
module Seen : sig
  type t

  val create : unit -> t
  val add : t -> string -> bool
  (** [add t k] — insert; [true] iff [k] was not already present. *)

  val cardinal : t -> int
end = struct
  type t = {
    mutable slots : string array;  (* "" = empty *)
    mutable mask : int;            (* capacity - 1, capacity a power of 2 *)
    mutable count : int;
  }

  let create () = { slots = Array.make 4096 ""; mask = 4095; count = 0 }

  let rec insert slots mask k =
    (* linear probing from the key's hash *)
    let i = ref (Hashtbl.hash k land mask) in
    let result = ref true in
    (try
       while String.length (Array.unsafe_get slots !i) > 0 do
         if String.equal (Array.unsafe_get slots !i) k then begin
           result := false;
           raise Exit
         end;
         i := (!i + 1) land mask
       done;
       Array.unsafe_set slots !i k
     with Exit -> ());
    !result

  and grow t =
    let slots = Array.make (2 * Array.length t.slots) "" in
    let mask = (2 * Array.length t.slots) - 1 in
    Array.iter
      (fun k -> if String.length k > 0 then ignore (insert slots mask k))
      t.slots;
    t.slots <- slots;
    t.mask <- mask

  let add t k =
    let added = insert t.slots t.mask k in
    if added then begin
      t.count <- t.count + 1;
      (* keep load factor under 1/2 *)
      if 2 * t.count > Array.length t.slots then grow t
    end;
    added

  let cardinal t = t.count
end

(* Breadth-first exploration with memoization on packed state keys.  The
   litmus programs are tiny, but [limit] guards against writing one whose
   stream interleavings explode. *)
let enumerate_seq ~limit (module M : Models.SEM) (p : Lprog.t) : result =
  let seen = Seen.create () in
  let outcomes = ref Lprog.Outcome_set.empty in
  let queue = Queue.create () in
  let push st =
    if Seen.add seen (M.key st) then begin
      if Seen.cardinal seen > limit then
        raise (State_space_too_large (Seen.cardinal seen));
      Queue.add st queue
    end
  in
  push (M.init p);
  let stuck = ref 0 in
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    let final = M.is_final p st in
    if final then
      outcomes :=
        Lprog.Outcome_set.add
          (Lprog.outcome_to_string (M.outcome p st))
          !outcomes;
    let succs = M.successors p st in
    if succs = [] && not final then incr stuck;
    List.iter push succs
  done;
  {
    program = p;
    model = M.name;
    outcomes = !outcomes;
    states_explored = Seen.cardinal seen;
    stuck_states = !stuck;
  }

(* Level-synchronous parallel BFS.  Each level's frontier is sharded by
   key hash — a pure function of the state, not of discovery order — the
   pool expands the shards concurrently (successor computation and key
   packing are the hot work), and the coordinator merges results in
   shard order against the single memo table.  Every reported field
   (outcome set, distinct-state count, stuck count) is a function of the
   reachable-state set alone, so the result is identical to
   {!enumerate_seq} at any pool width. *)
let enumerate_par ~limit ~pool (module M : Models.SEM) (p : Lprog.t) :
    result =
  let seen = Seen.create () in
  let outcomes = ref Lprog.Outcome_set.empty in
  let stuck = ref 0 in
  let nshards = 4 * Pmc_par.Pool.jobs pool in
  let init = M.init p in
  let init_key = M.key init in
  ignore (Seen.add seen init_key);
  let frontier = ref [ (init, init_key) ] in
  while !frontier <> [] do
    let shards = Array.make nshards [] in
    List.iter
      (fun (st, k) ->
        let h = Hashtbl.hash k mod nshards in
        shards.(h) <- st :: shards.(h))
      !frontier;
    let expanded =
      Pmc_par.Pool.map_list_ordered pool (Array.to_list shards)
        ~f:
          (List.map (fun st ->
               let final = M.is_final p st in
               let out =
                 if final then
                   Some (Lprog.outcome_to_string (M.outcome p st))
                 else None
               in
               let succs = M.successors p st in
               (out, final, List.map (fun s -> (s, M.key s)) succs)))
    in
    let next = ref [] in
    List.iter
      (List.iter (fun (out, final, succs) ->
           (match out with
           | Some o -> outcomes := Lprog.Outcome_set.add o !outcomes
           | None -> ());
           if succs = [] && not final then incr stuck;
           List.iter
             (fun (s, k) ->
               if Seen.add seen k then begin
                 if Seen.cardinal seen > limit then
                   raise (State_space_too_large (Seen.cardinal seen));
                 next := (s, k) :: !next
               end)
             succs))
      expanded;
    frontier := List.rev !next
  done;
  {
    program = p;
    model = M.name;
    outcomes = !outcomes;
    states_explored = Seen.cardinal seen;
    stuck_states = !stuck;
  }

let enumerate ?(limit = 2_000_000) ?pool (module M : Models.SEM)
    (p : Lprog.t) : result =
  match pool with
  | Some pool when Pmc_par.Pool.jobs pool > 1 ->
      enumerate_par ~limit ~pool (module M) p
  | _ -> enumerate_seq ~limit (module M) p

let outcomes_list r = Lprog.Outcome_set.elements r.outcomes

let allows r outcome_str = Lprog.Outcome_set.mem outcome_str r.outcomes

(* [subset_of r1 r2]: every outcome observable under r1's model is also
   observable under r2's — i.e. model 1 is at least as strong. *)
let subset_of r1 r2 = Lprog.Outcome_set.subset r1.outcomes r2.outcomes

let pp_result ppf r =
  Fmt.pf ppf "%-28s %-24s {%a} (%d states%s)" r.program.Lprog.name r.model
    Fmt.(list ~sep:(any "; ") string)
    (outcomes_list r) r.states_explored
    (if r.stuck_states > 0 then
       Printf.sprintf ", %d STUCK" r.stuck_states
     else "")

(* Enumerate [programs × models], optionally fanning the independent
   explorations out over a domain pool.  Each enumeration owns all its
   state (memo table, queue), so the pool only changes wall-clock time;
   results come back grouped per program, in [models] order — exactly the
   sequential nesting. *)
let enumerate_matrix ?limit ?pool ?(models = Models.all)
    (programs : Lprog.t list) : result list list =
  let pairs =
    List.concat_map (fun p -> List.map (fun m -> (p, m)) models) programs
  in
  let f (p, m) = enumerate ?limit m p in
  let flat =
    match pool with
    | Some pool -> Pmc_par.Pool.map_list_ordered pool pairs ~f
    | None -> List.map f pairs
  in
  let per_program = List.length models in
  let rec regroup = function
    | [] -> []
    | flat ->
        let rec take n l =
          if n = 0 then ([], l)
          else
            match l with
            | [] -> invalid_arg "enumerate_matrix: short row"
            | x :: rest ->
                let row, rest = take (n - 1) rest in
                (x :: row, rest)
        in
        let row, rest = take per_program flat in
        row :: regroup rest
  in
  regroup flat

(* Run one program under every model. *)
let compare_models ?limit ?pool (p : Lprog.t) : result list =
  match enumerate_matrix ?limit ?pool [ p ] with
  | [ row ] -> row
  | _ -> assert false

(* The ordering-strength claims of Section IV-E, as checkable predicates
   over a set of *uniform* (read/write-only) programs:
   SC ⊆ PC ⊆ CC ⊆ Slow (each weaker model allows at least the stronger
   model's outcomes). *)
let strength_chain_holds ?limit ?pool (programs : Lprog.t list) : bool =
  let models : (module Models.SEM) list =
    [ (module Models.Sc); (module Models.Pc); (module Models.Cc);
      (module Models.Slow) ]
  in
  enumerate_matrix ?limit ?pool ~models programs
  |> List.for_all (function
       | [ sc; pc; cc; slow ] ->
           subset_of sc pc && subset_of pc cc && subset_of cc slow
       | _ -> assert false)
