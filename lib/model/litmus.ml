(* Exhaustive outcome enumeration of litmus programs under a model's
   operational semantics, plus the model-comparison machinery used to check
   the claims of Section IV-E mechanically. *)

type result = {
  program : Lprog.t;
  model : string;
  outcomes : Lprog.Outcome_set.t;
  states_explored : int;
  stuck_states : int;
      (* non-final states with no successor: deadlocks or livelocks, e.g.
         a hoisted acquire starving the lock holder's waiter *)
}

exception State_space_too_large of int

(* Breadth-first exploration with memoization on marshalled states.  The
   litmus programs are tiny, but [limit] guards against writing one whose
   stream interleavings explode. *)
let enumerate ?(limit = 2_000_000) (module M : Models.SEM) (p : Lprog.t) :
    result =
  let seen = Hashtbl.create 4096 in
  let outcomes = ref Lprog.Outcome_set.empty in
  let queue = Queue.create () in
  let push st =
    let k = M.key st in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      if Hashtbl.length seen > limit then
        raise (State_space_too_large (Hashtbl.length seen));
      Queue.add st queue
    end
  in
  push (M.init p);
  let stuck = ref 0 in
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    let final = M.is_final p st in
    if final then
      outcomes :=
        Lprog.Outcome_set.add
          (Lprog.outcome_to_string (M.outcome p st))
          !outcomes;
    let succs = M.successors p st in
    if succs = [] && not final then incr stuck;
    List.iter push succs
  done;
  {
    program = p;
    model = M.name;
    outcomes = !outcomes;
    states_explored = Hashtbl.length seen;
    stuck_states = !stuck;
  }

let outcomes_list r = Lprog.Outcome_set.elements r.outcomes

let allows r outcome_str = Lprog.Outcome_set.mem outcome_str r.outcomes

(* [subset_of r1 r2]: every outcome observable under r1's model is also
   observable under r2's — i.e. model 1 is at least as strong. *)
let subset_of r1 r2 = Lprog.Outcome_set.subset r1.outcomes r2.outcomes

let pp_result ppf r =
  Fmt.pf ppf "%-28s %-24s {%a} (%d states%s)" r.program.Lprog.name r.model
    Fmt.(list ~sep:(any "; ") string)
    (outcomes_list r) r.states_explored
    (if r.stuck_states > 0 then
       Printf.sprintf ", %d STUCK" r.stuck_states
     else "")

(* Enumerate [programs × models], optionally fanning the independent
   explorations out over a domain pool.  Each enumeration owns all its
   state (memo table, queue), so the pool only changes wall-clock time;
   results come back grouped per program, in [models] order — exactly the
   sequential nesting. *)
let enumerate_matrix ?limit ?pool ?(models = Models.all)
    (programs : Lprog.t list) : result list list =
  let pairs =
    List.concat_map (fun p -> List.map (fun m -> (p, m)) models) programs
  in
  let f (p, m) = enumerate ?limit m p in
  let flat =
    match pool with
    | Some pool -> Pmc_par.Pool.map_list_ordered pool pairs ~f
    | None -> List.map f pairs
  in
  let per_program = List.length models in
  let rec regroup = function
    | [] -> []
    | flat ->
        let rec take n l =
          if n = 0 then ([], l)
          else
            match l with
            | [] -> invalid_arg "enumerate_matrix: short row"
            | x :: rest ->
                let row, rest = take (n - 1) rest in
                (x :: row, rest)
        in
        let row, rest = take per_program flat in
        row :: regroup rest
  in
  regroup flat

(* Run one program under every model. *)
let compare_models ?limit ?pool (p : Lprog.t) : result list =
  match enumerate_matrix ?limit ?pool [ p ] with
  | [ row ] -> row
  | _ -> assert false

(* The ordering-strength claims of Section IV-E, as checkable predicates
   over a set of *uniform* (read/write-only) programs:
   SC ⊆ PC ⊆ CC ⊆ Slow (each weaker model allows at least the stronger
   model's outcomes). *)
let strength_chain_holds ?limit ?pool (programs : Lprog.t list) : bool =
  let models : (module Models.SEM) list =
    [ (module Models.Sc); (module Models.Pc); (module Models.Cc);
      (module Models.Slow) ]
  in
  enumerate_matrix ?limit ?pool ~models programs
  |> List.for_all (function
       | [ sc; pc; cc; slow ] ->
           subset_of sc pc && subset_of pc cc && subset_of cc slow
       | _ -> assert false)
