(* Validation of observed runs against the PMC model.

   A history is the sequence of operations one run of a program actually
   issued, in issue order, with the value each read returned.  [check]
   replays it through the Table-I state transition and verifies:

     - well-formed locking: an acquire takes a free lock; a release is
       issued by the current holder; mutual exclusion holds (Sec. IV-B);
     - every read returned a value readable at its issue point (Def. 12);
     - reads are monotonic: two ordered reads of one process never observe
       writes in opposite order (Def. 12, second clause);
     - the resulting execution stays acyclic (≺ is a partial order).

   The simulator back-ends are tested by feeding their traces through this
   checker: whatever timing a back-end produces, the observable values must
   be explainable by the model. *)

type event =
  | E_read of { proc : int; loc : int; value : int }
  | E_write of { proc : int; loc : int; value : int }
  | E_acquire of { proc : int; loc : int }
  | E_release of { proc : int; loc : int }
  | E_acquire_ro of { proc : int; loc : int }
  | E_release_ro of { proc : int; loc : int }
  | E_fence of { proc : int }

type violation =
  | Double_acquire of { loc : int; holder : int; proc : int }
  | Release_not_held of { loc : int; proc : int }
  | Unreadable_value of { op : Op.t; readable : int list }
  | Non_monotonic_reads of { first : Op.t; second : Op.t }
  | Cyclic_order
  | Write_outside_lock of { op : Op.t }

let pp_violation ppf = function
  | Double_acquire { loc; holder; proc } ->
      Fmt.pf ppf "p%d acquired v%d while p%d holds it" proc loc holder
  | Release_not_held { loc; proc } ->
      Fmt.pf ppf "p%d released v%d without holding it" proc loc
  | Unreadable_value { op; readable } ->
      Fmt.pf ppf "%a returned a value outside readable set {%a}" Op.pp op
        Fmt.(list ~sep:comma int)
        readable
  | Non_monotonic_reads { first; second } ->
      Fmt.pf ppf "reads went back in time: %a then %a" Op.pp first Op.pp
        second
  | Cyclic_order -> Fmt.pf ppf "execution order contains a cycle"
  | Write_outside_lock { op } ->
      Fmt.pf ppf "%a issued outside an acquire/release pair" Op.pp op

type report = {
  exec : Execution.t;
  violations : violation list;
}

let ok report = report.violations = []

(* [writes_seen] remembers, per (proc, loc), the id of the write the last
   read of that proc/loc observed, for the monotonicity check. *)
let check ?(require_locked_writes = false) ?(init = fun _ -> 0) ~procs ~locs
    (events : event list) : report =
  let exec = Execution.create ~init ~procs ~locs () in
  let holder = Array.make locs None in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let writes_seen = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | E_fence { proc } -> ignore (Execution.fence exec ~proc)
      | E_acquire { proc; loc } ->
          (match holder.(loc) with
          | Some h -> add (Double_acquire { loc; holder = h; proc })
          | None -> ());
          holder.(loc) <- Some proc;
          ignore (Execution.acquire exec ~proc ~loc)
      | E_release { proc; loc } ->
          (match holder.(loc) with
          | Some h when h = proc -> holder.(loc) <- None
          | _ -> add (Release_not_held { loc; proc }));
          ignore (Execution.release exec ~proc ~loc)
      | E_acquire_ro { proc; loc } ->
          (* read-only entry: synchronizes with the last exclusive release
             of the location (the same Table-I acquire edges) but takes no
             lock, so any number may be held concurrently *)
          ignore (Execution.acquire exec ~proc ~loc)
      | E_release_ro { proc; loc } ->
          (* read-only exit: later exclusive acquires are ≺S-after it
             (writers wait for readers), with no holder bookkeeping *)
          ignore (Execution.release exec ~proc ~loc)
      | E_write { proc; loc; value } ->
          if require_locked_writes && holder.(loc) <> Some proc then
            add
              (Write_outside_lock
                 { op = { id = -1; kind = Op.Write; proc; loc; value } });
          ignore (Execution.write exec ~proc ~loc ~value)
      | E_read { proc; loc; value } ->
          let o = Execution.read exec ~proc ~loc ~value in
          let readable = Observe.readable_writes exec o in
          (match
             List.filter (fun (w : Op.t) -> w.Op.value = value) readable
           with
          | [] ->
              add
                (Unreadable_value
                   {
                     op = o;
                     readable =
                       List.sort_uniq compare
                         (List.map (fun (w : Op.t) -> w.Op.value) readable);
                   })
          | ws ->
              (* Monotonicity: the newly observed write must not be ordered
                 strictly before the one the previous read observed. *)
              let key = (proc, loc) in
              (match Hashtbl.find_opt writes_seen key with
              | Some prev_write_id
                when
                  (* one backward pass from the previously observed write
                     answers w ≺ prev for every candidate at once *)
                  let anc_prev =
                    Order.ancestors (Order.View proc) exec prev_write_id
                  in
                  List.for_all
                    (fun (w : Op.t) -> anc_prev.(w.Op.id))
                    ws ->
                  add
                    (Non_monotonic_reads
                       {
                         first = Execution.op exec prev_write_id;
                         second = o;
                       })
              | _ -> ());
              (* Remember the oldest candidate conservatively. *)
              (match ws with
              | w :: _ -> Hashtbl.replace writes_seen key w.Op.id
              | [] -> ())))
    events;
  if not (Order.is_acyclic exec) then add Cyclic_order;
  { exec; violations = List.rev !violations }
