(* Validation of observed runs against the PMC model.

   A history is the sequence of operations one run of a program actually
   issued, in issue order, with the value each read returned.  [check]
   replays it through the Table-I state transition and verifies:

     - well-formed locking: an acquire takes a free lock; a release is
       issued by the current holder; mutual exclusion holds (Sec. IV-B);
     - every read returned a value readable at its issue point (Def. 12);
     - reads are monotonic: two ordered reads of one process never observe
       writes in opposite order (Def. 12, second clause);
     - the resulting execution stays acyclic (≺ is a partial order).

   The simulator back-ends are tested by feeding their traces through this
   checker: whatever timing a back-end produces, the observable values must
   be explainable by the model.

   Two implementations coexist.  [check] is incremental: it never builds
   the execution DAG (whose Table-I edge sets grow quadratically with the
   history) and instead carries per-(process, location) write frontiers
   across events, so an n-event history replays in roughly
   O(n · procs² · locs) int operations and O(procs² · locs) live state.
   [check_reference] is the original definition — issue every event
   through [Execution.execute] and answer each read with
   [Observe.readable_writes] — kept as the executable specification the
   qcheck equivalence properties compare against. *)

type event =
  | E_read of { proc : int; loc : int; value : int }
  | E_write of { proc : int; loc : int; value : int }
  | E_acquire of { proc : int; loc : int }
  | E_release of { proc : int; loc : int }
  | E_acquire_ro of { proc : int; loc : int }
  | E_release_ro of { proc : int; loc : int }
  | E_fence of { proc : int }

type violation =
  | Double_acquire of { loc : int; holder : int; proc : int }
  | Release_not_held of { loc : int; proc : int }
  | Unreadable_value of { op : Op.t; readable : int list }
  | Non_monotonic_reads of { first : Op.t; second : Op.t }
  | Cyclic_order
  | Write_outside_lock of { op : Op.t }

let pp_violation ppf = function
  | Double_acquire { loc; holder; proc } ->
      Fmt.pf ppf "p%d acquired v%d while p%d holds it" proc loc holder
  | Release_not_held { loc; proc } ->
      Fmt.pf ppf "p%d released v%d without holding it" proc loc
  | Unreadable_value { op; readable } ->
      Fmt.pf ppf "%a returned a value outside readable set {%a}" Op.pp op
        Fmt.(list ~sep:comma int)
        readable
  | Non_monotonic_reads { first; second } ->
      Fmt.pf ppf "reads went back in time: %a then %a" Op.pp first Op.pp
        second
  | Cyclic_order -> Fmt.pf ppf "execution order contains a cycle"
  | Write_outside_lock { op } ->
      Fmt.pf ppf "%a issued outside an acquire/release pair" Op.pp op

type report = { violations : violation list }

let ok report = report.violations = []

type full_report = { exec : Execution.t; full_violations : violation list }

let full_ok r = r.full_violations = []

(* ------------------------------------------------------------------ *)
(* The reference checker: the executable specification.                *)
(* ------------------------------------------------------------------ *)

(* [writes_seen] remembers, per (proc, loc), the id of the write the last
   read of that proc/loc observed, for the monotonicity check. *)
let check_reference ?(require_locked_writes = false) ?(init = fun _ -> 0)
    ~procs ~locs (events : event list) : full_report =
  let exec = Execution.create ~init ~procs ~locs () in
  let holder = Array.make locs None in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let writes_seen = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | E_fence { proc } -> ignore (Execution.fence exec ~proc)
      | E_acquire { proc; loc } ->
          (match holder.(loc) with
          | Some h -> add (Double_acquire { loc; holder = h; proc })
          | None -> ());
          holder.(loc) <- Some proc;
          ignore (Execution.acquire exec ~proc ~loc)
      | E_release { proc; loc } ->
          (match holder.(loc) with
          | Some h when h = proc -> holder.(loc) <- None
          | _ -> add (Release_not_held { loc; proc }));
          ignore (Execution.release exec ~proc ~loc)
      | E_acquire_ro { proc; loc } ->
          (* read-only entry: synchronizes with the last exclusive release
             of the location (the same Table-I acquire edges) but takes no
             lock, so any number may be held concurrently *)
          ignore (Execution.acquire exec ~proc ~loc)
      | E_release_ro { proc; loc } ->
          (* read-only exit: later exclusive acquires are ≺S-after it
             (writers wait for readers), with no holder bookkeeping *)
          ignore (Execution.release exec ~proc ~loc)
      | E_write { proc; loc; value } ->
          if require_locked_writes && holder.(loc) <> Some proc then
            add
              (Write_outside_lock
                 { op = { id = -1; kind = Op.Write; proc; loc; value } });
          ignore (Execution.write exec ~proc ~loc ~value)
      | E_read { proc; loc; value } ->
          let o = Execution.read exec ~proc ~loc ~value in
          let readable = Observe.readable_writes exec o in
          (match
             List.filter (fun (w : Op.t) -> w.Op.value = value) readable
           with
          | [] ->
              add
                (Unreadable_value
                   {
                     op = o;
                     readable =
                       List.sort_uniq compare
                         (List.map (fun (w : Op.t) -> w.Op.value) readable);
                   })
          | ws ->
              (* Monotonicity: the newly observed write must not be ordered
                 strictly before the one the previous read observed. *)
              let key = (proc, loc) in
              (match Hashtbl.find_opt writes_seen key with
              | Some prev_write_id
                when
                  (* one backward pass from the previously observed write
                     answers w ≺ prev for every candidate at once *)
                  let anc_prev =
                    Order.ancestors (Order.View proc) exec prev_write_id
                  in
                  List.for_all
                    (fun (w : Op.t) -> anc_prev.(w.Op.id))
                    ws ->
                  add
                    (Non_monotonic_reads
                       {
                         first = Execution.op exec prev_write_id;
                         second = o;
                       })
              | _ -> ());
              (* Remember the oldest candidate conservatively. *)
              (match ws with
              | w :: _ -> Hashtbl.replace writes_seen key w.Op.id
              | [] -> ())))
    events;
  if not (Order.is_acyclic exec) then add Cyclic_order;
  { exec; full_violations = List.rev !violations }

(* ------------------------------------------------------------------ *)
(* The incremental checker.                                            *)
(* ------------------------------------------------------------------ *)

(* Writes by one process to one location are totally ≺P-ordered (every
   write gains a Program edge from all earlier writes of its (proc, loc)
   bucket), so "which writes to v precede operation x" is always
   per-writer prefix-closed and can be carried as a frontier: one count
   per (writer, location) slot.  A frontier row is a flat [procs·locs]
   int array; joining two rows is an elementwise max.

   The Table-I rules draw an edge into a new operation from *every*
   previous member of a (kind, proc, loc) bucket, so the down-set of a
   new operation is exactly the union of the accumulated down-sets of the
   buckets its rules match.  The checker keeps one running frontier per
   bucket actually consumed by some rule.  Edge kinds are observer-
   filtered: a [Local p] edge is visible only under View p, and every
   local edge into an operation carries the label of the operation's own
   process, so a bucket consumed only through local edges needs just the
   one observer row:

     cw.(p·locs+v)   writes   (w,p,v) — into (p,v) ops via ≺P/≺ℓ
     ca.(p·locs+v)   acquires (A,p,v) — into (p,v) ops via ≺P/≺ℓ
     cr.(p·locs+v)   reads    (r,p,v) — via ≺ℓ only: observer-p row only
     s.(v)           releases (R,∗,v) — into acquires of v via ≺S
     fc.(p)          fences of p — into (w|R|A) of p via ≺F
     fj_ar.(p)       acquires/releases of p — into fences of p via ≺F
     fj_rw.(p)       reads/writes of p — into fences via ≺ℓ: observer-p
                     row only

   The initial operation of each location needs no slot: it precedes
   every read and write of its location under every relation and nothing
   precedes it, so the query sites special-case it instead. *)

type wrec = {
  w_id : int;  (* operation id, for violation reports *)
  w_proc : int;
  w_index : int;  (* 1-based rank in the (proc, loc) write chain *)
  w_value : int;
  w_before : int array;
      (* (observer r, writer q) -> number of (q, loc) writes strictly
         before this one under View r; procs² entries, observer-major *)
}

(* Tiny growable array (OCaml 5.1 has no Dynarray). *)
type 'a vec = { mutable arr : 'a array; mutable len : int }

let vec_make () = { arr = [||]; len = 0 }

let vec_push v x =
  if v.len = Array.length v.arr then begin
    let arr' = Array.make (max 8 (2 * v.len)) x in
    Array.blit v.arr 0 arr' 0 v.len;
    v.arr <- arr'
  end;
  v.arr.(v.len) <- x;
  v.len <- v.len + 1

(* What the previous read of a (proc, loc) pair observed. *)
type prev_obs = P_init | P_write of wrec

let check ?(require_locked_writes = false) ?(init = fun _ -> 0) ~procs ~locs
    (events : event list) : report =
  if procs < 1 then invalid_arg "History.check: bad process count";
  if locs < 1 then invalid_arg "History.check: bad location count";
  let pl = procs * locs in
  let fresh_rows () = Array.init procs (fun _ -> Array.make pl 0) in
  let no_rows : int array array = [||] in
  let no_row : int array = [||] in
  (* frontier state; the per-(proc, loc) entries are allocated on first
     touch so untouched pairs cost one pointer *)
  let cw = Array.make pl no_rows in
  let ca = Array.make pl no_rows in
  let cr = Array.make pl no_row in
  let s = Array.make locs no_rows in
  let fc = Array.init procs (fun _ -> fresh_rows ()) in
  let fj_ar = Array.init procs (fun _ -> fresh_rows ()) in
  let fj_rw = Array.init procs (fun _ -> Array.make pl 0) in
  let rows_of tbl i =
    if tbl.(i) == no_rows then tbl.(i) <- fresh_rows ();
    tbl.(i)
  in
  let row_of tbl i =
    if tbl.(i) == no_row then tbl.(i) <- Array.make pl 0;
    tbl.(i)
  in
  let join (dst : int array) (src : int array) =
    for i = 0 to pl - 1 do
      if src.(i) > dst.(i) then dst.(i) <- src.(i)
    done
  in
  (* write registries: per (proc, loc) chain and per location, issue order *)
  let chains = Array.init pl (fun _ -> vec_make ()) in
  let by_loc = Array.init locs (fun _ -> vec_make ()) in
  (* lock and monotonicity bookkeeping, as in the reference *)
  let holder = Array.make locs None in
  let writes_seen : (int * int, prev_obs) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let next_id = ref locs in
  let check_bounds proc loc =
    if proc < 0 || proc >= procs then invalid_arg "History.check: bad process";
    if loc < 0 || loc >= locs then invalid_arg "History.check: bad location"
  in

  let do_read proc loc value id =
    let pv = (proc * locs) + loc in
    let cw_pv = cw.(pv) and ca_pv = ca.(pv) in
    (* before-writes frontier of this read at its own location: per
       writer q, how many (q, loc) writes precede it under View proc *)
    let frontier =
      Array.init procs (fun q ->
          let a =
            if cw_pv == no_rows then 0 else cw_pv.(proc).((q * locs) + loc)
          in
          let b =
            if ca_pv == no_rows then 0 else ca_pv.(proc).((q * locs) + loc)
          in
          max a b)
    in
    let lw_is_init = Array.for_all (fun n -> n = 0) frontier in
    let lw_last q = chains.((q * locs) + loc).arr.(frontier.(q) - 1) in
    (* last writes: the newest write of each non-empty per-writer prefix,
       minus the dominated ones (q's is dominated iff another writer's
       newest already counts it among its own befores) *)
    let is_lw q =
      frontier.(q) > 0
      &&
      let dominated = ref false in
      for q' = 0 to procs - 1 do
        if (not !dominated) && q' <> q && frontier.(q') > 0 then
          if (lw_last q').w_before.((proc * procs) + q) >= frontier.(q) then
            dominated := true
      done;
      not !dominated
    in
    let lw = Array.init procs is_lw in
    (* b is readable iff some last write precedes-or-equals it (Def. 12);
       when the only last write is the initial operation, every write
       issued so far is readable.  Within one writer chain the count
       [w_before.(proc·procs+q)] is monotone (the bucket frontier it was
       snapshotted from only grows), so for each last write q the
       readable part of each chain is a suffix, found by binary search;
       the union over q is the suffix from the minimum start.  A last
       write's own chain is special: the element at index
       [frontier.(q)-1] is the last write itself, readable by identity,
       and contiguous with its chain's suffix.  After this, "is b
       readable" is one index comparison. *)
    let starts = Array.make procs max_int in
    if lw_is_init then Array.fill starts 0 procs 0
    else
      for q' = 0 to procs - 1 do
        let c = chains.((q' * locs) + loc) in
        let s = ref max_int in
        for q = 0 to procs - 1 do
          if lw.(q) then
            if q = q' then s := min !s (frontier.(q') - 1)
            else begin
              let tgt = frontier.(q) and off = (proc * procs) + q in
              let lo = ref 0 and hi = ref c.len in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                if c.arr.(mid).w_before.(off) >= tgt then hi := mid
                else lo := mid + 1
              done;
              s := min !s !lo
            end
        done;
        starts.(q') <- !s
      done;
    let readable (b : wrec) = b.w_index - 1 >= starts.(b.w_proc) in
    let ws = by_loc.(loc) in
    let init_candidate = lw_is_init && init loc = value in
    (* oldest readable write carrying the observed value: per chain the
       first match at or after the readable start (ids ascend within a
       chain), minimized across chains; chains are abandoned as soon as
       they pass the best id found so far *)
    let oldest = ref None in
    let best_id = ref max_int in
    for q' = 0 to procs - 1 do
      let c = chains.((q' * locs) + loc) in
      let i = ref starts.(q') in
      let scanning = ref true in
      while !scanning && !i < c.len do
        let b = c.arr.(!i) in
        if b.w_id >= !best_id then scanning := false
        else if b.w_value = value then begin
          oldest := Some b;
          best_id := b.w_id;
          scanning := false
        end
        else incr i
      done
    done;
    if (not init_candidate) && !oldest = None then begin
      (* unreadable: collect the full readable value set for the report *)
      let values = ref (if lw_is_init then [ init loc ] else []) in
      for q' = 0 to procs - 1 do
        let c = chains.((q' * locs) + loc) in
        for j = starts.(q') to c.len - 1 do
          values := c.arr.(j).w_value :: !values
        done
      done;
      add
        (Unreadable_value
           {
             op = { id; kind = Op.Read; proc; loc; value };
             readable = List.sort_uniq compare !values;
           })
    end
    else begin
      (match Hashtbl.find_opt writes_seen (proc, loc) with
      | Some (P_write pw) ->
          (* violation iff every candidate is strictly View-proc-before
             the previously observed write.  The initial operation, when
             a candidate, precedes every real write, so it cannot break
             the for-all; scan real candidates newest-first so the common
             case (the newest one is not before prev) exits early. *)
          let all_before = ref true in
          let j = ref (ws.len - 1) in
          while !all_before && !j >= 0 do
            let b = ws.arr.(!j) in
            if b.w_value = value && readable b then
              if not (pw.w_before.((proc * procs) + b.w_proc) >= b.w_index)
              then all_before := false;
            decr j
          done;
          if !all_before then
            add
              (Non_monotonic_reads
                 {
                   first =
                     {
                       id = pw.w_id;
                       kind = Op.Write;
                       proc = pw.w_proc;
                       loc;
                       value = pw.w_value;
                     };
                   second = { id; kind = Op.Read; proc; loc; value };
                 })
      | Some P_init | None -> ());
      (* remember the oldest candidate conservatively *)
      (match (init_candidate, !oldest) with
      | true, _ -> Hashtbl.replace writes_seen (proc, loc) P_init
      | false, Some b -> Hashtbl.replace writes_seen (proc, loc) (P_write b)
      | false, None -> ())
    end;
    (* propagation: the read's down-set (under its own view only — all
       its in-edges are local) feeds later (proc, loc) operations and
       later fences of proc *)
    let crr = row_of cr pv in
    if cw_pv != no_rows then join crr cw_pv.(proc);
    if ca_pv != no_rows then join crr ca_pv.(proc);
    join fj_rw.(proc) crr
  in

  let do_write proc loc value id =
    if require_locked_writes && holder.(loc) <> Some proc then
      add
        (Write_outside_lock
           { op = { id = -1; kind = Op.Write; proc; loc; value } });
    let pv = (proc * locs) + loc in
    let rows = rows_of cw pv in
    let ca_pv = ca.(pv) and cr_pv = cr.(pv) in
    for r = 0 to procs - 1 do
      let dst = rows.(r) in
      if ca_pv != no_rows then join dst ca_pv.(r);
      join dst fc.(proc).(r)
    done;
    if cr_pv != no_row then join rows.(proc) cr_pv;
    (* the write's own strictly-before counts, per (observer, writer) *)
    let before = Array.make (procs * procs) 0 in
    for r = 0 to procs - 1 do
      for q = 0 to procs - 1 do
        before.((r * procs) + q) <- rows.(r).((q * locs) + loc)
      done
    done;
    let idx = chains.(pv).len + 1 in
    let w = { w_id = id; w_proc = proc; w_index = idx; w_value = value;
              w_before = before } in
    vec_push chains.(pv) w;
    vec_push by_loc.(loc) w;
    for r = 0 to procs - 1 do
      rows.(r).(pv) <- idx
    done;
    join fj_rw.(proc) rows.(proc)
  in

  let do_acquire ~ro proc loc =
    if not ro then begin
      (match holder.(loc) with
      | Some h -> add (Double_acquire { loc; holder = h; proc })
      | None -> ());
      holder.(loc) <- Some proc
    end;
    let pv = (proc * locs) + loc in
    let rows = rows_of ca pv in
    let s_v = s.(loc) and cr_pv = cr.(pv) in
    for r = 0 to procs - 1 do
      let dst = rows.(r) in
      if s_v != no_rows then join dst s_v.(r);
      join dst fc.(proc).(r)
    done;
    if cr_pv != no_row then join rows.(proc) cr_pv;
    for r = 0 to procs - 1 do
      join fj_ar.(proc).(r) rows.(r)
    done
  in

  let do_release ~ro proc loc =
    if not ro then
      match holder.(loc) with
      | Some h when h = proc -> holder.(loc) <- None
      | _ -> add (Release_not_held { loc; proc })
  in
  let do_release_common proc loc =
    let pv = (proc * locs) + loc in
    let cw_pv = cw.(pv) and ca_pv = ca.(pv) and cr_pv = cr.(pv) in
    let s_v = rows_of s loc in
    for r = 0 to procs - 1 do
      let sv = s_v.(r) and fj = fj_ar.(proc).(r) in
      if cw_pv != no_rows then begin
        join sv cw_pv.(r);
        join fj cw_pv.(r)
      end;
      if ca_pv != no_rows then begin
        join sv ca_pv.(r);
        join fj ca_pv.(r)
      end;
      join sv fc.(proc).(r);
      join fj fc.(proc).(r)
    done;
    if cr_pv != no_row then begin
      join s_v.(proc) cr_pv;
      join fj_ar.(proc).(proc) cr_pv
    end
  in

  let do_fence proc =
    for r = 0 to procs - 1 do
      join fc.(proc).(r) fj_ar.(proc).(r)
    done;
    join fc.(proc).(proc) fj_rw.(proc)
  in

  List.iter
    (fun ev ->
      let id = !next_id in
      incr next_id;
      match ev with
      | E_fence { proc } ->
          check_bounds proc 0;
          do_fence proc
      | E_acquire { proc; loc } ->
          check_bounds proc loc;
          do_acquire ~ro:false proc loc
      | E_acquire_ro { proc; loc } ->
          check_bounds proc loc;
          do_acquire ~ro:true proc loc
      | E_release { proc; loc } ->
          check_bounds proc loc;
          do_release ~ro:false proc loc;
          do_release_common proc loc
      | E_release_ro { proc; loc } ->
          check_bounds proc loc;
          do_release ~ro:true proc loc;
          do_release_common proc loc
      | E_write { proc; loc; value } ->
          check_bounds proc loc;
          do_write proc loc value id
      | E_read { proc; loc; value } ->
          check_bounds proc loc;
          do_read proc loc value id)
    events;
  (* every edge the Table-I rules create points from a lower id to a
     higher one, so ≺ is acyclic by construction — the reference's final
     [Order.is_acyclic] pass can never fire and is not replayed here *)
  { violations = List.rev !violations }
