(* Executions E = (P, V, O, ≺) and the state-transition rules of Table I
   (Definitions 1, 3 and 4 of the paper).

   The execution is a growing DAG.  Edges carry the ordering kind that
   created them:

     - [Local p]  — locally visible order  p≺ℓ (Def. 6)
     - [Program]  — program order          ≺P  (Def. 5)
     - [Sync]     — synchronization order  ≺S  (Def. 7)
     - [Fence]    — fence order            ≺F  (Def. 8)

   The globally visible order ≺G (Def. 9) is the union of Program, Sync and
   Fence edges; the execution order ≺ (Def. 10) additionally includes the
   local edges of every process. *)

type edge_kind =
  | Local of int  (* visible only to this process *)
  | Program
  | Sync
  | Fence

let edge_kind_to_string = function
  | Local p -> Printf.sprintf "%d<l" p
  | Program -> "<P"
  | Sync -> "<S"
  | Fence -> "<F"

type edge = { src : int; kind : edge_kind; dst : int }

type t = {
  procs : int;
  locs : int;
  mutable ops : Op.t array;    (* index = Op.id *)
  mutable n_ops : int;
  mutable succs : (edge_kind * int) list array;  (* outgoing edges per op *)
  mutable preds : (edge_kind * int) list array;  (* incoming edges per op *)
  fence_scopes : (int, int list) Hashtbl.t;
      (* fence op id -> the locations it orders (absent = all) *)
  by_kpl : (Op.kind * int * int, int list) Hashtbl.t;
      (* (kind, proc, loc) -> ids, newest first.  The Table-I rules only
         ever select candidates by (kind, proc, loc), (kind, loc) or
         (kind, proc); these indexes make [execute] proportional to the
         number of matches instead of the history length.  [Init]
         operations are not indexed: there is exactly one per location
         (its id IS the location) and it matches any process. *)
  by_kl : (Op.kind * int, int list) Hashtbl.t;
  by_kp : (Op.kind * int, int list) Hashtbl.t;
}

let capacity_grow exec =
  if exec.n_ops = Array.length exec.ops then begin
    let n = max 16 (2 * Array.length exec.ops) in
    let dummy : Op.t =
      { id = -1; kind = Op.Fence; proc = 0; loc = Op.no_loc; value = 0 }
    in
    let ops' = Array.make n dummy in
    Array.blit exec.ops 0 ops' 0 exec.n_ops;
    exec.ops <- ops';
    let succs' = Array.make n [] in
    Array.blit exec.succs 0 succs' 0 exec.n_ops;
    exec.succs <- succs';
    let preds' = Array.make n [] in
    Array.blit exec.preds 0 preds' 0 exec.n_ops;
    exec.preds <- preds'
  end

let add_op_raw exec (kind : Op.kind) ~proc ~loc ~value : Op.t =
  capacity_grow exec;
  let o : Op.t = { id = exec.n_ops; kind; proc; loc; value } in
  exec.ops.(o.id) <- o;
  exec.n_ops <- exec.n_ops + 1;
  o

let add_edge exec ~src ~kind ~dst =
  if src <> dst then begin
    exec.succs.(src) <- (kind, dst) :: exec.succs.(src);
    exec.preds.(dst) <- (kind, src) :: exec.preds.(dst)
  end

(* Initialization (Def. 3): every location gets an initial operation that
   behaves like a write and a release; ≺ starts empty.  [init] gives the
   value each initial operation writes (default 0, zeroed memory). *)
let create ?(init = fun _ -> 0) ~procs ~locs () =
  let exec =
    { procs; locs; ops = [||]; n_ops = 0; succs = [||]; preds = [||];
      fence_scopes = Hashtbl.create 8; by_kpl = Hashtbl.create 64;
      by_kl = Hashtbl.create 64; by_kp = Hashtbl.create 64 }
  in
  for v = 0 to locs - 1 do
    ignore (add_op_raw exec Op.Init ~proc:Op.env_proc ~loc:v ~value:(init v))
  done;
  exec

let op exec id = exec.ops.(id)
let n_ops exec = exec.n_ops

let iter_ops exec f =
  for i = 0 to exec.n_ops - 1 do
    f exec.ops.(i)
  done

let ops_list exec =
  List.init exec.n_ops (fun i -> exec.ops.(i))

let edges exec =
  let acc = ref [] in
  for src = exec.n_ops - 1 downto 0 do
    List.iter
      (fun (kind, dst) -> acc := { src; kind; dst } :: !acc)
      exec.succs.(src)
  done;
  !acc

(* The ordering rules of Table I.  For a new operation [o], every already
   issued operation matching the row pattern gains an edge of the table's
   kind towards [o].  Row by row (existing operation ≺ new operation):

     read    (r,p,v,∗):  ≺ℓ before new w, R, A, F of the same p (and v)
     write   (w,p,v,∗):  ≺ℓ before new r;  ≺P before new w, R;  ≺ℓ before F
     acquire (A,p,v,∗):  ≺ℓ before new r;  ≺P before new w, R;  ≺F before F
     release (R,∗,v,∗):  ≺S before new A (any process — see the table's
                          dagger note);  (R,p,v,∗) ≺F before new F
     fence   (F,p,∗,∗):  ≺F before new w, R, A

   Fences span all locations of the issuing process; all other rows apply
   to the new operation's location only.  [Init] operations participate as
   both write and release rows. *)
let rules_for (exec : t) (o : Op.t) : (Op.pattern * edge_kind) list =
  ignore exec;
  let p = o.proc and v = o.loc in
  let pat = Op.pattern in
  match o.kind with
  | Op.Read ->
      [ (pat ~kind:Op.Write ~proc:p ~loc:v (), Local p);
        (pat ~kind:Op.Acquire ~proc:p ~loc:v (), Local p) ]
  | Op.Write ->
      [ (pat ~kind:Op.Read ~proc:p ~loc:v (), Local p);
        (pat ~kind:Op.Write ~proc:p ~loc:v (), Program);
        (pat ~kind:Op.Acquire ~proc:p ~loc:v (), Program);
        (pat ~kind:Op.Fence ~proc:p (), Fence) ]
  | Op.Release ->
      [ (pat ~kind:Op.Read ~proc:p ~loc:v (), Local p);
        (pat ~kind:Op.Write ~proc:p ~loc:v (), Program);
        (pat ~kind:Op.Acquire ~proc:p ~loc:v (), Program);
        (pat ~kind:Op.Fence ~proc:p (), Fence) ]
  | Op.Acquire ->
      [ (pat ~kind:Op.Read ~proc:p ~loc:v (), Local p);
        (* dagger note: an acquire is ≺S-after releases of v by *any*
           process, not just its own *)
        (pat ~kind:Op.Release ~loc:v (), Sync);
        (pat ~kind:Op.Fence ~proc:p (), Fence) ]
  | Op.Fence ->
      [ (pat ~kind:Op.Read ~proc:p (), Local p);
        (pat ~kind:Op.Write ~proc:p (), Local p);
        (pat ~kind:Op.Acquire ~proc:p (), Fence);
        (pat ~kind:Op.Release ~proc:p (), Fence) ]
  | Op.Init -> []

(* Index maintenance: a non-[Init] operation is filed under every base
   kind it acts as, so bucket lookups see exactly what [Op.matches] would
   accept.  [Init] is left out (see the field comment) and consulted
   explicitly during candidate collection. *)
let index_add exec (o : Op.t) =
  if o.Op.kind <> Op.Init then begin
    let file k =
      let push tbl key =
        Hashtbl.replace tbl key
          (o.Op.id :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
      in
      push exec.by_kpl (k, o.Op.proc, o.Op.loc);
      push exec.by_kl (k, o.Op.loc);
      push exec.by_kp (k, o.Op.proc)
    in
    file o.Op.kind
  end

(* Previously issued operations matching [pattern], ids ascending.
   Equivalent to filtering all ops with [Op.matches] — the Table-I rules
   only use the three indexed pattern shapes (never a value constraint),
   and the per-location [Init] operation (id = its location, process
   matching every constraint) is appended by hand where its write/release
   roles apply. *)
let candidate_ids exec (pat : Op.pattern) : int list =
  let find tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  match pat.Op.p_kind, pat.Op.p_value with
  | Some k, None ->
      let real =
        match pat.Op.p_proc, pat.Op.p_loc with
        | Some p, Some v -> find exec.by_kpl (k, p, v)
        | None, Some v -> find exec.by_kl (k, v)
        | Some p, None -> find exec.by_kp (k, p)
        | None, None ->
            List.concat_map
              (fun p -> find exec.by_kp (k, p))
              (List.init exec.procs Fun.id)
      in
      let inits =
        if k = Op.Write || k = Op.Release then
          match pat.Op.p_loc with
          | Some v -> [ v ]
          | None -> List.init exec.locs Fun.id
        else []
      in
      List.sort compare (List.rev_append real inits)
  | _ ->
      (* value-constrained or kind-free pattern: not produced by the
         Table-I rules; fall back to the full scan *)
      let acc = ref [] in
      for i = exec.n_ops - 1 downto 0 do
        if Op.matches pat exec.ops.(i) then acc := i :: !acc
      done;
      !acc

(* State transition (Def. 4): append [o] and add the Table-I edges from all
   matching previously issued operations. *)
let execute exec (kind : Op.kind) ~proc ?(loc = Op.no_loc) ?(value = 0) () :
    Op.t =
  if proc < 0 || proc >= exec.procs then
    invalid_arg "Execution.execute: bad process";
  (match kind with
  | Op.Fence -> ()
  | Op.Init -> invalid_arg "Execution.execute: cannot issue Init"
  | _ ->
      if loc < 0 || loc >= exec.locs then
        invalid_arg "Execution.execute: bad location");
  let o = add_op_raw exec kind ~proc ~loc ~value in
  let rules = rules_for exec o in
  (* a scoped fence only orders operations on its locations *)
  let scope_allows (a : Op.t) =
    (not (Op.is_fence a))
    ||
    match Hashtbl.find_opt exec.fence_scopes a.id with
    | None -> true
    | Some locs -> List.mem o.loc locs
  in
  (* Collect (src, rule) pairs per rule from the indexes, then add edges
     in (src id, rule order) order — the same order the original
     scan-all-ops loop produced, so succ/pred lists are identical. *)
  let pairs = ref [] in
  List.iteri
    (fun ri (pattern, kind) ->
      List.iter
        (fun i ->
          let a = exec.ops.(i) in
          if scope_allows a then pairs := (i, ri, kind) :: !pairs)
        (candidate_ids exec pattern))
    rules;
  List.iter
    (fun (i, _, kind) -> add_edge exec ~src:i ~kind ~dst:o.id)
    (List.sort
       (fun (i1, r1, _) (i2, r2, _) -> compare (i1, r1) (i2, r2))
       !pairs);
  index_add exec o;
  o

(* Convenience wrappers used pervasively by tests and the history checker. *)
let read exec ~proc ~loc ~value = execute exec Op.Read ~proc ~loc ~value ()
let write exec ~proc ~loc ~value = execute exec Op.Write ~proc ~loc ~value ()
let acquire exec ~proc ~loc = execute exec Op.Acquire ~proc ~loc ()
let release exec ~proc ~loc = execute exec Op.Release ~proc ~loc ()
let fence exec ~proc = execute exec Op.Fence ~proc ()

(* Location-scoped fence — the extension Section IV-D leaves open
   ("without loss of generality, one could offer more complex fences on
   specific locations for optimization purposes").  The fence enters the
   graph through the normal Table-I rules, but it only orders operations
   on the locations in [locs]: incoming edges from out-of-scope
   operations are filtered here, outgoing edges to out-of-scope
   operations are filtered by [execute] through [fence_scopes].  A scoped
   fence over all locations is exactly the plain fence. *)
let fence_scoped exec ~proc ~locs : Op.t =
  List.iter
    (fun v ->
      if v < 0 || v >= exec.locs then
        invalid_arg "Execution.fence_scoped: bad location")
    locs;
  let o = execute exec Op.Fence ~proc () in
  Hashtbl.replace exec.fence_scopes o.id locs;
  (* drop the in-edges that came from out-of-scope operations *)
  let keep (_, src) =
    let a = exec.ops.(src) in
    Op.is_fence a || List.mem a.Op.loc locs
  in
  let removed = List.filter (fun e -> not (keep e)) exec.preds.(o.id) in
  exec.preds.(o.id) <- List.filter keep exec.preds.(o.id);
  List.iter
    (fun (_, src) ->
      exec.succs.(src) <-
        List.filter (fun (_, dst) -> dst <> o.id) exec.succs.(src))
    removed;
  o

let fence_scope exec (o : Op.t) = Hashtbl.find_opt exec.fence_scopes o.id

let pp ppf exec =
  Fmt.pf ppf "execution: %d procs, %d locs, %d ops@." exec.procs exec.locs
    exec.n_ops;
  iter_ops exec (fun o -> Fmt.pf ppf "  %a@." Op.pp o);
  List.iter
    (fun { src; kind; dst } ->
      Fmt.pf ppf "  %a %s %a@." Op.pp exec.ops.(src)
        (edge_kind_to_string kind)
        Op.pp exec.ops.(dst))
    (edges exec)
