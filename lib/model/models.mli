(** Operational semantics of the memory models compared in Section IV-E,
    as labelled transition systems over litmus-program states.

    - {!Sc}: Sequential Consistency — one memory, atomic steps.
    - {!Pc}: Processor Consistency, realized as its best-known operational
      instance: TSO-style FIFO store buffers draining into one memory
      (per-writer order = GPO; single memory serializes each location =
      GDO).
    - {!Cc}: Cache Consistency — per-location write logs applied by each
      observer monotonically, at its own pace.
    - {!Slow}: Slow Consistency — per-process copies; updates propagate
      per (writer, location) in order, nothing else is guaranteed.
    - {!Ec}: Entry-Consistency-like — PMC's value-transferring locks and
      fences, with synchronization operations kept in program order.
    - {!Pmc}: the paper's model — Slow reads/writes, acquire/release
      transferring the protected value, fences inserting cross-location
      markers into the update streams, best-effort flush, lazy release
      for writes under the location's lock, {e and} acquire hoisting:
      unfenced acquires of other locations may execute early, the
      relaxation that makes PMC strictly weaker than EC (Sec. IV-E). *)

module type SEM = sig
  val name : string

  type state

  val init : Lprog.t -> state
  val successors : Lprog.t -> state -> state list
  val is_final : Lprog.t -> state -> bool
  val outcome : Lprog.t -> state -> Lprog.outcome
  val key : state -> string
  (** Injective serialization for memoized state-space exploration:
      equal keys if and only if structurally equal states.  Every
      semantics hand-packs its state — fixed-shape components as one
      byte per small int, variable-shape ones length-prefixed — which
      is roughly an order of magnitude cheaper than [Marshal] and
      stable across OCaml versions. *)
end

val clone2 : int array array -> int array array
(** Deep copy of a 2-D state component (shared by the semantics). *)

val marshal_key : 'a -> string
(** The previous implementation of {!module-type:SEM}'s [key]
    ([Marshal] the state),
    retained as the reference the packed-key equivalence properties
    enumerate against. *)

module Sc : SEM
module Pc : SEM
module Cc : SEM
module Ec : SEM
module Slow : SEM
module Pmc : SEM

val all : (module SEM) list
