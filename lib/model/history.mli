(** Validation of observed runs against the PMC model.

    A history is the operation sequence one run actually issued, with the
    value each read returned.  [check] replays it through the Table-I
    transition and reports everything the model forbids.  The simulator
    back-ends are validated by feeding their traces through this
    checker. *)

type event =
  | E_read of { proc : int; loc : int; value : int }
  | E_write of { proc : int; loc : int; value : int }
  | E_acquire of { proc : int; loc : int }
  | E_release of { proc : int; loc : int }
  | E_acquire_ro of { proc : int; loc : int }
      (** Read-only entry: gains the Table-I ≺S acquire edges but takes no
          lock — any number may be held concurrently. *)
  | E_release_ro of { proc : int; loc : int }
      (** Read-only exit: later acquires are ≺S-after it (writers wait for
          readers); no holder bookkeeping. *)
  | E_fence of { proc : int }

type violation =
  | Double_acquire of { loc : int; holder : int; proc : int }
  | Release_not_held of { loc : int; proc : int }
  | Unreadable_value of { op : Op.t; readable : int list }
  | Non_monotonic_reads of { first : Op.t; second : Op.t }
  | Cyclic_order
  | Write_outside_lock of { op : Op.t }

val pp_violation : Format.formatter -> violation -> unit

type report = { violations : violation list }
(** What {!check} found, in event order. *)

val ok : report -> bool

val check :
  ?require_locked_writes:bool -> ?init:(int -> int) -> procs:int ->
  locs:int -> event list -> report
(** Replay [events] (in observed issue order) and verify: lock
    well-formedness and mutual exclusion, every read value readable at its
    issue point (Def. 12), read monotonicity, and acyclicity of ≺.  With
    [require_locked_writes], also the discipline that every write happens
    under the location's lock.  [init] gives each location's initial
    value (default 0); it behaves as a write ordered before every
    operation, so reads with no ordered-before write may return it.

    This is the incremental checker: it never materializes the execution
    DAG (whose Table-I edge sets grow quadratically with the history) and
    instead carries per-(process, location) write frontiers across
    events, so an n-event history replays in roughly O(n · procs² · locs)
    int operations.  It reports exactly the violations, in exactly the
    order, that {!check_reference} would. *)

type full_report = { exec : Execution.t; full_violations : violation list }
(** {!check_reference}'s result: the violations plus the execution DAG it
    built, for callers that want to run further {!Observe} queries. *)

val full_ok : full_report -> bool

val check_reference :
  ?require_locked_writes:bool -> ?init:(int -> int) -> procs:int ->
  locs:int -> event list -> full_report
(** The original checker — every event issued through
    [Execution.execute], every read answered by
    [Observe.readable_writes] — kept as the executable specification that
    the qcheck equivalence properties compare {!check} against.  Its cost
    grows superlinearly with the history; use {!check} for anything
    big. *)
