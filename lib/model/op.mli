(** Memory operations of the PMC model (Section IV-B of the paper).

    The model has five operations — read, write, acquire, release, fence —
    plus the initial operation of each location, which "behaves like a
    write and release" (Def. 3). *)

(** Operation kinds.  [Init] is the per-location initial operation. *)
type kind = Read | Write | Acquire | Release | Fence | Init

val env_proc : int
(** The pseudo-process issuing initial operations (the paper's ε,
    "equivalent to all processes"). *)

val no_loc : int
(** The location of a fence, which spans all locations. *)

type t = {
  id : int;     (** issue index; unique within an execution *)
  kind : kind;
  proc : int;
  loc : int;
  value : int;  (** written value for writes, returned value for reads *)
}

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit
(** E.g. [W p0 x=1 (#3)]. *)

val to_string : t -> string

val acts_as : t -> kind -> bool
(** [acts_as o k] — does [o] behave as the base kind [k]?  [Init] acts as
    both [Write] and [Release]. *)

(** Shorthand for {!acts_as} with each base kind ([Init] counts as both
    a write and a release). *)

val is_write : t -> bool
val is_release : t -> bool
val is_read : t -> bool
val is_acquire : t -> bool
val is_fence : t -> bool

(** Patterns (Def. 2): [(operation, p, v, value)] subsets of the issued
    operations, where an omitted component is the paper's '∗'. *)
type pattern = {
  p_kind : kind option;
  p_proc : int option;
  p_loc : int option;
  p_value : int option;
}

val pattern :
  ?kind:kind -> ?proc:int -> ?loc:int -> ?value:int -> unit -> pattern

val matches : pattern -> t -> bool
(** [matches pat o] — does [o] belong to the subset [pat] describes?  The
    [env_proc] of initial operations matches any process pattern. *)
