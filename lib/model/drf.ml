(* Data-race-freedom analysis and the SC-simulation property.

   A program is data-race free when no sequentially consistent run contains
   two conflicting accesses (same location, at least one write, different
   processes) that are unordered in the PMC execution order ≺ built from
   that run.  For DRF programs the paper argues (via Processor Consistency
   [Ahamad et al. 93]) that PMC with proper annotations behaves like SC;
   [sc_equivalent] checks the observable version of that claim by comparing
   enumerated outcome sets. *)

type access = { proc : int; loc : int; is_write : bool; op_id : int }

type race = { loc : int; a : access; b : access }

let pp_race ppf r =
  Fmt.pf ppf "race on v%d: p%d %s / p%d %s" r.loc r.a.proc
    (if r.a.is_write then "write" else "read")
    r.b.proc
    (if r.b.is_write then "write" else "read")

(* Enumerate every SC trace of [p] (depth-first over interleavings) and
   detect races on each.  Returns the first race found, or None.  Traces
   are exponential in program size; litmus programs are small enough. *)
let find_race ?(limit = 200_000) (p : Lprog.t) : race option =
  let n = Lprog.n_threads p in
  let traces_seen = ref 0 in
  let exception Found of race in
  let exception Limit in
  (* SC machine state threaded through the search *)
  let rec go pc regs mem locks (events : History.event list) =
    let stepped = ref false in
    for t = 0 to n - 1 do
      let th = p.Lprog.threads.(t) in
      if pc.(t) < Array.length th then begin
        let adv = Array.copy pc in
        adv.(t) <- adv.(t) + 1;
        match th.(pc.(t)) with
        | Lprog.Ld { loc; reg } ->
            stepped := true;
            let regs' = Models.clone2 regs in
            regs'.(t).(reg) <- mem.(loc);
            go adv regs' mem locks
              (History.E_read { proc = t; loc; value = mem.(loc) } :: events)
        | Lprog.St { loc; v } ->
            stepped := true;
            let mem' = Array.copy mem in
            mem'.(loc) <- Lprog.eval regs.(t) v;
            go adv regs mem' locks
              (History.E_write { proc = t; loc; value = mem'.(loc) }
              :: events)
        | Lprog.Wait_eq { loc; v } ->
            if mem.(loc) = v then begin
              stepped := true;
              go adv regs mem locks
                (History.E_read { proc = t; loc; value = v } :: events)
            end
        | Lprog.Acq l ->
            if locks.(l) = -1 then begin
              stepped := true;
              let locks' = Array.copy locks in
              locks'.(l) <- t;
              go adv regs mem locks'
                (History.E_acquire { proc = t; loc = l } :: events)
            end
        | Lprog.Rel l ->
            if locks.(l) = t then begin
              stepped := true;
              let locks' = Array.copy locks in
              locks'.(l) <- -1;
              go adv regs mem locks'
                (History.E_release { proc = t; loc = l } :: events)
            end
        | Lprog.Fence ->
            stepped := true;
            go adv regs mem locks (History.E_fence { proc = t } :: events)
        | Lprog.Flush _ ->
            stepped := true;
            go adv regs mem locks events
      end
    done;
    if not !stepped then begin
      incr traces_seen;
      if !traces_seen > limit then raise Limit;
      check_trace (List.rev events)
    end
  and check_trace events =
    let exec = Execution.create ~procs:n ~locs:p.Lprog.locs () in
    let accesses = ref [] in
    List.iter
      (fun ev ->
        match ev with
        | History.E_read { proc; loc; value } ->
            let o = Execution.read exec ~proc ~loc ~value in
            accesses :=
              { proc; loc; is_write = false; op_id = o.Op.id } :: !accesses
        | History.E_write { proc; loc; value } ->
            let o = Execution.write exec ~proc ~loc ~value in
            accesses :=
              { proc; loc; is_write = true; op_id = o.Op.id } :: !accesses
        | History.E_acquire { proc; loc } | History.E_acquire_ro { proc; loc }
          ->
            ignore (Execution.acquire exec ~proc ~loc)
        | History.E_release { proc; loc } | History.E_release_ro { proc; loc }
          ->
            ignore (Execution.release exec ~proc ~loc)
        | History.E_fence { proc } -> ignore (Execution.fence exec ~proc))
      events;
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              if
                a.proc <> b.proc && a.loc = b.loc
                && (a.is_write || b.is_write)
                && Order.concurrent Order.Full exec a.op_id b.op_id
              then raise (Found { loc = a.loc; a; b }))
            rest;
          pairs rest
    in
    pairs !accesses
  in
  try
    go
      (Array.make n 0)
      (Array.make_matrix n p.Lprog.regs 0)
      (Array.make p.Lprog.locs 0)
      (Array.make p.Lprog.locs (-1))
      [];
    None
  with
  | Found r -> Some r
  | Limit -> None

let is_drf ?limit p = find_race ?limit p = None

(* Observable SC-simulation: the outcome set under the PMC semantics equals
   the outcome set under SC.  The paper's Section IV-E claims this for
   data-race-free programs. *)
let sc_equivalent ?limit (p : Lprog.t) : bool =
  let sc = Litmus.enumerate ?limit (module Models.Sc) p in
  let pmc = Litmus.enumerate ?limit (module Models.Pmc) p in
  Lprog.Outcome_set.equal sc.Litmus.outcomes pmc.Litmus.outcomes
