(** Queries over the ordering relations of an execution (Defs. 5-10). *)

(** Which edges are visible: [Global] is ≺G = ≺P ∪ ≺S ∪ ≺F (Def. 9) —
    what every process agrees on; [View p] is p≺ = ≺G ∪ p≺ℓ; [Full] is
    ≺ including every process's local edges (Def. 10). *)
type relation = Global | View of int | Full

val edge_visible : relation -> Execution.edge_kind -> bool
(** Does the relation include edges of this kind? *)

val reaches : relation -> Execution.t -> int -> int -> bool
(** [reaches rel exec a b] — is there a path from operation [a] to [b]
    using only edges visible under [rel]?  Irreflexive. *)

val before : relation -> Execution.t -> int -> int -> bool
(** Alias of {!reaches}. *)

val ancestors : relation -> Execution.t -> int -> bool array
(** [ancestors rel exec b] — every operation id [a] with
    [reaches rel exec a b], computed in one backward traversal.  Edges
    always point from lower to higher ids and all edges into an operation
    are created when it is issued, so the result for a given [b] never
    changes as the execution grows. *)

val descendants : relation -> Execution.t -> int -> bool array
(** [descendants rel exec a] — every id [b] with [reaches rel exec a b],
    in one forward traversal.  Unlike {!ancestors} this set can grow as
    later operations are issued. *)

(** Bytes-backed bitsets, unioned a 64-bit word at a time.  One bit per
    operation id; the closure rows below and the bulk reachability passes
    in {!Observe} are built out of these. *)
module Bits : sig
  type t

  val create : int -> t
  (** [create n] — an all-clear set over bits [0..n-1]. *)

  val length : t -> int
  (** The bit capacity given to {!create}. *)

  val get : t -> int -> bool
  (** Is the bit set?  The index must be below {!length}. *)

  val set : t -> int -> unit
  (** Set one bit. *)

  val union_into : into:t -> t -> unit
  (** [union_into ~into src] — OR [src] into [into], word at a time, over
      the shorter of the two capacities. *)

  val iter : (int -> unit) -> t -> unit
  (** Apply to every set bit, ascending. *)
end

type closure
(** The full reachability closure of an execution under one relation: a
    bitset ancestor row per operation.  Ids are issue-ordered and every
    edge points from a lower id to a higher one, so row [i] is the union
    of its predecessors' rows plus the predecessors themselves — the
    whole closure is built in one pass of word-at-a-time unions, and
    answers every precedence query about the execution in O(1). *)

val closure : relation -> Execution.t -> closure
(** Build the closure.  O(n²/64) words plus one union per edge. *)

val closure_relation : closure -> relation
(** The relation the closure was built under. *)

val precedes : closure -> int -> int -> bool
(** [precedes c a b] — does operation [a] strictly precede [b] under the
    closure's relation?  O(1). *)

val ancestors_row : closure -> int -> Bits.t
(** The ancestor bitset of one operation (bit [a] set iff [a] precedes
    it).  The row's {!Bits.length} may be smaller than the execution —
    only ids below the operation's own can ever be ancestors. *)

val concurrent : relation -> Execution.t -> int -> int -> bool
(** Neither reaches the other. *)

val is_acyclic : Execution.t -> bool
(** ≺ must remain a partial order. *)

val topological : Execution.t -> int list
(** Issue order is a topological order of the DAG (asserted). *)

val transitive_reduction : relation -> Execution.t -> Execution.edge list
(** The minimal edge set with the same reachability — the paper's figures
    are drawn transitively reduced.  Parallel edges between one pair are
    collapsed. *)

val writes_of : Execution.t -> int -> Op.t list
(** All writes (including [Init]) to one location, in issue order. *)

val gdo_total : Execution.t -> int -> bool
(** Global Data Order (Sec. IV-E): are all writes to the location totally
    ordered under ≺G?  Holds when writes are wrapped in acquire/release. *)

val gpo_pairs : Execution.t -> int -> (int * int) list
(** Global Process Order pairs of one process: cross-location operation
    pairs ordered under ≺G — produced by fences. *)
