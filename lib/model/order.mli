(** Queries over the ordering relations of an execution (Defs. 5-10). *)

(** Which edges are visible: [Global] is ≺G = ≺P ∪ ≺S ∪ ≺F (Def. 9) —
    what every process agrees on; [View p] is p≺ = ≺G ∪ p≺ℓ; [Full] is
    ≺ including every process's local edges (Def. 10). *)
type relation = Global | View of int | Full

val edge_visible : relation -> Execution.edge_kind -> bool
(** Does the relation include edges of this kind? *)

val reaches : relation -> Execution.t -> int -> int -> bool
(** [reaches rel exec a b] — is there a path from operation [a] to [b]
    using only edges visible under [rel]?  Irreflexive. *)

val before : relation -> Execution.t -> int -> int -> bool
(** Alias of {!reaches}. *)

val ancestors : relation -> Execution.t -> int -> bool array
(** [ancestors rel exec b] — every operation id [a] with
    [reaches rel exec a b], computed in one backward traversal.  Edges
    always point from lower to higher ids and all edges into an operation
    are created when it is issued, so the result for a given [b] never
    changes as the execution grows. *)

val descendants : relation -> Execution.t -> int -> bool array
(** [descendants rel exec a] — every id [b] with [reaches rel exec a b],
    in one forward traversal.  Unlike {!ancestors} this set can grow as
    later operations are issued. *)

val concurrent : relation -> Execution.t -> int -> int -> bool
(** Neither reaches the other. *)

val is_acyclic : Execution.t -> bool
(** ≺ must remain a partial order. *)

val topological : Execution.t -> int list
(** Issue order is a topological order of the DAG (asserted). *)

val transitive_reduction : relation -> Execution.t -> Execution.edge list
(** The minimal edge set with the same reachability — the paper's figures
    are drawn transitively reduced.  Parallel edges between one pair are
    collapsed. *)

val writes_of : Execution.t -> int -> Op.t list
(** All writes (including [Init]) to one location, in issue order. *)

val gdo_total : Execution.t -> int -> bool
(** Global Data Order (Sec. IV-E): are all writes to the location totally
    ordered under ≺G?  Holds when writes are wrapped in acquire/release. *)

val gpo_pairs : Execution.t -> int -> (int * int) list
(** Global Process Order pairs of one process: cross-location operation
    pairs ordered under ≺G — produced by fences. *)
