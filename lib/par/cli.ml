(* The one [--jobs N] flag shared by every CLI that fans out over a
   {!Pool}.  Before this module each binary hand-rolled the same
   cmdliner argument (and its "0 = recommended count" resolution note)
   with slightly drifting wording; now the flag, its documentation and
   its default live in one place next to the pool they configure. *)

open Cmdliner

let term ?(default = 1) ~action () =
  Arg.(
    value & opt int default
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          (Printf.sprintf
             "%s on $(docv) domains.  1 (the default) is the exact \
              sequential behaviour; 0 uses the recommended domain \
              count.  Output is identical at any width."
             action))
