(** The shared [--jobs]/[-j] cmdliner flag of the parallel CLIs. *)

val term : ?default:int -> action:string -> unit -> int Cmdliner.Term.t
(** [term ~action ()] is the [--jobs N] option (default 1) with the
    standard documentation: ["<action> on N domains.  1 (the default)
    is the exact sequential behaviour; 0 uses the recommended domain
    count.  Output is identical at any width."].  The [0 = recommended]
    resolution itself lives in {!Pool.create}. *)
