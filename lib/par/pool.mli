(** Dependency-free domain pool for deterministic parallel fan-out.

    The pool parallelizes "map an independent function over an array"
    while preserving the observable behaviour of the sequential map:
    results come back ordered by input index, and a failure re-raises
    the smallest-index exception (the one a left-to-right sequential map
    would have surfaced first).

    A pool of width 1 spawns no domains and runs every map inline — it
    {e is} the sequential map.  This is what backs the [--jobs N] flags
    of [pmc_bench], [pmc_chaos], [litmus_run] and [pmc_check]: the
    default [--jobs 1] is bit-for-bit today's behaviour, and [--jobs N]
    must only change wall-clock time, never output.

    Determinism contract for [f]: no mutable state shared between items.
    State that is per-machine (the simulator) or domain-local and reset
    per item ({!Pmc.Shared.reset_ids}) is fine. *)

type t

val create : jobs:int -> t
(** [create ~jobs] starts a pool of total width [jobs]: the calling
    domain plus [jobs - 1] worker domains.  [jobs = 1] starts no worker
    domains; [jobs = 0] uses [Domain.recommended_domain_count ()].
    Raises [Invalid_argument] on negative [jobs]. *)

val jobs : t -> int
(** Effective pool width (>= 1). *)

val map_ordered : t -> 'a array -> f:('a -> 'b) -> 'b array
(** [map_ordered t a ~f] computes [Array.map f a], distributing items
    over the pool.  Results are ordered by input index regardless of
    completion order.  If one or more applications of [f] raise, the
    whole batch still drains and the exception of the {e smallest}
    failing input index is re-raised with its original backtrace.

    Nested calls (an [f] that maps on the same pool) run inline rather
    than deadlock.  Must be called from the domain that owns the pool,
    one batch at a time. *)

val map_list_ordered : t -> 'a list -> f:('a -> 'b) -> 'b list
(** List convenience wrapper around {!map_ordered}. *)

(** {1 Persistent task queue}

    Batch maps fit the CLIs; a long-lived service ({!Pmc_serve}) accepts
    work over time instead.  [submit] enqueues one independent task;
    worker domains drain the queue whenever no batch map is claiming
    them.  Tasks must not raise (wrap them) and must follow the same
    determinism contract as [map_ordered]'s [f]. *)

val submit : t -> (unit -> unit) -> unit
(** [submit t task] enqueues [task].  On a pool of width >= 2 a worker
    domain picks it up; on a width-1 pool nothing runs it until the
    owner calls {!run_pending_one} — there are no worker domains.
    Thread-safe.  Raises [Invalid_argument] after {!shutdown}. *)

val pending_tasks : t -> int
(** Queued-but-unclaimed plus currently running submitted tasks. *)

val run_pending_one : t -> bool
(** Run one queued task on the calling domain, inline; [false] when the
    queue is empty.  The width-1 execution path of a task-queue user. *)

val drain_tasks : t -> unit
(** Help run queued tasks on the calling domain, then block until every
    submitted task has completed. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  A pool is unusable
    after shutdown.  Submitted tasks that have not started are dropped
    (drain with {!drain_tasks} first if they matter). *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, including on exception. *)
