(* A small domain pool for embarrassingly parallel fan-out.

   The repo's heavy loops — bench cases, chaos soak seeds, litmus
   enumerations, batched discipline checks — are per-item independent and
   deterministic, so the only parallel machinery they need is "map an
   array, keep the order, keep the exceptions".  This pool provides
   exactly that on raw [Domain]/[Mutex]/[Condition], no dependencies:

   - [create ~jobs] starts [jobs - 1] worker domains (jobs = 1 starts
     none; jobs = 0 asks the runtime for a sensible width);
   - [map_ordered] hands out item indices from a shared counter under the
     pool mutex, workers and the calling domain both draw from it, and
     every result is stored at its input index — the output array is
     byte-for-byte the sequential map's output, whatever the schedule;
   - an exception inside [f] is caught, the batch still drains, and the
     failure with the *smallest input index* is re-raised with its
     original backtrace — the same exception a sequential left-to-right
     map would have surfaced first.

   Determinism contract: [f] must not depend on mutable state shared
   between items.  Domain-local state (see [Pmc.Shared.reset_ids]) is
   fine as long as [f] re-initializes it per item; this is what makes
   [--jobs N] output identical to [--jobs 1] across the CLIs. *)

type batch = {
  total : int;
  mutable next : int;       (* next unclaimed item index *)
  mutable completed : int;
  run_item : int -> unit;   (* runs item [i]; must not raise *)
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;   (* signalled when a batch gains claimable items *)
  done_ : Condition.t;  (* signalled when a batch completes *)
  mutable batch : batch option;
  tasks : (unit -> unit) Queue.t;
      (* persistent task queue ([submit]); batches take priority *)
  mutable running_tasks : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let effective_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be >= 0"
  else if jobs = 0 then max 1 (Domain.recommended_domain_count ())
  else jobs

(* Claim the next item of the current batch, a queued task, or decide to
   wait/stop.  Called with [t.m] held; returns with [t.m] released. *)
let rec worker_step t =
  if t.stop then begin
    Mutex.unlock t.m;
    `Stop
  end
  else
    match t.batch with
    | Some b when b.next < b.total ->
        let i = b.next in
        b.next <- b.next + 1;
        Mutex.unlock t.m;
        `Run (b, i)
    | _ when not (Queue.is_empty t.tasks) ->
        let task = Queue.pop t.tasks in
        t.running_tasks <- t.running_tasks + 1;
        Mutex.unlock t.m;
        `Task task
    | _ ->
        Condition.wait t.work t.m;
        worker_step t

let finish_item t b =
  Mutex.lock t.m;
  b.completed <- b.completed + 1;
  if b.completed = b.total then Condition.broadcast t.done_;
  Mutex.unlock t.m

let finish_task t =
  Mutex.lock t.m;
  t.running_tasks <- t.running_tasks - 1;
  if t.running_tasks = 0 && Queue.is_empty t.tasks then
    Condition.broadcast t.done_;
  Mutex.unlock t.m

let rec worker_loop t =
  Mutex.lock t.m;
  match worker_step t with
  | `Stop -> ()
  | `Run (b, i) ->
      b.run_item i;
      finish_item t b;
      worker_loop t
  | `Task task ->
      task ();
      finish_task t;
      worker_loop t

let create ~jobs =
  let jobs = effective_jobs jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      batch = None;
      tasks = Queue.create ();
      running_tasks = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.m;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
  else Mutex.unlock t.m

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_ordered (type a b) (t : t) (input : a array) ~(f : a -> b) : b array =
  let n = Array.length input in
  let inline () = Array.map f input in
  if t.jobs = 1 || n <= 1 then inline ()
  else begin
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.map_ordered: pool is shut down"
    end;
    match t.batch with
    | Some _ ->
        (* Nested call (f itself mapped on this pool): run it inline
           rather than deadlock waiting for workers that are busy
           running f. *)
        Mutex.unlock t.m;
        inline ()
    | None ->
      let results : b option array = Array.make n None in
      (* first failure by input index — the one sequential order surfaces *)
      let failed : (int * exn * Printexc.raw_backtrace) option ref =
        ref None
      in
      let run_item i =
        match f input.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.m;
            (match !failed with
            | Some (j, _, _) when j < i -> ()
            | _ -> failed := Some (i, e, bt));
            Mutex.unlock t.m
      in
      let b = { total = n; next = 0; completed = 0; run_item } in
      t.batch <- Some b;
      Condition.broadcast t.work;
      (* the calling domain draws from the same counter as the workers *)
      let rec drain () =
        if b.next < b.total then begin
          let i = b.next in
          b.next <- b.next + 1;
          Mutex.unlock t.m;
          b.run_item i;
          finish_item t b;
          Mutex.lock t.m;
          drain ()
        end
      in
      drain ();
      while b.completed < b.total do
        Condition.wait t.done_ t.m
      done;
      t.batch <- None;
      Mutex.unlock t.m;
      (match !failed with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> Array.map Option.get results)
  end

let map_list_ordered t l ~f =
  Array.to_list (map_ordered t (Array.of_list l) ~f)

(* ---------------- persistent task queue ----------------

   Batch maps are the right shape for the CLIs (a known work list, one
   synchronous fan-out), but a daemon accepts work over time.  [submit]
   enqueues one task; worker domains drain the queue whenever no batch
   is claiming them.  On a width-1 pool there are no worker domains, so
   the owner must run queued tasks itself via [run_pending_one] — this
   is what lets [pmc_serve --jobs 1] stay a strictly sequential,
   deterministic event loop. *)

let submit t task =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.tasks;
  Condition.broadcast t.work;
  Mutex.unlock t.m

let pending_tasks t =
  Mutex.lock t.m;
  let n = Queue.length t.tasks + t.running_tasks in
  Mutex.unlock t.m;
  n

let run_pending_one t =
  Mutex.lock t.m;
  if Queue.is_empty t.tasks then begin
    Mutex.unlock t.m;
    false
  end
  else begin
    let task = Queue.pop t.tasks in
    t.running_tasks <- t.running_tasks + 1;
    Mutex.unlock t.m;
    task ();
    finish_task t;
    true
  end

let drain_tasks t =
  if t.jobs = 1 then while run_pending_one t do () done
  else begin
    (* run alongside the workers, then wait for stragglers *)
    while run_pending_one t do () done;
    Mutex.lock t.m;
    while t.running_tasks > 0 || not (Queue.is_empty t.tasks) do
      Condition.wait t.done_ t.m
    done;
    Mutex.unlock t.m
  end
