(* Back-end selection: the "compiler setting" that re-targets an annotated
   application to a different memory architecture. *)

type kind =
  | Seqcst  (* idealized sequentially consistent memory *)
  | Nocc    (* shared data uncached (the Fig. 8 baseline) *)
  | Swcc    (* software cache coherency (Table II, column 1) *)
  | Dsm     (* distributed shared memory over the write-only NoC (col 2) *)
  | Spm     (* scratch-pad staging (column 3) *)
  | Farmem  (* crash-consistent far-memory tier (redo-logged commits) *)

let all = [ Seqcst; Nocc; Swcc; Dsm; Spm; Farmem ]

let to_string = function
  | Seqcst -> "seqcst"
  | Nocc -> "nocc"
  | Swcc -> "swcc"
  | Dsm -> "dsm"
  | Spm -> "spm"
  | Farmem -> "farmem"

let of_string = function
  | "seqcst" -> Some Seqcst
  | "nocc" -> Some Nocc
  | "swcc" -> Some Swcc
  | "dsm" -> Some Dsm
  | "spm" -> Some Spm
  | "farmem" -> Some Farmem
  | _ -> None

let make_backend kind (m : Pmc_sim.Machine.t) : Backend_sig.backend =
  match kind with
  | Seqcst -> Backend_sig.B ((module Seqcst), Seqcst.create m)
  | Nocc -> Backend_sig.B ((module Nocc), Nocc.create m)
  | Swcc -> Backend_sig.B ((module Swcc), Swcc.create m)
  | Dsm -> Backend_sig.B ((module Dsm), Dsm.create m)
  | Spm -> Backend_sig.B ((module Spm), Spm.create m)
  | Farmem -> Backend_sig.B ((module Farmem), Farmem.create m)

let create ?check kind m : Api.t = Api.create ?check (make_backend kind m)
