(* Multiple-reader, multiple-writer FIFO — the direct OCaml port of the
   C++ outline in Fig. 9 of the paper, including its essential orderings:

     push:  entry_x(write_ptr); wait until every reader consumed the slot;
            fence (≺F);  entry_x(buf[wp]); write; exit_x (≺P);
            fence (≺F);  write_ptr++; flush(write_ptr); exit_x (≺S)

     pop:   read own read_ptr (entry_ro);  wait for write_ptr > rp;
            fence;  entry_x(buf[rp]); read; exit_x;
            fence;  read_ptr++; flush(read_ptr)

   Every reader observes every element, in order (the writer waits for
   *all* readers before reusing a slot — it is a broadcast FIFO).  The
   pointers are word-sized, so polling them through entry_ro never locks;
   on the DSM back-end the polls hit only the local replica, "which is
   fast and does not influence the execution of other processors".

   Unlike the paper's outline, pointer overflow is handled: pointers are
   absolute counts compared with [>], which is exact in OCaml's 63-bit
   ints for any simulation length. *)

type t = {
  api : Api.t;
  depth : int;                 (* N: number of slots *)
  elem_words : int;
  readers : int;               (* R *)
  write_ptr : Shared.t;        (* one word: total elements pushed *)
  read_ptr : Shared.t array;   (* per reader: total elements popped *)
  buf : Shared.t array;        (* depth slots *)
}

let create api ~name ~depth ~elem_words ~readers : t =
  if depth <= 0 || readers <= 0 || elem_words <= 0 then
    invalid_arg "Fifo.create";
  {
    api;
    depth;
    elem_words;
    readers;
    write_ptr = Api.alloc_words api ~name:(name ^ ".wp") ~words:1;
    read_ptr =
      Array.init readers (fun r ->
          Api.alloc_words api ~name:(Printf.sprintf "%s.rp%d" name r) ~words:1);
    buf =
      Array.init depth (fun i ->
          Api.alloc_words api
            ~name:(Printf.sprintf "%s.buf%d" name i)
            ~words:elem_words);
  }

let push (t : t) (data : int32 array) =
  if Array.length data <> t.elem_words then invalid_arg "Fifo.push: size";
  let api = t.api in
  Api.entry_x api t.write_ptr;
  let wp = Api.get_int api t.write_ptr 0 in
  (* wait until all readers got buf[wp mod depth] *)
  for r = 0 to t.readers - 1 do
    let need = wp - t.depth + 1 in
    if need > 0 then
      ignore (Api.poll_until_int api t.read_ptr.(r) 0 (fun v -> v >= need))
  done;
  Api.fence api;
  let slot = t.buf.(wp mod t.depth) in
  Api.entry_x api slot;
  Array.iteri (fun i v -> Api.set api slot i v) data;
  Api.exit_x api slot;
  Api.fence api;
  Api.set_int api t.write_ptr 0 (wp + 1);
  Api.flush api t.write_ptr;
  Api.exit_x api t.write_ptr

let pop (t : t) ~reader : int32 array =
  if reader < 0 || reader >= t.readers then invalid_arg "Fifo.pop: reader";
  let api = t.api in
  let rp =
    Api.with_ro api t.read_ptr.(reader) (fun () ->
        Api.get_int api t.read_ptr.(reader) 0)
  in
  (* wait until data is written *)
  ignore (Api.poll_until_int api t.write_ptr 0 (fun v -> v > rp));
  Api.fence api;
  let slot = t.buf.(rp mod t.depth) in
  let data =
    Api.with_x api slot (fun () ->
        Array.init t.elem_words (fun i -> Api.get api slot i))
  in
  Api.fence api;
  Api.entry_x api t.read_ptr.(reader);
  Api.set_int api t.read_ptr.(reader) 0 (rp + 1);
  Api.flush api t.read_ptr.(reader);
  Api.exit_x api t.read_ptr.(reader);
  data
