(** Multiple-reader, multiple-writer FIFO — the OCaml port of Fig. 9,
    including its essential orderings (the fences and flushes of the
    figure).

    It is a broadcast FIFO: the writer waits until {e every} reader has
    taken a slot before reusing it, so each reader observes each element
    exactly once, in order.  Pointers are word-sized, so polling them
    through entry_ro never locks; on the DSM back-end polls hit only the
    local replica.  Unlike the paper's outline, pointer overflow is
    handled (absolute 63-bit counts). *)

type t
(** A broadcast FIFO handle. *)

val create :
  Api.t -> name:string -> depth:int -> elem_words:int -> readers:int -> t
(** Allocate a FIFO of [depth] slots of [elem_words] words each,
    broadcast to [readers] readers; [name] prefixes the underlying
    shared objects' names. *)

val push : t -> int32 array -> unit
(** Blocks (spinning in simulated time) while the slot is still unread by
    some reader.  Multiple writers serialize on the write pointer's
    lock. *)

val pop : t -> reader:int -> int32 array
(** Blocks while the FIFO is empty for this reader. *)
