(** Handles for shared objects.

    The PMC annotations operate on whole shared objects of any size
    (Section V-A).  A handle carries identity, size, the lock that
    implements ≺S for the object, and the placement fields each back-end
    fills at allocation time. *)

type t = {
  id : int;
  name : string;
  size : int;                  (** bytes *)
  lock : Pmc_lock.Dlock.t;
  mutable sdram_addr : int;    (** SDRAM placement; -1 = none *)
  mutable dsm_off : int;       (** common local-memory offset; -1 = none *)
  mutable last_writer : int;   (** tile owning the newest version; -1 = none *)
  mutable version : int;
      (** Publication count of the object under DSM lazy release: bumped
          by an exit_x that wrote and by every flush
          (see {!Config.t.dsm_lazy_versions}). *)
  mutable seen : int array;
      (** Per-tile replica version ([-1] = unknown); [[||]] until
          {!dsm_track}. *)
  mutable seen_at : int array;
      (** Simulation time from which [seen.(tile)] holds — flush
          deliveries are posted writes that land later. *)
  mutable dirty_core : int;    (** tile with unpublished writes; -1 = clean *)
  mutable dirty_lo : int;      (** dirty byte range, inclusive start *)
  mutable dirty_hi : int;      (** dirty byte range, exclusive end *)
}

val atomic_threshold : unit -> int
(** Objects of at most this many bytes are atomic for entry_ro (no
    locking).  4 = the platform word (default); 1 = the paper's
    conservative byte rule; 0 = always lock.  Domain-local: a setting
    applies only to runs in the calling domain.  See DESIGN.md and the
    [ablate] bench. *)

val set_atomic_threshold : int -> unit
(** Set the calling domain's {!atomic_threshold}. *)

val is_atomic_sized : t -> bool
(** Whether entry_ro of this object may skip locking (its size is at
    most {!atomic_threshold}). *)

val words : t -> int
(** Object size in 32-bit words (rounded up). *)

val make : name:string -> size:int -> lock:Pmc_lock.Dlock.t -> t
(** Create a handle with a fresh domain-local id; placement fields start
    unset (back-ends fill them at allocation). *)

val reset_ids : unit -> unit
(** Restart handle-id allocation at 0 in the calling domain.  Ids are
    domain-local; resetting at the start of every independent simulator
    run ({!Pmc_apps.Runner.run} does) makes each run's ids — and hence
    its trace — a pure function of the run, independent of what ran
    before it or concurrently with it. *)

val dsm_track : t -> cores:int -> unit
(** Adopt the object for DSM version tracking: every replica starts at
    version 0 (replicas are made equal before the simulation begins). *)

val clear_dirty : t -> unit
(** Forget the dirty range (after the owning back-end published it). *)

val mark_dirty : t -> core:int -> lo:int -> hi:int -> unit
(** Record that [core] modified bytes [[lo, hi)] of its replica.
    Concurrent dirtying by two cores — a data race under PMC — degrades
    tracking to a conservative whole-object range. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: id, name, size and placement. *)
