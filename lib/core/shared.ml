(* Handles for shared objects.

   The PMC annotations operate on whole shared objects of any size
   (Section V-A).  A handle carries the object's identity, its size, the
   lock that implements ≺S for it, and the placement fields each back-end
   fills in at allocation time.

   Objects of at most one machine word (4 bytes on the 32-bit platform)
   are "atomic-sized": reads and writes of them are indivisible, so
   entry_ro does not need to lock them.  The paper states the rule for one
   byte — the only size that is indivisible on every machine — but its own
   FIFO (Fig. 9) polls word-sized pointers without locking, which is sound
   exactly because the platform's bus transfers words atomically.  We
   follow the platform rule and document the substitution in DESIGN.md. *)

type t = {
  id : int;
  name : string;
  size : int;                       (* bytes *)
  lock : Pmc_lock.Dlock.t;
  mutable sdram_addr : int;         (* cached or uncached SDRAM; -1 = none *)
  mutable dsm_off : int;            (* common local-memory offset; -1 = none *)
  mutable last_writer : int;        (* tile owning the newest version; -1 = none *)
  (* DSM version tracking (TreadMarks-style lazy release, used when
     [Config.dsm_lazy_versions] is on): [version] counts publications of
     the object (exit_x after a write, flush); [seen.(tile)] is the
     version that tile's replica holds, valid from time [seen_at.(tile)]
     (flush deliveries are posted writes that land later); -1 = unknown.
     The arrays stay [||] until a DSM back-end adopts the object. *)
  mutable version : int;
  mutable seen : int array;
  mutable seen_at : int array;
  (* byte range [dirty_lo, dirty_hi) by which [dirty_core]'s replica
     differs from the version it last pulled; -1 = clean *)
  mutable dirty_core : int;
  mutable dirty_lo : int;
  mutable dirty_hi : int;
}

(* Objects of at most [atomic_threshold ()] bytes are treated as atomic
   for entry_ro (no locking).  4 = platform word (the default); 1 = the
   paper's conservative byte rule; 0 = lock on every read-only entry.
   Exposed as a knob for the ablation bench.

   The knob and the id counter are domain-local: each domain of a
   parallel fan-out ([Pmc_par.Pool]) gets an independent copy, so two
   concurrent simulator runs can never cross-contaminate each other's
   handle ids or locking rule. *)
let atomic_threshold_key = Domain.DLS.new_key (fun () -> 4)

let atomic_threshold () = Domain.DLS.get atomic_threshold_key
let set_atomic_threshold n = Domain.DLS.set atomic_threshold_key n

let is_atomic_sized o = o.size <= atomic_threshold ()

let words o = (o.size + 3) / 4

let next_id = Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get next_id := 0

let make ~name ~size ~lock =
  let next_id = Domain.DLS.get next_id in
  let id = !next_id in
  incr next_id;
  { id; name; size; lock; sdram_addr = -1; dsm_off = -1; last_writer = -1;
    version = 0; seen = [||]; seen_at = [||];
    dirty_core = -1; dirty_lo = 0; dirty_hi = 0 }

(* Adopt the object for DSM version tracking: all replicas start equal
   (version 0), established before the simulation begins. *)
let dsm_track o ~cores =
  o.seen <- Array.make cores 0;
  o.seen_at <- Array.make cores 0

let clear_dirty o =
  o.dirty_core <- -1;
  o.dirty_lo <- 0;
  o.dirty_hi <- 0

(* Record that [core] modified bytes [lo, hi) of its replica.  Two cores
   dirtying the same object concurrently is a data race under PMC; if it
   happens anyway, range tracking surrenders: the displaced core's
   replica version becomes unknown and the new range covers the whole
   object, so the next publication falls back to a full-object push. *)
let mark_dirty o ~core ~lo ~hi =
  if o.dirty_core = -1 then begin
    o.dirty_core <- core;
    o.dirty_lo <- lo;
    o.dirty_hi <- hi
  end
  else if o.dirty_core = core then begin
    o.dirty_lo <- min o.dirty_lo lo;
    o.dirty_hi <- max o.dirty_hi hi
  end
  else begin
    if Array.length o.seen > 0 then o.seen.(o.dirty_core) <- -1;
    o.dirty_core <- core;
    o.dirty_lo <- 0;
    o.dirty_hi <- o.size
  end

let pp ppf o = Fmt.pf ppf "%s#%d[%dB]" o.name o.id o.size
