(** Sense-reversing barrier built purely from the PMC annotations
    (exclusive arrival counter + the Fig. 6 publish pattern for the
    release), so it is portable across all back-ends.

    One caveat of the centralized design: each participating {e core}
    tracks its phase parity, so use one waiter per core. *)

type t
(** A barrier over [parties] cores. *)

val create : Api.t -> name:string -> parties:int -> t
(** Allocate the shared counter and release flag; [name] prefixes the
    underlying shared objects' names (tracing and error messages). *)

val wait : t -> unit
(** Arrive, and block (in simulated time) until all [parties] cores of
    the current phase have arrived. *)
