(* The PMC annotation API (Section V-A), independent of the memory
   architecture underneath.  Applications are written once against this
   module; the back-end chosen at [create] time re-targets them to
   software cache coherency, distributed shared memory, scratch-pads, or
   the reference architectures — "porting applications to hardware with
   another memory model becomes just a compiler setting".

   The API enforces the source-code discipline the paper requires:

     - every read or write of a shared object happens inside an entry/exit
       pair ("for symmetry reasons, all reads and writes should be
       wrapped");
     - writes require exclusive access (entry_x);
     - flush is "only allowed ... inside an entry_x()/exit_x() pair";
     - entries and exits pair up, per core and per object.

   Violations raise [Discipline_error] — this is the run-time equivalent
   of the static checking done by [Pmc_compile.Check].  [unsafe] API
   instances skip the checks; the broken-by-design demonstrations use
   them.

   An optional [trace] hook receives every annotation and access; the
   integration tests feed these traces to [Pmc_model.History] to verify
   that whatever a back-end's timing does, the observable behaviour stays
   explainable by the PMC model. *)

open Pmc_sim

exception Discipline_error of string

type mode = X | Ro

type event =
  | Ev_entry of mode * Shared.t
  | Ev_exit of mode * Shared.t
  | Ev_fence
  | Ev_flush of Shared.t
  | Ev_read of Shared.t * int * int32
  | Ev_write of Shared.t * int * int32
  | Ev_read8 of Shared.t * int * int
  | Ev_write8 of Shared.t * int * int
  | Ev_init of Shared.t * int * int32

type t = {
  backend : Backend_sig.backend;
  machine : Machine.t;
  check : bool;
  (* per core: innermost-last stack of (object id, mode) *)
  scopes : (int * mode) list array;
  mutable trace : (core:int -> event -> unit) option;
}

let create ?(check = true) (backend : Backend_sig.backend) : t =
  let (Backend_sig.B ((module B), b)) = backend in
  {
    backend;
    machine = B.machine b;
    check;
    scopes = Array.make (Machine.config (B.machine b)).Config.cores [];
    trace = None;
  }

let of_backend (type a) (module B : Backend_sig.S with type t = a) (b : a) =
  create (Backend_sig.B ((module B), b))

let machine t = t.machine
let backend_name t =
  let (Backend_sig.B ((module B), _)) = t.backend in
  B.name

let set_trace t f = t.trace <- f

let emit t ev =
  match t.trace with
  | None -> ()
  | Some f -> f ~core:(Machine.core_id t.machine) ev

let fail fmt = Fmt.kstr (fun s -> raise (Discipline_error s)) fmt

let scope_of t (o : Shared.t) =
  let core = Machine.core_id t.machine in
  List.assoc_opt o.Shared.id t.scopes.(core)

let push_scope t (o : Shared.t) mode =
  let core = Machine.core_id t.machine in
  t.scopes.(core) <- (o.Shared.id, mode) :: t.scopes.(core)

let pop_scope t (o : Shared.t) mode =
  let core = Machine.core_id t.machine in
  match t.scopes.(core) with
  | (id, m) :: rest when id = o.Shared.id && m = mode ->
      t.scopes.(core) <- rest
  | (id, _) :: _ ->
      fail "exit of %a while object #%d is the innermost scope (exits must nest)"
        Shared.pp o id
  | [] -> fail "exit of %a with no open scope" Shared.pp o

(* ---------------- allocation ---------------- *)

let alloc t ~name ~bytes : Shared.t =
  if bytes <= 0 then invalid_arg "Api.alloc: size must be positive";
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.alloc b ~name ~bytes

(* Allocate an array of [words] 32-bit words. *)
let alloc_words t ~name ~words = alloc t ~name ~bytes:(4 * words)

(* ---------------- annotations ---------------- *)

let entry_x t (o : Shared.t) =
  if t.check then begin
    match scope_of t o with
    | Some X -> fail "entry_x of %a: already held exclusively" Shared.pp o
    | Some Ro -> fail "entry_x of %a: cannot upgrade read-only access" Shared.pp o
    | None -> ()
  end;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.entry_x b o;
  push_scope t o X;
  if t.trace <> None then emit t (Ev_entry (X, o))

let exit_x t (o : Shared.t) =
  if t.check then pop_scope t o X
  else begin
    let core = Machine.core_id t.machine in
    t.scopes.(core) <-
      List.filter (fun (id, _) -> id <> o.Shared.id) t.scopes.(core)
  end;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.exit_x b o;
  if t.trace <> None then emit t (Ev_exit (X, o))

let entry_ro t (o : Shared.t) =
  if t.check then begin
    match scope_of t o with
    | Some _ -> fail "entry_ro of %a: already in scope" Shared.pp o
    | None -> ()
  end;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.entry_ro b o;
  push_scope t o Ro;
  if t.trace <> None then emit t (Ev_entry (Ro, o))

let exit_ro t (o : Shared.t) =
  if t.check then pop_scope t o Ro
  else begin
    let core = Machine.core_id t.machine in
    t.scopes.(core) <-
      List.filter (fun (id, _) -> id <> o.Shared.id) t.scopes.(core)
  end;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.exit_ro b o;
  if t.trace <> None then emit t (Ev_exit (Ro, o))

let fence t =
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.fence b;
  emit t Ev_fence

(* Location-scoped fence (the Sec. IV-D optimization): order this core's
   operations on the given objects only.  The in-order back-ends realize
   every fence as a compiler barrier, so the run-time effect equals a
   plain fence; the scoping information matters to analysis tools
   ([Pmc_model.Execution.fence_scoped]) and appears in the trace. *)
let fence_scoped t (objs : Shared.t list) =
  ignore objs;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.fence b;
  emit t Ev_fence

let flush t (o : Shared.t) =
  if t.check then begin
    match scope_of t o with
    | Some X -> ()
    | Some Ro ->
        fail "flush of %a inside read-only scope (needs entry_x)" Shared.pp o
    | None -> fail "flush of %a outside any scope" Shared.pp o
  end;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.flush b o;
  if t.trace <> None then emit t (Ev_flush o)

(* ---------------- accesses ---------------- *)

let check_word (o : Shared.t) word =
  if word < 0 || word >= Shared.words o then
    fail "word %d out of bounds for %a" word Shared.pp o

(* Sign-extend the unsigned 32-bit pattern [x] to the int an
   [Int32.to_int] round trip would produce. *)
let[@inline] sext32 x = (x lsl 31) asr 31

(* The unboxed primitives: the word travels as a plain [int] end to end
   (API -> back-end -> machine -> cache -> memory); an [int32] is only
   constructed at the boxed [get]/[set] wrappers and for trace events. *)
let get_raw t (o : Shared.t) word : int =
  check_word o word;
  if t.check && scope_of t o = None then
    fail "read of %a outside any entry/exit pair" Shared.pp o;
  let (Backend_sig.B ((module B), b)) = t.backend in
  let v = B.read_u32_int b o word in
  if t.trace <> None then emit t (Ev_read (o, word, Int32.of_int v));
  v

let set_raw t (o : Shared.t) word (v : int) =
  check_word o word;
  if t.check && scope_of t o <> Some X then
    fail "write of %a outside an exclusive entry_x/exit_x pair" Shared.pp o;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.write_u32_int b o word v;
  if t.trace <> None then emit t (Ev_write (o, word, Int32.of_int v))

let get t o word : int32 = Int32.of_int (get_raw t o word)
let set t o word (v : int32) = set_raw t o word (Int32.to_int v)

(* Byte accesses — the truly indivisible unit of the model (Sec. IV-A). *)
let check_byte (o : Shared.t) i =
  if i < 0 || i >= o.Shared.size then
    fail "byte %d out of bounds for %a" i Shared.pp o

let get8 t (o : Shared.t) i : int =
  check_byte o i;
  if t.check && scope_of t o = None then
    fail "read of %a outside any entry/exit pair" Shared.pp o;
  let (Backend_sig.B ((module B), b)) = t.backend in
  let v = B.read_u8 b o i in
  if t.trace <> None then emit t (Ev_read8 (o, i, v));
  v

let set8 t (o : Shared.t) i (v : int) =
  check_byte o i;
  if t.check && scope_of t o <> Some X then
    fail "write of %a outside an exclusive entry_x/exit_x pair" Shared.pp o;
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.write_u8 b o i v;
  if t.trace <> None then emit t (Ev_write8 (o, i, v))

(* Integer convenience wrappers — allocation-free: they ride the
   unboxed primitives directly. *)
let get_int t o word = sext32 (get_raw t o word)
let set_int t o word v = set_raw t o word v

(* Untimed read of the canonical version — result collection after the
   simulation has finished (no scope or timing rules apply). *)
let peek t (o : Shared.t) word : int32 =
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.peek_u32 b o word

let peek_int t o word = Int32.to_int (peek t o word)

(* Untimed initialization write, visible on every core — for loading input
   data before the simulation starts. *)
let poke t (o : Shared.t) word (v : int32) =
  let (Backend_sig.B ((module B), b)) = t.backend in
  B.poke_u32 b o word v;
  (* poke runs on the host, usually outside any task, so there is no
     issuing core — report it as core -1 *)
  match t.trace with None -> () | Some f -> f ~core:(-1) (Ev_init (o, word, v))

let poke_int t o word v = poke t o word (Int32.of_int v)

(* ---------------- scoped helpers (the ScopeX/ScopeRO of Fig. 10) ------ *)

let with_x t o f =
  entry_x t o;
  Fun.protect ~finally:(fun () -> exit_x t o) (fun () -> f ())

let with_ro t o f =
  entry_ro t o;
  Fun.protect ~finally:(fun () -> exit_ro t o) (fun () -> f ())

(* Spin until [pred (get o word)] holds, polling through a read-only
   scope — the canonical flag-waiting loop of Fig. 6.  Between polls the
   core backs off (the paper's sleep()), up to [max_backoff] cycles, so a
   herd of pollers does not saturate the memory port.  Under the DSM
   back-end every poll reads the core's own replica, which disturbs no
   other tile (Section VI-B observes DSM's polling advantage), so the
   default cap tightens to [Config.local_poll_backoff]. *)
let poll_until_int ?max_backoff t (o : Shared.t) word pred : int =
  let max_backoff =
    match max_backoff with
    | Some b -> b
    | None ->
        let (Backend_sig.B ((module B), _)) = t.backend in
        if B.name = "dsm" then
          (Machine.config t.machine).Config.local_poll_backoff
        else 512
  in
  check_word o word;
  (* the loop body satisfies the discipline by construction (entry_ro;
     read; exit_ro on the same object), so the scope checks reduce to
     this single entry check *)
  if t.check && scope_of t o <> None then
    fail "poll_until of %a: already in scope" Shared.pp o;
  let (Backend_sig.B ((module B), b)) = t.backend in
  let traced = t.trace <> None in
  let rec loop backoff =
    (* the polling loop is the simulator's hottest client code: with no
       trace sink attached it calls the back-end hooks directly — same
       timed operations in the same order, but no per-poll scope push/pop
       or event construction *)
    let v =
      if traced then begin
        entry_ro t o;
        match get_raw t o word with
        | v -> exit_ro t o; v
        | exception e -> exit_ro t o; raise e
      end
      else begin
        B.entry_ro b o;
        match B.read_u32_int b o word with
        | v -> B.exit_ro b o; v
        | exception e -> B.exit_ro b o; raise e
      end
    in
    let v = sext32 v in
    if pred v then v
    else begin
      Engine.idle (Machine.engine t.machine) backoff;
      loop (min max_backoff (backoff * 2))
    end
  in
  loop 8

let poll_until ?max_backoff t (o : Shared.t) word pred : int32 =
  Int32.of_int
    (poll_until_int ?max_backoff t o word (fun v -> pred (Int32.of_int v)))
