(* Far-memory back-end (the sixth column): the canonical version of every
   shared object lives in the durable far-memory tier behind SDRAM
   ([Pmc_sim.Farmem]), and exclusive scopes publish through a redo log so
   that a power cut can never leave a torn object.

   Scoping is the SPM staging discipline (Table II, fourth column):
   entering a scope stages the object into the tile's scratch-pad, scope
   accesses hit the scratch-pad at local-memory speed, and leaving an
   exclusive scope publishes the staged bytes back.  What changes is the
   publication path:

     entry_x   lock; copy far memory → SPM
     exit_x    commit (below); free the SPM space; unlock
     entry_ro  copy far memory → SPM, locking around the copy unless the
               object is atomic-sized
     exit_ro   discard the SPM copy
     flush     commit while staying in the scope
     fence     compiler barrier only

   A commit is failure-atomic via the redo log in the durable region
   (this core's log slot):

     1. log    write [payload words + publication count] as redo records
               into the slot; flush barrier (log durable)
     2. commit write the slot's commit flag; barrier (commit durable)
     3. apply  write the payload in place and bump the object's durable
               publication count; barrier
     4. trunc  clear the commit flag; barrier

   A cut before 2 discards the scope (the log is uncommitted); a cut
   after 2 lets recovery re-apply it; either way the object carries all
   of the scope's bytes or none, and its publication count says which.
   Readers always see durable media ([Farmem] serves reads from the
   media, never the device cache), so nothing visible can be lost —
   "visible implies durable", which is what makes checking the durable
   prefix of a crashed run's trace sound.

   With [Config.farmem_log] off the commit degrades to word-by-word
   in-place writes with a barrier after each word — the deliberately
   tearable debug mode the crash checker must catch. *)

open Pmc_sim
module Dev = Pmc_sim.Farmem

(* Each object's durable allocation: an 8-byte header (word 0 = the
   publication count, word 1 pad) followed by the word-aligned payload. *)
let header_bytes = 8

type scope = { spm_off : int; mark : int }

type t = {
  m : Machine.t;
  staged : (int, scope) Hashtbl.t array;
  base_sp : int array;
}

let name = "farmem"

let create m =
  let cores = (Machine.config m).Config.cores in
  (* instantiate the device up front: the persistence domain exists from
     cycle 0, like the SDRAM it sits behind *)
  ignore (Machine.farmem m);
  {
    m;
    staged = Array.init cores (fun _ -> Hashtbl.create 8);
    base_sp = Array.init cores (fun core -> Machine.spm_mark m ~core);
  }

let machine t = t.m
let dev t = Machine.farmem t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  let words = Shared.words o in
  (* sdram_addr holds the object's far-memory base (header address);
     only this back-end interprets it *)
  o.Shared.sdram_addr <-
    Dev.alloc (dev t) ~name ~bytes:(header_bytes + (4 * words));
  o

let payload_addr (o : Shared.t) = o.Shared.sdram_addr + header_bytes

(* ---------------- timing ---------------- *)

let[@inline] consume t cat cycles =
  Engine.consume (Machine.engine t.m) cat cycles

(* A streamed burst of [words]: one device latency plus a per-word
   streaming cost, after queuing on the (slow, narrow) far-memory port. *)
let burst_cost t ~words =
  let cfg = Machine.config t.m in
  Dev.contend_words (dev t) ~now:(Machine.now t.m) ~words
  + cfg.Config.farmem_word_cycles
  + (words * cfg.Config.farmem_burst_word_cycles)

let word_cost t = burst_cost t ~words:1

(* Drain the device cache.  The data move is instantaneous at the start
   of the latency window (like every transfer in the simulator), the
   cycles are consumed after — so durability is atomic at the barrier. *)
let barrier t =
  let cfg = Machine.config t.m in
  let wait =
    Dev.contend (dev t) ~now:(Machine.now t.m)
      ~occupancy:cfg.Config.farmem_word_occupancy
  in
  ignore (Dev.barrier (dev t));
  consume t Stats.Flush_overhead (wait + cfg.Config.farmem_barrier_cycles)

(* ---------------- staging (the SPM discipline) ---------------- *)

let copy_in t (o : Shared.t) ~spm_off =
  let core = Machine.core_id t.m in
  let words = Shared.words o in
  Machine.blit_farmem_to_local t.m ~core ~far:(payload_addr o) ~off:spm_off
    ~len:(4 * words);
  consume t Stats.Shared_read_stall (burst_cost t ~words)

let scope_error t (o : Shared.t) ~op =
  Pmc_error.raise_error ~core:(Machine.core_id t.m) ~obj:o.Shared.name ~op
    "no active far-memory scope for this object on this core"

let stage t (o : Shared.t) =
  let core = Machine.core_id t.m in
  let mark = Machine.spm_mark t.m ~core in
  let spm_off = Machine.spm_alloc t.m ~core ~bytes:o.Shared.size in
  Hashtbl.replace t.staged.(core) o.Shared.id { spm_off; mark };
  copy_in t o ~spm_off;
  spm_off

let unstage t (o : Shared.t) =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | None -> scope_error t o ~op:"Farmem.exit"
  | Some s ->
      Hashtbl.remove t.staged.(core) o.Shared.id;
      let top = (s.spm_off + o.Shared.size + 3) / 4 * 4 in
      if Machine.spm_mark t.m ~core = top then
        Machine.spm_release t.m ~core s.mark;
      if Hashtbl.length t.staged.(core) = 0 then
        Machine.spm_release t.m ~core t.base_sp.(core);
      s

(* ---------------- publication ---------------- *)

(* Read the object's durable publication count (the media is always the
   last committed value — commits finish before the lock is released). *)
let read_pub_count t (o : Shared.t) =
  let count = Dev.read_u32_int (dev t) o.Shared.sdram_addr in
  consume t Stats.Flush_overhead (word_cost t);
  count

(* Failure-atomic commit through this core's redo-log slot. *)
let commit_logged t (o : Shared.t) ~spm_off =
  let core = Machine.core_id t.m in
  let d = dev t in
  let words = Shared.words o in
  let base = o.Shared.sdram_addr in
  let slot = Dev.slot_addr d core in
  (* two records: the payload, and the bumped publication count *)
  let need = 8 + (8 + (4 * words)) + 12 in
  if need > Dev.log_slot_bytes then
    Pmc_error.raise_error ~core ~obj:o.Shared.name ~op:"Farmem.commit"
      "object too large for a redo-log slot (%d > %d bytes)" need
      Dev.log_slot_bytes;
  let count = read_pub_count t o in
  (* 1. build the log in the device cache, then make it durable *)
  Dev.write_u32_int d (slot + 8) (base + header_bytes);
  Dev.write_u32_int d (slot + 12) words;
  Machine.blit_local_to_farmem t.m ~core ~off:spm_off ~far:(slot + 16)
    ~len:(4 * words);
  let hrec = slot + 16 + (4 * words) in
  Dev.write_u32_int d hrec base;
  Dev.write_u32_int d (hrec + 4) 1;
  Dev.write_u32_int d (hrec + 8) (count + 1);
  Dev.write_u32_int d (slot + 4) 2;
  consume t Stats.Flush_overhead (burst_cost t ~words:(words + 6));
  barrier t;
  (* 2. commit record *)
  Dev.write_u32_int d slot 1;
  consume t Stats.Flush_overhead (word_cost t);
  barrier t;
  (* 3. apply in place *)
  Machine.blit_local_to_farmem t.m ~core ~off:spm_off
    ~far:(base + header_bytes) ~len:(4 * words);
  Dev.write_u32_int d base (count + 1);
  consume t Stats.Flush_overhead (burst_cost t ~words:(words + 1));
  barrier t;
  (* 4. truncate *)
  Dev.write_u32_int d slot 0;
  consume t Stats.Flush_overhead (word_cost t);
  barrier t

(* The tearable debug mode ([Config.farmem_log] off): in-place word
   writes, each made durable on its own — a cut mid-commit leaves a
   prefix of new words over a suffix of old ones. *)
let commit_unlogged t (o : Shared.t) ~spm_off =
  let core = Machine.core_id t.m in
  let d = dev t in
  let words = Shared.words o in
  let base = o.Shared.sdram_addr in
  let count = read_pub_count t o in
  for w = 0 to words - 1 do
    Machine.blit_local_to_farmem t.m ~core ~off:(spm_off + (4 * w))
      ~far:(base + header_bytes + (4 * w)) ~len:4;
    consume t Stats.Flush_overhead (word_cost t);
    barrier t
  done;
  Dev.write_u32_int d base (count + 1);
  consume t Stats.Flush_overhead (word_cost t);
  barrier t

let commit t (o : Shared.t) ~spm_off =
  if (Machine.config t.m).Config.farmem_log then commit_logged t o ~spm_off
  else commit_unlogged t o ~spm_off

(* ---------------- the annotation protocol ---------------- *)

let entry_x t (o : Shared.t) =
  Pmc_lock.Dlock.acquire o.Shared.lock;
  ignore (stage t o)

let exit_x t (o : Shared.t) =
  let core = Machine.core_id t.m in
  (match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | None -> scope_error t o ~op:"Farmem.exit_x"
  | Some s -> commit t o ~spm_off:s.spm_off);
  ignore (unstage t o);
  Pmc_lock.Dlock.release o.Shared.lock

let entry_ro t (o : Shared.t) =
  if Shared.is_atomic_sized o then ignore (stage t o)
  else begin
    (* lock only around the copy: commits hold the exclusive lock
       through their last barrier, so a locked copy is never torn *)
    Pmc_lock.Dlock.acquire_ro o.Shared.lock;
    ignore (stage t o);
    Pmc_lock.Dlock.release_ro o.Shared.lock
  end

let exit_ro t (o : Shared.t) = ignore (unstage t o)

let fence _t = ()

let flush t (o : Shared.t) =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | None -> scope_error t o ~op:"Farmem.flush"
  | Some s -> commit t o ~spm_off:s.spm_off

(* ---------------- scope accesses (scratch-pad) ---------------- *)

let spm_addr t (o : Shared.t) word =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | Some s ->
      Machine.local_addr t.m ~tile:core ~off:(s.spm_off + (4 * word))
  | None -> scope_error t o ~op:"Farmem.access"

let read_u32_int t (o : Shared.t) word =
  Machine.load_u32_int t.m ~shared:true (spm_addr t o word)

let write_u32_int t (o : Shared.t) word v =
  Machine.store_u32_int t.m ~shared:true (spm_addr t o word) v

let read_u8 t (o : Shared.t) i =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | Some s ->
      Machine.load_u8 t.m ~shared:true
        (Machine.local_addr t.m ~tile:core ~off:(s.spm_off + i))
  | None -> scope_error t o ~op:"Farmem.access"

let write_u8 t (o : Shared.t) i v =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | Some s ->
      Machine.store_u8 t.m ~shared:true
        (Machine.local_addr t.m ~tile:core ~off:(s.spm_off + i))
        v
  | None -> scope_error t o ~op:"Farmem.access"

(* ---------------- untimed host access ---------------- *)

let peek_u32 t (o : Shared.t) word =
  Int32.of_int (Dev.peek_u32 (dev t) (payload_addr o + (4 * word)))

let poke_u32 t (o : Shared.t) word v =
  Dev.poke_u32 (dev t) (payload_addr o + (4 * word)) (Int32.to_int v)
