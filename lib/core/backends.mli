(** Back-end selection — the "compiler setting" that re-targets an
    annotated application to a different memory architecture. *)

type kind =
  | Seqcst  (** idealized sequentially consistent memory (reference) *)
  | Nocc    (** shared data uncached — the Fig. 8 baseline *)
  | Swcc    (** software cache coherency (Table II, column 1) *)
  | Dsm     (** distributed shared memory over the write-only NoC (col. 2) *)
  | Spm     (** scratch-pad staging (column 3) *)
  | Farmem
      (** crash-consistent far-memory tier: SPM-style staging over the
          durable {!Pmc_sim.Farmem} device, with failure-atomic
          [exit_x]/[flush] through a redo log *)

val all : kind list
(** Every back-end, in Table II order (with the two baselines first and
    the far-memory tier last). *)

val to_string : kind -> string
(** The CLI name: ["seqcst"], ["nocc"], ["swcc"], ["dsm"], ["spm"] or
    ["farmem"]. *)

val of_string : string -> kind option
(** Inverse of {!to_string}. *)

val make_backend : kind -> Pmc_sim.Machine.t -> Backend_sig.backend
(** Instantiate the raw back-end operations on a machine (no API
    wrapper). *)

val create : ?check:bool -> kind -> Pmc_sim.Machine.t -> Api.t
(** Instantiate a back-end and wrap it in the annotation {!Api};
    [check] (default [true]) enables the runtime discipline checker. *)
