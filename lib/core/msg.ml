(* The flag/data communication pattern of Figs. 1, 5 and 6.

   [send]/[recv] are the properly annotated version (Fig. 6): the payload
   is published under entry_x with a fence, the flag is flushed so the
   polling reader eventually observes it.

   [Broken] reproduces Fig. 1 literally: two raw remote writes over paths
   of different latency, no annotations.  On the asymmetric machine the
   flag overtakes the payload and the reader sees stale data — the bug the
   whole paper is about.  [Broken.run ~fixed:true] adds the drain that a
   PMC-aware compiler would insert (the paper suggests "a read of X
   between the writes"; waiting for the posted write to land has the same
   effect) and the bug disappears. *)

open Pmc_sim

let send api ~(data : Shared.t) ~(flag : Shared.t) (values : int32 array) =
  Api.entry_x api data;
  Array.iteri (fun i v -> Api.set api data i v) values;
  Api.fence api;
  Api.exit_x api data;
  Api.entry_x api flag;
  Api.set api flag 0 1l;
  Api.flush api flag;
  Api.exit_x api flag

let recv api ~(data : Shared.t) ~(flag : Shared.t) : int32 array =
  ignore (Api.poll_until_int api flag 0 (fun v -> v = 1));
  Api.fence api;
  Api.with_x api data (fun () ->
      Array.init (Shared.words data) (fun i -> Api.get api data i))

module Broken = struct
  (* Offsets of X and flag within the receiving tile's local memory. *)
  let x_off = 0
  let flag_off = 64

  type outcome = { observed : int32; expected : int32 }

  let ok o = o.observed = o.expected

  (* Run the Fig. 1 program on machine [m]: core [src] publishes 42 and a
     flag into core [dst]'s local memory over links with the given
     latencies.  [fixed] inserts the PMC-mandated drain between the two
     writes. *)
  let run (m : Machine.t) ~src ~dst ~latency_x ~latency_flag ~fixed :
      outcome =
    let result = ref 0l in
    Machine.poke_u32 m (Machine.local_addr m ~tile:dst ~off:x_off) 0l;
    Machine.poke_u32 m (Machine.local_addr m ~tile:dst ~off:flag_off) 0l;
    Machine.spawn m ~core:src (fun () ->
        Machine.store_u32_remote_raw m ~dst ~off:x_off ~latency:latency_x 42l;
        if fixed then Machine.noc_drain m;
        Machine.store_u32_remote_raw m ~dst ~off:flag_off
          ~latency:latency_flag 1l);
    Machine.spawn m ~core:dst (fun () ->
        let flag_addr = Machine.local_addr m ~tile:dst ~off:flag_off in
        let x_addr = Machine.local_addr m ~tile:dst ~off:x_off in
        while Machine.load_u32 m ~shared:true flag_addr <> 1l do
          Engine.idle (Machine.engine m) 1
        done;
        result := Machine.load_u32 m ~shared:true x_addr);
    Machine.run m;
    { observed = !result; expected = 42l }
end
