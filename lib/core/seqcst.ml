(* Idealized sequentially consistent back-end.

   "For a sequential consistent system, the implementation of the
   annotations is trivial; mutual exclusion is still required for the
   entry/exit pairs, but all other annotations can be ignored safely"
   (Section V-B).  Accesses hit a magic single-cycle shared memory; the
   entry/exit pairs keep their locks (exclusion is a correctness
   requirement, not a memory-model one).  This back-end is the correctness
   reference the others are tested against. *)

open Pmc_sim

type t = { m : Machine.t }

let name = "seqcst"

let create m = { m }
let machine t = t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  o.Shared.sdram_addr <- Machine.alloc_uncached t.m ~bytes;
  o

let entry_x _t (o : Shared.t) = Pmc_lock.Dlock.acquire o.Shared.lock
let exit_x _t (o : Shared.t) = Pmc_lock.Dlock.release o.Shared.lock

let entry_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.acquire_ro o.Shared.lock

let exit_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.release_ro o.Shared.lock

let fence _t = ()
let flush _t _o = ()

let read_u32_int t (o : Shared.t) word =
  Engine.consume (Machine.engine t.m) Stats.Shared_read_stall 1;
  Int32.to_int (Machine.peek_u32 t.m (o.Shared.sdram_addr + (4 * word)))
  land 0xFFFFFFFF

let write_u32_int t (o : Shared.t) word v =
  Engine.consume (Machine.engine t.m) Stats.Write_stall 1;
  Machine.poke_u32 t.m (o.Shared.sdram_addr + (4 * word)) (Int32.of_int v)

let read_u8 t (o : Shared.t) i =
  Engine.consume (Machine.engine t.m) Stats.Shared_read_stall 1;
  let w = Machine.peek_u32 t.m (o.Shared.sdram_addr + (i / 4 * 4)) in
  Int32.to_int (Int32.shift_right_logical w (8 * (i mod 4))) land 0xff

let write_u8 t (o : Shared.t) i v =
  Engine.consume (Machine.engine t.m) Stats.Write_stall 1;
  let a = o.Shared.sdram_addr + (i / 4 * 4) in
  let w = Machine.peek_u32 t.m a in
  let shift = 8 * (i mod 4) in
  let w =
    Int32.logor
      (Int32.logand w (Int32.lognot (Int32.shift_left 0xffl shift)))
      (Int32.shift_left (Int32.of_int (v land 0xff)) shift)
  in
  Machine.poke_u32 t.m a w

let peek_u32 t (o : Shared.t) word =
  Machine.peek_u32 t.m (o.Shared.sdram_addr + (4 * word))

let poke_u32 t (o : Shared.t) word v =
  Machine.poke_u32 t.m (o.Shared.sdram_addr + (4 * word)) v
