(** The PMC annotation API (Section V-A), independent of the memory
    architecture underneath.

    Applications are written once against this module; the back-end
    chosen at creation re-targets them — "porting applications to
    hardware with another memory model becomes just a compiler setting".

    The API enforces the paper's source discipline at run time: reads and
    writes of shared objects happen inside entry/exit pairs, writes need
    exclusive access, flush is only legal inside an exclusive scope, and
    scopes nest.  Violations raise {!Discipline_error}; [~check:false]
    instances skip the checks (for broken-by-design demonstrations).

    An optional trace hook receives every annotation and access so that
    observed runs can be validated against the formal model
    ({!Pmc_model.History} — see the integration tests). *)

exception Discipline_error of string

type mode = X | Ro
(** Scope kind: exclusive or read-only. *)

type event =
  | Ev_entry of mode * Shared.t
  | Ev_exit of mode * Shared.t
  | Ev_fence
  | Ev_flush of Shared.t
  | Ev_read of Shared.t * int * int32
  | Ev_write of Shared.t * int * int32
  | Ev_read8 of Shared.t * int * int   (** byte read: (object, byte, value) *)
  | Ev_write8 of Shared.t * int * int  (** byte write: (object, byte, value) *)
  | Ev_init of Shared.t * int * int32
      (** untimed initialization write ({!poke}) — establishes the
          location's initial value for model replay *)

type t
(** An annotation API instance: one back-end on one machine. *)

val create : ?check:bool -> Backend_sig.backend -> t
(** Wrap a back-end; [check] (default [true]) enables the runtime
    discipline checker. *)

val of_backend :
  (module Backend_sig.S with type t = 'a) -> 'a -> t
(** Wrap a first-class back-end module directly (used by the back-end
    implementations themselves and the tests). *)

val machine : t -> Pmc_sim.Machine.t
(** The simulated machine underneath. *)

val backend_name : t -> string
(** The back-end's CLI name ({!Backends.to_string}). *)

val set_trace : t -> (core:int -> event -> unit) option -> unit
(** Install (or remove, with [None]) the trace hook receiving every
    annotation and access. *)

(** {1 Allocation} *)

val alloc : t -> name:string -> bytes:int -> Shared.t
(** Allocate and place a shared object of [bytes] bytes. *)

val alloc_words : t -> name:string -> words:int -> Shared.t
(** {!alloc} sized in 32-bit words. *)

(** {1 The six annotations of Section V-A} *)

val entry_x : t -> Shared.t -> unit
(** Acquire exclusive access (issues the model's acquire). *)

val exit_x : t -> Shared.t -> unit
(** Give up exclusive access (release); may be lazy, see Table II. *)

val entry_ro : t -> Shared.t -> unit
(** Begin non-exclusive read-only access. *)

val exit_ro : t -> Shared.t -> unit
(** End a read-only scope. *)

val fence : t -> unit
(** ≺F: order this core's operations across locations. *)

val fence_scoped : t -> Shared.t list -> unit
(** Location-scoped fence (the Section IV-D optimization): order only this
    core's operations on the given objects.  On the in-order back-ends it
    costs the same as [fence] (a compiler barrier); the scope matters to
    analysis tooling ({!Pmc_model.Execution.fence_scoped}). *)

val flush : t -> Shared.t -> unit
(** Best-effort: push modifications towards other processes soon.  Only
    legal inside an exclusive scope. *)

(** {1 Accesses} *)

val get : t -> Shared.t -> int -> int32
(** Word read, inside any scope of the object. *)

val set : t -> Shared.t -> int -> int32 -> unit
(** Word write, inside an exclusive scope. *)

val get8 : t -> Shared.t -> int -> int
(** Byte read — the truly indivisible access of Section IV-A. *)

val set8 : t -> Shared.t -> int -> int -> unit
(** Byte write, inside an exclusive scope. *)

val get_int : t -> Shared.t -> int -> int
(** {!get} on the unboxed accessor path: the sign-extended word as a
    plain [int], no allocation (DESIGN.md §13). *)

val set_int : t -> Shared.t -> int -> int -> unit
(** {!set} on the unboxed accessor path. *)

val peek : t -> Shared.t -> int -> int32
(** Untimed read of the canonical version — for result collection after
    the simulation finished. *)

val peek_int : t -> Shared.t -> int -> int
(** {!peek} on the unboxed accessor path. *)

val poke : t -> Shared.t -> int -> int32 -> unit
(** Untimed initialization write, visible on every core. *)

val poke_int : t -> Shared.t -> int -> int -> unit
(** {!poke} on the unboxed accessor path. *)

(** {1 Scoped helpers — the ScopeX / ScopeRO of Fig. 10} *)

val with_x : t -> Shared.t -> (unit -> 'a) -> 'a
(** [with_x t o f] brackets [f] with {!entry_x}/{!exit_x} (exit runs on
    exception too). *)

val with_ro : t -> Shared.t -> (unit -> 'a) -> 'a
(** [with_ro t o f] brackets [f] with {!entry_ro}/{!exit_ro}. *)

val poll_until :
  ?max_backoff:int -> t -> Shared.t -> int -> (int32 -> bool) -> int32
(** Spin on a word through read-only scopes until the predicate holds —
    the flag-waiting loop of Fig. 6, with exponential backoff (the
    paper's [sleep()]). *)

val poll_until_int :
  ?max_backoff:int -> t -> Shared.t -> int -> (int -> bool) -> int
(** [poll_until] on the unboxed accessor path: the predicate sees the
    sign-extended word as a plain [int] and no [int32] is allocated per
    poll.  Timed behaviour is identical to [poll_until]. *)
