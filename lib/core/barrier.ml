(* Sense-reversing barrier built purely from the PMC annotations: the
   arrival counter is an exclusive-scope counter, the release is the
   flag-publish pattern of Fig. 6 (fence + flush), and waiters poll the
   sense word read-only.  Because it uses only the portable API it works
   on every back-end — a convenience the paper's platform layer would
   ship alongside the FIFO. *)

type t = {
  api : Api.t;
  parties : int;
  count : Shared.t;      (* arrivals in the current phase *)
  sense : Shared.t;      (* phase parity, flipped by the last arriver *)
  local_sense : (int, int) Hashtbl.t;  (* per-core expected parity *)
}

let create api ~name ~parties : t =
  if parties <= 0 then invalid_arg "Barrier.create";
  {
    api;
    parties;
    count = Api.alloc_words api ~name:(name ^ ".count") ~words:1;
    sense = Api.alloc_words api ~name:(name ^ ".sense") ~words:1;
    local_sense = Hashtbl.create 32;
  }

let wait (t : t) =
  let api = t.api in
  let core = Pmc_sim.Machine.core_id (Api.machine api) in
  let my_sense =
    1 - Option.value ~default:0 (Hashtbl.find_opt t.local_sense core)
  in
  Hashtbl.replace t.local_sense core my_sense;
  let last =
    Api.with_x api t.count (fun () ->
        let c = Api.get_int api t.count 0 + 1 in
        if c = t.parties then begin
          Api.set_int api t.count 0 0;
          true
        end
        else begin
          Api.set_int api t.count 0 c;
          false
        end)
  in
  if last then begin
    (* everyone has arrived: publish the new phase *)
    Api.fence api;
    Api.with_x api t.sense (fun () ->
        Api.set_int api t.sense 0 my_sense;
        Api.flush api t.sense)
  end
  else
    ignore (Api.poll_until_int api t.sense 0 (fun v -> v = my_sense));
  Api.fence api
