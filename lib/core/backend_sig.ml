(* The contract every memory-architecture back-end implements: the six
   annotations of Section V-A plus timed word accesses.  The application is
   written once against [Api]; swapping the back-end re-targets it to a
   different memory architecture, exactly as Table II prescribes.

   Back-end obligations (the orderings of Table I):
     - [read_u32]/[write_u32] must satisfy ≺ℓ and ≺P (same process, same
       location) — automatic on the in-order simulated cores.
     - [entry_x]/[exit_x] must provide ≺S via the object's lock and make
       the newest version visible to the new holder.
     - [fence] must provide ≺F — a compiler barrier on the in-order
       MicroBlaze, so it usually costs nothing.
     - [flush] is best effort: push the current version towards other
       processes; no ordering guarantee (Section IV-D). *)

module type S = sig
  type t

  val name : string

  val create : Pmc_sim.Machine.t -> t
  val machine : t -> Pmc_sim.Machine.t

  (* Allocate a shared object and place it for this architecture. *)
  val alloc : t -> name:string -> bytes:int -> Shared.t

  val entry_x : t -> Shared.t -> unit
  val exit_x : t -> Shared.t -> unit
  val entry_ro : t -> Shared.t -> unit
  val exit_ro : t -> Shared.t -> unit
  val fence : t -> unit
  val flush : t -> Shared.t -> unit

  (* Word access within the object; [word] is a word index.  The value
     travels as a plain [int] — the unsigned 32-bit pattern on reads,
     low 32 bits significant on writes — so the per-access hot path
     never boxes an [int32]; the API surface converts at its edge. *)
  val read_u32_int : t -> Shared.t -> int -> int
  val write_u32_int : t -> Shared.t -> int -> int -> unit

  (* Byte access — "in general, only bytes are indivisible" (Sec. IV-A). *)
  val read_u8 : t -> Shared.t -> int -> int
  val write_u8 : t -> Shared.t -> int -> int -> unit

  (* Untimed read of the object's canonical (most recent) version, for
     result collection and tests after the simulation has finished. *)
  val peek_u32 : t -> Shared.t -> int -> int32

  (* Untimed write visible to every core — input-data initialization
     before the simulation starts. *)
  val poke_u32 : t -> Shared.t -> int -> int32 -> unit
end

type backend = B : (module S with type t = 'a) * 'a -> backend
