(* The 'no CC' reference setup of the Fig. 8 experiment: "all application
   data that is shared between processors resides in uncached memory; so
   no cache coherency protocol is required and all cache flushes are
   nullified".

   Shared objects live in the uncached SDRAM region; every access pays the
   full SDRAM round-trip plus port contention.  Private data (driven
   through [Machine.private_load]/[private_store] by the applications)
   stays cached in this setup, exactly as in the paper. *)

open Pmc_sim

type t = { m : Machine.t }

let name = "nocc"

let create m = { m }
let machine t = t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  o.Shared.sdram_addr <- Machine.alloc_uncached t.m ~bytes;
  o

let entry_x _t (o : Shared.t) = Pmc_lock.Dlock.acquire o.Shared.lock
let exit_x _t (o : Shared.t) = Pmc_lock.Dlock.release o.Shared.lock

let entry_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.acquire_ro o.Shared.lock

let exit_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.release_ro o.Shared.lock

(* in-order core: the fence is purely a compiler barrier *)
let fence _t = ()

(* cache flushes are nullified — there is nothing cached to flush *)
let flush _t _o = ()

let read_u32_int t (o : Shared.t) word =
  Machine.load_u32_int t.m ~shared:true (o.Shared.sdram_addr + (4 * word))

let write_u32_int t (o : Shared.t) word v =
  Machine.store_u32_int t.m ~shared:true (o.Shared.sdram_addr + (4 * word)) v

let read_u8 t (o : Shared.t) i =
  Machine.load_u8 t.m ~shared:true (o.Shared.sdram_addr + i)

let write_u8 t (o : Shared.t) i v =
  Machine.store_u8 t.m ~shared:true (o.Shared.sdram_addr + i) v

let peek_u32 t (o : Shared.t) word =
  Machine.peek_u32 t.m (o.Shared.sdram_addr + (4 * word))

let poke_u32 t (o : Shared.t) word v =
  Machine.poke_u32 t.m (o.Shared.sdram_addr + (4 * word)) v
