(* Scratch-pad memory back-end (Table II, fourth column) — the motion
   estimation setup of Section VI-C.

   The canonical version of every shared object lives in SDRAM (accessed
   uncached here: the SPM holds the working copy, so the D-cache adds
   nothing but interference).  Entering a scope stages the object into the
   tile's scratch-pad; all reads and writes inside the scope hit the
   scratch-pad at local-memory speed; leaving the scope copies the data
   back (exclusive access) or discards it (read-only access):

     entry_x   lock; copy SDRAM → SPM;
     exit_x    copy SPM → SDRAM; free the SPM space; unlock;
     entry_ro  copy SDRAM → SPM, locking around the copy if the object is
               larger than an atomic word;
     exit_ro   discard the SPM copy;
     flush     copy SPM → SDRAM while staying in the scope;
     fence     compiler barrier only.

   The paper notes the dual-address problem (main memory vs SPM address);
   here the [read_u32]/[write_u32] indirection plays the role of the C++
   ScopeRO/ScopeX cast operators of Fig. 10 and hides it completely. *)

open Pmc_sim

type scope = { spm_off : int; mark : int }

type t = {
  m : Machine.t;
  (* per-core map: object id -> active SPM staging *)
  staged : (int, scope) Hashtbl.t array;
  (* SPM stack position when no scope is active, for bulk reclamation *)
  base_sp : int array;
}

let name = "spm"

let create m =
  let cores = (Machine.config m).Config.cores in
  {
    m;
    staged = Array.init cores (fun _ -> Hashtbl.create 8);
    base_sp = Array.init cores (fun core -> Machine.spm_mark m ~core);
  }

let machine t = t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  o.Shared.sdram_addr <- Machine.alloc_uncached t.m ~bytes;
  o

(* Burst copy between SDRAM and the SPM.  With [Config.batched_maint] the
   DMA engine streams the whole object in one burst: a single SDRAM
   latency plus a per-word streaming cost.  With batching off, every word
   is a separate port access that arbitrates (and possibly queues) on its
   own — the pre-batching model the equivalence tests compare against. *)
let copy_cycles t ~words =
  let cfg = Machine.config t.m in
  if cfg.Config.batched_maint then cfg.Config.sdram_word_cycles + (words * 2)
  else begin
    let c = ref 0 in
    for _ = 1 to words do
      c := !c + Machine.sdram_word_wait t.m + cfg.Config.sdram_word_cycles
    done;
    !c
  end

let copy_in t (o : Shared.t) ~spm_off =
  let core = Machine.core_id t.m in
  let words = Shared.words o in
  Machine.blit_sdram_to_local t.m ~core ~sdram:o.Shared.sdram_addr
    ~off:spm_off ~len:(4 * words);
  Engine.consume (Machine.engine t.m) Stats.Shared_read_stall
    (copy_cycles t ~words)

let copy_out t (o : Shared.t) ~spm_off =
  let core = Machine.core_id t.m in
  let words = Shared.words o in
  Machine.blit_local_to_sdram t.m ~core ~off:spm_off
    ~sdram:o.Shared.sdram_addr ~len:(4 * words);
  Engine.consume (Machine.engine t.m) Stats.Flush_overhead
    (copy_cycles t ~words)

let scope_error t (o : Shared.t) ~op =
  Pmc_error.raise_error ~core:(Machine.core_id t.m) ~obj:o.Shared.name ~op
    "no active SPM scope for this object on this core"

let stage t (o : Shared.t) =
  let core = Machine.core_id t.m in
  let mark = Machine.spm_mark t.m ~core in
  let spm_off = Machine.spm_alloc t.m ~core ~bytes:o.Shared.size in
  Hashtbl.replace t.staged.(core) o.Shared.id { spm_off; mark };
  copy_in t o ~spm_off;
  spm_off

(* Scratch-pad space is stack-allocated.  Scopes normally exit in LIFO
   order (the RAII style of Fig. 10); a non-LIFO exit leaves a hole that is
   reclaimed when the core's last scope closes. *)
let unstage t (o : Shared.t) =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | None -> scope_error t o ~op:"Spm.exit"
  | Some s ->
      Hashtbl.remove t.staged.(core) o.Shared.id;
      let top = (s.spm_off + o.Shared.size + 3) / 4 * 4 in
      if Machine.spm_mark t.m ~core = top then
        Machine.spm_release t.m ~core s.mark;
      if Hashtbl.length t.staged.(core) = 0 then
        Machine.spm_release t.m ~core t.base_sp.(core);
      s

let entry_x t (o : Shared.t) =
  Pmc_lock.Dlock.acquire o.Shared.lock;
  ignore (stage t o)

let exit_x t (o : Shared.t) =
  let core = Machine.core_id t.m in
  (match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | None -> scope_error t o ~op:"Spm.exit_x"
  | Some s -> copy_out t o ~spm_off:s.spm_off);
  ignore (unstage t o);
  Pmc_lock.Dlock.release o.Shared.lock

let entry_ro t (o : Shared.t) =
  if Shared.is_atomic_sized o then ignore (stage t o)
  else begin
    (* lock only around the copy: concurrent writers cannot tear it *)
    Pmc_lock.Dlock.acquire_ro o.Shared.lock;
    ignore (stage t o);
    Pmc_lock.Dlock.release_ro o.Shared.lock
  end

let exit_ro t (o : Shared.t) =
  (* discard the local copy *)
  ignore (unstage t o)

let fence _t = ()

let flush t (o : Shared.t) =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | None -> scope_error t o ~op:"Spm.flush"
  | Some s -> copy_out t o ~spm_off:s.spm_off

let spm_addr t (o : Shared.t) word =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | Some s ->
      Machine.local_addr t.m ~tile:core ~off:(s.spm_off + (4 * word))
  | None -> scope_error t o ~op:"Spm.access"

let read_u32_int t (o : Shared.t) word =
  Machine.load_u32_int t.m ~shared:true (spm_addr t o word)

let write_u32_int t (o : Shared.t) word v =
  Machine.store_u32_int t.m ~shared:true (spm_addr t o word) v

let read_u8 t (o : Shared.t) i =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | Some s ->
      Machine.load_u8 t.m ~shared:true
        (Machine.local_addr t.m ~tile:core ~off:(s.spm_off + i))
  | None -> scope_error t o ~op:"Spm.access"

let write_u8 t (o : Shared.t) i v =
  let core = Machine.core_id t.m in
  match Hashtbl.find_opt t.staged.(core) o.Shared.id with
  | Some s ->
      Machine.store_u8 t.m ~shared:true
        (Machine.local_addr t.m ~tile:core ~off:(s.spm_off + i))
        v
  | None -> scope_error t o ~op:"Spm.access"

let peek_u32 t (o : Shared.t) word =
  Machine.peek_u32 t.m (o.Shared.sdram_addr + (4 * word))

let poke_u32 t (o : Shared.t) word v =
  Machine.poke_u32 t.m (o.Shared.sdram_addr + (4 * word)) v
