(* Software cache coherency back-end (Table II, second column) — the
   BACKER-like protocol of the paper's main experiment.

   Shared objects live in *cached* SDRAM.  The protocol maintains the
   invariant that an object's lines are not resident in any cache outside
   an entry/exit pair:

     entry_x   acquire the distributed lock; conservatively invalidate the
               object's lines (they are clean-absent when the discipline is
               followed, so this costs only tag probes);
     exit_x    write back and invalidate the object's lines, then release —
               the MicroBlaze cache cannot reconcile a dirty line without
               evicting it, so flush means wb+inval;
     entry_ro  atomic-sized objects need nothing; larger ones take the
               object's lock to avoid torn reads;
     exit_ro   flush (invalidate; the lines are clean) and unlock;
     flush     write the object's dirty lines back while keeping the lock;
     fence     compiler barrier only — the core is in-order, "the fence
               does not emit any instructions". *)

open Pmc_sim

type t = { m : Machine.t }

let name = "swcc"

let create m = { m }
let machine t = t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  o.Shared.sdram_addr <- Machine.alloc_cached t.m ~bytes;
  o

let entry_x t (o : Shared.t) =
  Pmc_lock.Dlock.acquire o.Shared.lock;
  Machine.inval_range t.m ~addr:o.Shared.sdram_addr ~len:o.Shared.size

let exit_x t (o : Shared.t) =
  Machine.wb_inval_range t.m ~addr:o.Shared.sdram_addr ~len:o.Shared.size;
  Pmc_lock.Dlock.release o.Shared.lock

let entry_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.acquire_ro o.Shared.lock

let exit_ro t (o : Shared.t) =
  (* the object leaves the cache at scope exit: next reader re-fetches the
     newest version from SDRAM *)
  Machine.wb_inval_range t.m ~addr:o.Shared.sdram_addr ~len:o.Shared.size;
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.release_ro o.Shared.lock

let fence _t = ()

let flush t (o : Shared.t) =
  Machine.wb_inval_range t.m ~addr:o.Shared.sdram_addr ~len:o.Shared.size

let read_u32_int t (o : Shared.t) word =
  Machine.load_u32_int t.m ~shared:true (o.Shared.sdram_addr + (4 * word))

let write_u32_int t (o : Shared.t) word v =
  Machine.store_u32_int t.m ~shared:true (o.Shared.sdram_addr + (4 * word)) v

let read_u8 t (o : Shared.t) i =
  Machine.load_u8 t.m ~shared:true (o.Shared.sdram_addr + i)

let write_u8 t (o : Shared.t) i v =
  Machine.store_u8 t.m ~shared:true (o.Shared.sdram_addr + i) v

let peek_u32 t (o : Shared.t) word =
  Machine.peek_u32 t.m (o.Shared.sdram_addr + (4 * word))

let poke_u32 t (o : Shared.t) word v =
  Machine.poke_u32 t.m (o.Shared.sdram_addr + (4 * word)) v
