(* Distributed-shared-memory back-end (Table II, third column).

   Every shared object is replicated at a common offset in each tile's
   local memory; cores only ever read and write their own replica, which is
   fast and does not disturb other tiles.  Coherence is managed in
   software over the *write-only* NoC:

     entry_x   acquire the lock; if another tile produced the newest
               version, that version is written into the acquirer's local
               memory (the handover of the lazy release) — the acquirer
               stalls for the NoC transfer;
     exit_x    lazy: just record this tile as the owner of the newest
               version and release;
     entry_ro  atomic-sized objects: nothing (the replica is kept fresh by
               flushes); larger objects take the lock and pull the newest
               version to avoid torn reads;
     exit_ro   unlock if entry_ro locked;
     flush     push the local replica to every other tile's local memory
               (posted writes — best effort, arrival is asynchronous);
     fence     compiler barrier; inter-tile ordering is preserved by the
               per-link FIFO of the NoC.

   With [Config.dsm_lazy_versions] the back-end version-tracks replicas
   (TreadMarks-style lazy release consistency):

     - an acquire skips the pull when the local replica already holds the
       newest published version (and the bytes have actually arrived);
     - an exclusive scope that never wrote does not claim ownership, so a
       chain of readers keeps pulling from the real producer instead of
       from each other;
     - writes record a dirty byte range, and a flush pushes only that
       range to tiles whose replicas are known to be otherwise current,
       falling back to the whole object for stale tiles.

   All of this changes only who transfers what and when the acquirer
   stalls — the content every core observes at every annotation is the
   same as in the unbatched model; the replay-equivalence tests check
   exactly that.

   Degradation under faults (the chaos plane): replication rides on the
   resilient NoC transport, which retransmits losses and keeps per-link
   FIFO order, so the protocol above stays sound unchanged.  Once a link
   is declared dead ([Machine.link_dead]) the back-end stops trusting
   narrow deltas to that peer — it is demoted to the full-object group
   on every flush — and pulls across a dead link are charged the SDRAM
   relay cost instead of the NoC latency.  Data always still arrives;
   only the cost model degrades. *)

open Pmc_sim

type t = { m : Machine.t }

let name = "dsm"

let create m = { m }
let machine t = t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  o.Shared.dsm_off <- Machine.alloc_dsm t.m ~bytes;
  Shared.dsm_track o ~cores:(Machine.config t.m).Config.cores;
  o

let replica_addr t (o : Shared.t) ~tile =
  Machine.local_addr t.m ~tile ~off:o.Shared.dsm_off

(* Bring the newest version (owned by [o.last_writer]) into [core]'s
   replica, charging the NoC transfer to the acquirer.  Under
   [dsm_lazy_versions] the transfer is skipped when the local replica is
   already at the newest version and its bytes have landed; and when the
   acquire just received the lock over the NoC ([handover]), the newest
   version rides in the same grant burst — the releaser's replica is
   always current at release time — so the acquirer pays only the burst's
   payload extension instead of a separate transfer. *)
let pull_version ?(handover = false) t (o : Shared.t) =
  let core = Machine.core_id t.m in
  let cfg = Machine.config t.m in
  let lazy_v = cfg.Config.dsm_lazy_versions in
  let current =
    lazy_v
    && Array.length o.Shared.seen > 0
    && o.Shared.seen.(core) = o.Shared.version
    && Machine.now t.m >= o.Shared.seen_at.(core)
  in
  if not current then
    match o.Shared.last_writer with
    | -1 -> ()
    | w when w = core -> ()
    | w ->
        let words = Shared.words o in
        for i = 0 to words - 1 do
          let v = Machine.peek_u32 t.m (replica_addr t o ~tile:w + (4 * i)) in
          Machine.poke_u32 t.m (replica_addr t o ~tile:core + (4 * i)) v
        done;
        let cost =
          (* a dead (src=w, dst=core) link degrades the pull to the
             SDRAM relay: the producer stages the version through shared
             memory and the acquirer reads it back *)
          if Machine.link_dead t.m ~src:w ~dst:core then
            Config.relay_latency cfg ~words
          else if lazy_v && handover then cfg.Config.noc_word_cycles * words
          else Config.noc_latency cfg ~src:w ~dst:core ~words
        in
        Engine.consume (Machine.engine t.m) Stats.Shared_read_stall cost;
        if lazy_v then begin
          o.Shared.seen.(core) <- o.Shared.version;
          o.Shared.seen_at.(core) <- Machine.now t.m;
          (* the pull overwrote any unpublished local bytes *)
          if o.Shared.dirty_core = core then Shared.clear_dirty o
        end

let entry_x t (o : Shared.t) =
  Pmc_lock.Dlock.acquire o.Shared.lock;
  let handover = Pmc_lock.Dlock.last_transfer_from o.Shared.lock >= 0 in
  pull_version ~handover t o

let exit_x t (o : Shared.t) =
  (* Release consistency: any flush posted inside the scope must have
     landed before the release is observable, otherwise a reader ordered
     after this release (even one on the lock-free atomic-sized path)
     could still see pre-flush bytes in its replica.  The drain is a
     no-op when the scope posted nothing. *)
  Machine.noc_drain t.m;
  (* lazy release: the data stays local until the next acquirer pulls it *)
  let core = Machine.core_id t.m in
  let cfg = Machine.config t.m in
  if cfg.Config.dsm_lazy_versions then begin
    if o.Shared.dirty_core = core then begin
      o.Shared.version <- o.Shared.version + 1;
      o.Shared.last_writer <- core;
      o.Shared.seen.(core) <- o.Shared.version;
      o.Shared.seen_at.(core) <- Machine.now t.m;
      Shared.clear_dirty o
    end
    (* a scope that never wrote leaves ownership with the real producer *)
  end
  else o.Shared.last_writer <- core;
  Pmc_lock.Dlock.release o.Shared.lock

let entry_ro t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then begin
    Pmc_lock.Dlock.acquire_ro o.Shared.lock;
    pull_version t o
  end

let exit_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.release_ro o.Shared.lock

let fence _t = ()

let flush t (o : Shared.t) =
  let core = Machine.core_id t.m in
  let cfg = Machine.config t.m in
  let off = o.Shared.dsm_off in
  let others =
    List.filter (fun i -> i <> core) (List.init cfg.Config.cores Fun.id)
  in
  if not cfg.Config.dsm_lazy_versions then begin
    ignore
      (Machine.noc_push_multi t.m ~dsts:others ~src_off:off ~dst_off:off
         ~len:o.Shared.size);
    o.Shared.last_writer <- core
  end
  else begin
    let now = Machine.now t.m in
    (* A destination whose replica is known to hold the same base version
       as the flusher's only needs the dirty range; anyone else gets the
       whole object.  [seen_at] guards against in-flight deliveries. *)
    let base = o.Shared.seen.(core) in
    let clean = o.Shared.dirty_core = -1 in
    let narrow =
      base >= 0
      && now >= o.Shared.seen_at.(core)
      && (clean || o.Shared.dirty_core = core)
    in
    let fast, slow =
      (* a peer behind a dead link is never trusted with a narrow delta:
         its replica state is only reachable through the degraded relay,
         so it conservatively gets the whole object *)
      if narrow then
        List.partition
          (fun d ->
            o.Shared.seen.(d) = base
            && now >= o.Shared.seen_at.(d)
            && not (Machine.link_dead t.m ~src:core ~dst:d))
          others
      else ([], others)
    in
    let arr_fast =
      if fast = [] || clean then now
      else
        let lo = o.Shared.dirty_lo and hi = o.Shared.dirty_hi in
        Machine.noc_push_multi t.m ~dsts:fast ~src_off:(off + lo)
          ~dst_off:(off + lo) ~len:(hi - lo)
    in
    let arr_slow =
      if slow = [] then now
      else
        Machine.noc_push_multi t.m ~dsts:slow ~src_off:off ~dst_off:off
          ~len:o.Shared.size
    in
    let newv = o.Shared.version + 1 in
    o.Shared.version <- newv;
    o.Shared.last_writer <- core;
    o.Shared.seen.(core) <- newv;
    o.Shared.seen_at.(core) <- now;
    List.iter
      (fun d ->
        o.Shared.seen.(d) <- newv;
        o.Shared.seen_at.(d) <- arr_fast)
      fast;
    List.iter
      (fun d ->
        o.Shared.seen.(d) <- newv;
        o.Shared.seen_at.(d) <- arr_slow)
      slow;
    Shared.clear_dirty o
  end

let read_u32_int t (o : Shared.t) word =
  let core = Machine.core_id t.m in
  Machine.load_u32_int t.m ~shared:true (replica_addr t o ~tile:core + (4 * word))

let write_u32_int t (o : Shared.t) word v =
  let core = Machine.core_id t.m in
  Shared.mark_dirty o ~core ~lo:(4 * word) ~hi:((4 * word) + 4);
  Machine.store_u32_int t.m ~shared:true
    (replica_addr t o ~tile:core + (4 * word))
    v

let read_u8 t (o : Shared.t) i =
  let core = Machine.core_id t.m in
  Machine.load_u8 t.m ~shared:true (replica_addr t o ~tile:core + i)

let write_u8 t (o : Shared.t) i v =
  let core = Machine.core_id t.m in
  Shared.mark_dirty o ~core ~lo:i ~hi:(i + 1);
  Machine.store_u8 t.m ~shared:true (replica_addr t o ~tile:core + i) v

(* The canonical version lives in the last writer's replica (tile 0 before
   any write). *)
let peek_u32 t (o : Shared.t) word =
  let tile = if o.Shared.last_writer >= 0 then o.Shared.last_writer else 0 in
  Machine.peek_u32 t.m (replica_addr t o ~tile + (4 * word))

(* Initialization must reach every replica: there is no backing store. *)
let poke_u32 t (o : Shared.t) word v =
  let cfg = Machine.config t.m in
  for tile = 0 to cfg.Config.cores - 1 do
    Machine.poke_u32 t.m (replica_addr t o ~tile + (4 * word)) v
  done
