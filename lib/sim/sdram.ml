(* Shared SDRAM: flat byte store plus a simple contention model.

   The memory port can start a new access only when the previous one has
   released it; an access arriving while the port is busy queues.  The
   returned latency therefore grows when many cores hammer the SDRAM — the
   effect that dominates the 'no CC' bars of Fig. 8.

   The store is a flat [Mem.t].  Word/byte accessors keep an explicit
   bounds check (they can be fed arbitrary decoded addresses, and [Mem]'s
   accessors are unsafe); the line and blit paths are driven by the cache
   and DMA engines, whose addresses are validated by construction. *)

type t = {
  mem : Mem.t;
  size : int;
  word_occupancy : int;  (* port busy time per word access *)
  line_occupancy : int;  (* port busy time per line transfer *)
  mutable busy_until : int;
  mutable accesses : int;
  mutable queued_cycles : int;
}

let create ~size ~word_occupancy ~line_occupancy =
  {
    mem = Mem.create size;
    size;
    word_occupancy;
    line_occupancy;
    busy_until = 0;
    accesses = 0;
    queued_cycles = 0;
  }

let size t = t.size

let[@inline] check t addr len op =
  if addr < 0 || addr + len > t.size then invalid_arg op

(* Queuing delay for an access starting at [now] that occupies the port
   for [occupancy] cycles.  Returns the wait before service begins. *)
let contend t ~now ~occupancy =
  let wait = max 0 (t.busy_until - now) in
  t.busy_until <- now + wait + occupancy;
  t.accesses <- t.accesses + 1;
  t.queued_cycles <- t.queued_cycles + wait;
  wait

let contend_word t ~now = contend t ~now ~occupancy:t.word_occupancy
let contend_line t ~now = contend t ~now ~occupancy:t.line_occupancy

(* A burst of [lines] back-to-back line transfers: the requester queues
   once and then holds the port for the whole burst, instead of
   re-arbitrating (and potentially queuing again) per line. *)
let contend_burst t ~now ~lines =
  contend t ~now ~occupancy:(lines * t.line_occupancy)

(* Data-path operations (timing handled by the caller). *)
let read_u32_int t addr =
  check t addr 4 "Sdram.read_u32";
  Mem.get_u32_int t.mem addr

let write_u32_int t addr x =
  check t addr 4 "Sdram.write_u32";
  Mem.set_u32_int t.mem addr x

let read_u32 t addr = Int32.of_int (read_u32_int t addr)
let write_u32 t addr (v : int32) = write_u32_int t addr (Int32.to_int v)

let read_u8 t addr =
  check t addr 1 "Sdram.read_u8";
  Mem.get_u8 t.mem addr

let write_u8 t addr v =
  check t addr 1 "Sdram.write_u8";
  Mem.set_u8 t.mem addr v

let blit_to t ~addr (dst : Mem.t) ~pos ~len = Mem.blit t.mem addr dst pos len

let blit_from t ~addr (src : Mem.t) ~pos ~len =
  Mem.blit src pos t.mem addr len

let read_line t addr (dst : Mem.t) ~pos ~len = Mem.blit t.mem addr dst pos len

let write_line t addr (src : Mem.t) ~pos ~len =
  Mem.blit src pos t.mem addr len
