(* Shared SDRAM: flat byte store plus a simple contention model.

   The memory port can start a new access only when the previous one has
   released it; an access arriving while the port is busy queues.  The
   returned latency therefore grows when many cores hammer the SDRAM — the
   effect that dominates the 'no CC' bars of Fig. 8. *)

type t = {
  bytes : Bytes.t;
  word_occupancy : int;  (* port busy time per word access *)
  line_occupancy : int;  (* port busy time per line transfer *)
  mutable busy_until : int;
  mutable accesses : int;
  mutable queued_cycles : int;
}

let create ~size ~word_occupancy ~line_occupancy =
  {
    bytes = Bytes.make size '\000';
    word_occupancy;
    line_occupancy;
    busy_until = 0;
    accesses = 0;
    queued_cycles = 0;
  }

let size t = Bytes.length t.bytes

(* Queuing delay for an access starting at [now] that occupies the port
   for [occupancy] cycles.  Returns the wait before service begins. *)
let contend t ~now ~occupancy =
  let wait = max 0 (t.busy_until - now) in
  t.busy_until <- now + wait + occupancy;
  t.accesses <- t.accesses + 1;
  t.queued_cycles <- t.queued_cycles + wait;
  wait

let contend_word t ~now = contend t ~now ~occupancy:t.word_occupancy
let contend_line t ~now = contend t ~now ~occupancy:t.line_occupancy

(* A burst of [lines] back-to-back line transfers: the requester queues
   once and then holds the port for the whole burst, instead of
   re-arbitrating (and potentially queuing again) per line. *)
let contend_burst t ~now ~lines =
  contend t ~now ~occupancy:(lines * t.line_occupancy)

(* Data-path operations (timing handled by the caller). *)
let read_u32 t addr = Bytes.get_int32_le t.bytes addr
let write_u32 t addr v = Bytes.set_int32_le t.bytes addr v
let read_u8 t addr = Char.code (Bytes.get t.bytes addr)
let write_u8 t addr v = Bytes.set t.bytes addr (Char.chr (v land 0xff))

let blit_to t ~addr (dst : Bytes.t) ~pos ~len = Bytes.blit t.bytes addr dst pos len
let blit_from t ~addr (src : Bytes.t) ~pos ~len = Bytes.blit src pos t.bytes addr len

let read_line t addr (buf : Bytes.t) =
  Bytes.blit t.bytes addr buf 0 (Bytes.length buf)

let write_line t addr (buf : Bytes.t) =
  Bytes.blit buf 0 t.bytes addr (Bytes.length buf)
