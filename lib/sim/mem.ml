(* Flat byte store on a Bigarray — the backing representation of every
   simulated memory (tile-local memories, the shared SDRAM, cache line
   data).

   All indexed accessors are *unsafe*: callers are the address decoders
   and allocators, which establish bounds before any hot-path access, so
   the per-access cost is the load/store itself — no bounds check, no
   temporary buffer, no boxing beyond the [int32] result of [get_u32].
   Word access is little-endian, composed from four byte operations
   (Bigarray has no unaligned multi-byte view of a char array).

   [blit] is a manual byte loop rather than [Bigarray.Array1.sub] +
   [blit]: the sub descriptors are heap-allocated, and the loop keeps
   the simulator's steady state allocation-free. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t =
  let a = Bigarray.Array1.create Bigarray.Char Bigarray.C_layout n in
  Bigarray.Array1.fill a '\000';
  a

let length (m : t) = Bigarray.Array1.dim m

let[@inline] get_char (m : t) i = Bigarray.Array1.unsafe_get m i
let[@inline] set_char (m : t) i c = Bigarray.Array1.unsafe_set m i c
let[@inline] get_u8 (m : t) i = Char.code (Bigarray.Array1.unsafe_get m i)

let[@inline] set_u8 (m : t) i v =
  Bigarray.Array1.unsafe_set m i (Char.unsafe_chr (v land 0xff))

(* Unboxed word accessors: the value travels as a plain [int] holding
   the unsigned 32-bit pattern (reads) or any int whose low 32 bits are
   the value (writes).  The hot path — cache lines, machine loads and
   stores, the back-ends — stays entirely in immediate ints; only the
   API surface boxes an [int32]. *)
let[@inline] get_u32_int (m : t) i : int =
  let b0 = get_u8 m i
  and b1 = get_u8 m (i + 1)
  and b2 = get_u8 m (i + 2)
  and b3 = get_u8 m (i + 3) in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let[@inline] set_u32_int (m : t) i x =
  set_u8 m i x;
  set_u8 m (i + 1) (x lsr 8);
  set_u8 m (i + 2) (x lsr 16);
  set_u8 m (i + 3) (x lsr 24)

let[@inline] get_u32 (m : t) i : int32 = Int32.of_int (get_u32_int m i)
let[@inline] set_u32 (m : t) i (v : int32) = set_u32_int m i (Int32.to_int v)

let blit (src : t) src_pos (dst : t) dst_pos len =
  for k = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst (dst_pos + k)
      (Bigarray.Array1.unsafe_get src (src_pos + k))
  done

let blit_of_bytes (src : Bytes.t) src_pos (dst : t) dst_pos len =
  for k = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst (dst_pos + k)
      (Bytes.unsafe_get src (src_pos + k))
  done

let blit_to_bytes (src : t) src_pos (dst : Bytes.t) dst_pos len =
  for k = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + k)
      (Bigarray.Array1.unsafe_get src (src_pos + k))
  done

let to_bytes (src : t) ~pos ~len =
  let b = Bytes.create len in
  blit_to_bytes src pos b 0 len;
  b
