(** Flat byte store on a [Bigarray.Array1] (char, c_layout) — the
    backing representation of every simulated memory: tile-local
    memories, the shared SDRAM and cache line data.

    The indexed accessors are {e unsafe} (no bounds checks): the address
    decoders and allocators that feed them establish validity first, so
    a hot-path access costs exactly the load or store.  Word access is
    little-endian.  [blit] and friends are manual loops — no temporary
    buffers, no sub-array descriptors — keeping the simulator's steady
    state allocation-free. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-filled store of the given size in bytes. *)

val length : t -> int

val get_char : t -> int -> char
val set_char : t -> int -> char -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

val get_u32_int : t -> int -> int
(** Unboxed word read: the unsigned 32-bit pattern as a plain [int]
    (little-endian), allocation-free. *)

val set_u32_int : t -> int -> int -> unit
(** Unboxed word write; only the low 32 bits of the value are stored. *)

val get_u32 : t -> int -> int32
(** Little-endian, any alignment. *)

val set_u32 : t -> int -> int32 -> unit

val blit : t -> int -> t -> int -> int -> unit
(** [blit src src_pos dst dst_pos len]. *)

val blit_of_bytes : Bytes.t -> int -> t -> int -> int -> unit
val blit_to_bytes : t -> int -> Bytes.t -> int -> int -> unit

val to_bytes : t -> pos:int -> len:int -> Bytes.t
(** Fresh [Bytes.t] copy of a range (cold paths only — it allocates). *)
