(** Shared SDRAM: flat byte store plus a single-port contention model —
    an access arriving while the port is busy queues, which is what
    dominates the 'no CC' bars of Fig. 8 at 32 cores.

    Backed by a flat {!Mem.t}.  The word/byte accessors bounds-check
    (they can be fed arbitrary decoded addresses); line and blit paths
    are unchecked — their callers validate by construction. *)

type t

val create : size:int -> word_occupancy:int -> line_occupancy:int -> t
val size : t -> int

val contend : t -> now:int -> occupancy:int -> int
(** Queue an access starting at [now] that occupies the port for
    [occupancy] cycles; returns the wait before service begins. *)

val contend_word : t -> now:int -> int
val contend_line : t -> now:int -> int

val contend_burst : t -> now:int -> lines:int -> int
(** Queue once for a burst of [lines] back-to-back line transfers; the
    port stays held for the whole burst.  This is the batched
    cache-maintenance model selected by {!Config.t.batched_maint}. *)

val blit_to : t -> addr:int -> Mem.t -> pos:int -> len:int -> unit
(** Bulk copy out of the SDRAM byte store (data path only — the caller
    charges the timing). *)

val blit_from : t -> addr:int -> Mem.t -> pos:int -> len:int -> unit
(** Bulk copy into the SDRAM byte store (data path only). *)

val read_u32 : t -> int -> int32
val write_u32 : t -> int -> int32 -> unit

(* Unboxed variants: the word travels as a plain [int] (unsigned
   pattern on reads, low 32 bits significant on writes). *)
val read_u32_int : t -> int -> int
val write_u32_int : t -> int -> int -> unit
val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_line : t -> int -> Mem.t -> pos:int -> len:int -> unit
(** Copy an aligned line out of the store into [Mem.t] at [pos]. *)

val write_line : t -> int -> Mem.t -> pos:int -> len:int -> unit
