(** Timing and geometry parameters of the simulated many-core SoC
    (Fig. 7 of the paper: tiles with an in-order MicroBlaze-like core and
    a dual-port local memory, a write-only NoC, and a shared SDRAM behind
    per-core non-coherent caches). *)

type t = {
  cores : int;
  topology : Topology.t;
      (** Fabric shape ({!Topology.Star} by default — the seed machine).
          Non-star fabrics route messages over physical links and model
          per-link contention; see {!Topology} and [docs/TOPOLOGY.md]. *)
  dcache_sets : int;
  dcache_ways : int;
  line_bytes : int;
  dcache_hit_cycles : int;
  icache_sets : int;
  icache_ways : int;
  icache_miss_cycles : int;
  sdram_word_cycles : int;      (** uncached single-word access latency *)
  sdram_line_cycles : int;      (** cache-line refill / write-back latency *)
  sdram_word_occupancy : int;   (** port busy time per word (contention) *)
  sdram_line_occupancy : int;   (** port busy time per line (contention) *)
  local_mem_cycles : int;       (** local memory access (single-cycle LMB) *)
  local_mem_bytes : int;
  sdram_bytes : int;
      (** Shared SDRAM capacity.  A floor, not an exact size:
          {!Machine.create} grows it to 64 KiB per tile when the
          configured fabric needs more (large fabrics would otherwise
          exhaust the cached region on per-core private arenas). *)
  noc_base_cycles : int;        (** remote-write setup latency *)
  noc_hop_cycles : int;         (** additional latency per ring hop *)
  noc_word_cycles : int;        (** per-word injection/burst cost *)
  lock_local_poll_cycles : int; (** polling the local grant flag *)
  lock_transfer_cycles : int;   (** lock handover between tiles *)
  noc_multicast : bool;
      (** Batching: a DSM flush injects one multicast burst (one header
          flit plus the payload, once) instead of a unicast burst per
          destination tile. *)
  dsm_lazy_versions : bool;
      (** Batching: version-track DSM replicas so an acquire skips the
          pull when the local replica already holds the newest version,
          and an exclusive scope that never wrote does not claim
          ownership. *)
  batched_maint : bool;
      (** Batching: a range cache-maintenance operation arbitrates for
          the SDRAM port once per burst of write-backs instead of once
          per line. *)
  local_poll_backoff : int;
      (** Maximum exponential-backoff sleep when polling a word that
          lives in the polling core's local memory (DSM replicas).  Such
          polls disturb no other tile — Section VI-B — so they may poll
          tighter than {!Pmc.Api.poll_until}'s shared-memory default. *)
  fault_seed : int;
      (** Seed of the fault plane's deterministic hash stream ({!Fault}):
          same seed, same fault schedule, bit for bit. *)
  noc_drop_prob : float;
      (** Probability that a posted-write delivery attempt is dropped on
          its link.  All fault probabilities default to zero — with every
          probability at zero the fault plane is off and the simulator is
          bit-identical to the fault-free machine. *)
  noc_corrupt_prob : float;
      (** Probability of a payload corruption; the per-packet checksum
          detects it and the packet is retransmitted, so corruption never
          lands silently. *)
  noc_delay_prob : float;       (** transient extra link delay *)
  noc_delay_max : int;          (** max extra delay cycles per hit *)
  noc_retry_limit : int;
      (** Retransmissions of one packet before its link is declared dead
          and deliveries degrade to the SDRAM relay path. *)
  noc_retry_backoff : int;
      (** Base retransmit backoff in cycles; doubles per attempt, capped
          at 64× the base. *)
  noc_ack_cycles : int;         (** sender-side loss-detection turnaround *)
  sdram_error_prob : float;     (** transient read error per SDRAM access *)
  sdram_retry_limit : int;
      (** Consecutive SDRAM read errors tolerated before the access
          raises a typed {!Pmc_error.Error}. *)
  tile_stall_prob : float;      (** transient tile stall per timed access *)
  tile_stall_cycles : int;      (** max cycles of one stall *)
  farmem_bytes : int;
      (** Capacity of the far-memory tier behind SDRAM (the [farmem]
          back-end's persistence domain), redo-log region included. *)
  farmem_word_cycles : int;     (** far-memory single-word access latency *)
  farmem_word_occupancy : int;  (** far-memory port busy time per word *)
  farmem_burst_word_cycles : int; (** per-word streaming cost of a burst *)
  farmem_barrier_cycles : int;
      (** Cost of a far-memory flush barrier.  Writes reach a volatile
          device cache first and become durable only when a barrier
          drains it — the persistence domain of {!Farmem}. *)
  farmem_log : bool;
      (** Whether the [farmem] back-end commits [exit_x] through its
          redo log (failure-atomic).  [false] is a debug knob: scope
          publication degrades to word-by-word in-place writes with
          interleaved barriers, which a power cut can tear — the
          negative control the crash checker must catch. *)
  power_cut_prob : float;
      (** Probability that a run suffers a whole-machine power failure at
          a deterministic, seed-derived cycle.  Zero (the default) means
          no cut is ever scheduled and the machine is bit-identical to
          the fault-free one.  Unlike the per-access classes above, a
          non-zero value does {e not} arm the access-level fault plane
          ({!faults_enabled} stays [false]), so the pre-cut timeline of
          a crash run is bit-identical to the fault-free run. *)
  power_cut_window : int;
      (** The cut cycle is drawn uniformly from [\[1, window\]] by the
          fault hash stream (tag 5, keyed by [fault_seed]). *)
  max_cycles : int;             (** livelock watchdog *)
  seed : int;                   (** PRNG seed for workload randomness *)
}

val default : t
(** 32 tiles, 16 KiB 4-way D-caches with 32-byte lines, 16 KiB I-caches,
    24-cycle SDRAM words, single-cycle local memories. *)

val small : t
(** A 4-tile variant for tests. *)

val unbatched : t -> t
(** The same machine with every batching optimization disabled
    ([noc_multicast], [dsm_lazy_versions], [batched_maint] off and the
    conservative 512-cycle local poll backoff) — the pre-batching cost
    model used as the reference side of regression benches and of the
    batched/unbatched equivalence tests. *)

val no_faults : t -> t
(** The same machine with every fault probability at zero.  Because the
    fault plane takes no code path when disarmed,
    [no_faults (chaos ~seed t)] runs bit-identically to [t] — the
    zero-cost-when-off invariant the chaos tests and the [bench-smoke]
    CI gate assert. *)

val faults_enabled : t -> bool
(** Whether any {e per-access} fault probability is non-zero.  The power
    cut is excluded on purpose: it is one scheduled event, not a
    per-access draw, and arming it alone keeps every latency on the
    fault-free path (see {!power_cut_armed}). *)

val power_cut_armed : t -> bool
(** Whether a power cut may be scheduled ([power_cut_prob > 0]). *)

val chaos : ?intensity:float -> seed:int -> t -> t
(** The soak harness's standard fault schedule: every fault class armed,
    probabilities scaled by [intensity] (default 1.0), schedule selected
    by [seed]. *)

val crash : ?window:int -> seed:int -> t -> t
(** The crash harness's schedule: only the power cut armed
    ([power_cut_prob = 1.0]), cut cycle drawn from [\[1, window\]]
    (default: the existing [power_cut_window]) by [seed].  Every
    per-access probability is left untouched, so on a fault-free base
    config the run is bit-identical to the fault-free machine up to the
    cut. *)

val hops : t -> src:int -> dst:int -> int
(** Hop distance between two tiles on the configured fabric: ring
    distance on {!Topology.Star}, Manhattan/wrapped-Manhattan on grids,
    hub hops on hierarchical clusters. *)

val noc_latency : t -> src:int -> dst:int -> words:int -> int
val words_per_line : t -> int

val relay_latency : t -> words:int -> int
(** Latency of the degraded SDRAM relay path used once a link's
    retransmit budget is exhausted: the payload is staged through shared
    SDRAM (a write burst and a read burst) instead of crossing the dead
    link. *)
