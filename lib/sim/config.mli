(** Timing and geometry parameters of the simulated many-core SoC
    (Fig. 7 of the paper: tiles with an in-order MicroBlaze-like core and
    a dual-port local memory, a write-only NoC, and a shared SDRAM behind
    per-core non-coherent caches). *)

type t = {
  cores : int;
  dcache_sets : int;
  dcache_ways : int;
  line_bytes : int;
  dcache_hit_cycles : int;
  icache_sets : int;
  icache_ways : int;
  icache_miss_cycles : int;
  sdram_word_cycles : int;      (** uncached single-word access latency *)
  sdram_line_cycles : int;      (** cache-line refill / write-back latency *)
  sdram_word_occupancy : int;   (** port busy time per word (contention) *)
  sdram_line_occupancy : int;   (** port busy time per line (contention) *)
  local_mem_cycles : int;       (** local memory access (single-cycle LMB) *)
  local_mem_bytes : int;
  sdram_bytes : int;
  noc_base_cycles : int;        (** remote-write setup latency *)
  noc_hop_cycles : int;         (** additional latency per ring hop *)
  noc_word_cycles : int;        (** per-word injection/burst cost *)
  lock_local_poll_cycles : int; (** polling the local grant flag *)
  lock_transfer_cycles : int;   (** lock handover between tiles *)
  noc_multicast : bool;
      (** Batching: a DSM flush injects one multicast burst (one header
          flit plus the payload, once) instead of a unicast burst per
          destination tile. *)
  dsm_lazy_versions : bool;
      (** Batching: version-track DSM replicas so an acquire skips the
          pull when the local replica already holds the newest version,
          and an exclusive scope that never wrote does not claim
          ownership. *)
  batched_maint : bool;
      (** Batching: a range cache-maintenance operation arbitrates for
          the SDRAM port once per burst of write-backs instead of once
          per line. *)
  local_poll_backoff : int;
      (** Maximum exponential-backoff sleep when polling a word that
          lives in the polling core's local memory (DSM replicas).  Such
          polls disturb no other tile — Section VI-B — so they may poll
          tighter than {!Pmc.Api.poll_until}'s shared-memory default. *)
  max_cycles : int;             (** livelock watchdog *)
  seed : int;                   (** PRNG seed for workload randomness *)
}

val default : t
(** 32 tiles, 16 KiB 4-way D-caches with 32-byte lines, 16 KiB I-caches,
    24-cycle SDRAM words, single-cycle local memories. *)

val small : t
(** A 4-tile variant for tests. *)

val unbatched : t -> t
(** The same machine with every batching optimization disabled
    ([noc_multicast], [dsm_lazy_versions], [batched_maint] off and the
    conservative 512-cycle local poll backoff) — the pre-batching cost
    model used as the reference side of regression benches and of the
    batched/unbatched equivalence tests. *)

val hops : t -> src:int -> dst:int -> int
(** Ring-topology hop distance between two tiles. *)

val noc_latency : t -> src:int -> dst:int -> words:int -> int
val words_per_line : t -> int
