(** Deterministic splitmix64 PRNG — all simulation randomness is
    explicitly seeded so every run is reproducible. *)

type t

val create : int -> t
(** A stream seeded from the given integer. *)

val next_int64 : t -> int64
(** The raw 64-bit splitmix64 step. *)

val int : t -> int -> int
(** Uniform in [0, bound).  @raise Invalid_argument if bound <= 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** True with the given probability. *)

val split : t -> t
(** Derive an independent stream (e.g. one per core). *)
