(** Instrumentation hook of the simulator.

    The machine, NoC, engine and lock layers publish micro-architectural
    events (posted NoC writes, cache maintenance ranges, lock handovers,
    task lifetimes) to at most one sink per engine.  When no sink is set,
    emission costs one option check — instrumented paths stay cheap.

    The [pmc_trace] library subscribes here and merges these events with
    the annotation-level events of [Pmc.Api] into one timeline. *)

type lock_op = Acquire | Release | Acquire_ro | Release_ro
type maint_op = Wb_inval | Inval
type task_op = Spawn | Finish

type event =
  | Noc_post of {
      src : int;
      dst : int;
      off : int;
      bytes : int;
      arrival : int;
    }  (** A posted write injected at [time], landing at [arrival]. *)
  | Cache_maint of {
      core : int;
      op : maint_op;
      addr : int;
      len : int;
      lines_touched : int;
      lines_written_back : int;
    }
  | Lock of { core : int; lock : int; op : lock_op; transferred : bool }
  | Task of { core : int; op : task_op }

type sink = time:int -> event -> unit
(** Receives every event with its emission time. *)

type t

val create : unit -> t

val set : t -> sink option -> unit
(** Install or remove the sink (at most one per probe). *)

val active : t -> bool
(** Whether a sink is installed — lets callers skip building expensive
    event payloads. *)

val emit : t -> time:int -> event -> unit
(** Deliver an event to the sink, if any. *)
