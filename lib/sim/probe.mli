(** Instrumentation hook of the simulator.

    The machine, NoC, engine and lock layers publish micro-architectural
    events (posted NoC writes, cache maintenance ranges, lock handovers,
    task lifetimes) to at most one sink per engine.  When no sink is set,
    emission costs one option check — instrumented paths stay cheap.

    The [pmc_trace] library subscribes here and merges these events with
    the annotation-level events of [Pmc.Api] into one timeline. *)

type lock_op = Acquire | Release | Acquire_ro | Release_ro
type maint_op = Wb_inval | Inval
type task_op = Spawn | Finish

(** Injected faults and the resilient protocol's reactions.  [attempt]
    counts transmissions of one packet (1 = the original), [seq] is the
    per-link packet sequence number. *)
type fault =
  | F_noc_drop of { src : int; dst : int; seq : int; attempt : int }
      (** Delivery attempt lost on the link. *)
  | F_noc_corrupt of { src : int; dst : int; seq : int; attempt : int }
      (** Payload corrupted in flight; caught by the packet checksum. *)
  | F_noc_delay of { src : int; dst : int; seq : int; cycles : int }
      (** Transient extra link delay on a successful delivery. *)
  | F_noc_retry of { src : int; dst : int; seq : int; attempt : int; at : int }
      (** Retransmission scheduled at time [at] after a loss. *)
  | F_link_dead of { src : int; dst : int }
      (** Retry budget exhausted; the link degrades to the SDRAM relay. *)
  | F_noc_degraded of { src : int; dst : int; seq : int }
      (** A packet delivered through the SDRAM relay path. *)
  | F_sdram_retry of { core : int; attempt : int }
      (** Transient SDRAM read error; the access is retried. *)
  | F_tile_stall of { core : int; cycles : int }
      (** Transient stall injected into a tile. *)
  | F_lock_timeout of { core : int; lock : int; waited : int }
      (** A bounded lock acquisition gave up after [waited] cycles. *)
  | F_power_cut of { cycle : int }
      (** Whole-machine power failure: every tile dies at [cycle] and
          every non-durable byte is dropped. *)

type event =
  | Noc_post of {
      src : int;
      dst : int;
      off : int;
      bytes : int;
      arrival : int;
    }  (** A posted write injected at [time], landing at [arrival]. *)
  | Cache_maint of {
      core : int;
      op : maint_op;
      addr : int;
      len : int;
      lines_touched : int;
      lines_written_back : int;
    }
  | Lock of { core : int; lock : int; op : lock_op; transferred : bool }
  | Task of { core : int; op : task_op }
  | Fault of fault  (** An injected fault or the protocol's reaction. *)

type sink = time:int -> event -> unit
(** Receives every event with its emission time. *)

type t

val create : unit -> t

val set : t -> sink option -> unit
(** Install or remove the sink (at most one per probe). *)

val active : t -> bool
(** Whether a sink is installed — a single flag load.  Emitting call
    sites check it {e before} constructing an event record, so untraced
    runs pay one branch, not one allocation, per would-be event. *)

val emit : t -> time:int -> event -> unit
(** Deliver an event to the sink, if any. *)
