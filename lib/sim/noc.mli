(** Write-only network-on-chip (Fig. 7): cores may post writes into other
    tiles' local memories but can never read them.  Writes are posted —
    the sender pays only the injection cost; delivery happens after the
    link latency via an engine event.  Delivery is FIFO per
    (source, destination) link, like the connectionless NoC of the
    paper's platform. *)

type t

val create : Config.t -> Engine.t -> Bytes.t array -> t
(** [create cfg engine locals] — [locals] are the per-tile memories the
    NoC delivers into. *)

val post_write : t -> src:int -> dst:int -> off:int -> Bytes.t -> int
(** Post [data] to tile [dst] at offset [off]; returns the arrival time.
    The caller charges {!injection_cost}. *)

val post_multicast : t -> src:int -> dsts:int list -> off:int -> Bytes.t -> int
(** One injected burst delivers the same payload to every tile in [dsts]
    (the coalesced DSM flush).  Per-destination arrival times and the
    per-link FIFO are identical to a sequence of {!post_write}s — only
    the sender's injection cost changes, which the caller charges once
    per burst instead of once per destination.  Returns the latest
    arrival time. *)

val post_write_at :
  t -> src:int -> dst:int -> off:int -> latency:int -> Bytes.t -> int
(** Unordered variant with caller-chosen latency — the Fig. 1 machine,
    where different memories sit behind paths of different latency. *)

val injection_cost : t -> Bytes.t -> int
(** Cycles the sender stalls to inject a payload (per-word cost; the
    network latency is paid by the in-flight write, not the sender). *)

val drain_wait : t -> src:int -> int
(** Cycles until all of [src]'s posted writes have landed. *)

val outstanding : t -> src:int -> int
(** Number of [src]'s posted writes still in flight. *)
