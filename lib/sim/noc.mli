(** Write-only network-on-chip (Fig. 7): cores may post writes into other
    tiles' local memories but can never read them.  Writes are posted —
    the sender pays only the injection cost; delivery happens after the
    link latency via an engine event.  Delivery is FIFO per
    (source, destination) link, like the connectionless NoC of the
    paper's platform.

    Payloads are passed as ([Mem.t], position, length) ranges — no
    intermediate [Bytes.t].  On the fault-free path the payload is
    staged into a pooled buffer of an integer-indexed delivery arena and
    dispatched by one preallocated closure, so the steady-state
    post/deliver cycle allocates nothing.

    When the fault plane ({!Fault}) is armed, every posted write becomes
    a sequenced, checksummed packet served strictly in order by its
    link: drops and checksum-caught corruptions are retransmitted under
    capped exponential backoff, transient delays land late, and a link
    whose retry budget is exhausted is declared dead — its packets
    degrade to a staging path through the shared SDRAM
    ({!Config.relay_latency}).  Data always eventually lands; FIFO order
    per link is preserved across retries.  With the plane disarmed the
    transport is bit-identical to the fault-free one. *)

type t

val create : Config.t -> Fault.t -> Engine.t -> Mem.t array -> t
(** [create cfg fault engine locals] — [locals] are the per-tile
    memories the NoC delivers into; [fault] is the machine's fault
    plane. *)

val post_write :
  t -> src:int -> dst:int -> off:int -> Mem.t -> pos:int -> len:int -> int
(** Post [len] bytes of the given memory at [pos] to tile [dst] at
    offset [off]; returns the nominal arrival time (under faults the
    actual landing may be later).  The payload is snapshot at post time.
    The caller charges {!injection_cost}. *)

val post_multicast :
  t ->
  src:int ->
  dsts:int list ->
  off:int ->
  Mem.t ->
  pos:int ->
  len:int ->
  int
(** One injected burst delivers the same payload to every tile in [dsts]
    (the coalesced DSM flush).  Per-destination arrival times and the
    per-link FIFO are identical to a sequence of {!post_write}s — only
    the sender's injection cost changes, which the caller charges once
    per burst instead of once per destination.  Under faults each
    destination's copy fails and retries independently.  Returns the
    latest nominal arrival time. *)

val post_write_at :
  t ->
  src:int ->
  dst:int ->
  off:int ->
  latency:int ->
  Mem.t ->
  pos:int ->
  len:int ->
  int
(** Unordered variant with caller-chosen latency — the Fig. 1 machine,
    where different memories sit behind paths of different latency.
    Models a raw memory path, not the link protocol: the fault plane
    does not apply. *)

val injection_cost : t -> len:int -> int
(** Cycles the sender stalls to inject a payload of [len] bytes
    (per-word cost; the network latency is paid by the in-flight write,
    not the sender). *)

val drain_wait : t -> src:int -> int
(** Cycles until every posted write of [src] currently scheduled —
    including retransmissions and relay deliveries in flight — has
    landed.  Exact when the fault plane is off.  Under faults a
    retransmission scheduled after this call can push the horizon out,
    so a full drain must re-check {!outstanding} after waiting (which
    [Machine.noc_drain] does). *)

val outstanding : t -> src:int -> int
(** Number of [src]'s posted writes still in flight.  A write counts
    until its payload lands in the destination memory — packets queued
    for retransmission or relay delivery are still outstanding. *)

val link_dead : t -> src:int -> dst:int -> bool
(** Whether the (src, dst) link has exhausted its retry budget and
    degraded to the SDRAM relay path.  Always [false] with the fault
    plane off. *)

val fault : t -> Fault.t
(** The machine's fault plane (for counters and configuration). *)
