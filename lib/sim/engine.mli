(** Discrete-event execution engine.

    Simulated cores are ordinary OCaml functions; whenever simulated work
    costs cycles they perform a [Consume] effect, and the scheduler always
    resumes the task with the smallest virtual clock, so cores interleave
    exactly as their timing dictates.  Timed closures ([at]) share the
    event queue — the NoC uses them to deliver posted writes.

    Fully deterministic: ties in time break by creation sequence.

    {2 Scheduling structure}

    The ready queue is an {e indexed wake-wheel}: entries due within a
    fixed cycle horizon sit in per-cycle slots indexed by resume time
    (O(1) push and pop), while entries beyond the horizon wait in an
    overflow min-heap keyed on [(time, seq)] and migrate into the wheel
    as the cursor advances.  Simulated time is monotonic — nothing is
    ever scheduled in the past — so each slot's FIFO order equals
    creation-sequence order and the wheel preserves the deterministic
    [(time, seq)] dequeue order of a plain heap, bit for bit, at a
    fraction of the cost on the simulator's hot path (polling loops wake
    every few cycles). *)

type _ Effect.t += Consume : int -> unit Effect.t

exception Watchdog of int
(** A task exceeded [Config.max_cycles] — livelock guard. *)

exception Deadlock of string

type t

val create : Config.t -> t

val stats : t -> Stats.t
(** The per-core cycle accounts every [consume] writes into. *)

val probe : t -> Probe.t
(** The engine's instrumentation hook; the machine, NoC and lock layers
    emit into it, tracing tools subscribe to it. *)

val spawn : ?start:int -> t -> core:int -> (unit -> unit) -> unit
(** Start a computation on [core].  Several tasks may share a core; they
    interleave at consume points (cooperative threads). *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule a closure at an absolute time. *)

val core_id : t -> int
(** The core of the currently running task.  Must be called from within
    a spawned computation. *)

val now : t -> int
(** The current task's virtual time. *)

val consume : t -> Stats.category -> int -> unit
(** Advance the current core's clock by [n] cycles, attributed to the
    category. *)

val idle : t -> int -> unit
(** Advance the clock without statistics (pure waiting). *)

val run : t -> unit
(** Run until every task has finished and every event has fired.
    @raise Watchdog on livelock, [Deadlock] if tasks remain unrunnable. *)

val wall_time : t -> int
(** Time of the last processed entry — the run's wall-clock. *)
