(** Discrete-event execution engine.

    Simulated cores are ordinary OCaml functions; whenever simulated work
    costs cycles they perform an internal effect, and the scheduler
    always resumes the task with the smallest virtual clock, so cores
    interleave exactly as their timing dictates.  Timed closures ([at])
    share the event queue — the NoC uses them to deliver posted writes.

    Fully deterministic: ties in time break by creation sequence.

    {2 Scheduling structure}

    Pending entries live in a preallocated integer-indexed {e arena}
    with a free list (parallel time/seq/kind/payload arrays), so
    steady-state scheduling allocates nothing.  The ready queue is an
    {e indexed wake-wheel}: entries due within a fixed cycle horizon sit
    in per-cycle slots (intrusive int chains through the arena, O(1)
    push and pop), while entries beyond the horizon wait in an overflow
    min-heap of arena indices keyed on [(time, seq)] and migrate into
    the wheel as the cursor advances.  Simulated time is monotonic —
    nothing is ever scheduled in the past — so each slot's FIFO order
    equals creation-sequence order and the wheel preserves the
    deterministic [(time, seq)] dequeue order of a plain heap, bit for
    bit, at a fraction of the cost on the simulator's hot path (polling
    loops wake every few cycles).

    When an advancing task would be the very next entry popped anyway,
    [consume] skips the suspend/resume round trip entirely (burning the
    sequence number the suspension would have taken, so all later
    tie-breaks are unchanged) — the dominant case in single-task phases
    and uncontended stretches. *)

exception Watchdog of int
(** A task exceeded [Config.max_cycles] — livelock guard. *)

exception Deadlock of string

exception Power_cut of int
(** A scheduled whole-machine power failure fired at the carried cycle:
    every tile dies and every non-durable byte is dropped.  Raised out
    of {!run} by the machine's cut closure (see
    [Config.power_cut_prob]); never raised when the cut is disarmed. *)

type t

val create : Config.t -> t

val stats : t -> Stats.t
(** The per-core cycle accounts every [consume] writes into. *)

val probe : t -> Probe.t
(** The engine's instrumentation hook; the machine, NoC and lock layers
    emit into it, tracing tools subscribe to it. *)

val spawn : ?start:int -> t -> core:int -> (unit -> unit) -> unit
(** Start a computation on [core].  Several tasks may share a core; they
    interleave at consume points (cooperative threads). *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule a closure at an absolute time. *)

val live_tasks : t -> int
(** Spawned tasks that have not yet finished.  The power-cut closure
    consults this so a cut scheduled past the end of the workload is a
    no-op instead of a spurious {!Power_cut}. *)

val at_indexed : t -> time:int -> (int -> unit) -> int -> unit
(** Allocation-free variant of {!at}: schedule [fn arg] at an absolute
    time.  [fn] should be a preallocated closure — the per-event state
    travels as the [int] argument through the engine's arena, so
    scheduling it allocates nothing. *)

val core_id : t -> int
(** The core of the currently running task.  Must be called from within
    a spawned computation. *)

val now : t -> int
(** The current task's virtual time. *)

val consume : t -> Stats.category -> int -> unit
(** Advance the current core's clock by [n] cycles, attributed to the
    category. *)

val idle : t -> int -> unit
(** Advance the clock without statistics (pure waiting). *)

val poll_wait :
  t -> cat:Stats.category -> quantum:int -> pred:(unit -> bool) -> unit
(** [poll_wait t ~cat ~quantum ~pred] behaves exactly like

    {[ while not (pred ()) do consume t cat quantum done ]}

    — same stall accounting, same clock trajectory, same sequence-number
    burns, same watchdog — but once the task suspends, the scheduler
    re-evaluates [pred] itself at every wake and resumes the fiber only
    when it holds, so each failed poll costs a queue pop/push instead of
    a fiber suspend/resume round trip.

    [pred] must be {e pure with respect to the simulation}: it may read
    engine or host bookkeeping state (including {!now}) but must not
    consume cycles, access simulated memory, or mutate anything.  It is
    called both from the polling task and from the scheduler loop (with
    the task's identity installed, so {!now} and {!core_id} are valid
    either way). *)

val run : t -> unit
(** Run until every task has finished and every event has fired.
    @raise Watchdog on livelock, [Deadlock] if tasks remain unrunnable. *)

val wall_time : t -> int
(** Time of the last processed entry — the run's wall-clock. *)
