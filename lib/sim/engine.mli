(** Discrete-event execution engine.

    Simulated cores are ordinary OCaml functions; whenever simulated work
    costs cycles they perform a [Consume] effect, and the scheduler always
    resumes the task with the smallest virtual clock, so cores interleave
    exactly as their timing dictates.  Timed closures ([at]) share the
    event queue — the NoC uses them to deliver posted writes.

    Fully deterministic: ties in time break by creation sequence. *)

type _ Effect.t += Consume : int -> unit Effect.t

exception Watchdog of int
(** A task exceeded [Config.max_cycles] — livelock guard. *)

exception Deadlock of string

type t

val create : Config.t -> t
val stats : t -> Stats.t

val probe : t -> Probe.t
(** The engine's instrumentation hook; the machine, NoC and lock layers
    emit into it, tracing tools subscribe to it. *)

val spawn : ?start:int -> t -> core:int -> (unit -> unit) -> unit
(** Start a computation on [core].  Several tasks may share a core; they
    interleave at consume points (cooperative threads). *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule a closure at an absolute time. *)

val core_id : t -> int
(** The core of the currently running task.  Must be called from within
    a spawned computation. *)

val now : t -> int
(** The current task's virtual time. *)

val consume : t -> Stats.category -> int -> unit
(** Advance the current core's clock by [n] cycles, attributed to the
    category. *)

val idle : t -> int -> unit
(** Advance the clock without statistics (pure waiting). *)

val run : t -> unit
(** Run until every task has finished and every event has fired.
    @raise Watchdog on livelock, [Deadlock] if tasks remain unrunnable. *)

val wall_time : t -> int
(** Time of the last processed entry — the run's wall-clock. *)
