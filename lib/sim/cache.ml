(* Set-associative write-back, write-allocate data cache with true line
   storage.

   The cache holds its own copy of line data, so a dirty or stale line is
   really stale: another core reading the backing SDRAM does *not* see this
   core's cached writes until software writes the line back.  This is the
   non-coherence the paper's software cache coherency protocol must manage.

   Like the MicroBlaze cache described in Section V-B, the only maintenance
   operations are invalidate (discard, even if dirty) and write-back +
   invalidate; there is no way to reconcile a dirty line while keeping it.

   Storage is flat: one [Mem.t] holds every line's data (line [i] at
   offset [i * line_bytes]) and tags/dirty/LRU sit in parallel arrays, so
   an access allocates nothing — the outcome of the most recent timed
   access is an int bitmask read back via [last]. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array;              (* set * ways + way; -1 = invalid *)
  dirty_ : bool array;
  lru : int array;
  data : Mem.t;                  (* all lines, flat *)
  mutable tick : int;
  mutable last : int;            (* outcome bits of the last timed access *)
  (* Backing store callbacks: read/write a whole aligned line between the
     backing store and [line_bytes] bytes of a [Mem.t] at a position. *)
  backing_read : int -> Mem.t -> int -> unit;
  backing_write : int -> Mem.t -> int -> unit;
}

type outcome = int

let o_hit = 1
let o_refilled = 2
let o_wrote_back = 4

let[@inline] hit oc = oc land o_hit <> 0
let[@inline] refilled oc = oc land o_refilled <> 0
let[@inline] wrote_back oc = oc land o_wrote_back <> 0
let[@inline] last t = t.last

let create ~sets ~ways ~line_bytes ~backing_read ~backing_write =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  {
    sets;
    ways;
    line_bytes;
    tags = Array.make (sets * ways) (-1);
    dirty_ = Array.make (sets * ways) false;
    lru = Array.make (sets * ways) 0;
    data = Mem.create (sets * ways * line_bytes);
    tick = 0;
    last = 0;
    backing_read;
    backing_write;
  }

let line_addr t addr = addr - (addr mod t.line_bytes)
let[@inline] set_of t addr = addr / t.line_bytes mod t.sets
let[@inline] tag_of t addr = addr / t.line_bytes / t.sets

let[@inline] touch t i =
  t.tick <- t.tick + 1;
  t.lru.(i) <- t.tick

(* Index of the resident line holding [addr], or -1. *)
let find t addr =
  let base = set_of t addr * t.ways in
  let tag = tag_of t addr in
  let rec go w =
    if w >= t.ways then -1
    else if t.tags.(base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

let victim t addr =
  let base = set_of t addr * t.ways in
  (* prefer an invalid way, otherwise least recently used (ties keep the
     lowest way, matching the reference layout) *)
  let v = ref (-1) in
  let w = ref 0 in
  while !v = -1 && !w < t.ways do
    if t.tags.(base + !w) = -1 then v := base + !w;
    incr w
  done;
  if !v = -1 then begin
    v := base;
    for w = 1 to t.ways - 1 do
      if t.lru.(base + w) < t.lru.(!v) then v := base + w
    done
  end;
  !v

(* Ensure the line containing [addr] is resident; returns the line index
   and records the outcome in [last] for cycle accounting. *)
let ensure t addr =
  let i = find t addr in
  if i >= 0 then begin
    touch t i;
    t.last <- o_hit;
    i
  end
  else begin
    let i = victim t addr in
    let set = i / t.ways in
    let oc =
      if t.tags.(i) <> -1 && t.dirty_.(i) then begin
        let old_addr = ((t.tags.(i) * t.sets) + set) * t.line_bytes in
        t.backing_write old_addr t.data (i * t.line_bytes);
        o_refilled lor o_wrote_back
      end
      else o_refilled
    in
    t.backing_read (line_addr t addr) t.data (i * t.line_bytes);
    t.tags.(i) <- tag_of t addr;
    t.dirty_.(i) <- false;
    touch t i;
    t.last <- oc;
    i
  end

let load_u32_int t addr : int =
  let i = ensure t addr in
  Mem.get_u32_int t.data ((i * t.line_bytes) + (addr mod t.line_bytes))

let store_u32_int t addr x =
  let i = ensure t addr in
  Mem.set_u32_int t.data ((i * t.line_bytes) + (addr mod t.line_bytes)) x;
  t.dirty_.(i) <- true

let load_u32 t addr : int32 = Int32.of_int (load_u32_int t addr)
let store_u32 t addr (v : int32) = store_u32_int t addr (Int32.to_int v)

let load_u8 t addr : int =
  let i = ensure t addr in
  Mem.get_u8 t.data ((i * t.line_bytes) + (addr mod t.line_bytes))

let store_u8 t addr v =
  let i = ensure t addr in
  Mem.set_u8 t.data ((i * t.line_bytes) + (addr mod t.line_bytes)) v;
  t.dirty_.(i) <- true

type maint = { lines_touched : int; lines_written_back : int }

(* Iterate over the resident lines overlapping [addr, addr+len). *)
let iter_range t ~addr ~len f =
  let first = line_addr t addr in
  let last = line_addr t (addr + len - 1) in
  let a = ref first in
  while !a <= last do
    let i = find t !a in
    if i >= 0 then f !a i;
    a := !a + t.line_bytes
  done

(* Write-back + invalidate (the MicroBlaze "flush"): dirty lines go to the
   backing store, then all lines in range are discarded. *)
let wb_inval_range t ~addr ~len : maint =
  let touched = ref 0 and wrote = ref 0 in
  iter_range t ~addr ~len (fun line_a i ->
      incr touched;
      if t.dirty_.(i) then begin
        t.backing_write line_a t.data (i * t.line_bytes);
        incr wrote
      end;
      t.tags.(i) <- -1;
      t.dirty_.(i) <- false);
  { lines_touched = !touched; lines_written_back = !wrote }

(* Invalidate without write-back: cached modifications are lost. *)
let inval_range t ~addr ~len : maint =
  let touched = ref 0 in
  iter_range t ~addr ~len (fun _ i ->
      incr touched;
      t.tags.(i) <- -1;
      t.dirty_.(i) <- false);
  { lines_touched = !touched; lines_written_back = 0 }

let flush_all t : maint =
  let touched = ref 0 and wrote = ref 0 in
  for i = 0 to (t.sets * t.ways) - 1 do
    if t.tags.(i) <> -1 then begin
      incr touched;
      if t.dirty_.(i) then begin
        let a = ((t.tags.(i) * t.sets) + (i / t.ways)) * t.line_bytes in
        t.backing_write a t.data (i * t.line_bytes);
        incr wrote
      end;
      t.tags.(i) <- -1;
      t.dirty_.(i) <- false
    end
  done;
  { lines_touched = !touched; lines_written_back = !wrote }

let resident t addr = find t addr >= 0

let dirty t addr =
  let i = find t addr in
  i >= 0 && t.dirty_.(i)
