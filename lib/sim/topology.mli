(** Fabric topology of the simulated machine.

    The seed machine's tiles sit on a star/ring NoC whose latency grows
    with hop distance but whose links carry no individual state.  To
    scale past the paper's 32-tile geometry the fabric is a parameter:
    2D mesh and torus grids with XY dimension-ordered routing, and
    hierarchical clusters around local hubs (2 hops inside a cluster,
    3 between clusters).  {!Star} remains the default and is
    byte-identical to the pre-topology simulator.

    For non-star fabrics every directed physical link has a stable
    integer id: the NoC keeps a busy-until horizon per link (the
    contention model) and the fault plane draws per-link outcomes (the
    by-hop chaos addressing).  See [docs/TOPOLOGY.md] for diagrams and
    the routing/contention model. *)

type t =
  | Star  (** the seed ring: hop count = ring distance, no link state *)
  | Mesh of { x : int; y : int }  (** x×y grid, XY routing *)
  | Torus of { x : int; y : int }
      (** x×y grid with wraparound; each dimension takes the shorter way
          round, ties in the positive direction *)
  | Hier of { clusters : int; size : int }
      (** [clusters] clusters of [size] tiles, each around a local hub;
          hubs are all-to-all.  Tile [i] belongs to cluster [i / size]. *)

val to_string : t -> string
(** ["star"], ["mesh:4x8"], ["torus:16x16"], ["hier:32x32"] — the
    rendering accepted back by {!resolve} and used in bench case ids and
    job keys. *)

val resolve : string -> cores:int -> (t, string) result
(** Parse a topology name.  Accepts the bare kinds [star], [mesh],
    [torus], [hier] — the dimensioned kinds pick the near-square
    factorization of [cores] — or explicit dimensions such as
    [mesh:4x8] / [hier:32x32], which must cover exactly [cores] tiles. *)

val validate : t -> cores:int -> (t, string) result
(** Check that a topology covers exactly [cores] tiles ({!Star} covers
    any count). *)

val names : string list
(** The four topology kind names, for CLI help and error messages. *)

val tiles : t -> int
(** Tiles a dimensioned topology covers; [0] for {!Star} (any count). *)

val wrap_dist : int -> int -> int
(** [wrap_dist d len] — distance of a signed per-dimension offset [d] on
    a wraparound dimension of extent [len]: [min |d| (len - |d|)]. *)

val hops : t -> cores:int -> src:int -> dst:int -> int
(** Number of physical links on the route from [src] to [dst]: ring
    distance for {!Star}, Manhattan distance for {!Mesh}, wrapped
    Manhattan distance for {!Torus}, 2 intra-cluster / 3 inter-cluster
    for {!Hier}.  Equals the number of links {!iter_route} enumerates
    (for non-star fabrics). *)

val link_count : t -> int
(** Number of directed physical link ids ([0] for {!Star}): 4 per node
    for grids (border links of a mesh exist as ids but are never routed
    over), per-tile up/downlinks plus the all-to-all hub fabric for
    {!Hier}. *)

val iter_route : t -> cores:int -> src:int -> dst:int -> (int -> unit) -> unit
(** [iter_route t ~cores ~src ~dst f] calls [f] with each directed link
    id on the unique route from [src] to [dst], in path order.  {!Star}
    enumerates nothing — its logical (src, dst) link is identified by
    the pair itself, as in the seed machine. *)
