(** Instruction-cache model: tags only — instruction bytes are never
    needed, only hit/miss timing for the Fig. 8 I-cache stall bars. *)

type t

val create : sets:int -> ways:int -> line_bytes:int -> t

val fetch_line : t -> int -> bool
(** [fetch_line t addr] — access the line containing [addr]; returns
    whether it hit, allocating on miss (LRU). *)

val invalidate_all : t -> unit
(** Discard every tag (a cold restart; instruction memory is
    read-only, so nothing needs writing back). *)
