(** Deterministic fault-injection plane (the chaos plane).

    Every decision is a pure hash of [(Config.fault_seed, site key)]:
    the same seed produces the same fault schedule, independent of call
    order, so chaos runs are exactly reproducible.  The plane never
    touches the workload PRNG.

    When every fault probability in the config is zero, {!enabled} is
    [false] and every hook in the NoC and machine reduces to one boolean
    test — the fault-free simulator is bit-identical to a build without
    the plane (the zero-cost-when-off invariant). *)

type counts = {
  mutable noc_drops : int;
  mutable noc_corrupts : int;
  mutable noc_delays : int;
  mutable noc_retries : int;       (** retransmissions scheduled *)
  mutable links_dead : int;        (** links whose retry budget ran out *)
  mutable relay_deliveries : int;  (** packets delivered via the SDRAM relay *)
  mutable sdram_retries : int;
  mutable tile_stalls : int;
  mutable stall_cycles : int;
  mutable lock_timeouts : int;     (** typed {!Pmc_lock.Dlock} timeouts *)
  mutable noc_draws : int;
      (** How often the NoC tag consulted the hash stream (per-attempt on
          star, per-link on routed fabrics), hit or not — the
          denominator of the per-tag soak summary. *)
  mutable sdram_draws : int;       (** SDRAM-error draws *)
  mutable stall_draws : int;       (** tile-stall draws *)
  mutable power_cut_draws : int;   (** power-cut draws (one per machine) *)
  mutable power_cuts : int;        (** power cuts that actually fired *)
}

type t

val create : Config.t -> t
val enabled : t -> bool
val counts : t -> counts
val config : t -> Config.t

val checksum : Bytes.t -> int
(** FNV-1a payload checksum — the end-to-end integrity check carried by
    every resilient NoC packet. *)

type outcome = Deliver | Drop | Corrupt | Delay of int

val noc_outcome :
  t -> src:int -> dst:int -> seq:int -> attempt:int -> outcome
(** Outcome of one delivery attempt of packet [seq] on the logical
    (src, dst) link of the {!Topology.Star} fabric.  Updates
    {!counts}. *)

val route_outcome :
  t -> src:int -> dst:int -> seq:int -> attempt:int -> outcome
(** Topology-aware outcome of one delivery attempt: on {!Topology.Star}
    identical to {!noc_outcome}; on routed fabrics one independent draw
    per directed physical link of the route (the by-hop chaos
    addressing) — a drop on any link drops the packet, else a corruption
    on any link corrupts it, else per-link delays accumulate.  The
    packet-level counters tick once per attempt on every fabric. *)

val sdram_error : t -> core:int -> bool
(** Whether this SDRAM access suffers a transient read error (one fresh
    draw per call; the caller retries). *)

val tile_stall : t -> core:int -> int
(** Cycles of transient stall injected into the calling tile at this
    timed access; [0] for none. *)

val power_cut_cycle : fault_seed:int -> window:int -> int
(** The seed-derived power-cut cycle in [\[1, window\]] (hash tag 5).
    Pure in its arguments — job planners can predict the cycle a machine
    built from the same seed and window will cut at, which is what makes
    caching crash verdicts by job key sound. *)

val power_cut_at : t -> int option
(** Whether (and at which cycle) this machine's power fails.  Consulted
    once at machine construction.  [None] without touching the hash
    stream when [Config.power_cut_prob] is zero, so the disarmed machine
    schedules nothing and stays bit-identical to the fault-free one. *)

val record_power_cut : t -> unit
(** Count a cut that actually fired (the scheduled cycle was reached
    with tasks still live). *)
