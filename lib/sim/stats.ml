(* Per-core cycle accounting, matching the measurement infrastructure of
   the paper ("support to measure micro-architectural events") and the
   stall categories of Fig. 8: busy execution, private-data read stalls,
   shared-data read stalls, write stalls and instruction-cache stalls.
   Lock-spin time and flush-instruction time are tracked separately; the
   paper reports flush overhead explicitly (0.66 % / 0.00 % / 0.01 %). *)

type category =
  | Busy               (* executing instructions *)
  | Private_read_stall
  | Shared_read_stall
  | Write_stall
  | Icache_stall
  | Lock_stall         (* spinning on / transferring a lock *)
  | Flush_overhead     (* executing cache flush / copy-back operations *)

let categories =
  [ Busy; Private_read_stall; Shared_read_stall; Write_stall; Icache_stall;
    Lock_stall; Flush_overhead ]

let category_name = function
  | Busy -> "busy"
  | Private_read_stall -> "private read stall"
  | Shared_read_stall -> "shared read stall"
  | Write_stall -> "write stall"
  | Icache_stall -> "I-cache stall"
  | Lock_stall -> "lock stall"
  | Flush_overhead -> "flush overhead"

type core = {
  mutable cycles : int array;     (* per category *)
  mutable instructions : int;
  mutable dcache_hits : int;
  mutable dcache_misses : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable lock_acquires : int;
  mutable lock_transfers : int;
  mutable noc_writes : int;
  mutable noc_flits : int;
  mutable flushes : int;
}

let core_create () =
  {
    cycles = Array.make (List.length categories) 0;
    instructions = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    icache_hits = 0;
    icache_misses = 0;
    lock_acquires = 0;
    lock_transfers = 0;
    noc_writes = 0;
    noc_flits = 0;
    flushes = 0;
  }

(* Direct index per constructor — [add] sits on the engine's per-consume
   hot path, where a list walk with polymorphic equality is measurable. *)
let[@inline] index_of = function
  | Busy -> 0
  | Private_read_stall -> 1
  | Shared_read_stall -> 2
  | Write_stall -> 3
  | Icache_stall -> 4
  | Lock_stall -> 5
  | Flush_overhead -> 6

let[@inline] add (c : core) cat n =
  let i = index_of cat in
  Array.unsafe_set c.cycles i (Array.unsafe_get c.cycles i + n)

let get (c : core) cat = c.cycles.(index_of cat)
let total (c : core) = Array.fold_left ( + ) 0 c.cycles

type t = { cores : core array }

let create n = { cores = Array.init n (fun _ -> core_create ()) }
let core t i = t.cores.(i)

type summary = {
  wall_cycles : int;             (* longest per-core total *)
  per_category : (category * int) list;  (* summed over cores *)
  total_cycles : int;
  instructions : int;
  dcache_hits : int;
  dcache_misses : int;
  icache_misses : int;
  lock_acquires : int;
  lock_transfers : int;
  noc_writes : int;
  noc_flits : int;
  flushes : int;
}

let summarize (t : t) : summary =
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 t.cores in
  let per_category =
    List.map (fun cat -> (cat, sum (fun c -> get c cat))) categories
  in
  {
    wall_cycles = Array.fold_left (fun acc c -> max acc (total c)) 0 t.cores;
    per_category;
    total_cycles = sum total;
    instructions = sum (fun c -> c.instructions);
    dcache_hits = sum (fun c -> c.dcache_hits);
    dcache_misses = sum (fun c -> c.dcache_misses);
    icache_misses = sum (fun c -> c.icache_misses);
    lock_acquires = sum (fun c -> c.lock_acquires);
    lock_transfers = sum (fun c -> c.lock_transfers);
    noc_writes = sum (fun c -> c.noc_writes);
    noc_flits = sum (fun c -> c.noc_flits);
    flushes = sum (fun c -> c.flushes);
  }

let category_cycles (s : summary) cat = List.assoc cat s.per_category

(* Fraction of total core time spent in [cat], as the percentages of
   Fig. 8. *)
let fraction (s : summary) cat =
  if s.total_cycles = 0 then 0.0
  else float_of_int (category_cycles s cat) /. float_of_int s.total_cycles

let utilization s = fraction s Busy

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "wall %d cycles, %d instr, utilization %.1f%%@." s.wall_cycles
    s.instructions
    (100.0 *. utilization s);
  List.iter
    (fun (cat, cyc) ->
      Fmt.pf ppf "  %-20s %12d (%5.1f%%)@." (category_name cat) cyc
        (100.0 *. fraction s cat))
    s.per_category
