(** Set-associative write-back, write-allocate data cache with true line
    storage: a dirty or stale line is really invisible to the backing
    store until software writes it back — the non-coherence that the
    paper's protocols manage.

    Maintenance matches the MicroBlaze of Section V-B: invalidate
    (discarding dirty data) or write-back + invalidate; a dirty line
    cannot be reconciled while staying resident.

    Line data lives in one flat {!Mem.t} with tags/dirty/LRU in parallel
    arrays; a timed access allocates nothing and records its outcome as
    an int bitmask read back via {!last}. *)

type t

type outcome = int
(** What one access did, as a bitmask — query with {!hit}, {!refilled},
    {!wrote_back}. *)

val hit : outcome -> bool

val refilled : outcome -> bool
(** A line was fetched from the backing store. *)

val wrote_back : outcome -> bool
(** A dirty victim was evicted to the backing store. *)

val create :
  sets:int ->
  ways:int ->
  line_bytes:int ->
  backing_read:(int -> Mem.t -> int -> unit) ->
  backing_write:(int -> Mem.t -> int -> unit) ->
  t
(** The backing callbacks transfer whole aligned lines between the
    backing store and [line_bytes] bytes of a [Mem.t] at a position. *)

val line_addr : t -> int -> int
(** The aligned base address of the line containing an address. *)

(** {1 Timed accesses} — a store marks its line dirty (write-back); each
    access records its {!outcome} in {!last} for cycle accounting. *)

val load_u32_int : t -> int -> int
(** Unboxed variant of {!load_u32}: the unsigned 32-bit pattern as a
    plain [int] — the hot-path primitive. *)

val store_u32_int : t -> int -> int -> unit
(** Unboxed variant of {!store_u32}; low 32 bits significant. *)

val load_u32 : t -> int -> int32
val store_u32 : t -> int -> int32 -> unit
val load_u8 : t -> int -> int
val store_u8 : t -> int -> int -> unit

val last : t -> outcome
(** Outcome of the most recent timed access.  Read it immediately —
    the next access on this cache overwrites it. *)

(** Result of a maintenance operation. *)
type maint = { lines_touched : int; lines_written_back : int }

val wb_inval_range : t -> addr:int -> len:int -> maint
(** Write back dirty lines in the range, then invalidate — the MicroBlaze
    "flush". *)

val inval_range : t -> addr:int -> len:int -> maint
(** Invalidate without write-back: cached modifications are lost. *)

val flush_all : t -> maint
(** Write back and invalidate every resident line. *)

val resident : t -> int -> bool
(** Is the line containing the address currently cached? *)

val dirty : t -> int -> bool
(** Is the line containing the address resident and modified? *)
