(** Set-associative write-back, write-allocate data cache with true line
    storage: a dirty or stale line is really invisible to the backing
    store until software writes it back — the non-coherence that the
    paper's protocols manage.

    Maintenance matches the MicroBlaze of Section V-B: invalidate
    (discarding dirty data) or write-back + invalidate; a dirty line
    cannot be reconciled while staying resident. *)

type t

(** What one access did, for cycle accounting. *)
type outcome = {
  hit : bool;
  refilled : bool;     (** a line was fetched from the backing store *)
  wrote_back : bool;   (** a dirty victim was evicted to the backing store *)
}

val create :
  sets:int ->
  ways:int ->
  line_bytes:int ->
  backing_read:(int -> Bytes.t -> unit) ->
  backing_write:(int -> Bytes.t -> unit) ->
  t
(** The backing callbacks transfer whole aligned lines. *)

val line_addr : t -> int -> int
(** The aligned base address of the line containing an address. *)

(** {1 Timed accesses} — each returns what happened for cycle
    accounting; a store marks its line dirty (write-back). *)

val load_u32 : t -> int -> int32 * outcome
val store_u32 : t -> int -> int32 -> outcome
val load_u8 : t -> int -> int * outcome
val store_u8 : t -> int -> int -> outcome

(** Result of a maintenance operation. *)
type maint = { lines_touched : int; lines_written_back : int }

val wb_inval_range : t -> addr:int -> len:int -> maint
(** Write back dirty lines in the range, then invalidate — the MicroBlaze
    "flush". *)

val inval_range : t -> addr:int -> len:int -> maint
(** Invalidate without write-back: cached modifications are lost. *)

val flush_all : t -> maint
(** Write back and invalidate every resident line. *)

val resident : t -> int -> bool
(** Is the line containing the address currently cached? *)

val dirty : t -> int -> bool
(** Is the line containing the address resident and modified? *)
