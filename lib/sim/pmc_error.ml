(* Typed runtime error of the simulated platform.

   Every "impossible" condition the runtime, lock and back-end layers used
   to report with a bare [failwith] now raises [Error] with a structured
   context: which core, which shared object (by name), which operation,
   and a human-readable detail line.  Tooling (the chaos harness, the
   CLIs) can match on the exception and classify the failure instead of
   string-matching [Failure] payloads. *)

type context = {
  core : int;     (* simulated core, -1 when raised outside a task *)
  obj : string;   (* shared-object name, "" when no object is involved *)
  op : string;    (* operation that failed, e.g. "Dlock.release" *)
  detail : string;
}

exception Error of context

let pp ppf (c : context) =
  Fmt.pf ppf "%s: %s%s%s" c.op c.detail
    (if c.core >= 0 then Printf.sprintf " (core %d)" c.core else "")
    (if c.obj = "" then "" else Printf.sprintf " (object %s)" c.obj)

let to_string c = Fmt.str "%a" pp c

let raise_error ?(core = -1) ?(obj = "") ~op fmt =
  Fmt.kstr (fun detail -> raise (Error { core; obj; op; detail })) fmt

(* Install a printer so an uncaught [Error] prints its context. *)
let () =
  Printexc.register_printer (function
    | Error c -> Some ("Pmc_error.Error: " ^ to_string c)
    | _ -> None)
