(* Deterministic fault-injection plane.

   Every fault decision is a pure hash of (fault_seed, site key): the same
   seed always produces the same fault schedule regardless of call order,
   so chaos runs are exactly reproducible and a captured trace can be
   re-created from its seed alone.  The plane never touches the workload
   PRNG ([Config.seed]), so arming it perturbs only what it injects.

   When every probability in the config is zero the plane is [enabled =
   false] and every hook is a single boolean test — the fault-free
   simulator takes bit-identical code paths (the zero-cost-when-off
   invariant asserted by the chaos tests and the bench CI gate). *)

type counts = {
  mutable noc_drops : int;
  mutable noc_corrupts : int;
  mutable noc_delays : int;
  mutable noc_retries : int;       (* retransmissions scheduled by the NoC *)
  mutable links_dead : int;        (* links whose retry budget ran out *)
  mutable relay_deliveries : int;  (* packets delivered via the SDRAM relay *)
  mutable sdram_retries : int;
  mutable tile_stalls : int;
  mutable stall_cycles : int;
  mutable lock_timeouts : int;     (* typed Dlock timeouts (counted always) *)
  (* draws: how often each tag consulted the hash stream, hit or not —
     the denominator of the per-tag soak summary *)
  mutable noc_draws : int;
  mutable sdram_draws : int;
  mutable stall_draws : int;
  mutable power_cut_draws : int;
  mutable power_cuts : int;        (* cuts that actually fired *)
}

type t = {
  cfg : Config.t;
  enabled : bool;
  counts : counts;
  sdram_tick : int array;          (* per-core SDRAM access counter *)
  stall_tick : int array;          (* per-core timed-access counter *)
}

let create (cfg : Config.t) =
  {
    cfg;
    enabled = Config.faults_enabled cfg;
    counts =
      {
        noc_drops = 0; noc_corrupts = 0; noc_delays = 0; noc_retries = 0;
        links_dead = 0; relay_deliveries = 0; sdram_retries = 0;
        tile_stalls = 0; stall_cycles = 0; lock_timeouts = 0;
        noc_draws = 0; sdram_draws = 0; stall_draws = 0;
        power_cut_draws = 0; power_cuts = 0;
      };
    sdram_tick = Array.make cfg.Config.cores 0;
    stall_tick = Array.make cfg.Config.cores 0;
  }

let enabled t = t.enabled
let counts t = t.counts
let config t = t.cfg

(* ---------------- the hash stream ---------------- *)

(* splitmix64 finalizer: the site key is folded in word by word, so every
   (seed, tag, a, b, c, d) tuple draws an independent uniform value. *)
let mix64 (x : int64) =
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xFF51AFD7ED558CCDL in
  let x = Int64.logxor x (Int64.shift_right_logical x 33) in
  let x = Int64.mul x 0xC4CEB9FE1A85EC53L in
  Int64.logxor x (Int64.shift_right_logical x 33)

let fold h v = mix64 (Int64.add h (Int64.of_int v))

let site t ~tag ~a ~b ~c ~d =
  let h = mix64 (Int64.of_int (t.cfg.Config.fault_seed lxor 0x9E3779B9)) in
  fold (fold (fold (fold (fold h tag) a) b) c) d

(* Uniform float in [0, 1) from the top 53 bits. *)
let uniform h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

(* Uniform int in [0, bound) from an independent remix. *)
let pick h bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (mix64 h) 1)
                       (Int64.of_int bound))

(* ---------------- checksums ---------------- *)

(* FNV-1a over the payload — the per-packet end-to-end checksum. *)
let checksum (data : Bytes.t) =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch)))
             0x100000001b3L)
    data;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

(* ---------------- NoC outcomes ---------------- *)

type outcome = Deliver | Drop | Corrupt | Delay of int

(* Outcome of delivery attempt [attempt] of packet [seq] on link
   (src, dst).  Drop, corruption and delay are drawn independently so a
   retransmission of a dropped packet can itself be delayed. *)
let noc_outcome t ~src ~dst ~seq ~attempt =
  let cfg = t.cfg in
  t.counts.noc_draws <- t.counts.noc_draws + 1;
  let h = site t ~tag:1 ~a:src ~b:dst ~c:seq ~d:attempt in
  let u = uniform h in
  if u < cfg.Config.noc_drop_prob then begin
    t.counts.noc_drops <- t.counts.noc_drops + 1;
    Drop
  end
  else if u < cfg.Config.noc_drop_prob +. cfg.Config.noc_corrupt_prob then begin
    t.counts.noc_corrupts <- t.counts.noc_corrupts + 1;
    Corrupt
  end
  else if
    u < cfg.Config.noc_drop_prob +. cfg.Config.noc_corrupt_prob
        +. cfg.Config.noc_delay_prob
  then begin
    t.counts.noc_delays <- t.counts.noc_delays + 1;
    Delay (1 + pick h cfg.Config.noc_delay_max)
  end
  else Deliver

(* Outcome of one delivery attempt routed over the physical links of a
   non-star fabric: one independent draw per directed link of the route
   (tag 4, keyed by link id — the by-hop chaos addressing).  A drop on
   any link drops the packet; otherwise a corruption on any link
   corrupts it; otherwise per-link transient delays accumulate.  The
   packet-level counters tick once per attempt, like [noc_outcome], so
   soak summaries mean the same thing on every fabric. *)
let route_outcome t ~src ~dst ~seq ~attempt =
  match t.cfg.Config.topology with
  | Topology.Star -> noc_outcome t ~src ~dst ~seq ~attempt
  | topo ->
      let cfg = t.cfg in
      let dropped = ref false and corrupted = ref false and delay = ref 0 in
      Topology.iter_route topo ~cores:cfg.Config.cores ~src ~dst (fun link ->
          t.counts.noc_draws <- t.counts.noc_draws + 1;
          let h = site t ~tag:4 ~a:link ~b:seq ~c:attempt ~d:0 in
          let u = uniform h in
          if u < cfg.Config.noc_drop_prob then dropped := true
          else if u < cfg.Config.noc_drop_prob +. cfg.Config.noc_corrupt_prob
          then corrupted := true
          else if
            u
            < cfg.Config.noc_drop_prob +. cfg.Config.noc_corrupt_prob
              +. cfg.Config.noc_delay_prob
          then delay := !delay + 1 + pick h cfg.Config.noc_delay_max);
      if !dropped then begin
        t.counts.noc_drops <- t.counts.noc_drops + 1;
        Drop
      end
      else if !corrupted then begin
        t.counts.noc_corrupts <- t.counts.noc_corrupts + 1;
        Corrupt
      end
      else if !delay > 0 then begin
        t.counts.noc_delays <- t.counts.noc_delays + 1;
        Delay !delay
      end
      else Deliver

(* ---------------- SDRAM transient errors ---------------- *)

(* One draw per (core, access); the caller retries until clean or the
   retry budget runs out.  Each retry is a fresh access (fresh tick). *)
let sdram_error t ~core =
  let tick = t.sdram_tick.(core) in
  t.sdram_tick.(core) <- tick + 1;
  t.counts.sdram_draws <- t.counts.sdram_draws + 1;
  let hit =
    uniform (site t ~tag:2 ~a:core ~b:tick ~c:0 ~d:0)
    < t.cfg.Config.sdram_error_prob
  in
  if hit then t.counts.sdram_retries <- t.counts.sdram_retries + 1;
  hit

(* ---------------- tile stalls ---------------- *)

(* Transient stall of the calling tile, drawn per timed access; 0 = none. *)
let tile_stall t ~core =
  let tick = t.stall_tick.(core) in
  t.stall_tick.(core) <- tick + 1;
  t.counts.stall_draws <- t.counts.stall_draws + 1;
  let h = site t ~tag:3 ~a:core ~b:tick ~c:0 ~d:0 in
  if uniform h < t.cfg.Config.tile_stall_prob then begin
    let cycles = 1 + pick h t.cfg.Config.tile_stall_cycles in
    t.counts.tile_stalls <- t.counts.tile_stalls + 1;
    t.counts.stall_cycles <- t.counts.stall_cycles + cycles;
    cycles
  end
  else 0

(* ---------------- power failure ---------------- *)

(* The seed-derived cut cycle: one draw for the whole run (tag 5).  Pure
   in (fault_seed, window) so job planners can predict the cycle without
   a Fault.t — the cycle is a function of the job key. *)
let power_cut_cycle ~fault_seed ~window =
  let h = mix64 (Int64.of_int (fault_seed lxor 0x9E3779B9)) in
  let h = fold (fold (fold (fold (fold h 5) 0) 0) 0) 0 in
  1 + pick h window

(* Whether (and when) this machine's power fails.  Checked once at
   machine construction; [None] when disarmed, without consulting the
   hash stream — the disarmed machine schedules nothing and stays
   bit-identical to the fault-free one. *)
let power_cut_at t =
  if t.cfg.Config.power_cut_prob <= 0.0 then None
  else begin
    t.counts.power_cut_draws <- t.counts.power_cut_draws + 1;
    let h = site t ~tag:5 ~a:0 ~b:0 ~c:0 ~d:0 in
    if uniform h < t.cfg.Config.power_cut_prob then
      Some (power_cut_cycle ~fault_seed:t.cfg.Config.fault_seed
              ~window:t.cfg.Config.power_cut_window)
    else None
  end

let record_power_cut t = t.counts.power_cuts <- t.counts.power_cuts + 1
