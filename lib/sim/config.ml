(* Timing and geometry parameters of the simulated many-core SoC (Fig. 7 of
   the paper: tiles with a MicroBlaze-like in-order core and a dual-port
   local memory, a write-only NoC between tiles, and a shared SDRAM behind
   per-core non-coherent caches).

   The defaults echo the paper's FPGA platform class: single-cycle cache
   hits, tens of cycles to SDRAM, a couple of cycles to the local memory
   and NoC latencies that grow with hop distance. *)

type t = {
  cores : int;
  topology : Topology.t;        (* fabric shape; Star = the seed machine *)
  (* data cache *)
  dcache_sets : int;
  dcache_ways : int;
  line_bytes : int;
  dcache_hit_cycles : int;
  (* instruction cache *)
  icache_sets : int;
  icache_ways : int;
  icache_miss_cycles : int;
  (* memories *)
  sdram_word_cycles : int;      (* uncached single-word access *)
  sdram_line_cycles : int;      (* cache line refill / write-back *)
  sdram_word_occupancy : int;   (* port busy time per word (contention) *)
  sdram_line_occupancy : int;   (* port busy time per line (contention) *)
  local_mem_cycles : int;       (* dual-port local memory access (single-cycle LMB) *)
  local_mem_bytes : int;        (* per-tile local memory size *)
  sdram_bytes : int;
  (* network-on-chip *)
  noc_base_cycles : int;        (* remote write setup latency *)
  noc_hop_cycles : int;         (* additional latency per hop *)
  noc_word_cycles : int;        (* per-word cost of a burst *)
  (* locking *)
  lock_local_poll_cycles : int; (* polling the local grant flag *)
  lock_transfer_cycles : int;   (* handover between tiles over the NoC *)
  (* hot-path batching: each switch can be turned off to reproduce the
     unbatched cost model (the regression benches compare both) *)
  noc_multicast : bool;         (* one burst per flush instead of per tile *)
  dsm_lazy_versions : bool;     (* skip pulls of an up-to-date DSM replica *)
  batched_maint : bool;         (* one SDRAM arbitration per maintenance burst *)
  local_poll_backoff : int;     (* max poll backoff when spinning on a local
                                   replica (polls other tiles never see) *)
  (* fault injection: the chaos plane (see Fault).  All probabilities are
     zero by default — with every probability at zero the plane is off and
     the simulator is bit-identical to the fault-free machine. *)
  fault_seed : int;             (* seed of the fault plane's hash stream *)
  noc_drop_prob : float;        (* per delivery attempt, per link *)
  noc_corrupt_prob : float;     (* checksum-detected payload corruption *)
  noc_delay_prob : float;       (* transient extra link delay *)
  noc_delay_max : int;          (* max extra delay cycles per hit *)
  noc_retry_limit : int;        (* retransmissions before a link is dead *)
  noc_retry_backoff : int;      (* base backoff, doubles per attempt *)
  noc_ack_cycles : int;         (* sender-side loss detection turnaround *)
  sdram_error_prob : float;     (* transient read error per SDRAM access *)
  sdram_retry_limit : int;      (* consecutive errors before typed failure *)
  tile_stall_prob : float;      (* transient stall per timed access *)
  tile_stall_cycles : int;      (* max cycles of one stall *)
  (* far-memory tier (the farmem back-end's persistence domain) *)
  farmem_bytes : int;           (* capacity, log region included *)
  farmem_word_cycles : int;     (* single-word access latency *)
  farmem_word_occupancy : int;  (* port busy time per word (contention) *)
  farmem_burst_word_cycles : int; (* per-word streaming cost of a burst *)
  farmem_barrier_cycles : int;  (* flush barrier (drain the device cache) *)
  farmem_log : bool;            (* failure-atomic exit_x via the redo log;
                                   off = the deliberately tearable debug
                                   mode the crash checker must catch *)
  (* power failure: a whole-machine cut at a seed-derived cycle.  Not an
     access-level fault class — armed separately from [faults_enabled] so
     a crash-only config keeps the fault-free timing path up to the cut. *)
  power_cut_prob : float;       (* probability a run is cut at all *)
  power_cut_window : int;       (* the cut cycle is drawn from [1, window] *)
  (* simulation *)
  max_cycles : int;             (* watchdog against livelock *)
  seed : int;                   (* PRNG seed for workload randomness *)
}

let default =
  {
    cores = 32;
    topology = Topology.Star;
    dcache_sets = 128;
    dcache_ways = 4;
    line_bytes = 32;
    dcache_hit_cycles = 1;
    icache_sets = 512;
    icache_ways = 1;
    icache_miss_cycles = 20;
    sdram_word_cycles = 24;
    sdram_line_cycles = 30;
    sdram_word_occupancy = 1;
    sdram_line_occupancy = 2;
    local_mem_cycles = 1;
    local_mem_bytes = 64 * 1024;
    sdram_bytes = 8 * 1024 * 1024;
    noc_base_cycles = 10;
    noc_hop_cycles = 1;
    noc_word_cycles = 1;
    lock_local_poll_cycles = 4;
    lock_transfer_cycles = 30;
    noc_multicast = true;
    dsm_lazy_versions = true;
    batched_maint = true;
    local_poll_backoff = 64;
    fault_seed = 1;
    noc_drop_prob = 0.0;
    noc_corrupt_prob = 0.0;
    noc_delay_prob = 0.0;
    noc_delay_max = 64;
    noc_retry_limit = 6;
    noc_retry_backoff = 8;
    noc_ack_cycles = 4;
    sdram_error_prob = 0.0;
    sdram_retry_limit = 8;
    tile_stall_prob = 0.0;
    tile_stall_cycles = 400;
    farmem_bytes = 1024 * 1024;
    farmem_word_cycles = 60;
    farmem_word_occupancy = 4;
    farmem_burst_word_cycles = 4;
    farmem_barrier_cycles = 120;
    farmem_log = true;
    power_cut_prob = 0.0;
    power_cut_window = 1_000_000;
    max_cycles = 2_000_000_000;
    seed = 42;
  }

let small = { default with cores = 4; sdram_bytes = 1024 * 1024 }

(* Disable every batching optimization: the pre-batching cost model, used
   as the reference side of regression benches and equivalence tests. *)
let unbatched t =
  {
    t with
    noc_multicast = false;
    dsm_lazy_versions = false;
    batched_maint = false;
    local_poll_backoff = 512;
  }

(* Disarm the fault plane: every probability back to zero.  With the
   plane off the simulator takes the exact fault-free code paths, so
   [no_faults (chaos ~seed t)] runs bit-identically to [t]. *)
let no_faults t =
  {
    t with
    noc_drop_prob = 0.0;
    noc_corrupt_prob = 0.0;
    noc_delay_prob = 0.0;
    sdram_error_prob = 0.0;
    tile_stall_prob = 0.0;
    power_cut_prob = 0.0;
  }

(* The per-access fault classes.  The power cut is deliberately excluded:
   it is a single scheduled event, not a per-access draw, and arming it
   alone must leave the access-level plane (and so every latency) on the
   fault-free path — the pre-cut timeline of a crash run is bit-identical
   to the fault-free run. *)
let faults_enabled t =
  t.noc_drop_prob > 0.0 || t.noc_corrupt_prob > 0.0
  || t.noc_delay_prob > 0.0 || t.sdram_error_prob > 0.0
  || t.tile_stall_prob > 0.0

let power_cut_armed t = t.power_cut_prob > 0.0

(* The standard chaos schedule of the soak harness: every fault class
   armed, scaled by [intensity] (1.0 = the default mix).  [seed] selects
   the deterministic fault schedule — same seed, same faults. *)
let chaos ?(intensity = 1.0) ~seed t =
  let p base = min 0.9 (base *. intensity) in
  {
    t with
    fault_seed = seed;
    noc_drop_prob = p 0.03;
    noc_corrupt_prob = p 0.015;
    noc_delay_prob = p 0.05;
    sdram_error_prob = p 0.01;
    tile_stall_prob = p 0.002;
  }

(* The crash harness's schedule: only the power cut armed, so the run is
   bit-identical to the fault-free machine up to the cut cycle.  [window]
   bounds the seed-derived cut cycle; pick the fault-free wall time of
   the same workload so the cut lands mid-run. *)
let crash ?window ~seed t =
  {
    t with
    fault_seed = seed;
    power_cut_prob = 1.0;
    power_cut_window = Option.value ~default:t.power_cut_window window;
  }

(* Number of NoC hops between two tiles.  On the default Star fabric
   this is the bidirectional-ring distance of the paper's platform [16];
   the other fabrics route per Topology (XY for grids, via hubs for
   hierarchical clusters). *)
let hops t ~src ~dst = Topology.hops t.topology ~cores:t.cores ~src ~dst

let noc_latency t ~src ~dst ~words =
  t.noc_base_cycles + (t.noc_hop_cycles * hops t ~src ~dst)
  + (t.noc_word_cycles * words)

let words_per_line t = t.line_bytes / 4

(* Latency of the degraded SDRAM relay path: when a link's retransmit
   budget is exhausted, replication data is staged through the shared
   SDRAM (write burst by the sender's adapter, read burst by the
   receiver's) instead of crossing the dead link — the SWCC-style
   fallback.  Mirrors the SPM DMA burst model: one SDRAM latency plus a
   per-word streaming cost, paid twice. *)
let relay_latency t ~words =
  2 * (t.sdram_word_cycles + (2 * words))
