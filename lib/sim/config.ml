(* Timing and geometry parameters of the simulated many-core SoC (Fig. 7 of
   the paper: tiles with a MicroBlaze-like in-order core and a dual-port
   local memory, a write-only NoC between tiles, and a shared SDRAM behind
   per-core non-coherent caches).

   The defaults echo the paper's FPGA platform class: single-cycle cache
   hits, tens of cycles to SDRAM, a couple of cycles to the local memory
   and NoC latencies that grow with hop distance. *)

type t = {
  cores : int;
  (* data cache *)
  dcache_sets : int;
  dcache_ways : int;
  line_bytes : int;
  dcache_hit_cycles : int;
  (* instruction cache *)
  icache_sets : int;
  icache_ways : int;
  icache_miss_cycles : int;
  (* memories *)
  sdram_word_cycles : int;      (* uncached single-word access *)
  sdram_line_cycles : int;      (* cache line refill / write-back *)
  sdram_word_occupancy : int;   (* port busy time per word (contention) *)
  sdram_line_occupancy : int;   (* port busy time per line (contention) *)
  local_mem_cycles : int;       (* dual-port local memory access (single-cycle LMB) *)
  local_mem_bytes : int;        (* per-tile local memory size *)
  sdram_bytes : int;
  (* network-on-chip *)
  noc_base_cycles : int;        (* remote write setup latency *)
  noc_hop_cycles : int;         (* additional latency per hop *)
  noc_word_cycles : int;        (* per-word cost of a burst *)
  (* locking *)
  lock_local_poll_cycles : int; (* polling the local grant flag *)
  lock_transfer_cycles : int;   (* handover between tiles over the NoC *)
  (* hot-path batching: each switch can be turned off to reproduce the
     unbatched cost model (the regression benches compare both) *)
  noc_multicast : bool;         (* one burst per flush instead of per tile *)
  dsm_lazy_versions : bool;     (* skip pulls of an up-to-date DSM replica *)
  batched_maint : bool;         (* one SDRAM arbitration per maintenance burst *)
  local_poll_backoff : int;     (* max poll backoff when spinning on a local
                                   replica (polls other tiles never see) *)
  (* simulation *)
  max_cycles : int;             (* watchdog against livelock *)
  seed : int;                   (* PRNG seed for workload randomness *)
}

let default =
  {
    cores = 32;
    dcache_sets = 128;
    dcache_ways = 4;
    line_bytes = 32;
    dcache_hit_cycles = 1;
    icache_sets = 512;
    icache_ways = 1;
    icache_miss_cycles = 20;
    sdram_word_cycles = 24;
    sdram_line_cycles = 30;
    sdram_word_occupancy = 1;
    sdram_line_occupancy = 2;
    local_mem_cycles = 1;
    local_mem_bytes = 64 * 1024;
    sdram_bytes = 8 * 1024 * 1024;
    noc_base_cycles = 10;
    noc_hop_cycles = 1;
    noc_word_cycles = 1;
    lock_local_poll_cycles = 4;
    lock_transfer_cycles = 30;
    noc_multicast = true;
    dsm_lazy_versions = true;
    batched_maint = true;
    local_poll_backoff = 64;
    max_cycles = 2_000_000_000;
    seed = 42;
  }

let small = { default with cores = 4; sdram_bytes = 1024 * 1024 }

(* Disable every batching optimization: the pre-batching cost model, used
   as the reference side of regression benches and equivalence tests. *)
let unbatched t =
  {
    t with
    noc_multicast = false;
    dsm_lazy_versions = false;
    batched_maint = false;
    local_poll_backoff = 512;
  }

(* Number of NoC hops between two tiles: tiles on a bidirectional ring,
   matching the connectionless NoC of the paper's platform [16]. *)
let hops t ~src ~dst =
  let d = abs (src - dst) in
  min d (t.cores - d)

let noc_latency t ~src ~dst ~words =
  t.noc_base_cycles + (t.noc_hop_cycles * hops t ~src ~dst)
  + (t.noc_word_cycles * words)

let words_per_line t = t.line_bytes / 4
