(** Typed runtime error of the simulated platform.

    Replaces the bare [failwith]s of the runtime, lock and back-end
    layers: the exception carries the core, the shared object's name and
    the failing operation, so tools (the chaos soak harness, the CLIs)
    can classify failures instead of string-matching [Failure]. *)

type context = {
  core : int;     (** simulated core, [-1] when raised outside a task *)
  obj : string;   (** shared-object name, [""] when none is involved *)
  op : string;    (** operation that failed, e.g. ["Dlock.release"] *)
  detail : string;
}

exception Error of context

val raise_error :
  ?core:int -> ?obj:string -> op:string ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error ~core ~obj ~op fmt ...] raises {!Error} with the
    formatted detail string. *)

val pp : Format.formatter -> context -> unit
val to_string : context -> string
