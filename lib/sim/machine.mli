(** The simulated many-core SoC of Fig. 7: tiles with in-order cores,
    private write-back D-caches and I-caches in front of a shared SDRAM,
    per-tile local memories, and a write-only NoC.

    Address space (flat integers):
    cached SDRAM at the bottom, uncached SDRAM above it, and the tiles'
    local memories at [local_addr].  Each local memory is split into a
    DSM region (objects replicated at a common offset on every tile) and
    an SPM arena (stack-allocated scratch-pad space).

    All timed operations must be called from within a task spawned on
    this machine. *)

type t

val private_bytes : int
(** Size of each core's private arena (stack/heap stand-in). *)

val create : Config.t -> t

val config : t -> Config.t
val engine : t -> Engine.t

val fault : t -> Fault.t
(** The machine's fault plane — counters, configuration, and the draws
    the NoC and timed accesses consult (see {!Fault}). *)

val farmem : t -> Farmem.t
(** The far-memory tier behind SDRAM (the [farmem] back-end's
    persistence domain), created on first use — a machine that never
    asks for it allocates nothing. *)

val farmem_opt : t -> Farmem.t option
(** The far-memory tier if some back-end already instantiated it —
    what the crash checker snapshots a durable image from without
    accidentally creating a device on a machine that has none. *)

val link_dead : t -> src:int -> dst:int -> bool
(** Whether the (src, dst) NoC link has exhausted its retry budget and
    degraded to the SDRAM relay path (always [false] with the fault
    plane off) — back-ends consult this to pick degraded protocols. *)

val stats : t -> Stats.t

val probe : t -> Probe.t
(** The engine's instrumentation hook (see {!Probe}). *)

val spawn : ?start:int -> t -> core:int -> (unit -> unit) -> unit
val run : t -> unit
val core_id : t -> int
val now : t -> int

(** {1 Allocation} *)

val alloc_cached : t -> bytes:int -> int
(** Cache-line aligned; objects never share a line (Section V-B). *)

val alloc_uncached : t -> bytes:int -> int

val alloc_dsm : t -> bytes:int -> int
(** A common local-memory offset, valid on every tile. *)

val spm_alloc : t -> core:int -> bytes:int -> int
val spm_mark : t -> core:int -> int
val spm_release : t -> core:int -> int -> unit

(** {1 Address decoding} *)

type place =
  | Cached_sdram of int
  | Uncached_sdram of int
  | Local of { tile : int; off : int }

val local_addr : t -> tile:int -> off:int -> int
val decode : t -> int -> place

(** {1 Timed accesses} *)

exception Remote_read of { core : int; tile : int }
(** Reading another tile's local memory is impossible on the write-only
    interconnect. *)

val load_u32_int : t -> shared:bool -> int -> int
(** Unboxed variant of {!load_u32}: the unsigned 32-bit pattern as a
    plain [int] — the hot-path primitive (no [int32] box). *)

val store_u32_int : t -> shared:bool -> int -> int -> unit
(** Unboxed variant of {!store_u32}; low 32 bits significant. *)

val load_u32 : t -> shared:bool -> int -> int32
(** Timed load; [shared] selects the Fig. 8 stall category.  Cached SDRAM
    goes through the core's D-cache; uncached pays the contended SDRAM
    round trip; own local memory is fast. @raise Remote_read on remote
    local addresses. *)

val store_u32 : t -> shared:bool -> int -> int32 -> unit
(** Timed store.  A store to a remote local memory is a posted NoC write:
    the core pays only the injection cost. *)

val load_u8 : t -> shared:bool -> int -> int
(** Byte load — "in general, only bytes are indivisible" (Sec. IV-A). *)

val store_u8 : t -> shared:bool -> int -> int -> unit

val store_u32_remote_raw :
  t -> dst:int -> off:int -> latency:int -> int32 -> unit
(** Unordered remote write with explicit latency — the Fig. 1 machine. *)

val noc_push : t -> dst:int -> src_off:int -> dst_off:int -> len:int -> unit
(** Post a chunk of this core's local memory to another tile (the DSM
    replication primitive). *)

val noc_push_multi :
  t -> dsts:int list -> src_off:int -> dst_off:int -> len:int -> int
(** Replicate a chunk of this core's local memory into every tile of
    [dsts] (the coalesced DSM flush).  With {!Config.t.noc_multicast}
    the sender injects one multicast burst — one header flit plus the
    payload, one injection stall — and the NoC fans it out with delivery
    semantics identical to per-destination {!noc_push}es; with the switch
    off it degrades to exactly those unicast pushes.  Destinations equal
    to the calling core are ignored.  Returns the latest arrival time
    across destinations ([now] if there are none). *)

val noc_drain : t -> unit
(** Stall until all of this core's posted writes have landed — under
    faults this includes retransmissions and relay deliveries scheduled
    while waiting; the drain loops until {!Noc.outstanding} reaches
    zero. *)

(** {1 DMA staging (SPM back-end)} *)

val blit_sdram_to_local :
  t -> core:int -> sdram:int -> off:int -> len:int -> unit
(** Bulk-copy [len] bytes of SDRAM at [sdram] into tile [core]'s local
    memory at offset [off] — the SPM staging data path.  Untimed; the
    caller charges the burst (see {!Config.t.batched_maint}). *)

val blit_local_to_sdram :
  t -> core:int -> off:int -> sdram:int -> len:int -> unit
(** Bulk-copy local memory back to SDRAM (the SPM write-back path). *)

val blit_farmem_to_local :
  t -> core:int -> far:int -> off:int -> len:int -> unit
(** Bulk-copy [len] bytes of durable far memory at [far] into tile
    [core]'s local memory at [off] — the farmem staging data path.
    Reads serve committed (durable) data only.  Untimed; the caller
    charges the burst. *)

val blit_local_to_farmem :
  t -> core:int -> off:int -> far:int -> len:int -> unit
(** Bulk-copy local memory into the far-memory device cache; the bytes
    become durable only at the next {!Farmem.barrier}. *)

val sdram_word_wait : t -> int
(** Arbitrate for the SDRAM port for one word access and return the
    queuing wait — the per-word staging model used when
    {!Config.t.batched_maint} is off. *)

(** {1 Cache maintenance} *)

val wb_inval_range : t -> addr:int -> len:int -> unit
(** The MicroBlaze flush: write back + invalidate this core's lines in the
    range; cycles are charged as {!Stats.Flush_overhead}. *)

val inval_range : t -> addr:int -> len:int -> unit

(** {1 Instruction stream} *)

val set_code : t -> core:int -> footprint:int -> jump_prob:float -> unit
(** Configure the synthetic instruction stream of a core: code size and
    per-line taken-jump probability. *)

val instr : t -> int -> unit
(** Execute n instructions: one busy cycle each plus I-cache miss stalls,
    walking the configured footprint through a real I-cache model. *)

val busy : t -> int -> unit
(** Pure busy work without I-cache modelling. *)

(** {1 Private data} *)

val private_load : t -> int -> int32
(** Word [idx] of this core's private arena, through the D-cache —
    the "private data" traffic of Fig. 8. *)

val private_store : t -> int -> int32 -> unit

(** {1 Untimed debug access and atomics} *)

val peek_u32 : t -> int -> int32
(** Read backing storage directly, bypassing caches and timing (tests and
    initialization only). *)

val poke_u32 : t -> int -> int32 -> unit
val dcache : t -> core:int -> Cache.t

val uncached_tas : t -> int -> int32
(** Atomic test-and-set on an uncached SDRAM word; the RMW holds the
    memory port, making spinlocks expensive under contention. *)
