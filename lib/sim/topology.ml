(* Fabric topology of the simulated machine.

   The paper's platform connects its 32 tiles by a connectionless NoC
   that behaves like a star/ring: latency grows with hop distance but
   links are never modelled individually.  To scale the machine past the
   paper's geometry the fabric itself becomes a parameter:

     - [Star]   the seed topology: tiles on a bidirectional ring, hop
                count = ring distance, no per-link state.  This is the
                default and is byte-identical to the pre-topology
                simulator (the star goldens pin it).
     - [Mesh]   x × y grid, XY (dimension-ordered) routing: all X steps
                first, then all Y steps.  Deadlock-free and determinate.
     - [Torus]  mesh with wraparound links; each dimension takes the
                shorter way round (ties go the positive direction).
     - [Hier]   clusters of tiles around local hubs: a message climbs to
                its cluster hub, crosses the all-to-all hub fabric when
                the destination is remote, and descends — 2 hops inside
                a cluster, 3 between clusters.

   For the non-star fabrics every *directed physical link* has a stable
   integer id, so the NoC can keep a busy-until horizon per link (the
   contention model) and the fault plane can draw per-link outcomes (the
   by-hop chaos addressing).  [iter_route] enumerates the link ids of the
   unique route from src to dst, in path order; [hops] equals the number
   of links enumerated.  Star enumerates nothing: its logical link is
   identified by the (src, dst) pair itself, as in the seed. *)

type t =
  | Star
  | Mesh of { x : int; y : int }
  | Torus of { x : int; y : int }
  | Hier of { clusters : int; size : int }

let to_string = function
  | Star -> "star"
  | Mesh { x; y } -> Printf.sprintf "mesh:%dx%d" x y
  | Torus { x; y } -> Printf.sprintf "torus:%dx%d" x y
  | Hier { clusters; size } -> Printf.sprintf "hier:%dx%d" clusters size

let tiles = function
  | Star -> 0 (* any core count *)
  | Mesh { x; y } | Torus { x; y } -> x * y
  | Hier { clusters; size } -> clusters * size

let validate t ~cores =
  match t with
  | Star -> Ok t
  | _ ->
      if tiles t = cores then Ok t
      else
        Error
          (Printf.sprintf "topology %s covers %d tiles, machine has %d"
             (to_string t) (tiles t) cores)

(* Largest divisor of [n] at most sqrt(n): the near-square factorization
   used when a dimensioned topology is requested without dimensions. *)
let near_square n =
  let d = ref 1 in
  let i = ref 1 in
  while !i * !i <= n do
    if n mod !i = 0 then d := !i;
    incr i
  done;
  (!d, n / !d)

let parse_dims s =
  match String.index_opt s 'x' with
  | None -> None
  | Some i -> (
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a >= 1 && b >= 1 -> Some (a, b)
      | _ -> None)

let resolve name ~cores =
  let dimensioned mk = function
    | None ->
        let a, b = near_square cores in
        validate (mk a b) ~cores
    | Some spec -> (
        match parse_dims spec with
        | Some (a, b) -> validate (mk a b) ~cores
        | None ->
            Error
              (Printf.sprintf "bad topology dimensions %S (want AxB)" spec))
  in
  let kind, spec =
    match String.index_opt name ':' with
    | None -> (name, None)
    | Some i ->
        ( String.sub name 0 i,
          Some (String.sub name (i + 1) (String.length name - i - 1)) )
  in
  match (kind, spec) with
  | "star", None -> Ok Star
  | "star", Some _ -> Error "star takes no dimensions"
  | "mesh", spec -> dimensioned (fun x y -> Mesh { x; y }) spec
  | "torus", spec -> dimensioned (fun x y -> Torus { x; y }) spec
  | "hier", spec ->
      dimensioned (fun clusters size -> Hier { clusters; size }) spec
  | _ ->
      Error
        (Printf.sprintf
           "unknown topology %S (star|mesh[:XxY]|torus[:XxY]|hier[:CxS])"
           name)

let names = [ "star"; "mesh"; "torus"; "hier" ]

(* ---------------- hop distance ---------------- *)

(* Per-dimension torus step count: the shorter way round. *)
let wrap_dist d len =
  let d = abs d in
  min d (len - d)

let hops t ~cores ~src ~dst =
  match t with
  | Star ->
      (* the seed's ring distance, verbatim — Config.hops dispatches here
         and the star goldens pin the result *)
      let d = abs (src - dst) in
      min d (cores - d)
  | Mesh { x; _ } ->
      abs ((src mod x) - (dst mod x)) + abs ((src / x) - (dst / x))
  | Torus { x; y } ->
      wrap_dist ((src mod x) - (dst mod x)) x
      + wrap_dist ((src / x) - (dst / x)) y
  | Hier { size; _ } ->
      if src = dst then 0
      else if src / size = dst / size then 2 (* up to the hub, down *)
      else 3 (* up, across the hub fabric, down *)

(* ---------------- directed link ids ---------------- *)

(* Mesh/torus: four outgoing links per node, id [4*node + dir] with
   dir 0 = +x, 1 = -x, 2 = +y, 3 = -y (border links of a mesh exist as
   ids but are never routed over).  Hier: tile→hub uplink [tile],
   hub→tile downlink [tiles + tile], hub a → hub b [2*tiles +
   a*clusters + b]. *)
let link_count t =
  match t with
  | Star -> 0
  | Mesh { x; y } | Torus { x; y } -> 4 * x * y
  | Hier { clusters; size } ->
      (2 * clusters * size) + (clusters * clusters)

(* One grid step from [node] toward [tx] in x (or [ty] in y), torus-aware.
   Returns (link id, next node). *)
let grid_step ~x ~y ~wrap node ~tx ~ty =
  let cx = node mod x and cy = node / x in
  if cx <> tx then begin
    let d = tx - cx in
    let forward = if wrap then wrap_dist d x = (x + d) mod x else d > 0 in
    if forward then ((4 * node) + 0, (cy * x) + ((cx + 1) mod x))
    else ((4 * node) + 1, (cy * x) + ((cx - 1 + x) mod x))
  end
  else begin
    let d = ty - cy in
    let forward = if wrap then wrap_dist d y = (y + d) mod y else d > 0 in
    if forward then ((4 * node) + 2, (((cy + 1) mod y) * x) + cx)
    else ((4 * node) + 3, (((cy - 1 + y) mod y) * x) + cx)
  end

let iter_route t ~cores ~src ~dst f =
  match t with
  | Star -> ignore cores
  | Mesh { x; y } | Torus { x; y } ->
      let wrap = match t with Torus _ -> true | _ -> false in
      let tx = dst mod x and ty = dst / x in
      let node = ref src in
      while !node <> dst do
        let link, next = grid_step ~x ~y ~wrap !node ~tx ~ty in
        f link;
        node := next
      done
  | Hier { clusters; size } ->
      if src <> dst then begin
        let tiles = clusters * size in
        let a = src / size and b = dst / size in
        f src; (* uplink to cluster hub *)
        if a <> b then f ((2 * tiles) + (a * clusters) + b);
        f (tiles + dst) (* downlink from the destination's hub *)
      end
