(* The simulated many-core SoC of Fig. 7: [cores] tiles, each with an
   in-order core, a private write-back D-cache and I-cache in front of a
   shared SDRAM, a dual-port local memory, and a write-only NoC that lets
   any core post writes into any other tile's local memory.

   Address space (flat integers):
     [0, uncached_base)             cached SDRAM
     [uncached_base, sdram_bytes)   uncached SDRAM
     [local_base + i*stride, +len)  tile i local memory

   Each tile's local memory is split into a DSM region (objects replicated
   at a common offset on every tile) and an SPM arena (scratch-pad
   allocations with stack discipline).

   Data movement happens at the *start* of an access's latency window;
   cycle costs are consumed afterwards.  This keeps the simulation
   deterministic and single-threaded while cores interleave at every
   consume point.

   All memories are flat [Mem.t] stores and the timed access paths below
   decode addresses inline (no [place] construction), read cache
   outcomes as int bitmasks, and stage NoC payloads into reusable
   buffers — a steady-state access allocates nothing but the boxed
   [int32] a load returns. *)

type code_state = {
  mutable pc : int;
  mutable footprint : int;     (* code size in bytes *)
  mutable jump_prob : float;   (* probability of a taken jump per line *)
  prng : Prng.t;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  fault : Fault.t;
  sdram : Sdram.t;
  dcaches : Cache.t array;
  icaches : Icache.t array;
  locals : Mem.t array;
  noc : Noc.t;
  uncached_base : int;
  local_base : int;
  dsm_region_bytes : int;
  mutable cached_brk : int;
  mutable uncached_brk : int;
  mutable dsm_brk : int;         (* common offset across all tiles *)
  spm_sp : int array;            (* per-tile SPM stack pointer *)
  private_base : int array;      (* per-core private arena (cached SDRAM) *)
  code : code_state array;
  scratch : Mem.t;               (* staging for single-word posted writes *)
  staging : Mem.t array;         (* per-core NoC push staging, grown on use *)
  mutable farmem : Farmem.t option;  (* far-memory tier, created on demand *)
}

let private_bytes = 16 * 1024

let create (cfg : Config.t) : t =
  (* The cached region (half the SDRAM) must hold every tile's private
     arena plus shared-object headroom, so the SDRAM grows with the
     fabric: 64 KiB per tile, floored at the configured size.  The
     default 8 MiB covers up to 128 tiles unchanged (the seed machine
     and every golden run); a 1024-tile fabric gets 64 MiB. *)
  let cfg =
    let need = 4 * cfg.Config.cores * private_bytes in
    if cfg.Config.sdram_bytes >= need then cfg
    else { cfg with Config.sdram_bytes = need }
  in
  let engine = Engine.create cfg in
  let fault = Fault.create cfg in
  let sdram =
    Sdram.create ~size:cfg.sdram_bytes
      ~word_occupancy:cfg.sdram_word_occupancy
      ~line_occupancy:cfg.sdram_line_occupancy
  in
  let dcaches =
    Array.init cfg.cores (fun _ ->
        Cache.create ~sets:cfg.dcache_sets ~ways:cfg.dcache_ways
          ~line_bytes:cfg.line_bytes
          ~backing_read:(fun addr dst pos ->
            Sdram.read_line sdram addr dst ~pos ~len:cfg.line_bytes)
          ~backing_write:(fun addr src pos ->
            Sdram.write_line sdram addr src ~pos ~len:cfg.line_bytes))
  in
  let icaches =
    Array.init cfg.cores (fun _ ->
        Icache.create ~sets:cfg.icache_sets ~ways:cfg.icache_ways
          ~line_bytes:cfg.line_bytes)
  in
  let locals = Array.init cfg.cores (fun _ -> Mem.create cfg.local_mem_bytes) in
  let noc = Noc.create cfg fault engine locals in
  let seed_prng = Prng.create cfg.seed in
  let code =
    Array.init cfg.cores (fun _ ->
        { pc = 0; footprint = 8 * 1024; jump_prob = 0.05;
          prng = Prng.split seed_prng })
  in
  let uncached_base = cfg.sdram_bytes / 2 in
  let m =
    {
      cfg;
      engine;
      fault;
      sdram;
      dcaches;
      icaches;
      locals;
      noc;
      uncached_base;
      local_base = 0x1000_0000;
      dsm_region_bytes = cfg.local_mem_bytes / 2;
      cached_brk = 0;
      uncached_brk = uncached_base;
      dsm_brk = 0;
      spm_sp = Array.make cfg.cores (cfg.local_mem_bytes / 2);
      private_base = Array.make cfg.cores 0;
      code;
      scratch = Mem.create 8;
      staging = Array.init cfg.cores (fun _ -> Mem.create 64);
      farmem = None;
    }
  in
  (* carve out per-core private arenas from the cached region *)
  Array.iteri
    (fun i _ ->
      m.private_base.(i) <- m.cached_brk + (i * private_bytes))
    m.private_base;
  m.cached_brk <- m.cached_brk + (cfg.cores * private_bytes);
  (* Power failure (the chaos plane's tag 5): when armed, one closure at
     the seed-derived cut cycle kills the whole machine by raising
     [Engine.Power_cut] out of [Engine.run] — unless every task already
     finished, in which case the run simply completed before the cut.
     Nothing is scheduled when disarmed, so the disarmed machine's event
     sequence (and hence every tie-break) is bit-identical to the
     fault-free one. *)
  (match Fault.power_cut_at fault with
  | None -> ()
  | Some cut ->
      Engine.at engine ~time:cut (fun () ->
          if Engine.live_tasks engine > 0 then begin
            Fault.record_power_cut fault;
            let probe = Engine.probe engine in
            if Probe.active probe then
              Probe.emit probe ~time:cut
                (Probe.Fault (Probe.F_power_cut { cycle = cut }));
            raise (Engine.Power_cut cut)
          end));
  m

let config m = m.cfg
let engine m = m.engine
let fault m = m.fault

(* The far-memory tier, created on first use: a machine whose back-end
   never asks for it allocates nothing and behaves bit-identically to a
   build without the device. *)
let farmem m =
  match m.farmem with
  | Some f -> f
  | None ->
      let f =
        Farmem.create ~data_bytes:m.cfg.farmem_bytes
          ~word_occupancy:m.cfg.farmem_word_occupancy
          ~slots:m.cfg.cores
      in
      m.farmem <- Some f;
      f

let farmem_opt m = m.farmem
let link_dead m ~src ~dst = Noc.link_dead m.noc ~src ~dst
let stats m = Engine.stats m.engine
let probe m = Engine.probe m.engine
let spawn ?start m ~core f = Engine.spawn ?start m.engine ~core f
let run m = Engine.run m.engine
let core_id m = Engine.core_id m.engine
let now m = Engine.now m.engine

(* ---------------- allocation ---------------- *)

let align_up v a = (v + a - 1) / a * a

(* Shared objects are cache-line aligned and never share a line with
   another object (Section V-B: "All shared objects are aligned to a cache
   line ... and cannot overlap with other objects"). *)
(* Exhaustion reports what was asked against what was left, so the
   failing allocation can be sized without a debugger. *)
let exhausted ?core ~op ~requested ~available () =
  Pmc_error.raise_error ?core ~op
    "arena exhausted: requested %d bytes, %d available" requested available

let alloc_cached m ~bytes =
  let a = align_up m.cached_brk m.cfg.line_bytes in
  if a + align_up bytes m.cfg.line_bytes > m.uncached_base then
    exhausted ~op:"Machine.alloc_cached" ~requested:bytes
      ~available:(max 0 (m.uncached_base - a)) ();
  m.cached_brk <- a + align_up bytes m.cfg.line_bytes;
  a

let alloc_uncached m ~bytes =
  let a = align_up m.uncached_brk m.cfg.line_bytes in
  if a + align_up bytes m.cfg.line_bytes > m.cfg.sdram_bytes then
    exhausted ~op:"Machine.alloc_uncached" ~requested:bytes
      ~available:(max 0 (m.cfg.sdram_bytes - a)) ();
  m.uncached_brk <- a + align_up bytes m.cfg.line_bytes;
  a

(* DSM objects live at the same offset in every tile's local memory. *)
let alloc_dsm m ~bytes : int =
  let off = align_up m.dsm_brk 4 in
  if off + align_up bytes 4 > m.dsm_region_bytes then
    exhausted ~op:"Machine.alloc_dsm" ~requested:bytes
      ~available:(max 0 (m.dsm_region_bytes - off)) ();
  m.dsm_brk <- off + align_up bytes 4;
  off

(* SPM stack allocation in the upper half of the local memory. *)
let spm_alloc m ~core ~bytes : int =
  let off = m.spm_sp.(core) in
  let next = align_up (off + bytes) 4 in
  if next > m.cfg.local_mem_bytes then
    exhausted ~core ~op:"Machine.spm_alloc" ~requested:bytes
      ~available:(max 0 (m.cfg.local_mem_bytes - off)) ();
  m.spm_sp.(core) <- next;
  off

let spm_mark m ~core = m.spm_sp.(core)
let spm_release m ~core mark = m.spm_sp.(core) <- mark

(* ---------------- address decoding ---------------- *)

type place =
  | Cached_sdram of int
  | Uncached_sdram of int
  | Local of { tile : int; off : int }

let local_addr m ~tile ~off = m.local_base + (tile * m.cfg.local_mem_bytes) + off

let decode m addr : place =
  if addr >= m.local_base then begin
    let rel = addr - m.local_base in
    let tile = rel / m.cfg.local_mem_bytes in
    let off = rel mod m.cfg.local_mem_bytes in
    if tile >= m.cfg.cores then invalid_arg "Machine: bad local address";
    Local { tile; off }
  end
  else if addr >= m.uncached_base then Uncached_sdram addr
  else Cached_sdram addr

(* Mem accessors are unsafe; the timed paths below re-establish the
   bounds [decode] used to delegate to checked [Bytes] accesses. *)
let[@inline] check_local m off len =
  if off > m.cfg.local_mem_bytes - len then
    invalid_arg "Machine: local access out of bounds"

(* ---------------- timed accesses ---------------- *)

let[@inline] miss_cycles m oc =
  let c = ref 0 in
  if Cache.refilled oc then
    c := !c + Sdram.contend_line m.sdram ~now:(now m)
         + m.cfg.sdram_line_cycles;
  if Cache.wrote_back oc then
    c := !c + Sdram.contend_line m.sdram ~now:(now m)
         + m.cfg.sdram_line_cycles;
  !c

let[@inline] count_dcache m core (oc : Cache.outcome) =
  let s = Stats.core (stats m) core in
  if Cache.hit oc then s.Stats.dcache_hits <- s.Stats.dcache_hits + 1
  else s.Stats.dcache_misses <- s.Stats.dcache_misses + 1

let[@inline] read_stall_cat ~shared =
  if shared then Stats.Shared_read_stall else Stats.Private_read_stall

exception Remote_read of { core : int; tile : int }
(* reading another tile's local memory is impossible on the write-only
   interconnect *)

(* Transient tile stall (the chaos plane): drawn per timed-access entry
   point; pure waiting — the tile is frozen, not working — so the cycles
   are idled, not attributed to a stall category. *)
let maybe_stall m ~core =
  if Fault.enabled m.fault then begin
    let cycles = Fault.tile_stall m.fault ~core in
    if cycles > 0 then begin
      if Probe.active (probe m) then
        Probe.emit (probe m) ~time:(now m)
          (Probe.Fault (Probe.F_tile_stall { core; cycles }));
      Engine.idle m.engine cycles
    end
  end

(* Transient SDRAM read errors (the chaos plane): each detected error
   costs one extra word round-trip to re-read; after [sdram_retry_limit]
   consecutive errors the access fails with a typed error rather than
   returning bad data. *)
let sdram_read_faults m ~core ~cat =
  if Fault.enabled m.fault then begin
    let attempt = ref 0 in
    while Fault.sdram_error m.fault ~core do
      incr attempt;
      if Probe.active (probe m) then
        Probe.emit (probe m) ~time:(now m)
          (Probe.Fault (Probe.F_sdram_retry { core; attempt = !attempt }));
      if !attempt > m.cfg.sdram_retry_limit then
        Pmc_error.raise_error ~core ~op:"Machine.sdram_read"
          "transient SDRAM read error persisted after %d retries"
          m.cfg.sdram_retry_limit;
      Engine.consume m.engine cat m.cfg.sdram_word_cycles
    done
  end

let[@inline] check_addr addr =
  if addr < 0 then invalid_arg "Machine: negative address"

(* Book-keep one posted write of [len] bytes and pay its injection
   stall. *)
let[@inline] charge_post m ~core ~len =
  let s = Stats.core (stats m) core in
  s.Stats.noc_writes <- s.Stats.noc_writes + 1;
  s.Stats.noc_flits <- s.Stats.noc_flits + 2;
  Engine.consume m.engine Stats.Write_stall (Noc.injection_cost m.noc ~len)

let load_u32_int m ~shared addr : int =
  check_addr addr;
  let core = core_id m in
  maybe_stall m ~core;
  if addr >= m.local_base then begin
    let rel = addr - m.local_base in
    let tile = rel / m.cfg.local_mem_bytes in
    let off = rel mod m.cfg.local_mem_bytes in
    if tile >= m.cfg.cores then invalid_arg "Machine: bad local address";
    if tile <> core then raise (Remote_read { core; tile });
    check_local m off 4;
    Engine.consume m.engine (read_stall_cat ~shared) m.cfg.local_mem_cycles;
    Mem.get_u32_int m.locals.(tile) off
  end
  else if addr >= m.uncached_base then begin
    let wait = Sdram.contend_word m.sdram ~now:(now m) in
    Engine.consume m.engine (read_stall_cat ~shared)
      (wait + m.cfg.sdram_word_cycles);
    sdram_read_faults m ~core ~cat:(read_stall_cat ~shared);
    Sdram.read_u32_int m.sdram addr
  end
  else begin
    let c = m.dcaches.(core) in
    let v = Cache.load_u32_int c addr in
    let oc = Cache.last c in
    count_dcache m core oc;
    Engine.consume m.engine Stats.Busy m.cfg.dcache_hit_cycles;
    if not (Cache.hit oc) then begin
      Engine.consume m.engine (read_stall_cat ~shared) (miss_cycles m oc);
      sdram_read_faults m ~core ~cat:(read_stall_cat ~shared)
    end
    else if Cache.wrote_back oc then
      Engine.consume m.engine (read_stall_cat ~shared) (miss_cycles m oc);
    v
  end

let store_u32_int m ~shared:_ addr (x : int) : unit =
  check_addr addr;
  let core = core_id m in
  if addr >= m.local_base then begin
    let rel = addr - m.local_base in
    let tile = rel / m.cfg.local_mem_bytes in
    let off = rel mod m.cfg.local_mem_bytes in
    if tile >= m.cfg.cores then invalid_arg "Machine: bad local address";
    check_local m off 4;
    if tile = core then begin
      Engine.consume m.engine Stats.Write_stall m.cfg.local_mem_cycles;
      Mem.set_u32_int m.locals.(tile) off x
    end
    else begin
      (* posted write over the NoC *)
      charge_post m ~core ~len:4;
      Mem.set_u32_int m.scratch 0 x;
      ignore
        (Noc.post_write m.noc ~src:core ~dst:tile ~off m.scratch ~pos:0
           ~len:4)
    end
  end
  else if addr >= m.uncached_base then begin
    let wait = Sdram.contend_word m.sdram ~now:(now m) in
    Engine.consume m.engine Stats.Write_stall
      (wait + m.cfg.sdram_word_cycles);
    Sdram.write_u32_int m.sdram addr x
  end
  else begin
    let c = m.dcaches.(core) in
    Cache.store_u32_int c addr x;
    let oc = Cache.last c in
    count_dcache m core oc;
    Engine.consume m.engine Stats.Busy m.cfg.dcache_hit_cycles;
    if Cache.refilled oc || Cache.wrote_back oc then
      Engine.consume m.engine Stats.Write_stall (miss_cycles m oc)
  end

let load_u32 m ~shared addr : int32 = Int32.of_int (load_u32_int m ~shared addr)
let store_u32 m ~shared addr (v : int32) = store_u32_int m ~shared addr (Int32.to_int v)

let load_u8 m ~shared addr : int =
  check_addr addr;
  let core = core_id m in
  maybe_stall m ~core;
  if addr >= m.local_base then begin
    let rel = addr - m.local_base in
    let tile = rel / m.cfg.local_mem_bytes in
    let off = rel mod m.cfg.local_mem_bytes in
    if tile >= m.cfg.cores then invalid_arg "Machine: bad local address";
    if tile <> core then raise (Remote_read { core; tile });
    Engine.consume m.engine (read_stall_cat ~shared) m.cfg.local_mem_cycles;
    Mem.get_u8 m.locals.(tile) off
  end
  else if addr >= m.uncached_base then begin
    let wait = Sdram.contend_word m.sdram ~now:(now m) in
    Engine.consume m.engine (read_stall_cat ~shared)
      (wait + m.cfg.sdram_word_cycles);
    sdram_read_faults m ~core ~cat:(read_stall_cat ~shared);
    Sdram.read_u8 m.sdram addr
  end
  else begin
    let c = m.dcaches.(core) in
    let v = Cache.load_u8 c addr in
    let oc = Cache.last c in
    count_dcache m core oc;
    Engine.consume m.engine Stats.Busy m.cfg.dcache_hit_cycles;
    if not (Cache.hit oc) then begin
      Engine.consume m.engine (read_stall_cat ~shared) (miss_cycles m oc);
      sdram_read_faults m ~core ~cat:(read_stall_cat ~shared)
    end;
    v
  end

let store_u8 m ~shared:_ addr (v : int) : unit =
  check_addr addr;
  let core = core_id m in
  if addr >= m.local_base then begin
    let rel = addr - m.local_base in
    let tile = rel / m.cfg.local_mem_bytes in
    let off = rel mod m.cfg.local_mem_bytes in
    if tile >= m.cfg.cores then invalid_arg "Machine: bad local address";
    if tile = core then begin
      Engine.consume m.engine Stats.Write_stall m.cfg.local_mem_cycles;
      Mem.set_u8 m.locals.(tile) off v
    end
    else begin
      charge_post m ~core ~len:1;
      Mem.set_u8 m.scratch 0 v;
      ignore
        (Noc.post_write m.noc ~src:core ~dst:tile ~off m.scratch ~pos:0
           ~len:1)
    end
  end
  else if addr >= m.uncached_base then begin
    let wait = Sdram.contend_word m.sdram ~now:(now m) in
    Engine.consume m.engine Stats.Write_stall
      (wait + m.cfg.sdram_word_cycles);
    Sdram.write_u8 m.sdram addr v
  end
  else begin
    let c = m.dcaches.(core) in
    Cache.store_u8 c addr v;
    let oc = Cache.last c in
    count_dcache m core oc;
    Engine.consume m.engine Stats.Busy m.cfg.dcache_hit_cycles;
    if Cache.refilled oc || Cache.wrote_back oc then
      Engine.consume m.engine Stats.Write_stall (miss_cycles m oc)
  end

(* Unordered remote write with caller-chosen latency: the Fig. 1 machine,
   where different memories sit at different distances. *)
let store_u32_remote_raw m ~dst ~off ~latency (v : int32) =
  let core = core_id m in
  charge_post m ~core ~len:4;
  Mem.set_u32 m.scratch 0 v;
  ignore
    (Noc.post_write_at m.noc ~src:core ~dst ~off ~latency m.scratch ~pos:0
       ~len:4)

(* Snapshot [len] bytes of [core]'s local memory into its staging buffer
   *before* the injection stall is consumed — a NoC delivery landing in
   the source range during the stall must not change what was posted. *)
let stage_push m ~core ~src_off ~len =
  if Mem.length m.staging.(core) < len then begin
    let cap = ref (Mem.length m.staging.(core)) in
    while !cap < len do
      cap := 2 * !cap
    done;
    m.staging.(core) <- Mem.create !cap
  end;
  Mem.blit m.locals.(core) src_off m.staging.(core) 0 len

(* Push [len] bytes of my local memory at [src_off] into tile [dst] at
   [dst_off] over the NoC (the DSM back-end's replication primitive).
   Returns the arrival time of the posted write. *)
let noc_push_arrival m ~dst ~src_off ~dst_off ~len : int =
  let core = core_id m in
  if dst = core then invalid_arg "noc_push to self";
  check_local m src_off len;
  stage_push m ~core ~src_off ~len;
  let s = Stats.core (stats m) core in
  s.Stats.noc_writes <- s.Stats.noc_writes + 1;
  s.Stats.noc_flits <- s.Stats.noc_flits + 1 + ((len + 3) / 4);
  Engine.consume m.engine Stats.Write_stall (Noc.injection_cost m.noc ~len);
  Noc.post_write m.noc ~src:core ~dst ~off:dst_off m.staging.(core) ~pos:0
    ~len

let noc_push m ~dst ~src_off ~dst_off ~len =
  ignore (noc_push_arrival m ~dst ~src_off ~dst_off ~len)

(* Replicate [len] bytes of my local memory into every tile of [dsts].
   With [Config.noc_multicast] the sender frames one burst — one header
   flit plus the payload, one injection cost — and the NoC fans it out;
   without it the replication degrades to one unicast push per tile,
   paying header and injection per destination (the unbatched model).
   Returns the latest arrival time across destinations (now if none). *)
let noc_push_multi m ~dsts ~src_off ~dst_off ~len : int =
  let core = core_id m in
  let dsts = List.filter (fun d -> d <> core) dsts in
  match dsts with
  | [] -> now m
  | dsts when m.cfg.Config.noc_multicast ->
      check_local m src_off len;
      stage_push m ~core ~src_off ~len;
      let s = Stats.core (stats m) core in
      s.Stats.noc_writes <- s.Stats.noc_writes + List.length dsts;
      s.Stats.noc_flits <- s.Stats.noc_flits + 1 + ((len + 3) / 4);
      Engine.consume m.engine Stats.Write_stall
        (Noc.injection_cost m.noc ~len);
      Noc.post_multicast m.noc ~src:core ~dsts ~off:dst_off m.staging.(core)
        ~pos:0 ~len
  | dsts ->
      List.fold_left
        (fun acc dst ->
          max acc (noc_push_arrival m ~dst ~src_off ~dst_off ~len))
        (now m) dsts

(* DMA data paths between SDRAM and a tile's local memory (the SPM
   staging copies).  Data only — the caller charges the burst timing. *)
let blit_sdram_to_local m ~core ~sdram ~off ~len =
  check_local m off len;
  Sdram.blit_to m.sdram ~addr:sdram m.locals.(core) ~pos:off ~len

let blit_local_to_sdram m ~core ~off ~sdram ~len =
  check_local m off len;
  Sdram.blit_from m.sdram ~addr:sdram m.locals.(core) ~pos:off ~len

(* DMA data paths between the far-memory tier and a tile's local memory
   (the farmem back-end's staging copies).  Data only — the caller
   charges the burst timing.  Reads serve the durable media, writes land
   in the device cache (durable only after a barrier). *)
let blit_farmem_to_local m ~core ~far ~off ~len =
  check_local m off len;
  Farmem.blit_to (farmem m) ~addr:far m.locals.(core) ~pos:off ~len

let blit_local_to_farmem m ~core ~off ~far ~len =
  check_local m off len;
  Farmem.blit_from (farmem m) ~addr:far m.locals.(core) ~pos:off ~len

(* One SDRAM port arbitration for a single word access — the per-word
   staging model used when [Config.batched_maint] is off. *)
let sdram_word_wait m = Sdram.contend_word m.sdram ~now:(now m)

(* Wait until all of this core's posted NoC writes have landed.  Under
   faults a retransmission drawn at a future delivery attempt can push
   the horizon past what [drain_wait] promised, so the drain loops until
   nothing of this core's is in flight — retries and relay deliveries
   included.  With the fault plane off, the first wait is exact and the
   loop is never entered. *)
let noc_drain m =
  let core = core_id m in
  Engine.consume m.engine Stats.Write_stall
    (Noc.drain_wait m.noc ~src:core);
  if Fault.enabled m.fault then
    while Noc.outstanding m.noc ~src:core > 0 do
      Engine.consume m.engine Stats.Write_stall
        (max 1 (Noc.drain_wait m.noc ~src:core))
    done

(* ---------------- cache maintenance ---------------- *)

let maint_cycles m (r : Cache.maint) =
  (* one cycle per line tag probe plus the write-back traffic.  Batched
     ([Config.batched_maint]): the range operation drains its dirty lines
     as one burst — one port arbitration for the whole range.  Unbatched:
     every line arbitrates (and possibly queues) separately. *)
  let wb =
    if r.Cache.lines_written_back = 0 then 0
    else if m.cfg.Config.batched_maint then
      Sdram.contend_burst m.sdram ~now:(now m)
        ~lines:r.Cache.lines_written_back
      + (r.Cache.lines_written_back * m.cfg.sdram_line_cycles)
    else begin
      let wb = ref 0 in
      for _ = 1 to r.Cache.lines_written_back do
        wb := !wb + Sdram.contend_line m.sdram ~now:(now m)
              + m.cfg.sdram_line_cycles
      done;
      !wb
    end
  in
  r.Cache.lines_touched + wb

let wb_inval_range m ~addr ~len =
  let core = core_id m in
  if addr < 0 || addr >= m.uncached_base then
    invalid_arg "wb_inval_range: not a cached address";
  let r = Cache.wb_inval_range m.dcaches.(core) ~addr ~len in
  let s = Stats.core (stats m) core in
  s.Stats.flushes <- s.Stats.flushes + 1;
  if Probe.active (probe m) then
    Probe.emit (probe m) ~time:(now m)
      (Probe.Cache_maint
         { core; op = Probe.Wb_inval; addr; len;
           lines_touched = r.Cache.lines_touched;
           lines_written_back = r.Cache.lines_written_back });
  Engine.consume m.engine Stats.Flush_overhead (maint_cycles m r)

let inval_range m ~addr ~len =
  let core = core_id m in
  let r = Cache.inval_range m.dcaches.(core) ~addr ~len in
  if Probe.active (probe m) then
    Probe.emit (probe m) ~time:(now m)
      (Probe.Cache_maint
         { core; op = Probe.Inval; addr; len;
           lines_touched = r.Cache.lines_touched;
           lines_written_back = r.Cache.lines_written_back });
  Engine.consume m.engine Stats.Flush_overhead (maint_cycles m r)

(* ---------------- instruction stream ---------------- *)

let set_code m ~core ~footprint ~jump_prob =
  let c = m.code.(core) in
  c.footprint <- footprint;
  c.jump_prob <- jump_prob;
  c.pc <- 0

(* Execute [n] instructions: 1 busy cycle each, plus I-cache miss stalls.
   The instruction stream walks the core's code footprint sequentially
   with occasional jumps to a random target, through a real I-cache. *)
let instr m n =
  if n > 0 then begin
    let core = core_id m in
    maybe_stall m ~core;
    let c = m.code.(core) in
    let ic = m.icaches.(core) in
    let s = Stats.core (stats m) core in
    let line = m.cfg.line_bytes in
    let per_line = line / 4 in
    let remaining = ref n in
    let stall = ref 0 in
    while !remaining > 0 do
      let burst = min !remaining per_line in
      if Icache.fetch_line ic c.pc then
        s.Stats.icache_hits <- s.Stats.icache_hits + 1
      else begin
        s.Stats.icache_misses <- s.Stats.icache_misses + 1;
        stall := !stall + m.cfg.icache_miss_cycles
      end;
      remaining := !remaining - burst;
      if Prng.bool c.prng c.jump_prob then
        c.pc <- Prng.int c.prng (max 1 (c.footprint / line)) * line
      else c.pc <- (c.pc + line) mod c.footprint
    done;
    s.Stats.instructions <- s.Stats.instructions + n;
    Engine.consume m.engine Stats.Busy n;
    if !stall > 0 then Engine.consume m.engine Stats.Icache_stall !stall
  end

(* Pure busy work without instruction-cache modelling. *)
let busy m n = Engine.consume m.engine Stats.Busy n

(* ---------------- private data ---------------- *)

(* Private per-core array access (stack/heap stand-in): word [idx] of this
   core's private arena, through the D-cache. *)
let private_load m idx : int32 =
  let core = core_id m in
  let addr = m.private_base.(core) + (idx * 4) mod private_bytes in
  load_u32 m ~shared:false addr

let private_store m idx v =
  let core = core_id m in
  let addr = m.private_base.(core) + (idx * 4) mod private_bytes in
  store_u32 m ~shared:false addr v

(* ---------------- untimed debug access ---------------- *)

(* Read backing storage directly, bypassing caches and timing — test and
   initialization use only. *)
let peek_u32 m addr : int32 =
  match decode m addr with
  | Cached_sdram a | Uncached_sdram a -> Sdram.read_u32 m.sdram a
  | Local { tile; off } ->
      check_local m off 4;
      Mem.get_u32 m.locals.(tile) off

let poke_u32 m addr v =
  match decode m addr with
  | Cached_sdram a | Uncached_sdram a -> Sdram.write_u32 m.sdram a v
  | Local { tile; off } ->
      check_local m off 4;
      Mem.set_u32 m.locals.(tile) off v

let dcache m ~core = m.dcaches.(core)

(* Atomic test-and-set on an uncached SDRAM word: consumes the full
   round-trip first, then performs the read-modify-write in one step, so
   it is atomic in simulated time.  The RMW locks the memory port for the
   whole read+write pair, which is what makes centralized spinlocks
   poisonous under contention (the problem the distributed lock [15]
   avoids). *)
let uncached_tas m addr : int32 =
  (match decode m addr with
  | Uncached_sdram _ -> ()
  | _ -> invalid_arg "uncached_tas: not an uncached address");
  let wait =
    Sdram.contend m.sdram ~now:(now m)
      ~occupancy:(4 * m.cfg.sdram_word_occupancy)
  in
  Engine.consume m.engine Stats.Lock_stall
    (wait + (2 * m.cfg.sdram_word_cycles));
  let old = Sdram.read_u32 m.sdram addr in
  Sdram.write_u32 m.sdram addr 1l;
  old
