(* Instrumentation hook of the simulator: the machine, NoC, engine and
   lock layers publish the micro-architectural events a tracing tool needs
   (posted NoC writes, cache flush/invalidate ranges, lock handovers, task
   lifetimes) without the simulator depending on any tracing library.

   One sink per engine; emission is a single option check when tracing is
   off, so instrumented hot paths stay cheap.  The consumer (the
   [pmc_trace] library) subscribes via [set] and merges these events with
   the annotation-level events of [Pmc.Api]. *)

type lock_op = Acquire | Release | Acquire_ro | Release_ro
type maint_op = Wb_inval | Inval
type task_op = Spawn | Finish

(* Injected faults and the resilient protocol's reactions to them, so a
   chaos run's trace tells the full story: what was injected, what the
   transport did about it, and where service degraded. *)
type fault =
  | F_noc_drop of { src : int; dst : int; seq : int; attempt : int }
  | F_noc_corrupt of { src : int; dst : int; seq : int; attempt : int }
  | F_noc_delay of { src : int; dst : int; seq : int; cycles : int }
  | F_noc_retry of { src : int; dst : int; seq : int; attempt : int; at : int }
  | F_link_dead of { src : int; dst : int }
  | F_noc_degraded of { src : int; dst : int; seq : int }
  | F_sdram_retry of { core : int; attempt : int }
  | F_tile_stall of { core : int; cycles : int }
  | F_lock_timeout of { core : int; lock : int; waited : int }
  | F_power_cut of { cycle : int }

type event =
  | Noc_post of {
      src : int;
      dst : int;
      off : int;       (* destination local-memory offset *)
      bytes : int;
      arrival : int;   (* virtual time the write lands at [dst] *)
    }
  | Cache_maint of {
      core : int;
      op : maint_op;
      addr : int;
      len : int;
      lines_touched : int;
      lines_written_back : int;
    }
  | Lock of {
      core : int;
      lock : int;                (* Dlock id *)
      op : lock_op;
      transferred : bool;        (* handover arrived from another tile *)
    }
  | Task of { core : int; op : task_op }
  | Fault of fault

type sink = time:int -> event -> unit

(* [enabled] mirrors [sink <> None] as a flat flag: emitting call sites
   test it *before* constructing an event record, so an untraced run
   pays one load-and-branch — not one allocation — per would-be event. *)
type t = { mutable sink : sink option; mutable enabled : bool }

let create () = { sink = None; enabled = false }

let set t sink =
  t.sink <- sink;
  t.enabled <- (match sink with None -> false | Some _ -> true)

let[@inline] active t = t.enabled

let emit t ~time ev =
  match t.sink with None -> () | Some f -> f ~time ev
