(* Instrumentation hook of the simulator: the machine, NoC, engine and
   lock layers publish the micro-architectural events a tracing tool needs
   (posted NoC writes, cache flush/invalidate ranges, lock handovers, task
   lifetimes) without the simulator depending on any tracing library.

   One sink per engine; emission is a single option check when tracing is
   off, so instrumented hot paths stay cheap.  The consumer (the
   [pmc_trace] library) subscribes via [set] and merges these events with
   the annotation-level events of [Pmc.Api]. *)

type lock_op = Acquire | Release | Acquire_ro | Release_ro
type maint_op = Wb_inval | Inval
type task_op = Spawn | Finish

type event =
  | Noc_post of {
      src : int;
      dst : int;
      off : int;       (* destination local-memory offset *)
      bytes : int;
      arrival : int;   (* virtual time the write lands at [dst] *)
    }
  | Cache_maint of {
      core : int;
      op : maint_op;
      addr : int;
      len : int;
      lines_touched : int;
      lines_written_back : int;
    }
  | Lock of {
      core : int;
      lock : int;                (* Dlock id *)
      op : lock_op;
      transferred : bool;        (* handover arrived from another tile *)
    }
  | Task of { core : int; op : task_op }

type sink = time:int -> event -> unit

type t = { mutable sink : sink option }

let create () = { sink = None }
let set t sink = t.sink <- sink
let active t = t.sink <> None

let emit t ~time ev =
  match t.sink with None -> () | Some f -> f ~time ev
