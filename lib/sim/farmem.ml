(* Far-memory tier behind SDRAM: a persistence domain with a volatile
   device cache in front of durable media.

   Writes land in [shadow] (the device cache) and become durable only
   when a flush [barrier] drains the dirty ranges into [media].  Reads of
   committed data are served from [media]: a reader can never observe a
   byte that would not survive a power cut, which is the "visible implies
   durable" discipline the crash checker's durable-prefix replay relies
   on.  A power cut simply abandons [shadow]; whatever [media] holds at
   that instant is the durable image recovery starts from.

   The bottom of the address space is reserved for the farmem back-end's
   redo log: one slot per committing core (commits of different objects
   interleave in simulated time, so they must not share log space) below
   an 8-byte superblock recording the slot geometry — the log is fully
   self-describing, so [recover] works on a restored image with no
   backend state at all.  The layout and [recover] live here because the
   device owns the media.

   Timing mirrors [Sdram]: one port, busy-until contention, occupancy per
   word; latency composition is the caller's job. *)

type t = {
  media : Mem.t;                 (* durable *)
  shadow : Mem.t;                (* volatile device cache *)
  size : int;
  word_occupancy : int;
  slots : int;
  slot_bytes : int;
  mutable busy_until : int;
  mutable accesses : int;
  mutable queued_cycles : int;
  mutable barriers : int;
  mutable bytes_flushed : int;
  mutable dirty : (int * int) list;   (* pending (addr, len) shadow ranges *)
  mutable allocs : (string * int * int) list;  (* (name, addr, bytes), newest first *)
  mutable brk : int;
}

(* ---------------- redo-log region layout ----------------

   superblock:  word 0 = slot count, word 1 = slot size in bytes
   slot i (at [8 + i * slot_bytes]):
     word 0: commit flag (1 = the records below are committed and must
             be (re)applied by recovery; 0 = empty or uncommitted)
     word 1: record count
     then per record: home address word, word count n, then n data words *)

let log_slot_bytes = 32 * 1024
let slot_addr _t i = 8 + (i * log_slot_bytes)
let align8 v = (v + 7) land lnot 7

let create ~data_bytes ~word_occupancy ~slots =
  let slot_bytes = log_slot_bytes in
  let alloc_base = align8 (8 + (slots * slot_bytes)) in
  let size = alloc_base + max 0 data_bytes in
  let t =
    {
      media = Mem.create size;
      shadow = Mem.create size;
      size;
      word_occupancy;
      slots;
      slot_bytes;
      busy_until = 0;
      accesses = 0;
      queued_cycles = 0;
      barriers = 0;
      bytes_flushed = 0;
      dirty = [];
      allocs = [];
      brk = alloc_base;
    }
  in
  (* the superblock is provisioned durably, like an initialization poke *)
  Mem.set_u32_int t.media 0 slots;
  Mem.set_u32_int t.media 4 slot_bytes;
  Mem.set_u32_int t.shadow 0 slots;
  Mem.set_u32_int t.shadow 4 slot_bytes;
  t

let size t = t.size

let[@inline] check t addr len op =
  if addr < 0 || len < 0 || addr + len > t.size then invalid_arg op

(* ---------------- allocation directory ---------------- *)

(* 8-byte aligned carve-out above the log region.  The directory is kept
   host-side (it is metadata, not simulated state) so the crash checker
   can enumerate every shared object of the durable image. *)
let alloc t ~name ~bytes =
  let addr = (t.brk + 7) land lnot 7 in
  if addr + bytes > t.size then
    failwith (Printf.sprintf "Farmem.alloc: out of far memory for %S" name);
  t.brk <- addr + bytes;
  t.allocs <- (name, addr, bytes) :: t.allocs;
  addr

let allocs t = List.rev t.allocs

(* ---------------- contention ---------------- *)

let contend t ~now ~occupancy =
  let wait = max 0 (t.busy_until - now) in
  t.busy_until <- now + wait + occupancy;
  t.accesses <- t.accesses + 1;
  t.queued_cycles <- t.queued_cycles + wait;
  wait

let contend_words t ~now ~words =
  contend t ~now ~occupancy:(max 1 words * t.word_occupancy)

(* ---------------- data path ---------------- *)

(* Reads serve committed (durable) data only. *)
let read_u32_int t addr =
  check t addr 4 "Farmem.read_u32";
  Mem.get_u32_int t.media addr

let read_u8 t addr =
  check t addr 1 "Farmem.read_u8";
  Mem.get_u8 t.media addr

(* Writes land in the device cache and are recorded dirty. *)
let write_u32_int t addr x =
  check t addr 4 "Farmem.write_u32";
  Mem.set_u32_int t.shadow addr x;
  t.dirty <- (addr, 4) :: t.dirty

let write_u8 t addr v =
  check t addr 1 "Farmem.write_u8";
  Mem.set_u8 t.shadow addr v;
  t.dirty <- (addr, 1) :: t.dirty

let blit_to t ~addr (dst : Mem.t) ~pos ~len =
  check t addr len "Farmem.blit_to";
  Mem.blit t.media addr dst pos len

let blit_from t ~addr (src : Mem.t) ~pos ~len =
  check t addr len "Farmem.blit_from";
  Mem.blit src pos t.shadow addr len;
  t.dirty <- (addr, len) :: t.dirty

(* Drain the device cache: every dirty byte becomes durable, in one
   instant (data moves at the start of the latency window, like every
   other transfer in the simulator — durability is atomic at barrier
   granularity). *)
let barrier t =
  let flushed =
    List.fold_left
      (fun acc (addr, len) ->
        Mem.blit t.shadow addr t.media addr len;
        acc + len)
      0 t.dirty
  in
  t.dirty <- [];
  t.barriers <- t.barriers + 1;
  t.bytes_flushed <- t.bytes_flushed + flushed;
  flushed

let dirty_bytes t = List.fold_left (fun acc (_, len) -> acc + len) 0 t.dirty
let accesses t = t.accesses
let barriers t = t.barriers
let bytes_flushed t = t.bytes_flushed

(* ---------------- host-side (untimed) access ---------------- *)

(* Initialization pokes are durable by definition: they model the state
   the platform was provisioned with before power-on. *)
let poke_u32 t addr v =
  check t addr 4 "Farmem.poke_u32";
  Mem.set_u32_int t.media addr v;
  Mem.set_u32_int t.shadow addr v

let peek_u32 t addr = read_u32_int t addr
let peek_u8 t addr = read_u8 t addr

(* ---------------- crash / restore / recovery ---------------- *)

(* The durable image: exactly the media bytes.  The shadow is lost. *)
let image t = Mem.to_bytes t.media ~pos:0 ~len:t.size

let restore t (img : Bytes.t) =
  if Bytes.length img <> t.size then invalid_arg "Farmem.restore: size";
  Mem.blit_of_bytes img 0 t.media 0 t.size;
  (* after restart the device cache is clean: shadow = media *)
  Mem.blit_of_bytes img 0 t.shadow 0 t.size;
  t.dirty <- []

type recovery = {
  committed : bool;     (* a committed log was found (and re-applied) *)
  records : int;        (* records applied *)
  words_applied : int;  (* total data words applied *)
}

(* Replay the redo log on the durable media, slot by slot in slot order
   (the order cannot matter: the object lock serializes commits, so at
   most one committed slot can mention any given object).  Idempotent:
   applying a committed slot twice writes the same bytes, and the
   cleared commit flag makes every later call a no-op.  An uncommitted
   slot (flag 0) is discarded untouched — the torn scope it may describe
   was never promised to anyone.  Geometry comes from the superblock in
   the image itself, so recovery needs no live backend state. *)
let recover t =
  let slots = Mem.get_u32_int t.media 0 in
  let slot_bytes = Mem.get_u32_int t.media 4 in
  let committed = ref false and records = ref 0 and applied = ref 0 in
  for i = 0 to slots - 1 do
    let slot = 8 + (i * slot_bytes) in
    check t slot slot_bytes "Farmem.recover: slot";
    let flag = Mem.get_u32_int t.media slot in
    if flag <> 0 then begin
      committed := true;
      let count = Mem.get_u32_int t.media (slot + 4) in
      let pos = ref (slot + 8) in
      for _ = 1 to count do
        let home = Mem.get_u32_int t.media !pos in
        let words = Mem.get_u32_int t.media (!pos + 4) in
        pos := !pos + 8;
        check t home (words * 4) "Farmem.recover: log record";
        for w = 0 to words - 1 do
          let v = Mem.get_u32_int t.media (!pos + (w * 4)) in
          Mem.set_u32_int t.media (home + (w * 4)) v;
          Mem.set_u32_int t.shadow (home + (w * 4)) v
        done;
        pos := !pos + (words * 4);
        applied := !applied + words
      done;
      records := !records + count;
      Mem.set_u32_int t.media slot 0;
      Mem.set_u32_int t.shadow slot 0
    end
  done;
  { committed = !committed; records = !records; words_applied = !applied }
