(* Discrete-event execution engine.

   Each simulated core runs an ordinary OCaml function written against the
   runtime API.  Timing is cooperative: whenever simulated work costs
   cycles, the task performs a [Tick] effect; the scheduler advances
   that core's virtual clock and always resumes the task with the smallest
   clock next, so cores interleave exactly as their timing dictates.
   Besides tasks, the event queue carries timed closures ([at]) used by the
   NoC to deliver remote writes at their arrival time.

   The simulation is fully deterministic: ties in time are broken by
   insertion sequence.

   Scheduling state lives in a preallocated integer-indexed arena with a
   free list: a pending entry is an index into parallel arrays
   (time / seq / kind / payload), the wake-wheel's slots are intrusive
   int chains through [a_next], and the far-future overflow heap orders
   bare indices.  Steady-state scheduling therefore allocates nothing —
   the only per-suspension allocations left are the effect machinery's
   own (handler closure and continuation).  Freed slots are reset to
   dummies so a popped entry's task or closure is never kept live by the
   arena (the seed's heap leaked exactly that way). *)

type _ Effect.t += Tick : unit Effect.t
(* Constant constructor on purpose: performing it allocates nothing; the
   cycle count travels through [tick_n] below. *)

type _ Effect.t += Wait : unit Effect.t
(* Suspension of a pure polling loop ([poll_wait]): the predicate,
   quantum and stall category travel through the [wait_*] fields below.
   The scheduler re-evaluates the predicate itself on each wake and only
   resumes the fiber once it holds, so a failed poll costs a queue
   pop/push instead of a fiber round trip. *)

exception Watchdog of int
(* raised when a task exceeds [Config.max_cycles] — livelock guard *)

exception Deadlock of string

exception Power_cut of int
(* raised out of [run] when a scheduled power failure fires: every tile
   dies at that cycle and every non-durable byte is gone.  Carried cycle
   = the cut time.  Raised by the machine's cut closure, not here. *)

type task_state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type task = { core : int; mutable time : int; seq : int; mutable state : task_state }

let dummy_task = { core = -1; time = 0; seq = -1; state = Finished }
let dummy_fn : unit -> unit = fun () -> ()
let dummy_ifn : int -> unit = fun _ -> ()
let dummy_pred : unit -> bool = fun () -> false

(* Arena entry kinds. *)
let k_free = 0
let k_task = 1
let k_closure = 2
let k_indexed = 3
let k_wait = 4

let wheel_window = 2048 (* power of two: slot index is [time land mask] *)
let wheel_mask = wheel_window - 1

(* Occupancy bitmap: 32 slots per word, so the word / bit split is a
   shift and a mask — no division by a 63-slot odd radix on the pop
   path, which runs once per scheduled event. *)
let occ_bits = 32
let occ_shift = 5
let occ_bmask = occ_bits - 1
let occ_words = wheel_window / occ_bits

type t = {
  config : Config.t;
  stats : Stats.t;
  probe : Probe.t;
  (* entry arena (parallel arrays + free list) *)
  mutable a_time : int array;
  mutable a_seq : int array;
  mutable a_next : int array;          (* slot chain / free-list link *)
  mutable a_kind : int array;
  mutable a_task : task array;
  mutable a_fn : (unit -> unit) array;
  mutable a_ifn : (int -> unit) array;
  mutable a_arg : int array;
  mutable a_pred : (unit -> bool) array;
  mutable a_wcat : Stats.category array;
  mutable a_free : int;                (* free-list head, -1 = grow *)
  (* wake-wheel: per-cycle slots as intrusive chains, occupancy bitmap *)
  wheel_head : int array;
  wheel_tail : int array;
  occ : int array;                     (* [occ_bits] slots per word *)
  mutable wheel_count : int;
  (* far-future overflow: binary min-heap of arena indices on (time, seq) *)
  mutable heap : int array;
  mutable heap_n : int;
  mutable cursor : int;       (* wheel origin: no pending entry is earlier *)
  mutable peek : int;         (* earliest pending time; -1 = unknown *)
  mutable current : task;     (* dummy_task = none *)
  mutable next_seq : int;
  mutable tick_n : int;       (* cycles of the Tick being performed *)
  mutable wait_pred : unit -> bool;   (* parameters of the Wait being *)
  mutable wait_cat : Stats.category;  (* performed *)
  mutable wait_quantum : int;
  mutable global_time : int;  (* time of the entry being processed *)
  mutable tasks_live : int;
}

let initial_arena = 256

let create (config : Config.t) =
  let a_next = Array.init initial_arena (fun i -> i + 1) in
  a_next.(initial_arena - 1) <- -1;
  {
    config;
    stats = Stats.create config.cores;
    probe = Probe.create ();
    a_time = Array.make initial_arena 0;
    a_seq = Array.make initial_arena 0;
    a_next;
    a_kind = Array.make initial_arena k_free;
    a_task = Array.make initial_arena dummy_task;
    a_fn = Array.make initial_arena dummy_fn;
    a_ifn = Array.make initial_arena dummy_ifn;
    a_arg = Array.make initial_arena 0;
    a_pred = Array.make initial_arena dummy_pred;
    a_wcat = Array.make initial_arena Stats.Busy;
    a_free = 0;
    wheel_head = Array.make wheel_window (-1);
    wheel_tail = Array.make wheel_window (-1);
    occ = Array.make occ_words 0;
    wheel_count = 0;
    heap = Array.make 64 (-1);
    heap_n = 0;
    cursor = 0;
    peek = -1;
    current = dummy_task;
    next_seq = 0;
    tick_n = 0;
    wait_pred = dummy_pred;
    wait_cat = Stats.Busy;
    wait_quantum = 0;
    global_time = 0;
    tasks_live = 0;
  }

(* ---------------- arena ---------------- *)

let grow_arena t =
  let n = Array.length t.a_time in
  let n' = 2 * n in
  let copy dummy a =
    let a' = Array.make n' dummy in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.a_time <- copy 0 t.a_time;
  t.a_seq <- copy 0 t.a_seq;
  t.a_kind <- copy k_free t.a_kind;
  t.a_task <- copy dummy_task t.a_task;
  t.a_fn <- copy dummy_fn t.a_fn;
  t.a_ifn <- copy dummy_ifn t.a_ifn;
  t.a_arg <- copy 0 t.a_arg;
  t.a_pred <- copy dummy_pred t.a_pred;
  t.a_wcat <- copy Stats.Busy t.a_wcat;
  let nx = Array.make n' (-1) in
  Array.blit t.a_next 0 nx 0 n;
  for i = n to n' - 2 do
    nx.(i) <- i + 1
  done;
  t.a_next <- nx;
  t.a_free <- n

let alloc_slot t ~time ~seq ~kind =
  if t.a_free = -1 then grow_arena t;
  let i = t.a_free in
  t.a_free <- t.a_next.(i);
  t.a_time.(i) <- time;
  t.a_seq.(i) <- seq;
  t.a_kind.(i) <- kind;
  i

(* Reset the slot to dummies before recycling it: nothing a popped entry
   captured (task, closure) stays reachable through the arena. *)
let free_slot t i =
  t.a_kind.(i) <- k_free;
  t.a_task.(i) <- dummy_task;
  t.a_fn.(i) <- dummy_fn;
  t.a_ifn.(i) <- dummy_ifn;
  t.a_pred.(i) <- dummy_pred;
  t.a_next.(i) <- t.a_free;
  t.a_free <- i

(* ---------------- overflow heap (indices, keyed on time then seq) ----- *)

let[@inline] heap_less t i j =
  let ti = t.a_time.(i) and tj = t.a_time.(j) in
  ti < tj || (ti = tj && t.a_seq.(i) < t.a_seq.(j))

let heap_push t x =
  if t.heap_n = Array.length t.heap then begin
    let a' = Array.make (2 * t.heap_n) (-1) in
    Array.blit t.heap 0 a' 0 t.heap_n;
    t.heap <- a'
  end;
  let a = t.heap in
  let i = ref t.heap_n in
  t.heap_n <- t.heap_n + 1;
  a.(!i) <- x;
  while !i > 0 && heap_less t a.(!i) a.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = a.(p) in
    a.(p) <- a.(!i);
    a.(!i) <- tmp;
    i := p
  done

let heap_pop t =
  assert (t.heap_n > 0);
  let a = t.heap in
  let top = a.(0) in
  t.heap_n <- t.heap_n - 1;
  a.(0) <- a.(t.heap_n);
  a.(t.heap_n) <- -1;  (* clear the vacated slot — no stale index *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_n && heap_less t a.(l) a.(!smallest) then smallest := l;
    if r < t.heap_n && heap_less t a.(r) a.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = a.(!smallest) in
      a.(!smallest) <- a.(!i);
      a.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

(* ---------------- wake-wheel ---------------- *)

(* Indexed wake-wheel: entries due within a [wheel_window]-cycle horizon
   live in per-cycle slots indexed by resume time; entries beyond the
   horizon wait in the overflow heap.  Simulated time is monotonic
   (nothing is ever scheduled in the past), so within the horizon every
   slot holds at most one distinct timestamp and a slot's FIFO order
   equals creation-sequence order — popping the next occupied slot
   reproduces the heap's exact (time, seq) order while making push and
   pop O(1) amortized.  An occupancy bitmap lets the pop scan skip 63
   empty slots per word. *)

let wheel_add t slot i =
  t.a_next.(i) <- -1;
  let tail = t.wheel_tail.(slot) in
  if tail = -1 then t.wheel_head.(slot) <- i else t.a_next.(tail) <- i;
  t.wheel_tail.(slot) <- i;
  let w = slot lsr occ_shift in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (slot land occ_bmask));
  t.wheel_count <- t.wheel_count + 1

let[@inline] lowest_bit_from word bit =
  (* index of the least significant set bit of [word] at or above [bit],
     or -1 *)
  let w = word land lnot ((1 lsl bit) - 1) in
  if w = 0 then -1
  else begin
    let b = ref 0 and w = ref (w land -w) in
    if !w land 0xFFFF = 0 then begin b := !b + 16; w := !w lsr 16 end;
    if !w land 0xFF = 0 then begin b := !b + 8; w := !w lsr 8 end;
    if !w land 0xF = 0 then begin b := !b + 4; w := !w lsr 4 end;
    if !w land 0x3 = 0 then begin b := !b + 2; w := !w lsr 2 end;
    if !w land 0x1 = 0 then b := !b + 1;
    !b
  end

(* Next occupied slot at or after [from], scanning the bitmap and
   wrapping once; the caller guarantees [wheel_count > 0]. *)
let next_occupied t ~from =
  let rec scan word bit laps =
    if word >= occ_words then
      if laps = 0 then scan 0 0 1 else assert false
    else
      match lowest_bit_from t.occ.(word) bit with
      | -1 -> scan (word + 1) 0 laps
      | b -> (word lsl occ_shift) + b
  in
  scan (from lsr occ_shift) (from land occ_bmask) 0

let wheel_take t slot =
  let i = t.wheel_head.(slot) in
  let nx = t.a_next.(i) in
  t.wheel_head.(slot) <- nx;
  if nx = -1 then begin
    t.wheel_tail.(slot) <- -1;
    let w = slot lsr occ_shift in
    t.occ.(w) <- t.occ.(w) land lnot (1 lsl (slot land occ_bmask))
  end;
  t.wheel_count <- t.wheel_count - 1;
  i

(* ---------------- pending-entry queue ---------------- *)

(* Move overflow entries due at or before [horizon] into the wheel.  They
   were created before anything now being pushed, so their sequence numbers
   are smaller and appending them first keeps every slot's FIFO in
   creation order. *)
let migrate t ~horizon =
  while t.heap_n > 0 && t.a_time.(t.heap.(0)) <= horizon do
    let x = heap_pop t in
    wheel_add t (t.a_time.(x) land wheel_mask) x
  done

let push_slot t i =
  let time = t.a_time.(i) in
  if t.peek >= 0 && time < t.peek then t.peek <- time;
  if time < t.cursor + wheel_window then begin
    migrate t ~horizon:time;
    (* time is never in the past (the sim clock is monotonic); clamp the
       slot defensively so a bad caller degrades to a same-cycle wake *)
    wheel_add t (max time t.cursor land wheel_mask) i
  end
  else heap_push t i

let pop_slot t =
  if t.wheel_count = 0 && t.heap_n = 0 then -1
  else begin
    if t.wheel_count = 0 then
      (* jump the cursor across the empty gap to the overflow cohort *)
      t.cursor <- t.a_time.(t.heap.(0));
    migrate t ~horizon:(t.cursor + wheel_window - 1);
    let slot = next_occupied t ~from:(t.cursor land wheel_mask) in
    let i = wheel_take t slot in
    t.cursor <- max t.cursor t.a_time.(i);
    (* all chain entries in a slot share one timestamp (one distinct
       time per slot within the horizon), so a non-empty remainder pins
       the next pending time exactly — no bitmap rescan needed *)
    t.peek <- (if t.wheel_head.(slot) >= 0 then t.a_time.(i) else -1);
    i
  end

(* Earliest pending entry time, [max_int] if none.  Cached between pops:
   pushes keep the cache current, so a run of fast-path consumes (below)
   pays for at most one bitmap scan. *)
let next_pending_time t =
  if t.peek >= 0 then t.peek
  else if t.wheel_count = 0 && t.heap_n = 0 then max_int
  else begin
    let wt =
      if t.wheel_count = 0 then max_int
      else begin
        let cm = t.cursor land wheel_mask in
        let slot = next_occupied t ~from:cm in
        t.cursor + ((slot - cm) land wheel_mask)
      end
    in
    let ht = if t.heap_n = 0 then max_int else t.a_time.(t.heap.(0)) in
    let p = min wt ht in
    t.peek <- p;
    p
  end

let stats t = t.stats
let probe t = t.probe
let live_tasks t = t.tasks_live

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* Spawn a computation on [core], starting at the core's current time (or
   at [start]).  Several tasks may share a core; they interleave at consume
   points, which models cooperative threads on one processor. *)
let spawn ?(start = 0) t ~core f =
  if core < 0 || core >= t.config.cores then
    invalid_arg "Engine.spawn: bad core";
  let task =
    { core; time = max start t.global_time; seq = fresh_seq t;
      state = Not_started f }
  in
  t.tasks_live <- t.tasks_live + 1;
  if Probe.active t.probe then
    Probe.emit t.probe ~time:task.time (Probe.Task { core; op = Probe.Spawn });
  let i = alloc_slot t ~time:task.time ~seq:task.seq ~kind:k_task in
  t.a_task.(i) <- task;
  push_slot t i

(* Schedule [f] to run at absolute [time]. *)
let at t ~time f =
  let i = alloc_slot t ~time ~seq:(fresh_seq t) ~kind:k_closure in
  t.a_fn.(i) <- f;
  push_slot t i

(* Allocation-free variant of [at]: [fn] is a preallocated closure, the
   per-event state travels as its [int] argument through the arena. *)
let at_indexed t ~time fn arg =
  let i = alloc_slot t ~time ~seq:(fresh_seq t) ~kind:k_indexed in
  t.a_ifn.(i) <- fn;
  t.a_arg.(i) <- arg;
  push_slot t i

let current_task t =
  let task = t.current in
  if task == dummy_task then
    failwith "Engine: no task running (call from within spawn)"
  else task

let core_id t = (current_task t).core
let now t = (current_task t).time

(* Advance [task]'s clock by [n] cycles.  Fast path: when the advanced
   task would be popped again immediately — nothing else is pending
   strictly before its new time, and the watchdog is not tripping — the
   suspend/resume round trip through the effect handler is skipped
   entirely and the clock simply moves.  The sequence number the
   suspension would have taken is still burned, so every later entry
   gets exactly the seq it would have had; since nothing else could have
   run in the skipped window, the schedule is bit-identical. *)
let advance t task n =
  let nt = task.time + n in
  if nt <= t.config.max_cycles && nt < next_pending_time t then begin
    task.time <- nt;
    ignore (fresh_seq t);
    t.global_time <- nt
  end
  else begin
    t.tick_n <- n;
    Effect.perform Tick
  end

(* Advance the current core's clock by [n] cycles, attributed to [cat]. *)
let consume t cat n =
  if n < 0 then invalid_arg "Engine.consume: negative cycles";
  if n > 0 then begin
    let task = current_task t in
    Stats.add (Stats.core t.stats task.core) cat n;
    advance t task n
  end

(* Advance the clock without statistics (used by pure waiting). *)
let idle t n = if n > 0 then advance t (current_task t) n

(* Pure polling loop, behaviourally identical to

     [while not (pred ()) do consume t cat quantum done]

   for a [pred] that only reads simulation state (no memory accesses, no
   cycle consumption, no mutation) — the lock-grant and reader-admission
   waits.  Each failed poll burns the seq, adds the stall cycles and
   advances the clock exactly like the consume above would; the
   difference is purely mechanical: once the task suspends, the
   scheduler re-evaluates [pred] at every wake from the run loop and
   resumes the fiber only when it holds, so a failed poll costs one
   queue pop/push instead of a fiber suspend/resume round trip.  The
   evaluation points in the global (time, seq) order — and hence the
   state each evaluation sees — are identical to the plain loop's. *)
let poll_wait t ~cat ~quantum ~pred =
  if quantum <= 0 then invalid_arg "Engine.poll_wait: quantum <= 0";
  let task = current_task t in
  let continue = ref true in
  while !continue && not (pred ()) do
    (* the fast path of [advance], inlined around the pred re-check *)
    Stats.add (Stats.core t.stats task.core) cat quantum;
    let nt = task.time + quantum in
    if nt <= t.config.max_cycles && nt < next_pending_time t then begin
      task.time <- nt;
      ignore (fresh_seq t);
      t.global_time <- nt
    end
    else begin
      t.wait_pred <- pred;
      t.wait_cat <- cat;
      t.wait_quantum <- quantum;
      Effect.perform Wait;
      (* resumed only once the scheduler saw [pred ()] hold *)
      continue := false
    end
  done

(* The per-effect handler closures are built once per task (not per
   perform): matching on the effect constructor refines the answer type
   to [unit], so the preallocated [Some f] is returned as-is and a
   suspension allocates nothing beyond the runtime's continuation. *)
let handler t task =
  let on_tick =
    Some
      (fun (k : (unit, unit) Effect.Deep.continuation) ->
        task.time <- task.time + t.tick_n;
        if task.time > t.config.max_cycles then raise (Watchdog task.time);
        task.state <- Suspended k;
        let i =
          alloc_slot t ~time:task.time ~seq:(fresh_seq t) ~kind:k_task
        in
        t.a_task.(i) <- task;
        push_slot t i)
  in
  let on_wait =
    Some
      (fun (k : (unit, unit) Effect.Deep.continuation) ->
        (* the failed poll's stall was already counted and its watchdog
           bound checked by [poll_wait] *)
        task.time <- task.time + t.wait_quantum;
        if task.time > t.config.max_cycles then raise (Watchdog task.time);
        task.state <- Suspended k;
        let i =
          alloc_slot t ~time:task.time ~seq:(fresh_seq t) ~kind:k_wait
        in
        t.a_task.(i) <- task;
        t.a_pred.(i) <- t.wait_pred;
        t.a_wcat.(i) <- t.wait_cat;
        t.a_arg.(i) <- t.wait_quantum;
        t.wait_pred <- dummy_pred;
        push_slot t i)
  in
  {
    Effect.Deep.retc =
      (fun () ->
        task.state <- Finished;
        t.tasks_live <- t.tasks_live - 1;
        if Probe.active t.probe then
          Probe.emit t.probe ~time:task.time
            (Probe.Task { core = task.core; op = Probe.Finish }));
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) :
           ((a, unit) Effect.Deep.continuation -> unit) option ->
        match eff with
        | Tick -> on_tick
        | Wait -> on_wait
        | _ -> None);
  }

(* Run until every task has finished and every event has fired.  Raises
   [Watchdog] if a task spins past the configured horizon; raises
   [Deadlock] if tasks remain but nothing is runnable (cannot happen with
   pure time-based waiting, but guards future blocking primitives). *)
let run t =
  let continue = ref true in
  while !continue do
    let i = pop_slot t in
    if i < 0 then continue := false
    else begin
      t.global_time <- t.a_time.(i);
      let kind = t.a_kind.(i) in
      if kind = k_task then begin
        let task = t.a_task.(i) in
        free_slot t i;
        t.current <- task;
        (match task.state with
        | Not_started f ->
            task.state <- Finished;
            (* state is overwritten by the handler on suspension *)
            Effect.Deep.match_with f () (handler t task)
        | Suspended k ->
            task.state <- Finished;
            Effect.Deep.continue k ()
        | Finished -> ());
        t.current <- dummy_task
      end
      else if kind = k_wait then begin
        (* a suspended pure poll: re-evaluate in place, resume only when
           the predicate holds — same (time, seq) trajectory as the
           resume-check-suspend round trip, without the fiber switch *)
        let task = t.a_task.(i) in
        t.current <- task;
        if t.a_pred.(i) () then begin
          let k =
            match task.state with
            | Suspended k -> k
            | _ -> assert false
          in
          free_slot t i;
          task.state <- Finished;
          Effect.Deep.continue k ();
          t.current <- dummy_task
        end
        else begin
          Stats.add (Stats.core t.stats task.core) (t.a_wcat.(i)) t.a_arg.(i);
          let nt = task.time + t.a_arg.(i) in
          if nt > t.config.max_cycles then raise (Watchdog nt);
          task.time <- nt;
          t.a_time.(i) <- nt;
          t.a_seq.(i) <- fresh_seq t;
          push_slot t i;
          t.current <- dummy_task
        end
      end
      else if kind = k_closure then begin
        let f = t.a_fn.(i) in
        free_slot t i;
        f ()
      end
      else begin
        let f = t.a_ifn.(i) and arg = t.a_arg.(i) in
        free_slot t i;
        f arg
      end
    end
  done;
  if t.tasks_live > 0 then
    raise (Deadlock (Printf.sprintf "%d tasks never finished" t.tasks_live))

let wall_time t = t.global_time
