(* Discrete-event execution engine.

   Each simulated core runs an ordinary OCaml function written against the
   runtime API.  Timing is cooperative: whenever simulated work costs
   cycles, the task performs a [Consume] effect; the scheduler advances
   that core's virtual clock and always resumes the task with the smallest
   clock next, so cores interleave exactly as their timing dictates.
   Besides tasks, the event queue carries timed closures ([at]) used by the
   NoC to deliver remote writes at their arrival time.

   The simulation is fully deterministic: ties in time are broken by
   insertion sequence. *)

type _ Effect.t += Consume : int -> unit Effect.t

exception Watchdog of int
(* raised when a task exceeds [Config.max_cycles] — livelock guard *)

exception Deadlock of string

type task_state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type task = { core : int; mutable time : int; seq : int; mutable state : task_state }

type entry = Task of task | Event of (unit -> unit)

(* Binary min-heap on (time, seq). *)
module Heap = struct
  type elt = { time : int; seq : int; entry : entry }

  type t = { mutable a : elt array; mutable n : int }

  let dummy = { time = 0; seq = 0; entry = Event (fun () -> ()) }
  let create () = { a = Array.make 64 dummy; n = 0 }
  let is_empty h = h.n = 0

  let less x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h x =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.n > 0);
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.n && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type t = {
  config : Config.t;
  stats : Stats.t;
  probe : Probe.t;
  heap : Heap.t;
  mutable current : task option;
  mutable next_seq : int;
  mutable global_time : int;  (* time of the entry being processed *)
  mutable tasks_live : int;
}

let create (config : Config.t) =
  {
    config;
    stats = Stats.create config.cores;
    probe = Probe.create ();
    heap = Heap.create ();
    current = None;
    next_seq = 0;
    global_time = 0;
    tasks_live = 0;
  }

let stats t = t.stats
let probe t = t.probe

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* Spawn a computation on [core], starting at the core's current time (or
   at [start]).  Several tasks may share a core; they interleave at consume
   points, which models cooperative threads on one processor. *)
let spawn ?(start = 0) t ~core f =
  if core < 0 || core >= t.config.cores then
    invalid_arg "Engine.spawn: bad core";
  let task =
    { core; time = max start t.global_time; seq = fresh_seq t;
      state = Not_started f }
  in
  t.tasks_live <- t.tasks_live + 1;
  Probe.emit t.probe ~time:task.time (Probe.Task { core; op = Probe.Spawn });
  Heap.push t.heap { time = task.time; seq = task.seq; entry = Task task }

(* Schedule [f] to run at absolute [time]. *)
let at t ~time f =
  Heap.push t.heap { time; seq = fresh_seq t; entry = Event f }

let current_task t =
  match t.current with
  | Some task -> task
  | None -> failwith "Engine: no task running (call from within spawn)"

let core_id t = (current_task t).core
let now t = (current_task t).time

(* Advance the current core's clock by [n] cycles, attributed to [cat]. *)
let consume t cat n =
  if n < 0 then invalid_arg "Engine.consume: negative cycles";
  if n > 0 then begin
    let task = current_task t in
    Stats.add (Stats.core t.stats task.core) cat n;
    Effect.perform (Consume n)
  end

(* Advance the clock without statistics (used by pure waiting). *)
let idle t n = if n > 0 then Effect.perform (Consume n) else ignore t

let handler t task =
  {
    Effect.Deep.retc =
      (fun () ->
        task.state <- Finished;
        t.tasks_live <- t.tasks_live - 1;
        Probe.emit t.probe ~time:task.time
          (Probe.Task { core = task.core; op = Probe.Finish }));
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Consume n ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                task.time <- task.time + n;
                if task.time > t.config.max_cycles then
                  raise (Watchdog task.time);
                task.state <- Suspended k;
                Heap.push t.heap
                  { time = task.time; seq = fresh_seq t; entry = Task task })
        | _ -> None);
  }

(* Run until every task has finished and every event has fired.  Raises
   [Watchdog] if a task spins past the configured horizon; raises
   [Deadlock] if tasks remain but nothing is runnable (cannot happen with
   pure time-based waiting, but guards future blocking primitives). *)
let run t =
  while not (Heap.is_empty t.heap) do
    let { Heap.time; entry; _ } = Heap.pop t.heap in
    t.global_time <- time;
    match entry with
    | Event f -> f ()
    | Task task -> (
        t.current <- Some task;
        (match task.state with
        | Not_started f ->
            task.state <- Finished;
            (* state is overwritten by the handler on suspension *)
            Effect.Deep.match_with f () (handler t task)
        | Suspended k ->
            task.state <- Finished;
            Effect.Deep.continue k ()
        | Finished -> ());
        t.current <- None)
  done;
  if t.tasks_live > 0 then
    raise (Deadlock (Printf.sprintf "%d tasks never finished" t.tasks_live))

let wall_time t = t.global_time
