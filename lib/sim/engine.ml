(* Discrete-event execution engine.

   Each simulated core runs an ordinary OCaml function written against the
   runtime API.  Timing is cooperative: whenever simulated work costs
   cycles, the task performs a [Consume] effect; the scheduler advances
   that core's virtual clock and always resumes the task with the smallest
   clock next, so cores interleave exactly as their timing dictates.
   Besides tasks, the event queue carries timed closures ([at]) used by the
   NoC to deliver remote writes at their arrival time.

   The simulation is fully deterministic: ties in time are broken by
   insertion sequence. *)

type _ Effect.t += Consume : int -> unit Effect.t

exception Watchdog of int
(* raised when a task exceeds [Config.max_cycles] — livelock guard *)

exception Deadlock of string

type task_state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type task = { core : int; mutable time : int; seq : int; mutable state : task_state }

type entry = Task of task | Event of (unit -> unit)

(* Binary min-heap on (time, seq) — the far-future overflow store of the
   wake-wheel below. *)
module Heap = struct
  type elt = { time : int; seq : int; entry : entry }

  type t = { mutable a : elt array; mutable n : int }

  let dummy = { time = 0; seq = 0; entry = Event (fun () -> ()) }
  let create () = { a = Array.make 64 dummy; n = 0 }
  let is_empty h = h.n = 0

  let top h =
    assert (h.n > 0);
    h.a.(0)

  let less x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h x =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.n > 0);
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.n && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

(* Indexed wake-wheel: entries due within a [window]-cycle horizon live in
   per-cycle slots indexed by resume time; entries beyond the horizon wait
   in the overflow heap.  Simulated time is monotonic (nothing is ever
   scheduled in the past), so within the horizon every slot holds at most
   one distinct timestamp and a slot's FIFO order equals creation-sequence
   order — popping the next occupied slot reproduces the heap's exact
   (time, seq) order while making push and pop O(1) amortized instead of
   O(log n).  An occupancy bitmap lets the pop scan skip 63 empty slots
   per word. *)
module Wheel = struct
  let window = 2048 (* power of two: slot index is [time land mask] *)
  let mask = window - 1
  let occ_words = (window + 62) / 63

  type t = {
    slots : Heap.elt Queue.t array;
    occ : int array;            (* 63 slots per word *)
    mutable count : int;
  }

  let create () =
    {
      slots = Array.init window (fun _ -> Queue.create ());
      occ = Array.make occ_words 0;
      count = 0;
    }

  let add t slot (x : Heap.elt) =
    Queue.push x t.slots.(slot);
    t.occ.(slot / 63) <- t.occ.(slot / 63) lor (1 lsl (slot mod 63));
    t.count <- t.count + 1

  let lowest_bit_from word bit =
    (* index of the least significant set bit of [word] at or above [bit],
       or -1 *)
    let w = word land lnot ((1 lsl bit) - 1) in
    if w = 0 then -1
    else begin
      let b = ref 0 and w = ref (w land -w) in
      if !w land 0x7FFFFFFF = 0 then begin b := !b + 31; w := !w lsr 31 end;
      if !w land 0xFFFF = 0 then begin b := !b + 16; w := !w lsr 16 end;
      if !w land 0xFF = 0 then begin b := !b + 8; w := !w lsr 8 end;
      if !w land 0xF = 0 then begin b := !b + 4; w := !w lsr 4 end;
      if !w land 0x3 = 0 then begin b := !b + 2; w := !w lsr 2 end;
      if !w land 0x1 = 0 then b := !b + 1;
      !b
    end

  (* Next occupied slot at or after [from], scanning the bitmap and
     wrapping once; the caller guarantees [count > 0]. *)
  let next_occupied t ~from =
    let rec scan word bit laps =
      if word >= occ_words then
        if laps = 0 then scan 0 0 1 else assert false
      else
        match lowest_bit_from t.occ.(word) bit with
        | -1 -> scan (word + 1) 0 laps
        | b ->
            let slot = (word * 63) + b in
            if slot >= window then scan (word + 1) 0 laps else slot
    in
    scan (from / 63) (from mod 63) 0

  let take t slot : Heap.elt =
    let q = t.slots.(slot) in
    let x = Queue.pop q in
    if Queue.is_empty q then
      t.occ.(slot / 63) <- t.occ.(slot / 63) land lnot (1 lsl (slot mod 63));
    t.count <- t.count - 1;
    x
end

type t = {
  config : Config.t;
  stats : Stats.t;
  probe : Probe.t;
  wheel : Wheel.t;
  overflow : Heap.t;
  mutable cursor : int;       (* wheel origin: no pending entry is earlier *)
  mutable current : task option;
  mutable next_seq : int;
  mutable global_time : int;  (* time of the entry being processed *)
  mutable tasks_live : int;
}

let create (config : Config.t) =
  {
    config;
    stats = Stats.create config.cores;
    probe = Probe.create ();
    wheel = Wheel.create ();
    overflow = Heap.create ();
    cursor = 0;
    current = None;
    next_seq = 0;
    global_time = 0;
    tasks_live = 0;
  }

(* Move overflow entries due at or before [horizon] into the wheel.  They
   were created before anything now being pushed, so their sequence numbers
   are smaller and appending them first keeps every slot's FIFO in
   creation order. *)
let migrate t ~horizon =
  while
    (not (Heap.is_empty t.overflow)) && (Heap.top t.overflow).Heap.time <= horizon
  do
    let x = Heap.pop t.overflow in
    Wheel.add t.wheel (x.Heap.time land Wheel.mask) x
  done

let push_entry t (x : Heap.elt) =
  if x.Heap.time < t.cursor + Wheel.window then begin
    migrate t ~horizon:x.Heap.time;
    (* time is never in the past (the sim clock is monotonic); clamp the
       slot defensively so a bad caller degrades to a same-cycle wake *)
    Wheel.add t.wheel (max x.Heap.time t.cursor land Wheel.mask) x
  end
  else Heap.push t.overflow x

let pop_entry t : Heap.elt option =
  if t.wheel.Wheel.count = 0 && Heap.is_empty t.overflow then None
  else begin
    if t.wheel.Wheel.count = 0 then
      (* jump the cursor across the empty gap to the overflow cohort *)
      t.cursor <- (Heap.top t.overflow).Heap.time;
    migrate t ~horizon:(t.cursor + Wheel.window - 1);
    let slot = Wheel.next_occupied t.wheel ~from:(t.cursor land Wheel.mask) in
    let x = Wheel.take t.wheel slot in
    t.cursor <- max t.cursor x.Heap.time;
    Some x
  end

let stats t = t.stats
let probe t = t.probe

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* Spawn a computation on [core], starting at the core's current time (or
   at [start]).  Several tasks may share a core; they interleave at consume
   points, which models cooperative threads on one processor. *)
let spawn ?(start = 0) t ~core f =
  if core < 0 || core >= t.config.cores then
    invalid_arg "Engine.spawn: bad core";
  let task =
    { core; time = max start t.global_time; seq = fresh_seq t;
      state = Not_started f }
  in
  t.tasks_live <- t.tasks_live + 1;
  Probe.emit t.probe ~time:task.time (Probe.Task { core; op = Probe.Spawn });
  push_entry t { time = task.time; seq = task.seq; entry = Task task }

(* Schedule [f] to run at absolute [time]. *)
let at t ~time f =
  push_entry t { time; seq = fresh_seq t; entry = Event f }

let current_task t =
  match t.current with
  | Some task -> task
  | None -> failwith "Engine: no task running (call from within spawn)"

let core_id t = (current_task t).core
let now t = (current_task t).time

(* Advance the current core's clock by [n] cycles, attributed to [cat]. *)
let consume t cat n =
  if n < 0 then invalid_arg "Engine.consume: negative cycles";
  if n > 0 then begin
    let task = current_task t in
    Stats.add (Stats.core t.stats task.core) cat n;
    Effect.perform (Consume n)
  end

(* Advance the clock without statistics (used by pure waiting). *)
let idle t n = if n > 0 then Effect.perform (Consume n) else ignore t

let handler t task =
  {
    Effect.Deep.retc =
      (fun () ->
        task.state <- Finished;
        t.tasks_live <- t.tasks_live - 1;
        Probe.emit t.probe ~time:task.time
          (Probe.Task { core = task.core; op = Probe.Finish }));
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Consume n ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                task.time <- task.time + n;
                if task.time > t.config.max_cycles then
                  raise (Watchdog task.time);
                task.state <- Suspended k;
                push_entry t
                  { time = task.time; seq = fresh_seq t; entry = Task task })
        | _ -> None);
  }

(* Run until every task has finished and every event has fired.  Raises
   [Watchdog] if a task spins past the configured horizon; raises
   [Deadlock] if tasks remain but nothing is runnable (cannot happen with
   pure time-based waiting, but guards future blocking primitives). *)
let run t =
  let continue = ref true in
  while !continue do
    match pop_entry t with
    | None -> continue := false
    | Some { Heap.time; entry; _ } -> (
    t.global_time <- time;
    match entry with
    | Event f -> f ()
    | Task task -> (
        t.current <- Some task;
        (match task.state with
        | Not_started f ->
            task.state <- Finished;
            (* state is overwritten by the handler on suspension *)
            Effect.Deep.match_with f () (handler t task)
        | Suspended k ->
            task.state <- Finished;
            Effect.Deep.continue k ()
        | Finished -> ());
        t.current <- None))
  done;
  if t.tasks_live > 0 then
    raise (Deadlock (Printf.sprintf "%d tasks never finished" t.tasks_live))

let wall_time t = t.global_time
