(** Far-memory tier behind SDRAM: a persistence domain.

    Writes land in a volatile device cache and become durable only when
    a flush {!barrier} drains them into the media.  Reads serve
    committed (durable) data only, so nothing a tile can observe would
    be lost by a power cut — the "visible implies durable" discipline
    the crash checker's durable-prefix replay relies on.  A power cut
    abandons the device cache; {!image} is the durable state recovery
    starts from.

    The bottom of the address space is reserved for the [farmem]
    back-end's redo log — one {!log_slot_bytes}-sized slot per
    committing core, below an 8-byte superblock recording the slot
    geometry, so the log is fully self-describing and {!recover} works
    host-side on a restored image with no backend state.  Timing mirrors
    {!Sdram}: one port, busy-until contention, per-word occupancy;
    latency composition is the caller's job. *)

type t

val create : data_bytes:int -> word_occupancy:int -> slots:int -> t
(** A device with [slots] redo-log slots and [data_bytes] of allocatable
    capacity above the log region. *)

val size : t -> int

val log_slot_bytes : int
(** Size of one redo-log slot.  A commit's records (payload plus
    metadata) must fit one slot. *)

val slot_addr : t -> int -> int
(** Address of log slot [i]: [word 0] commit flag, [word 1] record
    count, then the records ([home] word, word count [n], [n] data
    words each). *)

val alloc : t -> name:string -> bytes:int -> int
(** Carve an 8-byte-aligned durable region and record it in the
    allocation directory.  @raise Failure on exhaustion. *)

val allocs : t -> (string * int * int) list
(** The allocation directory in allocation order: [(name, addr, bytes)].
    Host-side metadata — the crash checker uses it to enumerate every
    shared object of a durable image. *)

val contend : t -> now:int -> occupancy:int -> int
(** Port queuing delay before an access of the given occupancy can start
    (cf. {!Sdram.contend}). *)

val contend_words : t -> now:int -> words:int -> int
(** {!contend} for a burst of [words] words (at least one word of
    occupancy). *)

val read_u32_int : t -> int -> int
(** Committed (durable) word read. *)

val read_u8 : t -> int -> int

val write_u32_int : t -> int -> int -> unit
(** Word write into the device cache; durable only after {!barrier}. *)

val write_u8 : t -> int -> int -> unit

val blit_to : t -> addr:int -> Mem.t -> pos:int -> len:int -> unit
(** Burst read of committed data into a tile-side buffer. *)

val blit_from : t -> addr:int -> Mem.t -> pos:int -> len:int -> unit
(** Burst write into the device cache; durable only after {!barrier}. *)

val barrier : t -> int
(** Drain the device cache: every dirty byte becomes durable atomically
    (data moves at the start of the latency window).  Returns the number
    of bytes flushed. *)

val dirty_bytes : t -> int
(** Bytes written since the last barrier (would be lost by a cut now). *)

val accesses : t -> int
val barriers : t -> int
val bytes_flushed : t -> int

val poke_u32 : t -> int -> int -> unit
(** Untimed host-side initialization write, durable by definition (the
    state the platform was provisioned with before power-on). *)

val peek_u32 : t -> int -> int
(** Untimed host-side read of the durable media. *)

val peek_u8 : t -> int -> int

val image : t -> Bytes.t
(** The durable image: exactly the media bytes.  What survives a power
    cut. *)

val restore : t -> Bytes.t -> unit
(** Load a durable image into a fresh device (media and — restart —
    device cache).  @raise Invalid_argument on a size mismatch. *)

type recovery = {
  committed : bool;     (** some committed slot was found (and re-applied) *)
  records : int;        (** records applied, across all slots *)
  words_applied : int;  (** total data words applied *)
}

val recover : t -> recovery
(** Replay the redo log on the durable media, slot by slot: re-apply
    every committed slot (then clear its commit flag), discard
    uncommitted ones untouched.  Slot order cannot matter — the object
    lock serializes commits, so at most one committed slot mentions any
    given object.  Idempotent: recovering twice from the same image
    yields byte-identical media, the property [test_crash] checks. *)
