(** Per-core cycle accounting with the stall categories of Fig. 8 (busy,
    private-read, shared-read, write and I-cache stalls), plus lock-spin
    and flush-instruction time, which the paper reports separately. *)

type category =
  | Busy
  | Private_read_stall
  | Shared_read_stall
  | Write_stall
  | Icache_stall
  | Lock_stall
  | Flush_overhead

val categories : category list
val category_name : category -> string

(** Mutable per-core counters.  The event counters (cache hits, lock
    transfers, …) are written directly by the machine and lock layers. *)
type core = {
  mutable cycles : int array;
  mutable instructions : int;
  mutable dcache_hits : int;
  mutable dcache_misses : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable lock_acquires : int;
  mutable lock_transfers : int;
  mutable noc_writes : int;
  mutable noc_flits : int;
  mutable flushes : int;
}

val core_create : unit -> core
(** Fresh zeroed counters for one core. *)

val add : core -> category -> int -> unit
(** Charge cycles to a category. *)

val get : core -> category -> int
(** Cycles charged to a category so far. *)

val total : core -> int
(** Sum over all categories. *)

type t = { cores : core array }

val create : int -> t
(** [create n] — counters for an [n]-core machine. *)

val core : t -> int -> core
(** The counters of one core. *)

(** Whole-machine totals, aggregated over cores by {!summarize}. *)
type summary = {
  wall_cycles : int;
  per_category : (category * int) list;
  total_cycles : int;
  instructions : int;
  dcache_hits : int;
  dcache_misses : int;
  icache_misses : int;
  lock_acquires : int;
  lock_transfers : int;
  noc_writes : int;
  noc_flits : int;
  flushes : int;
}

val summarize : t -> summary
(** Aggregate all cores; [wall_cycles] is the max of per-core totals. *)

val category_cycles : summary -> category -> int
(** Summed cycles of one category across all cores. *)

val fraction : summary -> category -> float
(** Fraction of summed core time spent in a category — the percentages
    plotted in Fig. 8. *)

val utilization : summary -> float
(** [fraction summary Busy]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable breakdown, one category per line. *)
